GO ?= go

.PHONY: build test test-full vet bench bench-scaling clean

build:
	$(GO) build ./...

# Fast gate: reduced problem sizes for the long integration suites.
test:
	$(GO) test -short ./...

# The full suite, including the long-running problem integrations.
test-full:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# All paper-reproduction benchmarks.
bench:
	$(GO) test -bench=. -benchmem .

# Serial-vs-parallel scaling of the hot kernels (hydro sweeps, FFT
# Poisson solve, multigrid) at 1/2/4/NumCPU workers.
bench-scaling:
	$(GO) test -run xxx -bench='Scaling' -benchmem .

clean:
	$(GO) clean ./...
