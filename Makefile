GO ?= go

# Pinned staticcheck release used by `make staticcheck` and the CI
# staticcheck job; bump deliberately, in its own commit.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: build test test-full vet staticcheck bench bench-scaling bench-kernels bench-sim bench-serve bench-queue bench-speculate bench-projection perfgate golden-update problems cluster docs clean

build:
	$(GO) build ./...

# Fast gate: reduced problem sizes for the long integration suites.
test:
	$(GO) test -short ./...

# The full suite, including the long-running problem integrations.
test-full:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet, at the pinned version (needs network the
# first time, to fetch the tool into the module cache).
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# All paper-reproduction benchmarks, plus the job-service rows — together
# these regenerate every committed BENCH_*.json history (append a row; do
# not overwrite).
bench: bench-sim bench-serve bench-queue bench-speculate
	$(GO) test -bench=. -benchmem .

# Serial-vs-parallel scaling of the hot kernels (hydro sweeps, FFT
# Poisson solve, multigrid) at 1/2/4/NumCPU workers.
bench-scaling:
	$(GO) test -run xxx -bench='Scaling' -benchmem .

# The perfgate-gated kernel set (hydro step, multigrid, FFT, chemistry)
# at 1/2/4/NumCPU workers; the baseline lives in BENCH_kernels.json.
bench-kernels:
	$(GO) test -run xxx -bench '^(BenchmarkScalingStep64|BenchmarkScalingMultigrid64|BenchmarkScalingGravityFFT64|BenchmarkChemistry)$$' -benchmem .

# Job-service throughput (jobs/sec at 1/2/4 concurrent slots) and the
# cache-hit fast path; the baseline lives in BENCH_sim.json.
bench-sim:
	$(GO) test -run xxx -bench 'Sim(Throughput|CacheHit)' -benchmem ./internal/sim

# Artifact serving throughput (cold/warm/etag304/tiles read regimes of
# one GET through the scheduler handler); the baseline lives in
# BENCH_serve.json.
bench-serve:
	$(GO) test -run xxx -bench 'ServeReads' -benchmem ./internal/sim

# Steady-state dispatch cost of the fair-share QoS queue at 1/4/16
# tenants; the baseline lives in BENCH_queue.json.
bench-queue:
	$(GO) test -run xxx -bench '^BenchmarkSchedulerQoS$$' -benchmem ./internal/sim

# Wall time of a staggered-arrival sweep with speculative pre-warming
# off vs on (the enzobatch -server -stagger pattern); the baseline
# lives in BENCH_speculate.json.
bench-speculate:
	$(GO) test -run xxx -bench '^BenchmarkSpeculativeSweep$$' -benchmem ./internal/sim

# The derived-output projection kernel (SurfaceDensity) at 1/2/4/NumCPU
# workers; the baseline lives in BENCH_projection.json.
bench-projection:
	$(GO) test -run xxx -bench 'Projection' -benchmem .

# CI performance-regression gate: re-run the gated benchmarks and compare
# ns/op against the latest row of each committed BENCH_*.json history
# (±15% by default). PERFGATE_FLAGS widens the tolerance on noisy shared
# runners, e.g. PERFGATE_FLAGS='-tol 0.25'.
perfgate:
	$(GO) run ./cmd/perfgate $(PERFGATE_FLAGS)

# Regenerate the golden regression hashes after an INTENTIONAL physics
# change (internal/problems/testdata/golden.json is the drift alarm).
golden-update:
	$(GO) test ./internal/problems -run TestGoldenRegression -update

# Smoke-run every registered problem for 2 root steps at 8^3 — the same
# matrix the CI `problems` job drives via `enzogo -list`.
problems:
	@mkdir -p bin
	$(GO) build -o bin/enzogo ./cmd/enzogo
	@bin/enzogo -list | cut -f1 > bin/problems.txt
	@test -s bin/problems.txt || { echo "enzogo -list produced no problems"; exit 1; }
	@while read -r p; do \
		echo "== $$p =="; \
		bin/enzogo -problem $$p -steps 2 -rootn 8 >/dev/null || exit 1; \
	done < bin/problems.txt
	@echo "all registered problems ran clean"

# The distributed acceptance suite the CI cluster job runs: three serve
# peers over real TCP, sharded placement, cross-peer proxying, and
# kill-the-owner checkpoint takeover, all under the race detector.
cluster:
	$(GO) test -race -short -run 'TestCluster' ./internal/sim

# The documentation gate the CI docs job runs: clean gofmt, documented
# exports in every internal package, and README curl examples that
# actually work against a live test server.
docs:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) run ./cmd/doccheck $$($(GO) list -f '{{.Dir}}' ./internal/...)
	$(GO) test -run TestReadmeCurlExamples ./internal/sim

clean:
	$(GO) clean ./...
	rm -rf bin
