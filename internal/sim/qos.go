package sim

// The QoS queue: a weighted fair-share priority queue that replaces the
// scheduler's plain FIFO channel. Jobs are segregated into per-tenant
// FIFO lists; a dispatch picks the head of the tenant with the least
// attained service (smallest virtual time), bills that tenant its
// job's estimated cost divided by its weight, and advances a global
// virtual clock so tenants that go idle re-enter at the current service
// level instead of banking credit. Deadline hints ride on top: once a
// queued head's slack (time to deadline minus estimated cost) runs out
// it becomes urgent and is served earliest-deadline-first, but at most
// urgentBurst urgent dispatches may bypass the fair-share pick in a row
// — so a flood of urgent work can never starve a deadline-less tenant.
// All ordering decisions read the injected clock, never time.Now, so
// the deterministic test suite drives them with a fake clock.

import (
	"math"
	"sort"
	"sync"
	"time"
)

const (
	// defaultQueueCost is the vtime charge (in seconds) of a dispatch
	// the cost model has no history for.
	defaultQueueCost = 1.0
	// minQueueCharge floors the per-dispatch charge so a tenant whose
	// jobs are estimated at (near) zero seconds still accrues service
	// and cannot monopolize the slots.
	minQueueCharge = 1e-3
	// urgentBurst caps how many consecutive dispatches the deadline
	// boost may take away from the fair-share order before a fair pick
	// is forced — the starvation-freedom bound.
	urgentBurst = 4
)

// queueCost is the vtime charge a dispatch bills the job's tenant: the
// cost model's predicted seconds, or defaultQueueCost for a job without
// a usable estimate.
func (j *Job) queueCost() float64 {
	if j.est != nil && j.est.Samples > 0 && j.est.Seconds > 0 {
		return j.est.Seconds
	}
	return defaultQueueCost
}

// queueEntry is one queued job with its scheduling metadata.
type queueEntry struct {
	job      *Job
	tenant   string
	cost     float64   // estimated seconds; the vtime charge on dispatch
	deadline time.Time // zero when the submission carried no deadline hint
	seq      uint64    // global arrival order; the deterministic tie-break
}

// urgentAt reports whether the entry must start now to make its
// deadline: slack (time remaining minus estimated cost) has run out.
func (e *queueEntry) urgentAt(now time.Time) bool {
	if e.deadline.IsZero() {
		return false
	}
	return e.deadline.Sub(now).Seconds()-e.cost <= 0
}

// tenantQueue is one tenant's FIFO backlog plus its fair-share
// accounting. The struct outlives an empty backlog so a returning
// tenant keeps its attained-service level.
type tenantQueue struct {
	entries []*queueEntry
	vtime   float64 // attained service in weighted seconds
	weight  float64
}

// fairQueue is the scheduler's dispatch queue. Safe for concurrent
// use; pop blocks until an entry or close arrives, and after close it
// keeps draining the backlog before reporting exhaustion (the channel
// semantics the slot goroutines were built around).
type fairQueue struct {
	now     func() time.Time
	depth   int
	weights map[string]float64

	mu        sync.Mutex
	cond      *sync.Cond
	tenants   map[string]*tenantQueue
	names     []string // sorted tenant names, for deterministic scans
	byJob     map[string]*queueEntry
	size      int
	running   int // jobs popped and not yet retired with done()
	seq       uint64
	vclock    float64 // max vtime ever attained; the re-entry level for idle tenants
	urgentRun int     // consecutive dispatches the deadline boost has taken
	closed    bool
}

// newFairQueue builds a queue dispatching at most depth queued jobs,
// with the given per-tenant weights (unlisted tenants weigh 1) and
// time source.
func newFairQueue(depth int, weights map[string]float64, now func() time.Time) *fairQueue {
	q := &fairQueue{
		now:     now,
		depth:   depth,
		weights: weights,
		tenants: map[string]*tenantQueue{},
		byJob:   map[string]*queueEntry{},
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a job under its tenant. enforceDepth applies the
// QueueDepth backpressure bound (Submit); recovery and peer takeover
// bypass it, because refusing to re-admit persisted work would lose it.
func (q *fairQueue) push(j *Job, enforceDepth bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if enforceDepth && q.size >= q.depth {
		return ErrQueueFull
	}
	if _, dup := q.byJob[j.ID]; dup {
		return nil // already queued; the existing entry serves this submission
	}
	tq := q.tenants[j.tenant]
	if tq == nil {
		w := q.weights[j.tenant]
		if !(w > 0) {
			w = 1
		}
		// A new tenant starts at the global service level — no credit
		// for time spent absent.
		tq = &tenantQueue{weight: w, vtime: q.vclock}
		q.tenants[j.tenant] = tq
		i := sort.SearchStrings(q.names, j.tenant)
		q.names = append(q.names, "")
		copy(q.names[i+1:], q.names[i:])
		q.names[i] = j.tenant
	} else if len(tq.entries) == 0 && tq.vtime < q.vclock {
		// Same rule for a returning tenant: idle time banks nothing.
		tq.vtime = q.vclock
	}
	q.seq++
	e := &queueEntry{job: j, tenant: j.tenant, cost: j.queueCost(), deadline: j.deadline, seq: q.seq}
	tq.entries = append(tq.entries, e)
	q.byJob[j.ID] = e
	q.size++
	q.cond.Signal()
	return nil
}

// pop blocks for the next job to dispatch. After close it drains the
// remaining backlog, then reports ok=false.
func (q *fairQueue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 {
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
	now := q.now()
	// Candidates are tenant heads only, so two requests from the same
	// tenant can never be reordered, deadline or not.
	var fair, urgent *queueEntry
	var fairT, urgentT *tenantQueue
	for _, name := range q.names {
		tq := q.tenants[name]
		if len(tq.entries) == 0 {
			continue
		}
		head := tq.entries[0]
		if fair == nil || tq.vtime < fairT.vtime || (tq.vtime == fairT.vtime && head.seq < fair.seq) {
			fair, fairT = head, tq
		}
		if head.urgentAt(now) {
			if urgent == nil || head.deadline.Before(urgent.deadline) ||
				(head.deadline.Equal(urgent.deadline) && head.seq < urgent.seq) {
				urgent, urgentT = head, tq
			}
		}
	}
	pick, pickT := fair, fairT
	if urgent != nil && urgent != fair && q.urgentRun < urgentBurst {
		pick, pickT = urgent, urgentT
	}
	if pick == fair {
		q.urgentRun = 0 // the fair-share order was respected (or was itself urgent)
	} else {
		q.urgentRun++
	}
	pickT.vtime += math.Max(pick.cost, minQueueCharge) / pickT.weight
	if pickT.vtime > q.vclock {
		q.vclock = pickT.vtime
	}
	pickT.entries = pickT.entries[1:]
	delete(q.byJob, pick.job.ID)
	q.size--
	q.running++ // retired by done() when the slot finishes executing
	return pick.job, true
}

// done retires one popped job — the slot finished executing it. With
// size, running is what the speculation planner's idle test reads: a
// window is idle only when nothing is queued AND nothing is running.
func (q *fairQueue) done() {
	q.mu.Lock()
	if q.running > 0 {
		q.running--
	}
	q.mu.Unlock()
}

// busy reports the dispatch backlog and the jobs currently executing.
func (q *fairQueue) busy() (queued, running int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size, q.running
}

// remove excises a queued job (Cancel of a queued job) so it neither
// occupies depth nor shows in the tenant gauges. Its tenant is not
// charged — the job never ran. Reports whether the job was queued.
func (q *fairQueue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	e := q.byJob[id]
	if e == nil {
		return false
	}
	tq := q.tenants[e.tenant]
	for i, x := range tq.entries {
		if x == e {
			tq.entries = append(tq.entries[:i], tq.entries[i+1:]...)
			break
		}
	}
	delete(q.byJob, id)
	q.size--
	return true
}

// tighten moves a queued job's deadline earlier (a coalesced
// resubmission carrying a tighter hint). A zero or later deadline is
// ignored — coalescing must never relax urgency another submitter
// already established.
func (q *fairQueue) tighten(id string, deadline time.Time) bool {
	if deadline.IsZero() {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	e := q.byJob[id]
	if e == nil {
		return false
	}
	if e.deadline.IsZero() || deadline.Before(e.deadline) {
		e.deadline = deadline
		return true
	}
	return false
}

// snapshot reports the current backlog depth and its per-tenant
// breakdown (tenants with an empty backlog are omitted).
func (q *fairQueue) snapshot() (int, map[string]int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	per := map[string]int{}
	for name, tq := range q.tenants {
		if len(tq.entries) > 0 {
			per[name] = len(tq.entries)
		}
	}
	return q.size, per
}

// close stops accepting pushes and wakes every blocked pop; queued
// entries keep draining through pop until the backlog is empty.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
