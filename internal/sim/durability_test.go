package sim_test

// The durable-execution acceptance suite, over real HTTP: a served job
// interrupted mid-run (process-kill semantics: the scheduler goes away
// without marking the job terminal in the store) must resume from its
// latest checkpoint after restart and produce a final amr.Checksum
// bitwise identical to an uninterrupted run of the same canonical
// request; completed results and artifacts must survive restart as
// cache hits. This file lives in package sim_test so it can wire the
// real disk store (internal/sim/diskstore) under the scheduler.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/sim/diskstore"
)

// interruptReq is the canonical request of the kill-and-restart test:
// long enough to interrupt mid-run, with pinned workers (part of the
// job identity, so the interrupted, resumed and reference runs agree
// bitwise) and a cadenced projection so artifacts span the
// interruption.
const interruptReq = `{"problem":"sedov","rootn":16,"maxlevel":1,"steps":24,"workers":1,
	"knobs":{"e0":20},
	"outputs":[{"kind":"projection","field":"rho","axis":2,"n":32,"every":4},{"kind":"profile","n":8}]}`

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: %v\n%s", url, err, body)
	}
}

func postJob(t *testing.T, base, body string) sim.SubmitResponse {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		t.Fatalf("POST /jobs: %s\n%s", resp.Status, raw)
	}
	var sub sim.SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatalf("POST /jobs: %v\n%s", err, raw)
	}
	return sub
}

func getBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return body
}

// artifactBodies fetches every artifact of a job over HTTP, keyed by name.
func artifactBodies(t *testing.T, base, id string) map[string][]byte {
	t.Helper()
	var idx sim.ArtifactIndex
	getJSON(t, base+"/jobs/"+id+"/artifacts", &idx)
	out := make(map[string][]byte, idx.Count)
	for _, m := range idx.Artifacts {
		out[m.Name] = getBytes(t, base+"/jobs/"+id+"/artifacts/"+m.Name)
	}
	return out
}

func durableConfig(store sim.Store) sim.Config {
	return sim.Config{
		MaxConcurrent: 1, TotalWorkers: 1,
		Store: store, CheckpointEvery: 3,
	}
}

func TestKillRestartResumeBitwiseOverHTTP(t *testing.T) {
	dir := t.TempDir()

	// The uninterrupted reference: the same canonical request on a plain
	// in-memory scheduler.
	ref := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1})
	defer ref.Close()
	refSrv := httptest.NewServer(ref.Handler())
	defer refSrv.Close()
	refSub := postJob(t, refSrv.URL, interruptReq)

	// Phase 1: serve durably, interrupt mid-run after at least one
	// cadence checkpoint.
	store1, err := diskstore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := sim.NewScheduler(durableConfig(store1))
	srv1 := httptest.NewServer(s1.Handler())
	sub := postJob(t, srv1.URL, interruptReq)
	if sub.ID != refSub.ID {
		t.Fatalf("canonical identity differs across schedulers: %s vs %s", sub.ID, refSub.ID)
	}

	deadline := time.Now().Add(120 * time.Second)
	var st sim.Status
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint observed before completion (state %s, %d checkpoints) — job too fast for the interruption test", st.State, st.Checkpoints)
		}
		getJSON(t, srv1.URL+"/jobs/"+sub.ID, &st)
		if st.Checkpoints >= 1 && st.State == "running" {
			break
		}
		if st.State != "running" && st.State != "queued" {
			t.Fatalf("job reached %s before it could be interrupted", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Kill: tear the scheduler down without drain. The persisted record
	// stays non-terminal, exactly as a SIGKILL would leave it.
	srv1.Close()
	s1.Close()

	// Phase 2: restart on the same store; the job must be recovered,
	// resumed from its latest checkpoint, and finish with the reference
	// hash.
	store2, err := diskstore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := sim.NewScheduler(durableConfig(store2))
	srv2 := httptest.NewServer(s2.Handler())
	if recovered, resumed, err := s2.RecoverState(); err != nil || recovered != 1 || resumed != 1 {
		t.Fatalf("recovery: %d recovered, %d resumed, err %v", recovered, resumed, err)
	}
	j2, ok := s2.Get(sub.ID)
	if !ok {
		t.Fatalf("job %s not recovered", sub.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	res2, err := j2.Wait(ctx)
	if err != nil {
		t.Fatalf("resumed job failed: %v", err)
	}
	getJSON(t, srv2.URL+"/jobs/"+sub.ID, &st)
	if !st.Recovered {
		t.Fatalf("status does not mark the job recovered: %+v", st)
	}
	if !strings.HasPrefix(st.ResumedFrom, "checkpoint step ") {
		t.Fatalf("status reports no checkpoint provenance: resumed_from=%q", st.ResumedFrom)
	}
	if st.Checkpoints < 1 || st.CheckpointStep == nil || *st.CheckpointStep < 0 {
		t.Fatalf("checkpoint count/step missing: %+v", st)
	}

	refRes, err := func() (*sim.Result, error) {
		j, ok := ref.Get(refSub.ID)
		if !ok {
			return nil, fmt.Errorf("reference job lost")
		}
		return j.Wait(ctx)
	}()
	if err != nil {
		t.Fatalf("reference run failed: %v", err)
	}
	if res2.Hash != refRes.Hash {
		t.Fatalf("resumed run diverged: hash %s, uninterrupted %s", res2.Hash, refRes.Hash)
	}
	if res2.Steps != refRes.Steps || res2.Time != refRes.Time {
		t.Fatalf("resumed run bounds differ: %d@%g vs %d@%g", res2.Steps, res2.Time, refRes.Steps, refRes.Time)
	}

	// Artifacts spanning the interruption must match the uninterrupted
	// run byte for byte, served over HTTP.
	gotArts := artifactBodies(t, srv2.URL, sub.ID)
	wantArts := artifactBodies(t, refSrv.URL, refSub.ID)
	if len(gotArts) != len(wantArts) || len(gotArts) == 0 {
		t.Fatalf("artifact sets differ: %d vs %d", len(gotArts), len(wantArts))
	}
	for name, want := range wantArts {
		if !bytes.Equal(gotArts[name], want) {
			t.Fatalf("artifact %s differs between resumed and uninterrupted runs", name)
		}
	}
	srv2.Close()
	s2.Close()

	// Phase 3: restart again; the completed result and artifacts must be
	// served from the warm store, and an identical submission must be a
	// cache hit — all over real HTTP.
	store3, err := diskstore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	s3 := sim.NewScheduler(durableConfig(store3))
	defer s3.Close()
	srv3 := httptest.NewServer(s3.Handler())
	defer srv3.Close()

	var listed []sim.Status
	getJSON(t, srv3.URL+"/jobs?status=done", &listed)
	if len(listed) != 1 || listed[0].ID != sub.ID || !listed[0].Recovered {
		t.Fatalf("warm store listing wrong: %+v", listed)
	}
	sub3 := postJob(t, srv3.URL, interruptReq)
	if sub3.Disposition != string(sim.CacheHit) {
		t.Fatalf("resubmission after restart: disposition %q, want %q", sub3.Disposition, sim.CacheHit)
	}
	var res3 sim.Result
	getJSON(t, srv3.URL+"/jobs/"+sub.ID+"/result", &res3)
	if res3.Hash != refRes.Hash {
		t.Fatalf("warm result hash %s, want %s", res3.Hash, refRes.Hash)
	}
	arts3 := artifactBodies(t, srv3.URL, sub.ID)
	for name, want := range wantArts {
		if !bytes.Equal(arts3[name], want) {
			t.Fatalf("warm artifact %s differs after restart", name)
		}
	}
	// Terminal jobs hold no checkpoints: they were deleted on completion.
	if ck, err := store3.LatestCheckpoint(sub.ID); err != nil || ck != nil {
		t.Fatalf("completed job still has checkpoints: %+v, %v", ck, err)
	}
}

// TestDrainCheckpointsRunningJobs: Drain (the graceful-shutdown path of
// `enzogo serve -data`) must checkpoint a running job at its next
// root-step boundary — even with no cadence configured — record it
// interrupted, and let the next scheduler resume it to the reference
// answer.
func TestDrainCheckpointsRunningJobs(t *testing.T) {
	dir := t.TempDir()
	store1, err := diskstore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	// No CheckpointEvery/CheckpointTime: the only checkpoint is Drain's.
	s1 := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1, Store: store1})
	req := sim.Request{Problem: "sedov", RootN: 16, MaxLevel: sim.Int(1), Steps: 20, Workers: 1}
	j, err := s1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// Let it take a few steps before draining.
	watch := j.Watch()
	seen := 0
	for p := range watch {
		seen++
		if p.Step >= 2 {
			break
		}
	}
	j.Unwatch(watch)
	if seen == 0 {
		t.Fatal("job finished before drain could interrupt it")
	}
	s1.Drain()

	ck, err := store1.LatestCheckpoint(j.ID)
	if err != nil || ck == nil {
		t.Fatalf("drain wrote no checkpoint: %v", err)
	}
	if ck.Step < 2 {
		t.Fatalf("drain checkpoint at step %d, want the drained boundary (>= 2)", ck.Step)
	}

	store2, err := diskstore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1, Store: store2})
	defer s2.Close()
	j2, ok := s2.Get(j.ID)
	if !ok {
		t.Fatal("drained job not recovered")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	res, err := j2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st := j2.Status(); !strings.HasPrefix(st.ResumedFrom, fmt.Sprintf("checkpoint step %d", ck.Step)) {
		t.Fatalf("resume provenance %q, want checkpoint step %d", st.ResumedFrom, ck.Step)
	}

	// Reference: uninterrupted in-memory run of the same request.
	ref := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1})
	defer ref.Close()
	rj, err := ref.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := rj.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != refRes.Hash {
		t.Fatalf("drained+resumed hash %s, uninterrupted %s", res.Hash, refRes.Hash)
	}
}

// TestRecoverBacklogLargerThanQueue: startup must not block behind a
// recovered backlog bigger than the queue — NewScheduler returns
// promptly (the HTTP listener depends on it) and every recovered job
// still runs to completion.
func TestRecoverBacklogLargerThanQueue(t *testing.T) {
	dir := t.TempDir()
	store1, err := diskstore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Fabricate interrupted records, as a kill would leave them.
	const n = 4
	for i := 0; i < n; i++ {
		err := store1.SaveManifest(sim.JobManifest{
			ID: fmt.Sprintf("job%04d", i),
			Request: sim.Request{Problem: "sedov", RootN: 8, MaxLevel: sim.Int(0), Steps: 2,
				Knobs: map[string]float64{"e0": float64(5 + i)}},
			Workers: 1, State: sim.ManifestInterrupted,
			SubmittedAt: time.Now().Add(time.Duration(i) * time.Second),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	startupDone := make(chan *sim.Scheduler, 1)
	go func() {
		startupDone <- sim.NewScheduler(sim.Config{
			MaxConcurrent: 1, TotalWorkers: 1, QueueDepth: 1, Store: store1,
		})
	}()
	var s *sim.Scheduler
	select {
	case s = <-startupDone:
	case <-time.After(30 * time.Second):
		t.Fatal("NewScheduler blocked on a recovered backlog larger than the queue")
	}
	defer s.Close()
	if recovered, resumed, err := s.RecoverState(); err != nil || recovered != n || resumed != n {
		t.Fatalf("recovered %d resumed %d err %v, want %d/%d", recovered, resumed, err, n, n)
	}
	deadline := time.Now().Add(120 * time.Second)
	for i := 0; i < n; i++ {
		j, ok := s.Get(fmt.Sprintf("job%04d", i))
		if !ok {
			t.Fatalf("job%04d not recovered", i)
		}
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		if _, err := j.Wait(ctx); err != nil {
			cancel()
			t.Fatalf("recovered job %d: %v", i, err)
		}
		cancel()
	}
}

// TestWarmStoreSchedulerLevel: completed results rehydrate as cache
// hits without HTTP in the loop (the enzobatch -data path).
func TestWarmStoreSchedulerLevel(t *testing.T) {
	dir := t.TempDir()
	req := sim.Request{Problem: "sedov", RootN: 8, MaxLevel: sim.Int(1), Steps: 2, Workers: 1}

	store1, err := diskstore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1, Store: store1})
	j1, err := s1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := j1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	store2, err := diskstore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1, Store: store2})
	defer s2.Close()
	j2, disp, err := s2.SubmitWithDisposition(req)
	if err != nil {
		t.Fatal(err)
	}
	if disp != sim.CacheHit {
		t.Fatalf("disposition %q across restart, want %q", disp, sim.CacheHit)
	}
	res2, err := j2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Hash != res1.Hash || res2.Steps != res1.Steps {
		t.Fatalf("warm result differs: %+v vs %+v", res2, res1)
	}
	if st := s2.Stats(); st.Executed != 0 || st.CacheHits != 1 {
		t.Fatalf("warm hit should not execute: %+v", st)
	}
}
