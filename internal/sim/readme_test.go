package sim

// The README smoke test: every `curl` example in README.md is replayed
// against a real test server, in document order. A renamed endpoint, a
// stale request body or a removed field breaks this test, so the docs
// cannot drift from the API — this is the CI docs job's "runnable
// documentation" gate.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// curlCmd is one parsed README example.
type curlCmd struct {
	line    string
	method  string
	port    string // README port token: ":8080", ":8081" or ":8082"
	path    string
	body    string
	headers map[string]string
}

// readmeCurlLines extracts the curl command lines from README.md's
// fenced code blocks.
func readmeCurlLines(t *testing.T) []string {
	t.Helper()
	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence && strings.HasPrefix(trimmed, "curl ") {
			out = append(out, trimmed)
		}
	}
	if len(out) == 0 {
		t.Fatal("README.md has no curl examples to smoke-test")
	}
	return out
}

// tokenize splits a shell-ish line on spaces, keeping single-quoted
// strings (the JSON bodies) intact.
func tokenize(line string) []string {
	var tokens []string
	var cur strings.Builder
	inQuote := false
	for _, r := range line {
		switch {
		case r == '\'':
			inQuote = !inQuote
		case r == ' ' && !inQuote:
			if cur.Len() > 0 {
				tokens = append(tokens, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		tokens = append(tokens, cur.String())
	}
	return tokens
}

// parseCurl understands exactly the curl dialect the README is allowed
// to use: -s/-sS/-O flag noise, -X METHOD, -d BODY (implies POST),
// -H 'Header: value', a URL rooted at one of the three documented
// ports (:8080 single node, :8080–:8082 for the cluster quickstart),
// and a trailing "| ..." pipe or "# ..." comment. An unrecognized
// token fails the test — examples must stay simple enough to be
// machine-verified.
func parseCurl(t *testing.T, line string) curlCmd {
	t.Helper()
	cmd := curlCmd{line: line, method: http.MethodGet}
	tokens := tokenize(line)
	for i := 1; i < len(tokens); i++ {
		tok := tokens[i]
		switch {
		case tok == "|" || strings.HasPrefix(tok, "#"):
			return cmd // pipe target / comment: not part of the request
		case tok == "-s" || tok == "-sS" || tok == "-O" || tok == "-sO" || tok == "-i":
			// display-only flags
		case tok == "-X":
			i++
			if i >= len(tokens) {
				t.Fatalf("README example has -X with no method: %q", line)
			}
			cmd.method = tokens[i]
		case tok == "-d":
			i++
			if i >= len(tokens) {
				t.Fatalf("README example has -d with no body: %q", line)
			}
			cmd.body = tokens[i]
			if cmd.method == http.MethodGet {
				cmd.method = http.MethodPost
			}
		case tok == "-H":
			i++
			if i >= len(tokens) {
				t.Fatalf("README example has -H with no header: %q", line)
			}
			k, v, ok := strings.Cut(tokens[i], ":")
			if !ok {
				t.Fatalf("README example has a malformed -H header: %q", line)
			}
			if cmd.headers == nil {
				cmd.headers = map[string]string{}
			}
			cmd.headers[strings.TrimSpace(k)] = strings.TrimSpace(v)
		case strings.HasPrefix(tok, ":8080/") || strings.HasPrefix(tok, ":8081/") || strings.HasPrefix(tok, ":8082/"):
			cmd.port = tok[:len(":8080")]
			cmd.path = tok[len(":8080"):]
		default:
			t.Fatalf("README example uses a curl feature the smoke test cannot verify: %q in %q", tok, line)
		}
	}
	if cmd.path == "" {
		t.Fatalf("README example has no :8080/:8081/:8082 URL: %q", line)
	}
	return cmd
}

// TestReadmeCurlExamples replays every README curl example against a
// live three-peer cluster in document order, threading the job ID and
// artifact name of the most recent POST through the <id> and <name>
// placeholders. The README's :8080/:8081/:8082 port tokens map onto
// the three peers, so the single-node examples run unchanged against
// the first member while the cluster-quickstart examples exercise real
// cross-peer forwarding and proxying.
func TestReadmeCurlExamples(t *testing.T) {
	const members = 3
	lns := make([]net.Listener, members)
	urls := make([]string, members)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	scheds := make([]*Scheduler, members)
	base := map[string]string{} // README port token -> live server URL
	for i := range scheds {
		// Identical config on every member: the canonical job ID folds in
		// the effective worker budget, so ownership agreement requires it.
		scheds[i] = NewScheduler(Config{MaxConcurrent: 2, TotalWorkers: 2})
		defer scheds[i].Close()
		p, err := NewPeer(scheds[i], PeerConfig{Self: urls[i], Peers: urls, PingEvery: 100 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		srv := &httptest.Server{Listener: lns[i], Config: &http.Server{Handler: p.Handler()}}
		srv.Start()
		defer srv.Close()
		base[fmt.Sprintf(":%d", 8080+i)] = urls[i]
	}

	// A job lives on exactly one peer (its ring owner), which need not be
	// the peer the README submitted it through.
	find := func(id string) (*Job, bool) {
		for _, s := range scheds {
			if j, ok := s.Get(id); ok {
				return j, true
			}
		}
		return nil, false
	}

	var lastID string
	waitDone := func() {
		t.Helper()
		j, ok := find(lastID)
		if !ok {
			t.Fatalf("submitted job %s not found on any peer", lastID)
		}
		select {
		case <-j.Done():
		case <-time.After(120 * time.Second):
			t.Fatalf("job %s did not finish", lastID)
		}
		if st := j.State(); st != Done {
			res, err := j.Result()
			t.Fatalf("job %s finished %s (res %+v err %v)", lastID, st, res, err)
		}
	}
	firstArtifact := func() string {
		t.Helper()
		waitDone()
		j, _ := find(lastID)
		arts := j.Artifacts().All()
		if len(arts) == 0 {
			t.Fatalf("README example needs an artifact, but job %s produced none", lastID)
		}
		return arts[0].Name
	}

	for _, line := range readmeCurlLines(t) {
		cmd := parseCurl(t, line)
		if strings.Contains(cmd.path, "<id>") {
			if lastID == "" {
				t.Fatalf("README example references <id> before any POST /jobs: %q", line)
			}
			waitDone() // GETs describe the finished example job
			cmd.path = strings.ReplaceAll(cmd.path, "<id>", lastID)
		}
		if strings.Contains(cmd.path, "<name>") {
			cmd.path = strings.ReplaceAll(cmd.path, "<name>", firstArtifact())
		}
		req, err := http.NewRequest(cmd.method, base[cmd.port]+cmd.path, strings.NewReader(cmd.body))
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		if cmd.body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		for k, v := range cmd.headers {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		// Cancelling the already finished example job is a legitimate
		// 409; everything else must succeed.
		if cmd.method == http.MethodDelete && resp.StatusCode == http.StatusConflict {
			continue
		}
		if resp.StatusCode >= 400 {
			t.Fatalf("README example failed: %q -> %s\n%s", line, resp.Status, body)
		}
		if cmd.method == http.MethodPost && strings.HasPrefix(cmd.path, "/jobs") {
			var sub struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
				t.Fatalf("%q: submit response has no job id (err %v):\n%s", line, err, body)
			}
			lastID = sub.ID
		}
	}
}
