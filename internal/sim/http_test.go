package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func postJob(t *testing.T, url string, req Request) SubmitResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /jobs: %s", resp.Status)
	}
	var out SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func getResult(t *testing.T, url, id string) (*Result, bool) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%s/result", url, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: %s", resp.Status)
	}
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return &res, true
}

func waitResult(t *testing.T, url, id string) *Result {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if res, done := getResult(t, url, id); done {
			return res
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil
}

// TestHTTPEndToEnd is the service acceptance test: a job submitted over
// the HTTP API returns exactly the hash of the same problem run via
// core.New directly, and a duplicate POST is answered from cache without
// a second execution.
func TestHTTPEndToEnd(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 2, TotalWorkers: 4})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req := Request{Problem: "sedov", RootN: 8, MaxLevel: Int(1), Steps: 2, Workers: 2}
	sub := postJob(t, srv.URL, req)
	if sub.Disposition != "scheduled" {
		t.Fatalf("first POST disposition %q", sub.Disposition)
	}
	res := waitResult(t, srv.URL, sub.ID)
	if want := directHash(t, req, s.SlotWorkers()); res.Hash != want {
		t.Fatalf("HTTP job hash %s, direct core.New run %s", res.Hash, want)
	}
	if res.Steps != 2 || res.Metrics.StepsTaken != 2 || res.Metrics.CellUpdates == 0 {
		t.Fatalf("bad result payload: %+v", res)
	}
	if len(res.Metrics.OperatorSeconds) == 0 {
		t.Fatalf("result lacks per-operator metrics: %+v", res.Metrics)
	}

	// A duplicate submission is a cache hit: same ID, no new execution.
	dup := postJob(t, srv.URL, req)
	if dup.Disposition != "cache" || dup.ID != sub.ID {
		t.Fatalf("duplicate POST: disposition %q id %s (want cache, %s)", dup.Disposition, dup.ID, sub.ID)
	}
	if st := s.Stats(); st.Executed != 1 {
		t.Fatalf("%d executions after duplicate POST, want 1", st.Executed)
	}
}

// TestHTTPConcurrentDuplicates races identical submissions through the
// HTTP layer: one execution, every response converging on one job ID.
func TestHTTPConcurrentDuplicates(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 2, TotalWorkers: 2})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req := Request{Problem: "khi", RootN: 8, MaxLevel: Int(1), Steps: 2, Workers: 1}
	const n = 6
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = postJob(t, srv.URL, req).ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("submission %d got job %s, want %s", i, ids[i], ids[0])
		}
	}
	waitResult(t, srv.URL, ids[0])
	if st := s.Stats(); st.Executed != 1 {
		t.Fatalf("%d executions for %d racing posts", st.Executed, n)
	}
}

func TestHTTPStatusListEventsAndAux(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 2})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	sub := postJob(t, srv.URL, Request{Problem: "sedov", RootN: 8, MaxLevel: Int(0), Steps: 2})

	// The events stream yields one NDJSON line per step plus the final
	// status line.
	resp, err := http.Get(srv.URL + "/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	var lastLine string
	for sc.Scan() {
		lines++
		lastLine = sc.Text()
	}
	resp.Body.Close()
	if lines != 3 {
		t.Fatalf("events stream had %d lines, want 2 steps + final status", lines)
	}
	if !strings.Contains(lastLine, `"state"`) || !strings.Contains(lastLine, `"done"`) {
		t.Fatalf("final events line is not the terminal status: %s", lastLine)
	}

	for _, ep := range []string{"/jobs", "/jobs/" + sub.ID, "/problems", "/healthz"} {
		resp, err := http.Get(srv.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", ep, resp.Status)
		}
		var v any
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v", ep, err)
		}
		resp.Body.Close()
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{"sim_jobs_submitted_total 1", "sim_jobs_executed_total 1", "sim_slots 1"} {
		if !strings.Contains(buf.String(), metric) {
			t.Fatalf("metrics missing %q:\n%s", metric, buf.String())
		}
	}

	// Unknown job and bad payloads are clean client errors.
	if resp, _ := http.Get(srv.URL + "/jobs/deadbeef"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %s", resp.Status)
	}
	bad, _ := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{"problem":"nosuch"}`))
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad problem: %s", bad.Status)
	}
	bad2, _ := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{"bogus_field":1}`))
	if bad2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %s", bad2.Status)
	}
}

// TestHTTPListFilterAndPagination: GET /jobs navigates large job tables
// via ?status=, ?limit= and ?offset=, with the pre-pagination match
// count in X-Total-Count.
func TestHTTPListFilterAndPagination(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 2})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Three distinct completed jobs plus one cancelled record.
	var ids []string
	for _, e0 := range []float64{5, 10, 15} {
		sub := postJob(t, srv.URL, Request{Problem: "sedov", RootN: 8, MaxLevel: Int(0), Steps: 2,
			Knobs: map[string]float64{"e0": e0}})
		ids = append(ids, sub.ID)
		waitResult(t, srv.URL, sub.ID)
	}
	cancelled := postJob(t, srv.URL, Request{Problem: "sedov", RootN: 8, MaxLevel: Int(1), Steps: 10000})
	j, _ := s.Get(cancelled.ID)
	<-j.Watch()
	s.Cancel(cancelled.ID)
	<-j.Done()

	list := func(query string, wantTotal int) []Status {
		t.Helper()
		resp, err := http.Get(srv.URL + "/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs%s: %s", query, resp.Status)
		}
		if got := resp.Header.Get("X-Total-Count"); got != fmt.Sprint(wantTotal) {
			t.Fatalf("GET /jobs%s: X-Total-Count %s, want %d", query, got, wantTotal)
		}
		var out []Status
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if got := list("", 4); len(got) != 4 {
		t.Fatalf("unfiltered list has %d rows", len(got))
	}
	done := list("?status=done", 3)
	if len(done) != 3 {
		t.Fatalf("done filter returned %d rows", len(done))
	}
	for i, st := range done {
		if st.State != "done" || st.ID != ids[i] {
			t.Fatalf("done row %d: %+v (submit order must be preserved)", i, st)
		}
	}
	if got := list("?status=cancelled", 1); len(got) != 1 || got[0].ID != cancelled.ID {
		t.Fatalf("cancelled filter: %+v", got)
	}
	page := list("?status=done&limit=1&offset=1", 3)
	if len(page) != 1 || page[0].ID != ids[1] {
		t.Fatalf("limit/offset page wrong: %+v", page)
	}
	if got := list("?offset=99", 4); len(got) != 0 {
		t.Fatalf("over-offset should be empty, got %d rows", len(got))
	}
	for _, bad := range []string{"?status=bogus", "?limit=-1", "?offset=x"} {
		resp, err := http.Get(srv.URL + "/jobs" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /jobs%s: %s, want 400", bad, resp.Status)
		}
	}
}

// TestHTTPListPaginationStable: GET /jobs pages on a documented stable
// sort key — (submit time, id) — so an ?offset= walk over a scheduler
// whose jobs are changing state never skips or duplicates a job id, and
// ties on submit time break deterministically by id (the raw retention
// order, which moves resubmitted configurations to the back and makes
// no promise about equal timestamps, is NOT the pagination order).
func TestHTTPListPaginationStable(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 1, CacheSize: 64})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const n = 9
	want := map[string]bool{}
	for i := 0; i < n; i++ {
		sub := postJob(t, srv.URL, Request{Problem: "sedov", RootN: 8, MaxLevel: Int(0), Steps: 2,
			Tenant: "pager", Knobs: map[string]float64{"e0": float64(i + 1)}})
		want[sub.ID] = true
	}
	// Force submit-time ties: with one shared timestamp the only order
	// left is the id tiebreak, which the raw retention order does not
	// provide.
	tied := time.Now()
	for _, j := range s.Jobs() {
		j.mu.Lock()
		j.submitted = tied
		j.mu.Unlock()
	}

	// Page through the table repeatedly while the single slot churns the
	// jobs queued→running→done underneath the walk.
	for walk := 0; walk < 25; walk++ {
		seen := map[string]bool{}
		var order []string
		for offset := 0; ; offset += 3 {
			resp, err := http.Get(fmt.Sprintf("%s/jobs?limit=3&offset=%d", srv.URL, offset))
			if err != nil {
				t.Fatal(err)
			}
			// Every page carries the queue-pressure headers, and queued
			// rows are accounted to their tenant.
			qd, err := strconv.Atoi(resp.Header.Get("X-Queue-Depth"))
			if err != nil || qd < 0 {
				t.Fatalf("walk %d: X-Queue-Depth %q: %v", walk, resp.Header.Get("X-Queue-Depth"), err)
			}
			if qd > 0 && !strings.Contains(resp.Header.Get("X-Tenant-Queued"), "pager=") {
				t.Fatalf("walk %d: %d queued but X-Tenant-Queued = %q",
					walk, qd, resp.Header.Get("X-Tenant-Queued"))
			}
			var page []Status
			if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if len(page) == 0 {
				break
			}
			for _, st := range page {
				if seen[st.ID] {
					t.Fatalf("walk %d: job %s appeared twice", walk, st.ID)
				}
				if st.Tenant != "pager" {
					t.Fatalf("walk %d: job %s lists tenant %q, want pager", walk, st.ID, st.Tenant)
				}
				seen[st.ID] = true
				order = append(order, st.ID)
			}
		}
		if len(seen) != n {
			t.Fatalf("walk %d: saw %d of %d jobs (a page skipped rows)", walk, len(seen), n)
		}
		for id := range seen {
			if !want[id] {
				t.Fatalf("walk %d: unknown job %s", walk, id)
			}
		}
		if !sort.StringsAreSorted(order) {
			t.Fatalf("walk %d: tied submit times not ordered by id: %v", walk, order)
		}
	}
}

func TestHTTPCancel(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 2})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	sub := postJob(t, srv.URL, Request{Problem: "sedov", RootN: 8, MaxLevel: Int(1), Steps: 10000})
	j, _ := s.Get(sub.ID)
	<-j.Watch() // running for sure
	delReq, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %s", resp.Status)
	}
	<-j.Done()
	if st := j.State(); st != Cancelled {
		t.Fatalf("state %v after HTTP cancel", st)
	}
}
