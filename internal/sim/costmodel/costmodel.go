// Package costmodel turns the perf.JobMetrics history of completed jobs
// into a cost predictor: given a problem name, its canonical knob vector
// and the nominal work unit rootn³×steps, it estimates wall-clock
// seconds, total cell updates and a confidence for a submission before
// it runs. Two predictors compete per problem — a closed-form per-op
// linear fit on work (seconds scale with cells advanced) and a
// k-nearest-neighbour average over knob space (for cliffy cost surfaces
// a line cannot follow) — and the model picks whichever has the lower
// leave-one-out held-out error, in the spirit of held-out
// model-selection consistency. State serializes deterministically so it
// can be persisted in the scheduler's Store and replicated across serve
// peers; every input is sanitized on the way in, so estimates are never
// NaN, Inf or negative regardless of history.
package costmodel

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// maxSamplesPerProblem bounds the per-problem history: beyond it the
// oldest observation is dropped, so the model (and its persisted state)
// stays O(1) per problem no matter how many jobs run.
const maxSamplesPerProblem = 512

// kNeighbours is how many nearest samples the NN predictor averages.
const kNeighbours = 3

// Predictor names reported in Estimate.Predictor.
const (
	// PredictorLinear is the closed-form per-op least-squares fit of
	// seconds against work; slopes are clamped non-negative, so its
	// estimates are monotone in work by construction.
	PredictorLinear = "linear"
	// PredictorNN is the k-nearest-neighbour fallback: it averages the
	// seconds-per-work rate of the k closest samples in knob space and
	// scales by the queried work.
	PredictorNN = "nn"
	// PredictorNone means the model has no history for the problem and
	// the estimate carries zero confidence.
	PredictorNone = "none"
)

// Sample is one observed job execution: the knobs it ran with and the
// cost it actually incurred, distilled from perf.JobMetrics.
type Sample struct {
	// JobID dedupes observations: re-observing the same job replaces
	// its sample in place, which makes peer merges a plain union.
	JobID string `json:"job_id"`
	// Problem names the registered problem. Samples never inform
	// estimates across problems.
	Problem string `json:"problem"`
	// Features is the canonical knob vector (rootn, maxlevel, workers,
	// chemistry, "knob:"-prefixed extras) the NN predictor measures
	// distance in. Steps and work are deliberately excluded so that for
	// fixed knobs the NN estimate stays proportional to work.
	Features map[string]float64 `json:"features,omitempty"`
	// Work is the nominal work unit rootn³×steps the linear predictor
	// fits against.
	Work float64 `json:"work"`
	// Seconds is the observed wall-clock runtime.
	Seconds float64 `json:"seconds"`
	// Cells is the observed total cell-update count.
	Cells float64 `json:"cells,omitempty"`
	// OpSeconds is the per-operator wall-second breakdown (including
	// the "other" residual); when every sample carries one, the linear
	// predictor fits each operator separately and sums the parts.
	OpSeconds map[string]float64 `json:"op_seconds,omitempty"`
}

// Query asks for a cost estimate before a job runs.
type Query struct {
	// Problem selects which per-problem history answers the query.
	Problem string
	// Work is the nominal work unit rootn³×steps of the submission.
	Work float64
	// Features is the submission's canonical knob vector, in the same
	// space as Sample.Features.
	Features map[string]float64
}

// Estimate is a cost prediction. All fields are finite and
// non-negative regardless of what the model observed.
type Estimate struct {
	// Seconds is the predicted wall-clock runtime.
	Seconds float64 `json:"seconds"`
	// Cells is the predicted total cell updates.
	Cells float64 `json:"cells"`
	// Confidence in [0,1] grows with history size and shrinks with the
	// chosen predictor's held-out error.
	Confidence float64 `json:"confidence"`
	// Predictor names the model that produced Seconds: "linear", "nn",
	// or "none" when the problem has no history.
	Predictor string `json:"predictor"`
	// Samples is how many observations back the estimate; zero means
	// the estimate is vacuous and must not drive admission decisions.
	Samples int `json:"samples"`
}

// history is the per-problem state: the bounded sample window plus the
// lazily recomputed predictor selection.
type history struct {
	samples    []Sample
	dirty      bool
	sinceScore int // samples changed since the last held-out scoring
	predictor  string
	looErr     float64
}

// Model accumulates samples and answers cost queries. Safe for
// concurrent use.
type Model struct {
	mu       sync.Mutex
	problems map[string]*history
}

// New returns an empty model.
func New() *Model {
	return &Model{problems: map[string]*history{}}
}

// finiteOrZero maps NaN and ±Inf to 0 so no estimate or persisted state
// can carry a non-finite value.
func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// nonNeg sanitizes to a finite, non-negative value.
func nonNeg(v float64) float64 {
	v = finiteOrZero(v)
	if v < 0 {
		return 0
	}
	return v
}

// validUTF8 forces a string to valid UTF-8 (invalid bytes become the
// replacement rune). json.Marshal would escape invalid bytes the same
// way, but only on the wire — the decoded string would then differ from
// the stored one and Encode would no longer be a fixed point.
func validUTF8(s string) string {
	return strings.ToValidUTF8(s, "�")
}

// sanitizeSample copies s with every numeric field finite (and the
// magnitudes that must be non-negative clamped to zero) and every
// string valid UTF-8, so samples are always JSON-marshalable, encoding
// is a fixed point, and no input can poison an estimate.
func sanitizeSample(s Sample) Sample {
	out := s
	out.JobID = validUTF8(s.JobID)
	out.Problem = validUTF8(s.Problem)
	out.Work = nonNeg(s.Work)
	out.Seconds = nonNeg(s.Seconds)
	out.Cells = nonNeg(s.Cells)
	if len(s.Features) > 0 {
		out.Features = make(map[string]float64, len(s.Features))
		for k, v := range s.Features {
			out.Features[validUTF8(k)] = finiteOrZero(v) // knobs may legitimately be negative
		}
	} else {
		out.Features = nil
	}
	if len(s.OpSeconds) > 0 {
		out.OpSeconds = make(map[string]float64, len(s.OpSeconds))
		for k, v := range s.OpSeconds {
			out.OpSeconds[validUTF8(k)] = nonNeg(v)
		}
	} else {
		out.OpSeconds = nil
	}
	return out
}

// mapsEqual reports whether two float maps hold identical entries.
func mapsEqual(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// sampleEqual reports whether two (sanitized) samples are identical, so
// idempotent re-observation (e.g. recovery backfill after a restart)
// does not dirty the model or rewrite its persisted state.
func sampleEqual(a, b Sample) bool {
	return a.JobID == b.JobID && a.Problem == b.Problem &&
		a.Work == b.Work && a.Seconds == b.Seconds && a.Cells == b.Cells &&
		mapsEqual(a.Features, b.Features) && mapsEqual(a.OpSeconds, b.OpSeconds)
}

// Observe records one completed job. Re-observing a JobID replaces its
// sample in place. It reports whether the model state changed (callers
// persist and replicate only on true).
func (m *Model) Observe(s Sample) bool {
	s = sanitizeSample(s)
	if s.Problem == "" {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.problems[s.Problem]
	if h == nil {
		h = &history{dirty: true}
		m.problems[s.Problem] = h
	}
	for i := range h.samples {
		if h.samples[i].JobID == s.JobID {
			if sampleEqual(h.samples[i], s) {
				return false
			}
			h.samples[i] = s
			h.dirty = true
			h.sinceScore++
			return true
		}
	}
	h.samples = append(h.samples, s)
	if len(h.samples) > maxSamplesPerProblem {
		h.samples = append([]Sample(nil), h.samples[len(h.samples)-maxSamplesPerProblem:]...)
	}
	h.dirty = true
	h.sinceScore++
	return true
}

// Samples reports how many observations the model holds for problem.
func (m *Model) Samples(problem string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h := m.problems[problem]; h != nil {
		return len(h.samples)
	}
	return 0
}

// TotalSamples reports observations held across all problems.
func (m *Model) TotalSamples() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, h := range m.problems {
		n += len(h.samples)
	}
	return n
}

// fitLine is the closed-form least-squares fit of y against x with the
// slope clamped non-negative (cost cannot shrink with work). When x is
// effectively constant the fit degenerates: through the origin if the
// constant is positive (work-proportional extrapolation), otherwise to
// the mean of y.
func fitLine(xs, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	meanX, meanY := sx/n, sy/n
	denom := n*sxx - sx*sx
	if !(denom > 1e-12*math.Max(1, n*sxx)) { // also catches NaN
		if meanX > 0 {
			return meanY / meanX, 0
		}
		return 0, meanY
	}
	slope = (n*sxy - sx*sy) / denom
	if !(slope >= 0) { // clamp negative (or NaN) slopes to the mean predictor
		return 0, meanY
	}
	return slope, meanY - slope*meanX
}

// opKeys returns the sorted union of per-op keys across samples, or nil
// if any sample lacks a breakdown (then only the whole-wall fit is
// sound).
func opKeys(samples []Sample) []string {
	set := map[string]bool{}
	for _, s := range samples {
		if len(s.OpSeconds) == 0 {
			return nil
		}
		for k := range s.OpSeconds {
			set[k] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// linearSeconds predicts wall seconds at the given work from per-op
// linear fits (falling back to a single whole-wall fit when breakdowns
// are missing). Each fitted term is clamped non-negative, so the sum is
// monotone non-decreasing in work.
func linearSeconds(train []Sample, work float64) float64 {
	if len(train) == 0 {
		return 0
	}
	xs := make([]float64, len(train))
	ys := make([]float64, len(train))
	for i, s := range train {
		xs[i] = s.Work
	}
	if keys := opKeys(train); keys != nil {
		total := 0.0
		for _, k := range keys {
			for i, s := range train {
				ys[i] = s.OpSeconds[k]
			}
			a, b := fitLine(xs, ys)
			total += math.Max(0, a*work+b)
		}
		return total
	}
	for i, s := range train {
		ys[i] = s.Seconds
	}
	a, b := fitLine(xs, ys)
	return math.Max(0, a*work+b)
}

// workRate is a sample's seconds-per-work rate (work floored at 1 so
// zero-work histories still predict something sane).
func workRate(s Sample) float64 {
	return s.Seconds / math.Max(s.Work, 1)
}

// nnSeconds predicts wall seconds by averaging the seconds-per-work
// rate of the k nearest samples in range-normalized knob space and
// scaling by the queried work. Because distance ignores work, the
// estimate is proportional to work for fixed knobs.
func nnSeconds(train []Sample, features map[string]float64, work float64) float64 {
	if len(train) == 0 {
		return 0
	}
	dims := map[string]float64{} // dim -> max |value| (the normalization scale)
	note := func(m map[string]float64) {
		for k, v := range m {
			if a := math.Abs(finiteOrZero(v)); a > dims[k] {
				dims[k] = a
			}
		}
	}
	for _, s := range train {
		note(s.Features)
	}
	note(features)
	type neighbour struct {
		d, rate float64
		id      string
	}
	nbs := make([]neighbour, len(train))
	for i, s := range train {
		d2 := 0.0
		for k, scale := range dims {
			if scale == 0 {
				continue
			}
			diff := (s.Features[k] - finiteOrZero(features[k])) / scale
			d2 += diff * diff
		}
		nbs[i] = neighbour{d: math.Sqrt(d2), rate: workRate(s), id: s.JobID}
	}
	sort.Slice(nbs, func(i, j int) bool {
		if nbs[i].d != nbs[j].d {
			return nbs[i].d < nbs[j].d
		}
		return nbs[i].id < nbs[j].id
	})
	k := kNeighbours
	if k > len(nbs) {
		k = len(nbs)
	}
	var wsum, rsum float64
	for _, nb := range nbs[:k] {
		w := 1 / (nb.d + 1e-9)
		wsum += w
		rsum += w * nb.rate
	}
	if wsum == 0 {
		return 0
	}
	return (rsum / wsum) * math.Max(work, 1)
}

// cellsAt predicts total cell updates at the given work from the mean
// observed cells-per-work rate (predictor-independent: cell counts are
// near-deterministic in the configuration).
func cellsAt(train []Sample, work float64) float64 {
	var rate float64
	n := 0
	var mean float64
	for _, s := range train {
		mean += s.Cells
		if s.Work > 0 && s.Cells > 0 {
			rate += s.Cells / s.Work
			n++
		}
	}
	if n > 0 {
		return (rate / float64(n)) * work
	}
	if len(train) > 0 {
		return mean / float64(len(train))
	}
	return 0
}

// meanSeconds is the last-resort fallback when a predictor misbehaves
// numerically.
func meanSeconds(train []Sample) float64 {
	if len(train) == 0 {
		return 0
	}
	var sum float64
	for _, s := range train {
		sum += s.Seconds
	}
	return sum / float64(len(train))
}

// looWindow bounds how many points the leave-one-out scorer holds out:
// selection needs a representative error, not an O(n^2) sweep of the
// whole window on every refit (refits land on the scheduler's submit
// path). Only the newest looWindow samples are scored — each still
// predicted from the full remaining history.
const looWindow = 24

// looErrors computes each predictor's leave-one-out mean relative
// error: each of the newest samples is predicted from all the others
// and compared against what actually happened.
func looErrors(samples []Sample) (linErr, nnErr float64) {
	n := len(samples)
	start := 0
	if n > looWindow {
		start = n - looWindow
	}
	train := make([]Sample, 0, n-1)
	for i := start; i < n; i++ {
		train = train[:0]
		train = append(train, samples[:i]...)
		train = append(train, samples[i+1:]...)
		actual := math.Max(samples[i].Seconds, 1e-6)
		lin := linearSeconds(train, samples[i].Work)
		nn := nnSeconds(train, samples[i].Features, samples[i].Work)
		linErr += math.Abs(lin-samples[i].Seconds) / actual
		nnErr += math.Abs(nn-samples[i].Seconds) / actual
	}
	held := float64(n - start)
	return linErr / held, nnErr / held
}

// selection returns the cached (predictor, held-out error) choice,
// recomputing it only when the history changed. Below three samples
// leave-one-out is meaningless, so the linear fit wins by default with
// a pessimistic error of 1.
func (h *history) selection() (string, float64) {
	if !h.dirty {
		return h.predictor, h.looErr
	}
	// On a large history a handful of new samples cannot meaningfully
	// move the held-out error: keep the cached choice until a batch
	// accumulates, so rescoring (O(looWindow × n)) amortizes to O(n)
	// per observation on the scheduler's submit path.
	if h.predictor != "" && len(h.samples) >= 4*looWindow && h.sinceScore < looWindow {
		h.dirty = false
		return h.predictor, h.looErr
	}
	switch n := len(h.samples); {
	case n == 0:
		h.predictor, h.looErr = PredictorNone, 1
	case n < 3:
		h.predictor, h.looErr = PredictorLinear, 1
	default:
		lin, nn := looErrors(h.samples)
		if nn < lin {
			h.predictor, h.looErr = PredictorNN, nn
		} else {
			h.predictor, h.looErr = PredictorLinear, lin // ties favor the monotone fit
		}
	}
	h.looErr = nonNeg(h.looErr)
	h.dirty = false
	h.sinceScore = 0
	return h.predictor, h.looErr
}

// Estimate predicts the cost of a query. With no history for the
// problem it returns a zero estimate with Predictor "none" and
// Samples 0; callers must not reject on those.
func (m *Model) Estimate(q Query) Estimate {
	work := nonNeg(q.Work)
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.problems[q.Problem]
	if h == nil || len(h.samples) == 0 {
		return Estimate{Predictor: PredictorNone}
	}
	predictor, looErr := h.selection()
	var sec float64
	if predictor == PredictorNN {
		sec = nnSeconds(h.samples, q.Features, work)
	} else {
		sec = linearSeconds(h.samples, work)
	}
	if math.IsNaN(sec) || math.IsInf(sec, 0) || sec < 0 {
		sec = meanSeconds(h.samples)
	}
	n := len(h.samples)
	conf := (float64(n) / float64(n+3)) / (1 + looErr)
	if conf < 0 {
		conf = 0
	} else if conf > 1 {
		conf = 1
	}
	return Estimate{
		Seconds:    nonNeg(sec),
		Cells:      nonNeg(cellsAt(h.samples, work)),
		Confidence: nonNeg(conf),
		Predictor:  predictor,
		Samples:    n,
	}
}

// persistedState is the serialized model: version plus the raw sample
// windows (predictor selection is derived, so it is not persisted).
// json.Marshal sorts map keys and Go renders floats with the shortest
// exact representation, so encoding is deterministic and round-trips
// bit-for-bit.
type persistedState struct {
	Version  int                 `json:"version"`
	Problems map[string][]Sample `json:"problems"`
}

// Encode serializes the model deterministically for Store persistence
// and peer replication.
func (m *Model) Encode() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps := persistedState{Version: 1, Problems: map[string][]Sample{}}
	for name, h := range m.problems {
		if len(h.samples) > 0 {
			ps.Problems[name] = h.samples
		}
	}
	data, err := json.Marshal(ps)
	if err != nil {
		return nil // unreachable: every stored value is finite
	}
	return data
}

// parseState decodes and sanitizes a persisted blob.
func parseState(data []byte) (persistedState, error) {
	var ps persistedState
	if err := json.Unmarshal(data, &ps); err != nil {
		return ps, fmt.Errorf("costmodel: decode: %w", err)
	}
	clean := make(map[string][]Sample, len(ps.Problems))
	for name, ss := range ps.Problems {
		name = validUTF8(name)
		for i := range ss {
			ss[i] = sanitizeSample(ss[i])
			if ss[i].Problem == "" {
				ss[i].Problem = name
			}
		}
		clean[name] = append(clean[name], ss...)
	}
	ps.Problems = clean
	return ps, nil
}

// Decode replaces the model state with a previously Encoded blob. An
// empty blob resets the model.
func (m *Model) Decode(data []byte) error {
	if len(data) == 0 {
		m.mu.Lock()
		m.problems = map[string]*history{}
		m.mu.Unlock()
		return nil
	}
	ps, err := parseState(data)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.problems = map[string]*history{}
	for name, ss := range ps.Problems {
		if len(ss) > maxSamplesPerProblem {
			ss = ss[len(ss)-maxSamplesPerProblem:]
		}
		m.problems[name] = &history{samples: ss, dirty: true, sinceScore: len(ss)}
	}
	return nil
}

// Merge unions another model's encoded state into this one: samples
// for job IDs we have not seen are appended, existing ones are kept
// (the local observation is authoritative). It reports whether the
// state changed, so receivers persist — but never re-broadcast —
// only real updates.
func (m *Model) Merge(data []byte) (bool, error) {
	if len(data) == 0 {
		return false, nil
	}
	ps, err := parseState(data)
	if err != nil {
		return false, err
	}
	names := make([]string, 0, len(ps.Problems))
	for name := range ps.Problems {
		names = append(names, name)
	}
	sort.Strings(names)
	m.mu.Lock()
	defer m.mu.Unlock()
	changed := false
	for _, name := range names {
		incoming := ps.Problems[name]
		if len(incoming) == 0 {
			continue
		}
		h := m.problems[name]
		if h == nil {
			h = &history{}
			m.problems[name] = h
		}
		seen := make(map[string]bool, len(h.samples))
		for _, s := range h.samples {
			seen[s.JobID] = true
		}
		for _, s := range incoming {
			if seen[s.JobID] {
				continue
			}
			seen[s.JobID] = true
			h.samples = append(h.samples, s)
			h.dirty = true
			h.sinceScore++
			changed = true
		}
		if len(h.samples) > maxSamplesPerProblem {
			h.samples = append([]Sample(nil), h.samples[len(h.samples)-maxSamplesPerProblem:]...)
		}
	}
	return changed, nil
}
