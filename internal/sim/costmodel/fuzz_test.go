package costmodel_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/sim/costmodel"
	"repro/internal/sim/diskstore"
)

// FuzzCostEstimate is the satellite robustness fuzz: arbitrary knob
// sets and metric histories — including NaN, ±Inf, negative and
// absurdly large values — must never produce a NaN, Inf or negative
// estimate, confidence must stay in [0,1], and the resulting model
// state must round-trip bit-for-bit through Encode→Decode→Encode and
// through the disk store's cost-model persistence.
func FuzzCostEstimate(f *testing.F) {
	f.Add("j1", "sedov", 4096.0, 0.5, 6000.0, 16.0, 0.3, 0.1, 8192.0, 32.0)
	f.Add("j2", "kh", 0.0, -1.0, math.NaN(), math.Inf(1), 1e300, -0.0, math.Inf(-1), math.NaN())
	f.Add("", "", -5.0, 1e-308, 2.0, -3.0, 0.0, 7.5, 100.0, 1.0)
	f.Add("dup", "sedov", 1e18, 1e18, 1e18, 1e18, 1e18, 1e18, 1e18, 1e18)

	f.Fuzz(func(t *testing.T, id, problem string,
		work, seconds, cells, knob, opHydro, opOther, qWork, qKnob float64) {
		m := costmodel.New()
		// Three observations from the fuzzed numbers: one raw, one with a
		// per-op breakdown, one duplicate JobID to exercise replacement.
		m.Observe(costmodel.Sample{
			JobID: id, Problem: problem, Work: work, Seconds: seconds, Cells: cells,
			Features: map[string]float64{"rootn": knob, "knob:x": qKnob},
		})
		m.Observe(costmodel.Sample{
			JobID: id + "-ops", Problem: problem, Work: qWork, Seconds: opHydro + opOther,
			Features:  map[string]float64{"rootn": knob * 2},
			OpSeconds: map[string]float64{"hydro": opHydro, "other": opOther},
		})
		m.Observe(costmodel.Sample{
			JobID: id, Problem: problem, Work: work * 2, Seconds: seconds * 3,
		})

		for _, q := range []costmodel.Query{
			{Problem: problem, Work: qWork, Features: map[string]float64{"rootn": knob, "knob:x": qKnob}},
			{Problem: problem, Work: math.NaN(), Features: map[string]float64{"rootn": math.Inf(1)}},
			{Problem: problem, Work: math.Inf(-1)},
			{Problem: "never-observed", Work: qWork},
		} {
			est := m.Estimate(q)
			for name, v := range map[string]float64{
				"seconds": est.Seconds, "cells": est.Cells, "confidence": est.Confidence,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("estimate %s = %g for query %+v", name, v, q)
				}
			}
			if est.Confidence > 1 {
				t.Fatalf("confidence %g > 1", est.Confidence)
			}
			if est.Samples == 0 && est.Predictor != costmodel.PredictorNone {
				t.Fatalf("zero-sample estimate claims predictor %q", est.Predictor)
			}
		}

		// Persistence round-trip: bit-for-bit through Encode/Decode...
		state := m.Encode()
		m2 := costmodel.New()
		if err := m2.Decode(state); err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if again := m2.Encode(); !bytes.Equal(state, again) {
			t.Fatalf("Encode→Decode→Encode drifted:\n%q\nvs\n%q", state, again)
		}
		// ...and byte-for-byte through the disk store.
		st, err := diskstore.New(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if err := st.SaveCostModel(state); err != nil {
			t.Fatal(err)
		}
		got, err := st.LoadCostModel()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, state) {
			t.Fatalf("disk round-trip drifted: %q vs %q", got, state)
		}
	})
}
