package costmodel

import (
	"bytes"
	"fmt"
	"testing"
)

// linearHistory observes n samples of a genuinely linear cost surface
// seconds = rate*work + base at fixed knobs, with work spread over a
// wide range so the fit is well conditioned.
func linearHistory(m *Model, n int, rate, base float64) {
	feats := map[string]float64{"rootn": 16, "maxlevel": 2, "workers": 2}
	for i := 0; i < n; i++ {
		work := float64((i + 1) * 1000)
		m.Observe(Sample{
			JobID:    fmt.Sprintf("lin-%d", i),
			Problem:  "sedov",
			Features: feats,
			Work:     work,
			Seconds:  rate*work + base,
			Cells:    work * 1.5,
		})
	}
}

// TestLinearSelectedOnLinearData: on a noiseless linear cost surface the
// held-out selection must pick the linear fit, and its estimate must be
// essentially exact — including an extrapolation beyond the history.
func TestLinearSelectedOnLinearData(t *testing.T) {
	m := New()
	const rate, base = 2e-4, 0.05
	linearHistory(m, 8, rate, base)

	feats := map[string]float64{"rootn": 16, "maxlevel": 2, "workers": 2}
	for _, work := range []float64{1500, 4500, 50000} { // interpolate and extrapolate
		est := m.Estimate(Query{Problem: "sedov", Work: work, Features: feats})
		if est.Predictor != PredictorLinear {
			t.Fatalf("work %g: predictor %q, want linear", work, est.Predictor)
		}
		want := rate*work + base
		if rel := abs(est.Seconds-want) / want; rel > 0.02 {
			t.Fatalf("work %g: estimated %g seconds, want %g (rel err %g)", work, est.Seconds, want, rel)
		}
		if est.Samples != 8 {
			t.Fatalf("samples %d, want 8", est.Samples)
		}
		if est.Confidence <= 0.4 {
			t.Fatalf("confidence %g on a perfect fit, want > 0.4", est.Confidence)
		}
		if wantCells := 1.5 * work; abs(est.Cells-wantCells)/wantCells > 0.02 {
			t.Fatalf("work %g: estimated %g cells, want %g", work, est.Cells, wantCells)
		}
	}

	// The untrained problem answers with a vacuous estimate.
	none := m.Estimate(Query{Problem: "kh", Work: 1000})
	if none.Predictor != PredictorNone || none.Samples != 0 || none.Seconds != 0 {
		t.Fatalf("untrained problem: %+v", none)
	}
}

// TestNNSelectedOnCliffyData: at constant work, a knob flips the cost by
// 100x — a surface no line over work can follow. Held-out selection must
// pick the neighbour predictor, and its estimates must land on the right
// side of the cliff.
func TestNNSelectedOnCliffyData(t *testing.T) {
	m := New()
	for i := 0; i < 4; i++ {
		m.Observe(Sample{
			JobID: fmt.Sprintf("lo-%d", i), Problem: "sedov",
			Features: map[string]float64{"rootn": 16, "knob:cliff": 0},
			Work:     1000, Seconds: 1,
		})
		m.Observe(Sample{
			JobID: fmt.Sprintf("hi-%d", i), Problem: "sedov",
			Features: map[string]float64{"rootn": 16, "knob:cliff": 1},
			Work:     1000, Seconds: 100,
		})
	}
	lo := m.Estimate(Query{Problem: "sedov", Work: 1000, Features: map[string]float64{"rootn": 16, "knob:cliff": 0}})
	hi := m.Estimate(Query{Problem: "sedov", Work: 1000, Features: map[string]float64{"rootn": 16, "knob:cliff": 1}})
	if lo.Predictor != PredictorNN || hi.Predictor != PredictorNN {
		t.Fatalf("predictors %q/%q, want nn on a cliffy surface", lo.Predictor, hi.Predictor)
	}
	if abs(lo.Seconds-1) > 0.05 || abs(hi.Seconds-100) > 5 {
		t.Fatalf("cliff sides estimated %g / %g, want ~1 / ~100", lo.Seconds, hi.Seconds)
	}
}

// TestEstimateMonotoneInWork is the property check: for fixed knobs, the
// estimated seconds must be non-decreasing in work (rootn³×steps), under
// whichever predictor the history selects.
func TestEstimateMonotoneInWork(t *testing.T) {
	histories := map[string]func(m *Model){
		"linear": func(m *Model) { linearHistory(m, 8, 1e-4, 0.2) },
		"cliffy": func(m *Model) {
			for i := 0; i < 6; i++ {
				v := float64(i % 2)
				m.Observe(Sample{
					JobID: fmt.Sprintf("c-%d", i), Problem: "sedov",
					Features: map[string]float64{"knob:cliff": v},
					Work:     500, Seconds: 1 + 99*v,
				})
			}
		},
		"tiny": func(m *Model) {
			m.Observe(Sample{JobID: "only", Problem: "sedov", Work: 100, Seconds: 3})
		},
		"zero-work": func(m *Model) {
			for i := 0; i < 4; i++ {
				m.Observe(Sample{JobID: fmt.Sprintf("z-%d", i), Problem: "sedov", Work: 0, Seconds: 2})
			}
		},
	}
	feats := map[string]float64{"rootn": 16, "maxlevel": 2, "knob:cliff": 1}
	for name, fill := range histories {
		m := New()
		fill(m)
		prev := -1.0
		for work := 0.0; work <= 1e9; work = work*4 + 100 {
			est := m.Estimate(Query{Problem: "sedov", Work: work, Features: feats})
			if est.Seconds < prev {
				t.Fatalf("%s history (predictor %s): estimate dropped from %g to %g as work rose to %g",
					name, est.Predictor, prev, est.Seconds, work)
			}
			prev = est.Seconds
		}
	}
}

// TestObserveDedupeAndCap: re-observing a JobID replaces in place (and
// an identical re-observation reports no change, so recovery backfill
// does not rewrite persisted state); the window stays bounded.
func TestObserveDedupeAndCap(t *testing.T) {
	m := New()
	s := Sample{JobID: "j1", Problem: "sedov", Work: 100, Seconds: 2}
	if !m.Observe(s) {
		t.Fatal("first observation reported no change")
	}
	if m.Observe(s) {
		t.Fatal("identical re-observation reported a change")
	}
	s.Seconds = 3
	if !m.Observe(s) {
		t.Fatal("updated re-observation reported no change")
	}
	if n := m.Samples("sedov"); n != 1 {
		t.Fatalf("%d samples after re-observation, want 1", n)
	}

	for i := 0; i < maxSamplesPerProblem+50; i++ {
		m.Observe(Sample{JobID: fmt.Sprintf("cap-%d", i), Problem: "sedov", Work: float64(i), Seconds: 1})
	}
	if n := m.Samples("sedov"); n != maxSamplesPerProblem {
		t.Fatalf("window holds %d samples, want the %d cap", n, maxSamplesPerProblem)
	}
	if m.TotalSamples() != maxSamplesPerProblem {
		t.Fatalf("TotalSamples %d, want %d", m.TotalSamples(), maxSamplesPerProblem)
	}
}

// TestMergeConvergence: merging two models' encoded states in either
// direction converges on the union sample set; samples already held
// locally are never replaced by a peer's copy.
func TestMergeConvergence(t *testing.T) {
	a, b := New(), New()
	for i := 0; i < 5; i++ {
		a.Observe(Sample{JobID: fmt.Sprintf("a-%d", i), Problem: "sedov", Work: float64(100 * (i + 1)), Seconds: float64(i + 1)})
		b.Observe(Sample{JobID: fmt.Sprintf("b-%d", i), Problem: "kh", Work: float64(100 * (i + 1)), Seconds: float64(2 * (i + 1))})
	}
	// A conflicting sample: both sides know job "shared" with different
	// numbers. Each side must keep its own.
	a.Observe(Sample{JobID: "shared", Problem: "sedov", Work: 50, Seconds: 7})
	b.Observe(Sample{JobID: "shared", Problem: "sedov", Work: 50, Seconds: 9})

	if changed, err := a.Merge(b.Encode()); err != nil || !changed {
		t.Fatalf("a<-b merge: changed=%v err=%v", changed, err)
	}
	if changed, err := b.Merge(a.Encode()); err != nil || !changed {
		t.Fatalf("b<-a merge: changed=%v err=%v", changed, err)
	}
	if a.TotalSamples() != 11 || b.TotalSamples() != 11 {
		t.Fatalf("after cross-merge: a=%d b=%d samples, want 11 each", a.TotalSamples(), b.TotalSamples())
	}
	// Idempotence: a second merge of the same state changes nothing.
	if changed, err := a.Merge(b.Encode()); err != nil || changed {
		t.Fatalf("repeat merge: changed=%v err=%v, want no change", changed, err)
	}
	// Local samples win conflicts: a's "shared" stayed 7 seconds.
	found := false
	for _, s := range a.problems["sedov"].samples {
		if s.JobID == "shared" {
			found = true
			if s.Seconds != 7 {
				t.Fatalf("merge replaced the local sample: %+v", s)
			}
		}
	}
	if !found {
		t.Fatal("shared sample vanished in merge")
	}
}

// TestEncodeDeterministic: Encode→Decode→Encode is bit-for-bit stable,
// so persisted state and peer broadcasts never churn without a real
// change.
func TestEncodeDeterministic(t *testing.T) {
	m := New()
	linearHistory(m, 6, 3e-5, 0.4)
	m.Observe(Sample{JobID: "x", Problem: "kh", Work: 10, Seconds: 0.25,
		OpSeconds: map[string]float64{"hydro": 0.2, "other": 0.05}})
	first := m.Encode()
	m2 := New()
	if err := m2.Decode(first); err != nil {
		t.Fatal(err)
	}
	second := m2.Encode()
	if !bytes.Equal(first, second) {
		t.Fatalf("Encode→Decode→Encode drifted:\n%s\nvs\n%s", first, second)
	}
	// Decoding an empty blob resets the model.
	if err := m2.Decode(nil); err != nil {
		t.Fatal(err)
	}
	if m2.TotalSamples() != 0 {
		t.Fatalf("decode(nil) left %d samples", m2.TotalSamples())
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
