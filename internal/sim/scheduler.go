package sim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/perf"
	"repro/internal/problems"
	"repro/internal/sim/costmodel"
	"repro/internal/snapshot"
)

// Config sizes a Scheduler.
type Config struct {
	// MaxConcurrent is the number of jobs evolving at once (default 2).
	MaxConcurrent int
	// TotalWorkers is the par worker budget partitioned evenly across
	// the concurrent slots (0 = runtime.NumCPU). A request that pins
	// its own Workers bypasses the partition.
	TotalWorkers int
	// CacheSize bounds the completed (terminal) jobs retained for
	// dedupe/cache hits, evicted oldest-first (default 64).
	CacheSize int
	// QueueDepth bounds the jobs waiting for a slot; Submit fails once
	// the backlog is full (default 256).
	QueueDepth int
	// ArtifactBytes bounds each job's derived-output artifact store;
	// oldest artifacts are evicted first once a job exceeds it (default
	// DefaultArtifactBytes).
	ArtifactBytes int
	// ArtifactCount bounds the artifacts a job retains (default
	// DefaultArtifactCount).
	ArtifactCount int
	// HotBytes bounds the shared in-memory blob hot tier fronting a
	// persistent store's artifact payloads (default DefaultHotTierBytes).
	// Ignored on a memory store, where referenced payloads are pinned.
	HotBytes int64
	// Store is the persistence layer (nil = NewMemStore, nothing
	// survives a restart). With a persistent store — diskstore.New —
	// the scheduler recovers completed results/artifacts as cache hits
	// at startup, resumes interrupted jobs from their latest
	// checkpoint, and Drain checkpoints running jobs before exit.
	Store Store
	// CheckpointEvery writes a restart checkpoint after every N-th root
	// step of a running job (0 = no step cadence). Only meaningful with
	// a persistent store; ignored otherwise.
	CheckpointEvery int
	// CheckpointTime writes a restart checkpoint whenever a job's code
	// time crosses a multiple of this interval (0 = no time cadence).
	CheckpointTime float64
	// MaxJobSeconds is the admission bound: a submission whose cost
	// estimate exceeds it is rejected with an AdmissionError carrying
	// the estimate (0 = no bound). Only estimates backed by at least one
	// observed sample reject — an untrained model admits everything.
	MaxJobSeconds float64
	// TenantWeights assigns fair-share weights to named tenants; an
	// unlisted tenant (including the implicit "default") weighs 1. A
	// tenant with weight w receives w shares of the dispatch bandwidth
	// under contention.
	TenantWeights map[string]float64
	// Clock is the scheduler's time source (nil = time.Now) — the
	// injected seam the deterministic queue-fairness and deadline tests
	// drive with a fake clock.
	Clock func() time.Time
	// Speculate enables speculative execution: when the QoS queue is
	// empty and slots sit idle, the scheduler pre-warms the result cache
	// with candidates from announced sweeps (POST /sweeps) and submission
	// lineage, preempting them at the next root-step boundary the moment
	// demand work arrives. See speculate.go.
	Speculate bool
	// SpeculateSlots bounds concurrent speculative executions (default 1
	// when Speculate is set). Speculation only uses idle capacity: a
	// speculative run also requires a free scheduler slot.
	SpeculateSlots int
	// SpeculateBudgetSeconds caps each tenant's accumulated speculative
	// wall seconds for the process lifetime (0 = no cap).
	SpeculateBudgetSeconds float64
	// SpeculateMaxSeconds skips any candidate whose cost estimate
	// exceeds it (0 = no bound). Only estimates backed by at least one
	// sample gate — an untrained model skips nothing.
	SpeculateMaxSeconds float64
	// SpeculateMinConfidence gates lineage-inferred candidates on the
	// cost model's confidence (default DefaultSpeculateMinConfidence);
	// explicit sweep rows are exempt.
	SpeculateMinConfidence float64
}

func (c Config) withDefaults() Config {
	if c.Store == nil {
		c.Store = NewMemStore()
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.TotalWorkers <= 0 {
		c.TotalWorkers = runtime.NumCPU()
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.ArtifactBytes <= 0 {
		c.ArtifactBytes = DefaultArtifactBytes
	}
	if c.ArtifactCount <= 0 {
		c.ArtifactCount = DefaultArtifactCount
	}
	if c.HotBytes <= 0 {
		c.HotBytes = DefaultHotTierBytes
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Speculate {
		if c.SpeculateSlots <= 0 {
			c.SpeculateSlots = 1
		}
		if c.SpeculateMinConfidence <= 0 {
			c.SpeculateMinConfidence = DefaultSpeculateMinConfidence
		}
	}
	return c
}

// slotWorkers is the per-job par budget of a scheduler slot: the total
// budget split evenly over the concurrent slots, never below one.
func (c Config) slotWorkers() int {
	w := c.TotalWorkers / c.MaxConcurrent
	if w < 1 {
		w = 1
	}
	return w
}

// State is a job's lifecycle phase.
type State int

// The job lifecycle: Queued → Running → one of the terminal states
// (Done, Failed, Cancelled).
const (
	Queued State = iota
	Running
	Done
	Failed
	Cancelled
)

// String renders the state for logs and the JSON API.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// terminal reports whether the state is final.
func (s State) terminal() bool { return s >= Done }

// Progress is one per-root-step update streamed to job watchers.
type Progress struct {
	Step     int     `json:"step"`
	Time     float64 `json:"time"`
	Dt       float64 `json:"dt"`
	MaxLevel int     `json:"maxlevel"`
	NumGrids int     `json:"grids"`
}

// Result is the outcome of a completed job.
type Result struct {
	// Hash is amr.(*Hierarchy).ChecksumHex of the evolved hierarchy —
	// the bitwise identity of the answer, directly comparable to a
	// local core.New run with the same resolved configuration.
	Hash     string  `json:"hash"`
	Steps    int     `json:"steps"`
	Time     float64 `json:"time"`
	MaxLevel int     `json:"maxlevel"`
	NumGrids int     `json:"grids"`
	SDR      float64 `json:"sdr"`
	// Artifacts counts the derived-output products the job retains
	// (fetch them under /jobs/{id}/artifacts).
	Artifacts int             `json:"artifacts"`
	Metrics   perf.JobMetrics `json:"metrics"`
}

// Job is one scheduled simulation. The zero job is not usable; obtain
// jobs from Scheduler.Submit or Scheduler.Get.
type Job struct {
	// ID is the canonical configuration hash — identical requests share
	// a Job (and its single execution).
	ID  string
	Req Request
	// Workers is the effective par budget the job runs with.
	Workers int
	// StepBudget and MaxTime are the resolved run bounds.
	StepBudget int
	MaxTime    float64

	sched     *Scheduler
	res       resolved
	doneCh    chan struct{}
	artifacts *ArtifactStore

	// QoS metadata, immutable once the job is visible: the fair-share
	// tenant the submission bills to, the absolute deadline derived from
	// the request hint (zero when none), and the cost model's pre-run
	// estimate (nil only for jobs recovered in a terminal state).
	tenant   string
	deadline time.Time
	est      *costmodel.Estimate

	mu          sync.Mutex
	state       State
	prog        Progress
	stepsDone   int
	history     []Progress // recent stream (≤ maxHistory), replayed to late watchers
	result      *Result
	err         error
	subs        []chan Progress
	cancel      context.CancelFunc
	submissions int
	cacheHits   int
	submitted   time.Time
	started     time.Time
	finished    time.Time

	// Durability provenance (see Status): recovered marks a job
	// rehydrated from the store at scheduler startup, resumedFrom names
	// the checkpoint its execution continued from, and ckpts/ckptStep/
	// ckptAt track the restart checkpoints written so far.
	recovered   bool
	resumedFrom string
	ckpts       int
	ckptStep    int
	ckptAt      time.Time
	// userCancelled marks an explicit Cancel of a running job, so a
	// shutdown racing the cancellation cannot misclassify the job as
	// interrupted (and resurrect it on the next start).
	userCancelled bool
	// speculative marks a job executed by the speculation planner (set
	// before the job is visible, immutable after): it bills the
	// speculative ledger instead of the demand one, writes no cadence
	// checkpoints, and fires no replication hooks.
	speculative bool
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Artifacts returns the job's derived-output store. It is non-nil for
// every scheduled job (empty when the request declared no outputs) and
// remains readable after the job is terminal, for as long as the job is
// retained.
func (j *Job) Artifacts() *ArtifactStore { return j.artifacts }

// State returns the job's current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the job's result once it is done; before that (or on
// failure/cancellation) it returns an error.
func (j *Job) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == Done:
		return j.result, nil
	case j.err != nil:
		return nil, j.err
	default:
		return nil, fmt.Errorf("sim: job %s is %s", j.ID, j.state)
	}
}

// Wait blocks until the job is terminal or ctx is cancelled, then
// returns Result().
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-j.doneCh:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// maxHistory bounds the per-job progress replay buffer; when a job
// outgrows it the oldest half is dropped, so very long jobs replay only
// a recent window of steps to late watchers.
const maxHistory = 4096

// Watch subscribes to the job's progress stream. The returned channel
// first replays the steps already completed (so a subscriber attached
// after Submit — or after the job finished — still sees the stream, up
// to the maxHistory most recent), then receives one Progress per further
// root step (updates are dropped, not blocked on, when the subscriber
// lags), and is closed when the job reaches a terminal state. A watcher
// abandoning a live job must detach with Unwatch.
func (j *Job) Watch() <-chan Progress {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan Progress, len(j.history)+64)
	for _, p := range j.history {
		ch <- p
	}
	if j.state.terminal() {
		close(ch)
		return ch
	}
	j.subs = append(j.subs, ch)
	return ch
}

// Unwatch detaches a Watch subscription before the job is terminal (an
// events client disconnecting mid-run) and closes its channel, so the
// job stops buffering updates for it. Harmless on subscriptions the job
// already closed.
func (j *Job) Unwatch(ch <-chan Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, sub := range j.subs {
		if sub == ch {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			close(sub)
			return
		}
	}
}

// publish fans a progress update out to watchers without ever blocking
// the evolution loop. All subscriber-channel operations (send here,
// close in finishLocked/Unwatch, buffer fill in Watch) happen under
// j.mu, so a send can never race a close.
func (j *Job) publish(p Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.prog = p
	j.stepsDone++
	if len(j.history) >= maxHistory {
		j.history = append(j.history[:0], j.history[maxHistory/2:]...)
	}
	j.history = append(j.history, p)
	for _, ch := range j.subs {
		select {
		case ch <- p:
		default: // lagging subscriber: drop, never stall physics
		}
	}
}

// finish moves the job to a terminal state; it reports whether this call
// performed the transition (false when another path already had).
func (j *Job) finish(state State, res *Result, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finishLocked(state, res, err)
}

// finishLocked is finish with j.mu held — Cancel needs the
// queued→cancelled transition atomic with its state check, or a slot
// could pick the job up in between and run it to completion
// uncancellably.
func (j *Job) finishLocked(state State, res *Result, err error) bool {
	if j.state.terminal() {
		return false
	}
	j.state = state
	j.result = res
	j.err = err
	j.finished = j.sched.now()
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	j.cancel = nil
	j.artifacts.close()
	close(j.doneCh)
	return true
}

// Status is the JSON-facing snapshot of a job.
type Status struct {
	ID      string `json:"id"`
	Problem string `json:"problem"`
	State   string `json:"state"`
	// SubmittedAt is the job's first-submission time — with the ID, the
	// stable sort key of GET /jobs pagination.
	SubmittedAt time.Time `json:"submitted_at"`
	Workers     int       `json:"workers"`
	StepBudget  int       `json:"step_budget"`
	Progress    Progress  `json:"progress"`
	Submissions int       `json:"submissions"`
	CacheHits   int       `json:"cache_hits"`
	// Artifacts and ArtifactBytes count the derived-output products
	// retained so far (see GET /jobs/{id}/artifacts).
	Artifacts     int     `json:"artifacts"`
	ArtifactBytes int     `json:"artifact_bytes"`
	Error         string  `json:"error,omitempty"`
	Hash          string  `json:"hash,omitempty"`
	WallSeconds   float64 `json:"wall_seconds"`
	// Checkpoint provenance (persistent stores only): how many restart
	// checkpoints the job has written, the root step and age of the
	// latest one, whether the job was rehydrated from the store at
	// scheduler startup, and — for a resumed execution — the checkpoint
	// it continued from.
	Checkpoints int `json:"checkpoints,omitempty"`
	// CheckpointStep is a pointer so "checkpointed after root step 0"
	// (a real value) is distinguishable from "no checkpoints" (absent).
	CheckpointStep       *int    `json:"checkpoint_step,omitempty"`
	CheckpointAgeSeconds float64 `json:"checkpoint_age_seconds,omitempty"`
	Recovered            bool    `json:"recovered,omitempty"`
	ResumedFrom          string  `json:"resumed_from,omitempty"`
	// Tenant is the fair-share accounting bucket the submission billed
	// to; DeadlineSeconds echoes the request's QoS hint.
	Tenant          string  `json:"tenant,omitempty"`
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	// Estimate is the cost model's pre-run prediction for this job
	// (predicted seconds, cells, confidence). Samples == 0 means the
	// model had no history for the problem and the numbers are vacuous.
	Estimate *costmodel.Estimate `json:"estimate,omitempty"`
	// Speculative marks a result the speculation planner computed ahead
	// of any submission — a cache hit on such a job cost its submitter
	// zero queue time.
	Speculative bool `json:"speculative,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.ID,
		Problem:     j.Req.Problem,
		State:       j.state.String(),
		SubmittedAt: j.submitted,
		Workers:     j.Workers,
		StepBudget:  j.StepBudget,
		Progress:    j.prog,
		Submissions: j.submissions,
		CacheHits:   j.cacheHits,
	}
	st.Tenant = j.tenant
	st.DeadlineSeconds = j.Req.DeadlineSeconds
	st.Estimate = j.est
	st.Speculative = j.speculative
	st.Artifacts, st.ArtifactBytes = j.artifacts.Count()
	if j.ckpts > 0 {
		st.Checkpoints = j.ckpts
		step := j.ckptStep
		st.CheckpointStep = &step
		if !j.ckptAt.IsZero() {
			st.CheckpointAgeSeconds = j.sched.now().Sub(j.ckptAt).Seconds()
		}
	}
	st.Recovered = j.recovered
	st.ResumedFrom = j.resumedFrom
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.result != nil {
		st.Hash = j.result.Hash
	}
	switch {
	case !j.finished.IsZero() && !j.started.IsZero():
		st.WallSeconds = j.finished.Sub(j.started).Seconds()
	case !j.started.IsZero():
		st.WallSeconds = j.sched.now().Sub(j.started).Seconds()
	}
	return st
}

// Stats aggregates scheduler counters for /metrics.
type Stats struct {
	Submitted int64 `json:"submitted"`  // Submit calls accepted
	Coalesced int64 `json:"coalesced"`  // submissions attached to a live duplicate
	CacheHits int64 `json:"cache_hits"` // submissions answered from a completed job
	Executed  int64 `json:"executed"`   // evolutions actually run
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Queued    int   `json:"queued"`  // current
	Running   int   `json:"running"` // current
	Cached    int   `json:"cached"`  // completed results retained (Done only)
	// Durability counters: jobs rehydrated from the store at startup
	// (Resumed of which re-queued to continue from a checkpoint),
	// checkpoints written, and terminal records evicted from the cache
	// (and deleted from the store) by the CacheSize bound.
	Recovered      int64 `json:"recovered"`
	Resumed        int64 `json:"resumed"`
	Checkpoints    int64 `json:"checkpoints"`
	CacheEvictions int64 `json:"cache_evictions"`
	// AdmissionRejected counts submissions refused because their cost
	// estimate exceeded Config.MaxJobSeconds.
	AdmissionRejected int64 `json:"admission_rejected"`
}

// Scheduler runs simulation jobs on a bounded set of slots, deduping
// identical requests and caching completed results. See the package
// comment for the full contract.
type Scheduler struct {
	cfg     Config
	store   Store
	blobs   *BlobCache
	baseCtx context.Context
	stop    context.CancelFunc
	fq      *fairQueue
	wg      sync.WaitGroup

	// model is the cost predictor trained on completed jobs' metrics;
	// it has its own lock and is persisted through the store, so
	// estimates survive restarts.
	model *costmodel.Model

	// spec is the speculative-execution planner (present but disabled
	// unless Config.Speculate); spend is the per-tenant historical
	// wall-second ledger, demand and speculative classes separate.
	spec  *speculator
	spend *spendLedger

	// Artifact-serving counters (hot read path: updated atomically, not
	// under s.mu).
	bytesServed atomic.Int64
	notModified atomic.Int64

	// est is the estimate-error histogram: the actual/predicted wall
	// seconds ratio of every completed job that had a non-vacuous
	// estimate, exported on /metrics.
	est estimateErrors

	// repl holds the distributed-peer observation hooks, if any. An
	// atomic pointer because a Peer attaches after NewScheduler has
	// already started the slot goroutines; nil (the single-node case)
	// costs one atomic load on the paths that would fire a hook.
	repl atomic.Pointer[replHooks]

	mu       sync.Mutex
	closed   bool
	draining bool // Drain in progress: interrupted jobs checkpoint before the slots exit
	jobs     map[string]*Job
	order    []string // submit order of live+retained job IDs
	stats    Stats
	start    time.Time
	storeErr error
}

// replHooks are the scheduler's distributed-replication observation
// points: a Peer registers them to mirror job state to the job's standby
// peer. All hooks run on scheduler goroutines (submit callers and slot
// workers) and must not call back into the scheduler.
type replHooks struct {
	// scheduled fires after a fresh job's queued manifest is persisted
	// and the job registered.
	scheduled func(m JobManifest)
	// checkpoint fires after a restart checkpoint (and the manifest
	// recording it) is persisted.
	checkpoint func(m JobManifest, step int, data []byte)
	// artifact fires after a derived-output artifact is retained and
	// persisted; a takeover peer needs the pre-checkpoint artifacts too,
	// or the resumed job's artifact set would start at the resume step.
	artifact func(id string, a analysis.Artifact, hash string)
	// artifactDrop fires after retained artifacts are evicted, so the
	// standby's replicated set tracks the owner's.
	artifactDrop func(id string, names []string)
	// terminal fires after a job reaches a persisted terminal state
	// (done, failed, cancelled — not shutdown-interrupted).
	terminal func(id string)
	// model fires after the owner's cost model absorbs a new
	// observation, with the full serialized state; the peer broadcasts
	// it so every member estimates (and admits) from shared history.
	model func(state []byte)
}

// setReplHooks attaches (or, with nil, detaches) the peer hooks.
func (s *Scheduler) setReplHooks(h *replHooks) { s.repl.Store(h) }

// NewScheduler starts a scheduler with cfg's slots running. With a
// persistent store, it first recovers the store's persisted jobs:
// completed results and artifacts rehydrate the cache (so identical
// submissions are cache hits across process restarts), and interrupted
// jobs are re-queued to resume from their latest checkpoint. Recovery
// problems never prevent startup; inspect them with RecoverState.
func NewScheduler(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:     cfg,
		store:   cfg.Store,
		blobs:   NewBlobCache(cfg.Store, cfg.HotBytes),
		baseCtx: ctx,
		stop:    cancel,
		fq:      newFairQueue(cfg.QueueDepth, cfg.TenantWeights, cfg.Clock),
		model:   costmodel.New(),
		spend:   newSpendLedger(),
		jobs:    make(map[string]*Job),
		start:   cfg.Clock(),
	}
	s.spec = newSpeculator(s, cfg)
	// Rehydrate the cost model before recovery: recovered Done jobs then
	// only backfill observations the persisted state is missing.
	if state, err := s.store.LoadCostModel(); err != nil {
		s.storeErr = err
	} else if len(state) > 0 {
		if err := s.model.Decode(state); err != nil {
			s.storeErr = err
		}
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				j, ok := s.fq.pop()
				if !ok {
					return
				}
				s.execute(j)
				s.fq.done()
				s.spec.wake() // a slot just freed: an idle window may have opened
			}
		}()
	}
	s.recover()
	s.spec.start()
	return s
}

// now is the scheduler's injected time source (Config.Clock).
func (s *Scheduler) now() time.Time { return s.cfg.Clock() }

// RecoverState reports how startup recovery went: how many persisted
// jobs were rehydrated (of which resumed mid-run) and the first error
// recovery hit, if any.
func (s *Scheduler) RecoverState() (recovered, resumed int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.Recovered, s.stats.Resumed, s.storeErr
}

// recover rehydrates the persistent store's jobs at startup. Resumable
// jobs are pushed straight onto the fair queue in recovery order,
// bypassing the depth bound (refusing to re-admit persisted work would
// lose it); pushes never block, so NewScheduler (and with it `enzogo
// serve`'s HTTP listener) never waits behind hours of resumed
// evolution.
func (s *Scheduler) recover() {
	recs, err := s.store.Recover()
	if err != nil {
		s.mu.Lock()
		s.storeErr = err
		s.mu.Unlock()
		return
	}
	for _, rec := range recs {
		j, err := s.recoverJob(rec)
		if err != nil {
			s.mu.Lock()
			if s.storeErr == nil {
				s.storeErr = err
			}
			s.mu.Unlock()
			continue
		}
		if j != nil {
			if err := s.fq.push(j, false); err != nil {
				s.noteStoreErr(err) // closed mid-startup; the job stays interrupted on disk
			}
		}
	}
}

// recoverJob rehydrates one persisted job: terminal states become
// retained records (done jobs with their result and artifacts — the
// warm cache), non-terminal states are returned for re-queueing,
// resuming from the latest checkpoint once a slot picks them up.
func (s *Scheduler) recoverJob(rec RecoveredJob) (resumableJob *Job, err error) {
	m := rec.Manifest
	// An interrupted speculative run must never resurrect as demand
	// work: re-offer it to the planner (its persisted checkpoint resumes
	// it warm) when speculation is on, otherwise forget it.
	if m.Speculative && m.State != Done.String() {
		if s.cfg.Speculate {
			req := m.Request
			req.Workers = m.Workers
			if r, rerr := resolve(req, s.cfg.slotWorkers(), max(s.cfg.TotalWorkers, m.Workers)); rerr == nil && s.spec.add(req, r, specSourceSweep) {
				return nil, nil // the record stays; the re-run overwrites it
			}
		}
		if derr := s.store.DeleteJob(m.ID); derr != nil {
			s.noteStoreErr(derr)
		}
		return nil, nil
	}
	// Pin the manifest's effective worker budget: the job's canonical
	// identity (and, via the CIC reduction order, its bitwise answer)
	// depends on it, so a resumed run must not inherit this process's
	// slot share. maxWorkers is relaxed to the pinned value on purpose —
	// recovering on a smaller host must not orphan the job.
	req := m.Request
	req.Workers = m.Workers
	r, err := resolve(req, s.cfg.slotWorkers(), max(s.cfg.TotalWorkers, m.Workers))
	if err != nil {
		return nil, fmt.Errorf("sim: recover %s: %w", m.ID, err)
	}
	j := &Job{
		ID:          m.ID, // the store directory is the identity; trust it
		Req:         m.Request,
		Workers:     r.opts.Workers,
		StepBudget:  r.steps,
		MaxTime:     r.maxTime,
		sched:       s,
		res:         r,
		doneCh:      make(chan struct{}),
		artifacts:   newArtifactStore(s.cfg.ArtifactBytes, s.cfg.ArtifactCount, s.blobs),
		tenant:      tenantOf(m.Request),
		submitted:   m.SubmittedAt,
		started:     m.StartedAt,
		finished:    m.FinishedAt,
		recovered:   true,
		speculative: m.Speculative,
		ckpts:       m.Checkpoints,
		ckptStep:    m.CheckpointStep,
		ckptAt:      m.CheckpointAt,
	}
	// A recovered deadline hint is stale by definition (it was relative
	// to the original submission), so resumed jobs re-queue without one;
	// the estimate is recomputed against the current model.
	est := s.model.Estimate(costQuery(r))
	j.est = &est
	// Rehydrate artifact metadata (already persisted: no store
	// write-back, and the payload bytes stay in the blob tier until a
	// reader asks), but mirror any evictions — this process may run with
	// smaller artifact budgets than the one that wrote them, and rows
	// the in-memory store refuses must not linger unreachable on disk.
	var evicted []string
	for _, m := range rec.Artifacts {
		ev, stored := j.artifacts.putRecovered(m)
		evicted = append(evicted, ev...)
		if !stored {
			evicted = append(evicted, m.Name) // refused outright: reclaim its payload too
		}
	}
	if err := s.store.DeleteArtifacts(m.ID, evicted); err != nil {
		s.noteStoreErr(err)
	}
	resume := false
	switch m.State {
	case Done.String():
		if rec.Result == nil {
			return nil, fmt.Errorf("sim: recover %s: done without a result", m.ID)
		}
		j.state = Done
		j.result = rec.Result
		j.prog = Progress{Step: rec.Result.Steps - 1, Time: rec.Result.Time,
			MaxLevel: rec.Result.MaxLevel, NumGrids: rec.Result.NumGrids}
		j.artifacts.close()
		close(j.doneCh)
		// Backfill the cost model from results persisted before the
		// model state was (idempotent when the state already has them).
		s.trainModel(j, rec.Result)
	case Failed.String(), Cancelled.String():
		if m.State == Failed.String() {
			j.state = Failed
		} else {
			j.state = Cancelled
		}
		j.err = fmt.Errorf("sim: job %s %s (recovered record): %s", m.ID, m.State, m.Error)
		j.artifacts.close()
		close(j.doneCh)
	default: // queued, running, interrupted: run it (again)
		resume = true
		j.submissions = 1
		j.finished = time.Time{}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil
	}
	if _, dup := s.jobs[m.ID]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("sim: recover %s: duplicate store record", m.ID)
	}
	s.jobs[m.ID] = j
	s.order = append(s.order, m.ID)
	s.stats.Recovered++
	if resume {
		s.stats.Resumed++
	}
	doomed := s.evictLocked()
	s.mu.Unlock()
	s.reap(doomed)
	if resume {
		return j, nil
	}
	return nil, nil
}

// Config returns the scheduler's effective (default-filled) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// SlotWorkers returns the par budget a job receives when its request
// doesn't pin one.
func (s *Scheduler) SlotWorkers() int { return s.cfg.slotWorkers() }

// Close stops accepting submissions, cancels queued and running jobs and
// waits for the slots to drain. Completed results remain readable.
// Against a persistent store, jobs cut short by Close keep their
// non-terminal manifests (plus any cadence checkpoints already written),
// so the next scheduler on the same store treats them exactly like a
// process kill and resumes them; use Drain to also checkpoint the
// running jobs' current state first.
func (s *Scheduler) Close() { s.shutdown(false) }

// Drain is the graceful shutdown of a durable scheduler: it stops
// accepting submissions, lets every running job reach its next root-step
// boundary, writes a final restart checkpoint for each (persistent
// stores only), records them as interrupted, and waits for the slots to
// exit. A following NewScheduler on the same store resumes the drained
// jobs from exactly where they stopped. On a non-persistent store Drain
// is Close.
func (s *Scheduler) Drain() { s.shutdown(true) }

func (s *Scheduler) shutdown(drain bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.draining = drain && s.store.Persistent()
	s.mu.Unlock()
	// Order matters: cancel first so the slots fast-drain the backlog
	// (a cancelled baseCtx makes each queued execution exit at its first
	// context check), then close the queue. Submit cannot race the
	// close — it checks s.closed under s.mu before pushing, and shutdown
	// held that lock first; after close the slots keep draining whatever
	// is still queued, then exit.
	s.stop()
	s.fq.close()
	s.spec.close()
	s.wg.Wait()
	s.store.Close()
}

// isDraining reports whether shutdown wants running jobs checkpointed.
func (s *Scheduler) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// manifestOf snapshots a job into its persisted record with the given
// manifest state.
func (j *Job) manifestOf(state string) JobManifest {
	j.mu.Lock()
	defer j.mu.Unlock()
	m := JobManifest{
		ID:             j.ID,
		Request:        j.Req,
		Workers:        j.Workers,
		State:          state,
		Steps:          j.stepsDone,
		Time:           j.prog.Time,
		Checkpoints:    j.ckpts,
		CheckpointStep: j.ckptStep,
		CheckpointAt:   j.ckptAt,
		ResumedFrom:    j.resumedFrom,
		SubmittedAt:    j.submitted,
		StartedAt:      j.started,
		FinishedAt:     j.finished,
		Speculative:    j.speculative,
	}
	if j.err != nil {
		m.Error = j.err.Error()
	}
	return m
}

// persist writes a job-state transition to the store. Persistence
// failures after submit time are recorded (first one wins) rather than
// failing the job: a degraded store should cost durability, not answers.
func (s *Scheduler) persist(j *Job, state string) {
	if err := s.store.SaveManifest(j.manifestOf(state)); err != nil {
		s.mu.Lock()
		if s.storeErr == nil {
			s.storeErr = err
		}
		s.mu.Unlock()
	}
}

// Disposition reports how a submission was satisfied.
type Disposition string

const (
	// Scheduled: a fresh job was queued for execution.
	Scheduled Disposition = "scheduled"
	// Coalesced: an identical job is already queued or running; this
	// submission rides its single execution.
	Coalesced Disposition = "coalesced"
	// CacheHit: an identical job already completed; its result answers
	// immediately.
	CacheHit Disposition = "cache"
)

// Submit schedules req, or coalesces it onto an existing identical job:
// a live job with the same canonical configuration is returned as-is
// (one execution serves all submitters), and a retained completed job
// answers immediately as a cache hit. A previously failed or cancelled
// configuration is re-run fresh. The returned job may already be
// terminal; use Job.Wait or Job.Done.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	j, _, err := s.SubmitWithDisposition(req)
	return j, err
}

// ErrClosed is returned by Submit once Close has been called — a
// transient service condition, not a bad request.
var ErrClosed = errors.New("sim: scheduler is closed")

// ErrQueueFull is returned by Submit when the backlog is at QueueDepth —
// backpressure to retry against, not a bad request.
var ErrQueueFull = errors.New("sim: job queue is full")

// SubmitWithDisposition is Submit, additionally reporting how this
// particular submission was satisfied.
func (s *Scheduler) SubmitWithDisposition(req Request) (*Job, Disposition, error) {
	r, err := resolve(req, s.cfg.slotWorkers(), s.cfg.TotalWorkers)
	if err != nil {
		return nil, "", err
	}
	id := r.key()
	// The estimate is computed for every submission (the 202 body and
	// the queue's fair-share charge both want it), outside s.mu — the
	// model has its own lock and may recompute its held-out selection.
	est := s.model.Estimate(costQuery(r))
	var deadline time.Time
	if req.DeadlineSeconds > 0 {
		deadline = s.now().Add(time.Duration(req.DeadlineSeconds * float64(time.Second)))
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, "", ErrClosed
	}
	if j, ok := s.jobs[id]; ok {
		j.mu.Lock()
		state := j.state
		j.submissions++
		if state == Done {
			j.cacheHits++
		}
		j.mu.Unlock()
		switch {
		case state == Done:
			s.stats.Submitted++
			s.stats.CacheHits++
			s.mu.Unlock()
			if j.speculative {
				s.spec.hits.Add(1) // a pre-warmed result answered a real submission
			}
			return j, CacheHit, nil
		case !state.terminal():
			s.stats.Submitted++
			s.stats.Coalesced++
			// A coalesced submission may tighten the queued entry's
			// deadline (lock order: s.mu, then the queue's own lock).
			s.fq.tighten(id, deadline)
			s.mu.Unlock()
			return j, Coalesced, nil
		}
		// Failed or cancelled: drop the stale job and re-run below. The
		// store directory is NOT deleted (a RemoveAll must not run under
		// s.mu): the fresh run's queued manifest overwrites the stale
		// terminal one below, and any leftover artifacts are replaced by
		// the re-run's bitwise-identical products (same canonical
		// configuration) as it emits them.
		s.removeLocked(id)
	}

	// Admission control, on fresh executions only: cache hits and
	// coalesced submissions above cost nothing new, so the bound never
	// refuses them. An untrained model (Samples == 0) admits everything.
	if s.cfg.MaxJobSeconds > 0 && est.Samples > 0 && est.Seconds > s.cfg.MaxJobSeconds {
		s.stats.AdmissionRejected++
		s.mu.Unlock()
		return nil, "", &AdmissionError{Estimate: est, Limit: s.cfg.MaxJobSeconds}
	}

	j := &Job{
		ID:         id,
		Req:        req,
		Workers:    r.opts.Workers,
		StepBudget: r.steps,
		MaxTime:    r.maxTime,
		sched:      s,
		res:        r,
		doneCh:     make(chan struct{}),
		artifacts:  newArtifactStore(s.cfg.ArtifactBytes, s.cfg.ArtifactCount, s.blobs),
		tenant:     tenantOf(req),
		deadline:   deadline,
		est:        &est,
		submitted:  s.now(),
		ckptStep:   -1,
	}
	j.submissions = 1
	// The submit-time manifest write is the one store failure surfaced to
	// the submitter: a durable service that cannot record the job it just
	// accepted should say so up front, not lose it silently on restart.
	// It is a small bounded write (temp file + rename of a one-page JSON
	// document) and the WAL-before-registration ordering needs the lock;
	// the unbounded disk work (RemoveAll) never runs under s.mu.
	if err := s.store.SaveManifest(j.manifestOf(Queued.String())); err != nil {
		s.mu.Unlock()
		return nil, "", fmt.Errorf("%w: %v", ErrStore, err)
	}
	if err := s.fq.push(j, true); err != nil {
		s.mu.Unlock()
		// Roll the manifest back outside the lock; the job was never
		// registered, so nothing can resurrect the ID concurrently
		// except an identical future submit, which reap guards against.
		s.reap([]string{id})
		if errors.Is(err, ErrQueueFull) {
			return nil, "", fmt.Errorf("%w (%d jobs waiting)", ErrQueueFull, s.cfg.QueueDepth)
		}
		return nil, "", err
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.stats.Submitted++
	doomed := s.evictLocked()
	s.mu.Unlock()
	s.reap(doomed)
	if h := s.repl.Load(); h != nil && h.scheduled != nil {
		h.scheduled(j.manifestOf(Queued.String()))
	}
	// Demand traffic owns the slots: preempt in-flight speculations and
	// feed the lineage planner (outside every scheduler lock).
	s.spec.onDemandScheduled(req, r)
	return j, Scheduled, nil
}

// CanonicalID resolves a request to its canonical configuration hash —
// the job ID Submit would assign it — without scheduling anything. The
// distributed peer router uses it for ownership decisions before any
// state is created.
func (s *Scheduler) CanonicalID(req Request) (string, error) {
	r, err := resolve(req, s.cfg.slotWorkers(), s.cfg.TotalWorkers)
	if err != nil {
		return "", err
	}
	return r.key(), nil
}

// readmit re-admits a replicated job record whose owning peer died: the
// standby manifest is persisted as interrupted (this store now owns the
// WAL record) and the job is queued exactly like a startup-recovered
// one, so a slot resumes it from the latest checkpoint this store holds
// — for a takeover, the replicated one. arts are the replicated
// artifact rows (their payloads already live in this store's blob
// tier); rehydrating them keeps the resumed job's artifact set equal to
// an uninterrupted run's instead of starting at the resume step.
func (s *Scheduler) readmit(m JobManifest, arts []ArtifactMeta) error {
	m.State = ManifestInterrupted
	if err := s.store.SaveManifest(m); err != nil {
		return fmt.Errorf("%w: %v", ErrStore, err)
	}
	j, err := s.recoverJob(RecoveredJob{Manifest: m, Artifacts: arts})
	if err != nil {
		return err
	}
	if j == nil {
		return ErrClosed // scheduler closed mid-takeover
	}
	// The queue push holds s.mu with a closed re-check, like Submit:
	// shutdown closes the queue only after it can take the lock, so the
	// push cannot race the close. Takeover respects the depth bound —
	// unlike startup recovery, the donor peer still holds the record and
	// retries, so backpressure loses nothing.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.fq.push(j, true); err != nil {
		s.removeLocked(m.ID)
		s.stats.Recovered--
		s.stats.Resumed--
		if errors.Is(err, ErrQueueFull) {
			return fmt.Errorf("%w (%d jobs waiting)", ErrQueueFull, s.cfg.QueueDepth)
		}
		return err
	}
	return nil
}

// Get returns the job with the given ID.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all retained jobs in submit order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Cancel stops the job with the given ID (queued jobs never start;
// running jobs stop at the next root-step boundary). It reports whether
// a live job was found.
func (s *Scheduler) Cancel(id string) bool {
	j, ok := s.Get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	switch {
	case j.state.terminal():
		j.mu.Unlock()
		return false
	case j.state == Queued:
		// Atomic with the state check: a slot claiming the job takes
		// j.mu to move it to Running, so it cannot slip in between.
		j.finishLocked(Cancelled, nil, fmt.Errorf("sim: job %s cancelled while queued", id))
		j.mu.Unlock()
		// Excise the queued entry so it stops occupying depth and the
		// tenant gauges; if a slot already popped it, the terminal check
		// in execute skips it anyway.
		s.fq.remove(id)
		s.persist(j, Cancelled.String())
		s.store.DeleteCheckpoints(id)
		s.spec.forgetCheckpoint(id)
		s.count(func(st *Stats) { st.Cancelled++ })
		s.notifyTerminal(id)
		s.spec.wake() // the backlog shrank; an idle window may have opened
		return true
	default:
		cancel := j.cancel
		j.userCancelled = true
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	}
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	for _, j := range s.jobs {
		switch j.State() {
		case Queued:
			st.Queued++
		case Running:
			st.Running++
		case Done:
			st.Cached++
		}
	}
	return st
}

// Uptime returns how long the scheduler has been running.
func (s *Scheduler) Uptime() time.Duration { return s.now().Sub(s.start) }

// removeLocked forgets a job in memory; s.mu must be held. The caller
// owns the matching store deletion (synchronously for a re-run of a
// stale configuration, via reap after unlocking for evictions). The
// job's blob references are dropped so the shared payload tier does not
// pin bytes nobody can reach.
func (s *Scheduler) removeLocked(id string) {
	if j, ok := s.jobs[id]; ok {
		j.artifacts.release()
	}
	delete(s.jobs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// evictLocked drops retained terminal jobs beyond the cache size:
// failed/cancelled records go first (a failure record must never evict a
// reusable completed result), then Done results oldest-first; s.mu must
// be held. It returns the evicted IDs for the caller to reap from the
// store once the lock is released — the cache bound is the store's
// retention policy, but a disk RemoveAll must not run under the global
// mutex every HTTP handler takes.
func (s *Scheduler) evictLocked() (doomed []string) {
	terminal := 0
	for _, j := range s.jobs {
		if j.State().terminal() {
			terminal++
		}
	}
	for _, includeDone := range []bool{false, true} {
		for i := 0; terminal > s.cfg.CacheSize && i < len(s.order); {
			j := s.jobs[s.order[i]]
			if st := j.State(); st.terminal() && (includeDone || st != Done) {
				doomed = append(doomed, s.order[i])
				s.removeLocked(s.order[i])
				s.stats.CacheEvictions++
				terminal--
				continue // order shifted down; re-examine index i
			}
			i++
		}
	}
	return doomed
}

// reap deletes evicted jobs from the store, outside s.mu. A job whose ID
// came back to life in the meantime (the same configuration resubmitted
// in the eviction window) is skipped; should the check itself race a
// concurrent resubmission, the worst case is a deleted queued-state
// manifest, which the job's next state transition rewrites.
func (s *Scheduler) reap(doomed []string) {
	for _, id := range doomed {
		if _, live := s.Get(id); live {
			continue
		}
		if err := s.store.DeleteJob(id); err != nil {
			s.noteStoreErr(err)
		}
	}
}

// execute runs one job on the calling slot goroutine.
func (s *Scheduler) execute(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.state.terminal() { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.state = Running
	j.cancel = cancel
	j.started = s.now()
	j.mu.Unlock()
	s.persist(j, Running.String())

	s.mu.Lock()
	s.stats.Executed++
	s.mu.Unlock()

	t0 := s.now()
	res, err := s.evolve(ctx, j)
	// The historical-spend ledger records observed demand wall seconds
	// per tenant — the number -tenant-weights should be derived from.
	s.spend.charge(j.tenant, false, s.now().Sub(t0).Seconds())
	switch {
	case err == nil:
		if err := s.store.SaveResult(j.ID, res); err != nil {
			s.noteStoreErr(err)
		}
		// Feed the cost model (persisting and replicating its state) and
		// score the pre-run estimate against what happened — BEFORE the
		// job turns terminal, so a waiter that saw Done estimates from a
		// model that already holds this run.
		s.trainModel(j, res)
		s.est.observe(j.est, res.Metrics.WallSeconds)
		if j.finish(Done, res, nil) {
			s.persist(j, Done.String())
			s.store.DeleteCheckpoints(j.ID)
			s.spec.forgetCheckpoint(j.ID)
			s.count(func(st *Stats) { st.Succeeded++ })
			s.notifyTerminal(j.ID)
		}
	case ctx.Err() != nil && s.baseCtx.Err() != nil && !j.wasUserCancelled():
		// The service is stopping, not the submitter cancelling: the
		// in-process job ends, but the persisted record stays
		// non-terminal ("interrupted") so the next scheduler on this
		// store resumes it — from the freshly written drain checkpoint,
		// its latest cadence checkpoint, or scratch. An explicit Cancel
		// that raced the shutdown stays cancelled (next case), never
		// resurrected.
		j.mu.Lock()
		done := j.stepsDone
		j.mu.Unlock()
		if j.finish(Cancelled, nil, fmt.Errorf("sim: job %s interrupted by shutdown after %d steps", j.ID, done)) {
			s.persist(j, ManifestInterrupted)
			s.count(func(st *Stats) { st.Cancelled++ })
		}
	case ctx.Err() != nil:
		j.mu.Lock()
		done := j.stepsDone
		j.mu.Unlock()
		if j.finish(Cancelled, nil, fmt.Errorf("sim: job %s cancelled after %d steps", j.ID, done)) {
			s.persist(j, Cancelled.String())
			s.store.DeleteCheckpoints(j.ID)
			s.spec.forgetCheckpoint(j.ID)
			s.count(func(st *Stats) { st.Cancelled++ })
			s.notifyTerminal(j.ID)
		}
	default:
		if j.finish(Failed, nil, err) {
			s.persist(j, Failed.String())
			s.store.DeleteCheckpoints(j.ID)
			s.spec.forgetCheckpoint(j.ID)
			s.count(func(st *Stats) { st.Failed++ })
			s.notifyTerminal(j.ID)
		}
	}
}

// wasUserCancelled reports whether an explicit Cancel hit this job.
func (j *Job) wasUserCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCancelled
}

// noteStoreErr records a persistence failure (the first one wins) for
// RecoverState/healthz visibility.
func (s *Scheduler) noteStoreErr(err error) {
	s.mu.Lock()
	if s.storeErr == nil {
		s.storeErr = err
	}
	s.mu.Unlock()
}

// count updates the terminal-outcome counters and re-applies the cache
// bound (a completing job can push the retained-terminal count over it).
func (s *Scheduler) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	doomed := s.evictLocked()
	s.mu.Unlock()
	s.reap(doomed)
}

// evolve builds the job's problem — or, for a recovered job with a
// persisted checkpoint, decodes and resumes it — and advances it under
// ctx, streaming per-step progress to watchers. A panic in the physics
// (bad knob combinations can produce them) is converted to a job failure
// rather than taking the service down.
func (s *Scheduler) evolve(ctx context.Context, j *Job) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if wp, ok := r.(par.WorkerPanic); ok {
				err = fmt.Errorf("sim: job %s panicked: %v", j.ID, wp.Value)
				return
			}
			err = fmt.Errorf("sim: job %s panicked: %v", j.ID, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err // scheduler shutting down: skip the (costly) IC build
	}
	// The derived-output plan runs at root-step boundaries inside the
	// observer, on the job's own worker budget; its wall-clock is billed
	// separately from the physics (Metrics.AnalysisSeconds). An
	// evaluation error fails the job — the request was validated at
	// submit, so one here is a real service defect, not user error.
	plan, err := analysis.NewOutputPlan(j.res.outputs)
	if err != nil {
		return nil, err
	}
	// The checkpoint cadence rides the same OutputPlan machinery as the
	// data products, in a plan of its own: its artifacts route to the
	// store's checkpoint files, not the artifact index, and it has no
	// Finish guarantee (a completed job deletes its checkpoints instead).
	var ckptPlan *analysis.OutputPlan
	if s.store.Persistent() && !j.speculative && (s.cfg.CheckpointEvery > 0 || s.cfg.CheckpointTime > 0) {
		ckptPlan, err = analysis.NewOutputPlan([]analysis.OutputRequest{{
			Kind:      analysis.KindCheckpoint,
			Every:     s.cfg.CheckpointEvery,
			EveryTime: s.cfg.CheckpointTime,
		}})
		if err != nil {
			return nil, err
		}
	}

	// Build or resume. A recovered job with a checkpoint decodes it and
	// continues at the following step, keeping the interrupted run's
	// global step numbering so cadences and artifact names line up.
	sm, startStep, err := s.buildOrResume(j)
	if err != nil {
		return nil, err
	}
	if startStep > 0 {
		plan.Prime(sm.H.Time)
		if ckptPlan != nil {
			ckptPlan.Prime(sm.H.Time)
		}
	}

	var analysisWall time.Duration
	var outputErr error
	emit := func(a analysis.Artifact) error {
		evicted, hash, stored := j.artifacts.Put(a)
		if stored {
			// Persist only what the in-memory store retained: an
			// artifact refused by the byte budget must not linger
			// unreachable on disk.
			if err := s.store.SaveArtifact(j.ID, a, hash); err != nil {
				s.noteStoreErr(err)
			}
			if h := s.repl.Load(); h != nil && h.artifact != nil {
				h.artifact(j.ID, a, hash)
			}
		}
		if err := s.store.DeleteArtifacts(j.ID, evicted); err != nil {
			s.noteStoreErr(err)
		}
		if len(evicted) > 0 {
			if h := s.repl.Load(); h != nil && h.artifactDrop != nil {
				h.artifactDrop(j.ID, evicted)
			}
		}
		return nil
	}
	// runCtx lets an output-evaluation error stop the physics at the next
	// root-step boundary instead of burning the remaining step budget on
	// a job already doomed to fail.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	taken, err := sm.Run(runCtx, core.RunOpts{
		MaxSteps:  j.res.steps - startStep,
		MaxTime:   j.res.maxTime,
		StartStep: startStep,
		Observe: func(info core.StepInfo) {
			j.publish(Progress{
				Step:     info.Step,
				Time:     info.Time,
				Dt:       info.Dt,
				MaxLevel: info.MaxLevel,
				NumGrids: info.NumGrids,
			})
			if outputErr != nil {
				return
			}
			t0 := time.Now()
			if outputErr = plan.Step(sm.H, j.res.problem, info.Step, j.res.opts.Workers, emit); outputErr != nil {
				cancelRun()
			}
			analysisWall += time.Since(t0)
		},
		Checkpoint: func(info core.StepInfo) error {
			if ckptPlan == nil {
				return nil
			}
			return ckptPlan.Step(sm.H, j.res.problem, info.Step, j.res.opts.Workers,
				func(a analysis.Artifact) error { return s.checkpoint(j, info.Step, a.Data) })
		},
	})
	steps := startStep + taken
	// outputErr outranks the cancellation it triggered (execute inspects
	// the outer ctx, so this still reports as Failed, not Cancelled).
	if outputErr != nil {
		return nil, outputErr
	}
	if err != nil {
		switch {
		case j.speculative && ctx.Err() != nil && taken > 0:
			// A preempted (or shutdown-interrupted) speculation: capture
			// the root-step boundary it stopped at so the next idle
			// window — or a demand run of the same configuration —
			// resumes warm instead of recomputing. The in-memory copy
			// serves non-persistent stores; the store copy survives a
			// restart.
			if data, encErr := snapshot.Encode(sm.H, j.res.problem); encErr == nil {
				s.spec.saveCheckpoint(j.ID, steps-1, data)
				if s.store.Persistent() {
					if ckErr := s.store.SaveCheckpoint(j.ID, steps-1, data); ckErr != nil {
						s.noteStoreErr(ckErr)
					}
				}
				j.mu.Lock()
				j.ckpts++
				j.ckptStep = steps - 1
				j.ckptAt = s.now()
				j.mu.Unlock()
			} else {
				s.noteStoreErr(encErr)
			}
		case ctx.Err() != nil && s.isDraining() && taken > 0 && !j.wasUserCancelled():
			// Graceful drain: persist the state reached at this root-step
			// boundary so the next scheduler resumes here, not at the
			// last cadence checkpoint.
			if data, encErr := snapshot.Encode(sm.H, j.res.problem); encErr == nil {
				if ckErr := s.checkpoint(j, steps-1, data); ckErr != nil {
					s.noteStoreErr(ckErr)
				}
			} else {
				s.noteStoreErr(encErr)
			}
		}
		return nil, err
	}
	t0 := time.Now()
	if err := plan.Finish(sm.H, j.res.problem, steps-1, j.res.opts.Workers, emit); err != nil {
		return nil, err
	}
	analysisWall += time.Since(t0)

	h := sm.H
	metrics := perf.CollectJobMetrics(h.Stats, h.Timing, sm.Wall())
	metrics.AnalysisSeconds = analysisWall.Seconds()
	metrics.ArtifactCount, metrics.ArtifactBytes = j.artifacts.Count()
	return &Result{
		Hash:      h.ChecksumHex(),
		Steps:     steps,
		Time:      h.Time,
		MaxLevel:  h.MaxLevel(),
		NumGrids:  h.NumGrids(),
		SDR:       h.SpatialDynamicRange(),
		Artifacts: metrics.ArtifactCount,
		Metrics:   metrics,
	}, nil
}

// buildOrResume constructs the job's simulation: from the problem
// registry for a fresh job, or from the latest persisted checkpoint for
// a job recovered mid-run. Returns the global index of the first step
// still to take. A checkpoint that fails to decode falls back to a
// fresh build — a lost resume costs recomputation, never the job.
func (s *Scheduler) buildOrResume(j *Job) (*core.Simulation, int, error) {
	// A preempted speculation's in-memory checkpoint warm-starts both
	// its own next idle-window attempt and a demand run of the same
	// configuration — on any store, persistent or not.
	if ck := s.spec.checkpointFor(j.ID); ck != nil && ck.Step < j.res.steps {
		h, problem, err := snapshot.Read(bytes.NewReader(ck.Data))
		if err == nil {
			h.Cfg.Workers = j.res.opts.Workers
			j.mu.Lock()
			j.resumedFrom = fmt.Sprintf("speculative checkpoint step %d", ck.Step)
			j.mu.Unlock()
			return core.Resume(h, problem), ck.Step + 1, nil
		}
		s.noteStoreErr(fmt.Errorf("sim: job %s speculative checkpoint unreadable, rebuilding: %w", j.ID, err))
	}
	if (j.recovered || j.speculative) && s.store.Persistent() {
		ck, err := s.store.LatestCheckpoint(j.ID)
		if err != nil {
			s.noteStoreErr(err)
		}
		if ck != nil && ck.Step < j.res.steps {
			h, problem, err := snapshot.Read(bytes.NewReader(ck.Data))
			if err == nil {
				// Workers is a runtime knob of the saving process; the
				// resolved budget (identical by construction, pinned by
				// the manifest) is authoritative for this host.
				h.Cfg.Workers = j.res.opts.Workers
				j.mu.Lock()
				j.resumedFrom = fmt.Sprintf("checkpoint step %d", ck.Step)
				j.mu.Unlock()
				return core.Resume(h, problem), ck.Step + 1, nil
			}
			s.noteStoreErr(fmt.Errorf("sim: job %s checkpoint unreadable, rebuilding: %w", j.ID, err))
		}
	}
	sm, err := core.New(j.res.problem, func(o *problems.Opts) { *o = j.res.opts })
	if err != nil {
		return nil, 0, err
	}
	return sm, 0, nil
}

// checkpoint persists one restart point and updates the job's
// provenance counters and manifest (the WAL records the checkpoint, so
// a kill immediately after still resumes from it).
func (s *Scheduler) checkpoint(j *Job, step int, data []byte) error {
	if err := s.store.SaveCheckpoint(j.ID, step, data); err != nil {
		return err
	}
	j.mu.Lock()
	j.ckpts++
	j.ckptStep = step
	j.ckptAt = s.now()
	j.mu.Unlock()
	s.mu.Lock()
	s.stats.Checkpoints++
	s.mu.Unlock()
	s.persist(j, Running.String())
	if h := s.repl.Load(); h != nil && h.checkpoint != nil {
		h.checkpoint(j.manifestOf(Running.String()), step, data)
	}
	return nil
}

// notifyTerminal fires the peer terminal hook, if attached, after a job
// reaches a persisted terminal state.
func (s *Scheduler) notifyTerminal(id string) {
	if h := s.repl.Load(); h != nil && h.terminal != nil {
		h.terminal(id)
	}
}

// tenantOf is the fair-share bucket of a request: its tenant field, or
// "default" when unset.
func tenantOf(req Request) string {
	if req.Tenant == "" {
		return "default"
	}
	return req.Tenant
}

// costQuery maps a resolved configuration onto the cost model's
// feature space: the nominal work unit rootn³×steps the linear
// predictor fits against, and the canonical knob vector the NN
// predictor measures distance in.
func costQuery(r resolved) costmodel.Query {
	feats := map[string]float64{
		"rootn":    float64(r.opts.RootN),
		"maxlevel": float64(r.opts.MaxLevel),
		"workers":  float64(r.opts.Workers),
	}
	if r.opts.Chemistry {
		feats["chemistry"] = 1
	}
	for k, v := range r.opts.Extra {
		feats["knob:"+k] = v
	}
	n := float64(r.opts.RootN)
	return costmodel.Query{Problem: r.problem, Work: n * n * n * float64(r.steps), Features: feats}
}

// trainModel feeds one completed job's metrics into the cost model.
// When the observation is new, the model state is persisted (so
// estimates survive restarts) and handed to the peer model hook for
// replication.
func (s *Scheduler) trainModel(j *Job, res *Result) {
	if res == nil || res.Metrics.WallSeconds <= 0 {
		return
	}
	q := costQuery(j.res)
	changed := s.model.Observe(costmodel.Sample{
		JobID:     j.ID,
		Problem:   q.Problem,
		Features:  q.Features,
		Work:      q.Work,
		Seconds:   res.Metrics.WallSeconds,
		Cells:     float64(res.Metrics.CellUpdates),
		OpSeconds: res.Metrics.OpSeconds(),
	})
	if !changed {
		return
	}
	// A model that just learned may unlock confidence-gated speculation
	// candidates.
	s.spec.wake()
	// Encoding is O(samples); skip it when nobody consumes the state —
	// an in-memory store discards the save and there is no peer to
	// replicate to.
	h := s.repl.Load()
	hook := h != nil && h.model != nil
	if !s.store.Persistent() && !hook {
		return
	}
	state := s.model.Encode()
	if err := s.store.SaveCostModel(state); err != nil {
		s.noteStoreErr(err)
	}
	if hook {
		h.model(state)
	}
}

// Estimate predicts the cost of req against the recorded job history
// without scheduling anything. Estimate.Samples == 0 means the model
// has no history for the problem and the numbers are vacuous.
func (s *Scheduler) Estimate(req Request) (costmodel.Estimate, error) {
	r, err := resolve(req, s.cfg.slotWorkers(), s.cfg.TotalWorkers)
	if err != nil {
		return costmodel.Estimate{}, err
	}
	return s.model.Estimate(costQuery(r)), nil
}

// CostModelState returns the serialized cost model, for peer
// replication and inspection.
func (s *Scheduler) CostModelState() []byte { return s.model.Encode() }

// CostModelSamples reports how many observations the cost model holds
// across all problems.
func (s *Scheduler) CostModelSamples() int { return s.model.TotalSamples() }

// MergeCostModel unions a replicated peer's cost-model state into the
// local model, persisting on change. Receivers never re-broadcast, so
// replication cannot loop.
func (s *Scheduler) MergeCostModel(state []byte) error {
	changed, err := s.model.Merge(state)
	if err != nil {
		return err
	}
	if changed {
		if err := s.store.SaveCostModel(s.model.Encode()); err != nil {
			s.noteStoreErr(err)
		}
	}
	return nil
}

// QueueStats reports the dispatch backlog: total queued jobs and the
// per-tenant breakdown (tenants with nothing queued are omitted).
func (s *Scheduler) QueueStats() (depth int, perTenant map[string]int) {
	return s.fq.snapshot()
}

// AdmissionError is returned by Submit when the cost model predicts
// the job would exceed Config.MaxJobSeconds; the estimate rides along
// so clients (and the HTTP 429 body) can see why.
type AdmissionError struct {
	// Estimate is the prediction that tripped the bound.
	Estimate costmodel.Estimate
	// Limit is the configured MaxJobSeconds.
	Limit float64
}

// Error describes the rejected prediction against the bound.
func (e *AdmissionError) Error() string {
	return fmt.Sprintf("sim: predicted %.3gs exceeds the max-job-seconds admission bound %gs", e.Estimate.Seconds, e.Limit)
}

// estimateBuckets are the upper bounds of the estimate-error histogram:
// the actual/predicted wall-seconds ratio of completed jobs (1 = a
// perfect estimate; the final implicit bucket is +Inf).
var estimateBuckets = [...]float64{0.25, 0.5, 0.8, 1.25, 2, 4}

// estimateErrors is the /metrics histogram of actual/predicted ratios.
type estimateErrors struct {
	mu      sync.Mutex
	buckets [len(estimateBuckets) + 1]int64 // cumulative-on-read; stored per-bucket
	count   int64
	sum     float64
}

// observe scores one finished job's estimate. Vacuous estimates
// (Samples == 0) and degenerate values are skipped — the histogram
// measures the trained model only.
func (e *estimateErrors) observe(est *costmodel.Estimate, actual float64) {
	if est == nil || est.Samples == 0 || est.Seconds <= 0 || actual <= 0 {
		return
	}
	ratio := actual / est.Seconds
	e.mu.Lock()
	defer e.mu.Unlock()
	i := 0
	for i < len(estimateBuckets) && ratio > estimateBuckets[i] {
		i++
	}
	e.buckets[i]++
	e.count++
	e.sum += ratio
}

// snapshot returns the per-bucket counts plus the total count and sum
// of observed ratios.
func (e *estimateErrors) snapshot() (buckets [len(estimateBuckets) + 1]int64, count int64, sum float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.buckets, e.count, e.sum
}

// EstimateErrorStats reports how many completed jobs had their estimate
// scored and the mean actual/predicted ratio (1 = unbiased).
func (s *Scheduler) EstimateErrorStats() (count int64, meanRatio float64) {
	_, n, sum := s.est.snapshot()
	if n == 0 {
		return 0, 0
	}
	return n, sum / float64(n)
}
