package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/perf"
	"repro/internal/problems"
)

// Config sizes a Scheduler.
type Config struct {
	// MaxConcurrent is the number of jobs evolving at once (default 2).
	MaxConcurrent int
	// TotalWorkers is the par worker budget partitioned evenly across
	// the concurrent slots (0 = runtime.NumCPU). A request that pins
	// its own Workers bypasses the partition.
	TotalWorkers int
	// CacheSize bounds the completed (terminal) jobs retained for
	// dedupe/cache hits, evicted oldest-first (default 64).
	CacheSize int
	// QueueDepth bounds the jobs waiting for a slot; Submit fails once
	// the backlog is full (default 256).
	QueueDepth int
	// ArtifactBytes bounds each job's derived-output artifact store;
	// oldest artifacts are evicted first once a job exceeds it (default
	// DefaultArtifactBytes).
	ArtifactBytes int
	// ArtifactCount bounds the artifacts a job retains (default
	// DefaultArtifactCount).
	ArtifactCount int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.TotalWorkers <= 0 {
		c.TotalWorkers = runtime.NumCPU()
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.ArtifactBytes <= 0 {
		c.ArtifactBytes = DefaultArtifactBytes
	}
	if c.ArtifactCount <= 0 {
		c.ArtifactCount = DefaultArtifactCount
	}
	return c
}

// slotWorkers is the per-job par budget of a scheduler slot: the total
// budget split evenly over the concurrent slots, never below one.
func (c Config) slotWorkers() int {
	w := c.TotalWorkers / c.MaxConcurrent
	if w < 1 {
		w = 1
	}
	return w
}

// State is a job's lifecycle phase.
type State int

// The job lifecycle: Queued → Running → one of the terminal states
// (Done, Failed, Cancelled).
const (
	Queued State = iota
	Running
	Done
	Failed
	Cancelled
)

// String renders the state for logs and the JSON API.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// terminal reports whether the state is final.
func (s State) terminal() bool { return s >= Done }

// Progress is one per-root-step update streamed to job watchers.
type Progress struct {
	Step     int     `json:"step"`
	Time     float64 `json:"time"`
	Dt       float64 `json:"dt"`
	MaxLevel int     `json:"maxlevel"`
	NumGrids int     `json:"grids"`
}

// Result is the outcome of a completed job.
type Result struct {
	// Hash is amr.(*Hierarchy).ChecksumHex of the evolved hierarchy —
	// the bitwise identity of the answer, directly comparable to a
	// local core.New run with the same resolved configuration.
	Hash     string  `json:"hash"`
	Steps    int     `json:"steps"`
	Time     float64 `json:"time"`
	MaxLevel int     `json:"maxlevel"`
	NumGrids int     `json:"grids"`
	SDR      float64 `json:"sdr"`
	// Artifacts counts the derived-output products the job retains
	// (fetch them under /jobs/{id}/artifacts).
	Artifacts int             `json:"artifacts"`
	Metrics   perf.JobMetrics `json:"metrics"`
}

// Job is one scheduled simulation. The zero job is not usable; obtain
// jobs from Scheduler.Submit or Scheduler.Get.
type Job struct {
	// ID is the canonical configuration hash — identical requests share
	// a Job (and its single execution).
	ID  string
	Req Request
	// Workers is the effective par budget the job runs with.
	Workers int
	// StepBudget and MaxTime are the resolved run bounds.
	StepBudget int
	MaxTime    float64

	sched     *Scheduler
	res       resolved
	doneCh    chan struct{}
	artifacts *ArtifactStore

	mu          sync.Mutex
	state       State
	prog        Progress
	stepsDone   int
	history     []Progress // recent stream (≤ maxHistory), replayed to late watchers
	result      *Result
	err         error
	subs        []chan Progress
	cancel      context.CancelFunc
	submissions int
	cacheHits   int
	submitted   time.Time
	started     time.Time
	finished    time.Time
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Artifacts returns the job's derived-output store. It is non-nil for
// every scheduled job (empty when the request declared no outputs) and
// remains readable after the job is terminal, for as long as the job is
// retained.
func (j *Job) Artifacts() *ArtifactStore { return j.artifacts }

// State returns the job's current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the job's result once it is done; before that (or on
// failure/cancellation) it returns an error.
func (j *Job) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == Done:
		return j.result, nil
	case j.err != nil:
		return nil, j.err
	default:
		return nil, fmt.Errorf("sim: job %s is %s", j.ID, j.state)
	}
}

// Wait blocks until the job is terminal or ctx is cancelled, then
// returns Result().
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-j.doneCh:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// maxHistory bounds the per-job progress replay buffer; when a job
// outgrows it the oldest half is dropped, so very long jobs replay only
// a recent window of steps to late watchers.
const maxHistory = 4096

// Watch subscribes to the job's progress stream. The returned channel
// first replays the steps already completed (so a subscriber attached
// after Submit — or after the job finished — still sees the stream, up
// to the maxHistory most recent), then receives one Progress per further
// root step (updates are dropped, not blocked on, when the subscriber
// lags), and is closed when the job reaches a terminal state. A watcher
// abandoning a live job must detach with Unwatch.
func (j *Job) Watch() <-chan Progress {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan Progress, len(j.history)+64)
	for _, p := range j.history {
		ch <- p
	}
	if j.state.terminal() {
		close(ch)
		return ch
	}
	j.subs = append(j.subs, ch)
	return ch
}

// Unwatch detaches a Watch subscription before the job is terminal (an
// events client disconnecting mid-run) and closes its channel, so the
// job stops buffering updates for it. Harmless on subscriptions the job
// already closed.
func (j *Job) Unwatch(ch <-chan Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, sub := range j.subs {
		if sub == ch {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			close(sub)
			return
		}
	}
}

// publish fans a progress update out to watchers without ever blocking
// the evolution loop. All subscriber-channel operations (send here,
// close in finishLocked/Unwatch, buffer fill in Watch) happen under
// j.mu, so a send can never race a close.
func (j *Job) publish(p Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.prog = p
	j.stepsDone++
	if len(j.history) >= maxHistory {
		j.history = append(j.history[:0], j.history[maxHistory/2:]...)
	}
	j.history = append(j.history, p)
	for _, ch := range j.subs {
		select {
		case ch <- p:
		default: // lagging subscriber: drop, never stall physics
		}
	}
}

// finish moves the job to a terminal state; it reports whether this call
// performed the transition (false when another path already had).
func (j *Job) finish(state State, res *Result, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finishLocked(state, res, err)
}

// finishLocked is finish with j.mu held — Cancel needs the
// queued→cancelled transition atomic with its state check, or a slot
// could pick the job up in between and run it to completion
// uncancellably.
func (j *Job) finishLocked(state State, res *Result, err error) bool {
	if j.state.terminal() {
		return false
	}
	j.state = state
	j.result = res
	j.err = err
	j.finished = time.Now()
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	j.cancel = nil
	j.artifacts.close()
	close(j.doneCh)
	return true
}

// Status is the JSON-facing snapshot of a job.
type Status struct {
	ID          string   `json:"id"`
	Problem     string   `json:"problem"`
	State       string   `json:"state"`
	Workers     int      `json:"workers"`
	StepBudget  int      `json:"step_budget"`
	Progress    Progress `json:"progress"`
	Submissions int      `json:"submissions"`
	CacheHits   int      `json:"cache_hits"`
	// Artifacts and ArtifactBytes count the derived-output products
	// retained so far (see GET /jobs/{id}/artifacts).
	Artifacts     int     `json:"artifacts"`
	ArtifactBytes int     `json:"artifact_bytes"`
	Error         string  `json:"error,omitempty"`
	Hash          string  `json:"hash,omitempty"`
	WallSeconds   float64 `json:"wall_seconds"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.ID,
		Problem:     j.Req.Problem,
		State:       j.state.String(),
		Workers:     j.Workers,
		StepBudget:  j.StepBudget,
		Progress:    j.prog,
		Submissions: j.submissions,
		CacheHits:   j.cacheHits,
	}
	st.Artifacts, st.ArtifactBytes = j.artifacts.Count()
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.result != nil {
		st.Hash = j.result.Hash
	}
	switch {
	case !j.finished.IsZero() && !j.started.IsZero():
		st.WallSeconds = j.finished.Sub(j.started).Seconds()
	case !j.started.IsZero():
		st.WallSeconds = time.Since(j.started).Seconds()
	}
	return st
}

// Stats aggregates scheduler counters for /metrics.
type Stats struct {
	Submitted int64 `json:"submitted"`  // Submit calls accepted
	Coalesced int64 `json:"coalesced"`  // submissions attached to a live duplicate
	CacheHits int64 `json:"cache_hits"` // submissions answered from a completed job
	Executed  int64 `json:"executed"`   // evolutions actually run
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Queued    int   `json:"queued"`  // current
	Running   int   `json:"running"` // current
	Cached    int   `json:"cached"`  // completed results retained (Done only)
}

// Scheduler runs simulation jobs on a bounded set of slots, deduping
// identical requests and caching completed results. See the package
// comment for the full contract.
type Scheduler struct {
	cfg     Config
	baseCtx context.Context
	stop    context.CancelFunc
	queue   chan *Job
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
	jobs   map[string]*Job
	order  []string // submit order of live+retained job IDs
	stats  Stats
	start  time.Time
}

// NewScheduler starts a scheduler with cfg's slots running.
func NewScheduler(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:     cfg,
		baseCtx: ctx,
		stop:    cancel,
		queue:   make(chan *Job, cfg.QueueDepth),
		jobs:    make(map[string]*Job),
		start:   time.Now(),
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.execute(j)
			}
		}()
	}
	return s
}

// Config returns the scheduler's effective (default-filled) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// SlotWorkers returns the par budget a job receives when its request
// doesn't pin one.
func (s *Scheduler) SlotWorkers() int { return s.cfg.slotWorkers() }

// Close stops accepting submissions, cancels queued and running jobs and
// waits for the slots to drain. Completed results remain readable.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
}

// Disposition reports how a submission was satisfied.
type Disposition string

const (
	// Scheduled: a fresh job was queued for execution.
	Scheduled Disposition = "scheduled"
	// Coalesced: an identical job is already queued or running; this
	// submission rides its single execution.
	Coalesced Disposition = "coalesced"
	// CacheHit: an identical job already completed; its result answers
	// immediately.
	CacheHit Disposition = "cache"
)

// Submit schedules req, or coalesces it onto an existing identical job:
// a live job with the same canonical configuration is returned as-is
// (one execution serves all submitters), and a retained completed job
// answers immediately as a cache hit. A previously failed or cancelled
// configuration is re-run fresh. The returned job may already be
// terminal; use Job.Wait or Job.Done.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	j, _, err := s.SubmitWithDisposition(req)
	return j, err
}

// ErrClosed is returned by Submit once Close has been called — a
// transient service condition, not a bad request.
var ErrClosed = errors.New("sim: scheduler is closed")

// ErrQueueFull is returned by Submit when the backlog is at QueueDepth —
// backpressure to retry against, not a bad request.
var ErrQueueFull = errors.New("sim: job queue is full")

// SubmitWithDisposition is Submit, additionally reporting how this
// particular submission was satisfied.
func (s *Scheduler) SubmitWithDisposition(req Request) (*Job, Disposition, error) {
	r, err := resolve(req, s.cfg.slotWorkers(), s.cfg.TotalWorkers)
	if err != nil {
		return nil, "", err
	}
	id := r.key()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, "", ErrClosed
	}
	if j, ok := s.jobs[id]; ok {
		j.mu.Lock()
		state := j.state
		j.submissions++
		if state == Done {
			j.cacheHits++
		}
		j.mu.Unlock()
		switch {
		case state == Done:
			s.stats.Submitted++
			s.stats.CacheHits++
			return j, CacheHit, nil
		case !state.terminal():
			s.stats.Submitted++
			s.stats.Coalesced++
			return j, Coalesced, nil
		}
		// Failed or cancelled: drop the stale job and re-run below.
		s.removeLocked(id)
	}

	j := &Job{
		ID:         id,
		Req:        req,
		Workers:    r.opts.Workers,
		StepBudget: r.steps,
		MaxTime:    r.maxTime,
		sched:      s,
		res:        r,
		doneCh:     make(chan struct{}),
		artifacts:  newArtifactStore(s.cfg.ArtifactBytes, s.cfg.ArtifactCount),
		submitted:  time.Now(),
	}
	j.submissions = 1
	select {
	case s.queue <- j:
	default:
		return nil, "", fmt.Errorf("%w (%d jobs waiting)", ErrQueueFull, s.cfg.QueueDepth)
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.stats.Submitted++
	s.evictLocked()
	return j, Scheduled, nil
}

// Get returns the job with the given ID.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all retained jobs in submit order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Cancel stops the job with the given ID (queued jobs never start;
// running jobs stop at the next root-step boundary). It reports whether
// a live job was found.
func (s *Scheduler) Cancel(id string) bool {
	j, ok := s.Get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	switch {
	case j.state.terminal():
		j.mu.Unlock()
		return false
	case j.state == Queued:
		// Atomic with the state check: a slot claiming the job takes
		// j.mu to move it to Running, so it cannot slip in between.
		j.finishLocked(Cancelled, nil, fmt.Errorf("sim: job %s cancelled while queued", id))
		j.mu.Unlock()
		s.count(func(st *Stats) { st.Cancelled++ })
		return true
	default:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	}
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	for _, j := range s.jobs {
		switch j.State() {
		case Queued:
			st.Queued++
		case Running:
			st.Running++
		case Done:
			st.Cached++
		}
	}
	return st
}

// Uptime returns how long the scheduler has been running.
func (s *Scheduler) Uptime() time.Duration { return time.Since(s.start) }

// removeLocked forgets a job; s.mu must be held.
func (s *Scheduler) removeLocked(id string) {
	delete(s.jobs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// evictLocked drops retained terminal jobs beyond the cache size:
// failed/cancelled records go first (a failure record must never evict a
// reusable completed result), then Done results oldest-first; s.mu must
// be held.
func (s *Scheduler) evictLocked() {
	terminal := 0
	for _, j := range s.jobs {
		if j.State().terminal() {
			terminal++
		}
	}
	for _, includeDone := range []bool{false, true} {
		for i := 0; terminal > s.cfg.CacheSize && i < len(s.order); {
			j := s.jobs[s.order[i]]
			if st := j.State(); st.terminal() && (includeDone || st != Done) {
				s.removeLocked(s.order[i])
				terminal--
				continue // order shifted down; re-examine index i
			}
			i++
		}
	}
}

// execute runs one job on the calling slot goroutine.
func (s *Scheduler) execute(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.state.terminal() { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.state = Running
	j.cancel = cancel
	j.started = time.Now()
	j.mu.Unlock()

	s.mu.Lock()
	s.stats.Executed++
	s.mu.Unlock()

	res, err := s.evolve(ctx, j)
	switch {
	case err == nil:
		if j.finish(Done, res, nil) {
			s.count(func(st *Stats) { st.Succeeded++ })
		}
	case ctx.Err() != nil:
		j.mu.Lock()
		done := j.stepsDone
		j.mu.Unlock()
		if j.finish(Cancelled, nil, fmt.Errorf("sim: job %s cancelled after %d steps", j.ID, done)) {
			s.count(func(st *Stats) { st.Cancelled++ })
		}
	default:
		if j.finish(Failed, nil, err) {
			s.count(func(st *Stats) { st.Failed++ })
		}
	}
}

// count updates the terminal-outcome counters and re-applies the cache
// bound (a completing job can push the retained-terminal count over it).
func (s *Scheduler) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.evictLocked()
	s.mu.Unlock()
}

// evolve builds the job's problem and advances it under ctx, streaming
// per-step progress to watchers. A panic in the physics (bad knob
// combinations can produce them) is converted to a job failure rather
// than taking the service down.
func (s *Scheduler) evolve(ctx context.Context, j *Job) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if wp, ok := r.(par.WorkerPanic); ok {
				err = fmt.Errorf("sim: job %s panicked: %v", j.ID, wp.Value)
				return
			}
			err = fmt.Errorf("sim: job %s panicked: %v", j.ID, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err // scheduler shutting down: skip the (costly) IC build
	}
	sm, err := core.New(j.res.problem, func(o *problems.Opts) { *o = j.res.opts })
	if err != nil {
		return nil, err
	}
	// The derived-output plan runs at root-step boundaries inside the
	// observer, on the job's own worker budget; its wall-clock is billed
	// separately from the physics (Metrics.AnalysisSeconds). An
	// evaluation error fails the job — the request was validated at
	// submit, so one here is a real service defect, not user error.
	plan, err := analysis.NewOutputPlan(j.res.outputs)
	if err != nil {
		return nil, err
	}
	var analysisWall time.Duration
	var outputErr error
	emit := func(a analysis.Artifact) error {
		j.artifacts.Put(a)
		return nil
	}
	// runCtx lets an output-evaluation error stop the physics at the next
	// root-step boundary instead of burning the remaining step budget on
	// a job already doomed to fail.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	steps, err := sm.RunContext(runCtx, j.res.steps, j.res.maxTime, func(info core.StepInfo) {
		j.publish(Progress{
			Step:     info.Step,
			Time:     info.Time,
			Dt:       info.Dt,
			MaxLevel: info.MaxLevel,
			NumGrids: info.NumGrids,
		})
		if outputErr != nil {
			return
		}
		t0 := time.Now()
		if outputErr = plan.Step(sm.H, j.res.problem, info.Step, j.res.opts.Workers, emit); outputErr != nil {
			cancelRun()
		}
		analysisWall += time.Since(t0)
	})
	// outputErr outranks the cancellation it triggered (execute inspects
	// the outer ctx, so this still reports as Failed, not Cancelled).
	if outputErr != nil {
		return nil, outputErr
	}
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	if err := plan.Finish(sm.H, j.res.problem, steps-1, j.res.opts.Workers, emit); err != nil {
		return nil, err
	}
	analysisWall += time.Since(t0)

	h := sm.H
	metrics := perf.CollectJobMetrics(h.Stats, h.Timing, sm.Wall())
	metrics.AnalysisSeconds = analysisWall.Seconds()
	metrics.ArtifactCount, metrics.ArtifactBytes = j.artifacts.Count()
	return &Result{
		Hash:      h.ChecksumHex(),
		Steps:     steps,
		Time:      h.Time,
		MaxLevel:  h.MaxLevel(),
		NumGrids:  h.NumGrids(),
		SDR:       h.SpatialDynamicRange(),
		Artifacts: metrics.ArtifactCount,
		Metrics:   metrics,
	}, nil
}
