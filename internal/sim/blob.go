package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// Content-addressed artifact payloads. Artifact bodies are keyed by the
// sha256 of their bytes: the per-job ArtifactStore holds only metadata
// rows (name → meta + hash), while the bytes live once in a shared
// BlobCache no matter how many jobs produced them. On a persistent
// store the cache is a byte-budgeted LRU hot tier over the disk blobs;
// on a memory store the cached bytes are the only copy and stay pinned
// while referenced.

// HashBytes returns the hex sha256 content hash of a payload — the
// blob key and the artifact's strong HTTP ETag.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// DefaultHotTierBytes is the default byte budget of the in-memory blob
// hot tier fronting a persistent store.
const DefaultHotTierBytes = 64 << 20

// blobEntry is one referenced content hash: its refcount, size, and —
// while resident in the hot tier — the payload bytes plus its LRU links.
type blobEntry struct {
	hash       string
	size       int64
	refs       int
	data       []byte // nil when evicted to disk
	prev, next *blobEntry
}

// BlobCache is the shared content-addressed payload tier. Entries are
// refcounted by the artifact metadata rows pointing at them; resident
// bytes are bounded by the budget with least-recently-used eviction
// (pinned instead when the backing store is non-persistent — there is
// no disk tier to refetch from). All counters are served on /metrics.
type BlobCache struct {
	mu     sync.Mutex
	store  Store
	budget int64
	pinned bool // non-persistent store: resident bytes are the only copy

	entries  map[string]*blobEntry
	lru      blobEntry // sentinel ring: lru.next = most recent
	hotBytes int64
	hotCount int

	hits        int64
	misses      int64
	diskReads   int64
	evictions   int64
	dedupeBytes int64
}

// NewBlobCache builds the payload tier over a store. budget <= 0 takes
// DefaultHotTierBytes; on a non-persistent store the budget is ignored
// and every referenced blob stays resident.
func NewBlobCache(store Store, budget int64) *BlobCache {
	if budget <= 0 {
		budget = DefaultHotTierBytes
	}
	c := &BlobCache{
		store:   store,
		budget:  budget,
		pinned:  !store.Persistent(),
		entries: make(map[string]*blobEntry),
	}
	c.lru.next, c.lru.prev = &c.lru, &c.lru
	return c
}

// lruUnlink removes e from the recency ring.
func (c *BlobCache) lruUnlink(e *blobEntry) {
	if e.next == nil {
		return
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	e.next, e.prev = nil, nil
}

// lruFront moves (or inserts) e at the most-recent end.
func (c *BlobCache) lruFront(e *blobEntry) {
	c.lruUnlink(e)
	e.next = c.lru.next
	e.prev = &c.lru
	e.next.prev = e
	c.lru.next = e
}

// resident marks e's payload bytes as in the hot tier.
func (c *BlobCache) resident(e *blobEntry, data []byte) {
	if e.data == nil {
		c.hotBytes += e.size
		c.hotCount++
	}
	e.data = data
	c.lruFront(e)
	c.enforceBudget()
}

// enforceBudget evicts least-recently-used resident payloads until the
// hot tier fits the budget. Never runs in pinned mode.
func (c *BlobCache) enforceBudget() {
	if c.pinned {
		return
	}
	for c.hotBytes > c.budget && c.lru.prev != &c.lru {
		e := c.lru.prev
		c.lruUnlink(e)
		e.data = nil
		c.hotBytes -= e.size
		c.hotCount--
		c.evictions++
	}
}

// Acquire references a payload under its content hash, making it
// resident, and returns the hash. A second acquisition of bytes already
// referenced is the dedupe win counted in DedupeBytes.
func (c *BlobCache) Acquire(data []byte) string {
	hash := HashBytes(data)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[hash]
	if !ok {
		e = &blobEntry{hash: hash, size: int64(len(data))}
		c.entries[hash] = e
	} else {
		c.dedupeBytes += int64(len(data))
	}
	e.refs++
	c.resident(e, data)
	return hash
}

// AcquireRef references a content hash without its bytes — the recovery
// path, where payloads stay on disk until a reader asks for them. In
// pinned mode there is no disk tier, so this must not be used to create
// a new entry; referencing an existing one is fine.
func (c *BlobCache) AcquireRef(hash string, size int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[hash]
	if !ok {
		if c.pinned {
			return fmt.Errorf("sim: blob %s referenced without bytes on a non-persistent store", hash)
		}
		e = &blobEntry{hash: hash, size: size}
		c.entries[hash] = e
	}
	e.refs++
	return nil
}

// Release drops one reference; the last release forgets the entry and
// frees any resident bytes (the disk blob, if any, is the store's to
// reclaim).
func (c *BlobCache) Release(hash string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[hash]
	if !ok {
		return
	}
	e.refs--
	if e.refs > 0 {
		return
	}
	if e.data != nil {
		c.hotBytes -= e.size
		c.hotCount--
	}
	c.lruUnlink(e)
	delete(c.entries, hash)
}

// Get returns a referenced payload: from the hot tier when resident (a
// hit), otherwise read back from the persistent store, verified against
// its hash, and made resident (a miss). The returned bytes are shared —
// read-only.
func (c *BlobCache) Get(hash string) ([]byte, error) {
	c.mu.Lock()
	e, ok := c.entries[hash]
	if ok && e.data != nil {
		c.hits++
		c.lruFront(e)
		data := e.data
		c.mu.Unlock()
		return data, nil
	}
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("sim: blob %s is not referenced", hash)
	}
	c.misses++
	c.diskReads++
	c.mu.Unlock()
	// Read outside the lock: a cold read is disk + checksum work and must
	// not serialize the whole tier. Concurrent misses on one hash may read
	// twice; both verify, the later insert wins harmlessly.
	data, err := c.store.LoadBlob(hash)
	if err != nil {
		return nil, err
	}
	if HashBytes(data) != hash {
		return nil, fmt.Errorf("sim: blob %s failed content verification", hash)
	}
	c.mu.Lock()
	if e, ok := c.entries[hash]; ok {
		e.size = int64(len(data))
		c.resident(e, data)
	}
	c.mu.Unlock()
	return data, nil
}

// Contains reports whether the hash is resident in the hot tier without
// touching recency or counters (used by tests and the 304 fast path
// assertions).
func (c *BlobCache) Contains(hash string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[hash]
	return ok && e.data != nil
}

// BlobCacheStats is the hot tier's counter snapshot.
type BlobCacheStats struct {
	// Hits and Misses count Get calls served from resident bytes vs the
	// disk tier; DiskReads counts the store reads misses issued.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	DiskReads int64 `json:"disk_reads"`
	// Evictions counts payloads pushed out of the hot tier by the byte
	// budget.
	Evictions int64 `json:"evictions"`
	// DedupeBytes totals the payload bytes that were NOT stored again
	// because an identical blob was already referenced.
	DedupeBytes int64 `json:"dedupe_bytes"`
	// HotBytes/HotCount gauge the resident payloads; RefCount gauges the
	// distinct referenced hashes (resident or not).
	HotBytes int64 `json:"hot_bytes"`
	HotCount int   `json:"hot_count"`
	RefCount int   `json:"ref_count"`
}

// Stats snapshots the cache counters.
func (c *BlobCache) Stats() BlobCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return BlobCacheStats{
		Hits:        c.hits,
		Misses:      c.misses,
		DiskReads:   c.diskReads,
		Evictions:   c.evictions,
		DedupeBytes: c.dedupeBytes,
		HotBytes:    c.hotBytes,
		HotCount:    c.hotCount,
		RefCount:    len(c.entries),
	}
}
