package sim

// peer.go: the distributed face of the scheduler. N `enzogo serve`
// processes form a static peer group; every peer derives the identical
// consistent-hash ring from the shared -peers list, owns the jobs whose
// canonical IDs fall on its arcs, and answers for the rest by forwarding
// (submissions) or proxying (reads) to the owner — one hop, never more:
// a forwarded request carries ForwardedHeader and is always handled
// locally by the receiver, so no routing disagreement can loop.
//
// Fault tolerance rides the checkpoint machinery of the underlying
// scheduler: an owner replicates each job's manifest, restart
// checkpoints and retained artifacts to the job's ring successor
// (exactly the peer that becomes owner if this one dies). The
// successor's ping loop detects the death and re-admits the replicated
// jobs into its own scheduler, which resumes them from the replicated
// checkpoint with the pre-resume artifacts already rehydrated — to the
// same final hash and artifact bytes the original owner would have
// produced, because every kernel is bitwise worker-count-invariant.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
)

// ForwardedHeader marks a request already routed once by a peer; the
// receiver must handle it locally (the single-hop loop guard). Its value
// is the forwarding peer's advertised URL, for diagnostics.
const ForwardedHeader = "X-Enzogo-Forwarded"

// maxReplicaBody bounds a POST /peer/replicas payload (a manifest plus
// one encoded checkpoint).
const maxReplicaBody = 256 << 20

// PeerConfig configures one member of a serve peer group.
type PeerConfig struct {
	// Self is this peer's advertised base URL, e.g. "http://10.0.0.1:8080".
	// It must appear in Peers.
	Self string
	// Peers is the static membership: every peer's advertised base URL,
	// identical (as a set) on every member.
	Peers []string
	// Vnodes is the virtual-node count per peer (<= 0 = DefaultVnodes).
	// Must be identical on every member.
	Vnodes int
	// PingEvery is the health-check cadence (<= 0 = 1s). A peer that
	// fails one ping is treated as dead until a ping succeeds again.
	PingEvery time.Duration
}

// replica is one replicated job record held for a peer that owns the
// job: its latest manifest, (once the owner checkpoints) the latest
// restart checkpoint, and the artifact rows shipped so far. Data is
// base64 in the JSON wire form. Artifacts is never populated by the
// owner's POST — rows accumulate standby-side from the per-artifact
// endpoint, in production order.
type replica struct {
	Manifest  JobManifest    `json:"manifest"`
	Step      int            `json:"step"`
	Data      []byte         `json:"data,omitempty"`
	Artifacts []ArtifactMeta `json:"artifacts,omitempty"`
}

// replicaArtifact is the wire form of one replicated derived-output
// artifact: its index row plus the payload bytes (base64 in JSON).
type replicaArtifact struct {
	Meta ArtifactMeta `json:"meta"`
	Data []byte       `json:"data"`
}

// Peer wraps a Scheduler with the distributed routing, replication and
// takeover logic. Its Handler replaces Scheduler.Handler as the HTTP
// surface; everything a single-node deployment serves is still served,
// with identical semantics, plus the /peer/* endpoints.
type Peer struct {
	s       *Scheduler
	cfg     PeerConfig
	ring    *Ring
	client  *http.Client
	proxies map[string]*httputil.ReverseProxy

	mu       sync.Mutex
	dead     map[string]bool
	replicas map[string]replica

	forwards    atomic.Int64 // submissions forwarded to their owner
	proxied     atomic.Int64 // reads proxied to their owner
	misdirected atomic.Int64 // forwarded requests we do not own (served anyway)
	takeovers   atomic.Int64 // replicated jobs re-admitted after an owner death
	replErrors  atomic.Int64 // replication sends that failed
	proxyErrors atomic.Int64 // forwards/proxies that failed at the transport
	modelSyncs  atomic.Int64 // cost-model states broadcast to peers

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// NewPeer attaches the distributed layer to a scheduler and starts the
// peer health loop. Close detaches it; the scheduler's own lifetime
// stays with the caller.
func NewPeer(s *Scheduler, cfg PeerConfig) (*Peer, error) {
	if cfg.PingEvery <= 0 {
		cfg.PingEvery = time.Second
	}
	self := false
	for _, peer := range cfg.Peers {
		if peer == cfg.Self {
			self = true
		}
	}
	if !self {
		return nil, fmt.Errorf("sim: peer self %q not in peer list %v", cfg.Self, cfg.Peers)
	}
	ring, err := NewRing(cfg.Peers, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	p := &Peer{
		s:        s,
		cfg:      cfg,
		ring:     ring,
		client:   &http.Client{Timeout: 30 * time.Second},
		proxies:  make(map[string]*httputil.ReverseProxy),
		dead:     make(map[string]bool),
		replicas: make(map[string]replica),
		stop:     make(chan struct{}),
	}
	for _, peer := range cfg.Peers {
		if peer == cfg.Self {
			continue
		}
		u, err := url.Parse(peer)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("sim: peer URL %q must be absolute (http://host:port)", peer)
		}
		rp := httputil.NewSingleHostReverseProxy(u)
		rp.FlushInterval = -1 // NDJSON event streams must flush per line
		director := rp.Director
		rp.Director = func(req *http.Request) {
			director(req)
			req.Header.Set(ForwardedHeader, cfg.Self)
		}
		rp.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			p.proxyErrors.Add(1)
			writeError(w, http.StatusBadGateway, fmt.Errorf("peer %s unreachable: %w", u.Host, err))
		}
		p.proxies[peer] = rp
	}
	s.setReplHooks(&replHooks{
		scheduled:  func(m JobManifest) { p.replicate(replica{Manifest: m, Step: -1}) },
		checkpoint: func(m JobManifest, step int, data []byte) { p.replicate(replica{Manifest: m, Step: step, Data: data}) },
		artifact:   p.replicateArtifact,
		artifactDrop: func(id string, names []string) {
			p.sendJSON(http.MethodDelete, id, "/artifacts", names)
		},
		terminal: p.replicaDone,
		model:    p.replicateModel,
	})
	p.wg.Add(1)
	go p.pingLoop()
	return p, nil
}

// Close stops the health loop and detaches the replication hooks. It
// does not close the underlying scheduler.
func (p *Peer) Close() {
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
	p.s.setReplHooks(nil)
}

// Scheduler returns the wrapped scheduler.
func (p *Peer) Scheduler() *Scheduler { return p.s }

// owner returns the peer that should answer for a job ID under the
// current liveness view: the ring owner, skipping peers marked dead.
func (p *Peer) owner(id string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ring.OwnerExcluding(id, p.dead)
}

// standbyFor returns the live ring successor that should hold a local
// job's replicated state ("" in a single-peer or fully-degraded group).
func (p *Peer) standbyFor(id string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ring.Successor(id, p.cfg.Self, p.dead)
}

// Handler returns the peer's HTTP surface: the scheduler's full API with
// ownership routing in front, plus the peer-to-peer endpoints
// (POST/DELETE /peer/replicas/{id}, GET /peer/ring) and peer counters
// appended to /metrics. GET /jobs (the list) is served locally on every
// peer — each peer lists the jobs it holds; a cluster-wide view is the
// union over peers.
func (p *Peer) Handler() http.Handler {
	base := p.s.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /peer/replicas/{id}", p.handleReplicaPut)
	mux.HandleFunc("DELETE /peer/replicas/{id}", p.handleReplicaDelete)
	mux.HandleFunc("POST /peer/replicas/{id}/artifacts", p.handleReplicaArtifactPut)
	mux.HandleFunc("DELETE /peer/replicas/{id}/artifacts", p.handleReplicaArtifactDelete)
	mux.HandleFunc("POST /peer/model", p.handleModelPut)
	mux.HandleFunc("GET /peer/ring", p.handleRing)
	mux.HandleFunc("GET /metrics", p.handleMetrics)
	mux.Handle("POST /jobs", p.routeSubmit(base))
	mux.Handle("/jobs/{id}", p.routeJob(base))
	mux.Handle("/jobs/{id}/{rest...}", p.routeJob(base))
	mux.Handle("/", base)
	return mux
}

// routeSubmit decides where a submission runs. The canonical ID is
// resolved from the request body before any job state exists, so the
// ownership check is a hash plus a ring lookup — malformed bodies fall
// through to the local handler for the identical error the single-node
// server would produce.
func (p *Peer) routeSubmit(base http.Handler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge, err)
				return
			}
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		id := ""
		var req Request
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if dec.Decode(&req) == nil {
			id, _ = p.s.CanonicalID(req)
		}
		if r.Header.Get(ForwardedHeader) != "" {
			// Single-hop guard: never re-forward. A forwarded submission
			// we do not own means the sender's liveness view disagreed
			// with ours; running it here is still correct (any peer can
			// run any job to the same bits), just unaccounted placement.
			if id != "" && p.owner(id) != p.cfg.Self {
				p.misdirected.Add(1)
			}
			base.ServeHTTP(w, r)
			return
		}
		if id == "" { // unresolvable request: local handler owns the error
			base.ServeHTTP(w, r)
			return
		}
		owner := p.owner(id)
		if owner == p.cfg.Self || owner == "" {
			base.ServeHTTP(w, r)
			return
		}
		p.forwards.Add(1)
		p.proxies[owner].ServeHTTP(w, r)
	}
}

// routeJob decides where a per-job read (or cancel) is answered: locally
// when the job lives here (owned, taken over, or retained from before a
// membership change), otherwise proxied one hop to the live owner.
func (p *Peer) routeJob(base http.Handler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, ok := p.s.Get(id); ok {
			base.ServeHTTP(w, r)
			return
		}
		if r.Header.Get(ForwardedHeader) != "" {
			if p.owner(id) != p.cfg.Self {
				p.misdirected.Add(1)
			}
			base.ServeHTTP(w, r)
			return
		}
		owner := p.owner(id)
		if owner == p.cfg.Self || owner == "" {
			base.ServeHTTP(w, r) // ours (or nobody's): a 404 here is authoritative
			return
		}
		p.proxied.Add(1)
		p.proxies[owner].ServeHTTP(w, r)
	}
}

// replicate ships a job's replicated record to its ring successor.
func (p *Peer) replicate(rep replica) {
	p.sendJSON(http.MethodPost, rep.Manifest.ID, "", rep)
}

// replicateArtifact ships one retained artifact (index row plus payload)
// to the job's standby, keeping the replicated artifact set equal to the
// owner's as production proceeds — a takeover resumes mid-run, so the
// pre-resume artifacts must already be standby-side.
func (p *Peer) replicateArtifact(id string, a analysis.Artifact, hash string) {
	m := metaOf(a)
	m.Hash = hash
	p.sendJSON(http.MethodPost, id, "/artifacts", replicaArtifact{Meta: m, Data: a.Data})
}

// sendJSON runs one replication call against the job's standby (nil body
// sends no payload). Errors are counted, not surfaced: replication is
// best-effort standby state, and the job's own durability lives in the
// owner's store.
func (p *Peer) sendJSON(method, id, suffix string, body any) {
	target := p.standbyFor(id)
	if target == "" {
		return
	}
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			p.replErrors.Add(1)
			return
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, target+"/peer/replicas/"+id+suffix, rd)
	if err != nil {
		p.replErrors.Add(1)
		return
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	p.do(req)
}

// replicaDone tells the standby a job reached a terminal state, so it
// can drop the replicated record.
func (p *Peer) replicaDone(id string) {
	p.sendJSON(http.MethodDelete, id, "", nil)
}

// replicateModel broadcasts the local cost model's serialized state to
// every live peer, so each member estimates (and admits) from the whole
// group's job history, not just the jobs it happened to own. Receivers
// merge without re-broadcasting, so the gossip cannot loop.
func (p *Peer) replicateModel(state []byte) {
	p.mu.Lock()
	targets := make([]string, 0, len(p.cfg.Peers))
	for _, peer := range p.cfg.Peers {
		if peer != p.cfg.Self && !p.dead[peer] {
			targets = append(targets, peer)
		}
	}
	p.mu.Unlock()
	for _, target := range targets {
		req, err := http.NewRequest(http.MethodPost, target+"/peer/model", bytes.NewReader(state))
		if err != nil {
			p.replErrors.Add(1)
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		p.do(req)
		p.modelSyncs.Add(1)
	}
}

// handleModelPut merges a peer's broadcast cost-model state into the
// local model. The merge is a union keyed by job ID, so repeated or
// crossing broadcasts converge instead of flapping.
func (p *Peer) handleModelPut(w http.ResponseWriter, r *http.Request) {
	state, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxReplicaBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad model body: %w", err))
		return
	}
	if err := p.s.MergeCostModel(state); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad model state: %w", err))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// do runs one peer-to-peer request, counting failures.
func (p *Peer) do(req *http.Request) {
	resp, err := p.client.Do(req)
	if err != nil {
		p.replErrors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 400 {
		p.replErrors.Add(1)
	}
}

// handleReplicaPut stores a replicated job record from the job's owner.
// Checkpoint bytes go into the local store immediately (so a takeover
// resumes even if it races later replications); the manifest stays in
// peer memory — writing it to the store would make this peer's next
// restart recover a job it does not own.
func (p *Peer) handleReplicaPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var rep replica
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxReplicaBody))
	if err := dec.Decode(&rep); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad replica body: %w", err))
		return
	}
	if rep.Manifest.ID != id {
		writeError(w, http.StatusBadRequest, fmt.Errorf("replica manifest is for %q, not %q", rep.Manifest.ID, id))
		return
	}
	if len(rep.Data) > 0 {
		if err := p.s.store.SaveCheckpoint(id, rep.Step, rep.Data); err != nil {
			p.s.noteStoreErr(err)
		}
	}
	p.mu.Lock()
	// Artifact rows accumulate via their own endpoint; a manifest or
	// checkpoint update must not wipe them.
	rep.Artifacts = p.replicas[id].Artifacts
	p.replicas[id] = rep
	p.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// handleReplicaArtifactPut stores one replicated artifact from the job's
// owner: the payload goes into the local store's blob tier right away,
// the index row into the in-memory replica record (production order,
// replace-by-name) for a takeover to rehydrate from.
func (p *Peer) handleReplicaArtifactPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var ra replicaArtifact
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxReplicaBody))
	if err := dec.Decode(&ra); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad replica artifact body: %w", err))
		return
	}
	if err := p.s.store.SaveArtifact(id, artifactOf(ra.Meta, ra.Data), ra.Meta.Hash); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("replica artifact: %w", err))
		return
	}
	p.mu.Lock()
	rep := p.replicas[id]
	replaced := false
	for i := range rep.Artifacts {
		if rep.Artifacts[i].Name == ra.Meta.Name {
			rep.Artifacts[i] = ra.Meta
			replaced = true
			break
		}
	}
	if !replaced {
		rep.Artifacts = append(rep.Artifacts, ra.Meta)
	}
	p.replicas[id] = rep
	p.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// handleReplicaArtifactDelete mirrors the owner's artifact eviction on
// the standby: the named rows leave the replica record and, unless the
// job has become local, the store.
func (p *Peer) handleReplicaArtifactDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var names []string
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxReplicaBody))
	if err := dec.Decode(&names); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad artifact drop body: %w", err))
		return
	}
	doomed := make(map[string]bool, len(names))
	for _, n := range names {
		doomed[n] = true
	}
	p.mu.Lock()
	if rep, ok := p.replicas[id]; ok {
		kept := rep.Artifacts[:0]
		for _, m := range rep.Artifacts {
			if !doomed[m.Name] {
				kept = append(kept, m)
			}
		}
		rep.Artifacts = kept
		p.replicas[id] = rep
	}
	p.mu.Unlock()
	if _, local := p.s.Get(id); !local {
		p.s.store.DeleteArtifacts(id, names)
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleReplicaDelete drops a replicated record once the owner reports
// the job terminal. Replicated checkpoint and artifact bytes are
// reclaimed unless the job has since become local (then the local
// scheduler manages them).
func (p *Peer) handleReplicaDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	p.mu.Lock()
	delete(p.replicas, id)
	p.mu.Unlock()
	if _, local := p.s.Get(id); !local {
		p.s.store.DeleteJob(id)
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleRing reports this peer's membership view: the static ring and
// which peers its health loop currently considers dead.
func (p *Peer) handleRing(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	var deadPeers []string
	for peer, d := range p.dead {
		if d {
			deadPeers = append(deadPeers, peer)
		}
	}
	replicas := len(p.replicas)
	p.mu.Unlock()
	sort.Strings(deadPeers)
	writeJSON(w, http.StatusOK, map[string]any{
		"self":     p.cfg.Self,
		"peers":    p.ring.Peers(),
		"dead":     deadPeers,
		"replicas": replicas,
	})
}

// handleMetrics serves the scheduler's counters with the peer layer's
// appended.
func (p *Peer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p.s.handleMetrics(w, r)
	p.mu.Lock()
	deadN := 0
	for _, d := range p.dead {
		if d {
			deadN++
		}
	}
	replicas := len(p.replicas)
	p.mu.Unlock()
	fmt.Fprintf(w, "sim_peers %d\n", len(p.cfg.Peers))
	fmt.Fprintf(w, "sim_peers_alive %d\n", len(p.cfg.Peers)-deadN)
	fmt.Fprintf(w, "sim_peer_replicas %d\n", replicas)
	fmt.Fprintf(w, "sim_peer_forwards_total %d\n", p.forwards.Load())
	fmt.Fprintf(w, "sim_peer_proxied_reads_total %d\n", p.proxied.Load())
	fmt.Fprintf(w, "sim_peer_misdirected_total %d\n", p.misdirected.Load())
	fmt.Fprintf(w, "sim_peer_takeovers_total %d\n", p.takeovers.Load())
	fmt.Fprintf(w, "sim_peer_replication_errors_total %d\n", p.replErrors.Load())
	fmt.Fprintf(w, "sim_peer_proxy_errors_total %d\n", p.proxyErrors.Load())
	fmt.Fprintf(w, "sim_peer_model_syncs_total %d\n", p.modelSyncs.Load())
}

// pingLoop polls every other peer's /healthz on the configured cadence.
// An alive→dead transition triggers a takeover scan; a dead→alive
// transition just restores routing (the returned peer starts empty of
// the jobs it lost — static membership makes no attempt to hand jobs
// back).
func (p *Peer) pingLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.PingEvery)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
		for _, peer := range p.cfg.Peers {
			if peer == p.cfg.Self {
				continue
			}
			alive := p.ping(peer)
			p.mu.Lock()
			wasAlive := !p.dead[peer]
			p.dead[peer] = !alive
			p.mu.Unlock()
			if wasAlive && !alive {
				p.takeover()
			}
		}
	}
}

// ping probes one peer's liveness.
func (p *Peer) ping(peer string) bool {
	client := &http.Client{Timeout: max(p.cfg.PingEvery, 250*time.Millisecond)}
	resp, err := client.Get(peer + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode < http.StatusInternalServerError
}

// takeover claims every replicated job whose live owner is now this
// peer, re-admitting each into the local scheduler (which resumes from
// the replicated checkpoint). A claim that fails (queue full, duplicate
// race) returns the replica for the next liveness transition to retry.
func (p *Peer) takeover() {
	p.mu.Lock()
	var claim []replica
	for id, rep := range p.replicas {
		if rep.Manifest.ID == "" {
			continue // artifact rows arrived before any manifest; nothing to admit
		}
		if p.ring.OwnerExcluding(id, p.dead) == p.cfg.Self {
			claim = append(claim, rep)
			delete(p.replicas, id)
		}
	}
	p.mu.Unlock()
	sort.Slice(claim, func(i, k int) bool {
		a, b := claim[i].Manifest, claim[k].Manifest
		if !a.SubmittedAt.Equal(b.SubmittedAt) {
			return a.SubmittedAt.Before(b.SubmittedAt)
		}
		return a.ID < b.ID
	})
	for _, rep := range claim {
		if _, ok := p.s.Get(rep.Manifest.ID); ok {
			continue // already local (e.g. the owner forwarded it here earlier)
		}
		if err := p.s.readmit(rep.Manifest, rep.Artifacts); err != nil {
			p.mu.Lock()
			p.replicas[rep.Manifest.ID] = rep
			p.mu.Unlock()
			continue
		}
		p.takeovers.Add(1)
	}
}
