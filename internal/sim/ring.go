package sim

// ring.go: consistent-hash ownership over the canonical request-hash
// space. Each serve peer owns the arc of the ring between its virtual
// nodes and their predecessors; a job ID (itself a hash of the resolved
// request) maps to the first virtual node at or after its point. Virtual
// nodes keep the arcs statistically even, and — because every peer
// derives the identical ring from the identical static -peers list — no
// coordination is needed for two peers to agree who owns a job.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVnodes is the virtual-node count per peer when RingVnodes is
// unset: enough to keep the largest/smallest arc ratio within a few
// percent for small clusters without making ring construction notable.
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring over a static peer list.
// Membership changes (a peer marked dead) are handled by the lookup
// side — OwnerExcluding walks past excluded peers — not by rebuilding
// the ring, so every peer keeps agreeing on arc boundaries.
type Ring struct {
	peers  []string
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node: its position and its peer's index.
type ringPoint struct {
	hash uint64
	peer int
}

// ringHash maps a string to its ring position: the first 8 bytes of its
// SHA-256, matching the construction of the canonical job ID space.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds the ring over the peer list (order-insensitive: points
// depend only on the peer names) with vnodes virtual nodes per peer
// (<= 0 selects DefaultVnodes).
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("sim: ring needs at least one peer")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := map[string]bool{}
	r := &Ring{peers: append([]string(nil), peers...)}
	for i, p := range r.peers {
		if seen[p] {
			return nil, fmt.Errorf("sim: duplicate ring peer %q", p)
		}
		seen[p] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", p, v)), peer: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r, nil
}

// Peers returns the ring's peer list (the caller must not mutate it).
func (r *Ring) Peers() []string { return r.peers }

// Owner returns the peer owning the given job ID.
func (r *Ring) Owner(id string) string {
	return r.OwnerExcluding(id, nil)
}

// OwnerExcluding returns the first peer at or after the ID's ring point
// that is not excluded — the owner under a membership view that treats
// excluded peers as absent. With every peer excluded it returns "".
func (r *Ring) OwnerExcluding(id string, excluded map[string]bool) string {
	h := ringHash(id)
	n := len(r.points)
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < n; i++ {
		p := r.peers[r.points[(start+i)%n].peer]
		if !excluded[p] {
			return p
		}
	}
	return ""
}

// Successor returns the first peer after the ID's owning arc that is
// neither `self` nor excluded: the standby that replicated state for the
// ID should land on, and exactly the peer OwnerExcluding resolves to
// once `self` dies. Returns "" for a cluster with no eligible standby.
func (r *Ring) Successor(id, self string, excluded map[string]bool) string {
	ex := map[string]bool{self: true}
	for p, dead := range excluded {
		if dead {
			ex[p] = true
		}
	}
	return r.OwnerExcluding(id, ex)
}
