package sim_test

// BenchmarkServeReads measures the artifact read path end to end —
// request routing through the scheduler's HTTP handler down to the blob
// tier — under the four regimes a high-fan-out deployment lives in:
// cold (every read misses the hot tier and re-reads + re-verifies the
// disk blob), warm (resident in the LRU hot tier), etag304 (a
// revalidation that never touches the payload at all), and tiles (one
// pyramid tile per request). Baselined in BENCH_serve.json and enforced
// by cmd/perfgate; record new rows with `make bench-serve`.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/sim"
	"repro/internal/sim/diskstore"
)

// benchServeSetup runs one small job with a large pyramid product on a
// disk store and returns the scheduler's handler plus the artifact
// paths to hammer.
func benchServeSetup(b *testing.B, hotBytes int64) (h http.Handler, artifact string, tiles []string, etag string) {
	b.Helper()
	store, err := diskstore.New(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	s := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1, Store: store, HotBytes: hotBytes})
	b.Cleanup(func() { s.Close() })
	j, err := s.Submit(sim.Request{
		Problem: "sedov", RootN: 8, MaxLevel: sim.Int(1), Steps: 2, Workers: 1,
		Outputs: []analysis.OutputRequest{{Kind: analysis.KindPyramid, N: 512, NSamp: 8, Axis: 2}},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	if _, err := j.Wait(ctx); err != nil {
		b.Fatal(err)
	}
	idx := j.Artifacts().Index()
	if idx.Count != 1 {
		b.Fatalf("expected 1 artifact, got %d", idx.Count)
	}
	m := idx.Artifacts[0]
	artifact = "/jobs/" + j.ID + "/artifacts/" + m.Name
	// One tile path per tile of the set, every level.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, artifact, nil))
	ts, err := analysis.ParseTileSet(rec.Body.Bytes())
	if err != nil {
		b.Fatal(err)
	}
	for z := 0; z < ts.Levels; z++ {
		per := ts.TilesPerSide(z)
		for y := 0; y < per; y++ {
			for x := 0; x < per; x++ {
				tiles = append(tiles, fmt.Sprintf("%s/%d/%d/%d", artifact, z, x, y))
			}
		}
	}
	return s.Handler(), artifact, tiles, `"` + m.Hash + `"`
}

// serveOnce dispatches one request directly into the handler and
// checks the status, returning the recorder for further assertions.
func serveOnce(b *testing.B, h http.Handler, path string, header map[string]string, want int) {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range header {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != want {
		b.Fatalf("GET %s: %d, want %d", path, rec.Code, want)
	}
}

func BenchmarkServeReads(b *testing.B) {
	// 64 KiB windows keep cold and warm comparable: both serve the same
	// bytes; what differs is where the payload came from.
	window := map[string]string{"Range": "bytes=0-65535"}

	b.Run("cold", func(b *testing.B) {
		// A 1-byte hot tier: every request is a miss — a full blob read
		// from disk plus sha256 verification before the window is served.
		h, artifact, _, _ := benchServeSetup(b, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, h, artifact, window, http.StatusPartialContent)
		}
	})
	b.Run("warm", func(b *testing.B) {
		h, artifact, _, _ := benchServeSetup(b, 0)
		serveOnce(b, h, artifact, nil, http.StatusOK) // make it resident
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, h, artifact, window, http.StatusPartialContent)
		}
	})
	b.Run("etag304", func(b *testing.B) {
		h, artifact, _, etag := benchServeSetup(b, 0)
		inm := map[string]string{"If-None-Match": etag}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, h, artifact, inm, http.StatusNotModified)
		}
	})
	b.Run("tiles", func(b *testing.B) {
		h, _, tiles, _ := benchServeSetup(b, 0)
		serveOnce(b, h, tiles[0], nil, http.StatusOK) // make the set resident
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, h, tiles[i%len(tiles)], nil, http.StatusOK)
		}
	})
}
