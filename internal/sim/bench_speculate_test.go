package sim

// BenchmarkSpeculativeSweep measures the wall time of a staggered-
// arrival sweep — the enzobatch -server -stagger pattern: the client
// announces its row list, then submits one row at a time with a think-
// time gap after each completion. With speculation off the server
// computes every row on demand, so the sweep costs sum(rows) plus the
// gaps; with speculation on the idle slot runs ahead through the
// announced backlog during the gaps, so later rows are cache hits and
// the sweep costs roughly one row plus the gaps. The committed
// baseline lives in BENCH_speculate.json and cmd/perfgate gates both
// modes against it — "off" doubles as the regression guard proving the
// speculation machinery costs nothing when disabled.

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func BenchmarkSpeculativeSweep(b *testing.B) {
	const (
		sweepRows = 4
		// The client's think time between rows: roughly twice one row's
		// runtime on the baseline host, so the idle window fits a whole
		// speculative execution even when the shared host runs slow —
		// wall-time jitter must not decide whether pre-warming keeps up.
		gap = 140 * time.Millisecond
	)
	mkRows := func() []Request {
		rs := make([]Request, sweepRows)
		for i := range rs {
			rs[i] = Request{Problem: "sedov", RootN: 32, MaxLevel: Int(1), Steps: 3, Workers: 1,
				Knobs: map[string]float64{"e0": float64(8 + i)}}
		}
		return rs
	}
	for _, speculate := range []bool{false, true} {
		b.Run(fmt.Sprintf("speculate=%t", speculate), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 1, CacheSize: 4 * sweepRows,
					Speculate: speculate, SpeculateSlots: 1})
				reqs := mkRows()
				b.StartTimer()

				if speculate {
					if _, err := s.PrewarmSweep("bench", reqs); err != nil {
						b.Fatal(err)
					}
				}
				for k, req := range reqs {
					if k > 0 {
						time.Sleep(gap)
					}
					j, err := s.Submit(req)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := j.Wait(context.Background()); err != nil {
						b.Fatal(err)
					}
				}

				b.StopTimer()
				s.Close()
				b.StartTimer()
			}
		})
	}
}
