package sim

import (
	"fmt"
	"sync"

	"repro/internal/analysis"
)

// ArtifactMeta is the JSON-facing description of one stored artifact —
// everything but the payload bytes. Size is always the stored (on-wire)
// byte count; for compressed products (snapshot/checkpoint payloads)
// RawSize additionally reports the uncompressed gob size, so the index
// shows both sides of the compression.
type ArtifactMeta struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	Field       string  `json:"field,omitempty"`
	Step        int     `json:"step"`
	Time        float64 `json:"time"`
	ContentType string  `json:"content_type"`
	Size        int     `json:"size"`
	RawSize     int64   `json:"raw_size,omitempty"`
}

func metaOf(a analysis.Artifact) ArtifactMeta {
	return ArtifactMeta{
		Name:        a.Name,
		Kind:        string(a.Kind),
		Field:       a.Field,
		Step:        a.Step,
		Time:        a.Time,
		ContentType: a.ContentType,
		Size:        len(a.Data),
		RawSize:     a.RawSize,
	}
}

// ArtifactIndex is the GET /jobs/{id}/artifacts payload: the retained
// artifacts in production order plus the store's bookkeeping.
type ArtifactIndex struct {
	Count   int `json:"count"`
	Bytes   int `json:"bytes"`
	Dropped int `json:"dropped"` // artifacts evicted or refused by the size bound
	// Capacity is the per-job byte budget the store evicts against.
	Capacity  int            `json:"capacity"`
	Artifacts []ArtifactMeta `json:"artifacts"`
}

// ArtifactStore is a bounded, per-job collection of derived-output
// artifacts. Artifacts are retained in production order up to a byte and
// count budget; when a new artifact would exceed it, the oldest retained
// artifacts are evicted first (a long run's trailing products win over
// its head). Watchers stream artifact-ready metadata with full replay,
// mirroring Job.Watch.
type ArtifactStore struct {
	mu       sync.Mutex
	maxBytes int
	maxCount int
	bytes    int
	dropped  int
	arts     []analysis.Artifact
	subs     []chan ArtifactMeta
	closed   bool
}

// newArtifactStore sizes a store; budgets <= 0 take the scheduler
// defaults.
func newArtifactStore(maxBytes, maxCount int) *ArtifactStore {
	if maxBytes <= 0 {
		maxBytes = DefaultArtifactBytes
	}
	if maxCount <= 0 {
		maxCount = DefaultArtifactCount
	}
	return &ArtifactStore{maxBytes: maxBytes, maxCount: maxCount}
}

// Put stores one artifact, evicting oldest-first to fit the budgets.
// It reports whether the artifact was retained at all, and the names it
// evicted to make room — both so a persistent backing store can mirror
// the store's contents exactly (a refused artifact must not be
// persisted, an evicted one must be deleted). An artifact with the name
// of a retained one replaces it in place — the path a resumed job takes
// when it re-derives a product it had already emitted before the
// interruption; the replacement bytes are bitwise identical, so
// position and identity are preserved. An artifact larger than the
// whole byte budget is refused (counted in Dropped). Watchers are
// notified without blocking.
func (s *ArtifactStore) Put(a analysis.Artifact) (evicted []string, stored bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(a.Data) > s.maxBytes {
		s.dropped++
		return nil, false
	}
	replaced := false
	for i := range s.arts {
		if s.arts[i].Name == a.Name {
			s.bytes += len(a.Data) - len(s.arts[i].Data)
			s.arts[i] = a
			replaced = true
			break
		}
	}
	if !replaced {
		for len(s.arts) > 0 && (s.bytes+len(a.Data) > s.maxBytes || len(s.arts)+1 > s.maxCount) {
			s.bytes -= len(s.arts[0].Data)
			evicted = append(evicted, s.arts[0].Name)
			s.arts[0] = analysis.Artifact{} // release the payload; the backing array outlives the re-slice
			s.arts = s.arts[1:]
			s.dropped++
		}
		s.arts = append(s.arts, a)
		s.bytes += len(a.Data)
	}
	m := metaOf(a)
	for _, ch := range s.subs {
		select {
		case ch <- m:
		default: // lagging subscriber: drop, never stall the job
		}
	}
	return evicted, true
}

// Get returns the retained artifact with the given name.
func (s *ArtifactStore) Get(name string) (analysis.Artifact, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.arts {
		if a.Name == name {
			return a, true
		}
	}
	return analysis.Artifact{}, false
}

// All returns the retained artifacts in production order. The payload
// bytes are shared, not copied; treat them as read-only.
func (s *ArtifactStore) All() []analysis.Artifact {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]analysis.Artifact, len(s.arts))
	copy(out, s.arts)
	return out
}

// Index snapshots the store's metadata.
func (s *ArtifactStore) Index() ArtifactIndex {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := ArtifactIndex{
		Count:     len(s.arts),
		Bytes:     s.bytes,
		Dropped:   s.dropped,
		Capacity:  s.maxBytes,
		Artifacts: make([]ArtifactMeta, len(s.arts)),
	}
	for i, a := range s.arts {
		idx.Artifacts[i] = metaOf(a)
	}
	return idx
}

// Count returns the number of retained artifacts and their total bytes.
func (s *ArtifactStore) Count() (n, bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.arts), s.bytes
}

// Watch subscribes to artifact-ready events: the channel first replays
// the metadata of every retained artifact, then receives one ArtifactMeta
// per new artifact (dropped, not blocked on, when the subscriber lags),
// and is closed when the job reaches a terminal state. Detach abandoned
// live subscriptions with Unwatch.
func (s *ArtifactStore) Watch() <-chan ArtifactMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan ArtifactMeta, len(s.arts)+64)
	for _, a := range s.arts {
		ch <- metaOf(a)
	}
	if s.closed {
		close(ch)
		return ch
	}
	s.subs = append(s.subs, ch)
	return ch
}

// Unwatch detaches a live Watch subscription and closes its channel.
// Harmless on subscriptions the store already closed.
func (s *ArtifactStore) Unwatch(ch <-chan ArtifactMeta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, sub := range s.subs {
		if sub == ch {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			close(sub)
			return
		}
	}
}

// close marks the store complete (its job is terminal) and closes every
// subscriber channel. Stored artifacts remain readable.
func (s *ArtifactStore) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, ch := range s.subs {
		close(ch)
	}
	s.subs = nil
}

// Artifact-store sizing defaults: enough for a sweep's worth of images
// or a couple of small snapshots per job without letting any one job pin
// unbounded memory.
const (
	DefaultArtifactBytes = 32 << 20
	DefaultArtifactCount = 256
)

// MaxOutputsPerRequest caps the output-request list of a single job; a
// request wanting more products should split into several jobs.
const MaxOutputsPerRequest = 16

// validateOutputs normalizes a request's output list and applies the
// service caps (stricter than the analysis-level bounds, for the same
// reason rootn is capped: one request must not be able to OOM the
// service).
func validateOutputs(reqs []analysis.OutputRequest) ([]analysis.OutputRequest, error) {
	if len(reqs) > MaxOutputsPerRequest {
		return nil, fmt.Errorf("sim: %d output requests exceeds the cap %d", len(reqs), MaxOutputsPerRequest)
	}
	out := make([]analysis.OutputRequest, len(reqs))
	for i, r := range reqs {
		if r.Kind == analysis.KindCheckpoint {
			// Reserved for the scheduler's own durability machinery:
			// checkpoint cadence is service configuration
			// (-checkpoint-every), not a per-job product. Use "snapshot"
			// to get restartable state as a data product.
			return nil, fmt.Errorf("sim: output request %d: kind %q is reserved (want a restartable state product? use %q)",
				i, analysis.KindCheckpoint, analysis.KindSnapshot)
		}
		n, err := r.Normalize()
		if err != nil {
			return nil, fmt.Errorf("sim: output request %d: %w", i, err)
		}
		if n.N > MaxOutputN {
			return nil, fmt.Errorf("sim: output request %d: n=%d exceeds the service cap %d", i, n.N, MaxOutputN)
		}
		if n.NSamp > MaxOutputN {
			return nil, fmt.Errorf("sim: output request %d: nsamp=%d exceeds the service cap %d", i, n.NSamp, MaxOutputN)
		}
		out[i] = n
	}
	return out, nil
}

// MaxOutputN caps image resolutions and line-of-sight sample counts of
// service jobs: a 1024² float64 image is 8 MB before encoding, already a
// quarter of the default artifact budget.
const MaxOutputN = 1024
