package sim

import (
	"fmt"
	"sync"

	"repro/internal/analysis"
)

// ArtifactMeta is the JSON-facing description of one stored artifact —
// everything but the payload bytes. Size is always the stored (on-wire)
// byte count; for compressed products (snapshot/checkpoint payloads)
// RawSize additionally reports the uncompressed gob size, so the index
// shows both sides of the compression. Hash is the payload's sha256
// content hash — the blob-store key and the artifact's strong HTTP ETag.
type ArtifactMeta struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	Field       string  `json:"field,omitempty"`
	Step        int     `json:"step"`
	Time        float64 `json:"time"`
	ContentType string  `json:"content_type"`
	Size        int     `json:"size"`
	RawSize     int64   `json:"raw_size,omitempty"`
	Hash        string  `json:"content_hash,omitempty"`
}

func metaOf(a analysis.Artifact) ArtifactMeta {
	return ArtifactMeta{
		Name:        a.Name,
		Kind:        string(a.Kind),
		Field:       a.Field,
		Step:        a.Step,
		Time:        a.Time,
		ContentType: a.ContentType,
		Size:        len(a.Data),
		RawSize:     a.RawSize,
	}
}

// artifactOf rebuilds the analysis.Artifact form from a metadata row
// plus its payload bytes.
func artifactOf(m ArtifactMeta, data []byte) analysis.Artifact {
	return analysis.Artifact{
		Name:        m.Name,
		Kind:        analysis.OutputKind(m.Kind),
		Field:       m.Field,
		Step:        m.Step,
		Time:        m.Time,
		ContentType: m.ContentType,
		RawSize:     m.RawSize,
		Data:        data,
	}
}

// ArtifactIndex is the GET /jobs/{id}/artifacts payload: the retained
// artifacts in production order plus the store's bookkeeping.
type ArtifactIndex struct {
	Count   int `json:"count"`
	Bytes   int `json:"bytes"`
	Dropped int `json:"dropped"` // artifacts evicted or refused by the size bound
	// Capacity is the per-job byte budget the store evicts against.
	Capacity  int            `json:"capacity"`
	Artifacts []ArtifactMeta `json:"artifacts"`
}

// ArtifactStore is a bounded, per-job collection of derived-output
// artifacts. It retains metadata rows in production order up to a byte
// and count budget; the payload bytes live in the scheduler's shared
// content-addressed BlobCache, referenced by hash. When a new artifact
// would exceed the budget, the oldest retained artifacts are evicted
// first (a long run's trailing products win over its head). Watchers
// stream artifact-ready metadata with full replay, mirroring Job.Watch.
type ArtifactStore struct {
	mu       sync.Mutex
	blobs    *BlobCache
	maxBytes int
	maxCount int
	bytes    int
	dropped  int
	arts     []ArtifactMeta
	idx      *ArtifactIndex // cached Index snapshot; nil after any mutation
	subs     []chan ArtifactMeta
	closed   bool
}

// newArtifactStore sizes a store over the shared blob tier; budgets <= 0
// take the scheduler defaults.
func newArtifactStore(maxBytes, maxCount int, blobs *BlobCache) *ArtifactStore {
	if maxBytes <= 0 {
		maxBytes = DefaultArtifactBytes
	}
	if maxCount <= 0 {
		maxCount = DefaultArtifactCount
	}
	if blobs == nil {
		blobs = NewBlobCache(NewMemStore(), 0)
	}
	return &ArtifactStore{maxBytes: maxBytes, maxCount: maxCount, blobs: blobs}
}

// Put stores one artifact, evicting oldest-first to fit the budgets.
// It reports whether the artifact was retained at all, the payload's
// content hash when it was, and the names it evicted to make room — all
// so a persistent backing store can mirror the store's contents exactly
// (a refused artifact must not be persisted, an evicted one must be
// deleted). An artifact with the name of a retained one replaces it in
// place — the path a resumed job takes when it re-derives a product it
// had already emitted before the interruption; the replacement bytes
// are bitwise identical, so position, identity, and (via the content
// hash) the ETag are preserved. An artifact larger than the whole byte
// budget is refused (counted in Dropped). Watchers are notified without
// blocking.
func (s *ArtifactStore) Put(a analysis.Artifact) (evicted []string, hash string, stored bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(a.Data) > s.maxBytes {
		s.dropped++
		s.idx = nil // the refusal shows up in Index().Dropped
		return nil, "", false
	}
	m := metaOf(a)
	m.Hash = s.blobs.Acquire(a.Data)
	evicted = s.insertLocked(m)
	return evicted, m.Hash, true
}

// putRecovered re-registers a persisted artifact by metadata alone: the
// payload stays in the store's blob tier (referenced, not resident)
// until a reader asks for it. The metadata row must carry its content
// hash; rows without one (a pre-content-addressing store) are refused.
func (s *ArtifactStore) putRecovered(m ArtifactMeta) (evicted []string, stored bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.Size > s.maxBytes || m.Hash == "" {
		s.dropped++
		s.idx = nil
		return nil, false
	}
	if err := s.blobs.AcquireRef(m.Hash, int64(m.Size)); err != nil {
		s.dropped++
		s.idx = nil
		return nil, false
	}
	return s.insertLocked(m), true
}

// insertLocked places a referenced metadata row, replacing its name or
// evicting oldest rows to fit, and notifies watchers; s.mu must be held
// and the row's blob reference already acquired.
func (s *ArtifactStore) insertLocked(m ArtifactMeta) (evicted []string) {
	replaced := false
	for i := range s.arts {
		if s.arts[i].Name == m.Name {
			s.bytes += m.Size - s.arts[i].Size
			s.blobs.Release(s.arts[i].Hash)
			s.arts[i] = m
			replaced = true
			break
		}
	}
	if !replaced {
		for len(s.arts) > 0 && (s.bytes+m.Size > s.maxBytes || len(s.arts)+1 > s.maxCount) {
			s.bytes -= s.arts[0].Size
			s.blobs.Release(s.arts[0].Hash)
			evicted = append(evicted, s.arts[0].Name)
			s.arts[0] = ArtifactMeta{} // release the row; the backing array outlives the re-slice
			s.arts = s.arts[1:]
			s.dropped++
		}
		s.arts = append(s.arts, m)
		s.bytes += m.Size
	}
	s.idx = nil
	for _, ch := range s.subs {
		select {
		case ch <- m:
		default: // lagging subscriber: drop, never stall the job
		}
	}
	return evicted
}

// Stat returns the metadata row of the named artifact without touching
// the payload tier — the serving fast path (HEAD, If-None-Match).
func (s *ArtifactStore) Stat(name string) (ArtifactMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.arts {
		if m.Name == name {
			return m, true
		}
	}
	return ArtifactMeta{}, false
}

// Open returns the metadata row and payload bytes of the named
// artifact, fetching the payload through the blob tier (hot-tier hit or
// disk read). The bytes are shared — read-only.
func (s *ArtifactStore) Open(name string) (ArtifactMeta, []byte, error) {
	m, ok := s.Stat(name)
	if !ok {
		return m, nil, fmt.Errorf("no artifact %q", name)
	}
	data, err := s.blobs.Get(m.Hash)
	if err != nil {
		return m, nil, err
	}
	return m, data, nil
}

// Get returns the retained artifact with the given name, payload
// included (false also when the payload read fails).
func (s *ArtifactStore) Get(name string) (analysis.Artifact, bool) {
	m, data, err := s.Open(name)
	if err != nil {
		return analysis.Artifact{}, false
	}
	return artifactOf(m, data), true
}

// All returns the retained artifacts in production order, payloads
// included. The payload bytes are shared, not copied; treat them as
// read-only.
func (s *ArtifactStore) All() []analysis.Artifact {
	s.mu.Lock()
	metas := make([]ArtifactMeta, len(s.arts))
	copy(metas, s.arts)
	s.mu.Unlock()
	out := make([]analysis.Artifact, 0, len(metas))
	for _, m := range metas {
		data, err := s.blobs.Get(m.Hash)
		if err != nil {
			continue
		}
		out = append(out, artifactOf(m, data))
	}
	return out
}

// Index snapshots the store's metadata. The snapshot is cached between
// mutations, so the index endpoint — on the hot read path — costs a
// pointer copy, not a per-request rebuild; the shared Artifacts slice
// is read-only.
func (s *ArtifactStore) Index() ArtifactIndex {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.idx == nil {
		arts := make([]ArtifactMeta, len(s.arts))
		copy(arts, s.arts)
		s.idx = &ArtifactIndex{
			Count:     len(s.arts),
			Bytes:     s.bytes,
			Dropped:   s.dropped,
			Capacity:  s.maxBytes,
			Artifacts: arts,
		}
	}
	return *s.idx
}

// Count returns the number of retained artifacts and their total bytes.
func (s *ArtifactStore) Count() (n, bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.arts), s.bytes
}

// Watch subscribes to artifact-ready events: the channel first replays
// the metadata of every retained artifact, then receives one ArtifactMeta
// per new artifact (dropped, not blocked on, when the subscriber lags),
// and is closed when the job reaches a terminal state. Detach abandoned
// live subscriptions with Unwatch.
func (s *ArtifactStore) Watch() <-chan ArtifactMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan ArtifactMeta, len(s.arts)+64)
	for _, m := range s.arts {
		ch <- m
	}
	if s.closed {
		close(ch)
		return ch
	}
	s.subs = append(s.subs, ch)
	return ch
}

// Unwatch detaches a live Watch subscription and closes its channel.
// Harmless on subscriptions the store already closed.
func (s *ArtifactStore) Unwatch(ch <-chan ArtifactMeta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, sub := range s.subs {
		if sub == ch {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			close(sub)
			return
		}
	}
}

// close marks the store complete (its job is terminal) and closes every
// subscriber channel. Stored artifacts remain readable.
func (s *ArtifactStore) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, ch := range s.subs {
		close(ch)
	}
	s.subs = nil
}

// release drops the store's blob references — called when the job is
// forgotten entirely (cache eviction), so the shared tier does not pin
// payloads nobody can reach.
func (s *ArtifactStore) release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.arts {
		s.blobs.Release(m.Hash)
	}
	s.arts = nil
	s.bytes = 0
	s.idx = nil
}

// Artifact-store sizing defaults: enough for a sweep's worth of images
// or a couple of small snapshots per job without letting any one job pin
// unbounded memory.
const (
	DefaultArtifactBytes = 32 << 20
	DefaultArtifactCount = 256
)

// MaxOutputsPerRequest caps the output-request list of a single job; a
// request wanting more products should split into several jobs.
const MaxOutputsPerRequest = 16

// validateOutputs normalizes a request's output list and applies the
// service caps (stricter than the analysis-level bounds, for the same
// reason rootn is capped: one request must not be able to OOM the
// service).
func validateOutputs(reqs []analysis.OutputRequest) ([]analysis.OutputRequest, error) {
	if len(reqs) > MaxOutputsPerRequest {
		return nil, fmt.Errorf("sim: %d output requests exceeds the cap %d", len(reqs), MaxOutputsPerRequest)
	}
	out := make([]analysis.OutputRequest, len(reqs))
	for i, r := range reqs {
		if r.Kind == analysis.KindCheckpoint {
			// Reserved for the scheduler's own durability machinery:
			// checkpoint cadence is service configuration
			// (-checkpoint-every), not a per-job product. Use "snapshot"
			// to get restartable state as a data product.
			return nil, fmt.Errorf("sim: output request %d: kind %q is reserved (want a restartable state product? use %q)",
				i, analysis.KindCheckpoint, analysis.KindSnapshot)
		}
		n, err := r.Normalize()
		if err != nil {
			return nil, fmt.Errorf("sim: output request %d: %w", i, err)
		}
		if n.N > MaxOutputN {
			return nil, fmt.Errorf("sim: output request %d: n=%d exceeds the service cap %d", i, n.N, MaxOutputN)
		}
		if n.NSamp > MaxOutputN {
			return nil, fmt.Errorf("sim: output request %d: nsamp=%d exceeds the service cap %d", i, n.NSamp, MaxOutputN)
		}
		out[i] = n
	}
	return out, nil
}

// MaxOutputN caps image resolutions and line-of-sight sample counts of
// service jobs: a 1024² float64 image is 8 MB before encoding, already a
// quarter of the default artifact budget.
const MaxOutputN = 1024
