// Package storetest is the sim.Store conformance suite: one set of
// behavioral tests every Store implementation must pass, run against
// both the in-memory default and the disk store so the two can never
// drift apart on WAL, artifact, or checkpoint semantics. Expectations
// branch on Persistent(): a non-persistent store must accept every
// write as a cheap no-op and recover nothing, a persistent one must
// round-trip everything Recover needs.
package storetest

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/sim"
)

// Run exercises one Store implementation against the interface
// contract. open must return a fresh, empty store on each call (a new
// temp directory for disk stores); the suite closes what it opens.
func Run(t *testing.T, open func(t *testing.T) sim.Store) {
	t.Run("ManifestWALAndRecover", func(t *testing.T) { testManifestRecover(t, open) })
	t.Run("ResultRoundTrip", func(t *testing.T) { testResult(t, open) })
	t.Run("ArtifactsAndBlobs", func(t *testing.T) { testArtifacts(t, open) })
	t.Run("Checkpoints", func(t *testing.T) { testCheckpoints(t, open) })
	t.Run("DeleteJob", func(t *testing.T) { testDeleteJob(t, open) })
	t.Run("CostModel", func(t *testing.T) { testCostModel(t, open) })
	t.Run("EmptyStore", func(t *testing.T) { testEmpty(t, open) })
}

// manifest builds a plausible JobManifest for conformance writes.
func manifest(id, state string, at time.Time) sim.JobManifest {
	return sim.JobManifest{
		ID:      id,
		State:   state,
		Workers: 2,
		Request: sim.Request{Problem: "sedov", RootN: 16, Steps: 4},

		SubmittedAt: at,
	}
}

// artifact builds a derived-output product with the given payload.
func artifact(name string, data []byte) analysis.Artifact {
	return analysis.Artifact{
		Name:        name,
		Kind:        analysis.KindProjection,
		Field:       "rho",
		Step:        3,
		Time:        0.25,
		ContentType: "image/x-portable-graymap",
		Data:        data,
	}
}

func testManifestRecover(t *testing.T, open func(t *testing.T) sim.Store) {
	s := open(t)
	defer s.Close()
	base := time.Now().Add(-time.Minute).Truncate(time.Second)

	// The WAL contract: every transition is accepted, the latest write
	// wins. Two jobs with distinct submit times pin Recover's ordering.
	old := manifest("job-old", "queued", base)
	if err := s.SaveManifest(old); err != nil {
		t.Fatal(err)
	}
	old.State = "running"
	if err := s.SaveManifest(old); err != nil {
		t.Fatal(err)
	}
	old.State = sim.ManifestInterrupted
	old.Steps, old.Time = 7, 0.5
	if err := s.SaveManifest(old); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveManifest(manifest("job-new", "queued", base.Add(10*time.Second))); err != nil {
		t.Fatal(err)
	}

	recovered, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Persistent() {
		if len(recovered) != 0 {
			t.Fatalf("non-persistent store recovered %d jobs", len(recovered))
		}
		return
	}
	if len(recovered) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(recovered))
	}
	// Oldest submission first, so scheduler eviction order survives.
	if recovered[0].Manifest.ID != "job-old" || recovered[1].Manifest.ID != "job-new" {
		t.Fatalf("recover order %s, %s", recovered[0].Manifest.ID, recovered[1].Manifest.ID)
	}
	got := recovered[0].Manifest
	if got.State != sim.ManifestInterrupted || got.Steps != 7 || got.Time != 0.5 {
		t.Fatalf("latest manifest write did not win: %+v", got)
	}
	if got.Workers != 2 || got.Request.Problem != "sedov" || got.Request.RootN != 16 {
		t.Fatalf("manifest identity fields lost: %+v", got)
	}
	if !got.SubmittedAt.Equal(base) {
		t.Fatalf("submit time %v != %v", got.SubmittedAt, base)
	}
}

func testResult(t *testing.T, open func(t *testing.T) sim.Store) {
	s := open(t)
	defer s.Close()
	m := manifest("job-done", "done", time.Now())
	if err := s.SaveManifest(m); err != nil {
		t.Fatal(err)
	}
	res := &sim.Result{Hash: "deadbeef", Steps: 9, Time: 1.5, MaxLevel: 2, NumGrids: 11}
	if err := s.SaveResult(m.ID, res); err != nil {
		t.Fatal(err)
	}
	recovered, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Persistent() {
		if len(recovered) != 0 {
			t.Fatalf("non-persistent store recovered %d jobs", len(recovered))
		}
		return
	}
	if len(recovered) != 1 || recovered[0].Result == nil {
		t.Fatalf("done job did not recover with a result: %+v", recovered)
	}
	if got := recovered[0].Result; got.Hash != res.Hash || got.Steps != res.Steps || got.NumGrids != res.NumGrids {
		t.Fatalf("result round-trip: got %+v want %+v", got, res)
	}
}

func testArtifacts(t *testing.T, open func(t *testing.T) sim.Store) {
	s := open(t)
	defer s.Close()
	if err := s.SaveManifest(manifest("job-art", "done", time.Now())); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("enzogo"), 64)
	hash := sim.HashBytes(payload)
	other := []byte("a different payload entirely")
	otherHash := sim.HashBytes(other)

	// Two names sharing one payload, one distinct: the shared payload
	// must occupy a single blob in a persistent store.
	for i, a := range []analysis.Artifact{
		artifact("proj_step0001.pgm", payload),
		artifact("proj_step0002.pgm", payload),
		artifact("slice_step0002.pgm", other),
	} {
		h := hash
		if i == 2 {
			h = otherHash
		}
		if err := s.SaveArtifact("job-art", a, h); err != nil {
			t.Fatal(err)
		}
	}

	if !s.Persistent() {
		// Non-persistent stores hold no blob tier: LoadBlob must fail
		// (the in-memory cache pins the only copy) and gauges stay zero.
		if _, err := s.LoadBlob(hash); err == nil {
			t.Fatal("non-persistent LoadBlob succeeded")
		}
		if st := s.Stats(); st != (sim.StoreStats{}) {
			t.Fatalf("non-persistent stats non-zero: %+v", st)
		}
		if err := s.DeleteArtifacts("job-art", []string{"proj_step0001.pgm"}); err != nil {
			t.Fatal(err)
		}
		return
	}

	if got, err := s.LoadBlob(hash); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("LoadBlob round-trip: %v (%d bytes)", err, len(got))
	}
	st := s.Stats()
	if st.ArtifactCount != 3 || st.BlobCount != 2 {
		t.Fatalf("stats after dedupe: %+v", st)
	}
	if st.DedupeBytes != int64(len(payload)) {
		t.Fatalf("dedupe gauge %d, want %d", st.DedupeBytes, len(payload))
	}

	// Recover surfaces metadata rows in production order, no payloads.
	recovered, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || len(recovered[0].Artifacts) != 3 {
		t.Fatalf("recovered artifacts: %+v", recovered)
	}
	names := []string{}
	for _, a := range recovered[0].Artifacts {
		names = append(names, a.Name)
		if a.Hash == "" || a.Size != int(len(payload)) && a.Hash != otherHash {
			t.Fatalf("artifact meta incomplete: %+v", a)
		}
	}
	want := []string{"proj_step0001.pgm", "proj_step0002.pgm", "slice_step0002.pgm"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("artifact order %v, want %v", names, want)
	}

	// Deleting one of the two references must keep the shared blob;
	// deleting the last reference reclaims it.
	if err := s.DeleteArtifacts("job-art", []string{"proj_step0001.pgm"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadBlob(hash); err != nil {
		t.Fatal("blob reclaimed while still referenced")
	}
	if err := s.DeleteArtifacts("job-art", []string{"proj_step0002.pgm"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadBlob(hash); err == nil {
		t.Fatal("blob survived its last dereference")
	}
	if st := s.Stats(); st.ArtifactCount != 1 || st.BlobCount != 1 {
		t.Fatalf("stats after deletes: %+v", st)
	}
}

func testCheckpoints(t *testing.T, open func(t *testing.T) sim.Store) {
	s := open(t)
	defer s.Close()
	const id = "job-ckpt"
	if ck, err := s.LatestCheckpoint(id); err != nil || ck != nil {
		t.Fatalf("checkpoint on empty store: %v, %v", ck, err)
	}
	for step, data := range map[int][]byte{4: []byte("early"), 12: []byte("later"), 20: []byte("latest")} {
		if err := s.SaveCheckpoint(id, step, data); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := s.LatestCheckpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Persistent() {
		if ck != nil {
			t.Fatalf("non-persistent store kept a checkpoint: %+v", ck)
		}
		return
	}
	// The contract is "retain at least the latest"; pruning older ones
	// is an implementation choice the suite does not pin.
	if ck == nil || ck.Step != 20 || !bytes.Equal(ck.Data, []byte("latest")) {
		t.Fatalf("latest checkpoint: %+v", ck)
	}
	if st := s.Stats(); st.CheckpointCount < 1 || st.CheckpointBytes < int64(len("latest")) {
		t.Fatalf("checkpoint gauges: %+v", st)
	}
	if err := s.DeleteCheckpoints(id); err != nil {
		t.Fatal(err)
	}
	if ck, err := s.LatestCheckpoint(id); err != nil || ck != nil {
		t.Fatalf("checkpoint survived DeleteCheckpoints: %v, %v", ck, err)
	}
	if st := s.Stats(); st.CheckpointCount != 0 || st.CheckpointBytes != 0 {
		t.Fatalf("checkpoint gauges after delete: %+v", st)
	}
}

func testDeleteJob(t *testing.T, open func(t *testing.T) sim.Store) {
	s := open(t)
	defer s.Close()
	const id = "job-gone"
	if err := s.SaveManifest(manifest(id, "done", time.Now())); err != nil {
		t.Fatal(err)
	}
	payload := []byte("soon to be orphaned")
	hash := sim.HashBytes(payload)
	if err := s.SaveArtifact(id, artifact("proj_step0001.pgm", payload), hash); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCheckpoint(id, 3, []byte("ckpt")); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteJob(id); err != nil {
		t.Fatal(err)
	}
	recovered, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("deleted job recovered: %+v", recovered)
	}
	if _, err := s.LoadBlob(hash); err == nil {
		t.Fatal("deleted job's blob still readable")
	}
	if st := s.Stats(); st != (sim.StoreStats{DedupeBytes: st.DedupeBytes}) {
		t.Fatalf("gauges non-zero after DeleteJob: %+v", st)
	}
}

func testCostModel(t *testing.T, open func(t *testing.T) sim.Store) {
	s := open(t)
	defer s.Close()
	// An empty store (of either kind) holds no model state.
	if state, err := s.LoadCostModel(); err != nil || state != nil {
		t.Fatalf("LoadCostModel on empty store: %q, %v", state, err)
	}
	first := []byte(`{"version":1,"problems":{"sedov":[]}}`)
	if err := s.SaveCostModel(first); err != nil {
		t.Fatal(err)
	}
	second := []byte(`{"version":1,"problems":{"sedov":[{"job_id":"a"}]}}`)
	if err := s.SaveCostModel(second); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadCostModel()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Persistent() {
		if got != nil {
			t.Fatalf("non-persistent store kept cost-model state: %q", got)
		}
		return
	}
	// The blob round-trips byte-for-byte and the latest write wins.
	if !bytes.Equal(got, second) {
		t.Fatalf("cost-model state round-trip: got %q want %q", got, second)
	}
}

func testEmpty(t *testing.T, open func(t *testing.T) sim.Store) {
	s := open(t)
	// Deletes of never-seen jobs are idempotent no-ops everywhere.
	if err := s.DeleteJob("never-existed"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteCheckpoints("never-existed"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteArtifacts("never-existed", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	recovered, err := s.Recover()
	if err != nil || len(recovered) != 0 {
		t.Fatalf("empty store recover: %v, %v", recovered, err)
	}
	if st := s.Stats(); st != (sim.StoreStats{}) {
		t.Fatalf("empty store stats: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
