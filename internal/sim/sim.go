// Package sim is the long-lived simulation job service: a bounded
// scheduler that runs registered problems (internal/problems) through the
// core façade, partitions the global par worker budget across concurrent
// jobs, dedupes identical submissions onto a single execution, caches
// completed results keyed by a canonical hash of the resolved
// configuration, and streams per-job progress over channels.
//
// Persistence is pluggable behind the Store interface: the default
// memory store keeps the historical everything-in-RAM behavior, while a
// disk store (internal/sim/diskstore, `enzogo serve -data dir`) makes
// the service durable — completed results and artifacts survive process
// restarts as cache hits, running jobs write restart checkpoints on an
// OutputPlan cadence (Config.CheckpointEvery/CheckpointTime), startup
// recovery resumes interrupted jobs from their latest checkpoint with
// bitwise-identical final answers, and Drain checkpoints every running
// job before shutdown.
//
// Two front ends drive it: `enzogo serve` exposes the scheduler as an
// HTTP/JSON API (see Handler) and `enzobatch` pushes sweep files through
// it in-process. Both produce bitwise-comparable results: a job's result
// hash is amr.(*Hierarchy).Checksum after evolution, the same digest the
// golden regression suite pins, so a service answer can be verified
// against a direct core.New run.
//
// Embedding the scheduler in another binary:
//
//	sched := sim.NewScheduler(sim.Config{MaxConcurrent: 4})
//	defer sched.Close()
//	job, err := sched.Submit(sim.Request{Problem: "sedov", Steps: 10})
//	for p := range job.Watch() {
//		log.Printf("step %d t=%g", p.Step, p.Time)
//	}
//	res, err := job.Result()
package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"maps"
	"math"

	"repro/internal/analysis"
	"repro/internal/problems"
)

// Request describes one simulation job. Zero-valued fields fall back to
// the problem spec's defaults (the same semantics as unset enzogo flags);
// Chemistry is a pointer so JSON can distinguish "off" from "unset".
type Request struct {
	// Problem is the registry name (enzogo -list). Required.
	Problem string `json:"problem"`
	// Steps bounds the run to this many root steps (default 10).
	Steps int `json:"steps,omitempty"`
	// MaxTime stops the run once code time reaches it (0 = no bound).
	MaxTime float64 `json:"max_time,omitempty"`

	RootN int `json:"rootn,omitempty"`
	// MaxLevel overrides the spec default when non-nil; a pointer
	// because an explicit 0 ("no refinement") is a meaningful, distinct
	// configuration. Use sim.Int.
	MaxLevel *int `json:"maxlevel,omitempty"`
	// Seed overrides the spec default when non-nil (pointer for the
	// same reason: seed 0 is a valid explicit choice). Use sim.Int64.
	Seed   *int64 `json:"seed,omitempty"`
	Solver string `json:"solver,omitempty"`
	// Chemistry overrides the spec default when non-nil.
	Chemistry *bool `json:"chemistry,omitempty"`
	// Workers pins this job's par worker budget; 0 lets the scheduler
	// assign the per-slot share of its total budget. The effective
	// count is part of the job's identity (see Opts.Canonical).
	Workers int `json:"workers,omitempty"`
	// Knobs are the problem-specific -p key=value numeric knobs.
	Knobs map[string]float64 `json:"knobs,omitempty"`
	// Outputs declares the derived data products the job evaluates at
	// root-step boundaries into its artifact store (served under
	// /jobs/{id}/artifacts). Order matters: it numbers the artifacts and
	// is part of the job's identity.
	Outputs []analysis.OutputRequest `json:"outputs,omitempty"`

	// Tenant names the fair-share accounting bucket this submission
	// bills to (default "default"). Scheduling metadata only: it is NOT
	// part of the job's canonical identity, so identical configurations
	// from different tenants still coalesce onto a single execution.
	Tenant string `json:"tenant,omitempty"`
	// DeadlineSeconds is an optional QoS hint: the submitter wants the
	// result within this many seconds of submission. A queued job whose
	// slack (deadline minus predicted runtime) runs out is boosted ahead
	// of the fair-share order, within the starvation-freedom bound. Like
	// Tenant, it is scheduling metadata, not job identity; a coalesced
	// resubmission may tighten — never relax — the deadline.
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
}

// DefaultSteps is the root-step budget of a Request that sets none.
const DefaultSteps = 10

// Int returns a pointer to v, for Request fields where an explicit zero
// differs from "use the spec default".
func Int(v int) *int { return &v }

// Int64 is Int for the Seed field.
func Int64(v int64) *int64 { return &v }

// Merge overlays over onto base: fields set in over win, unset (zero)
// fields keep base's value, and knob maps merge key-wise. This is the
// sweep-file semantics of enzobatch, where a file-level defaults block is
// merged under every job row.
func Merge(base, over Request) Request {
	out := base
	if over.Problem != "" {
		out.Problem = over.Problem
	}
	if over.Steps != 0 {
		out.Steps = over.Steps
	}
	if over.MaxTime != 0 {
		out.MaxTime = over.MaxTime
	}
	if over.RootN != 0 {
		out.RootN = over.RootN
	}
	if over.MaxLevel != nil {
		out.MaxLevel = over.MaxLevel
	}
	if over.Seed != nil {
		out.Seed = over.Seed
	}
	if over.Solver != "" {
		out.Solver = over.Solver
	}
	if over.Chemistry != nil {
		out.Chemistry = over.Chemistry
	}
	if over.Workers != 0 {
		out.Workers = over.Workers
	}
	if len(over.Knobs) > 0 {
		merged := maps.Clone(base.Knobs)
		if merged == nil {
			merged = map[string]float64{}
		}
		maps.Copy(merged, over.Knobs)
		out.Knobs = merged
	}
	if over.Tenant != "" {
		out.Tenant = over.Tenant
	}
	if over.DeadlineSeconds != 0 {
		out.DeadlineSeconds = over.DeadlineSeconds
	}
	if len(over.Outputs) > 0 {
		// A non-empty output list replaces the base's wholesale (order
		// is identity), unlike the key-wise knob merge. An explicit
		// empty list is indistinguishable from unset — a row cannot
		// clear the defaults' outputs, only override them.
		out.Outputs = over.Outputs
	}
	return out
}

// resolved is a Request normalized against its problem spec: the full
// Opts the builder will see plus the run bounds. Its canonical string is
// the job's dedupe/cache identity.
type resolved struct {
	problem string
	opts    problems.Opts
	steps   int
	maxTime float64
	// outputs is the normalized derived-output list; part of the job
	// identity because it determines which artifacts exist.
	outputs []analysis.OutputRequest
}

// resolve validates req and normalizes it against the spec defaults,
// assigning slotWorkers as the par budget when the request doesn't pin
// one; a pinned budget may not exceed maxWorkers (the scheduler's total
// budget — otherwise one request could oversubscribe the machine the
// slot partition exists to protect). Knob names and the solver are
// checked here too, so a bad request fails at submit time (HTTP 400),
// not as a dead job.
func resolve(req Request, slotWorkers, maxWorkers int) (resolved, error) {
	spec, ok := problems.Get(req.Problem)
	if !ok {
		return resolved{}, fmt.Errorf("sim: unknown problem %q (registered: %v)", req.Problem, problems.Names())
	}
	o := spec.Defaults
	o.Extra = maps.Clone(o.Extra)
	if req.RootN != 0 {
		o.RootN = req.RootN
	}
	if req.MaxLevel != nil {
		o.MaxLevel = *req.MaxLevel
	}
	if req.Chemistry != nil {
		o.Chemistry = *req.Chemistry
	}
	if req.Seed != nil {
		o.Seed = *req.Seed
	}
	if req.Solver != "" {
		if _, err := problems.ParseSolver(req.Solver); err != nil {
			return resolved{}, err
		}
		o.Solver = req.Solver
	}
	for k, v := range req.Knobs {
		if _, known := spec.Knobs[k]; !known {
			return resolved{}, fmt.Errorf("sim: problem %q has no knob %q", req.Problem, k)
		}
		if o.Extra == nil {
			o.Extra = map[string]float64{}
		}
		o.Extra[k] = v
	}
	if req.Workers > maxWorkers {
		return resolved{}, fmt.Errorf("sim: workers %d exceeds the service budget %d", req.Workers, maxWorkers)
	}
	o.Workers = req.Workers
	if o.Workers <= 0 {
		o.Workers = slotWorkers
	}
	outputs, err := validateOutputs(req.Outputs)
	if err != nil {
		return resolved{}, err
	}
	r := resolved{problem: req.Problem, opts: o, steps: req.Steps, maxTime: req.MaxTime, outputs: outputs}
	if r.steps <= 0 {
		r.steps = DefaultSteps
	}
	if r.steps > MaxSteps {
		return resolved{}, fmt.Errorf("sim: steps %d exceeds the service cap %d", r.steps, MaxSteps)
	}
	// Resource sanity before a slot commits memory to the job: a single
	// oversized request must fail at submit, not OOM the whole service
	// (the panic recovery around evolution cannot catch an OOM kill).
	if o.RootN < 4 || o.RootN&(o.RootN-1) != 0 || o.RootN > MaxRootN {
		return resolved{}, fmt.Errorf("sim: rootn must be a power of two in [4,%d], got %d", MaxRootN, o.RootN)
	}
	if o.MaxLevel < 0 || o.MaxLevel > MaxMaxLevel {
		return resolved{}, fmt.Errorf("sim: maxlevel must be in [0,%d], got %d", MaxMaxLevel, o.MaxLevel)
	}
	// QoS metadata sanity: these never enter the identity hash, but a
	// malformed value must still fail at submit time, not poison the
	// queue accounting or the per-tenant metric labels.
	if req.DeadlineSeconds < 0 || math.IsNaN(req.DeadlineSeconds) || math.IsInf(req.DeadlineSeconds, 0) {
		return resolved{}, fmt.Errorf("sim: deadline_seconds must be a finite value >= 0, got %g", req.DeadlineSeconds)
	}
	if len(req.Tenant) > MaxTenantLen {
		return resolved{}, fmt.Errorf("sim: tenant name exceeds %d bytes", MaxTenantLen)
	}
	return r, nil
}

// MaxTenantLen caps the tenant field: tenant names label per-tenant
// queue gauges on /metrics, so they must stay bounded.
const MaxTenantLen = 64

// MaxSteps caps a single job's root-step budget so one request cannot
// monopolize a service slot indefinitely.
const MaxSteps = 100000

// MaxRootN and MaxMaxLevel cap a job's grid dimensions. 256³ root cells
// across ~10 float64 fields is ~1.3 GB before refinement — already the
// outer edge of what one service slot should commit to; anything larger
// is a provisioning decision, not a request.
const (
	MaxRootN    = 256
	MaxMaxLevel = 12
)

// key returns the canonical job identity: a short sha256 digest of the
// problem name, the fully resolved Opts (including the effective worker
// budget — see problems.Opts.Canonical for why), the run bounds, and the
// normalized output-request list — two jobs that differ only in which
// data products they collect are distinct jobs, or a coalesced
// submission could come back missing the artifacts it asked for.
func (r resolved) key() string {
	s := fmt.Sprintf("problem=%s;%s;steps=%d;maxtime=%g;outputs=%s",
		r.problem, r.opts.Canonical(), r.steps, r.maxTime,
		analysis.CanonicalOutputs(r.outputs))
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:8])
}
