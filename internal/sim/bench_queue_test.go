package sim

// BenchmarkSchedulerQoS measures the fair-share queue's steady-state
// dispatch cost — one push plus one pop against a standing backlog — as
// the tenant population grows. pop scans tenant heads, so the tenant
// count is the axis that matters; the committed baseline lives in
// BENCH_queue.json and cmd/perfgate gates regressions against it.

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkSchedulerQoS(b *testing.B) {
	for _, tenants := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
			// A weighted tenant and a mix of deadline entries keep every
			// pop branch (weight lookup, urgency scan, burst accounting)
			// on the measured path.
			q := newFairQueue(1<<20, map[string]float64{"t0": 2}, func() time.Time { return base })
			seq := 0
			mk := func() *Job {
				seq++
				j := &Job{ID: fmt.Sprintf("j%d", seq), tenant: fmt.Sprintf("t%d", seq%tenants)}
				if seq%3 == 0 {
					j.deadline = base.Add(time.Duration(seq%97-40) * time.Second)
				}
				return j
			}
			// Steady state: a standing backlog so pop always has every
			// tenant in play, then one push + one pop per iteration keeps
			// the depth constant.
			for range 16 * tenants {
				if err := q.push(mk(), false); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for range b.N {
				if err := q.push(mk(), true); err != nil {
					b.Fatal(err)
				}
				if _, ok := q.pop(); !ok {
					b.Fatal("queue drained under a standing backlog")
				}
			}
		})
	}
}
