package sim_test

// The read-path acceptance suite: artifact bodies served with strong
// ETags (content hashes) that survive restarts, If-None-Match answered
// 304 without touching the payload tier, byte ranges via 206/416,
// pyramid tiles with out-of-range coordinates as 404, and the hot-tier
// LRU evicting under byte pressure while every cold read is verified
// against its hash. This file lives in package sim_test so it can wire
// the real disk store under the scheduler.

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/sim"
	"repro/internal/sim/diskstore"
)

// serveReq is a small sedov run that emits one projection and one tile
// pyramid at the end of the run.
const serveReq = `{"problem":"sedov","rootn":8,"maxlevel":1,"steps":2,"workers":1,
	"outputs":[{"kind":"projection","n":64,"nsamp":8,"axis":2},
	           {"kind":"pyramid","n":128,"nsamp":8,"axis":2}]}`

// runServeJob submits serveReq and waits for it to finish, returning
// the job ID.
func runServeJob(t *testing.T, s *sim.Scheduler, base string) string {
	t.Helper()
	sub := postJob(t, base, serveReq)
	j, ok := s.Get(sub.ID)
	if !ok {
		t.Fatalf("job %s not found after submit", sub.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if _, err := j.Wait(ctx); err != nil {
		t.Fatalf("job failed: %v", err)
	}
	return sub.ID
}

// metricValue scrapes one counter from /metrics.
func metricValue(t *testing.T, base, name string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if v, ok := strings.CutPrefix(sc.Text(), name+" "); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return n
		}
	}
	t.Fatalf("metric %s not exported", name)
	return 0
}

// artifactNamed returns the name of the job's first artifact of a kind.
func artifactNamed(t *testing.T, base, id, kind string) sim.ArtifactMeta {
	t.Helper()
	var idx sim.ArtifactIndex
	getJSON(t, base+"/jobs/"+id+"/artifacts", &idx)
	for _, m := range idx.Artifacts {
		if m.Kind == kind {
			return m
		}
	}
	t.Fatalf("no %s artifact in %+v", kind, idx.Artifacts)
	return sim.ArtifactMeta{}
}

func get(t *testing.T, url string, header map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf []byte
	b := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(b)
		buf = append(buf, b[:n]...)
		if err != nil {
			return buf
		}
	}
}

func TestArtifactConditionalAndRangeServing(t *testing.T) {
	store, err := diskstore.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1, Store: store})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	id := runServeJob(t, s, srv.URL)
	m := artifactNamed(t, srv.URL, id, "projection")
	url := srv.URL + "/jobs/" + id + "/artifacts/" + m.Name

	// Plain GET: strong ETag = quoted content hash, immutable caching
	// (the job is terminal), range support advertised.
	resp := get(t, url, nil)
	body := readAll(t, resp)
	etag := resp.Header.Get("ETag")
	if want := `"` + m.Hash + `"`; etag != want {
		t.Fatalf("ETag %q, want %q", etag, want)
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "immutable") {
		t.Fatalf("terminal job artifact not immutable: Cache-Control %q", cc)
	}
	if ar := resp.Header.Get("Accept-Ranges"); ar != "bytes" {
		t.Fatalf("Accept-Ranges %q", ar)
	}
	if len(body) != m.Size {
		t.Fatalf("body %d bytes, meta says %d", len(body), m.Size)
	}

	// HEAD: metadata only, no body.
	headResp, err := http.Head(url)
	if err != nil {
		t.Fatal(err)
	}
	if b := readAll(t, headResp); len(b) != 0 || headResp.Header.Get("Content-Length") != strconv.Itoa(m.Size) {
		t.Fatalf("HEAD: %d body bytes, Content-Length %q", len(b), headResp.Header.Get("Content-Length"))
	}

	// If-None-Match revalidation: 304, empty body, and — the point — no
	// payload-tier access at all (disk reads, hits and misses all flat).
	reads0 := metricValue(t, srv.URL, "sim_artifact_disk_reads_total")
	hits0 := metricValue(t, srv.URL, "sim_artifact_cache_hits_total")
	misses0 := metricValue(t, srv.URL, "sim_artifact_cache_misses_total")
	nm0 := metricValue(t, srv.URL, "sim_artifact_not_modified_total")
	for _, inm := range []string{etag, "*", `"zzz", ` + etag, "W/" + etag} {
		resp := get(t, url, map[string]string{"If-None-Match": inm})
		b := readAll(t, resp)
		if resp.StatusCode != http.StatusNotModified || len(b) != 0 {
			t.Fatalf("If-None-Match %q: %s with %d body bytes", inm, resp.Status, len(b))
		}
		if got := resp.Header.Get("ETag"); got != etag {
			t.Fatalf("304 lost the ETag: %q", got)
		}
	}
	if r := metricValue(t, srv.URL, "sim_artifact_disk_reads_total"); r != reads0 {
		t.Fatalf("304 touched the disk: %d reads, was %d", r, reads0)
	}
	if h := metricValue(t, srv.URL, "sim_artifact_cache_hits_total"); h != hits0 {
		t.Fatalf("304 touched the hot tier: %d hits, was %d", h, hits0)
	}
	if mi := metricValue(t, srv.URL, "sim_artifact_cache_misses_total"); mi != misses0 {
		t.Fatalf("304 missed the hot tier: %d misses, was %d", mi, misses0)
	}
	if nm := metricValue(t, srv.URL, "sim_artifact_not_modified_total"); nm != nm0+4 {
		t.Fatalf("not-modified counter %d, want %d", nm, nm0+4)
	}
	// A stale validator serves the full body.
	if resp := get(t, url, map[string]string{"If-None-Match": `"stale"`}); resp.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match: %s", resp.Status)
	} else {
		readAll(t, resp)
	}

	// Byte ranges: a satisfiable window is 206 with exactly that window;
	// malformed and unsatisfiable ranges are 416.
	resp = get(t, url, map[string]string{"Range": "bytes=0-9"})
	part := readAll(t, resp)
	if resp.StatusCode != http.StatusPartialContent || string(part) != string(body[:10]) {
		t.Fatalf("range 0-9: %s, %d bytes", resp.Status, len(part))
	}
	if cr := resp.Header.Get("Content-Range"); cr != fmt.Sprintf("bytes 0-9/%d", m.Size) {
		t.Fatalf("Content-Range %q", cr)
	}
	for _, rng := range []string{"bytes=abc-def", fmt.Sprintf("bytes=%d-", m.Size+100)} {
		resp := get(t, url, map[string]string{"Range": rng})
		readAll(t, resp)
		if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
			t.Fatalf("Range %q: %s, want 416", rng, resp.Status)
		}
	}
	// Served-bytes counter moved by at least the full body + the range.
	if served := metricValue(t, srv.URL, "sim_artifact_bytes_served_total"); served < int64(m.Size)+10 {
		t.Fatalf("bytes served %d, want >= %d", served, m.Size+10)
	}
}

func TestETagStableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	store1, err := diskstore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1, Store: store1})
	srv1 := httptest.NewServer(s1.Handler())
	id := runServeJob(t, s1, srv1.URL)
	m1 := artifactNamed(t, srv1.URL, id, "projection")
	resp := get(t, srv1.URL+"/jobs/"+id+"/artifacts/"+m1.Name, nil)
	body1 := readAll(t, resp)
	etag := resp.Header.Get("ETag")
	srv1.Close()
	s1.Close()

	// Restart on the same data dir: the recovered artifact serves the
	// same bytes under the same ETag, and a client that cached against
	// the old process revalidates straight to 304.
	store2, err := diskstore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1, Store: store2})
	defer s2.Close()
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()
	if _, _, err := s2.RecoverState(); err != nil {
		t.Fatal(err)
	}
	url := srv2.URL + "/jobs/" + id + "/artifacts/" + m1.Name
	resp = get(t, url, nil)
	body2 := readAll(t, resp)
	if got := resp.Header.Get("ETag"); got != etag {
		t.Fatalf("ETag changed across restart: %q -> %q", etag, got)
	}
	if string(body1) != string(body2) {
		t.Fatal("artifact bytes changed across restart")
	}
	resp = get(t, url, map[string]string{"If-None-Match": etag})
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation after restart: %s, want 304", resp.Status)
	}
}

func TestPyramidTileServing(t *testing.T) {
	s := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	id := runServeJob(t, s, srv.URL)
	m := artifactNamed(t, srv.URL, id, "pyramid")
	base := srv.URL + "/jobs/" + id + "/artifacts/" + m.Name

	full := getBytes(t, base)
	ts, err := analysis.ParseTileSet(full)
	if err != nil {
		t.Fatal(err)
	}
	if ts.N != 128 || ts.Levels != 2 {
		t.Fatalf("tile set geometry %+v", ts)
	}
	// Every tile of every level serves byte-equal to the container's
	// copy, as a standalone PGM, with a per-tile ETag honoring 304.
	for z := 0; z < ts.Levels; z++ {
		per := ts.TilesPerSide(z)
		for y := 0; y < per; y++ {
			for x := 0; x < per; x++ {
				url := fmt.Sprintf("%s/%d/%d/%d", base, z, x, y)
				resp := get(t, url, nil)
				tile := readAll(t, resp)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("tile %d/%d/%d: %s", z, x, y, resp.Status)
				}
				if ct := resp.Header.Get("Content-Type"); ct != "image/x-portable-graymap" {
					t.Fatalf("tile content type %q", ct)
				}
				want, _ := ts.Tile(z, x, y)
				if string(tile) != string(want) {
					t.Fatalf("tile %d/%d/%d differs from container copy", z, x, y)
				}
				etag := resp.Header.Get("ETag")
				if wantTag := fmt.Sprintf(`"%s-%d.%d.%d"`, m.Hash, z, x, y); etag != wantTag {
					t.Fatalf("tile ETag %q, want %q", etag, wantTag)
				}
				resp = get(t, url, map[string]string{"If-None-Match": etag})
				readAll(t, resp)
				if resp.StatusCode != http.StatusNotModified {
					t.Fatalf("tile revalidation: %s", resp.Status)
				}
			}
		}
	}
	// Out-of-range coordinates are 404; non-numeric ones 400; tile
	// requests against a non-pyramid artifact 400.
	for _, path := range []string{"/0/2/0", "/0/0/-1", "/1/1/0", "/2/0/0", "/-1/0/0"} {
		resp := get(t, base+path, nil)
		readAll(t, resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("tile %s: %s, want 404", path, resp.Status)
		}
	}
	resp := get(t, base+"/a/0/0", nil)
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-numeric tile coordinate: %s, want 400", resp.Status)
	}
	proj := artifactNamed(t, srv.URL, id, "projection")
	resp = get(t, srv.URL+"/jobs/"+id+"/artifacts/"+proj.Name+"/0/0/0", nil)
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tile request on non-pyramid artifact: %s, want 400", resp.Status)
	}
}

func TestHotTierEvictionUnderBytePressure(t *testing.T) {
	store, err := diskstore.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A 1-byte hot tier: nothing fits, so every read after the strict
	// budget enforcement is a miss that re-reads and re-verifies disk.
	s := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1, Store: store, HotBytes: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	id := runServeJob(t, s, srv.URL)
	m := artifactNamed(t, srv.URL, id, "projection")
	url := srv.URL + "/jobs/" + id + "/artifacts/" + m.Name

	if ev := metricValue(t, srv.URL, "sim_artifact_cache_evictions_total"); ev == 0 {
		t.Fatal("no evictions under a 1-byte budget")
	}
	if hot := metricValue(t, srv.URL, "sim_hot_tier_bytes"); hot > 1 {
		t.Fatalf("hot tier holds %d bytes over its 1-byte budget", hot)
	}
	reads0 := metricValue(t, srv.URL, "sim_artifact_disk_reads_total")
	first := readAll(t, get(t, url, nil))
	second := readAll(t, get(t, url, nil))
	if string(first) != string(second) || len(first) != m.Size {
		t.Fatalf("cold re-reads disagree: %d vs %d bytes", len(first), len(second))
	}
	reads1 := metricValue(t, srv.URL, "sim_artifact_disk_reads_total")
	if reads1 != reads0+2 {
		t.Fatalf("expected 2 cold disk reads, counter moved %d -> %d", reads0, reads1)
	}
	if mi := metricValue(t, srv.URL, "sim_artifact_cache_misses_total"); mi < 2 {
		t.Fatalf("miss counter %d, want >= 2", mi)
	}
}

func TestWarmHotTierServesFromMemory(t *testing.T) {
	store, err := diskstore.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1, Store: store})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	id := runServeJob(t, s, srv.URL)
	m := artifactNamed(t, srv.URL, id, "projection")
	url := srv.URL + "/jobs/" + id + "/artifacts/" + m.Name

	readAll(t, get(t, url, nil)) // ensure resident
	reads0 := metricValue(t, srv.URL, "sim_artifact_disk_reads_total")
	hits0 := metricValue(t, srv.URL, "sim_artifact_cache_hits_total")
	for i := 0; i < 5; i++ {
		readAll(t, get(t, url, nil))
	}
	if r := metricValue(t, srv.URL, "sim_artifact_disk_reads_total"); r != reads0 {
		t.Fatalf("warm reads touched disk: %d -> %d", reads0, r)
	}
	if h := metricValue(t, srv.URL, "sim_artifact_cache_hits_total"); h != hits0+5 {
		t.Fatalf("hit counter %d -> %d, want +5", hits0, h)
	}
}
