package sim

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkSimThroughput measures end-to-end job throughput of the
// service — build ICs, evolve, hash, cache — at 1/2/4 concurrent slots
// over the machine's full worker budget. Each job is a distinct sedov
// configuration (a unique e0 knob) so nothing short-circuits through the
// cache; jobs/sec is the headline metric tracked in BENCH_sim.json.
// Run with:
//
//	make bench-sim
func BenchmarkSimThroughput(b *testing.B) {
	for _, slots := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("slots=%d", slots), func(b *testing.B) {
			s := NewScheduler(Config{
				MaxConcurrent: slots,
				TotalWorkers:  runtime.NumCPU(),
				CacheSize:     b.N + 1,
				QueueDepth:    b.N + 1,
			})
			defer s.Close()
			b.ResetTimer()
			jobs := make([]*Job, b.N)
			for i := 0; i < b.N; i++ {
				j, err := s.Submit(Request{
					Problem: "sedov", RootN: 8, MaxLevel: Int(1), Steps: 2,
					Knobs: map[string]float64{"e0": 10 + float64(i)*1e-3},
				})
				if err != nil {
					b.Fatal(err)
				}
				jobs[i] = j
			}
			for _, j := range jobs {
				if _, err := j.Wait(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if st := s.Stats(); st.Executed != int64(b.N) {
				b.Fatalf("cache interfered: %d executions for %d jobs", st.Executed, b.N)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkSimCacheHit isolates the cache path: the steady-state cost of
// answering a duplicate submission without evolving anything.
func BenchmarkSimCacheHit(b *testing.B) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: runtime.NumCPU()})
	defer s.Close()
	req := Request{Problem: "sedov", RootN: 8, MaxLevel: Int(1), Steps: 2}
	j, err := s.Submit(req)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dup, err := s.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dup.Result(); err != nil {
			b.Fatal(err)
		}
	}
}
