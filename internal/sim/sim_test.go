package sim

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/problems"
)

// smallReq is a fast deterministic job for scheduler tests.
func smallReq() Request {
	return Request{Problem: "sedov", RootN: 8, MaxLevel: Int(1), Steps: 2, Workers: 2}
}

// directHash runs the same configuration through core.New directly — the
// reference answer a service job must reproduce bitwise.
func directHash(t *testing.T, req Request, slotWorkers int) string {
	t.Helper()
	r, err := resolve(req, slotWorkers, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := core.New(r.problem, func(o *problems.Opts) { *o = r.opts })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sm.RunContext(context.Background(), r.steps, r.maxTime, nil); err != nil {
		t.Fatal(err)
	}
	return sm.H.ChecksumHex()
}

// TestSchedulerDedupeDeterminism is the concurrency acceptance test: N
// identical jobs submitted from racing goroutines must coalesce onto one
// execution and all return the hash of a direct core.New run. Run under
// -race in CI.
func TestSchedulerDedupeDeterminism(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 4, TotalWorkers: 4})
	defer s.Close()

	const n = 8
	req := smallReq()
	var wg sync.WaitGroup
	jobs := make([]*Job, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jobs[i], errs[i] = s.Submit(req)
		}(i)
	}
	wg.Wait()

	want := directHash(t, req, s.SlotWorkers())
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		res, err := jobs[i].Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if res.Hash != want {
			t.Fatalf("job %d hash %s, direct run %s", i, res.Hash, want)
		}
		if jobs[i].ID != jobs[0].ID {
			t.Fatalf("job %d got distinct ID %s vs %s", i, jobs[i].ID, jobs[0].ID)
		}
	}
	st := s.Stats()
	if st.Executed != 1 {
		t.Fatalf("%d executions for %d identical submissions, want exactly 1", st.Executed, n)
	}
	if st.Submitted != n {
		t.Fatalf("submitted %d, want %d", st.Submitted, n)
	}
	if st.Coalesced+st.CacheHits != n-1 {
		t.Fatalf("coalesced %d + cache hits %d, want %d", st.Coalesced, st.CacheHits, n-1)
	}

	// A fresh submission after completion is a pure cache hit.
	before := s.Stats().CacheHits
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := j.Result(); err != nil || res.Hash != want {
		t.Fatalf("cached result: %v %v", res, err)
	}
	if got := s.Stats(); got.CacheHits != before+1 || got.Executed != 1 {
		t.Fatalf("cache hit not counted: %+v", got)
	}
}

// TestDistinctKnobsDistinctJobs: changing any physics knob must produce a
// different job identity (and, for a real knob, a different answer).
func TestDistinctKnobsDistinctJobs(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 2, TotalWorkers: 2})
	defer s.Close()
	a, err := s.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	req2 := smallReq()
	req2.Knobs = map[string]float64{"e0": 50}
	b, err := s.Submit(req2)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Fatal("different knobs coalesced onto one job")
	}
	ra, err := a.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ra.Hash == rb.Hash {
		t.Fatal("e0=10 and e0=50 produced the same state hash")
	}
	if st := s.Stats(); st.Executed != 2 {
		t.Fatalf("executed %d, want 2", st.Executed)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1})
	defer s.Close()
	cases := []Request{
		{Problem: "nosuch", Steps: 1},
		{Problem: "sedov", Steps: 1, Knobs: map[string]float64{"eo": 1}}, // misspelled knob
		{Problem: "sod", Steps: 1, Solver: "weno"},
		{Problem: "sedov", Steps: MaxSteps + 1},
		{Problem: "sedov", Steps: 1, RootN: 2 * MaxRootN}, // would OOM a slot
		{Problem: "sedov", Steps: 1, RootN: 12},           // not a power of two
		{Problem: "sedov", Steps: 1, MaxLevel: Int(MaxMaxLevel + 1)},
		{Problem: "sedov", Steps: 1, Workers: 1 << 30}, // exceeds the service worker budget
	}
	for i, req := range cases {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("case %d (%+v): want submit-time error", i, req)
		}
	}
	if st := s.Stats(); st.Submitted != 0 {
		t.Fatalf("rejected submissions counted: %+v", st)
	}
}

func TestWatchStreamsEveryStep(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 2})
	defer s.Close()
	req := smallReq()
	req.Steps = 3
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	var got []Progress
	for p := range j.Watch() {
		got = append(got, p)
	}
	if len(got) != 3 {
		t.Fatalf("watched %d progress updates, want 3: %+v", len(got), got)
	}
	for i, p := range got {
		if p.Step != i || p.Dt <= 0 {
			t.Fatalf("bad progress %d: %+v", i, p)
		}
	}
	if _, err := j.Result(); err != nil {
		t.Fatal(err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 2})
	defer s.Close()
	req := smallReq()
	req.Steps = 10000 // far more than we let it take
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Watch() // wait until it is demonstrably evolving
	if !s.Cancel(j.ID) {
		t.Fatal("cancel of a running job reported no live job")
	}
	<-j.Done()
	if st := j.State(); st != Cancelled {
		t.Fatalf("state %v after cancel, want cancelled", st)
	}
	if _, err := j.Result(); err == nil {
		t.Fatal("cancelled job returned a result")
	}
	// The configuration can be resubmitted and runs fresh.
	req.Steps = 2
	j2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 2})
	defer s.Close()
	long := smallReq()
	long.Steps = 10000
	running, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	<-running.Watch() // hold the only slot
	queued, err := s.Submit(Request{Problem: "khi", RootN: 8, MaxLevel: Int(1), Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(queued.ID) {
		t.Fatal("cancel of queued job failed")
	}
	<-queued.Done()
	if st := queued.State(); st != Cancelled {
		t.Fatalf("queued job state %v, want cancelled", st)
	}
	s.Cancel(running.ID)
}

func TestMaxTimeBound(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 2})
	defer s.Close()
	req := smallReq()
	req.Steps = 10000
	req.MaxTime = 1e-4 // a couple of root steps at most
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps >= 100 || res.Time < req.MaxTime {
		t.Fatalf("MaxTime bound not honored: %d steps to t=%g", res.Steps, res.Time)
	}
}

// TestMaxLevelZeroIsExplicit: maxlevel 0 ("no refinement") is a real
// configuration, distinct from leaving the field unset.
func TestMaxLevelZeroIsExplicit(t *testing.T) {
	def, err := resolve(Request{Problem: "sedov", Steps: 1}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := resolve(Request{Problem: "sedov", Steps: 1, MaxLevel: Int(0)}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := problems.Get("sedov")
	if def.opts.MaxLevel != spec.Defaults.MaxLevel {
		t.Fatalf("unset maxlevel resolved to %d, want spec default %d", def.opts.MaxLevel, spec.Defaults.MaxLevel)
	}
	if zero.opts.MaxLevel != 0 {
		t.Fatalf("explicit maxlevel 0 resolved to %d", zero.opts.MaxLevel)
	}
	if def.key() == zero.key() {
		t.Fatal("explicit 0 and unset maxlevel share a job identity")
	}
}

func TestMerge(t *testing.T) {
	chem := false
	base := Request{Problem: "sod", RootN: 16, Steps: 4, Knobs: map[string]float64{"a": 1, "b": 2}}
	over := Request{Solver: "fd", Knobs: map[string]float64{"b": 3}, Chemistry: &chem}
	got := Merge(base, over)
	if got.Problem != "sod" || got.RootN != 16 || got.Steps != 4 || got.Solver != "fd" {
		t.Fatalf("merge lost fields: %+v", got)
	}
	if got.Knobs["a"] != 1 || got.Knobs["b"] != 3 {
		t.Fatalf("knob merge wrong: %+v", got.Knobs)
	}
	if base.Knobs["b"] != 2 {
		t.Fatal("Merge mutated base knobs")
	}
	if got.Chemistry == nil || *got.Chemistry {
		t.Fatal("chemistry override lost")
	}
}

func TestKeyCanonicalization(t *testing.T) {
	a, err := resolve(Request{Problem: "sedov", Steps: 2, Knobs: map[string]float64{"e0": 10}}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The spec default e0=10 spelled explicitly is the same physics.
	b, err := resolve(Request{Problem: "sedov", Steps: 2}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.key() != b.key() {
		t.Fatalf("explicit default knob changed the key: %s vs %s", a.key(), b.key())
	}
	// A different worker budget is a different bitwise identity.
	c, err := resolve(Request{Problem: "sedov", Steps: 2}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.key() == a.key() {
		t.Fatal("worker budget not part of the key")
	}
	// Pinned workers bypass the slot share.
	d, err := resolve(Request{Problem: "sedov", Steps: 2, Workers: 2}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.key() != a.key() {
		t.Fatal("pinned workers should match the equal slot share")
	}
}

func TestCacheEviction(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 1, CacheSize: 2})
	defer s.Close()
	var last *Job
	for _, e0 := range []float64{10, 20, 30, 40} {
		j, err := s.Submit(Request{Problem: "sedov", RootN: 8, MaxLevel: Int(0), Steps: 1,
			Knobs: map[string]float64{"e0": e0}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		last = j
	}
	if got := s.Stats().Cached; got > 2 {
		t.Fatalf("cache retained %d terminal jobs, cap 2", got)
	}
	if _, ok := s.Get(last.ID); !ok {
		t.Fatal("most recent job evicted")
	}
}

// TestEvictionPrefersFailures: cancelled/failed records must be evicted
// before completed results — a failure burst must not flush the cache.
func TestEvictionPrefersFailures(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 2, CacheSize: 1})
	defer s.Close()
	done, err := s.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := done.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	long := smallReq()
	long.Steps = 10000
	running, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	<-running.Watch() // occupy the only slot
	// Two cancelled records, both younger than the Done result.
	for _, e0 := range []float64{20, 30} {
		q, err := s.Submit(Request{Problem: "sedov", RootN: 8, MaxLevel: Int(1), Steps: 2,
			Knobs: map[string]float64{"e0": e0}})
		if err != nil {
			t.Fatal(err)
		}
		s.Cancel(q.ID)
		<-q.Done()
	}
	if _, ok := s.Get(done.ID); !ok {
		t.Fatal("cancelled records evicted the completed result")
	}
	if got := s.Stats().Cached; got != 1 {
		t.Fatalf("cached gauge %d, want 1 (Done results only)", got)
	}
	s.Cancel(running.ID)
}
