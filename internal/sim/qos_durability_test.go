package sim_test

// Cost-model durability: estimates learned before a restart must
// survive it, because the model state is persisted in the Store
// alongside the results that trained it. Lives in package sim_test so
// it can wire the real disk store under the scheduler.

import (
	"context"
	"testing"

	"repro/internal/sim"
	"repro/internal/sim/diskstore"
)

// TestCostModelSurvivesRestart: a job trains the model under one
// scheduler; a fresh scheduler over the same data root estimates from
// that history before running anything — and recovery backfill does
// not double-count the replayed result.
func TestCostModelSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	req := sim.Request{Problem: "sedov", RootN: 8, MaxLevel: sim.Int(1), Steps: 3, Workers: 1}

	store1, err := diskstore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1, Store: store1})
	j, err := s1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	want, err := s1.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}
	if want.Samples != 1 || want.Seconds <= 0 {
		t.Fatalf("pre-restart estimate: %+v", want)
	}
	state := s1.CostModelState()
	s1.Close() // closes store1

	store2, err := diskstore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1, Store: store2})
	defer s2.Close()
	if n := s2.CostModelSamples(); n != 1 {
		t.Fatalf("restarted scheduler holds %d samples, want 1 (not doubled by recovery backfill)", n)
	}
	got, err := s2.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("estimate drifted across restart: %+v vs %+v", got, want)
	}
	// The serialized state is identical too — recovery backfill of the
	// already-observed job must be a no-op, not a rewrite.
	if string(s2.CostModelState()) != string(state) {
		t.Fatalf("model state drifted across restart:\n%s\nvs\n%s", s2.CostModelState(), state)
	}

	// Peer-merge path: a third model built only from the broadcast
	// state answers identically.
	s3 := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1})
	defer s3.Close()
	if err := s3.MergeCostModel(state); err != nil {
		t.Fatal(err)
	}
	merged, err := s3.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}
	if merged != want {
		t.Fatalf("merged-model estimate %+v, want %+v", merged, want)
	}
}
