package sim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/analysis"
)

// Store is the scheduler's pluggable persistence layer: job records (a
// small manifest written as the WAL of state transitions), terminal
// results, derived-output artifacts, and restart checkpoints. The
// scheduler drives every implementation identically; what differs is
// what survives a process restart:
//
//   - NewMemStore (the default) persists nothing — the scheduler's own
//     in-memory job table is the only state, which is exactly the
//     pre-durability behavior extracted behind this interface.
//   - diskstore.New keeps one directory per job under a data root
//     (atomic rename writes, manifest.json as the WAL) so a restarted
//     scheduler recovers completed results as cache hits and resumes
//     interrupted jobs from their latest checkpoint.
//
// Implementations must be safe for concurrent use; per-job methods are
// only ever called sequentially for a given ID by the owning slot, but
// different jobs write concurrently.
type Store interface {
	// Persistent reports whether the store survives a process restart.
	// The scheduler skips checkpoint cadence entirely on non-persistent
	// stores (a checkpoint nobody can recover is pure overhead).
	Persistent() bool
	// SaveManifest records a job-state transition. Called on every
	// lifecycle edge (queued, running, checkpoint written, interrupted,
	// done, failed, cancelled); the latest write wins.
	SaveManifest(m JobManifest) error
	// SaveResult persists a completed job's terminal result.
	SaveResult(id string, res *Result) error
	// SaveArtifact persists one derived-output artifact in production
	// order; saving a name again replaces its payload. hash is the
	// payload's content hash (HashBytes): persistent stores write the
	// bytes once per hash in a shared blob tier and record the hash in
	// the per-job index.
	SaveArtifact(id string, a analysis.Artifact, hash string) error
	// DeleteArtifacts forgets named artifacts of a job — the mirror of
	// ArtifactStore's oldest-first eviction. Blob payloads are reclaimed
	// when their last referencing index row goes.
	DeleteArtifacts(id string, names []string) error
	// LoadBlob reads one content-addressed payload back by its hash —
	// the hot tier's miss path. Non-persistent stores never see this
	// call (their resident bytes are the only copy).
	LoadBlob(hash string) ([]byte, error)
	// SaveCheckpoint persists checkpoint bytes for the job at the given
	// root step. Implementations retain at least the latest checkpoint;
	// older ones may be pruned.
	SaveCheckpoint(id string, step int, data []byte) error
	// LatestCheckpoint returns the most recent checkpoint of a job, or
	// nil when none exists.
	LatestCheckpoint(id string) (*Checkpoint, error)
	// DeleteCheckpoints drops a job's checkpoints — called once the job
	// reaches a terminal state, when they can never be resumed from.
	DeleteCheckpoints(id string) error
	// DeleteJob forgets everything about a job (cache eviction, or a
	// failed configuration being re-run fresh).
	DeleteJob(id string) error
	// Recover enumerates every persisted job for scheduler startup:
	// terminal jobs rehydrate the cache, interrupted ones are re-queued
	// to resume from their latest checkpoint.
	Recover() ([]RecoveredJob, error)
	// SaveCostModel persists the scheduler's serialized cost-model state
	// (an opaque blob; the latest write wins), so cost estimates survive
	// restarts alongside the results that trained them.
	SaveCostModel(state []byte) error
	// LoadCostModel returns the persisted cost-model state, or nil when
	// none was saved (or the store is non-persistent).
	LoadCostModel() ([]byte, error)
	// Stats reports the store's size gauges for /metrics.
	Stats() StoreStats
	// Close releases the store. The scheduler calls it from Close/Drain.
	Close() error
}

// JobManifest is the persisted record of one job — the small JSON
// document a disk store rewrites (atomically) on every state
// transition, and everything recovery needs to reconstruct the job's
// identity and provenance. Request plus Workers pin the job's canonical
// configuration: recovery re-resolves the request with Workers forced,
// so a resumed run keeps the exact worker budget (and therefore the
// exact bitwise answer) of the interrupted one.
type JobManifest struct {
	ID      string  `json:"id"`
	Request Request `json:"request"`
	// Workers is the effective par budget the job ran with (the slot
	// share at original submit time, or the request's pinned value).
	Workers int `json:"workers"`
	// State is the job's lifecycle phase: queued, running, interrupted,
	// done, failed or cancelled. "interrupted" marks a run the process
	// lost (kill, drain) that recovery should resume; the in-process
	// states never contain it.
	State string  `json:"state"`
	Error string  `json:"error,omitempty"`
	Steps int     `json:"steps_done"`
	Time  float64 `json:"time"` // code time reached
	// Checkpoint provenance: how many checkpoints the run has written,
	// the root step of the latest one, and when it was written.
	Checkpoints    int       `json:"checkpoints,omitempty"`
	CheckpointStep int       `json:"checkpoint_step,omitempty"`
	CheckpointAt   time.Time `json:"checkpoint_at,omitzero"`
	// ResumedFrom names the checkpoint this run resumed from, when it
	// did ("checkpoint step 12").
	ResumedFrom string `json:"resumed_from,omitempty"`
	// Speculative marks a run the speculation planner started ahead of
	// any submission. Recovery must never resurrect a non-terminal
	// speculative record as demand work — it is re-offered to the
	// planner instead (or deleted when speculation is off).
	Speculative bool      `json:"speculative,omitempty"`
	SubmittedAt time.Time `json:"submitted_at,omitzero"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
}

// Manifest state strings. In-memory State values map onto them via
// State.String(); ManifestInterrupted exists only in the store.
const (
	// ManifestInterrupted marks a job whose process died (or drained)
	// mid-run: recovery re-queues it to resume from its latest
	// checkpoint.
	ManifestInterrupted = "interrupted"
)

// Checkpoint is one persisted restart point: the snapshot-format bytes
// of the hierarchy after root step Step.
type Checkpoint struct {
	// Step is the 0-based global root step the checkpoint was taken
	// after; a resume continues at Step+1.
	Step int
	// Data is the snapshot.Encode payload.
	Data []byte
	// At is when the checkpoint was written.
	At time.Time
}

// RecoveredJob is one persisted job surfaced by Store.Recover.
type RecoveredJob struct {
	Manifest JobManifest
	// Result is the terminal result of a done job, nil otherwise.
	Result *Result
	// Artifacts are the retained derived-output products in production
	// order — metadata only (name, kind, size, content hash). The
	// payload bytes stay in the store's blob tier until a reader asks
	// for them, so recovery of a large artifact history is index reads,
	// not payload reads.
	Artifacts []ArtifactMeta
}

// StoreStats are the store's size gauges, exported on /metrics.
type StoreStats struct {
	// CheckpointBytes and CheckpointCount describe the restart
	// checkpoints currently on disk (0 for memory stores).
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	CheckpointCount int   `json:"checkpoint_count"`
	// ArtifactBytes and ArtifactCount describe the persisted artifact
	// payloads as indexed per job — logical bytes, before cross-job
	// dedupe (0 for memory stores — the in-memory artifact bytes are
	// reported per job instead).
	ArtifactBytes int64 `json:"artifact_bytes"`
	ArtifactCount int   `json:"artifact_count"`
	// BlobBytes and BlobCount describe the physical content-addressed
	// blob tier: each distinct payload once, however many index rows
	// reference it.
	BlobBytes int64 `json:"blob_bytes"`
	BlobCount int   `json:"blob_count"`
	// DedupeBytes totals the payload bytes SaveArtifact did not write
	// again because the blob already existed (process-lifetime counter).
	DedupeBytes int64 `json:"dedupe_bytes"`
}

// ErrStore wraps persistence failures so the HTTP layer can answer 500
// (a service defect) instead of 400 (a bad request).
var ErrStore = errors.New("sim: store error")

// memStore is the non-persistent Store: every method is a no-op,
// because the scheduler's own in-memory job table already is the
// "memory store" — this is the pre-durability behavior, extracted
// behind the interface.
type memStore struct{}

// NewMemStore returns the in-memory Store the scheduler defaults to:
// nothing survives a restart, checkpoints are disabled, and recovery
// finds nothing.
func NewMemStore() Store { return memStore{} }

// Persistent reports false: nothing outlives the process.
func (memStore) Persistent() bool { return false }

// SaveManifest is a no-op.
func (memStore) SaveManifest(JobManifest) error { return nil }

// SaveResult is a no-op.
func (memStore) SaveResult(string, *Result) error { return nil }

// SaveArtifact is a no-op.
func (memStore) SaveArtifact(string, analysis.Artifact, string) error { return nil }

// DeleteArtifacts is a no-op.
func (memStore) DeleteArtifacts(string, []string) error { return nil }

// LoadBlob fails: a memory store has no disk tier to read back from
// (the blob cache pins every referenced payload instead).
func (memStore) LoadBlob(hash string) ([]byte, error) {
	return nil, fmt.Errorf("sim: memory store holds no blob %s", hash)
}

// SaveCheckpoint is a no-op; the scheduler never checkpoints against a
// non-persistent store.
func (memStore) SaveCheckpoint(string, int, []byte) error { return nil }

// LatestCheckpoint reports no checkpoint.
func (memStore) LatestCheckpoint(string) (*Checkpoint, error) { return nil, nil }

// DeleteCheckpoints is a no-op.
func (memStore) DeleteCheckpoints(string) error { return nil }

// DeleteJob is a no-op.
func (memStore) DeleteJob(string) error { return nil }

// Recover finds nothing.
func (memStore) Recover() ([]RecoveredJob, error) { return nil, nil }

// SaveCostModel is a no-op; the in-memory cost model is authoritative
// for the process lifetime.
func (memStore) SaveCostModel([]byte) error { return nil }

// LoadCostModel reports no persisted state.
func (memStore) LoadCostModel() ([]byte, error) { return nil, nil }

// Stats reports zero gauges.
func (memStore) Stats() StoreStats { return StoreStats{} }

// Close is a no-op.
func (memStore) Close() error { return nil }
