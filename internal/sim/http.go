package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/problems"
)

// Handler exposes the scheduler as an HTTP/JSON API (`enzogo serve`):
//
//	POST   /jobs             submit a Request; identical configs coalesce
//	GET    /jobs             list retained jobs in (submit time, id) order
//	                         (?status= filter, ?limit=/?offset= pagination)
//	GET    /jobs/{id}        one job's status
//	GET    /jobs/{id}/result the completed Result (409 until done)
//	GET    /jobs/{id}/events per-step progress as streamed NDJSON
//	GET    /jobs/{id}/artifacts         derived-output index (JSON)
//	GET    /jobs/{id}/artifacts/events  artifact-ready stream (NDJSON)
//	GET    /jobs/{id}/artifacts/{name}  one artifact body (PGM/PNG/JSON/…)
//	GET    /jobs/{id}/artifacts/{name}/{z}/{x}/{y}  one pyramid tile (PGM)
//	DELETE /jobs/{id}        cancel
//	POST   /sweeps           announce a sweep's rows for speculative pre-warming
//	GET    /tenants          per-tenant historical spend (demand + speculative)
//	GET    /problems         the registered problem catalog
//	GET    /healthz          liveness + uptime
//	GET    /metrics          scheduler counters, Prometheus text format
//
// Artifact bodies are served read-optimized: a strong ETag (the
// payload's content hash) with If-None-Match short-circuiting to 304
// before any payload fetch, HEAD answered from metadata alone, byte
// Range requests (206/416) via http.ServeContent, and Cache-Control
// that marks terminal jobs' artifacts immutable — so a CDN or a million
// polling readers cost the origin almost nothing.
func (s *Scheduler) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/artifacts", s.handleArtifactIndex)
	mux.HandleFunc("GET /jobs/{id}/artifacts/events", s.handleArtifactEvents)
	mux.HandleFunc("GET /jobs/{id}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("GET /jobs/{id}/artifacts/{name}/{z}/{x}/{y}", s.handleArtifactTile)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /sweeps", s.handleSweep)
	mux.HandleFunc("GET /tenants", s.handleTenants)
	mux.HandleFunc("GET /problems", handleProblems)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// SubmitResponse is the POST /jobs payload: the job's status plus how
// the submission was satisfied ("scheduled", "coalesced" onto a live
// duplicate, or answered from "cache").
type SubmitResponse struct {
	Status
	Disposition string `json:"disposition"`
}

// maxRequestBody bounds a POST /jobs payload; requests are rejected
// before anything oversized is buffered into memory.
const maxRequestBody = 1 << 20

func (s *Scheduler) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	j, disp, err := s.SubmitWithDisposition(req)
	switch {
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err) // backpressure: retry later
		return
	case errors.Is(err, ErrStore):
		writeError(w, http.StatusInternalServerError, err) // durability defect, not a bad request
		return
	case err != nil:
		var adm *AdmissionError
		if errors.As(err, &adm) {
			// Admission rejection carries the estimate that tripped the
			// bound, so the client can see how far over it was (and
			// whether shrinking the request would admit it).
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error":           adm.Error(),
				"estimate":        adm.Estimate,
				"max_job_seconds": adm.Limit,
			})
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if disp == CacheHit {
		code = http.StatusOK // the result already exists
	}
	writeJSON(w, code, SubmitResponse{Status: j.Status(), Disposition: string(disp)})
}

// handleList serves the retained job table with optional filtering and
// pagination for large (or freshly restored) tables: ?status= keeps only
// jobs in that lifecycle state (queued|running|done|failed|cancelled),
// ?offset= skips that many matching rows, and ?limit= caps the rows
// returned (0 = no cap). The response stays a bare JSON array;
// X-Total-Count carries the matching row count before pagination.
//
// Rows are sorted by (submit time, id) — a documented, stable key — so
// ?offset= pages cannot shuffle as jobs change state between requests:
// the raw retention order moves a job to the back when a failed
// configuration is resubmitted, which would make offset-based pages skip
// or duplicate rows mid-walk.
func (s *Scheduler) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	wantState := ""
	if v := q.Get("status"); v != "" {
		ok := false
		for st := Queued; st <= Cancelled; st++ {
			if st.String() == v {
				ok = true
				break
			}
		}
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown status %q (want queued|running|done|failed|cancelled)", v))
			return
		}
		wantState = v
	}
	limit, err := queryInt(q.Get("limit"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit: %w", err))
		return
	}
	offset, err := queryInt(q.Get("offset"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad offset: %w", err))
		return
	}

	jobs := s.Jobs()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		st := j.Status()
		if wantState != "" && st.State != wantState {
			continue
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].SubmittedAt.Equal(out[k].SubmittedAt) {
			return out[i].SubmittedAt.Before(out[k].SubmittedAt)
		}
		return out[i].ID < out[k].ID
	})
	total := len(out)
	if offset > len(out) {
		offset = len(out)
	}
	out = out[offset:]
	if limit > 0 && limit < len(out) {
		out = out[:limit]
	}
	w.Header().Set("X-Total-Count", strconv.Itoa(total))
	// Queue-pressure headers so a poller sees the dispatch backlog
	// without a second request: total depth, and the per-tenant
	// breakdown as sorted tenant=count pairs.
	depth, perTenant := s.QueueStats()
	w.Header().Set("X-Queue-Depth", strconv.Itoa(depth))
	if len(perTenant) > 0 {
		names := make([]string, 0, len(perTenant))
		for name := range perTenant {
			names = append(names, name)
		}
		sort.Strings(names)
		pairs := make([]string, len(names))
		for i, name := range names {
			pairs[i] = name + "=" + strconv.Itoa(perTenant[name])
		}
		w.Header().Set("X-Tenant-Queued", strings.Join(pairs, ","))
	}
	writeJSON(w, http.StatusOK, out)
}

// queryInt parses a non-negative integer query parameter, empty = def.
func queryInt(v string, def int) (int, error) {
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("%d must be >= 0", n)
	}
	return n, nil
}

func (s *Scheduler) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return nil, false
	}
	return j, true
}

func (s *Scheduler) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Scheduler) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	res, err := j.Result()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleEvents streams the job's progress as newline-delimited JSON, one
// object per completed root step, ending with the job's final status.
func (s *Scheduler) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	enc := json.NewEncoder(w)
	watch := j.Watch()
	defer j.Unwatch(watch) // a disconnecting client must not leak its subscription
	for {
		select {
		case p, open := <-watch:
			if !open {
				enc.Encode(j.Status())
				flush()
				return
			}
			enc.Encode(p)
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleArtifactIndex lists the job's retained derived-output products.
func (s *Scheduler) handleArtifactIndex(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Artifacts().Index())
	}
}

// etagMatch reports whether an If-None-Match header matches a strong
// ETag: "*", or any member of its comma-separated list (weak-comparison,
// so W/ prefixes are ignored — correct for If-None-Match per RFC 9110).
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimPrefix(strings.TrimSpace(part), "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// artifactCacheControl is the Cache-Control policy of artifact bodies:
// a terminal job's artifacts can never change again (and their ETag is
// the content hash), so clients and CDNs may cache them forever; while
// the job still runs a resume could replace a name, so clients must
// revalidate — which the ETag makes a free 304.
func artifactCacheControl(j *Job) string {
	if j.State().terminal() {
		return "public, max-age=31536000, immutable"
	}
	return "no-cache"
}

// countingWriter tallies body bytes for the sim_artifact_bytes_served
// counter (headers excluded; 304/HEAD responses count zero).
type countingWriter struct {
	http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.n += int64(n)
	return n, err
}

// openArtifact is the shared front half of the artifact body handlers:
// resolve the job and metadata row, set the caching headers, and answer
// If-None-Match with 304 — all before the payload is touched, so
// revalidation never costs a blob fetch. It reports handled=true when
// the response was already written.
func (s *Scheduler) openArtifact(w http.ResponseWriter, r *http.Request) (j *Job, m ArtifactMeta, etag string, handled bool) {
	j, ok := s.job(w, r)
	if !ok {
		return nil, ArtifactMeta{}, "", true
	}
	name := r.PathValue("name")
	m, ok = j.Artifacts().Stat(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %s has no artifact %q (it may not be ready, or was evicted)", j.ID, name))
		return nil, ArtifactMeta{}, "", true
	}
	etag = `"` + m.Hash + `"`
	if z := r.PathValue("z"); z != "" {
		// Tiles carry their coordinates in the ETag so each tile
		// revalidates independently.
		etag = `"` + m.Hash + "-" + z + "." + r.PathValue("x") + "." + r.PathValue("y") + `"`
	}
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", artifactCacheControl(j))
	h.Set("Accept-Ranges", "bytes")
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		s.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return nil, ArtifactMeta{}, "", true
	}
	return j, m, etag, false
}

// handleArtifact serves one artifact body under its own content type, so
// a browser renders a PNG projection directly and `curl -O` saves a
// ready-to-open file. HEAD is answered from the metadata row alone;
// GET goes through the blob hot tier and honors byte ranges.
func (s *Scheduler) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j, m, _, handled := s.openArtifact(w, r)
	if handled {
		return
	}
	w.Header().Set("Content-Type", m.ContentType)
	if r.Method == http.MethodHead {
		w.Header().Set("Content-Length", strconv.Itoa(m.Size))
		w.WriteHeader(http.StatusOK)
		return
	}
	_, data, err := j.Artifacts().Open(m.Name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("artifact %q: %w", m.Name, err))
		return
	}
	cw := &countingWriter{ResponseWriter: w}
	http.ServeContent(cw, r, "", time.Time{}, bytes.NewReader(data))
	s.bytesServed.Add(cw.n)
}

// handleArtifactTile serves one tile of a pyramid artifact as a
// standalone PGM: /jobs/{id}/artifacts/{name}/{z}/{x}/{y}, z=0 the
// full-resolution level, x growing rightward and y downward. Out-of-
// range coordinates are 404 (a tile that does not exist), non-numeric
// ones 400, and tile requests against a non-pyramid artifact 400.
func (s *Scheduler) handleArtifactTile(w http.ResponseWriter, r *http.Request) {
	coords := [3]int{}
	for i, key := range []string{"z", "x", "y"} {
		v, err := strconv.Atoi(r.PathValue(key))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad tile coordinate %s=%q", key, r.PathValue(key)))
			return
		}
		coords[i] = v
	}
	j, m, _, handled := s.openArtifact(w, r)
	if handled {
		return
	}
	if m.Kind != string(analysis.KindPyramid) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("artifact %q is kind %q, not a tile pyramid", m.Name, m.Kind))
		return
	}
	_, data, err := j.Artifacts().Open(m.Name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("artifact %q: %w", m.Name, err))
		return
	}
	ts, err := analysis.ParseTileSet(data)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("artifact %q: %w", m.Name, err))
		return
	}
	tile, ok := ts.Tile(coords[0], coords[1], coords[2])
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("pyramid %q has no tile %d/%d/%d (%d levels)",
			m.Name, coords[0], coords[1], coords[2], ts.Levels))
		return
	}
	w.Header().Set("Content-Type", "image/x-portable-graymap")
	cw := &countingWriter{ResponseWriter: w}
	http.ServeContent(cw, r, "", time.Time{}, bytes.NewReader(tile))
	s.bytesServed.Add(cw.n)
}

// handleArtifactEvents streams artifact-ready metadata as
// newline-delimited JSON: one object per stored artifact (starting with
// a replay of those already present), closing once the job is terminal.
func (s *Scheduler) handleArtifactEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	flush() // commit the header even if no artifact ever arrives
	enc := json.NewEncoder(w)
	watch := j.Artifacts().Watch()
	defer j.Artifacts().Unwatch(watch)
	for {
		select {
		case m, open := <-watch:
			if !open {
				return
			}
			enc.Encode(m)
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Scheduler) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if !s.Cancel(j.ID) {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is already %s", j.ID, j.State()))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// SweepManifest is the POST /sweeps payload: the same shape as an
// enzobatch sweep file (a defaults block merged under every job row),
// announcing the full row list so the server can pre-warm the result
// cache during idle windows. Nothing is scheduled on the demand path.
type SweepManifest struct {
	// Name labels the sweep in responses and logs.
	Name string `json:"name,omitempty"`
	// Defaults is merged under every row (sim.Merge semantics).
	Defaults Request `json:"defaults,omitempty"`
	// Jobs are the sweep rows.
	Jobs []Request `json:"jobs"`
}

// handleSweep accepts a sweep manifest and returns the per-row triage
// (202: the rows were recorded for speculative pre-warming, or triaged
// with estimates when speculation is off).
func (s *Scheduler) handleSweep(w http.ResponseWriter, r *http.Request) {
	var m SweepManifest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad sweep body: %w", err))
		return
	}
	rows := make([]Request, len(m.Jobs))
	for i, job := range m.Jobs {
		rows[i] = Merge(m.Defaults, job)
	}
	resp, err := s.PrewarmSweep(m.Name, rows)
	switch {
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// handleTenants serves the per-tenant historical spend table: observed
// demand and speculative wall seconds, job counts, the configured
// fair-share weight, and the current backlog — the data -tenant-weights
// should be derived from.
func (s *Scheduler) handleTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.TenantSpends())
}

// ProblemInfo is one row of GET /problems.
type ProblemInfo struct {
	Name     string             `json:"name"`
	Summary  string             `json:"summary"`
	Knobs    map[string]string  `json:"knobs,omitempty"`
	Defaults map[string]float64 `json:"default_knobs,omitempty"`
	RootN    int                `json:"default_rootn"`
	MaxLevel int                `json:"default_maxlevel"`
}

func handleProblems(w http.ResponseWriter, r *http.Request) {
	specs := problems.Specs()
	out := make([]ProblemInfo, len(specs))
	for i, sp := range specs {
		out[i] = ProblemInfo{
			Name:     sp.Name,
			Summary:  sp.Summary,
			Knobs:    sp.Knobs,
			Defaults: sp.Defaults.Extra,
			RootN:    sp.Defaults.RootN,
			MaxLevel: sp.Defaults.MaxLevel,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Scheduler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	recovered, resumed, storeErr := s.RecoverState()
	bs := s.blobs.Stats()
	depth, perTenant := s.QueueStats()
	body := map[string]any{
		"ok":                true,
		"uptime_seconds":    s.Uptime().Seconds(),
		"slots":             s.cfg.MaxConcurrent,
		"slot_workers":      s.SlotWorkers(),
		"durable":           s.store.Persistent(),
		"jobs_recovered":    recovered,
		"jobs_resumed":      resumed,
		"blob_bytes":        s.store.Stats().BlobBytes,
		"hot_tier_bytes":    bs.HotBytes,
		"queue_depth":       depth,
		"tenants_queued":    perTenant,
		"costmodel_samples": s.CostModelSamples(),
		"max_job_seconds":   s.cfg.MaxJobSeconds,
	}
	// Speculative-execution gauges: whether the planner runs, its
	// capacity bounds, and the started/hits/preempted/wasted counters.
	sps := s.SpeculationStats()
	body["speculate"] = sps.Enabled
	if sps.Enabled {
		body["speculate_slots"] = sps.Slots
		body["speculate_budget_seconds"] = sps.BudgetSeconds
		body["speculative_pending"] = sps.Pending
		body["speculative_inflight"] = sps.Inflight
		body["speculative_started"] = sps.Started
		body["speculative_hits"] = sps.Hits
		body["speculative_preempted"] = sps.Preempted
		body["speculative_wasted_seconds"] = sps.WastedSeconds
	}
	if storeErr != nil {
		body["store_error"] = storeErr.Error()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Scheduler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# Scheduler counters (Prometheus text format).\n")
	fmt.Fprintf(w, "sim_jobs_submitted_total %d\n", st.Submitted)
	fmt.Fprintf(w, "sim_jobs_coalesced_total %d\n", st.Coalesced)
	fmt.Fprintf(w, "sim_jobs_cache_hits_total %d\n", st.CacheHits)
	fmt.Fprintf(w, "sim_jobs_executed_total %d\n", st.Executed)
	fmt.Fprintf(w, "sim_jobs_succeeded_total %d\n", st.Succeeded)
	fmt.Fprintf(w, "sim_jobs_failed_total %d\n", st.Failed)
	fmt.Fprintf(w, "sim_jobs_cancelled_total %d\n", st.Cancelled)
	fmt.Fprintf(w, "sim_jobs_queued %d\n", st.Queued)
	fmt.Fprintf(w, "sim_jobs_running %d\n", st.Running)
	fmt.Fprintf(w, "sim_jobs_cached %d\n", st.Cached)
	fmt.Fprintf(w, "sim_slots %d\n", s.cfg.MaxConcurrent)
	fmt.Fprintf(w, "sim_slot_workers %d\n", s.SlotWorkers())
	fmt.Fprintf(w, "sim_uptime_seconds %g\n", s.Uptime().Seconds())
	// Durable-store gauges: checkpoint/artifact footprint of the backing
	// store, cache evictions applied to it, and what startup recovery
	// rehydrated. A memory store reports zero byte gauges; the live
	// in-memory artifact bytes are summed across retained jobs either way.
	ss := s.store.Stats()
	var liveArtifactBytes int64
	for _, j := range s.Jobs() {
		_, b := j.Artifacts().Count()
		liveArtifactBytes += int64(b)
	}
	fmt.Fprintf(w, "sim_store_persistent %d\n", boolGauge(s.store.Persistent()))
	fmt.Fprintf(w, "sim_store_checkpoint_bytes %d\n", ss.CheckpointBytes)
	fmt.Fprintf(w, "sim_store_checkpoints %d\n", ss.CheckpointCount)
	fmt.Fprintf(w, "sim_store_artifact_bytes %d\n", ss.ArtifactBytes)
	fmt.Fprintf(w, "sim_artifact_bytes %d\n", liveArtifactBytes)
	fmt.Fprintf(w, "sim_checkpoints_written_total %d\n", st.Checkpoints)
	fmt.Fprintf(w, "sim_cache_evictions_total %d\n", st.CacheEvictions)
	fmt.Fprintf(w, "sim_jobs_recovered %d\n", st.Recovered)
	fmt.Fprintf(w, "sim_jobs_resumed %d\n", st.Resumed)
	// Read-path counters: the blob hot tier fronting artifact payloads,
	// conditional-request wins, and the content-addressing dedupe — the
	// gauges that say what serving a million readers actually costs.
	bs := s.blobs.Stats()
	fmt.Fprintf(w, "sim_artifact_cache_hits_total %d\n", bs.Hits)
	fmt.Fprintf(w, "sim_artifact_cache_misses_total %d\n", bs.Misses)
	fmt.Fprintf(w, "sim_artifact_cache_evictions_total %d\n", bs.Evictions)
	fmt.Fprintf(w, "sim_artifact_disk_reads_total %d\n", bs.DiskReads)
	fmt.Fprintf(w, "sim_artifact_bytes_served_total %d\n", s.bytesServed.Load())
	fmt.Fprintf(w, "sim_artifact_not_modified_total %d\n", s.notModified.Load())
	fmt.Fprintf(w, "sim_blob_dedupe_bytes_total %d\n", bs.DedupeBytes)
	fmt.Fprintf(w, "sim_store_dedupe_bytes_total %d\n", ss.DedupeBytes)
	fmt.Fprintf(w, "sim_store_blob_bytes %d\n", ss.BlobBytes)
	fmt.Fprintf(w, "sim_store_blobs %d\n", ss.BlobCount)
	fmt.Fprintf(w, "sim_hot_tier_bytes %d\n", bs.HotBytes)
	fmt.Fprintf(w, "sim_hot_tier_blobs %d\n", bs.HotCount)
	// QoS gauges: dispatch backlog (total and per tenant), admission
	// rejections, cost-model training volume, and the estimate-error
	// histogram — actual/predicted wall-seconds ratio of completed jobs
	// (1 = a perfect estimate).
	depth, perTenant := s.QueueStats()
	fmt.Fprintf(w, "sim_queue_depth %d\n", depth)
	tenants := make([]string, 0, len(perTenant))
	for name := range perTenant {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	for _, name := range tenants {
		fmt.Fprintf(w, "sim_tenant_queued{tenant=%q} %d\n", name, perTenant[name])
	}
	fmt.Fprintf(w, "sim_admission_rejected_total %d\n", st.AdmissionRejected)
	fmt.Fprintf(w, "sim_costmodel_samples %d\n", s.CostModelSamples())
	// Speculative-execution counters: work started in idle windows, the
	// cache hits it earned, preemptions for demand arrivals, and the
	// seconds that produced neither a result nor a checkpoint.
	sps := s.SpeculationStats()
	fmt.Fprintf(w, "sim_speculative_enabled %d\n", boolGauge(sps.Enabled))
	fmt.Fprintf(w, "sim_speculative_started_total %d\n", sps.Started)
	fmt.Fprintf(w, "sim_speculative_completed_total %d\n", sps.Completed)
	fmt.Fprintf(w, "sim_speculative_hits_total %d\n", sps.Hits)
	fmt.Fprintf(w, "sim_speculative_preempted_total %d\n", sps.Preempted)
	fmt.Fprintf(w, "sim_speculative_resumed_total %d\n", sps.Resumed)
	fmt.Fprintf(w, "sim_speculative_failed_total %d\n", sps.Failed)
	fmt.Fprintf(w, "sim_speculative_wasted_seconds_total %g\n", sps.WastedSeconds)
	fmt.Fprintf(w, "sim_speculative_pending %d\n", sps.Pending)
	fmt.Fprintf(w, "sim_speculative_inflight %d\n", sps.Inflight)
	// Per-tenant historical spend, demand and speculative classes
	// labelled separately — the series -tenant-weights derives from.
	for _, ts := range s.TenantSpends() {
		fmt.Fprintf(w, "sim_tenant_spend_seconds{tenant=%q,class=\"demand\"} %g\n", ts.Tenant, ts.DemandSeconds)
		fmt.Fprintf(w, "sim_tenant_spend_seconds{tenant=%q,class=\"speculative\"} %g\n", ts.Tenant, ts.SpeculativeSeconds)
	}
	buckets, count, sum := s.est.snapshot()
	cum := int64(0)
	for i, ub := range estimateBuckets {
		cum += buckets[i]
		fmt.Fprintf(w, "sim_estimate_error_ratio_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	fmt.Fprintf(w, "sim_estimate_error_ratio_bucket{le=\"+Inf\"} %d\n", count)
	fmt.Fprintf(w, "sim_estimate_error_ratio_sum %g\n", sum)
	fmt.Fprintf(w, "sim_estimate_error_ratio_count %d\n", count)
}

// boolGauge renders a bool as a 0/1 Prometheus gauge value.
func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
