package sim

// The speculative-execution suite. The planner-level tests drive the
// speculator synchronously (no workers) for exact determinism; the
// scheduler-level tests run real speculative workers and synchronize on
// the counters, never on dispatch timing. The one ordering test reuses
// the qos_test harness to prove speculation never perturbs demand
// dispatch.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer serves a scheduler's handler for the duration of the
// test.
func newTestServer(t *testing.T, s *Scheduler) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// postSweepRaw POSTs a sweep manifest and returns the HTTP response
// status code and body.
func postSweepRaw(t *testing.T, url string, manifest any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(manifest)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// postSweep POSTs a sweep manifest expecting 202 Accepted and decodes
// the triage response.
func postSweep(t *testing.T, url string, manifest any) SweepResponse {
	t.Helper()
	code, body := postSweepRaw(t, url, manifest)
	if code != http.StatusAccepted {
		t.Fatalf("POST /sweeps: status %d: %s", code, body)
	}
	var out SweepResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// postSweepStatus POSTs a sweep manifest and returns only the status
// code (for the rejection cases).
func postSweepStatus(t *testing.T, url string, manifest any) int {
	t.Helper()
	code, _ := postSweepRaw(t, url, manifest)
	return code
}

// getTenants fetches the per-tenant spend ledger.
func getTenants(t *testing.T, url string) []TenantSpend {
	t.Helper()
	resp, err := http.Get(url + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /tenants: %s", resp.Status)
	}
	var out []TenantSpend
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// getHealthz fetches the health document as a generic map.
func getHealthz(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: %s", resp.Status)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// getMetrics fetches the Prometheus text exposition.
func getMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// waitSpec polls the speculation counters until cond holds, failing the
// test after a generous deadline (speculative runs are real
// simulations; only their completion order is asserted, never their
// timing).
func waitSpec(t *testing.T, s *Scheduler, what string, cond func(SpeculationStats) bool) SpeculationStats {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var st SpeculationStats
	for time.Now().Before(deadline) {
		st = s.SpeculationStats()
		if cond(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("speculation never reached %s: %+v", what, st)
	return st
}

// TestSpeculativeSweepWarmsCache is the in-process acceptance test: a
// sweep announced up front is fully pre-warmed by the idle slot, so
// every later submission of its rows is a plain cache hit flagged as
// speculatively computed, the fair-share vclock never moves, and the
// tenant's seconds land in the speculative ledger.
func TestSpeculativeSweepWarmsCache(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 1, Speculate: true, SpeculateSlots: 1})
	defer s.Close()

	rows := make([]Request, 3)
	for i := range rows {
		rows[i] = Request{Problem: "sedov", RootN: 8, MaxLevel: Int(0), Steps: 2,
			Knobs: map[string]float64{"e0": float64(5 + i)}, Tenant: "sci"}
	}
	resp, err := s.PrewarmSweep("warmup", rows)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 3 || !resp.Speculate {
		t.Fatalf("announce: %+v", resp)
	}
	waitSpec(t, s, "3 completions", func(st SpeculationStats) bool { return st.Completed == 3 })

	for i, req := range rows {
		j, disp, err := s.SubmitWithDisposition(req)
		if err != nil {
			t.Fatal(err)
		}
		if disp != CacheHit {
			t.Fatalf("row %d: disposition %q, want cache", i, disp)
		}
		if st := j.Status(); !st.Speculative || st.State != "done" {
			t.Fatalf("row %d status: speculative=%t state=%s", i, st.Speculative, st.State)
		}
	}
	if st := s.SpeculationStats(); st.Hits != 3 {
		t.Fatalf("speculative hits = %d, want 3", st.Hits)
	}

	// Speculative seconds never advance the fair-share virtual clock —
	// the queue has dispatched nothing, so a demand tenant arriving now
	// starts from zero attained service.
	s.fq.mu.Lock()
	vclock := s.fq.vclock
	s.fq.mu.Unlock()
	if vclock != 0 {
		t.Fatalf("speculation advanced the fair-share vclock to %g", vclock)
	}

	// The spend ledger has the seconds in the speculative class only.
	var sci *TenantSpend
	for _, ts := range s.TenantSpends() {
		if ts.Tenant == "sci" {
			ts := ts
			sci = &ts
		}
	}
	if sci == nil || sci.SpeculativeJobs != 3 || sci.DemandJobs != 0 {
		t.Fatalf("tenant spend: %+v", sci)
	}
}

// TestSpeculationDoesNotPerturbDemandDispatch extends the qos_test
// harness: the exact fair-share scenario of
// TestSchedulerFairDispatchOrder, but with speculation enabled and a
// pending sweep backlog the planner would love to run. Demand dispatch
// order must be byte-for-byte what it is with speculation off:
// alternating tenants.
func TestSpeculationDoesNotPerturbDemandDispatch(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 2, QueueDepth: 16,
		Speculate: true, SpeculateSlots: 1})
	defer s.Close()

	// A sweep backlog of work the planner wants to run the moment it
	// sees idle capacity.
	bait := make([]Request, 4)
	for i := range bait {
		bait[i] = Request{Problem: "khi", RootN: 8, MaxLevel: Int(0), Steps: 3,
			Knobs: map[string]float64{"amp": 0.01 * float64(i+1)}, Tenant: "spec"}
	}
	if _, err := s.PrewarmSweep("bait", bait); err != nil {
		t.Fatal(err)
	}

	// The blocker pins the only slot while the backlog builds.
	blocker, err := s.Submit(Request{Problem: "sedov", RootN: 32, MaxLevel: Int(1), Steps: 12, Tenant: "warm"})
	if err != nil {
		t.Fatal(err)
	}
	submit := func(tenant string, steps int) *Job {
		t.Helper()
		j, err := s.Submit(Request{Problem: "sedov", RootN: 8, MaxLevel: Int(0), Steps: steps, Tenant: tenant})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	queued := []*Job{
		submit("alice", 1), submit("alice", 2), submit("alice", 3),
		submit("bob", 4), submit("bob", 5), submit("bob", 6),
	}
	depth, per := s.QueueStats()
	if per["alice"] != 3 || per["bob"] != 3 {
		t.Skipf("backlog did not build: depth=%d per=%v", depth, per)
	}

	ctx := t.Context()
	if _, err := blocker.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	order := make([]string, 0, len(queued))
	starts := make(map[string]time.Time, len(queued))
	for _, j := range queued {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		j.mu.Lock()
		starts[j.ID] = j.started
		j.mu.Unlock()
		order = append(order, j.ID)
	}
	sortByStart(order, starts)
	wantTenants := []string{"alice", "bob", "alice", "bob", "alice", "bob"}
	byID := map[string]*Job{}
	for _, j := range queued {
		byID[j.ID] = j
	}
	for i, id := range order {
		if got := byID[id].tenant; got != wantTenants[i] {
			t.Fatalf("dispatch %d went to tenant %s, want %s (order %v)", i, got, wantTenants[i], order)
		}
	}
}

// TestSpeculativePreemptResumeChecksum: a speculative run preempted at
// a root-step boundary and resumed from its checkpoint in the next idle
// window produces the bitwise-identical result hash of an uninterrupted
// demand run of the same configuration.
func TestSpeculativePreemptResumeChecksum(t *testing.T) {
	// Workers pinned to 1 so the reference and the speculative run
	// resolve to the same par budget (the hash depends on it).
	target := Request{Problem: "sedov", RootN: 16, MaxLevel: Int(1), Steps: 20, Workers: 1,
		Knobs: map[string]float64{"e0": 12}}

	ref := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 1})
	rj, err := ref.Submit(target)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := rj.Wait(t.Context())
	ref.Close()
	if err != nil {
		t.Fatal(err)
	}

	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 1, Speculate: true, SpeculateSlots: 1})
	defer s.Close()
	if _, err := s.PrewarmSweep("one", []Request{target}); err != nil {
		t.Fatal(err)
	}
	waitSpec(t, s, "speculation started", func(st SpeculationStats) bool { return st.Started >= 1 })
	// Let the run get through a few root steps so the preemption has a
	// boundary to checkpoint at.
	time.Sleep(150 * time.Millisecond)

	// A real submission arrives: the speculation is preempted, the
	// demand job runs, and the candidate re-enters the backlog.
	dj, err := s.Submit(Request{Problem: "khi", RootN: 8, MaxLevel: Int(0), Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dj.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	st := waitSpec(t, s, "completion", func(st SpeculationStats) bool { return st.Completed >= 1 })
	if st.Preempted == 0 || st.Resumed == 0 {
		// The speculation outran the preemption (or was cancelled before
		// its first step): nothing resumed, so the bitwise assertion
		// below would not be about the resume path.
		t.Skipf("preempt/resume not exercised: %+v", st)
	}

	j, disp, err := s.SubmitWithDisposition(target)
	if err != nil {
		t.Fatal(err)
	}
	if disp != CacheHit {
		t.Fatalf("post-warm submission: disposition %q, want cache", disp)
	}
	res, err := j.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != refRes.Hash {
		t.Fatalf("resumed speculative hash %s != demand hash %s", res.Hash, refRes.Hash)
	}
	status := j.Status()
	if !status.Speculative || status.ResumedFrom == "" {
		t.Fatalf("status after resume: speculative=%t resumed_from=%q", status.Speculative, status.ResumedFrom)
	}
}

// TestSpeculationUsesIdleCapacityOnly: with more speculative workers
// than scheduler slots, at most MaxConcurrent speculations are ever in
// flight — speculation consumes idle capacity, it never adds any.
func TestSpeculationUsesIdleCapacityOnly(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 1, Speculate: true, SpeculateSlots: 2})
	defer s.Close()

	rows := make([]Request, 3)
	for i := range rows {
		rows[i] = Request{Problem: "sedov", RootN: 16, MaxLevel: Int(0), Steps: 3,
			Knobs: map[string]float64{"e0": float64(20 + i)}}
	}
	if _, err := s.PrewarmSweep("caps", rows); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := s.SpeculationStats()
		if st.Inflight > 1 {
			t.Fatalf("%d speculations in flight with MaxConcurrent=1", st.Inflight)
		}
		if st.Completed == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never completed: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSpeculativeBudgetCap: once a tenant's speculative wall seconds
// exceed -speculate-budget-seconds, its remaining candidates are
// dropped, not run.
func TestSpeculativeBudgetCap(t *testing.T) {
	// Any real run blows a 0.5ms budget, so exactly one speculation
	// starts and the second candidate is discarded at claim time.
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 1,
		Speculate: true, SpeculateSlots: 1, SpeculateBudgetSeconds: 0.0005})
	defer s.Close()

	rows := []Request{
		{Problem: "sedov", RootN: 8, MaxLevel: Int(0), Steps: 2, Knobs: map[string]float64{"e0": 30}, Tenant: "sci"},
		{Problem: "sedov", RootN: 8, MaxLevel: Int(0), Steps: 2, Knobs: map[string]float64{"e0": 31}, Tenant: "sci"},
	}
	if _, err := s.PrewarmSweep("budget", rows); err != nil {
		t.Fatal(err)
	}
	st := waitSpec(t, s, "backlog drained", func(st SpeculationStats) bool {
		return st.Pending == 0 && st.Inflight == 0
	})
	if st.Started != 1 || st.Completed != 1 {
		t.Fatalf("budget cap: started=%d completed=%d, want 1/1", st.Started, st.Completed)
	}
}

// TestSpeculatorPlannerDedupe drives the planner synchronously (no
// workers): candidates already cached, in flight, duplicated or
// previously failed are refused; lineage candidates without cost-model
// history stay pending behind the confidence gate while sweep rows run
// without it.
func TestSpeculatorPlannerDedupe(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 2, TotalWorkers: 2})
	defer s.Close()
	sp := newSpeculator(s, Config{Speculate: true, SpeculateSlots: 2,
		SpeculateMinConfidence: DefaultSpeculateMinConfidence})

	mustResolve := func(req Request) resolved {
		t.Helper()
		r, err := resolve(req, s.cfg.slotWorkers(), s.cfg.TotalWorkers)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	// A completed demand job: its configuration has nothing to warm.
	cached := Request{Problem: "sedov", RootN: 8, MaxLevel: Int(0), Steps: 2}
	j, err := s.Submit(cached)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	if sp.add(cached, mustResolve(cached), specSourceSweep) {
		t.Fatal("planner accepted an already-cached configuration")
	}

	// A fresh sweep row is accepted exactly once.
	fresh := Request{Problem: "sedov", RootN: 8, MaxLevel: Int(0), Steps: 3}
	fr := mustResolve(fresh)
	if !sp.add(fresh, fr, specSourceSweep) {
		t.Fatal("planner refused a fresh sweep row")
	}
	if sp.add(fresh, fr, specSourceSweep) {
		t.Fatal("planner accepted a duplicate pending candidate")
	}

	// A lineage candidate with no model history stays pending behind the
	// confidence gate: tryClaim must pick the sweep row, never the guess.
	guess := Request{Problem: "khi", RootN: 8, MaxLevel: Int(0), Steps: 2}
	if !sp.add(guess, mustResolve(guess), specSourceLineage) {
		t.Fatal("planner refused a lineage candidate")
	}
	rn := sp.tryClaim()
	if rn == nil || rn.cand.id != fr.key() {
		t.Fatalf("tryClaim picked %v, want the sweep row", rn)
	}
	// The claimed configuration is now in flight: re-adding it is a dup.
	if sp.add(fresh, fr, specSourceSweep) {
		t.Fatal("planner accepted a candidate already in flight")
	}
	// The gated lineage candidate is still pending, and with no history
	// it is not claimable.
	if rn2 := sp.tryClaim(); rn2 != nil {
		t.Fatalf("tryClaim claimed the unconfident lineage guess %s", rn2.cand.id)
	}
	if st := len(sp.pending); st != 1 {
		t.Fatalf("pending backlog %d, want the gated lineage candidate only", st)
	}

	// A configuration that failed speculatively is never retried.
	deadReq := Request{Problem: "sedov", RootN: 8, MaxLevel: Int(0), Steps: 4}
	dr := mustResolve(deadReq)
	sp.mu.Lock()
	sp.dead[dr.key()] = true
	sp.mu.Unlock()
	if sp.add(deadReq, dr, specSourceSweep) {
		t.Fatal("planner accepted a speculatively-failed configuration")
	}
}

// TestKnobNeighbour: the lineage planner extrapolates the next row of a
// single-axis sweep and nothing else.
func TestKnobNeighbour(t *testing.T) {
	base := Request{Problem: "sedov", RootN: 8, MaxLevel: Int(0), Steps: 2}
	withKnob := func(e0 float64) Request {
		r := base
		r.Knobs = map[string]float64{"e0": e0}
		return r
	}
	res := func(req Request) resolved {
		t.Helper()
		r, err := resolve(req, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	prev := lineageEntry{req: withKnob(10), res: res(withKnob(10))}
	cur := withKnob(12)
	next := knobNeighbour(prev, cur, res(cur))
	if next == nil || next.Knobs["e0"] != 14 {
		t.Fatalf("neighbour of e0 10→12: %+v, want e0=14", next)
	}
	if next.DeadlineSeconds != 0 {
		t.Fatal("extrapolated row inherited a deadline")
	}

	// Two knobs moving, a different problem, or a different grid is not
	// a single-axis sweep.
	cool := func(delta, tinit float64) Request {
		return Request{Problem: "coolsphere", RootN: 8, MaxLevel: Int(0), Steps: 2,
			Knobs: map[string]float64{"delta": delta, "tinit": tinit}}
	}
	prevCool := lineageEntry{req: cool(20, 1000), res: res(cool(20, 1000))}
	two := cool(25, 1200)
	if knobNeighbour(prevCool, two, res(two)) != nil {
		t.Fatal("extrapolated across a two-axis change")
	}
	otherGrid := withKnob(12)
	otherGrid.RootN = 16
	if knobNeighbour(prev, otherGrid, res(otherGrid)) != nil {
		t.Fatal("extrapolated across a grid change")
	}
	same := withKnob(10)
	if knobNeighbour(prev, same, res(same)) != nil {
		t.Fatal("extrapolated from an identical configuration")
	}
}

// TestSweepAndTenantsEndpoints covers the HTTP surface: POST /sweeps
// triages rows (cached / live / accepted / invalid), GET /tenants
// reports the spend ledger, and /healthz and /metrics carry the
// speculation series.
func TestSweepAndTenantsEndpoints(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 2, Speculate: true, SpeculateSlots: 1})
	defer s.Close()
	srv := newTestServer(t, s)

	// One cached row and one live (long-running) row for the triage.
	cachedReq := Request{Problem: "sedov", RootN: 8, MaxLevel: Int(0), Steps: 2, Tenant: "sci"}
	cached := postJob(t, srv.URL, cachedReq)
	waitResult(t, srv.URL, cached.ID)
	// Long enough that the sweep triage — whose handler contends with
	// the running job for CPU on a small host — reliably observes the
	// job mid-flight, short enough to finish under -race on one core.
	liveReq := Request{Problem: "sedov", RootN: 16, MaxLevel: Int(1), Steps: 20, Tenant: "sci"}
	live := postJob(t, srv.URL, liveReq)

	manifest := map[string]any{
		"name":     "triage",
		"defaults": map[string]any{"problem": "sedov", "rootn": 8, "maxlevel": 0, "steps": 2},
		"jobs": []map[string]any{
			{}, // identical to cachedReq minus tenant: cached
			{"rootn": 16, "maxlevel": 1, "steps": 20}, // the live blocker
			{"knobs": map[string]float64{"e0": 42}},   // fresh: accepted
			{"problem": "no-such-problem"},            // invalid
		},
	}
	resp := postSweep(t, srv.URL, manifest)
	want := []string{"cached", "live", "accepted", "invalid"}
	if len(resp.Results) != len(want) {
		t.Fatalf("sweep results: %+v", resp.Results)
	}
	for i, status := range want {
		if resp.Results[i].Status != status {
			t.Fatalf("row %d triaged %q, want %q (%+v)", i, resp.Results[i].Status, status, resp.Results[i])
		}
	}
	if resp.Accepted != 1 || !resp.Speculate {
		t.Fatalf("sweep response: %+v", resp)
	}
	// Every resolvable row carries an estimate, cached and live included.
	for i := 0; i < 3; i++ {
		if resp.Results[i].Estimate == nil {
			t.Fatalf("row %d has no estimate", i)
		}
	}

	waitResult(t, srv.URL, live.ID)
	waitSpec(t, s, "prewarm completion", func(st SpeculationStats) bool { return st.Completed >= 1 })

	// GET /tenants: the demand runs and the speculative run are in
	// separate classes. (The sweep rows carry no tenant, so the
	// speculative seconds land under "default".)
	spends := getTenants(t, srv.URL)
	byTenant := map[string]TenantSpend{}
	for _, ts := range spends {
		byTenant[ts.Tenant] = ts
	}
	if sci := byTenant["sci"]; sci.DemandJobs != 2 || sci.SpeculativeJobs != 0 {
		t.Fatalf("sci spend: %+v", sci)
	}
	if def := byTenant["default"]; def.SpeculativeJobs < 1 || def.DemandJobs != 0 {
		t.Fatalf("default spend: %+v", def)
	}

	// /healthz and /metrics carry the speculation state.
	health := getHealthz(t, srv.URL)
	for _, key := range []string{"speculate", "speculate_slots", "speculative_pending",
		"speculative_inflight", "speculative_started", "speculative_hits",
		"speculative_preempted", "speculative_wasted_seconds"} {
		if _, ok := health[key]; !ok {
			t.Fatalf("/healthz lacks %q: %v", key, health)
		}
	}
	metrics := getMetrics(t, srv.URL)
	for _, line := range []string{
		"sim_speculative_enabled 1",
		"sim_speculative_started_total ",
		"sim_speculative_hits_total ",
		"sim_speculative_preempted_total ",
		"sim_speculative_wasted_seconds_total ",
		`sim_tenant_spend_seconds{tenant="sci",class="demand"}`,
		`sim_tenant_spend_seconds{tenant="default",class="speculative"}`,
	} {
		if !strings.Contains(metrics, line) {
			t.Fatalf("/metrics lacks %q:\n%s", line, metrics)
		}
	}

	// Bounds: an empty manifest and an oversized one are 400s.
	for name, bad := range map[string]any{
		"empty":     map[string]any{"jobs": []map[string]any{}},
		"oversized": map[string]any{"jobs": make([]map[string]any, MaxSweepRows+1)},
	} {
		if code := postSweepStatus(t, srv.URL, bad); code != 400 {
			t.Fatalf("%s sweep: status %d, want 400", name, code)
		}
	}
}
