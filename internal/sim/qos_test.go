package sim

// The deterministic scheduler-simulation suite: every test drives the
// fair-share queue (and, at the end, a whole scheduler) through an
// injected fake clock and scripted arrivals, asserting exact dispatch
// orders. No test here synchronizes on time.Sleep — ordering is either
// purely synchronous (queue-level) or event-driven (scheduler-level).

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/sim/costmodel"
)

// fakeClock is the deterministic time source behind Config.Clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// qjob builds a bare queue entry carrier for fairQueue-level tests.
func qjob(id, tenant string, deadline time.Time) *Job {
	return &Job{ID: id, tenant: tenant, deadline: deadline}
}

// popIDs drains n entries synchronously (the queue is pre-filled, so
// pop never blocks) and returns their IDs in dispatch order.
func popIDs(t *testing.T, q *fairQueue, n int) []string {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		j, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue reported closed", i)
		}
		ids[i] = j.ID
	}
	return ids
}

func assertOrder(t *testing.T, got, want []string) {
	t.Helper()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dispatch order\n got %v\nwant %v", got, want)
	}
}

// TestFairShareInterleavesTenants: two tenants flooding with equal
// weights are served strictly alternately, with the submission-order
// tie-break making the order exact — and FIFO within each tenant.
func TestFairShareInterleavesTenants(t *testing.T) {
	clk := newFakeClock()
	q := newFairQueue(64, nil, clk.now)
	for i := 1; i <= 3; i++ {
		q.push(qjob(fmt.Sprintf("A%d", i), "alice", time.Time{}), true)
	}
	for i := 1; i <= 3; i++ {
		q.push(qjob(fmt.Sprintf("B%d", i), "bob", time.Time{}), true)
	}
	assertOrder(t, popIDs(t, q, 6), []string{"A1", "B1", "A2", "B2", "A3", "B3"})
}

// TestTricklerNotStarvedByFlooders: a tenant that shows up after two
// flooders have been served re-enters at the current virtual-time level
// and is dispatched within one round of the tenant count — it neither
// waits behind the whole backlog nor banks credit for its absence.
func TestTricklerNotStarvedByFlooders(t *testing.T) {
	clk := newFakeClock()
	q := newFairQueue(64, nil, clk.now)
	for i := 1; i <= 10; i++ {
		q.push(qjob(fmt.Sprintf("A%d", i), "alice", time.Time{}), true)
	}
	for i := 1; i <= 10; i++ {
		q.push(qjob(fmt.Sprintf("B%d", i), "bob", time.Time{}), true)
	}
	assertOrder(t, popIDs(t, q, 4), []string{"A1", "B1", "A2", "B2"})
	// The trickler arrives mid-flood...
	q.push(qjob("C1", "carol", time.Time{}), true)
	// ...and is served within #tenants of arriving, not after 16 more
	// flood entries.
	assertOrder(t, popIDs(t, q, 3), []string{"A3", "B3", "C1"})
}

// TestWeightedShares: weight 3 vs 1 yields a 9:3 dispatch split over
// the first 12 dispatches under contention.
func TestWeightedShares(t *testing.T) {
	clk := newFakeClock()
	q := newFairQueue(64, map[string]float64{"alice": 3}, clk.now)
	for i := 1; i <= 12; i++ {
		q.push(qjob(fmt.Sprintf("A%d", i), "alice", time.Time{}), true)
	}
	for i := 1; i <= 12; i++ {
		q.push(qjob(fmt.Sprintf("B%d", i), "bob", time.Time{}), true)
	}
	counts := map[byte]int{}
	for _, id := range popIDs(t, q, 12) {
		counts[id[0]]++
	}
	if counts['A'] != 9 || counts['B'] != 3 {
		t.Fatalf("weighted split A=%d B=%d over 12 dispatches, want 9/3", counts['A'], counts['B'])
	}
}

// TestDeadlineBoost: queued work whose slack runs out (clock advances
// to within its estimated cost of the deadline) jumps the fair-share
// order, earliest deadline first.
func TestDeadlineBoost(t *testing.T) {
	clk := newFakeClock()
	q := newFairQueue(64, nil, clk.now)
	deadline := clk.now().Add(10 * time.Second)
	for i := 1; i <= 4; i++ {
		q.push(qjob(fmt.Sprintf("A%d", i), "alice", time.Time{}), true)
	}
	for i := 1; i <= 4; i++ {
		q.push(qjob(fmt.Sprintf("B%d", i), "bob", deadline), true)
	}
	// With ample slack the order is plain fair-share.
	assertOrder(t, popIDs(t, q, 2), []string{"A1", "B1"})
	// 9.5s later the remaining deadline jobs have negative slack
	// (0.5s left, 1s estimated cost): they preempt the fair order.
	clk.advance(9500 * time.Millisecond)
	assertOrder(t, popIDs(t, q, 6), []string{"B2", "B3", "B4", "A2", "A3", "A4"})
}

// TestUrgentBurstBoundsStarvation: a tenant flooding all-urgent work
// (deadlines already blown) may bypass the fair order at most
// urgentBurst times in a row — the deadline-less tenant is still served
// at least every urgentBurst+1 dispatches.
func TestUrgentBurstBoundsStarvation(t *testing.T) {
	clk := newFakeClock()
	q := newFairQueue(64, nil, clk.now)
	blown := clk.now().Add(-time.Second)
	for i := 1; i <= 10; i++ {
		q.push(qjob(fmt.Sprintf("A%d", i), "alice", blown), true)
	}
	for i := 1; i <= 5; i++ {
		q.push(qjob(fmt.Sprintf("B%d", i), "bob", time.Time{}), true)
	}
	got := popIDs(t, q, 15)
	// A1 is itself the fair pick (alice and bob tie at zero service, the
	// lower sequence wins), so it does not count against the burst;
	// A2..A5 are the 4 urgent bypasses, then a fair pick is forced.
	assertOrder(t, got, []string{
		"A1", "A2", "A3", "A4", "A5", "B1",
		"A6", "A7", "A8", "A9", "B2",
		"A10", "B3", "B4", "B5",
	})
	// The structural invariant behind the exact sequence: bob is never
	// gapped by more than urgentBurst+1 dispatches.
	gap := 0
	for _, id := range got {
		if id[0] == 'B' {
			gap = 0
			continue
		}
		if gap++; gap > urgentBurst+1 {
			t.Fatalf("deadline flood starved the plain tenant for %d dispatches: %v", gap, got)
		}
	}
}

// TestFIFOWithinTenant: a tenant's own jobs can never reorder — only
// queue heads are dispatch candidates, so a later urgent submission
// still waits behind its tenant's earlier job.
func TestFIFOWithinTenant(t *testing.T) {
	clk := newFakeClock()
	q := newFairQueue(64, nil, clk.now)
	q.push(qjob("T1", "alice", time.Time{}), true)
	q.push(qjob("T2", "alice", clk.now().Add(-time.Minute)), true) // long blown deadline
	assertOrder(t, popIDs(t, q, 2), []string{"T1", "T2"})
}

// TestQueueDepthRemoveAndSnapshot covers the bookkeeping edges: the
// depth bound applies only when enforced (recovery bypasses it),
// duplicate IDs are no-ops, remove excises, tighten only ever moves a
// deadline earlier, and snapshot reports per-tenant backlogs.
func TestQueueDepthRemoveAndSnapshot(t *testing.T) {
	clk := newFakeClock()
	q := newFairQueue(2, nil, clk.now)
	if err := q.push(qjob("J1", "alice", time.Time{}), true); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("J2", "bob", time.Time{}), true); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("J3", "bob", time.Time{}), true); err != ErrQueueFull {
		t.Fatalf("push past depth: %v, want ErrQueueFull", err)
	}
	if err := q.push(qjob("J3", "bob", time.Time{}), false); err != nil {
		t.Fatalf("unenforced push past depth (recovery): %v", err)
	}
	if err := q.push(qjob("J1", "alice", time.Time{}), false); err != nil {
		t.Fatalf("duplicate push: %v", err)
	}
	depth, per := q.snapshot()
	if depth != 3 || per["alice"] != 1 || per["bob"] != 2 {
		t.Fatalf("snapshot %d %v, want 3 {alice:1 bob:2}", depth, per)
	}

	if !q.remove("J2") {
		t.Fatal("remove of a queued job reported false")
	}
	if q.remove("J2") {
		t.Fatal("second remove reported true")
	}
	depth, per = q.snapshot()
	if depth != 2 || per["bob"] != 1 {
		t.Fatalf("snapshot after remove: %d %v", depth, per)
	}

	// tighten: earlier wins, later/zero are ignored.
	d1 := clk.now().Add(time.Hour)
	if !q.tighten("J3", d1) {
		t.Fatal("tighten from no deadline refused")
	}
	if q.tighten("J3", d1.Add(time.Hour)) {
		t.Fatal("tighten accepted a later deadline")
	}
	if !q.tighten("J3", d1.Add(-time.Minute)) {
		t.Fatal("tighten refused an earlier deadline")
	}

	// close drains the backlog, then reports exhaustion.
	q.close()
	if err := q.push(qjob("J4", "alice", time.Time{}), false); err != ErrClosed {
		t.Fatalf("push after close: %v, want ErrClosed", err)
	}
	if got := popIDs(t, q, 2); len(got) != 2 {
		t.Fatalf("drain after close popped %v", got)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on a drained closed queue reported ok")
	}
}

// TestEstimatedCostDrivesCharge: tenants are billed their jobs'
// estimated seconds, so a tenant submitting expensive work gets
// proportionally fewer dispatches than one submitting cheap work.
func TestEstimatedCostDrivesCharge(t *testing.T) {
	clk := newFakeClock()
	q := newFairQueue(64, nil, clk.now)
	expensive := &costmodel.Estimate{Seconds: 4, Samples: 5}
	cheap := &costmodel.Estimate{Seconds: 1, Samples: 5}
	for i := 1; i <= 3; i++ {
		j := qjob(fmt.Sprintf("E%d", i), "alice", time.Time{})
		j.est = expensive
		q.push(j, true)
	}
	for i := 1; i <= 8; i++ {
		j := qjob(fmt.Sprintf("C%d", i), "bob", time.Time{})
		j.est = cheap
		q.push(j, true)
	}
	// Each expensive dispatch charges 4s of service; bob gets 4 cheap
	// dispatches per alice one once the vtimes separate.
	assertOrder(t, popIDs(t, q, 10),
		[]string{"E1", "C1", "C2", "C3", "C4", "E2", "C5", "C6", "C7", "C8"})
}

// TestSchedulerFairDispatchOrder is the scheduler-level end of the
// harness: a real Scheduler with one slot, a long blocker occupying it,
// and two tenants' jobs queued behind it must start in fair-share
// order. Synchronization is event-driven — Job.Wait and the store of
// per-job start times — never time.Sleep.
func TestSchedulerFairDispatchOrder(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 2, QueueDepth: 16})
	defer s.Close()

	// The blocker pins the only slot while the backlog builds.
	blocker, err := s.Submit(Request{Problem: "sedov", RootN: 32, MaxLevel: Int(1), Steps: 12, Tenant: "warm"})
	if err != nil {
		t.Fatal(err)
	}
	submit := func(tenant string, steps int) *Job {
		t.Helper()
		j, err := s.Submit(Request{Problem: "sedov", RootN: 8, MaxLevel: Int(0), Steps: steps, Tenant: tenant})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	// alice floods three jobs, then bob floods three. Step counts are
	// all distinct — tenant is not job identity, so identical configs
	// would coalesce across tenants.
	queued := []*Job{
		submit("alice", 1), submit("alice", 2), submit("alice", 3),
		submit("bob", 4), submit("bob", 5), submit("bob", 6),
	}
	depth, per := s.QueueStats()
	if per["alice"] != 3 || per["bob"] != 3 {
		// The blocker finished before the backlog built — the machine is
		// too fast for this configuration to contend, so the ordering
		// assertion below would be vacuous. (The blocker itself may
		// still be queued; only the tenant backlog matters.)
		t.Skipf("backlog did not build: depth=%d per=%v", depth, per)
	}

	ctx := t.Context()
	if _, err := blocker.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	order := make([]string, 0, len(queued))
	starts := make(map[string]time.Time, len(queued))
	for _, j := range queued {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		if st := j.Status(); st.Tenant == "" {
			t.Fatalf("job %s status lost its tenant", j.ID)
		}
		j.mu.Lock()
		starts[j.ID] = j.started
		j.mu.Unlock()
		order = append(order, j.ID)
	}
	// One slot serializes starts, so StartedAt orders the dispatches.
	sortByStart(order, starts)
	wantTenants := []string{"alice", "bob", "alice", "bob", "alice", "bob"}
	byID := map[string]*Job{}
	for _, j := range queued {
		byID[j.ID] = j
	}
	for i, id := range order {
		if got := byID[id].tenant; got != wantTenants[i] {
			t.Fatalf("dispatch %d went to tenant %s, want %s (order %v)", i, got, wantTenants[i], order)
		}
	}
}

// sortByStart orders job IDs by their recorded start time.
func sortByStart(ids []string, starts map[string]time.Time) {
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0 && starts[ids[k]].Before(starts[ids[k-1]]); k-- {
			ids[k], ids[k-1] = ids[k-1], ids[k]
		}
	}
}
