package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/sim/costmodel"
)

// TestQoSEndToEnd is the predictive-scheduling acceptance test, over
// real HTTP: three completed jobs train the cost model, a fourth
// identical-shape submission's 202 body carries an estimate within 2x
// of its actual runtime, and a request predicted to blow the
// -max-job-seconds admission bound is rejected 429 with the estimate
// in the body.
func TestQoSEndToEnd(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 2, MaxJobSeconds: 120})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// MaxLevel 0 keeps the grid unrefined, so the per-step cost is
	// constant and the cost surface genuinely linear in work — the
	// regime the 2x acceptance bound below is about. (With refinement
	// the blast wave grows the refined region over time, a convex curve
	// a linear interpolation systematically overshoots.)
	shape := func(steps int) Request {
		return Request{Problem: "sedov", RootN: 32, MaxLevel: Int(0), Steps: steps,
			Workers: 2, Tenant: "sci"}
	}
	// One throwaway run of a different problem first: the process's
	// cold-start costs (page faults, allocator growth) land on it
	// instead of skewing the training fit, and its sample lives in a
	// separate per-problem history.
	warm := postJob(t, srv.URL, Request{Problem: "khi", RootN: 32, MaxLevel: Int(0), Steps: 4, Workers: 2})
	waitResult(t, srv.URL, warm.ID)

	// Train: three runs of the same shape at different step budgets give
	// the per-op linear fit a well-conditioned work axis.
	for _, steps := range []int{10, 30, 50} {
		sub := postJob(t, srv.URL, shape(steps))
		if sub.Disposition != "scheduled" {
			t.Fatalf("training run steps=%d: disposition %q", steps, sub.Disposition)
		}
		waitResult(t, srv.URL, sub.ID)
	}
	if n := s.CostModelSamples(); n != 4 { // 3 sedov + the khi warm-up
		t.Fatalf("model holds %d samples after training, want 4", n)
	}

	// The fourth submission is admitted with a non-vacuous estimate in
	// the 202 body...
	sub := postJob(t, srv.URL, shape(20))
	if sub.Disposition != "scheduled" {
		t.Fatalf("4th submission: disposition %q", sub.Disposition)
	}
	est := sub.Estimate
	if est == nil || est.Samples != 3 || est.Seconds <= 0 {
		t.Fatalf("202 body estimate: %+v", est)
	}
	// Which predictor wins LOO selection on real timings is
	// noise-dependent (on a clean linear surface both are near-perfect);
	// the deterministic selection properties live in the costmodel
	// package tests. Here we only require that one was actually chosen.
	if est.Predictor == costmodel.PredictorNone {
		t.Fatalf("predictor %q with %d samples", est.Predictor, est.Samples)
	}
	// ...and the estimate is within 2x of what actually happened.
	res := waitResult(t, srv.URL, sub.ID)
	actual := res.Metrics.WallSeconds
	if actual <= 0 {
		t.Fatalf("job reported %g wall seconds", actual)
	}
	if ratio := actual / est.Seconds; ratio < 0.5 || ratio > 2 {
		t.Fatalf("estimate %gs vs actual %gs: ratio %g outside [0.5, 2]", est.Seconds, actual, ratio)
	}

	// A request whose prediction blows the admission bound is refused
	// 429, with the estimate and the bound in the body.
	huge, _ := json.Marshal(Request{Problem: "sedov", RootN: 64, MaxLevel: Int(1), Steps: 100000, Workers: 2, Tenant: "sci"})
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit POST: %s (%s)", resp.Status, body)
	}
	var rej struct {
		Error         string             `json:"error"`
		Estimate      costmodel.Estimate `json:"estimate"`
		MaxJobSeconds float64            `json:"max_job_seconds"`
	}
	if err := json.Unmarshal(body, &rej); err != nil {
		t.Fatalf("429 body: %v (%s)", err, body)
	}
	if rej.Estimate.Samples == 0 || rej.Estimate.Seconds <= 120 || rej.MaxJobSeconds != 120 {
		t.Fatalf("429 body lacks the rejecting estimate: %s", body)
	}
	if !strings.Contains(rej.Error, "admission bound") {
		t.Fatalf("429 error text: %q", rej.Error)
	}
	if st := s.Stats(); st.AdmissionRejected != 1 {
		t.Fatalf("AdmissionRejected = %d, want 1", st.AdmissionRejected)
	}

	// The completed 4th job scored its estimate into the error
	// histogram.
	if n, mean := s.EstimateErrorStats(); n < 1 || mean <= 0 {
		t.Fatalf("estimate-error stats: n=%d mean=%g", n, mean)
	}

	// /healthz exposes the queue and model state...
	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	for _, key := range []string{"queue_depth", "tenants_queued", "costmodel_samples", "max_job_seconds"} {
		if _, ok := health[key]; !ok {
			t.Fatalf("/healthz lacks %q: %v", key, health)
		}
	}
	if got := health["costmodel_samples"].(float64); got != 5 {
		t.Fatalf("/healthz costmodel_samples %g, want 5", got)
	}
	if got := health["max_job_seconds"].(float64); got != 120 {
		t.Fatalf("/healthz max_job_seconds %g, want 120", got)
	}

	// ...and /metrics carries the QoS series.
	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, line := range []string{
		"sim_queue_depth ",
		"sim_admission_rejected_total 1",
		"sim_costmodel_samples 5",
		"sim_estimate_error_ratio_bucket{le=\"+Inf\"} ",
		"sim_estimate_error_ratio_count ",
	} {
		if !strings.Contains(string(metrics), line) {
			t.Fatalf("/metrics lacks %q:\n%s", line, metrics)
		}
	}
}

// TestQoSRequestValidation: malformed scheduling metadata fails at
// submit time with 400, before it can poison queue accounting.
func TestQoSRequestValidation(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for name, body := range map[string]string{
		"negative deadline": `{"problem":"sedov","rootn":8,"deadline_seconds":-5}`,
		"oversized tenant":  fmt.Sprintf(`{"problem":"sedov","rootn":8,"tenant":%q}`, strings.Repeat("x", MaxTenantLen+1)),
	} {
		resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %s, want 400", name, resp.Status)
		}
	}

	// Tenant and deadline are scheduling metadata, not identity: the
	// same configuration from two tenants coalesces onto one job.
	a, err := s.Submit(Request{Problem: "sedov", RootN: 8, MaxLevel: Int(1), Steps: 2, Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(Request{Problem: "sedov", RootN: 8, MaxLevel: Int(1), Steps: 2, Tenant: "bob", DeadlineSeconds: 30})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("tenant leaked into job identity: %s vs %s", a.ID, b.ID)
	}
}
