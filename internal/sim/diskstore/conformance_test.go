package diskstore

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/sim/storetest"
)

// TestDiskStoreConformance runs the shared Store conformance suite
// against the disk-backed implementation — the same behavioral
// contract the memory store passes, plus everything Persistent()
// unlocks (recovery, blobs, checkpoints).
func TestDiskStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) sim.Store { return open(t, t.TempDir()) })
}
