// Package diskstore is the disk-backed sim.Store: one directory per job
// under a data root, keyed by the job's canonical request hash, so a
// restarted `enzogo serve -data dir` (or enzobatch -data sweep) recovers
// completed results and artifacts as cache hits and resumes interrupted
// jobs from their latest checkpoint.
//
// On-disk layout (everything written via temp-file + atomic rename, so
// a kill at any instant leaves either the old record or the new one,
// never a torn file):
//
//	<root>/jobs/<id>/manifest.json        the job-state WAL (latest transition wins)
//	<root>/jobs/<id>/result.json          the terminal Result of a done job
//	<root>/jobs/<id>/artifacts/index.json retained artifact metadata, production order
//	<root>/jobs/<id>/artifacts/<name>     one payload per artifact
//	<root>/jobs/<id>/checkpoints/step_NNNNNNNN.ckpt
//	                                      snapshot-format restart points; the
//	                                      latest two are retained
//
// Size gauges (checkpoint/artifact bytes) are scanned once at open and
// maintained incrementally afterwards.
package diskstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/sim"
)

// keepCheckpoints is how many most-recent checkpoints each job retains.
// Two, not one: the newest is the resume point, the previous one is the
// fallback that can never be mid-write when the process dies (rename is
// atomic, but a belt goes well with suspenders that cheap).
const keepCheckpoints = 2

// Store implements sim.Store on a directory tree. Safe for concurrent
// use; a single mutex serializes metadata writes (the payloads are
// large, but job persistence is off the step hot path — checkpoint
// cadence bounds how often it runs).
type Store struct {
	root string

	mu        sync.Mutex
	ckptBytes int64
	ckptCount int
	artBytes  int64
	artCount  int
}

// New opens (creating if needed) a disk store rooted at dir and scans
// its current sizes.
func New(dir string) (*Store, error) {
	s := &Store{root: dir}
	if err := os.MkdirAll(s.jobsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	ids, err := s.jobIDs()
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		sweepTemps(s.jobDir(id))
		sweepTemps(s.ckptDir(id))
		sweepTemps(s.artDir(id))
		s.ckptBytes += dirBytes(s.ckptDir(id), &s.ckptCount)
		s.artBytes += dirBytes(s.artDir(id), &s.artCount)
	}
	// index.json is metadata, not payload: don't count it as artifact bytes.
	for _, id := range ids {
		if fi, err := os.Stat(filepath.Join(s.artDir(id), indexFile)); err == nil {
			s.artBytes -= fi.Size()
			s.artCount--
		}
	}
	return s, nil
}

// indexFile is the per-job artifact metadata index.
const indexFile = "index.json"

func (s *Store) jobsDir() string          { return filepath.Join(s.root, "jobs") }
func (s *Store) jobDir(id string) string  { return filepath.Join(s.jobsDir(), id) }
func (s *Store) ckptDir(id string) string { return filepath.Join(s.jobDir(id), "checkpoints") }
func (s *Store) artDir(id string) string  { return filepath.Join(s.jobDir(id), "artifacts") }

// tmpPrefix marks in-flight writeAtomic files; they are never payloads.
const tmpPrefix = ".tmp-"

// dirBytes sums the regular payload files under dir (0 when absent),
// counting them into *n. Orphaned writeAtomic temp files — a kill
// between CreateTemp and Rename leaves one — are excluded.
func dirBytes(dir string, n *int) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			continue
		}
		if fi, err := e.Info(); err == nil && fi.Mode().IsRegular() {
			total += fi.Size()
			*n++
		}
	}
	return total
}

// sweepTemps deletes orphaned writeAtomic temp files under dir — the
// crash-residue cleanup New runs per job directory (each crash would
// otherwise add another orphan for the life of the job).
func sweepTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// jobIDs lists the job directories under the root.
func (s *Store) jobIDs() ([]string, error) {
	entries, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	return ids, nil
}

// writeAtomic writes data to path via a temp file + rename, creating
// the parent directory if needed.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Persistent reports true: this store is the durability backend.
func (s *Store) Persistent() bool { return true }

// SaveManifest rewrites the job's manifest.json atomically — the WAL of
// state transitions (the latest write wins; a kill leaves the previous
// record intact).
func (s *Store) SaveManifest(m sim.JobManifest) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("diskstore: manifest %s: %w", m.ID, err)
	}
	if err := writeAtomic(filepath.Join(s.jobDir(m.ID), "manifest.json"), append(data, '\n')); err != nil {
		return fmt.Errorf("diskstore: manifest %s: %w", m.ID, err)
	}
	return nil
}

// SaveResult persists a done job's result.json.
func (s *Store) SaveResult(id string, res *sim.Result) error {
	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		return fmt.Errorf("diskstore: result %s: %w", id, err)
	}
	if err := writeAtomic(filepath.Join(s.jobDir(id), "result.json"), append(data, '\n')); err != nil {
		return fmt.Errorf("diskstore: result %s: %w", id, err)
	}
	return nil
}

// storedArtifact is one index.json row: the artifact metadata minus the
// payload, which lives in the sibling file of the same name.
type storedArtifact struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	Field       string  `json:"field,omitempty"`
	Step        int     `json:"step"`
	Time        float64 `json:"time"`
	ContentType string  `json:"content_type"`
	RawSize     int64   `json:"raw_size,omitempty"`
}

// loadArtIndex reads a job's artifact index (empty when absent).
func (s *Store) loadArtIndex(id string) ([]storedArtifact, error) {
	data, err := os.ReadFile(filepath.Join(s.artDir(id), indexFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var idx []storedArtifact
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, err
	}
	return idx, nil
}

func (s *Store) saveArtIndex(id string, idx []storedArtifact) error {
	data, err := json.Marshal(idx)
	if err != nil {
		return err
	}
	return writeAtomic(filepath.Join(s.artDir(id), indexFile), append(data, '\n'))
}

// cleanName rejects artifact names that could escape the job directory.
// The analysis layer never produces such names; this is defense against
// a future producer that does.
func cleanName(name string) error {
	if name == "" || name == indexFile || strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
		return fmt.Errorf("diskstore: unsafe artifact name %q", name)
	}
	return nil
}

// SaveArtifact writes the payload file and appends (or replaces) the
// index row, keeping production order.
func (s *Store) SaveArtifact(id string, a analysis.Artifact) error {
	if err := cleanName(a.Name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, err := s.loadArtIndex(id)
	if err != nil {
		return fmt.Errorf("diskstore: artifact index %s: %w", id, err)
	}
	path := filepath.Join(s.artDir(id), a.Name)
	var oldSize int64
	if fi, err := os.Stat(path); err == nil {
		oldSize = fi.Size()
	}
	if err := writeAtomic(path, a.Data); err != nil {
		return fmt.Errorf("diskstore: artifact %s/%s: %w", id, a.Name, err)
	}
	row := storedArtifact{
		Name: a.Name, Kind: string(a.Kind), Field: a.Field,
		Step: a.Step, Time: a.Time, ContentType: a.ContentType, RawSize: a.RawSize,
	}
	replaced := false
	for i := range idx {
		if idx[i].Name == a.Name {
			idx[i] = row
			replaced = true
			break
		}
	}
	if !replaced {
		idx = append(idx, row)
		s.artCount++
	}
	s.artBytes += int64(len(a.Data)) - oldSize
	if err := s.saveArtIndex(id, idx); err != nil {
		return fmt.Errorf("diskstore: artifact index %s: %w", id, err)
	}
	return nil
}

// DeleteArtifacts removes the named payloads and their index rows —
// mirroring the in-memory store's oldest-first eviction.
func (s *Store) DeleteArtifacts(id string, names []string) error {
	if len(names) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, err := s.loadArtIndex(id)
	if err != nil {
		return fmt.Errorf("diskstore: artifact index %s: %w", id, err)
	}
	doomed := make(map[string]bool, len(names))
	for _, n := range names {
		doomed[n] = true
	}
	kept := idx[:0]
	for _, row := range idx {
		if !doomed[row.Name] {
			kept = append(kept, row)
			continue
		}
		path := filepath.Join(s.artDir(id), row.Name)
		if fi, err := os.Stat(path); err == nil {
			s.artBytes -= fi.Size()
			s.artCount--
		}
		os.Remove(path)
	}
	if err := s.saveArtIndex(id, kept); err != nil {
		return fmt.Errorf("diskstore: artifact index %s: %w", id, err)
	}
	return nil
}

// ckptName renders the checkpoint file for a root step; the fixed-width
// numbering makes lexical order equal step order.
func ckptName(step int) string { return fmt.Sprintf("step_%08d.ckpt", step) }

// ckptStep parses a checkpoint file name back to its step (-1 when the
// name is not a checkpoint).
func ckptStep(name string) int {
	var step int
	if _, err := fmt.Sscanf(name, "step_%d.ckpt", &step); err != nil {
		return -1
	}
	return step
}

// SaveCheckpoint writes the restart point atomically and prunes all but
// the latest keepCheckpoints.
func (s *Store) SaveCheckpoint(id string, step int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.ckptDir(id)
	path := filepath.Join(dir, ckptName(step))
	// Rewriting the same step (a drain landing on a cadence boundary)
	// replaces the file: account for the old size instead of
	// double-counting.
	var oldSize int64 = -1
	if fi, err := os.Stat(path); err == nil {
		oldSize = fi.Size()
	}
	if err := writeAtomic(path, data); err != nil {
		return fmt.Errorf("diskstore: checkpoint %s step %d: %w", id, step, err)
	}
	if oldSize >= 0 {
		s.ckptBytes += int64(len(data)) - oldSize
	} else {
		s.ckptBytes += int64(len(data))
		s.ckptCount++
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil // the checkpoint itself landed; pruning is best-effort
	}
	var names []string
	for _, e := range entries {
		if ckptStep(e.Name()) >= 0 {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names[:max(0, len(names)-keepCheckpoints)] {
		path := filepath.Join(dir, name)
		if fi, err := os.Stat(path); err == nil {
			s.ckptBytes -= fi.Size()
			s.ckptCount--
		}
		os.Remove(path)
	}
	return nil
}

// LatestCheckpoint loads the most recent checkpoint, nil when the job
// has none.
func (s *Store) LatestCheckpoint(id string) (*sim.Checkpoint, error) {
	entries, err := os.ReadDir(s.ckptDir(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("diskstore: checkpoints %s: %w", id, err)
	}
	best, bestStep := "", -1
	for _, e := range entries {
		if step := ckptStep(e.Name()); step > bestStep {
			best, bestStep = e.Name(), step
		}
	}
	if bestStep < 0 {
		return nil, nil
	}
	path := filepath.Join(s.ckptDir(id), best)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("diskstore: checkpoint %s: %w", id, err)
	}
	ck := &sim.Checkpoint{Step: bestStep, Data: data}
	if fi, err := os.Stat(path); err == nil {
		ck.At = fi.ModTime()
	}
	return ck, nil
}

// DeleteCheckpoints drops every checkpoint of a job (it reached a
// terminal state; there is nothing left to resume).
func (s *Store) DeleteCheckpoints(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	s.ckptBytes -= dirBytes(s.ckptDir(id), &n)
	s.ckptCount -= n
	if err := os.RemoveAll(s.ckptDir(id)); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	return nil
}

// DeleteJob removes the job's whole directory.
func (s *Store) DeleteJob(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	s.ckptBytes -= dirBytes(s.ckptDir(id), &n)
	s.ckptCount -= n
	n = 0
	ab := dirBytes(s.artDir(id), &n)
	if fi, err := os.Stat(filepath.Join(s.artDir(id), indexFile)); err == nil {
		ab -= fi.Size()
		n--
	}
	s.artBytes -= ab
	s.artCount -= n
	if err := os.RemoveAll(s.jobDir(id)); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	return nil
}

// Recover loads every persisted job: its manifest, the terminal result
// of done jobs, and the retained artifacts in production order. Job
// directories whose manifest is missing or unreadable are skipped (a
// kill between MkdirAll and the first manifest write can leave one);
// recovery must never take the service down.
func (s *Store) Recover() ([]sim.RecoveredJob, error) {
	ids, err := s.jobIDs()
	if err != nil {
		return nil, err
	}
	var out []sim.RecoveredJob
	for _, id := range ids {
		data, err := os.ReadFile(filepath.Join(s.jobDir(id), "manifest.json"))
		if err != nil {
			continue
		}
		var m sim.JobManifest
		if err := json.Unmarshal(data, &m); err != nil || m.ID != id {
			continue
		}
		rec := sim.RecoveredJob{Manifest: m}
		if res, err := os.ReadFile(filepath.Join(s.jobDir(id), "result.json")); err == nil {
			var r sim.Result
			if json.Unmarshal(res, &r) == nil {
				rec.Result = &r
			}
		}
		idx, err := s.loadArtIndex(id)
		if err == nil {
			for _, row := range idx {
				payload, err := os.ReadFile(filepath.Join(s.artDir(id), row.Name))
				if err != nil {
					continue
				}
				rec.Artifacts = append(rec.Artifacts, analysis.Artifact{
					Name: row.Name, Kind: analysis.OutputKind(row.Kind), Field: row.Field,
					Step: row.Step, Time: row.Time, ContentType: row.ContentType,
					RawSize: row.RawSize, Data: payload,
				})
			}
		}
		out = append(out, rec)
	}
	// Oldest submissions first, so the scheduler's eviction order (and
	// GET /jobs listing order) survives the restart.
	sort.Slice(out, func(i, j int) bool {
		return out[i].Manifest.SubmittedAt.Before(out[j].Manifest.SubmittedAt)
	})
	return out, nil
}

// Stats reports the maintained size gauges.
func (s *Store) Stats() sim.StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sim.StoreStats{
		CheckpointBytes: s.ckptBytes,
		CheckpointCount: s.ckptCount,
		ArtifactBytes:   s.artBytes,
		ArtifactCount:   s.artCount,
	}
}

// Close is a no-op: every write is already durable by the time the
// call that made it returned.
func (s *Store) Close() error { return nil }

// Root returns the data directory the store was opened on.
func (s *Store) Root() string { return s.root }

// interface check
var _ sim.Store = (*Store)(nil)
