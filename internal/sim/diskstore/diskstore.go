// Package diskstore is the disk-backed sim.Store: one directory per job
// under a data root, keyed by the job's canonical request hash, so a
// restarted `enzogo serve -data dir` (or enzobatch -data sweep) recovers
// completed results and artifacts as cache hits and resumes interrupted
// jobs from their latest checkpoint.
//
// On-disk layout (everything written via temp-file + atomic rename with
// fsync of the file and its parent directory, so a kill — or a power
// cut right after the rename — leaves either the old record or the new
// one, never a torn or lost file):
//
//	<root>/jobs/<id>/manifest.json        the job-state WAL (latest transition wins)
//	<root>/jobs/<id>/result.json          the terminal Result of a done job
//	<root>/jobs/<id>/artifacts/index.json retained artifact metadata rows
//	                                      (name → meta + content hash), production order
//	<root>/blobs/<hh>/<hash>              content-addressed artifact payloads,
//	                                      one per distinct sha256 across ALL jobs
//	<root>/jobs/<id>/checkpoints/step_NNNNNNNN.ckpt
//	                                      snapshot-format restart points; the
//	                                      latest two are retained
//
// Artifact payloads are content-addressed: identical products emitted
// by any number of jobs occupy one blob file, refcounted by the index
// rows that name their hash; the last dereference deletes the blob.
// Size gauges (checkpoint/artifact/blob bytes) are scanned once at open
// and maintained incrementally afterwards; blobs no index references
// (a crash between blob write and index write) are swept at open.
package diskstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/sim"
)

// keepCheckpoints is how many most-recent checkpoints each job retains.
// Two, not one: the newest is the resume point, the previous one is the
// fallback that can never be mid-write when the process dies (rename is
// atomic, but a belt goes well with suspenders that cheap).
const keepCheckpoints = 2

// Store implements sim.Store on a directory tree. Safe for concurrent
// use; a single mutex serializes metadata writes (the payloads are
// large, but job persistence is off the step hot path — checkpoint
// cadence bounds how often it runs). Blob reads (LoadBlob) take the
// mutex only long enough to consult the refcount table.
type Store struct {
	root string

	mu        sync.Mutex
	ckptBytes int64
	ckptCount int
	artBytes  int64 // logical bytes: sum of index-row sizes, before dedupe
	artCount  int
	blobBytes int64 // physical bytes: each distinct payload once
	blobCount int
	dedupe    int64          // bytes not rewritten because the blob existed
	refs      map[string]int // content hash -> referencing index rows
}

// New opens (creating if needed) a disk store rooted at dir, scans its
// current sizes, rebuilds the blob refcount table from the per-job
// indexes, and sweeps crash residue (orphaned temp files, unreferenced
// blobs).
func New(dir string) (*Store, error) {
	s := &Store{root: dir, refs: make(map[string]int)}
	if err := os.MkdirAll(s.jobsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	if err := os.MkdirAll(s.blobsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	sweepTemps(s.root) // a kill mid-SaveCostModel leaves its temp at the root
	ids, err := s.jobIDs()
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		sweepTemps(s.jobDir(id))
		sweepTemps(s.ckptDir(id))
		sweepTemps(s.artDir(id))
		s.ckptBytes += dirBytes(s.ckptDir(id), &s.ckptCount)
		rows, err := s.loadArtIndex(id)
		if err != nil {
			continue // an unreadable index degrades to "no artifacts", never blocks startup
		}
		for _, row := range rows {
			if row.Hash == "" {
				continue
			}
			s.artBytes += row.Size
			s.artCount++
			s.refs[row.Hash]++
		}
	}
	s.sweepBlobs()
	return s, nil
}

// sweepBlobs walks the blob tier, counting referenced blobs into the
// gauges and deleting unreferenced ones (a kill between the blob write
// and the index write orphans the blob; the index write ordering
// guarantees the reverse — a referenced-but-missing blob — cannot
// happen).
func (s *Store) sweepBlobs() {
	shards, err := os.ReadDir(s.blobsDir())
	if err != nil {
		return
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		dir := filepath.Join(s.blobsDir(), shard.Name())
		sweepTemps(dir)
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			fi, err := e.Info()
			if err != nil || !fi.Mode().IsRegular() {
				continue
			}
			if s.refs[e.Name()] > 0 {
				s.blobBytes += fi.Size()
				s.blobCount++
			} else {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
}

// indexFile is the per-job artifact metadata index.
const indexFile = "index.json"

func (s *Store) jobsDir() string          { return filepath.Join(s.root, "jobs") }
func (s *Store) jobDir(id string) string  { return filepath.Join(s.jobsDir(), id) }
func (s *Store) ckptDir(id string) string { return filepath.Join(s.jobDir(id), "checkpoints") }
func (s *Store) artDir(id string) string  { return filepath.Join(s.jobDir(id), "artifacts") }
func (s *Store) blobsDir() string         { return filepath.Join(s.root, "blobs") }

// blobPath shards blob files by the first two hash characters so one
// directory never holds the whole tier.
func (s *Store) blobPath(hash string) string {
	return filepath.Join(s.blobsDir(), hash[:2], hash)
}

// tmpPrefix marks in-flight writeAtomic files; they are never payloads.
const tmpPrefix = ".tmp-"

// dirBytes sums the regular payload files under dir (0 when absent),
// counting them into *n. Orphaned writeAtomic temp files — a kill
// between CreateTemp and Rename leaves one — are excluded.
func dirBytes(dir string, n *int) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			continue
		}
		if fi, err := e.Info(); err == nil && fi.Mode().IsRegular() {
			total += fi.Size()
			*n++
		}
	}
	return total
}

// sweepTemps deletes orphaned writeAtomic temp files under dir — the
// crash-residue cleanup New runs per job directory (each crash would
// otherwise add another orphan for the life of the job).
func sweepTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// jobIDs lists the job directories under the root.
func (s *Store) jobIDs() ([]string, error) {
	entries, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	return ids, nil
}

// writeAtomic writes data to path via a temp file + rename, creating
// the parent directory if needed. The temp file is fsynced before the
// rename and the parent directory after it: rename alone makes the
// *contents* crash-safe, but until the directory entry itself is on
// disk a power cut can lose the whole record.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss. Best-effort on platforms whose directories reject fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// Persistent reports true: this store is the durability backend.
func (s *Store) Persistent() bool { return true }

// SaveManifest rewrites the job's manifest.json atomically — the WAL of
// state transitions (the latest write wins; a kill leaves the previous
// record intact).
func (s *Store) SaveManifest(m sim.JobManifest) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("diskstore: manifest %s: %w", m.ID, err)
	}
	if err := writeAtomic(filepath.Join(s.jobDir(m.ID), "manifest.json"), append(data, '\n')); err != nil {
		return fmt.Errorf("diskstore: manifest %s: %w", m.ID, err)
	}
	return nil
}

// SaveResult persists a done job's result.json.
func (s *Store) SaveResult(id string, res *sim.Result) error {
	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		return fmt.Errorf("diskstore: result %s: %w", id, err)
	}
	if err := writeAtomic(filepath.Join(s.jobDir(id), "result.json"), append(data, '\n')); err != nil {
		return fmt.Errorf("diskstore: result %s: %w", id, err)
	}
	return nil
}

// storedArtifact is one index.json row: the artifact metadata minus the
// payload, which lives in the shared blob tier under Hash.
type storedArtifact struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	Field       string  `json:"field,omitempty"`
	Step        int     `json:"step"`
	Time        float64 `json:"time"`
	ContentType string  `json:"content_type"`
	Size        int64   `json:"size"`
	RawSize     int64   `json:"raw_size,omitempty"`
	Hash        string  `json:"content_hash"`
}

// loadArtIndex reads a job's artifact index (empty when absent).
func (s *Store) loadArtIndex(id string) ([]storedArtifact, error) {
	data, err := os.ReadFile(filepath.Join(s.artDir(id), indexFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var idx []storedArtifact
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, err
	}
	return idx, nil
}

func (s *Store) saveArtIndex(id string, idx []storedArtifact) error {
	data, err := json.Marshal(idx)
	if err != nil {
		return err
	}
	return writeAtomic(filepath.Join(s.artDir(id), indexFile), append(data, '\n'))
}

// cleanName rejects artifact names that could escape the job directory.
// The analysis layer never produces such names; this is defense against
// a future producer that does.
func cleanName(name string) error {
	if name == "" || name == indexFile || strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
		return fmt.Errorf("diskstore: unsafe artifact name %q", name)
	}
	return nil
}

// cleanHash rejects content hashes that are not plain lowercase sha256
// hex — defense against a hash ever reaching filepath.Join.
func cleanHash(hash string) error {
	if len(hash) != 64 {
		return fmt.Errorf("diskstore: bad content hash %q", hash)
	}
	for _, c := range hash {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("diskstore: bad content hash %q", hash)
		}
	}
	return nil
}

// SaveArtifact writes the payload into the content-addressed blob tier
// (skipping the write when an identical blob exists — the cross-job
// dedupe) and appends or replaces the job's index row, keeping
// production order. The blob lands before the index row referencing it,
// so a crash can orphan a blob (swept at next open) but never a row.
func (s *Store) SaveArtifact(id string, a analysis.Artifact, hash string) error {
	if err := cleanName(a.Name); err != nil {
		return err
	}
	if err := cleanHash(hash); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, err := s.loadArtIndex(id)
	if err != nil {
		return fmt.Errorf("diskstore: artifact index %s: %w", id, err)
	}
	if s.refs[hash] == 0 {
		if err := writeAtomic(s.blobPath(hash), a.Data); err != nil {
			return fmt.Errorf("diskstore: blob %s: %w", hash, err)
		}
		s.blobBytes += int64(len(a.Data))
		s.blobCount++
	} else {
		s.dedupe += int64(len(a.Data))
	}
	row := storedArtifact{
		Name: a.Name, Kind: string(a.Kind), Field: a.Field,
		Step: a.Step, Time: a.Time, ContentType: a.ContentType,
		Size: int64(len(a.Data)), RawSize: a.RawSize, Hash: hash,
	}
	s.refs[hash]++
	replaced := false
	var oldHash string
	for i := range idx {
		if idx[i].Name == a.Name {
			s.artBytes += row.Size - idx[i].Size
			oldHash = idx[i].Hash
			idx[i] = row
			replaced = true
			break
		}
	}
	if !replaced {
		idx = append(idx, row)
		s.artCount++
		s.artBytes += row.Size
	}
	if err := s.saveArtIndex(id, idx); err != nil {
		return fmt.Errorf("diskstore: artifact index %s: %w", id, err)
	}
	if replaced && oldHash != "" {
		s.unrefLocked(oldHash)
	}
	return nil
}

// unrefLocked drops one reference to a blob, deleting the file when the
// last one goes; s.mu must be held.
func (s *Store) unrefLocked(hash string) {
	s.refs[hash]--
	if s.refs[hash] > 0 {
		return
	}
	delete(s.refs, hash)
	path := s.blobPath(hash)
	if fi, err := os.Stat(path); err == nil {
		s.blobBytes -= fi.Size()
		s.blobCount--
	}
	os.Remove(path)
}

// LoadBlob reads one content-addressed payload — the hot tier's miss
// path. The caller (sim.BlobCache) verifies the bytes against the hash.
func (s *Store) LoadBlob(hash string) ([]byte, error) {
	if err := cleanHash(hash); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.blobPath(hash))
	if err != nil {
		return nil, fmt.Errorf("diskstore: blob %s: %w", hash, err)
	}
	return data, nil
}

// DeleteArtifacts removes the named index rows — mirroring the
// in-memory store's oldest-first eviction — and reclaims blobs no
// remaining row references.
func (s *Store) DeleteArtifacts(id string, names []string) error {
	if len(names) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, err := s.loadArtIndex(id)
	if err != nil {
		return fmt.Errorf("diskstore: artifact index %s: %w", id, err)
	}
	doomed := make(map[string]bool, len(names))
	for _, n := range names {
		doomed[n] = true
	}
	kept := idx[:0]
	var unref []string
	for _, row := range idx {
		if !doomed[row.Name] {
			kept = append(kept, row)
			continue
		}
		s.artBytes -= row.Size
		s.artCount--
		if row.Hash != "" {
			unref = append(unref, row.Hash)
		}
	}
	if err := s.saveArtIndex(id, kept); err != nil {
		return fmt.Errorf("diskstore: artifact index %s: %w", id, err)
	}
	// Index first, blobs second: a kill in between leaves orphaned blobs
	// (swept at open), never rows pointing at deleted payloads.
	for _, h := range unref {
		s.unrefLocked(h)
	}
	return nil
}

// ckptName renders the checkpoint file for a root step; the fixed-width
// numbering makes lexical order equal step order.
func ckptName(step int) string { return fmt.Sprintf("step_%08d.ckpt", step) }

// ckptStep parses a checkpoint file name back to its step (-1 when the
// name is not a checkpoint).
func ckptStep(name string) int {
	var step int
	if _, err := fmt.Sscanf(name, "step_%d.ckpt", &step); err != nil {
		return -1
	}
	return step
}

// SaveCheckpoint writes the restart point atomically and prunes all but
// the latest keepCheckpoints.
func (s *Store) SaveCheckpoint(id string, step int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.ckptDir(id)
	path := filepath.Join(dir, ckptName(step))
	// Rewriting the same step (a drain landing on a cadence boundary)
	// replaces the file: account for the old size instead of
	// double-counting.
	var oldSize int64 = -1
	if fi, err := os.Stat(path); err == nil {
		oldSize = fi.Size()
	}
	if err := writeAtomic(path, data); err != nil {
		return fmt.Errorf("diskstore: checkpoint %s step %d: %w", id, step, err)
	}
	if oldSize >= 0 {
		s.ckptBytes += int64(len(data)) - oldSize
	} else {
		s.ckptBytes += int64(len(data))
		s.ckptCount++
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil // the checkpoint itself landed; pruning is best-effort
	}
	var names []string
	for _, e := range entries {
		if ckptStep(e.Name()) >= 0 {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names[:max(0, len(names)-keepCheckpoints)] {
		path := filepath.Join(dir, name)
		if fi, err := os.Stat(path); err == nil {
			s.ckptBytes -= fi.Size()
			s.ckptCount--
		}
		os.Remove(path)
	}
	return nil
}

// LatestCheckpoint loads the most recent checkpoint, nil when the job
// has none.
func (s *Store) LatestCheckpoint(id string) (*sim.Checkpoint, error) {
	entries, err := os.ReadDir(s.ckptDir(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("diskstore: checkpoints %s: %w", id, err)
	}
	best, bestStep := "", -1
	for _, e := range entries {
		if step := ckptStep(e.Name()); step > bestStep {
			best, bestStep = e.Name(), step
		}
	}
	if bestStep < 0 {
		return nil, nil
	}
	path := filepath.Join(s.ckptDir(id), best)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("diskstore: checkpoint %s: %w", id, err)
	}
	ck := &sim.Checkpoint{Step: bestStep, Data: data}
	if fi, err := os.Stat(path); err == nil {
		ck.At = fi.ModTime()
	}
	return ck, nil
}

// DeleteCheckpoints drops every checkpoint of a job (it reached a
// terminal state; there is nothing left to resume).
func (s *Store) DeleteCheckpoints(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	s.ckptBytes -= dirBytes(s.ckptDir(id), &n)
	s.ckptCount -= n
	if err := os.RemoveAll(s.ckptDir(id)); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	return nil
}

// DeleteJob removes the job's whole directory and dereferences every
// blob its index rows named.
func (s *Store) DeleteJob(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	s.ckptBytes -= dirBytes(s.ckptDir(id), &n)
	s.ckptCount -= n
	if rows, err := s.loadArtIndex(id); err == nil {
		for _, row := range rows {
			if row.Hash == "" {
				continue
			}
			s.artBytes -= row.Size
			s.artCount--
			s.unrefLocked(row.Hash)
		}
	}
	if err := os.RemoveAll(s.jobDir(id)); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	return nil
}

// Recover loads every persisted job: its manifest, the terminal result
// of done jobs, and the retained artifact metadata in production order
// — rows only, no payload reads; the bytes stay in the blob tier until
// a reader asks. Job directories whose manifest is missing or
// unreadable are skipped (a kill between MkdirAll and the first
// manifest write can leave one); recovery must never take the service
// down.
func (s *Store) Recover() ([]sim.RecoveredJob, error) {
	ids, err := s.jobIDs()
	if err != nil {
		return nil, err
	}
	var out []sim.RecoveredJob
	for _, id := range ids {
		data, err := os.ReadFile(filepath.Join(s.jobDir(id), "manifest.json"))
		if err != nil {
			continue
		}
		var m sim.JobManifest
		if err := json.Unmarshal(data, &m); err != nil || m.ID != id {
			continue
		}
		rec := sim.RecoveredJob{Manifest: m}
		if res, err := os.ReadFile(filepath.Join(s.jobDir(id), "result.json")); err == nil {
			var r sim.Result
			if json.Unmarshal(res, &r) == nil {
				rec.Result = &r
			}
		}
		idx, err := s.loadArtIndex(id)
		if err == nil {
			for _, row := range idx {
				if row.Hash == "" {
					continue // pre-content-addressing row: payload location unknown
				}
				rec.Artifacts = append(rec.Artifacts, sim.ArtifactMeta{
					Name: row.Name, Kind: row.Kind, Field: row.Field,
					Step: row.Step, Time: row.Time, ContentType: row.ContentType,
					Size: int(row.Size), RawSize: row.RawSize, Hash: row.Hash,
				})
			}
		}
		out = append(out, rec)
	}
	// Oldest submissions first, so the scheduler's eviction order (and
	// GET /jobs listing order) survives the restart.
	sort.Slice(out, func(i, j int) bool {
		return out[i].Manifest.SubmittedAt.Before(out[j].Manifest.SubmittedAt)
	})
	return out, nil
}

// costModelFile holds the scheduler's serialized cost-model state at
// the data root (it spans jobs, so it lives beside jobs/, not inside).
const costModelFile = "costmodel.json"

// SaveCostModel persists the cost-model state atomically; the latest
// write wins, like the manifest WAL.
func (s *Store) SaveCostModel(state []byte) error {
	if err := writeAtomic(filepath.Join(s.root, costModelFile), state); err != nil {
		return fmt.Errorf("diskstore: cost model: %w", err)
	}
	return nil
}

// LoadCostModel reads the persisted cost-model state back, nil when
// none has been saved yet.
func (s *Store) LoadCostModel() ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.root, costModelFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("diskstore: cost model: %w", err)
	}
	return data, nil
}

// Stats reports the maintained size gauges.
func (s *Store) Stats() sim.StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sim.StoreStats{
		CheckpointBytes: s.ckptBytes,
		CheckpointCount: s.ckptCount,
		ArtifactBytes:   s.artBytes,
		ArtifactCount:   s.artCount,
		BlobBytes:       s.blobBytes,
		BlobCount:       s.blobCount,
		DedupeBytes:     s.dedupe,
	}
}

// Close is a no-op: every write is already durable by the time the
// call that made it returned.
func (s *Store) Close() error { return nil }

// Root returns the data directory the store was opened on.
func (s *Store) Root() string { return s.root }

// interface check
var _ sim.Store = (*Store)(nil)
