package diskstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/sim"
)

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestManifestWALAtomicAndLatestWins(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	m := sim.JobManifest{ID: "abc123", State: "queued", Workers: 2, SubmittedAt: time.Now()}
	if err := s.SaveManifest(m); err != nil {
		t.Fatal(err)
	}
	m.State = "running"
	m.StartedAt = time.Now()
	if err := s.SaveManifest(m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "jobs", "abc123", "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got sim.JobManifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.State != "running" || got.Workers != 2 {
		t.Fatalf("latest transition lost: %+v", got)
	}
	// No torn temp files left behind.
	entries, _ := os.ReadDir(filepath.Join(dir, "jobs", "abc123"))
	for _, e := range entries {
		if e.Name() != "manifest.json" {
			t.Fatalf("unexpected residue %q", e.Name())
		}
	}
}

func TestCheckpointLatestAndPruning(t *testing.T) {
	s := open(t, t.TempDir())
	for step, payload := range map[int]string{4: "four", 9: "nine", 14: "fourteen"} {
		if err := s.SaveCheckpoint("j", step, []byte(payload)); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := s.LatestCheckpoint("j")
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Step != 14 || string(ck.Data) != "fourteen" {
		t.Fatalf("latest checkpoint %+v", ck)
	}
	// Only the latest keepCheckpoints survive.
	entries, err := os.ReadDir(filepath.Join(s.Root(), "jobs", "j", "checkpoints"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != keepCheckpoints {
		t.Fatalf("retained %d checkpoints, want %d", len(entries), keepCheckpoints)
	}
	if st := s.Stats(); st.CheckpointCount != keepCheckpoints {
		t.Fatalf("stats count %d, want %d", st.CheckpointCount, keepCheckpoints)
	}
	if err := s.DeleteCheckpoints("j"); err != nil {
		t.Fatal(err)
	}
	if ck, _ := s.LatestCheckpoint("j"); ck != nil {
		t.Fatalf("checkpoints survived deletion: %+v", ck)
	}
	if st := s.Stats(); st.CheckpointBytes != 0 || st.CheckpointCount != 0 {
		t.Fatalf("checkpoint gauges not zeroed: %+v", st)
	}
}

func TestCheckpointSameStepRewriteAccounting(t *testing.T) {
	// A drain landing on a cadence boundary rewrites the same step file;
	// the gauges must track the replacement, not double-count it.
	s := open(t, t.TempDir())
	if err := s.SaveCheckpoint("j", 5, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCheckpoint("j", 5, make([]byte, 70)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CheckpointCount != 1 || st.CheckpointBytes != 70 {
		t.Fatalf("same-step rewrite miscounted: %+v", st)
	}
}

func TestLatestCheckpointNoneIsNil(t *testing.T) {
	s := open(t, t.TempDir())
	if ck, err := s.LatestCheckpoint("ghost"); err != nil || ck != nil {
		t.Fatalf("want nil,nil for absent job, got %+v, %v", ck, err)
	}
}

func TestArtifactOrderReplaceAndEviction(t *testing.T) {
	s := open(t, t.TempDir())
	arts := []analysis.Artifact{
		{Name: "00_a.pgm", Kind: "slice", Step: 1, ContentType: "image/x-portable-graymap", Data: []byte("aaa")},
		{Name: "01_b.json", Kind: "profile", Step: 1, ContentType: "application/json", Data: []byte("bbbb")},
		{Name: "00_c.gob.gz", Kind: "snapshot", Step: 2, ContentType: "application/gzip", Data: []byte("ccccc"), RawSize: 50},
	}
	for _, a := range arts {
		if err := s.SaveArtifact("j", a, sim.HashBytes(a.Data)); err != nil {
			t.Fatal(err)
		}
	}
	// Replace the middle one; order must be preserved.
	repl := analysis.Artifact{
		Name: "01_b.json", Kind: "profile", Step: 3, ContentType: "application/json", Data: []byte("B2"),
	}
	if err := s.SaveArtifact("j", repl, sim.HashBytes(repl.Data)); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// No manifest was written, so the job dir is skipped by Recover —
	// write one and retry (also covers the skip-unreadable path).
	if len(recs) != 0 {
		t.Fatalf("manifest-less job dir should be skipped, got %d records", len(recs))
	}
	if err := s.SaveManifest(sim.JobManifest{ID: "j", State: "done"}); err != nil {
		t.Fatal(err)
	}
	recs, err = s.Recover()
	if err != nil || len(recs) != 1 {
		t.Fatalf("recover: %v (%d records)", err, len(recs))
	}
	got := recs[0].Artifacts
	if len(got) != 3 {
		t.Fatalf("recovered %d artifacts, want 3", len(got))
	}
	wantOrder := []string{"00_a.pgm", "01_b.json", "00_c.gob.gz"}
	for i, name := range wantOrder {
		if got[i].Name != name {
			t.Fatalf("production order lost: slot %d = %q, want %q", i, got[i].Name, name)
		}
	}
	if got[1].Step != 3 || got[1].Size != 2 || got[1].Hash != sim.HashBytes([]byte("B2")) {
		t.Fatalf("replacement not applied: %+v", got[1])
	}
	if data, err := s.LoadBlob(got[1].Hash); err != nil || string(data) != "B2" {
		t.Fatalf("replacement payload: %q, %v", data, err)
	}
	if got[2].RawSize != 50 {
		t.Fatalf("raw size lost: %+v", got[2])
	}
	// The replaced payload's blob lost its last reference and is gone.
	if _, err := s.LoadBlob(sim.HashBytes([]byte("bbbb"))); err == nil {
		t.Fatal("replaced blob not reclaimed")
	}

	if err := s.DeleteArtifacts("j", []string{"00_a.pgm"}); err != nil {
		t.Fatal(err)
	}
	recs, _ = s.Recover()
	if len(recs[0].Artifacts) != 2 || recs[0].Artifacts[0].Name != "01_b.json" {
		t.Fatalf("eviction mirror wrong: %+v", recs[0].Artifacts)
	}
	if st := s.Stats(); st.ArtifactCount != 2 || st.ArtifactBytes != int64(len("B2")+len("ccccc")) {
		t.Fatalf("artifact gauges wrong after delete: %+v", st)
	}
}

func TestUnsafeArtifactNamesRejected(t *testing.T) {
	s := open(t, t.TempDir())
	for _, name := range []string{"", "../escape", "a/b", ".hidden", "index.json"} {
		if err := s.SaveArtifact("j", analysis.Artifact{Name: name, Data: []byte("x")}, sim.HashBytes([]byte("x"))); err == nil {
			t.Fatalf("name %q accepted", name)
		}
	}
	// Hashes that are not plain sha256 hex never reach the filesystem.
	for _, hash := range []string{"", "short", "../../etc/passwd", string(make([]byte, 64))} {
		if err := s.SaveArtifact("j", analysis.Artifact{Name: "ok.pgm", Data: []byte("x")}, hash); err == nil {
			t.Fatalf("hash %q accepted", hash)
		}
		if _, err := s.LoadBlob(hash); err == nil {
			t.Fatalf("LoadBlob accepted hash %q", hash)
		}
	}
}

func TestStatsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.SaveManifest(sim.JobManifest{ID: "j", State: "interrupted"}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCheckpoint("j", 3, make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveArtifact("j", analysis.Artifact{Name: "00_x.pgm", Data: make([]byte, 300)}, sim.HashBytes(make([]byte, 300))); err != nil {
		t.Fatal(err)
	}
	want := s.Stats()
	s2 := open(t, dir)
	if got := s2.Stats(); got != want {
		t.Fatalf("reopened gauges %+v, want %+v", got, want)
	}
	if got := want; got.CheckpointBytes != 1000 || got.ArtifactBytes != 300 {
		t.Fatalf("gauges wrong: %+v", want)
	}
	// Result round-trip.
	res := &sim.Result{Hash: "deadbeef", Steps: 7, Time: 1.5}
	if err := s2.SaveResult("j", res); err != nil {
		t.Fatal(err)
	}
	if err := s2.SaveManifest(sim.JobManifest{ID: "j", State: "done"}); err != nil {
		t.Fatal(err)
	}
	recs, err := s2.Recover()
	if err != nil || len(recs) != 1 {
		t.Fatalf("recover: %v", err)
	}
	if recs[0].Result == nil || recs[0].Result.Hash != "deadbeef" || recs[0].Result.Steps != 7 {
		t.Fatalf("result lost: %+v", recs[0].Result)
	}
	if err := s2.DeleteJob("j"); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.ArtifactBytes != 0 || st.CheckpointBytes != 0 {
		t.Fatalf("DeleteJob left gauges: %+v", st)
	}
	if recs, _ := s2.Recover(); len(recs) != 0 {
		t.Fatalf("job survived deletion")
	}
}

func TestOrphanTempFilesSweptAndUncounted(t *testing.T) {
	// A kill between CreateTemp and Rename leaves a .tmp-* orphan; New
	// must neither count it as payload nor leave it behind.
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.SaveCheckpoint("j", 1, make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "jobs", "j", "checkpoints", ".tmp-123456")
	if err := os.WriteFile(orphan, make([]byte, 9999), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir)
	if st := s2.Stats(); st.CheckpointCount != 1 || st.CheckpointBytes != 500 {
		t.Fatalf("orphan temp file counted: %+v", st)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan temp file not swept: %v", err)
	}
}

// countBlobs walks <root>/blobs and returns the blob files on disk.
func countBlobs(t *testing.T, root string) []string {
	t.Helper()
	var blobs []string
	shards, _ := os.ReadDir(filepath.Join(root, "blobs"))
	for _, shard := range shards {
		entries, _ := os.ReadDir(filepath.Join(root, "blobs", shard.Name()))
		for _, e := range entries {
			blobs = append(blobs, e.Name())
		}
	}
	return blobs
}

func TestIdenticalPayloadsAcrossJobsShareOneBlob(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	payload := []byte("same bytes from two different jobs")
	hash := sim.HashBytes(payload)
	a := analysis.Artifact{Name: "00_p.pgm", Kind: "projection", ContentType: "image/x-portable-graymap", Data: payload}
	if err := s.SaveArtifact("job1", a, hash); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveArtifact("job2", a, hash); err != nil {
		t.Fatal(err)
	}
	if blobs := countBlobs(t, dir); len(blobs) != 1 || blobs[0] != hash {
		t.Fatalf("want exactly one shared blob %s, got %v", hash, blobs)
	}
	st := s.Stats()
	if st.BlobCount != 1 || st.BlobBytes != int64(len(payload)) {
		t.Fatalf("physical gauges wrong: %+v", st)
	}
	if st.ArtifactCount != 2 || st.ArtifactBytes != 2*int64(len(payload)) {
		t.Fatalf("logical gauges wrong: %+v", st)
	}
	if st.DedupeBytes != int64(len(payload)) {
		t.Fatalf("dedupe counter %d, want %d", st.DedupeBytes, len(payload))
	}
	// The blob survives the first dereference and dies with the last.
	if err := s.DeleteJob("job1"); err != nil {
		t.Fatal(err)
	}
	if data, err := s.LoadBlob(hash); err != nil || string(data) != string(payload) {
		t.Fatalf("blob lost while job2 still references it: %v", err)
	}
	if err := s.DeleteJob("job2"); err != nil {
		t.Fatal(err)
	}
	if len(countBlobs(t, dir)) != 0 {
		t.Fatal("blob survived its last dereference")
	}
	if st := s.Stats(); st.BlobBytes != 0 || st.BlobCount != 0 {
		t.Fatalf("blob gauges not zeroed: %+v", st)
	}
}

func TestContentHashStableAcrossReopen(t *testing.T) {
	// The content hash is the HTTP ETag: a restart must recover the
	// exact same hash for the same payload, and reopening must rebuild
	// the refcount table so the blob remains readable and reclaimable.
	dir := t.TempDir()
	s := open(t, dir)
	payload := []byte("etag-stable payload")
	hash := sim.HashBytes(payload)
	if err := s.SaveManifest(sim.JobManifest{ID: "j", State: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveArtifact("j", analysis.Artifact{Name: "00_e.pgm", Data: payload}, hash); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir)
	recs, err := s2.Recover()
	if err != nil || len(recs) != 1 || len(recs[0].Artifacts) != 1 {
		t.Fatalf("recover: %v %+v", err, recs)
	}
	if got := recs[0].Artifacts[0].Hash; got != hash {
		t.Fatalf("hash changed across reopen: %s != %s", got, hash)
	}
	if data, err := s2.LoadBlob(hash); err != nil || string(data) != string(payload) {
		t.Fatalf("blob unreadable after reopen: %v", err)
	}
	if err := s2.DeleteJob("j"); err != nil {
		t.Fatal(err)
	}
	if len(countBlobs(t, dir)) != 0 {
		t.Fatal("rebuilt refcounts did not reclaim the blob")
	}
}

func TestOrphanBlobsSweptAtOpen(t *testing.T) {
	// A kill between the blob write and the index write leaves a blob no
	// row references; New must sweep it without touching referenced ones.
	dir := t.TempDir()
	s := open(t, dir)
	payload := []byte("kept")
	if err := s.SaveArtifact("j", analysis.Artifact{Name: "00_k.pgm", Data: payload}, sim.HashBytes(payload)); err != nil {
		t.Fatal(err)
	}
	orphanHash := sim.HashBytes([]byte("orphan"))
	orphanPath := filepath.Join(dir, "blobs", orphanHash[:2], orphanHash)
	if err := os.MkdirAll(filepath.Dir(orphanPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(orphanPath, []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir)
	if _, err := os.Stat(orphanPath); !os.IsNotExist(err) {
		t.Fatalf("orphan blob not swept: %v", err)
	}
	if st := s2.Stats(); st.BlobCount != 1 || st.BlobBytes != int64(len(payload)) {
		t.Fatalf("blob gauges after sweep: %+v", st)
	}
	if _, err := s2.LoadBlob(sim.HashBytes(payload)); err != nil {
		t.Fatalf("referenced blob swept: %v", err)
	}
}

func TestRecoverOrdersBySubmitTime(t *testing.T) {
	s := open(t, t.TempDir())
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	for i, id := range []string{"ccc", "aaa", "bbb"} {
		err := s.SaveManifest(sim.JobManifest{
			ID: id, State: "done", SubmittedAt: base.Add(time.Duration(2-i) * time.Hour),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"bbb", "aaa", "ccc"} // oldest submission first
	for i, rec := range recs {
		if rec.Manifest.ID != want[i] {
			t.Fatalf("recover order %d = %s, want %s", i, rec.Manifest.ID, want[i])
		}
	}
}
