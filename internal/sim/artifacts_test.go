package sim

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/problems"
)

func art(name string, size int) analysis.Artifact {
	return analysis.Artifact{Name: name, Kind: analysis.KindSlice, Data: bytes.Repeat([]byte{1}, size)}
}

func TestArtifactStoreBounds(t *testing.T) {
	s := newArtifactStore(100, 3, nil)
	s.Put(art("a", 40))
	s.Put(art("b", 40))
	if n, b := s.Count(); n != 2 || b != 80 {
		t.Fatalf("count %d bytes %d", n, b)
	}
	// Byte budget: storing c evicts a.
	s.Put(art("c", 40))
	if _, ok := s.Get("a"); ok {
		t.Fatal("oldest artifact not evicted on byte overflow")
	}
	if _, ok := s.Get("b"); !ok {
		t.Fatal("newer artifact evicted too")
	}
	// Count budget: a third small artifact is fine, a fourth evicts.
	s.Put(art("d", 1))
	s.Put(art("e", 1))
	idx := s.Index()
	if idx.Count != 3 || idx.Dropped != 2 {
		t.Fatalf("index %+v", idx)
	}
	// An artifact larger than the whole budget is refused outright.
	s.Put(art("huge", 1000))
	if _, ok := s.Get("huge"); ok {
		t.Fatal("oversized artifact stored")
	}
	if s.Index().Dropped != 3 {
		t.Fatalf("dropped %d, want 3", s.Index().Dropped)
	}
}

func TestArtifactStoreWatchReplayAndClose(t *testing.T) {
	s := newArtifactStore(1000, 10, nil)
	s.Put(art("a", 1))
	ch := s.Watch()
	if m := <-ch; m.Name != "a" {
		t.Fatalf("replay %+v", m)
	}
	s.Put(art("b", 1))
	if m := <-ch; m.Name != "b" {
		t.Fatalf("live update %+v", m)
	}
	s.close()
	if _, open := <-ch; open {
		t.Fatal("channel not closed after store close")
	}
	// Watch after close replays then closes immediately.
	ch2 := s.Watch()
	names := []string{}
	for m := range ch2 {
		names = append(names, m.Name)
	}
	if len(names) != 2 {
		t.Fatalf("terminal replay %v", names)
	}
}

// offlineArtifact computes the same product the service evaluates, from
// a direct core.New run — the independent ground truth of the
// acceptance test.
func offlineArtifact(t *testing.T, r analysis.OutputRequest, step int, evalWorkers int) analysis.Artifact {
	t.Helper()
	sm, err := core.New("sedov", func(o *problems.Opts) {
		o.RootN, o.MaxLevel, o.Workers = 8, 1, 1
	})
	if err != nil {
		t.Fatal(err)
	}
	sm.RunSteps(step + 1)
	n, err := r.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	a, err := n.Evaluate(sm.H, "sedov", step, evalWorkers)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestHTTPArtifactsEndToEnd is the derived-output acceptance test: a job
// submitted with output requests over real HTTP serves artifacts that
// are bitwise identical to the same products computed offline from a
// direct core.New run — at 1 worker and at 4 workers (the grid kernels
// and the analysis reductions are both worker-invariant; sedov has no
// particles, so nothing in the job depends on the worker count).
func TestHTTPArtifactsEndToEnd(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 2, TotalWorkers: 8})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	outputs := []analysis.OutputRequest{
		{Kind: analysis.KindProjection, Field: "rho", Axis: 2, N: 16, NSamp: 16, Every: 1},
		{Kind: analysis.KindSlice, Field: "pressure", N: 16, Format: "json"},
	}
	// Ground truth, computed offline (physics at 1 worker; evaluating
	// the projection at 3 workers double-checks Evaluate's own
	// worker-invariance on the way).
	wantProj := offlineArtifact(t, outputs[0], 1, 3)
	wantSlice := offlineArtifact(t, outputs[1], 1, 1)

	for _, workers := range []int{1, 4} {
		req := Request{Problem: "sedov", RootN: 8, MaxLevel: Int(1), Steps: 2, Workers: workers, Outputs: outputs}
		sub := postJob(t, srv.URL, req)
		res := waitResult(t, srv.URL, sub.ID)
		// The projection fires after both steps; the slice only at the
		// end of the run.
		if res.Artifacts != 3 {
			t.Fatalf("workers=%d: result reports %d artifacts, want 3", workers, res.Artifacts)
		}
		if res.Metrics.ArtifactCount != 3 || res.Metrics.ArtifactBytes == 0 {
			t.Fatalf("workers=%d: artifact metrics %+v", workers, res.Metrics)
		}

		var idx ArtifactIndex
		getJSON(t, srv.URL+"/jobs/"+sub.ID+"/artifacts", &idx)
		if idx.Count != 3 || len(idx.Artifacts) != 3 {
			t.Fatalf("workers=%d: artifact index %+v", workers, idx)
		}
		for got, want := range map[string]analysis.Artifact{
			"00_" + wantProj.Name:  wantProj,
			"01_" + wantSlice.Name: wantSlice,
		} {
			body, contentType := getBody(t, srv.URL+"/jobs/"+sub.ID+"/artifacts/"+got)
			if contentType != want.ContentType {
				t.Fatalf("workers=%d: %s content type %q, want %q", workers, got, contentType, want.ContentType)
			}
			if !bytes.Equal(body, want.Data) {
				t.Fatalf("workers=%d: artifact %s is not bitwise identical to the offline product (%d vs %d bytes)",
					workers, got, len(body), len(want.Data))
			}
		}

		// The artifact events stream replays every product and closes.
		resp, err := http.Get(srv.URL + "/jobs/" + sub.ID + "/artifacts/events")
		if err != nil {
			t.Fatal(err)
		}
		events, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if n := bytes.Count(events, []byte("\n")); n != 3 {
			t.Fatalf("workers=%d: artifact events stream had %d lines:\n%s", workers, n, events)
		}
	}

	// The two worker budgets are distinct job identities: no coalescing
	// happened above.
	if st := s.Stats(); st.Executed != 2 {
		t.Fatalf("%d executions, want 2 (one per worker budget)", st.Executed)
	}
}

// TestSubmitRejectsBadOutputs pins submit-time validation: a bad output
// request is an HTTP 400, not a dead job.
func TestSubmitRejectsBadOutputs(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, TotalWorkers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for _, body := range []string{
		`{"problem":"sedov","outputs":[{"kind":"hologram"}]}`,
		`{"problem":"sedov","outputs":[{"kind":"slice","field":"entropy"}]}`,
		`{"problem":"sedov","outputs":[{"kind":"slice","n":4096}]}`,
	} {
		resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s: %s, want 400", body, resp.Status)
		}
	}
	// Outputs are part of the job identity: same physics, different
	// products, two jobs.
	a, err := s.Submit(Request{Problem: "sedov", RootN: 8, MaxLevel: Int(0), Steps: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(Request{Problem: "sedov", RootN: 8, MaxLevel: Int(0), Steps: 1, Workers: 1,
		Outputs: []analysis.OutputRequest{{Kind: analysis.KindProfile}}})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Fatal("jobs with different output lists share an identity")
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func getBody(t *testing.T, url string) ([]byte, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.Header.Get("Content-Type")
}
