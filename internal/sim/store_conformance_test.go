package sim_test

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/sim/storetest"
)

// TestMemStoreConformance runs the shared Store conformance suite
// against the non-persistent default.
func TestMemStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) sim.Store { return sim.NewMemStore() })
}
