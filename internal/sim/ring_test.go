package sim

import (
	"fmt"
	"testing"
)

func ringPeers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://peer%d:8080", i)
	}
	return out
}

func TestRingAgreementAndBalance(t *testing.T) {
	peers := ringPeers(3)
	a, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A ring built from the same peers in a different order must agree on
	// every owner (peers share only the unordered -peers set).
	b, err := NewRing([]string{peers[2], peers[0], peers[1]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		id := fmt.Sprintf("%016x", i*2654435761)
		oa, ob := a.Owner(id), b.Owner(id)
		if oa != ob {
			t.Fatalf("rings disagree on %s: %s vs %s", id, oa, ob)
		}
		counts[oa]++
	}
	for _, peer := range peers {
		if c := counts[peer]; c < 300 {
			t.Fatalf("ring is badly imbalanced: %v", counts)
		}
	}
}

func TestRingExclusionAndSuccessor(t *testing.T) {
	peers := ringPeers(3)
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("%016x", i*40503)
		owner := r.Owner(id)
		succ := r.Successor(id, owner, nil)
		if succ == owner || succ == "" {
			t.Fatalf("successor of %s for %s is %q", owner, id, succ)
		}
		// The replication invariant: the standby is exactly who becomes
		// owner once the current owner dies.
		after := r.OwnerExcluding(id, map[string]bool{owner: true})
		if after != succ {
			t.Fatalf("takeover owner %s != replication target %s for %s", after, succ, id)
		}
		// Excluding a non-owner never moves ownership.
		other := peers[0]
		if other == owner {
			other = peers[1]
		}
		if other == succ {
			// excluding the successor must keep the owner too
			if got := r.OwnerExcluding(id, map[string]bool{other: true}); got != owner {
				t.Fatalf("excluding standby moved owner of %s: %s", id, got)
			}
		}
	}
	if got := r.OwnerExcluding("deadbeef", map[string]bool{peers[0]: true, peers[1]: true, peers[2]: true}); got != "" {
		t.Fatalf("all-excluded ring returned owner %q", got)
	}
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring built")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate peer accepted")
	}
}

func TestRingSinglePeerOwnsAll(t *testing.T) {
	r, err := NewRing([]string{"http://solo:8080"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Owner("anything"); got != "http://solo:8080" {
		t.Fatalf("single-peer ring owner %q", got)
	}
	if got := r.Successor("anything", "http://solo:8080", nil); got != "" {
		t.Fatalf("single-peer ring has standby %q", got)
	}
}
