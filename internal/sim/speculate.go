package sim

// Speculative execution: when the QoS queue is empty and slots are
// idle, the scheduler pre-warms the result cache with work it predicts
// is coming. Candidates arrive from two planners — explicit sweep
// manifests POSTed up front (PrewarmSweep / POST /sweeps) and
// neighbouring knob values inferred from submission lineage — and are
// ranked cheapest-first by the cost model, confidence-gated, deduped
// against cached results, live jobs and in-flight speculations, and
// bounded by -speculate-slots / -speculate-budget-seconds /
// -speculate-max-seconds. Speculative runs are strictly lowest class:
// they never enter the fair queue, never advance the fair-share vclock
// (their wall seconds go to the separate per-tenant speculative
// ledger), and the moment a real submission is scheduled they are
// cancelled at the next root-step boundary, checkpointed, and resumed
// in the next idle window. A completed speculation lands in the
// ordinary canonical-hash result cache, so the real submission that
// follows is a plain "cache" disposition hit.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sim/costmodel"
)

const (
	// specPendingCap bounds the planner's candidate backlog; beyond it
	// the oldest pending candidate is evicted (sweeps announce intent,
	// they must not grow server memory without bound).
	specPendingCap = 2048
	// specCheckpointCap bounds the in-memory preemption checkpoints a
	// speculator retains (each is a full hierarchy snapshot).
	specCheckpointCap = 32
	// specLineageWindow bounds the recent-submission window the lineage
	// planner scans for an adjacent row.
	specLineageWindow = 32
	// DefaultSpeculateMinConfidence is the cost-model confidence a
	// lineage-inferred candidate needs before it may run; explicit sweep
	// rows are exempt (the client declared the work is coming).
	DefaultSpeculateMinConfidence = 0.25
)

// Candidate provenance, reported nowhere but useful for the
// confidence gate: explicit sweep rows may run without model history,
// lineage guesses may not.
const (
	specSourceSweep   = "sweep"
	specSourceLineage = "lineage"
)

// specCandidate is one planned speculative request.
type specCandidate struct {
	id     string // canonical job ID (resolved.key())
	req    Request
	res    resolved
	tenant string
	source string
	seq    uint64 // arrival order; the deterministic tie-break
}

// specRun is one in-flight speculative execution.
type specRun struct {
	cand   *specCandidate
	est    *costmodel.Estimate
	ctx    context.Context
	cancel context.CancelFunc
}

// lineageEntry is one recently scheduled demand submission the lineage
// planner may extrapolate a neighbour from.
type lineageEntry struct {
	req Request
	res resolved
}

// speculator owns the speculative-execution machinery: the candidate
// backlog, the idle-window workers, the in-memory preemption
// checkpoints, and the counters. It exists (disabled) even when
// Config.Speculate is off, so the scheduler's call sites stay
// branch-free.
//
// Lock order: sp.mu may be taken with s.mu NOT held, and may itself
// take the fair queue's lock (idleLocked → fq.busy). Never take s.mu
// or j.mu while holding sp.mu.
type speculator struct {
	s       *Scheduler
	enabled bool
	slots   int
	budget  float64 // per-tenant speculative wall-second cap (0 = none)
	maxSec  float64 // per-candidate predicted-seconds cap (0 = none)
	minConf float64 // confidence gate for lineage candidates

	// hits counts demand submissions answered from a speculatively
	// computed cached result (updated on the submit path, not under
	// sp.mu).
	hits atomic.Int64

	mu       sync.Mutex
	cond     *sync.Cond
	gen      uint64 // bumped on every state change a worker might act on
	seq      uint64
	pending  []*specCandidate
	byID     map[string]*specCandidate
	inflight map[string]*specRun
	ckpts    map[string]*Checkpoint
	ckptSeq  []string // checkpoint insertion order, for the cap
	dead     map[string]bool
	recent   []lineageEntry
	closed   bool

	started   int64
	completed int64
	preempted int64
	resumed   int64
	failed    int64
	wasted    float64
}

// newSpeculator builds the speculator for cfg (cfg must be
// default-filled). Workers are not started yet — start runs them after
// recovery has re-offered any interrupted speculative manifests.
func newSpeculator(s *Scheduler, cfg Config) *speculator {
	sp := &speculator{
		s:        s,
		enabled:  cfg.Speculate,
		slots:    cfg.SpeculateSlots,
		budget:   cfg.SpeculateBudgetSeconds,
		maxSec:   cfg.SpeculateMaxSeconds,
		minConf:  cfg.SpeculateMinConfidence,
		byID:     map[string]*specCandidate{},
		inflight: map[string]*specRun{},
		ckpts:    map[string]*Checkpoint{},
		dead:     map[string]bool{},
	}
	sp.cond = sync.NewCond(&sp.mu)
	return sp
}

// start launches the idle-window workers (no-op when disabled). They
// register on the scheduler's WaitGroup so shutdown waits for them.
func (sp *speculator) start() {
	if !sp.enabled {
		return
	}
	for i := 0; i < sp.slots; i++ {
		sp.s.wg.Add(1)
		go sp.worker()
	}
}

// close stops the planner: pending candidates are dropped, in-flight
// runs cancelled (they checkpoint at the next root-step boundary), and
// blocked workers released.
func (sp *speculator) close() {
	sp.mu.Lock()
	sp.closed = true
	cancels := make([]context.CancelFunc, 0, len(sp.inflight))
	for _, rn := range sp.inflight {
		cancels = append(cancels, rn.cancel)
	}
	sp.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	sp.cond.Broadcast()
}

// wake nudges the workers to re-examine the world (queue drained, a
// slot freed, the model learned, a candidate arrived).
func (sp *speculator) wake() {
	if sp == nil || !sp.enabled {
		return
	}
	sp.mu.Lock()
	sp.gen++
	sp.mu.Unlock()
	sp.cond.Broadcast()
}

// idleLocked reports whether a speculative run may start right now:
// speculation on, a speculative slot free, nothing queued for demand
// dispatch, and total occupancy (demand running + speculations) below
// the scheduler's slot count — speculation uses idle capacity, it
// never adds any. Callers hold sp.mu; the fair queue's own lock is
// taken inside (sp.mu → q.mu is the allowed order).
func (sp *speculator) idleLocked() bool {
	if !sp.enabled || sp.closed || len(sp.inflight) >= sp.slots {
		return false
	}
	queued, running := sp.s.fq.busy()
	return queued == 0 && running+len(sp.inflight) < sp.s.cfg.MaxConcurrent
}

// add offers a candidate to the planner. It reports whether the
// candidate was accepted (false when speculation is off, the planner is
// closed, the configuration is already live/cached/in flight, or it
// previously failed speculatively).
func (sp *speculator) add(req Request, r resolved, source string) bool {
	if sp == nil || !sp.enabled {
		return false
	}
	id := r.key()
	if _, live := sp.s.Get(id); live {
		return false // already cached, queued or running: nothing to warm
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed || sp.dead[id] {
		return false
	}
	if _, dup := sp.byID[id]; dup {
		return false
	}
	if _, running := sp.inflight[id]; running {
		return false
	}
	if len(sp.pending) >= specPendingCap {
		oldest := sp.pending[0]
		sp.pending = sp.pending[1:]
		delete(sp.byID, oldest.id)
	}
	sp.seq++
	c := &specCandidate{id: id, req: req, res: r, tenant: tenantOf(req), source: source, seq: sp.seq}
	sp.pending = append(sp.pending, c)
	sp.byID[id] = c
	sp.gen++
	sp.cond.Broadcast()
	return true
}

// dropLocked removes a pending candidate; sp.mu must be held.
func (sp *speculator) dropLocked(id string) {
	c := sp.byID[id]
	if c == nil {
		return
	}
	delete(sp.byID, id)
	for i, x := range sp.pending {
		if x == c {
			sp.pending = append(sp.pending[:i], sp.pending[i+1:]...)
			return
		}
	}
}

// worker is one speculative slot: wait for an idle window, claim the
// cheapest viable candidate, run it, repeat until close.
func (sp *speculator) worker() {
	defer sp.s.wg.Done()
	for {
		rn := sp.await()
		if rn == nil {
			return
		}
		sp.run(rn)
	}
}

// await blocks until a candidate is claimed or the planner closes.
// The generation counter prevents a busy spin when every pending
// candidate is gated (confidence, budget): after a failed claim the
// worker sleeps until something observable changes.
func (sp *speculator) await() *specRun {
	for {
		sp.mu.Lock()
		for !sp.closed && (len(sp.pending) == 0 || !sp.idleLocked()) {
			sp.cond.Wait()
		}
		if sp.closed {
			sp.mu.Unlock()
			return nil
		}
		g := sp.gen
		sp.mu.Unlock()
		if rn := sp.tryClaim(); rn != nil {
			return rn
		}
		sp.mu.Lock()
		for !sp.closed && sp.gen == g {
			sp.cond.Wait()
		}
		closed := sp.closed
		sp.mu.Unlock()
		if closed {
			return nil
		}
	}
}

// tryClaim picks the cheapest viable pending candidate and registers
// it in flight. Candidate viability (job-table lookups, cost-model
// estimates) is evaluated with no locks held — the snapshot-unlock-
// choose-relock pattern — then the pick is re-verified under sp.mu.
func (sp *speculator) tryClaim() *specRun {
	sp.mu.Lock()
	if sp.closed || len(sp.pending) == 0 || !sp.idleLocked() {
		sp.mu.Unlock()
		return nil
	}
	cands := make([]*specCandidate, len(sp.pending))
	copy(cands, sp.pending)
	sp.mu.Unlock()

	pick, est, drop := sp.choose(cands)

	sp.mu.Lock()
	defer sp.mu.Unlock()
	for _, id := range drop {
		sp.dropLocked(id)
	}
	if pick == nil || sp.closed || !sp.idleLocked() || sp.byID[pick.id] != pick {
		return nil
	}
	sp.dropLocked(pick.id)
	ctx, cancel := context.WithCancel(sp.s.baseCtx)
	rn := &specRun{cand: pick, est: est, ctx: ctx, cancel: cancel}
	sp.inflight[pick.id] = rn
	sp.started++
	return rn
}

// choose ranks candidates cheapest-first by cost-model estimate and
// applies the planner gates. Returned drop IDs are candidates to
// discard permanently (already live or cached, over the
// -speculate-max-seconds bound, or their tenant's speculative budget is
// exhausted); lineage candidates merely failing the confidence gate
// stay pending for when the model has learned enough. Called with no
// locks held.
func (sp *speculator) choose(cands []*specCandidate) (pick *specCandidate, pickEst *costmodel.Estimate, drop []string) {
	s := sp.s
	best := math.Inf(1)
	for _, c := range cands {
		if _, live := s.Get(c.id); live {
			drop = append(drop, c.id)
			continue
		}
		est := s.model.Estimate(costQuery(c.res))
		if sp.maxSec > 0 && est.Samples > 0 && est.Seconds > sp.maxSec {
			drop = append(drop, c.id)
			continue
		}
		if sp.budget > 0 && s.spend.speculativeSeconds(c.tenant) >= sp.budget {
			drop = append(drop, c.id)
			continue
		}
		if c.source == specSourceLineage && (est.Samples == 0 || est.Confidence < sp.minConf) {
			continue
		}
		cost := defaultQueueCost
		if est.Samples > 0 && est.Seconds > 0 {
			cost = est.Seconds
		}
		if pick == nil || cost < best || (cost == best && c.seq < pick.seq) {
			e := est
			pick, pickEst, best = c, &e, cost
		}
	}
	return pick, pickEst, drop
}

// Speculative-run outcomes, for finishRun's bookkeeping.
const (
	specOutcomeDone = iota
	specOutcomePreempted
	specOutcomeFailed
	specOutcomeShutdown
)

// run executes one claimed speculation on the calling worker. The job
// never touches the fair queue or the demand counters: its seconds are
// charged to the speculative ledger, its state transitions fire no
// replication hooks, and on success it is adopted into the ordinary
// result cache so the demand submission that follows is a cache hit.
func (sp *speculator) run(rn *specRun) {
	s := sp.s
	c := rn.cand
	j := &Job{
		ID:          c.id,
		Req:         c.req,
		Workers:     c.res.opts.Workers,
		StepBudget:  c.res.steps,
		MaxTime:     c.res.maxTime,
		sched:       s,
		res:         c.res,
		doneCh:      make(chan struct{}),
		artifacts:   newArtifactStore(s.cfg.ArtifactBytes, s.cfg.ArtifactCount, s.blobs),
		tenant:      c.tenant,
		est:         rn.est,
		speculative: true,
		submitted:   s.now(),
		started:     s.now(),
		ckptStep:    -1,
		state:       Running,
	}
	s.persist(j, Running.String())
	t0 := s.now()
	res, err := s.evolve(rn.ctx, j)
	elapsed := s.now().Sub(t0).Seconds()
	s.spend.charge(c.tenant, true, elapsed)
	rn.cancel()
	j.mu.Lock()
	resumed := j.resumedFrom != ""
	done := j.stepsDone
	j.mu.Unlock()

	switch {
	case err == nil:
		if serr := s.store.SaveResult(j.ID, res); serr != nil {
			s.noteStoreErr(serr)
		}
		s.trainModel(j, res)
		s.est.observe(j.est, res.Metrics.WallSeconds)
		j.finish(Done, res, nil)
		if s.adoptSpeculative(j) {
			s.persist(j, Done.String())
			if serr := s.store.DeleteCheckpoints(j.ID); serr != nil {
				s.noteStoreErr(serr)
			}
		}
		sp.finishRun(rn, specOutcomeDone, elapsed, resumed)
	case rn.ctx.Err() != nil && s.baseCtx.Err() != nil:
		// Service shutdown. Keep the interrupted manifest only when a
		// checkpoint makes it worth resuming next start; otherwise the
		// record would resurrect cold work forever.
		j.finish(Cancelled, nil, fmt.Errorf("sim: speculative job %s interrupted by shutdown after %d steps", j.ID, done))
		if s.store.Persistent() && sp.checkpointFor(j.ID) != nil {
			s.persist(j, ManifestInterrupted)
		} else if serr := s.store.DeleteJob(j.ID); serr != nil {
			s.noteStoreErr(serr)
		}
		sp.finishRun(rn, specOutcomeShutdown, elapsed, resumed)
	case rn.ctx.Err() != nil:
		// Preempted by a demand arrival: the checkpoint written at the
		// root-step boundary resumes this candidate in the next idle
		// window.
		j.finish(Cancelled, nil, fmt.Errorf("sim: speculative job %s preempted after %d steps", j.ID, done))
		if s.store.Persistent() {
			s.persist(j, ManifestInterrupted)
		}
		sp.finishRun(rn, specOutcomePreempted, elapsed, resumed)
	default:
		j.finish(Failed, nil, err)
		if serr := s.store.DeleteJob(j.ID); serr != nil {
			s.noteStoreErr(serr)
		}
		sp.finishRun(rn, specOutcomeFailed, elapsed, resumed)
	}
}

// finishRun retires an in-flight speculation: counters, wasted-seconds
// accounting (work neither completed nor checkpointed for resume), and
// — for a preemption — the candidate's return to the pending backlog.
func (sp *speculator) finishRun(rn *specRun, outcome int, elapsed float64, resumed bool) {
	id := rn.cand.id
	sp.mu.Lock()
	delete(sp.inflight, id)
	if resumed {
		sp.resumed++
	}
	_, hasCkpt := sp.ckpts[id]
	switch outcome {
	case specOutcomeDone:
		sp.completed++
		sp.forgetCheckpointLocked(id)
	case specOutcomePreempted:
		sp.preempted++
		if !hasCkpt {
			sp.wasted += elapsed
		}
		if !sp.closed && !sp.dead[id] && sp.byID[id] == nil {
			sp.seq++
			c := rn.cand
			c.seq = sp.seq
			sp.pending = append(sp.pending, c)
			sp.byID[id] = c
		}
	case specOutcomeFailed:
		sp.failed++
		sp.wasted += elapsed
		sp.dead[id] = true
		sp.forgetCheckpointLocked(id)
	case specOutcomeShutdown:
		if !hasCkpt {
			sp.wasted += elapsed
		}
	}
	sp.gen++
	sp.mu.Unlock()
	sp.cond.Broadcast()
}

// saveCheckpoint retains a preemption checkpoint in memory so the next
// idle window (or a demand run of the same configuration) resumes warm
// even on a non-persistent store.
func (sp *speculator) saveCheckpoint(id string, step int, data []byte) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if _, ok := sp.ckpts[id]; !ok {
		if len(sp.ckptSeq) >= specCheckpointCap {
			oldest := sp.ckptSeq[0]
			sp.ckptSeq = sp.ckptSeq[1:]
			delete(sp.ckpts, oldest)
		}
		sp.ckptSeq = append(sp.ckptSeq, id)
	}
	sp.ckpts[id] = &Checkpoint{Step: step, Data: data, At: sp.s.now()}
}

// checkpointFor returns the in-memory preemption checkpoint for a job,
// or nil. Safe on a disabled speculator.
func (sp *speculator) checkpointFor(id string) *Checkpoint {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.ckpts[id]
}

// forgetCheckpoint drops a job's in-memory checkpoint (the job reached
// a terminal state through the demand path).
func (sp *speculator) forgetCheckpoint(id string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.forgetCheckpointLocked(id)
}

func (sp *speculator) forgetCheckpointLocked(id string) {
	if _, ok := sp.ckpts[id]; !ok {
		return
	}
	delete(sp.ckpts, id)
	for i, x := range sp.ckptSeq {
		if x == id {
			sp.ckptSeq = append(sp.ckptSeq[:i], sp.ckptSeq[i+1:]...)
			return
		}
	}
}

// preempt cancels every in-flight speculation; each stops at its next
// root-step boundary, checkpoints, and re-enters the pending backlog.
func (sp *speculator) preempt() {
	if sp == nil || !sp.enabled {
		return
	}
	sp.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(sp.inflight))
	for _, rn := range sp.inflight {
		cancels = append(cancels, rn.cancel)
	}
	sp.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// onDemandScheduled observes a fresh demand scheduling: it preempts the
// in-flight speculations (demand traffic owns the slots), retires any
// pending candidate for the same configuration, and extrapolates a
// lineage candidate — when the submission differs from a recent one in
// exactly one knob, the next row of that implied sweep is planned.
func (sp *speculator) onDemandScheduled(req Request, r resolved) {
	if sp == nil || !sp.enabled {
		return
	}
	sp.preempt()
	id := r.key()
	var neighbour *Request
	sp.mu.Lock()
	sp.dropLocked(id)
	for i := len(sp.recent) - 1; i >= 0 && neighbour == nil; i-- {
		neighbour = knobNeighbour(sp.recent[i], req, r)
	}
	sp.recent = append(sp.recent, lineageEntry{req: req, res: r})
	if len(sp.recent) > specLineageWindow {
		sp.recent = sp.recent[1:]
	}
	sp.mu.Unlock()
	if neighbour == nil {
		return
	}
	nr, err := resolve(*neighbour, sp.s.cfg.slotWorkers(), sp.s.cfg.TotalWorkers)
	if err != nil {
		return // the extrapolated knob value resolves to nothing runnable
	}
	sp.add(*neighbour, nr, specSourceLineage)
}

// knobNeighbour extrapolates the next row of an implied sweep: when cur
// differs from prev in exactly one problem knob (same problem, bounds,
// grid, outputs), the returned request continues the arithmetic
// progression prev → cur → next in that knob. Deadline hints do not
// carry over — speculation has no deadline.
func knobNeighbour(prev lineageEntry, curReq Request, cur resolved) *Request {
	p, c := prev.res, cur
	if p.problem != c.problem || p.steps != c.steps || p.maxTime != c.maxTime {
		return nil
	}
	po, co := p.opts, c.opts
	if po.RootN != co.RootN || po.MaxLevel != co.MaxLevel || po.Chemistry != co.Chemistry ||
		po.Workers != co.Workers || po.Seed != co.Seed || po.Solver != co.Solver {
		return nil
	}
	if len(po.Extra) != len(co.Extra) {
		return nil
	}
	key, delta := "", 0.0
	for k, cv := range co.Extra {
		pv, ok := po.Extra[k]
		if !ok {
			return nil // different knob sets: not the same sweep
		}
		if pv != cv {
			if key != "" {
				return nil // two knobs moved: not a single-axis sweep
			}
			key, delta = k, cv-pv
		}
	}
	if key == "" {
		return nil
	}
	next := curReq
	next.DeadlineSeconds = 0
	knobs := make(map[string]float64, len(curReq.Knobs)+1)
	for k, v := range curReq.Knobs {
		knobs[k] = v
	}
	knobs[key] = co.Extra[key] + delta
	next.Knobs = knobs
	return &next
}

// SpeculationStats snapshots the speculative-execution counters for
// /metrics and /healthz.
type SpeculationStats struct {
	// Enabled reports whether the scheduler speculates at all.
	Enabled bool `json:"enabled"`
	// Slots is the speculative worker count; BudgetSeconds the
	// per-tenant speculative wall-second cap (0 = none).
	Slots         int     `json:"slots"`
	BudgetSeconds float64 `json:"budget_seconds"`
	// Pending and Inflight are the current planner backlog and running
	// speculations.
	Pending  int `json:"pending"`
	Inflight int `json:"inflight"`
	// Started counts speculative executions begun; Completed those that
	// ran to a cached result; Preempted those cancelled for demand
	// arrivals; Resumed those that continued from a preemption
	// checkpoint; Failed those that errored.
	Started   int64 `json:"started"`
	Completed int64 `json:"completed"`
	Preempted int64 `json:"preempted"`
	Resumed   int64 `json:"resumed"`
	Failed    int64 `json:"failed"`
	// Hits counts demand submissions answered from a speculatively
	// computed result — the number that justifies all the others.
	Hits int64 `json:"hits"`
	// WastedSeconds totals speculative wall seconds that produced
	// neither a result nor a resumable checkpoint.
	WastedSeconds float64 `json:"wasted_seconds"`
}

// SpeculationStats reports the scheduler's speculative-execution
// counters.
func (s *Scheduler) SpeculationStats() SpeculationStats {
	sp := s.spec
	st := SpeculationStats{
		Enabled:       sp.enabled,
		Slots:         sp.slots,
		BudgetSeconds: sp.budget,
		Hits:          sp.hits.Load(),
	}
	sp.mu.Lock()
	st.Pending = len(sp.pending)
	st.Inflight = len(sp.inflight)
	st.Started = sp.started
	st.Completed = sp.completed
	st.Preempted = sp.preempted
	st.Resumed = sp.resumed
	st.Failed = sp.failed
	st.WastedSeconds = sp.wasted
	sp.mu.Unlock()
	return st
}

// adoptSpeculative registers a completed speculative job in the result
// cache, unless the same configuration became live through the demand
// path while the speculation ran (then the demand execution is
// authoritative and the speculative copy is discarded). Reports whether
// the job was adopted.
func (s *Scheduler) adoptSpeculative(j *Job) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		j.artifacts.release()
		return false
	}
	if _, exists := s.jobs[j.ID]; exists {
		s.mu.Unlock()
		j.artifacts.release()
		return false
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	doomed := s.evictLocked()
	s.mu.Unlock()
	s.reap(doomed)
	return true
}

// spendLedger accumulates observed wall seconds per tenant, demand and
// speculative classes separately. Demand seconds say how -tenant-weights
// should be derived (see GET /tenants); speculative seconds enforce
// -speculate-budget-seconds and never touch the fair-share vclock.
type spendLedger struct {
	mu   sync.Mutex
	rows map[string]*tenantSpendRow
}

type tenantSpendRow struct {
	demandSeconds float64
	specSeconds   float64
	demandJobs    int64
	specJobs      int64
}

// newSpendLedger builds an empty ledger.
func newSpendLedger() *spendLedger {
	return &spendLedger{rows: map[string]*tenantSpendRow{}}
}

// charge bills one completed (or cut-short) execution's wall seconds to
// a tenant. Zero-second executions still count a job — the fake-clock
// suite must see its runs in the ledger.
func (l *spendLedger) charge(tenant string, speculative bool, seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) || math.IsInf(seconds, 0) {
		seconds = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	row := l.rows[tenant]
	if row == nil {
		row = &tenantSpendRow{}
		l.rows[tenant] = row
	}
	if speculative {
		row.specSeconds += seconds
		row.specJobs++
	} else {
		row.demandSeconds += seconds
		row.demandJobs++
	}
}

// speculativeSeconds reports a tenant's accumulated speculative spend.
func (l *spendLedger) speculativeSeconds(tenant string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if row := l.rows[tenant]; row != nil {
		return row.specSeconds
	}
	return 0
}

// TenantSpend is one tenant's historical spend row (GET /tenants): the
// observed demand and speculative wall seconds, job counts, the
// configured fair-share weight, and the current queue depth. Divide a
// tenant's DemandSeconds by the fleet total to derive a proportional
// -tenant-weights entry.
type TenantSpend struct {
	Tenant             string  `json:"tenant"`
	Weight             float64 `json:"weight"`
	DemandSeconds      float64 `json:"demand_seconds"`
	SpeculativeSeconds float64 `json:"speculative_seconds"`
	DemandJobs         int64   `json:"demand_jobs"`
	SpeculativeJobs    int64   `json:"speculative_jobs"`
	Queued             int     `json:"queued"`
}

// TenantSpends reports every tenant's historical spend, sorted by
// tenant name.
func (s *Scheduler) TenantSpends() []TenantSpend {
	queued := map[string]int{}
	if _, per := s.QueueStats(); per != nil {
		queued = per
	}
	s.spend.mu.Lock()
	out := make([]TenantSpend, 0, len(s.spend.rows))
	for name, row := range s.spend.rows {
		w := s.cfg.TenantWeights[name]
		if !(w > 0) {
			w = 1
		}
		out = append(out, TenantSpend{
			Tenant:             name,
			Weight:             w,
			DemandSeconds:      row.demandSeconds,
			SpeculativeSeconds: row.specSeconds,
			DemandJobs:         row.demandJobs,
			SpeculativeJobs:    row.specJobs,
			Queued:             queued[name],
		})
	}
	s.spend.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].Tenant < out[k].Tenant })
	return out
}

// MaxSweepRows caps a single sweep manifest (POST /sweeps): announcing
// intent must stay a small bounded write, like a submission.
const MaxSweepRows = 1024

// SweepRowStatus is one row of a sweep manifest's triage: its canonical
// job ID, how the planner classified it (accepted for speculation,
// already cached, already live, skipped, or invalid), and the cost
// model's estimate — returned even when speculation is off, so clients
// can order their submissions shortest-predicted-first.
type SweepRowStatus struct {
	Index    int                 `json:"index"`
	ID       string              `json:"id,omitempty"`
	Status   string              `json:"status"`
	Error    string              `json:"error,omitempty"`
	Estimate *costmodel.Estimate `json:"estimate,omitempty"`
}

// SweepResponse is the POST /sweeps payload: the per-row triage plus
// how many rows entered the speculation backlog.
type SweepResponse struct {
	Name      string           `json:"name,omitempty"`
	Rows      int              `json:"rows"`
	Accepted  int              `json:"accepted"`
	Speculate bool             `json:"speculate"`
	Results   []SweepRowStatus `json:"results"`
}

// PrewarmSweep announces a sweep's full resolved row list up front so
// idle slots can pre-warm the result cache ahead of the submissions.
// Nothing is scheduled on the demand path: every row is triaged
// (resolve + cache/live lookup + cost estimate) and viable ones enter
// the speculation backlog when speculation is enabled. Rows that fail
// to resolve are reported invalid rather than failing the sweep.
func (s *Scheduler) PrewarmSweep(name string, rows []Request) (SweepResponse, error) {
	if len(rows) == 0 {
		return SweepResponse{}, fmt.Errorf("sim: sweep %q has no rows", name)
	}
	if len(rows) > MaxSweepRows {
		return SweepResponse{}, fmt.Errorf("sim: sweep %q has %d rows, cap %d", name, len(rows), MaxSweepRows)
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return SweepResponse{}, ErrClosed
	}
	resp := SweepResponse{Name: name, Rows: len(rows), Speculate: s.spec.enabled}
	for i, req := range rows {
		row := SweepRowStatus{Index: i}
		r, err := resolve(req, s.cfg.slotWorkers(), s.cfg.TotalWorkers)
		if err != nil {
			row.Status = "invalid"
			row.Error = err.Error()
			resp.Results = append(resp.Results, row)
			continue
		}
		row.ID = r.key()
		est := s.model.Estimate(costQuery(r))
		row.Estimate = &est
		if j, ok := s.Get(row.ID); ok {
			switch st := j.State(); {
			case st == Done:
				row.Status = "cached"
			case !st.terminal():
				row.Status = "live"
			default:
				row.Status = "skipped" // a failed/cancelled record: not worth guessing at
			}
		} else if s.spec.add(req, r, specSourceSweep) {
			row.Status = "accepted"
			resp.Accepted++
		} else {
			row.Status = "skipped"
		}
		resp.Results = append(resp.Results, row)
	}
	return resp, nil
}
