package sim_test

// The distributed acceptance suite, over real TCP: three serve peers
// sharding the canonical request-hash space must place every job on
// exactly one owner, answer reads from any peer (single-hop proxy), and
// — when the owning peer is killed mid-job — resume the job on the
// surviving peer that now owns its hash slice, from the replicated
// checkpoint, to the same final hash and artifact bytes a single-node
// run produces.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/sim/diskstore"
)

// clusterPeer is one member of an in-process test cluster: a real TCP
// listener, a disk store, a scheduler, and the peer layer on top.
type clusterPeer struct {
	url   string
	store *diskstore.Store
	sched *sim.Scheduler
	peer  *sim.Peer
	srv   *httptest.Server
	dead  bool
}

// kill tears the peer down without drain — process-kill semantics: the
// HTTP listener vanishes, running jobs are cut off non-terminally.
func (p *clusterPeer) kill() {
	if p.dead {
		return
	}
	p.dead = true
	p.peer.Close()
	p.srv.Close()
	p.sched.Close()
}

// startCluster brings up n peers on real localhost TCP ports. The
// listeners are bound first so every peer knows the full membership at
// construction time, exactly like a static -peers flag.
func startCluster(t *testing.T, n int) []*clusterPeer {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	peers := make([]*clusterPeer, n)
	for i := range peers {
		store, err := diskstore.New(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		// Identical scheduling config on every member: the canonical ID
		// depends on the resolved worker budget, so peers must agree on it
		// to agree on ownership.
		sched := sim.NewScheduler(durableConfig(store))
		peer, err := sim.NewPeer(sched, sim.PeerConfig{
			Self:      urls[i],
			Peers:     urls,
			PingEvery: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := &httptest.Server{Listener: lns[i], Config: &http.Server{Handler: peer.Handler()}}
		srv.Start()
		peers[i] = &clusterPeer{url: urls[i], store: store, sched: sched, peer: peer, srv: srv}
	}
	t.Cleanup(func() {
		for _, p := range peers {
			p.kill()
		}
	})
	return peers
}

// TestClusterShardedSweepPlacementInvariant submits a parameter sweep
// through rotating entry peers and checks the sharding contract: each
// job registered on exactly one peer (its ring owner), reads answered
// identically from every peer, results bitwise equal to a single-node
// run of the same sweep.
func TestClusterShardedSweepPlacementInvariant(t *testing.T) {
	peers := startCluster(t, 3)

	// The single-node reference for the whole sweep.
	ref := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1})
	defer ref.Close()

	const sweepN = 6
	reqBody := func(i int) string {
		return fmt.Sprintf(`{"problem":"sedov","rootn":8,"maxlevel":0,"steps":2,"workers":1,"knobs":{"e0":%d}}`, 5+i)
	}
	ids := make([]string, sweepN)
	entries := make([]int, sweepN)
	for i := 0; i < sweepN; i++ {
		entries[i] = i % len(peers)
		sub := postJob(t, peers[entries[i]].url, reqBody(i))
		ids[i] = sub.ID
		for k := 0; k < i; k++ {
			if ids[k] == sub.ID {
				t.Fatalf("sweep points %d and %d collided on id %s", k, i, sub.ID)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	owners := make([]int, sweepN)
	expectForwards := 0
	for i, id := range ids {
		// Exactly-one-owner: the job must be registered on one scheduler.
		owners[i] = -1
		for pi, p := range peers {
			if _, ok := p.sched.Get(id); ok {
				if owners[i] >= 0 {
					t.Fatalf("job %s registered on peers %d and %d", id, owners[i], pi)
				}
				owners[i] = pi
			}
		}
		if owners[i] < 0 {
			t.Fatalf("job %s registered nowhere", id)
		}
		if owners[i] != entries[i] {
			expectForwards++
		}
		j, _ := peers[owners[i]].sched.Get(id)
		if _, err := j.Wait(ctx); err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
	}

	// The local GET /jobs lists partition the sweep: their union is the
	// full id set with no duplicates (the cluster view is the union).
	seen := map[string]int{}
	for _, p := range peers {
		var listed []sim.Status
		getJSON(t, p.url+"/jobs", &listed)
		for _, st := range listed {
			seen[st.ID]++
		}
	}
	for _, id := range ids {
		if seen[id] != 1 {
			t.Fatalf("job %s appears in %d local listings, want 1 (%v)", id, seen[id], seen)
		}
	}

	// Placement invariance: every peer answers every job's result with
	// the single-node reference hash (non-owners proxy one hop).
	for i, id := range ids {
		refReq := sim.Request{Problem: "sedov", RootN: 8, MaxLevel: sim.Int(0), Steps: 2, Workers: 1,
			Knobs: map[string]float64{"e0": float64(5 + i)}}
		rj, err := ref.Submit(refReq)
		if err != nil {
			t.Fatal(err)
		}
		if rj.ID != id {
			t.Fatalf("sweep point %d: cluster id %s != single-node id %s", i, id, rj.ID)
		}
		refRes, err := rj.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range peers {
			var res sim.Result
			getJSON(t, p.url+"/jobs/"+id+"/result", &res)
			if res.Hash != refRes.Hash {
				t.Fatalf("job %s via %s: hash %s, single-node %s", id, p.url, res.Hash, refRes.Hash)
			}
		}
	}

	forwards := 0
	for _, p := range peers {
		forwards += int(metricValue(t, p.url, "sim_peer_forwards_total"))
		if m := metricValue(t, p.url, "sim_peer_misdirected_total"); m != 0 {
			t.Fatalf("peer %s served %d misdirected requests", p.url, m)
		}
	}
	if forwards != expectForwards {
		t.Fatalf("cluster forwarded %d submissions, want %d", forwards, expectForwards)
	}
}

// TestClusterKillOwnerResumesElsewhere is the fault-tolerance
// acceptance test: kill the peer that owns a running job after its
// first replicated checkpoint; the survivor that now owns the job's
// hash slice must re-admit it, resume from the replicated checkpoint,
// and finish with the single-node reference hash and artifact bytes.
func TestClusterKillOwnerResumesElsewhere(t *testing.T) {
	peers := startCluster(t, 3)

	// Uninterrupted single-node reference of the same canonical request.
	ref := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1})
	defer ref.Close()
	refSrv := httptest.NewServer(ref.Handler())
	defer refSrv.Close()
	refSub := postJob(t, refSrv.URL, interruptReq)

	sub := postJob(t, peers[0].url, interruptReq)
	if sub.ID != refSub.ID {
		t.Fatalf("canonical identity differs: cluster %s, single-node %s", sub.ID, refSub.ID)
	}

	owner := -1
	for pi, p := range peers {
		if _, ok := p.sched.Get(sub.ID); ok {
			owner = pi
		}
	}
	if owner < 0 {
		t.Fatal("submitted job registered nowhere")
	}

	// Wait until the job is mid-run with at least one checkpoint
	// replicated standby-side: killing before that would test a cold
	// restart, not checkpoint-resume.
	deadline := time.Now().Add(120 * time.Second)
	standby := -1
	for standby < 0 {
		if time.Now().After(deadline) {
			t.Fatal("no replicated checkpoint appeared before completion — job too fast to interrupt")
		}
		var st sim.Status
		getJSON(t, peers[owner].url+"/jobs/"+sub.ID, &st)
		if st.State != "running" && st.State != "queued" {
			t.Fatalf("job reached %s before it could be interrupted", st.State)
		}
		for pi, p := range peers {
			if pi == owner {
				continue
			}
			if ck, err := p.store.LatestCheckpoint(sub.ID); err == nil && ck != nil {
				standby = pi
			}
		}
		time.Sleep(2 * time.Millisecond)
	}

	peers[owner].kill()

	// The standby's ping loop marks the owner dead and takes the job
	// over; it must show up in exactly one surviving scheduler.
	takeoverDeadline := time.Now().Add(30 * time.Second)
	var resumedOn *clusterPeer
	for resumedOn == nil {
		if time.Now().After(takeoverDeadline) {
			t.Fatal("no survivor took the job over")
		}
		for pi, p := range peers {
			if pi == owner {
				continue
			}
			if _, ok := p.sched.Get(sub.ID); ok {
				resumedOn = p
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if peers[standby].url != resumedOn.url {
		t.Fatalf("job resumed on %s, but the replicated checkpoint lives on %s", resumedOn.url, peers[standby].url)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	j, _ := resumedOn.sched.Get(sub.ID)
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("taken-over job failed: %v", err)
	}

	var st sim.Status
	getJSON(t, resumedOn.url+"/jobs/"+sub.ID, &st)
	if !st.Recovered || !strings.HasPrefix(st.ResumedFrom, "checkpoint step ") {
		t.Fatalf("takeover did not resume from a checkpoint: recovered=%v resumed_from=%q", st.Recovered, st.ResumedFrom)
	}
	if n := metricValue(t, resumedOn.url, "sim_peer_takeovers_total"); n != 1 {
		t.Fatalf("new owner reports %d takeovers, want 1", n)
	}

	refJob, ok := ref.Get(refSub.ID)
	if !ok {
		t.Fatal("reference job lost")
	}
	refRes, err := refJob.Wait(ctx)
	if err != nil {
		t.Fatalf("reference run failed: %v", err)
	}
	if res.Hash != refRes.Hash {
		t.Fatalf("taken-over run diverged: hash %s, single-node %s", res.Hash, refRes.Hash)
	}
	if res.Steps != refRes.Steps || res.Time != refRes.Time {
		t.Fatalf("taken-over run bounds differ: %d@%g vs %d@%g", res.Steps, res.Time, refRes.Steps, refRes.Time)
	}

	// Artifact bytes — including the ones produced before the kill,
	// which reached the survivor via replication — must equal the
	// uninterrupted run's, read from the new owner directly and proxied
	// through the remaining peer.
	wantArts := artifactBodies(t, refSrv.URL, refSub.ID)
	if len(wantArts) == 0 {
		t.Fatal("reference run produced no artifacts")
	}
	for _, p := range peers {
		if p.dead {
			continue
		}
		got := artifactBodies(t, p.url, sub.ID)
		if len(got) != len(wantArts) {
			t.Fatalf("artifact set via %s has %d entries, single-node %d", p.url, len(got), len(wantArts))
		}
		for name, want := range wantArts {
			if !bytes.Equal(got[name], want) {
				t.Fatalf("artifact %s via %s differs from the single-node run", name, p.url)
			}
		}
	}
}
