// Package fft provides the pure-Go fast Fourier transforms used by the
// root-grid Poisson solver (periodic gravity, paper §3.3) and by the
// Gaussian-random-field initial conditions generator. Sizes must be powers
// of two; the AMR root grids in this code base always are.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/par"
)

// Plan caches twiddle factors and the bit-reversal permutation for a
// particular power-of-two length. Plans are cheap to build and reusable;
// they are not safe for concurrent use of the same scratch buffers, but
// Forward/Inverse themselves only read plan state, so one plan may be
// shared across goroutines.
type Plan struct {
	n       int
	logn    int
	rev     []int
	twiddle []complex128 // forward twiddles, n/2 entries
}

// NewPlan builds a plan for length n, which must be a power of two >= 1.
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d is not a power of two", n)
	}
	p := &Plan{n: n}
	for 1<<p.logn < n {
		p.logn++
	}
	p.rev = make([]int, n)
	for i := 0; i < n; i++ {
		r := 0
		for b := 0; b < p.logn; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (p.logn - 1 - b)
			}
		}
		p.rev[i] = r
	}
	p.twiddle = make([]complex128, n/2)
	for i := range p.twiddle {
		ang := -2 * math.Pi * float64(i) / float64(n)
		p.twiddle[i] = cmplx.Exp(complex(0, ang))
	}
	return p, nil
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

// Forward computes the in-place forward DFT of x (length n):
// X[k] = sum_j x[j] exp(-2πi jk/n).
func (p *Plan) Forward(x []complex128) { p.transform(x, false) }

// Inverse computes the in-place inverse DFT of x including the 1/n
// normalization, so Inverse(Forward(x)) == x.
func (p *Plan) Inverse(x []complex128) {
	p.transform(x, true)
	inv := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= inv
	}
}

func (p *Plan) transform(x []complex128, inverse bool) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("fft: length mismatch %d != %d", len(x), n))
	}
	for i, r := range p.rev {
		if i < r {
			x[i], x[r] = x[r], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			ti := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[ti]
				if inverse {
					w = cmplx.Conj(w)
				}
				u := x[k]
				v := x[k+half] * w
				x[k] = u + v
				x[k+half] = u - v
				ti += step
			}
		}
	}
}

// Plan3 is a 3-D FFT plan for an nx×ny×nz complex array stored x-fastest.
// Workers bounds the goroutines used for the batched 1-D line transforms
// (par conventions: 0 = NumCPU, 1 = serial); every line is an independent
// transform over disjoint data, so results are bitwise identical at any
// setting. The plan itself is read-only during transforms and may be
// shared across goroutines.
type Plan3 struct {
	Nx, Ny, Nz int
	Workers    int
	px, py, pz *Plan
}

// NewPlan3 builds a 3-D plan; all dimensions must be powers of two.
func NewPlan3(nx, ny, nz int) (*Plan3, error) {
	px, err := NewPlan(nx)
	if err != nil {
		return nil, err
	}
	py, err := NewPlan(ny)
	if err != nil {
		return nil, err
	}
	pz, err := NewPlan(nz)
	if err != nil {
		return nil, err
	}
	return &Plan3{Nx: nx, Ny: ny, Nz: nz, px: px, py: py, pz: pz}, nil
}

// Forward computes the in-place 3-D forward DFT of data (length nx*ny*nz).
func (p *Plan3) Forward(data []complex128) { p.transform3(data, false) }

// Inverse computes the in-place normalized 3-D inverse DFT.
func (p *Plan3) Inverse(data []complex128) {
	p.transform3(data, true)
	inv := complex(1/float64(p.Nx*p.Ny*p.Nz), 0)
	for i := range data {
		data[i] *= inv
	}
}

func (p *Plan3) transform3(data []complex128, inverse bool) {
	nx, ny, nz := p.Nx, p.Ny, p.Nz
	if len(data) != nx*ny*nz {
		panic("fft: 3-D length mismatch")
	}
	w := p.Workers
	// Gather/scatter scratch for the strided y and z passes: one line
	// buffer per worker, sized for either pass.
	bufLen := ny
	if nz > bufLen {
		bufLen = nz
	}
	scratch := par.NewScratch(w, func() []complex128 { return make([]complex128, bufLen) })
	// x lines are contiguous; one chunk per z-plane.
	par.For(w, nz*ny, ny, func(_, lo, hi int) {
		for l := lo; l < hi; l++ {
			line := data[l*nx : (l+1)*nx]
			p.px.transform(line, inverse)
		}
	})
	// y lines: the batch index runs over (k,i) pairs, i fastest.
	par.For(w, nz*nx, nx, func(worker, lo, hi int) {
		buf := scratch.Get(worker)[:ny]
		for l := lo; l < hi; l++ {
			k, i := l/nx, l%nx
			base := k*ny*nx + i
			for j := 0; j < ny; j++ {
				buf[j] = data[base+j*nx]
			}
			p.py.transform(buf, inverse)
			for j := 0; j < ny; j++ {
				data[base+j*nx] = buf[j]
			}
		}
	})
	// z lines over (j,i) pairs.
	stride := ny * nx
	par.For(w, ny*nx, nx, func(worker, lo, hi int) {
		buf := scratch.Get(worker)[:nz]
		for l := lo; l < hi; l++ {
			base := l // j*nx + i
			for k := 0; k < nz; k++ {
				buf[k] = data[base+k*stride]
			}
			p.pz.transform(buf, inverse)
			for k := 0; k < nz; k++ {
				data[base+k*stride] = buf[k]
			}
		}
	})
}
