package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBadLength(t *testing.T) {
	for _, n := range []int{0, -1, 3, 6, 100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d) should fail", n)
		}
	}
}

func TestKnownTransform(t *testing.T) {
	// DFT of [1,0,0,0] is [1,1,1,1].
	p, _ := NewPlan(4)
	x := []complex128{1, 0, 0, 0}
	p.Forward(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-14 {
			t.Errorf("X[%d] = %v, want 1", i, v)
		}
	}
	// DFT of constant signal is a delta at k=0.
	y := []complex128{2, 2, 2, 2}
	p.Forward(y)
	if cmplx.Abs(y[0]-8) > 1e-14 {
		t.Errorf("constant DFT: X[0] = %v, want 8", y[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(y[i]) > 1e-14 {
			t.Errorf("constant DFT: X[%d] = %v, want 0", i, y[i])
		}
	}
}

func TestSingleModeFrequency(t *testing.T) {
	// x[j] = exp(2πi m j / n) transforms to n*delta(k-m).
	n := 32
	p, _ := NewPlan(n)
	m := 5
	x := make([]complex128, n)
	for j := range x {
		x[j] = cmplx.Exp(complex(0, 2*math.Pi*float64(m*j)/float64(n)))
	}
	p.Forward(x)
	for k := range x {
		want := complex(0, 0)
		if k == m {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(x[k]-want) > 1e-10 {
			t.Errorf("X[%d] = %v, want %v", k, x[k], want)
		}
	}
}

func TestRoundTrip1D(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 8, 64, 256} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		p.Forward(x)
		p.Inverse(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-12 {
				t.Fatalf("n=%d round trip failed at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestParseval(t *testing.T) {
	n := 128
	p, _ := NewPlan(n)
	rng := rand.New(rand.NewSource(2))
	x := make([]complex128, n)
	var timeE float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeE += real(x[i] * cmplx.Conj(x[i]))
	}
	p.Forward(x)
	var freqE float64
	for _, v := range x {
		freqE += real(v * cmplx.Conj(v))
	}
	freqE /= float64(n)
	if math.Abs(timeE-freqE) > 1e-9*timeE {
		t.Fatalf("Parseval violated: %v vs %v", timeE, freqE)
	}
}

func TestRoundTrip3D(t *testing.T) {
	p, err := NewPlan3(8, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	n := 8 * 4 * 16
	x := make([]complex128, n)
	orig := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = x[i]
	}
	p.Forward(x)
	p.Inverse(x)
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-12 {
			t.Fatalf("3-D round trip failed at %d", i)
		}
	}
}

func TestPlane3DMode(t *testing.T) {
	// A single 3-D plane wave lands in exactly one bin.
	nx, ny, nz := 8, 8, 8
	p, _ := NewPlan3(nx, ny, nz)
	mx, my, mz := 2, 3, 1
	data := make([]complex128, nx*ny*nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				ph := 2 * math.Pi * (float64(mx*i)/float64(nx) + float64(my*j)/float64(ny) + float64(mz*k)/float64(nz))
				data[(k*ny+j)*nx+i] = cmplx.Exp(complex(0, ph))
			}
		}
	}
	p.Forward(data)
	ntot := float64(nx * ny * nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				v := data[(k*ny+j)*nx+i]
				want := complex(0, 0)
				if i == mx && j == my && k == mz {
					want = complex(ntot, 0)
				}
				if cmplx.Abs(v-want) > 1e-9 {
					t.Fatalf("bin (%d,%d,%d) = %v, want %v", i, j, k, v, want)
				}
			}
		}
	}
}

func TestLinearity(t *testing.T) {
	n := 64
	p, _ := NewPlan(n)
	rng := rand.New(rand.NewSource(4))
	a := make([]complex128, n)
	b := make([]complex128, n)
	sum := make([]complex128, n)
	for i := 0; i < n; i++ {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		sum[i] = 2*a[i] + 3*b[i]
	}
	p.Forward(a)
	p.Forward(b)
	p.Forward(sum)
	for i := 0; i < n; i++ {
		want := 2*a[i] + 3*b[i]
		if cmplx.Abs(sum[i]-want) > 1e-10 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestPropRoundTrip(t *testing.T) {
	p, _ := NewPlan(16)
	f := func(re, im [16]float64) bool {
		x := make([]complex128, 16)
		orig := make([]complex128, 16)
		for i := range x {
			r, m := re[i], im[i]
			if math.IsNaN(r) || math.IsInf(r, 0) {
				r = 0
			}
			if math.IsNaN(m) || math.IsInf(m, 0) {
				m = 0
			}
			r = math.Mod(r, 1e6)
			m = math.Mod(m, 1e6)
			x[i] = complex(r, m)
			orig[i] = x[i]
		}
		p.Forward(x)
		p.Inverse(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFFT1D256(b *testing.B) {
	p, _ := NewPlan(256)
	x := make([]complex128, 256)
	for i := range x {
		x[i] = complex(float64(i), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkFFT3D32(b *testing.B) {
	p, _ := NewPlan3(32, 32, 32)
	x := make([]complex128, 32*32*32)
	for i := range x {
		x[i] = complex(float64(i%17), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}
