package fft

import (
	"math"
	"testing"
)

// TestPlan3ParallelBitwise verifies the batched line transforms give
// bitwise-identical spectra at any worker count, forward and inverse.
func TestPlan3ParallelBitwise(t *testing.T) {
	const nx, ny, nz = 16, 8, 32
	mk := func() []complex128 {
		data := make([]complex128, nx*ny*nz)
		for i := range data {
			fi := float64(i)
			data[i] = complex(math.Sin(0.37*fi)+0.2*fi/1000, math.Cos(0.53*fi))
		}
		return data
	}

	serial := mk()
	ps, _ := NewPlan3(nx, ny, nz)
	ps.Workers = 1
	ps.Forward(serial)

	parallel := mk()
	pp, _ := NewPlan3(nx, ny, nz)
	pp.Workers = 8
	pp.Forward(parallel)

	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("forward spectra differ at %d: %v vs %v", i, serial[i], parallel[i])
		}
	}

	ps.Inverse(serial)
	pp.Inverse(parallel)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("roundtrips differ at %d: %v vs %v", i, serial[i], parallel[i])
		}
	}
}
