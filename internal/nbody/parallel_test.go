package nbody

import (
	"math"
	"testing"

	"repro/internal/ep128"
	"repro/internal/mesh"
)

func scatterParticles(n int) *Particles {
	p := New(n)
	for i := 0; i < n; i++ {
		// Low-discrepancy-ish scatter, clustered toward one corner so
		// worker chunks see unequal cell overlap.
		x := math.Mod(0.13+0.6180339887*float64(i), 1.0)
		y := math.Mod(0.29+0.7548776662*float64(i), 1.0)
		z := math.Mod(0.71+0.5698402910*float64(i), 1.0)
		p.Add(ep128.FromFloat64(x*x), ep128.FromFloat64(y), ep128.FromFloat64(z),
			0, 0, 0, 1.0+0.001*float64(i%7), int64(i))
	}
	return p
}

// TestDepositCICWorkersBitwiseInvariant: the deposit partitions particles
// into fixed chunks (independent of the worker count) and reduces the
// per-chunk buffers in ascending chunk order, so the deposited field is
// bitwise identical at every worker count — the property the distributed
// job service relies on for placement-invariant checksums.
func TestDepositCICWorkersBitwiseInvariant(t *testing.T) {
	const n = 16
	const np = 10000 // several full chunks, plus a ragged tail chunk
	p := scatterParticles(np)
	geom := GridGeom{Dx: 1.0 / n}
	for d := 0; d < 3; d++ {
		geom.Origin[d] = ep128.FromFloat64(0)
	}

	serial := mesh.NewField3(n, n, n, 1)
	cs := DepositCIC(p, serial, geom)
	if cs == 0 {
		t.Fatal("serial deposit touched no particles")
	}

	for _, workers := range []int{1, 2, 4, 8} {
		rho := mesh.NewField3(n, n, n, 1)
		if c := DepositCICWorkers(p, rho, geom, workers); c != cs {
			t.Fatalf("workers=%d deposit count %d, serial %d", workers, c, cs)
		}
		for idx, v := range serial.Data {
			if rho.Data[idx] != v {
				t.Fatalf("workers=%d not bitwise equal to serial at %d: %v vs %v",
					workers, idx, rho.Data[idx], v)
			}
		}
	}

	// Accumulation onto a non-zero field must stay worker-invariant too
	// (the AMR driver deposits several overlapping grids' particles onto
	// the same density field).
	pre1 := mesh.NewField3(n, n, n, 1)
	pre4 := mesh.NewField3(n, n, n, 1)
	for idx := range pre1.Data {
		pre1.Data[idx] = 0.25 * float64(idx%13)
		pre4.Data[idx] = pre1.Data[idx]
	}
	DepositCICWorkers(p, pre1, geom, 1)
	DepositCICWorkers(p, pre4, geom, 4)
	for idx, v := range pre1.Data {
		if pre4.Data[idx] != v {
			t.Fatalf("non-zero-field deposit differs by worker count at %d", idx)
		}
	}

	// Physics sanity: total deposited mass matches the particle mass
	// (the grid has ghosts, so every cloud lands somewhere).
	var ms float64
	for _, v := range serial.Data {
		ms += v
	}
	cellVol := geom.Dx * geom.Dx * geom.Dx
	if want := p.TotalMass(); math.Abs(ms*cellVol-want) > 1e-9*want {
		t.Fatalf("deposited mass %v, particle mass %v", ms*cellVol, want)
	}
}
