package nbody

import (
	"math"
	"testing"

	"repro/internal/ep128"
	"repro/internal/mesh"
)

func scatterParticles(n int) *Particles {
	p := New(n)
	for i := 0; i < n; i++ {
		// Low-discrepancy-ish scatter, clustered toward one corner so
		// worker ranges see unequal cell overlap.
		x := math.Mod(0.13+0.6180339887*float64(i), 1.0)
		y := math.Mod(0.29+0.7548776662*float64(i), 1.0)
		z := math.Mod(0.71+0.5698402910*float64(i), 1.0)
		p.Add(ep128.FromFloat64(x*x), ep128.FromFloat64(y), ep128.FromFloat64(z),
			0, 0, 0, 1.0+0.001*float64(i%7), int64(i))
	}
	return p
}

// TestDepositCICWorkersDeterministic: the parallel deposit partitions
// particles into fixed ranges and reduces the per-range buffers in range
// order, so for a given worker count the result is bitwise reproducible,
// and the total deposited mass matches the serial kernel to round-off.
func TestDepositCICWorkersDeterministic(t *testing.T) {
	const n = 16
	const np = 10000 // enough for 4 full ranges above the parallel gate
	p := scatterParticles(np)
	geom := GridGeom{Dx: 1.0 / n}
	for d := 0; d < 3; d++ {
		geom.Origin[d] = ep128.FromFloat64(0)
	}

	serial := mesh.NewField3(n, n, n, 1)
	cs := DepositCIC(p, serial, geom)

	run := func(workers int) (*mesh.Field3, int) {
		rho := mesh.NewField3(n, n, n, 1)
		c := DepositCICWorkers(p, rho, geom, workers)
		return rho, c
	}

	par1, c1 := run(4)
	par2, c2 := run(4)
	if c1 != cs || c2 != cs {
		t.Fatalf("deposit counts differ: serial %d, parallel %d/%d", cs, c1, c2)
	}
	for idx, v := range par1.Data {
		if par2.Data[idx] != v {
			t.Fatalf("same worker count not bitwise reproducible at %d", idx)
		}
	}

	// Against serial: same cells touched, mass equal to round-off.
	var msSerial, msPar float64
	for idx, v := range serial.Data {
		msSerial += v
		msPar += par1.Data[idx]
		if (v == 0) != (par1.Data[idx] == 0) {
			t.Fatalf("cell support differs at %d: serial %v parallel %v", idx, v, par1.Data[idx])
		}
		if diff := math.Abs(v - par1.Data[idx]); diff > 1e-11*math.Max(1, math.Abs(v)) {
			t.Fatalf("cell %d differs beyond round-off: %v vs %v", idx, v, par1.Data[idx])
		}
	}
	if math.Abs(msSerial-msPar) > 1e-9*msSerial {
		t.Fatalf("total mass differs: %v vs %v", msSerial, msPar)
	}

	// Workers=1 must be the serial kernel exactly.
	one, _ := run(1)
	for idx, v := range serial.Data {
		if one.Data[idx] != v {
			t.Fatalf("workers=1 deposit is not the serial kernel at %d", idx)
		}
	}
}
