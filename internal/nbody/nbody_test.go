package nbody

import (
	"math"
	"testing"

	"repro/internal/ep128"
	"repro/internal/gravity"
	"repro/internal/mesh"
)

func geomUnit(n int) GridGeom {
	return GridGeom{Dx: 1.0 / float64(n)}
}

func TestAddAndValidate(t *testing.T) {
	p := New(4)
	p.Add(ep128.FromFloat64(0.5), ep128.FromFloat64(0.5), ep128.FromFloat64(0.5), 0, 0, 0, 1, 1)
	if p.Len() != 1 {
		t.Fatal("Len != 1")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Mass[0] = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative mass should fail validation")
	}
}

func TestDepositConservesMass(t *testing.T) {
	n := 8
	rho := mesh.NewField3(n, n, n, 2)
	p := New(10)
	// Particles at assorted positions, including near edges.
	pos := [][3]float64{{0.5, 0.5, 0.5}, {0.1, 0.9, 0.3}, {0.01, 0.01, 0.99}, {0.66, 0.33, 0.25}}
	for i, q := range pos {
		p.Add(ep128.FromFloat64(q[0]), ep128.FromFloat64(q[1]), ep128.FromFloat64(q[2]),
			0, 0, 0, float64(i+1), int64(i))
	}
	deposited := DepositCIC(p, rho, geomUnit(n))
	if deposited != 4 {
		t.Fatalf("deposited %d of 4", deposited)
	}
	FoldGhostsPeriodic(rho)
	vol := math.Pow(1.0/float64(n), 3)
	mass := rho.SumActive() * vol
	if math.Abs(mass-p.TotalMass()) > 1e-12*p.TotalMass() {
		t.Fatalf("mass not conserved: %v vs %v", mass, p.TotalMass())
	}
}

func TestDepositCellCentered(t *testing.T) {
	// A particle exactly at a cell center deposits all mass in that cell.
	n := 8
	rho := mesh.NewField3(n, n, n, 2)
	p := New(1)
	// Cell (3,4,5) center is at ((3.5)/8, (4.5)/8, (5.5)/8).
	p.Add(ep128.FromFloat64(3.5/8), ep128.FromFloat64(4.5/8), ep128.FromFloat64(5.5/8), 0, 0, 0, 2.0, 0)
	DepositCIC(p, rho, geomUnit(n))
	vol := math.Pow(1.0/float64(n), 3)
	if got := rho.At(3, 4, 5) * vol; math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("cell-centered deposit = %v, want 2", got)
	}
	// No leakage.
	if rho.SumActive()*vol != rho.At(3, 4, 5)*vol {
		t.Fatal("mass leaked to other cells")
	}
}

func TestInterpMatchesFieldForLinear(t *testing.T) {
	// CIC interpolation of a linearly varying field is exact.
	n := 16
	gx := mesh.NewField3(n, n, n, 2)
	gy := mesh.NewField3(n, n, n, 2)
	gz := mesh.NewField3(n, n, n, 2)
	for k := -2; k < n+2; k++ {
		for j := -2; j < n+2; j++ {
			for i := -2; i < n+2; i++ {
				gx.Set(i, j, k, 2*(float64(i)+0.5))
				gy.Set(i, j, k, -1*(float64(j)+0.5))
				gz.Set(i, j, k, 0.5*(float64(k)+0.5))
			}
		}
	}
	p := New(1)
	p.Add(ep128.FromFloat64(0.3), ep128.FromFloat64(0.7), ep128.FromFloat64(0.123), 0, 0, 0, 1, 0)
	ax, ay, az, ok := InterpCIC(gx, gy, gz, geomUnit(n), p, 0)
	if !ok {
		t.Fatal("interp failed")
	}
	if math.Abs(ax-2*0.3*float64(n)) > 1e-10 {
		t.Errorf("ax = %v, want %v", ax, 2*0.3*float64(n))
	}
	if math.Abs(ay+0.7*float64(n)) > 1e-10 {
		t.Errorf("ay = %v, want %v", ay, -0.7*float64(n))
	}
	if math.Abs(az-0.5*0.123*float64(n)) > 1e-10 {
		t.Errorf("az = %v", az)
	}
}

func TestDriftExtendedPrecision(t *testing.T) {
	// Tiny drifts on top of O(1) positions must not be lost — the EPA
	// requirement of the paper.
	p := New(1)
	p.Add(ep128.FromFloat64(0.75), ep128.FromFloat64(0.5), ep128.FromFloat64(0.5), 1e-18, 0, 0, 1, 0)
	p.Drift(1.0)
	moved := p.X[0].SubFloat(0.75)
	if moved.Float64() != 1e-18 {
		t.Fatalf("drift lost below float64 resolution: %v", moved.Float64())
	}
}

func TestWrapPeriodic(t *testing.T) {
	p := New(2)
	p.Add(ep128.FromFloat64(1.25), ep128.FromFloat64(-0.5), ep128.FromFloat64(0.5), 0, 0, 0, 1, 0)
	p.WrapPeriodic()
	if math.Abs(p.X[0].Float64()-0.25) > 1e-15 {
		t.Errorf("wrap x: %v", p.X[0].Float64())
	}
	if math.Abs(p.Y[0].Float64()-0.5) > 1e-15 {
		t.Errorf("wrap y: %v", p.Y[0].Float64())
	}
}

func TestExpansionDrag(t *testing.T) {
	p := New(1)
	p.Add(ep128.FromFloat64(0.5), ep128.FromFloat64(0.5), ep128.FromFloat64(0.5), 3, -2, 1, 1, 0)
	p.ApplyExpansion(0.5, 2.0)
	f := math.Exp(-1.0)
	if math.Abs(p.Vx[0]-3*f) > 1e-14 || math.Abs(p.Vy[0]+2*f) > 1e-14 {
		t.Fatalf("expansion drag wrong: %v %v", p.Vx[0], p.Vy[0])
	}
}

func TestSelectInBox(t *testing.T) {
	p := New(3)
	for i, x := range []float64{0.1, 0.5, 0.9} {
		p.Add(ep128.FromFloat64(x), ep128.FromFloat64(0.5), ep128.FromFloat64(0.5), 0, 0, 0, 1, int64(i))
	}
	lo := [3]ep128.Dd{ep128.FromFloat64(0.4), ep128.FromFloat64(0), ep128.FromFloat64(0)}
	hi := [3]ep128.Dd{ep128.FromFloat64(0.6), ep128.One, ep128.One}
	sel := p.SelectInBox(lo, hi)
	if len(sel) != 1 || sel[0] != 1 {
		t.Fatalf("SelectInBox = %v", sel)
	}
}

func TestTwoBodyOrbitSymmetry(t *testing.T) {
	// Two equal masses under PM gravity accelerate toward each other with
	// equal magnitude (momentum conservation of the PM force to CIC
	// accuracy).
	n := 32
	rho := mesh.NewField3(n, n, n, 2)
	p := New(2)
	p.Add(ep128.FromFloat64(0.4), ep128.FromFloat64(0.5), ep128.FromFloat64(0.5), 0, 0, 0, 5, 0)
	p.Add(ep128.FromFloat64(0.6), ep128.FromFloat64(0.5), ep128.FromFloat64(0.5), 0, 0, 0, 5, 1)
	geom := geomUnit(n)
	DepositCIC(p, rho, geom)
	FoldGhostsPeriodic(rho)
	phi, err := gravity.SolvePeriodic(rho, geom.Dx, 4*math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	gx, gy, gz := gravity.Accelerations(phi, geom.Dx)
	gx.ApplyPeriodicBC()
	gy.ApplyPeriodicBC()
	gz.ApplyPeriodicBC()
	Kick(p, gx, gy, gz, geom, 0.01)
	if p.Vx[0] <= 0 {
		t.Errorf("left particle should accelerate right: %v", p.Vx[0])
	}
	if p.Vx[1] >= 0 {
		t.Errorf("right particle should accelerate left: %v", p.Vx[1])
	}
	if math.Abs(p.Vx[0]+p.Vx[1]) > 1e-10*math.Abs(p.Vx[0]) {
		t.Errorf("momentum not conserved: %v vs %v", p.Vx[0], p.Vx[1])
	}
	if math.Abs(p.Vy[0]) > 1e-12 || math.Abs(p.Vz[0]) > 1e-12 {
		t.Errorf("spurious transverse kick: %v %v", p.Vy[0], p.Vz[0])
	}
}

func TestKineticEnergy(t *testing.T) {
	p := New(2)
	p.Add(ep128.FromFloat64(0.1), ep128.FromFloat64(0.1), ep128.FromFloat64(0.1), 2, 0, 0, 3, 0)
	p.Add(ep128.FromFloat64(0.2), ep128.FromFloat64(0.2), ep128.FromFloat64(0.2), 0, 1, 0, 4, 1)
	want := 0.5*3*4 + 0.5*4*1
	if math.Abs(p.KineticEnergy()-want) > 1e-14 {
		t.Fatalf("KE = %v, want %v", p.KineticEnergy(), want)
	}
}

func BenchmarkDepositCIC(b *testing.B) {
	n := 32
	rho := mesh.NewField3(n, n, n, 2)
	p := New(1000)
	for i := 0; i < 1000; i++ {
		x := float64(i%97) / 97
		y := float64(i%89) / 89
		z := float64(i%83) / 83
		p.Add(ep128.FromFloat64(x), ep128.FromFloat64(y), ep128.FromFloat64(z), 0, 0, 0, 1, int64(i))
	}
	geom := geomUnit(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DepositCIC(p, rho, geom)
	}
}
