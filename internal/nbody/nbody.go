// Package nbody implements the collisionless dark-matter solver of the
// paper (§3.3): particle trajectories integrated with kick-drift-kick
// leapfrog, coupled to the mesh by cloud-in-cell (CIC) deposit and force
// interpolation — "particle-mesh techniques specially tailored to adaptive
// mesh hierarchies".
//
// Absolute particle positions are stored in 128-bit extended precision
// (ep128.Dd), exactly as the paper requires: at 34 levels of refinement the
// offset between a particle and its cell is ~1e-12 of the box, far below
// float64's resolving power over absolute coordinates. All *relative*
// arithmetic (offsets within a grid) is done in float64 after a single
// extended-precision subtraction, keeping the high-precision operation
// count to a few percent (paper §3.5).
package nbody

import (
	"fmt"
	"math"

	"repro/internal/ep128"
	"repro/internal/mesh"
	"repro/internal/par"
)

// Particles is a structure-of-arrays particle container. Positions are in
// box units [0,1) in extended precision; velocities and masses are code
// units in float64.
type Particles struct {
	X, Y, Z    []ep128.Dd
	Vx, Vy, Vz []float64
	Mass       []float64
	ID         []int64
}

// New allocates an empty container with capacity hint n.
func New(n int) *Particles {
	return &Particles{
		X: make([]ep128.Dd, 0, n), Y: make([]ep128.Dd, 0, n), Z: make([]ep128.Dd, 0, n),
		Vx: make([]float64, 0, n), Vy: make([]float64, 0, n), Vz: make([]float64, 0, n),
		Mass: make([]float64, 0, n), ID: make([]int64, 0, n),
	}
}

// Len returns the particle count.
func (p *Particles) Len() int { return len(p.Mass) }

// Add appends one particle.
func (p *Particles) Add(x, y, z ep128.Dd, vx, vy, vz, mass float64, id int64) {
	p.X = append(p.X, x)
	p.Y = append(p.Y, y)
	p.Z = append(p.Z, z)
	p.Vx = append(p.Vx, vx)
	p.Vy = append(p.Vy, vy)
	p.Vz = append(p.Vz, vz)
	p.Mass = append(p.Mass, mass)
	p.ID = append(p.ID, id)
}

// TotalMass sums the particle masses.
func (p *Particles) TotalMass() float64 {
	var m float64
	for _, v := range p.Mass {
		m += v
	}
	return m
}

// WrapPeriodic maps all positions into [0,1) with extended-precision
// arithmetic.
func (p *Particles) WrapPeriodic() {
	one := ep128.One
	for i := range p.X {
		p.X[i] = wrap01(p.X[i], one)
		p.Y[i] = wrap01(p.Y[i], one)
		p.Z[i] = wrap01(p.Z[i], one)
	}
}

func wrap01(v, one ep128.Dd) ep128.Dd {
	for v.Sign() < 0 {
		v = v.Add(one)
	}
	for !v.Less(one) {
		v = v.Sub(one)
	}
	return v
}

// GridGeom locates a grid within the box: the extended-precision position
// of the low corner of active cell (0,0,0) and the cell width. The paper's
// EPA rule: corners are absolute (128-bit), everything derived from the
// difference (position - corner) is relative (64-bit).
type GridGeom struct {
	Origin [3]ep128.Dd
	Dx     float64
}

// RelPos returns the float64 position of particle i relative to the grid
// origin in units of cells.
func (g GridGeom) RelPos(p *Particles, i int) (x, y, z float64) {
	x = p.X[i].Sub(g.Origin[0]).Float64() / g.Dx
	y = p.Y[i].Sub(g.Origin[1]).Float64() / g.Dx
	z = p.Z[i].Sub(g.Origin[2]).Float64() / g.Dx
	return
}

// DepositCIC adds the particles' mass density (mass per cell volume) onto
// rho with cloud-in-cell weighting. Particles whose cloud extends outside
// the active region deposit into ghost zones; periodic callers fold ghosts
// back with FoldGhostsPeriodic. Returns the number of particles whose
// cloud touched the grid.
//
// DepositCIC is the serial execution of the same fixed-chunk algorithm
// DepositCICWorkers runs in parallel, so the deposited field is bitwise
// identical at every worker count.
func DepositCIC(p *Particles, rho *mesh.Field3, geom GridGeom) int {
	return DepositCICWorkers(p, rho, geom, 1)
}

// depositChunkSize is the fixed particle-chunk width of the CIC deposit.
// The chunk grid depends only on the particle count — never on the
// resolved worker count — which is what makes the deposit placement-
// invariant: chunk c always covers particles [c*size, (c+1)*size), is
// always accumulated into a buffer that starts from zero, and is always
// reduced into rho in ascending chunk order.
const depositChunkSize = 2048

// DepositCICWorkers is DepositCIC with an explicit worker bound (par
// conventions: 0 = NumCPU, 1 = serial). Particles are partitioned into
// fixed chunks of depositChunkSize regardless of the worker count; chunks
// are deposited into per-worker scratch buffers in batches of W and the
// batch is reduced into rho serially in ascending chunk order. Both the
// chunk partition and the reduction order are independent of W and of
// goroutine scheduling, so the result is bitwise identical for every
// worker count — a job's canonical checksum cannot depend on where (or
// how wide) it ran.
func DepositCICWorkers(p *Particles, rho *mesh.Field3, geom GridGeom, workers int) int {
	n := p.Len()
	if n == 0 {
		return 0
	}
	nchunks := (n + depositChunkSize - 1) / depositChunkSize
	w := par.Workers(workers)
	if w > nchunks {
		w = nchunks
	}
	// One scratch grid per worker slot, reused (re-zeroed) across
	// batches, so the live buffer cost is W grid copies, not nchunks.
	bufs := make([]*mesh.Field3, w)
	for s := range bufs {
		bufs[s] = mesh.NewField3(rho.Nx, rho.Ny, rho.Nz, rho.Ng)
	}
	counts := make([]int, w)
	total := 0
	for base := 0; base < nchunks; base += w {
		batch := w
		if batch > nchunks-base {
			batch = nchunks - base
		}
		// Exactly one index per chunk: the batch slot doubles as the
		// buffer id, so results do not depend on which worker claims
		// which chunk.
		par.For(w, batch, 1, func(_, lo, hi int) {
			for s := lo; s < hi; s++ {
				plo := (base + s) * depositChunkSize
				phi := plo + depositChunkSize
				if phi > n {
					phi = n
				}
				counts[s] = depositCICRange(p, bufs[s], geom, plo, phi)
			}
		})
		for s := 0; s < batch; s++ {
			total += counts[s]
			src := bufs[s].Data
			dst := rho.Data
			for i, v := range src {
				if v != 0 {
					dst[i] += v
				}
			}
			if base+batch < nchunks {
				bufs[s].Zero()
			}
		}
	}
	return total
}

// depositCICRange deposits particles [lo, hi) with the CIC kernel.
func depositCICRange(p *Particles, rho *mesh.Field3, geom GridGeom, lo, hi int) int {
	ng := rho.Ng
	invVol := 1 / (geom.Dx * geom.Dx * geom.Dx)
	count := 0
	for i := lo; i < hi; i++ {
		x, y, z := geom.RelPos(p, i)
		fx := x - 0.5
		fy := y - 0.5
		fz := z - 0.5
		i0 := int(math.Floor(fx))
		j0 := int(math.Floor(fy))
		k0 := int(math.Floor(fz))
		wx := fx - float64(i0)
		wy := fy - float64(j0)
		wz := fz - float64(k0)
		if i0 < -ng || i0+1 >= rho.Nx+ng || j0 < -ng || j0+1 >= rho.Ny+ng || k0 < -ng || k0+1 >= rho.Nz+ng {
			continue
		}
		m := p.Mass[i] * invVol
		for dk := 0; dk <= 1; dk++ {
			wk := wz
			if dk == 0 {
				wk = 1 - wz
			}
			for dj := 0; dj <= 1; dj++ {
				wj := wy
				if dj == 0 {
					wj = 1 - wy
				}
				for di := 0; di <= 1; di++ {
					wi := wx
					if di == 0 {
						wi = 1 - wx
					}
					rho.Add(i0+di, j0+dj, k0+dk, m*wi*wj*wk)
				}
			}
		}
		count++
	}
	return count
}

// FoldGhostsPeriodic adds ghost-zone deposits back into the periodic
// active region and zeroes the ghosts (completing a periodic CIC deposit).
func FoldGhostsPeriodic(rho *mesh.Field3) {
	ng := rho.Ng
	wrap := func(v, n int) int {
		v %= n
		if v < 0 {
			v += n
		}
		return v
	}
	for k := -ng; k < rho.Nz+ng; k++ {
		for j := -ng; j < rho.Ny+ng; j++ {
			for i := -ng; i < rho.Nx+ng; i++ {
				inside := i >= 0 && i < rho.Nx && j >= 0 && j < rho.Ny && k >= 0 && k < rho.Nz
				if inside {
					continue
				}
				v := rho.At(i, j, k)
				if v != 0 {
					rho.Add(wrap(i, rho.Nx), wrap(j, rho.Ny), wrap(k, rho.Nz), v)
					rho.Set(i, j, k, 0)
				}
			}
		}
	}
}

// InterpCIC interpolates the acceleration fields to particle i's position
// with the same CIC kernel used for deposit (ensuring no self-force).
func InterpCIC(gx, gy, gz *mesh.Field3, geom GridGeom, p *Particles, i int) (ax, ay, az float64, ok bool) {
	ng := gx.Ng
	x, y, z := geom.RelPos(p, i)
	fx := x - 0.5
	fy := y - 0.5
	fz := z - 0.5
	i0 := int(math.Floor(fx))
	j0 := int(math.Floor(fy))
	k0 := int(math.Floor(fz))
	wx := fx - float64(i0)
	wy := fy - float64(j0)
	wz := fz - float64(k0)
	if i0 < -ng || i0+1 >= gx.Nx+ng || j0 < -ng || j0+1 >= gx.Ny+ng || k0 < -ng || k0+1 >= gx.Nz+ng {
		return 0, 0, 0, false
	}
	for dk := 0; dk <= 1; dk++ {
		wk := wz
		if dk == 0 {
			wk = 1 - wz
		}
		for dj := 0; dj <= 1; dj++ {
			wj := wy
			if dj == 0 {
				wj = 1 - wy
			}
			for di := 0; di <= 1; di++ {
				wi := wx
				if di == 0 {
					wi = 1 - wx
				}
				w := wi * wj * wk
				ax += w * gx.At(i0+di, j0+dj, k0+dk)
				ay += w * gy.At(i0+di, j0+dj, k0+dk)
				az += w * gz.At(i0+di, j0+dj, k0+dk)
			}
		}
	}
	return ax, ay, az, true
}

// Kick applies a velocity kick from the acceleration fields over dt to all
// particles inside the grid.
func Kick(p *Particles, gx, gy, gz *mesh.Field3, geom GridGeom, dt float64) {
	for i := 0; i < p.Len(); i++ {
		ax, ay, az, ok := InterpCIC(gx, gy, gz, geom, p, i)
		if !ok {
			continue
		}
		p.Vx[i] += ax * dt
		p.Vy[i] += ay * dt
		p.Vz[i] += az * dt
	}
}

// Drift advances positions by v*dt in extended precision (velocities are
// in box units per code time).
func (p *Particles) Drift(dt float64) {
	for i := range p.X {
		p.X[i] = p.X[i].AddFloat(p.Vx[i] * dt)
		p.Y[i] = p.Y[i].AddFloat(p.Vy[i] * dt)
		p.Z[i] = p.Z[i].AddFloat(p.Vz[i] * dt)
	}
}

// ApplyExpansion applies the comoving expansion drag dv/dt = -(ȧ/a)v.
func (p *Particles) ApplyExpansion(adotOverA, dt float64) {
	f := math.Exp(-adotOverA * dt)
	for i := range p.Vx {
		p.Vx[i] *= f
		p.Vy[i] *= f
		p.Vz[i] *= f
	}
}

// KineticEnergy returns the total kinetic energy (1/2 m v²).
func (p *Particles) KineticEnergy() float64 {
	var e float64
	for i := range p.Vx {
		e += 0.5 * p.Mass[i] * (p.Vx[i]*p.Vx[i] + p.Vy[i]*p.Vy[i] + p.Vz[i]*p.Vz[i])
	}
	return e
}

// SelectInBox returns the indices of particles inside the extended-
// precision box [lo, hi) per dimension.
func (p *Particles) SelectInBox(lo, hi [3]ep128.Dd) []int {
	var out []int
	for i := 0; i < p.Len(); i++ {
		if lo[0].LessEq(p.X[i]) && p.X[i].Less(hi[0]) &&
			lo[1].LessEq(p.Y[i]) && p.Y[i].Less(hi[1]) &&
			lo[2].LessEq(p.Z[i]) && p.Z[i].Less(hi[2]) {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks container consistency.
func (p *Particles) Validate() error {
	n := p.Len()
	if len(p.X) != n || len(p.Y) != n || len(p.Z) != n ||
		len(p.Vx) != n || len(p.Vy) != n || len(p.Vz) != n || len(p.ID) != n {
		return fmt.Errorf("nbody: ragged particle arrays")
	}
	for i, m := range p.Mass {
		if m < 0 || math.IsNaN(m) {
			return fmt.Errorf("nbody: bad mass %g at %d", m, i)
		}
	}
	return nil
}
