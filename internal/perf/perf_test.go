package perf

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/amr"
)

func TestUsageTable(t *testing.T) {
	tm := amr.Timing{
		Hydro:     360 * time.Millisecond,
		Gravity:   170 * time.Millisecond,
		Chemistry: 110 * time.Millisecond,
		NBody:     10 * time.Millisecond,
		Rebuild:   90 * time.Millisecond,
		Boundary:  150 * time.Millisecond,
		Other:     110 * time.Millisecond,
	}
	rows := UsageTable(tm)
	if len(rows) != 7 {
		t.Fatalf("rows %d", len(rows))
	}
	var sum float64
	for _, r := range rows {
		sum += r.Fraction
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("fractions sum to %v", sum)
	}
	if rows[0].Component != "hydrodynamics" {
		t.Errorf("largest component %q, want hydrodynamics", rows[0].Component)
	}
	s := FormatUsageTable(rows)
	if !strings.Contains(s, "hydrodynamics") || !strings.Contains(s, "36 %") {
		t.Errorf("format output:\n%s", s)
	}
	if UsageTable(amr.Timing{}) != nil {
		t.Error("empty timing should give nil table")
	}
}

func TestEstimateFlops(t *testing.T) {
	s := amr.Stats{CellUpdates: 1000, ChemCellCalls: 500, ParticleKicks: 200}
	f := EstimateFlops(s)
	want := 1000.0*(FlopsPerHydroCellStep+FlopsPerGravityCell) + 500*FlopsPerChemCellCall + 200*FlopsPerParticleKick
	if f != want {
		t.Fatalf("flops %v, want %v", f, want)
	}
	if SustainedRate(f, 2) != f/2 {
		t.Error("sustained rate wrong")
	}
	if SustainedRate(f, 0) != 0 {
		t.Error("zero time should give zero rate")
	}
}

func TestPaperVirtualExercise(t *testing.T) {
	ops, rate := PaperVirtualExercise()
	// The paper: ~1e50 operations, ~1e44 flop/s.
	if math.Abs(math.Log10(ops)-50) > 0.5 {
		t.Errorf("virtual ops 1e%.1f, paper says ~1e50", math.Log10(ops))
	}
	if math.Abs(math.Log10(rate)-44) > 0.5 {
		t.Errorf("virtual rate 1e%.1f, paper says ~1e44", math.Log10(rate))
	}
}

func TestSpeedupVsUniform(t *testing.T) {
	s := amr.Stats{CellUpdates: 1 << 20}
	sp := SpeedupVsUniform(s, 1024, 100)
	want := math.Pow(1024, 3) * 100 / float64(1<<20)
	if math.Abs(sp-want)/want > 1e-12 {
		t.Fatalf("speedup %v, want %v", sp, want)
	}
	if SpeedupVsUniform(amr.Stats{}, 10, 10) != 0 {
		t.Error("zero updates should give 0")
	}
}
