package perf

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/amr"
)

func TestCollectJobMetrics(t *testing.T) {
	stats := amr.Stats{StepsTaken: 4, CellUpdates: 1000, ChemCellCalls: 50, ParticleKicks: 7,
		GridsCreated: 3, RebuildCount: 2}
	var timing amr.Timing
	timing.Hydro = 2 * time.Second
	timing.Boundary = time.Second
	m := CollectJobMetrics(stats, timing, 4*time.Second)

	if m.WallSeconds != 4 || m.StepsTaken != 4 || m.CellUpdates != 1000 {
		t.Fatalf("counters wrong: %+v", m)
	}
	if m.EstimatedFlops != EstimateFlops(stats) || m.SustainedRate != m.EstimatedFlops/4 {
		t.Fatalf("flop accounting wrong: %+v", m)
	}
	if m.ComponentSeconds["hydrodynamics"] != 2 || m.ComponentSeconds["boundary conditions"] != 1 {
		t.Fatalf("component seconds wrong: %+v", m.ComponentSeconds)
	}
	if _, ok := m.ComponentSeconds["N-body"]; ok {
		t.Fatal("zero components must be omitted")
	}

	// The struct is the wire format of the job API: it must round-trip
	// through JSON without losing fields.
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back JobMetrics
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.CellUpdates != m.CellUpdates || back.ComponentSeconds["hydrodynamics"] != 2 {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}

func TestCollectJobMetricsPerOp(t *testing.T) {
	var timing amr.Timing
	timing.PerOp = map[string]time.Duration{"hydro.sweep": 3 * time.Second}
	m := CollectJobMetrics(amr.Stats{}, timing, 0)
	if m.OperatorSeconds["hydro.sweep"] != 3 {
		t.Fatalf("per-op seconds wrong: %+v", m.OperatorSeconds)
	}
	if m.SustainedRate != 0 {
		t.Fatal("zero wall must give zero rate")
	}
}
