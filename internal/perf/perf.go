// Package perf reproduces the performance accounting of the paper's §5:
// the component-usage table (hydro / Poisson / chemistry / N-body /
// rebuild / boundary / other fractions of compute time), floating-point
// operation estimates per module, and the "virtual flop rate" exercise —
// the cost a traditional static-grid code would have paid for the same
// resolved volume.
package perf

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/amr"
)

// Flop-cost models per unit of work, calibrated to the operation counts of
// the underlying kernels (PPM ~ a few hundred flops per cell per sweep,
// multigrid ~ tens per cell per smoothing pass, the 12-species network a
// few hundred per sub-cycle).
const (
	FlopsPerHydroCellStep = 1800 // 3 sweeps x (reconstruction+Riemann+update)
	FlopsPerGravityCell   = 400  // V-cycles amortized per cell per solve
	FlopsPerChemCellCall  = 900  // rates + BE update, amortized sub-cycles
	FlopsPerParticleKick  = 120  // CIC interp + KDK
)

// UsageRow is one line of the §5 component table.
type UsageRow struct {
	Component string
	Fraction  float64
}

// UsageTable converts accumulated component timings into the paper's
// fractional usage table, largest first.
func UsageTable(t amr.Timing) []UsageRow {
	total := t.Total()
	if total <= 0 {
		return nil
	}
	rows := []UsageRow{
		{"hydrodynamics", float64(t.Hydro) / float64(total)},
		{"Poisson solver", float64(t.Gravity) / float64(total)},
		{"chemistry & cooling", float64(t.Chemistry) / float64(total)},
		{"N-body", float64(t.NBody) / float64(total)},
		{"hierarchy rebuild", float64(t.Rebuild) / float64(total)},
		{"boundary conditions", float64(t.Boundary) / float64(total)},
		{"other overhead", float64(t.Other) / float64(total)},
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Fraction > rows[j].Fraction })
	return rows
}

// FormatUsageTable renders the table in the paper's two-column layout.
func FormatUsageTable(rows []UsageRow) string {
	var sb strings.Builder
	sb.WriteString("component            usage\n")
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-20s %3.0f %%\n", r.Component, 100*r.Fraction))
	}
	return sb.String()
}

// FormatOperatorTable renders the per-operator wall-clock breakdown the
// physics pipeline accumulates (Timing.PerOp), largest first — the
// finer-grained companion of the §5 component table.
func FormatOperatorTable(t amr.Timing) string {
	names := make([]string, 0, len(t.PerOp))
	for n := range t.PerOp {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if t.PerOp[names[i]] != t.PerOp[names[j]] {
			return t.PerOp[names[i]] > t.PerOp[names[j]]
		}
		return names[i] < names[j]
	})
	var rows strings.Builder
	for _, n := range names {
		// Inert operators (guarded no-ops on this problem) accumulate
		// nanoseconds; hide rows that round to zero.
		if d := t.PerOp[n].Round(10 * time.Microsecond); d > 0 {
			rows.WriteString(fmt.Sprintf("%-20s %s\n", n, d))
		}
	}
	if rows.Len() == 0 {
		return ""
	}
	return "operator             time\n" + rows.String()
}

// EstimateFlops converts the hierarchy's work counters into a total
// floating-point operation estimate (the instrumented-module approach the
// paper describes as "a future project" — each module reports its count).
func EstimateFlops(s amr.Stats) float64 {
	return float64(s.CellUpdates)*FlopsPerHydroCellStep +
		float64(s.CellUpdates)*FlopsPerGravityCell +
		float64(s.ChemCellCalls)*FlopsPerChemCellCall +
		float64(s.ParticleKicks)*FlopsPerParticleKick
}

// SustainedRate returns flops/seconds.
func SustainedRate(flops, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return flops / seconds
}

// VirtualFlopRate reproduces the paper's §5 exercise: a static uniform
// grid matching the finest AMR resolution would need sdr³ cells updated
// for `steps` timesteps at flopsPerCell each; dividing by the actual wall
// time gives the effective rate the adaptive calculation achieved. For the
// paper's numbers (sdr=1e12, steps=1e10, ~1e6 s) this yields ~1e44 flop/s
// from ~1e50 operations.
func VirtualFlopRate(sdr, steps, flopsPerCell, wallSeconds float64) (ops, rate float64) {
	ops = math.Pow(sdr, 3) * steps * flopsPerCell
	if wallSeconds > 0 {
		rate = ops / wallSeconds
	}
	return
}

// PaperVirtualExercise evaluates the exact numbers quoted in §5: 10^12
// cells per side, 10^10 timesteps, ~10^50 operations over ~10^6 seconds
// giving ~10^44 flop/s.
func PaperVirtualExercise() (ops, rate float64) {
	// The paper's 1e50 total implies ~1e4 flops/cell/step in their
	// accounting; use that constant for the reproduction.
	return VirtualFlopRate(1e12, 1e10, 1e4, 1e6)
}

// SpeedupVsUniform returns how many times cheaper the adaptive run was
// than the equivalent uniform-grid run, comparing actual cell updates to
// the uniform requirement.
func SpeedupVsUniform(s amr.Stats, sdr float64, steps float64) float64 {
	if s.CellUpdates == 0 {
		return 0
	}
	uniform := math.Pow(sdr, 3) * steps
	return uniform / float64(s.CellUpdates)
}
