package perf

import (
	"sort"
	"time"

	"repro/internal/amr"
)

// JobMetrics is the JSON-exportable per-run performance snapshot the sim
// job service attaches to every result and enzobatch writes per sweep
// row: the §5 accounting (component seconds, per-operator seconds, flop
// estimate and sustained rate) flattened into plain numbers.
type JobMetrics struct {
	WallSeconds    float64 `json:"wall_seconds"`
	StepsTaken     int     `json:"steps_taken"`
	CellUpdates    int64   `json:"cell_updates"`
	ChemCellCalls  int64   `json:"chem_cell_calls"`
	ParticleKicks  int64   `json:"particle_kicks"`
	GridsCreated   int64   `json:"grids_created"`
	Rebuilds       int     `json:"rebuilds"`
	EstimatedFlops float64 `json:"estimated_flops"`
	SustainedRate  float64 `json:"sustained_rate"`
	// AnalysisSeconds is the wall-clock spent evaluating derived-output
	// requests (slices, projections, profiles, ...) at root-step
	// boundaries — in-flight data products, billed separately from the
	// physics above. ArtifactCount/ArtifactBytes describe what the job's
	// artifact store retained. Zero for jobs with no output requests;
	// filled by the sim scheduler, not CollectJobMetrics.
	AnalysisSeconds float64 `json:"analysis_seconds,omitempty"`
	ArtifactCount   int     `json:"artifact_count,omitempty"`
	ArtifactBytes   int     `json:"artifact_bytes,omitempty"`
	// ComponentSeconds maps the §5 usage-table rows (hydrodynamics,
	// Poisson solver, ...) to wall seconds.
	ComponentSeconds map[string]float64 `json:"component_seconds,omitempty"`
	// OperatorSeconds maps pipeline operator names (hydro.sweep,
	// gravity.solve, ...) to wall seconds — the Timing.PerOp breakdown.
	OperatorSeconds map[string]float64 `json:"operator_seconds,omitempty"`
}

// OpSeconds returns the per-operator wall-second breakdown plus an
// "other" entry holding the non-negative residual between the total
// wall clock and the sum of operator timings, so the parts always add
// up to (at least) the whole. It returns nil when the run recorded no
// operator breakdown — callers fall back to WallSeconds. The residual
// is summed in sorted-key order: float addition is not associative, so
// map-order summation would make "other" differ by an ulp between a
// live run and the same metrics decoded from the store — and the cost
// model's recovery backfill dedupes by exact sample equality.
func (m JobMetrics) OpSeconds() map[string]float64 {
	if len(m.OperatorSeconds) == 0 {
		return nil
	}
	names := make([]string, 0, len(m.OperatorSeconds))
	for name := range m.OperatorSeconds {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]float64, len(names)+1)
	sum := 0.0
	for _, name := range names {
		s := m.OperatorSeconds[name]
		out[name] = s
		sum += s
	}
	if rest := m.WallSeconds - sum; rest > 0 {
		out["other"] = rest
	}
	return out
}

// CollectJobMetrics assembles a JobMetrics from a run's accumulated
// counters, component timings and total evolution wall time.
func CollectJobMetrics(stats amr.Stats, timing amr.Timing, wall time.Duration) JobMetrics {
	m := JobMetrics{
		WallSeconds:    wall.Seconds(),
		StepsTaken:     stats.StepsTaken,
		CellUpdates:    stats.CellUpdates,
		ChemCellCalls:  stats.ChemCellCalls,
		ParticleKicks:  stats.ParticleKicks,
		GridsCreated:   stats.GridsCreated,
		Rebuilds:       stats.RebuildCount,
		EstimatedFlops: EstimateFlops(stats),
	}
	m.SustainedRate = SustainedRate(m.EstimatedFlops, m.WallSeconds)
	comp := map[string]float64{
		"hydrodynamics":       timing.Hydro.Seconds(),
		"Poisson solver":      timing.Gravity.Seconds(),
		"chemistry & cooling": timing.Chemistry.Seconds(),
		"N-body":              timing.NBody.Seconds(),
		"hierarchy rebuild":   timing.Rebuild.Seconds(),
		"boundary conditions": timing.Boundary.Seconds(),
		"other overhead":      timing.Other.Seconds(),
	}
	for k, v := range comp {
		if v == 0 {
			delete(comp, k)
		}
	}
	if len(comp) > 0 {
		m.ComponentSeconds = comp
	}
	if len(timing.PerOp) > 0 {
		m.OperatorSeconds = make(map[string]float64, len(timing.PerOp))
		for name, d := range timing.PerOp {
			m.OperatorSeconds[name] = d.Seconds()
		}
	}
	return m
}
