package par

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 7, 100, 1023} {
			hits := make([]int32, n)
			For(workers, n, 3, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, c := range hits {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForWorkerIDsDense(t *testing.T) {
	const workers = 4
	seen := make([]int32, workers) // Get via index panics on an id outside [0, workers)
	var total int32
	For(workers, 1000, 1, func(w, lo, hi int) {
		atomic.AddInt32(&seen[w], 1)
		atomic.AddInt32(&total, int32(hi-lo))
	})
	if total != 1000 {
		t.Fatalf("chunks covered %d indices, want 1000", total)
	}
}

func TestForSerialInline(t *testing.T) {
	// workers=1 must run on the calling goroutine as one chunk.
	calls := 0
	For(1, 50, 3, func(w, lo, hi int) {
		calls++
		if w != 0 || lo != 0 || hi != 50 {
			t.Fatalf("serial path got (w=%d, lo=%d, hi=%d)", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("serial path made %d calls, want 1", calls)
	}
}

func TestForPanicPropagates(t *testing.T) {
	// Both the pooled and the inline path must re-raise a WorkerPanic
	// preserving the original value, so panic identity does not depend
	// on the worker count.
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				wp, ok := r.(WorkerPanic)
				if !ok {
					t.Fatalf("workers=%d: panic value %T is not a WorkerPanic", workers, r)
				}
				if wp.Value != "boom" {
					t.Fatalf("workers=%d: original panic value lost: %v", workers, wp.Value)
				}
				if !strings.Contains(wp.String(), "boom") || wp.Stack == "" {
					t.Fatalf("workers=%d: WorkerPanic lost message or stack", workers)
				}
			}()
			For(workers, 100, 1, func(_, lo, hi int) {
				if lo <= 42 && 42 < hi {
					panic("boom")
				}
			})
		}()
	}
}

func TestForNested(t *testing.T) {
	var total atomic.Int64
	For(4, 10, 1, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			For(4, 10, 1, func(_, lo2, hi2 int) {
				total.Add(int64(hi2 - lo2))
			})
		}
	})
	if total.Load() != 100 {
		t.Fatalf("nested For covered %d indices, want 100", total.Load())
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Errorf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d, want 5", got)
	}
}

func TestScratchReusePerWorker(t *testing.T) {
	made := atomic.Int32{}
	s := NewScratch(4, func() []float64 {
		made.Add(1)
		return make([]float64, 8)
	})
	// Repeated gets from the same worker id return the same slice.
	a := s.Get(2)
	b := s.Get(2)
	if &a[0] != &b[0] {
		t.Fatal("Scratch.Get did not reuse the worker slot")
	}
	if made.Load() != 1 {
		t.Fatalf("mk called %d times, want 1", made.Load())
	}
	// Distinct workers get distinct values.
	if c := s.Get(0); &c[0] == &a[0] {
		t.Fatal("worker slots alias each other")
	}
}

func TestScratchUnderFor(t *testing.T) {
	const workers = 4
	s := NewScratch(workers, func() *int64 { return new(int64) })
	For(workers, 1000, 1, func(w, lo, hi int) {
		*s.Get(w) += int64(hi - lo)
	})
	var total int64
	for w := 0; w < workers; w++ {
		total += *s.Get(w)
	}
	if total != 1000 {
		t.Fatalf("per-worker accumulation lost work: %d != 1000", total)
	}
}
