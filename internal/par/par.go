// Package par is the shared data-parallel execution engine of the code
// base. Every hot kernel — the hydro pencil sweeps, multigrid smoothing,
// the batched 3-D FFT line transforms, the per-cell chemistry solver and
// the CIC particle deposit — expresses its inner loop as a call to For,
// which partitions an index range over a bounded set of worker goroutines
// with dynamic chunk stealing.
//
// Worker identity is exposed as a dense id in [0, workers), so kernels can
// keep per-worker scratch buffers (see Scratch) without locking: at any
// moment a worker id is owned by exactly one goroutine.
//
// Conventions for the Workers knob used throughout the repository:
//
//	0  → runtime.NumCPU() (the production default)
//	1  → serial (runs inline on the calling goroutine, no goroutines spawned)
//	n  → exactly n workers
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a Workers knob: values <= 0 mean runtime.NumCPU().
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// For runs body over the index range [0, n), partitioned into chunks of
// the given size that are claimed dynamically by up to `workers` worker
// goroutines. body receives its worker id (dense in [0, workers)) and a
// half-open index range [lo, hi) to process.
//
// chunk <= 0 selects a default of roughly four chunks per worker, which
// absorbs moderate per-index cost imbalance without shredding cache
// locality. workers <= 0 resolves to runtime.NumCPU(); a resolved worker
// count of 1 (or n small enough for a single chunk) runs body inline on
// the calling goroutine with worker id 0.
//
// A panic in body is captured and re-raised on the calling goroutine once
// all workers have drained, wrapped in a WorkerPanic carrying the original
// value plus the worker's stack. The inline path wraps identically, so
// panic identity does not depend on the worker count. Nested calls are
// safe: each For spawns its own goroutines and shares nothing with
// enclosing calls.
func For(workers, n, chunk int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if chunk <= 0 {
		chunk = (n + workers*4 - 1) / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
	}
	nchunks := (n + chunk - 1) / chunk
	if workers > nchunks {
		workers = nchunks
	}
	if workers <= 1 {
		defer rewrapPanic(0)
		body(0, 0, n)
		return
	}

	var next atomic.Int64
	var panicked atomic.Bool
	var panicVal atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if panicked.CompareAndSwap(false, true) {
						wp, ok := r.(WorkerPanic) // nested For already wrapped it
						if !ok {
							wp = WorkerPanic{Worker: w, Value: r, Stack: string(debug.Stack())}
						}
						panicVal.Store(wp)
					}
					// Poison the counter so peers stop claiming work.
					next.Store(int64(nchunks))
				}
			}()
			for !panicked.Load() {
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				body(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal.Load())
	}
}

// WorkerPanic is the value re-raised by For when a body panics: the
// original panic value is preserved (callers that recover can inspect
// Value) together with the failing worker id and its stack.
type WorkerPanic struct {
	Worker int
	Value  any
	Stack  string
}

// String renders the panic with the worker's original stack trace.
func (p WorkerPanic) String() string {
	return fmt.Sprintf("par.For worker %d: %v\n%s", p.Worker, p.Value, p.Stack)
}

// rewrapPanic gives the inline (single-worker) path the same panic shape
// as the pooled path.
func rewrapPanic(worker int) {
	if r := recover(); r != nil {
		if wp, ok := r.(WorkerPanic); ok {
			panic(wp) // nested For already wrapped it
		}
		panic(WorkerPanic{Worker: worker, Value: r, Stack: string(debug.Stack())})
	}
}

// Scratch holds one lazily created value per worker slot, for gather/
// scatter buffers and similar per-worker working memory that must not be
// shared between concurrently running bodies.
//
// Get must only be called with the worker id passed to a For body (each id
// is owned by one goroutine at a time, so no locking is needed). Note that
// dynamic chunk stealing makes the chunk→worker assignment scheduling-
// dependent: deterministic floating-point reductions must key buffers by
// range id instead (see nbody.DepositCICWorkers), not by worker id.
type Scratch[T any] struct {
	mk    func() T
	slots []*T
}

// NewScratch returns a Scratch with capacity for `workers` slots, each
// filled on first Get by mk.
func NewScratch[T any](workers int, mk func() T) *Scratch[T] {
	return &Scratch[T]{mk: mk, slots: make([]*T, Workers(workers))}
}

// Get returns worker w's value, creating it on first use.
func (s *Scratch[T]) Get(w int) T {
	if s.slots[w] == nil {
		v := s.mk()
		s.slots[w] = &v
	}
	return *s.slots[w]
}
