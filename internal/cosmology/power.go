package cosmology

import (
	"math"
)

// This file implements the CDM power spectrum and its normalization.
//
// The paper (§2.1) requires the functional form of P(k) for a "standard"
// CDM model. We use the classic BBKS (Bardeen, Bond, Kaiser & Szalay 1986)
// transfer function — the fit in universal use at the time of the paper —
// with the shape parameter Gamma = Omega_M h and sigma_8 normalization.

// TransferBBKS returns the BBKS CDM transfer function at wavenumber
// k [h/Mpc] for shape parameter gamma = Omega_M * h.
func TransferBBKS(k, gamma float64) float64 {
	if k <= 0 {
		return 1
	}
	q := k / gamma
	aq := 2.34 * q
	var t float64
	if aq < 1e-6 {
		t = 1 // ln(1+x)/x -> 1
	} else {
		t = math.Log(1+aq) / aq
	}
	poly := 1 + q*(3.89+q*(259.21+q*(162.771336+q*2027.16958081)))
	// poly = 1 + 3.89q + (16.1q)^2 + (5.46q)^3 + (6.71q)^4
	return t * math.Pow(poly, -0.25)
}

// PowerSpectrum evaluates the *unnormalized* linear power spectrum
// P(k) ∝ k^n T(k)^2 at k [h/Mpc].
func (p Params) powerUnnormalized(k float64) float64 {
	h := p.H0 / 3.2407792896664e-18 / 100 // dimensionless h... H0 in units of 100 km/s/Mpc
	gamma := p.OmegaM * h
	t := TransferBBKS(k, gamma)
	return math.Pow(k, p.NSpec) * t * t
}

// sigmaR computes the rms linear fluctuation in spheres of radius
// r [Mpc/h] for the unnormalized spectrum.
func (p Params) sigmaRUnnormalized(r float64) float64 {
	// sigma^2 = 1/(2π²) ∫ k² P(k) W²(kr) dk with the top-hat window
	// W(x) = 3(sin x - x cos x)/x³. Integrate in ln k.
	const steps = 4096
	lk0, lk1 := math.Log(1e-5), math.Log(1e3)
	hstep := (lk1 - lk0) / steps
	var s float64
	for i := 0; i < steps; i++ {
		lk := lk0 + (float64(i)+0.5)*hstep
		k := math.Exp(lk)
		x := k * r
		var w float64
		if x < 1e-4 {
			w = 1 - x*x/10
		} else {
			w = 3 * (math.Sin(x) - x*math.Cos(x)) / (x * x * x)
		}
		s += k * k * k * p.powerUnnormalized(k) * w * w * hstep
	}
	return math.Sqrt(s / (2 * math.Pi * math.Pi))
}

// PowerSpectrum returns the sigma_8-normalized linear power spectrum today
// at k [h/Mpc], in (Mpc/h)^3.
func (p Params) PowerSpectrum(k float64) float64 {
	norm := p.Sigma8 / p.sigmaRUnnormalized(8)
	return norm * norm * p.powerUnnormalized(k)
}

// PowerTable precomputes a log-spaced lookup table of the normalized
// spectrum so the IC generator does not re-integrate the normalization for
// every mode.
type PowerTable struct {
	lkMin, lkMax float64
	dlk          float64
	vals         []float64 // log P at log k nodes
}

// NewPowerTable builds a table spanning k in [kmin, kmax] h/Mpc.
func (p Params) NewPowerTable(kmin, kmax float64, n int) *PowerTable {
	if n < 2 {
		n = 2
	}
	t := &PowerTable{
		lkMin: math.Log(kmin),
		lkMax: math.Log(kmax),
		vals:  make([]float64, n),
	}
	t.dlk = (t.lkMax - t.lkMin) / float64(n-1)
	norm := p.Sigma8 / p.sigmaRUnnormalized(8)
	norm2 := norm * norm
	for i := range t.vals {
		k := math.Exp(t.lkMin + float64(i)*t.dlk)
		t.vals[i] = math.Log(norm2 * p.powerUnnormalized(k))
	}
	return t
}

// At returns P(k) from the table with log-log linear interpolation,
// clamping k to the tabulated range.
func (t *PowerTable) At(k float64) float64 {
	lk := math.Log(k)
	x := (lk - t.lkMin) / t.dlk
	if x <= 0 {
		return math.Exp(t.vals[0])
	}
	if x >= float64(len(t.vals)-1) {
		return math.Exp(t.vals[len(t.vals)-1])
	}
	i := int(x)
	f := x - float64(i)
	return math.Exp(t.vals[i]*(1-f) + t.vals[i+1]*f)
}
