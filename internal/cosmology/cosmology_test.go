package cosmology

import (
	"math"
	"testing"
)

func TestEinsteinDeSitterAge(t *testing.T) {
	p := StandardCDM()
	// EdS: t(a) = (2/3) a^{3/2} / H0.
	for _, a := range []float64{0.01, 0.1, 0.5, 1.0} {
		want := 2.0 / 3.0 * math.Pow(a, 1.5) / p.H0
		got := p.AgeOfUniverse(a)
		if math.Abs(got-want)/want > 1e-4 {
			t.Errorf("age(a=%v) = %v, want %v", a, got, want)
		}
	}
}

func TestExpansionFactorInversion(t *testing.T) {
	p := StandardCDM()
	for _, a := range []float64{0.005, 0.05, 0.5} {
		tt := p.AgeOfUniverse(a)
		back := p.ExpansionFactorAt(tt)
		if math.Abs(back-a)/a > 1e-4 {
			t.Errorf("a round trip %v -> %v", a, back)
		}
	}
}

func TestBackgroundAdvanceMatchesAnalytic(t *testing.T) {
	p := StandardCDM()
	a0 := 0.01
	b := NewBackground(p, a0)
	// Advance by many small steps to a target time; compare with EdS.
	target := p.AgeOfUniverse(0.02)
	dt := (target - b.T) / 2000
	for i := 0; i < 2000; i++ {
		b.Advance(dt)
	}
	if math.Abs(b.A-0.02)/0.02 > 1e-5 {
		t.Errorf("RK4 advance a = %v, want 0.02", b.A)
	}
}

func TestGrowthFactorEdS(t *testing.T) {
	// In EdS the growth factor is exactly proportional to a.
	p := StandardCDM()
	d1 := p.GrowthFactor(0.01)
	d2 := p.GrowthFactor(0.02)
	if math.Abs(d2/d1-2) > 1e-3 {
		t.Errorf("EdS growth ratio %v, want 2", d2/d1)
	}
	if math.Abs(p.GrowthFactor(1)-1) > 1e-12 {
		t.Errorf("D(1) != 1")
	}
	if f := p.GrowthRate(0.05); math.Abs(f-1) > 1e-3 {
		t.Errorf("EdS growth rate %v, want 1", f)
	}
}

func TestGrowthFactorLambda(t *testing.T) {
	// With a cosmological constant, growth is suppressed at late times:
	// D(a)/a must decrease toward a=1.
	p := Params{OmegaM: 0.3, OmegaB: 0.04, OmegaLambda: 0.7, H0: 2.2e-18, Sigma8: 0.9, NSpec: 1}
	early := p.GrowthFactor(0.1) / 0.1
	late := p.GrowthFactor(1.0) / 1.0
	if late >= early {
		t.Errorf("Lambda growth suppression missing: D/a early %v late %v", early, late)
	}
}

func TestTransferLimits(t *testing.T) {
	// T -> 1 as k -> 0; T decreases monotonically at high k.
	if v := TransferBBKS(1e-8, 0.5); math.Abs(v-1) > 1e-3 {
		t.Errorf("T(k->0) = %v", v)
	}
	prev := TransferBBKS(0.01, 0.5)
	for _, k := range []float64{0.1, 1, 10, 100} {
		v := TransferBBKS(k, 0.5)
		if v >= prev {
			t.Errorf("transfer not decreasing at k=%v", k)
		}
		prev = v
	}
}

func TestSigma8Normalization(t *testing.T) {
	p := StandardCDM()
	// After normalization, sigma(8 Mpc/h) must equal Sigma8.
	norm := p.Sigma8 / p.sigmaRUnnormalized(8)
	got := norm * p.sigmaRUnnormalized(8)
	if math.Abs(got-p.Sigma8) > 1e-12 {
		t.Errorf("sigma8 normalization broken: %v", got)
	}
	// CDM hierarchy: smaller scales have larger rms (bottom-up collapse,
	// paper §2.1).
	s1 := p.sigmaRUnnormalized(1)
	s8 := p.sigmaRUnnormalized(8)
	if s1 <= s8 {
		t.Errorf("sigma(1) = %v should exceed sigma(8) = %v", s1, s8)
	}
}

func TestPowerTableMatchesDirect(t *testing.T) {
	p := StandardCDM()
	tbl := p.NewPowerTable(1e-4, 1e4, 4096)
	for _, k := range []float64{0.001, 0.05, 0.8, 30, 500} {
		direct := p.PowerSpectrum(k)
		fromTable := tbl.At(k)
		if math.Abs(fromTable-direct)/direct > 2e-3 {
			t.Errorf("table P(%v) = %v, direct %v", k, fromTable, direct)
		}
	}
}

func TestRealizationDeterministic(t *testing.T) {
	p := StandardCDM()
	r1, err := p.GenerateRealization(16, 0.256, 42)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := p.GenerateRealization(16, 0.256, 42)
	for i := range r1.Dlt {
		if r1.Dlt[i] != r2.Dlt[i] {
			t.Fatal("same seed produced different realizations")
		}
	}
	r3, _ := p.GenerateRealization(16, 0.256, 43)
	same := true
	for i := range r1.Dlt {
		if r1.Dlt[i] != r3.Dlt[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical realizations")
	}
}

func TestRealizationMeanZero(t *testing.T) {
	p := StandardCDM()
	r, err := p.GenerateRealization(16, 0.256, 7)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, v := range r.Dlt {
		mean += v
	}
	mean /= float64(len(r.Dlt))
	if math.Abs(mean) > 1e-12 {
		t.Errorf("overdensity mean = %v, want 0 (k=0 mode zeroed)", mean)
	}
	if r.RMS() <= 0 {
		t.Error("zero rms field")
	}
}

func TestRealizationDisplacementDivergence(t *testing.T) {
	// Zel'dovich: div ψ = -δ (linear theory). Check with centered
	// differences on the periodic grid.
	p := StandardCDM()
	n := 16
	r, err := p.GenerateRealization(n, 0.256, 11)
	if err != nil {
		t.Fatal(err)
	}
	h := 1.0 / float64(n) // cell size in box units
	idx := func(i, j, k int) int {
		w := func(v int) int { return ((v % n) + n) % n }
		return (w(k)*n+w(j))*n + w(i)
	}
	var num, den float64
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				div := (r.PsiX[idx(i+1, j, k)]-r.PsiX[idx(i-1, j, k)])/(2*h) +
					(r.PsiY[idx(i, j+1, k)]-r.PsiY[idx(i, j-1, k)])/(2*h) +
					(r.PsiZ[idx(i, j, k+1)]-r.PsiZ[idx(i, j, k-1)])/(2*h)
				d := -r.Dlt[idx(i, j, k)]
				num += (div - d) * (div - d)
				den += d * d
			}
		}
	}
	// Centered differencing is only 2nd order so allow a finite-k error,
	// but the fields must be strongly correlated.
	if num/den > 0.3 {
		t.Errorf("div psi vs -delta mismatch: relative L2 error %v", math.Sqrt(num/den))
	}
}

func TestDegrade(t *testing.T) {
	p := StandardCDM()
	r, err := p.GenerateRealization(16, 0.256, 5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.Degrade(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 8 {
		t.Fatalf("degraded N = %d", d.N)
	}
	// Block averaging preserves the mean.
	var m1, m2 float64
	for _, v := range r.Dlt {
		m1 += v
	}
	for _, v := range d.Dlt {
		m2 += v
	}
	m1 /= float64(len(r.Dlt))
	m2 /= float64(len(d.Dlt))
	if math.Abs(m1-m2) > 1e-12 {
		t.Errorf("degrade changed mean: %v vs %v", m1, m2)
	}
	// Smoothing reduces rms.
	if d.RMS() >= r.RMS() {
		t.Errorf("degrade did not reduce rms: %v vs %v", d.RMS(), r.RMS())
	}
	if _, err := r.Degrade(3); err == nil {
		t.Error("degrade by non-divisor should fail")
	}
}

func TestZoomIC(t *testing.T) {
	p := StandardCDM()
	z, err := p.GenerateZoomIC(8, 2, 0.256, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(z.Levels) != 3 {
		t.Fatalf("level count %d", len(z.Levels))
	}
	if z.Levels[0].N != 8 || z.Levels[1].N != 16 || z.Levels[2].N != 32 {
		t.Fatalf("level sizes wrong: %d %d %d", z.Levels[0].N, z.Levels[1].N, z.Levels[2].N)
	}
	// More static levels capture more small-wavelength power (paper §4).
	if z.Levels[2].RMS() <= z.Levels[0].RMS() {
		t.Error("fine level should have higher rms than root")
	}
	i, j, k := z.DensestCell(0)
	if i < 0 || i >= 8 || j < 0 || j >= 8 || k < 0 || k >= 8 {
		t.Errorf("densest cell out of range: %d %d %d", i, j, k)
	}
	// The densest coarse cell must contain fine structure denser than
	// itself (hierarchy consistency).
	r0, r2 := z.Levels[0], z.Levels[2]
	coarseMax := r0.Dlt[(k*8+j)*8+i]
	fineMax := math.Inf(-1)
	for dz := 0; dz < 4; dz++ {
		for dy := 0; dy < 4; dy++ {
			for dx := 0; dx < 4; dx++ {
				v := r2.Dlt[((k*4+dz)*32+j*4+dy)*32+i*4+dx]
				if v > fineMax {
					fineMax = v
				}
			}
		}
	}
	if fineMax < coarseMax {
		t.Errorf("fine max %v below coarse average %v", fineMax, coarseMax)
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{OmegaM: 0, H0: 1},
		{OmegaM: 1, OmegaB: 2, H0: 1},
		{OmegaM: 1, OmegaB: 0.05, H0: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if err := StandardCDM().Validate(); err != nil {
		t.Errorf("standard CDM should validate: %v", err)
	}
}

func BenchmarkGenerateRealization32(b *testing.B) {
	p := StandardCDM()
	for i := 0; i < b.N; i++ {
		if _, err := p.GenerateRealization(32, 0.256, 1); err != nil {
			b.Fatal(err)
		}
	}
}
