package cosmology

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fft"
)

// Realization is a sampled Gaussian random field realization on an N³
// periodic grid of comoving side L [Mpc/h]: the linear overdensity δ and
// the Zel'dovich displacement field ψ (components in box-size units),
// both *today* (growth factor 1). Scale with D(a) to the starting epoch.
type Realization struct {
	N    int
	L    float64 // box side [Mpc/h]
	Dlt  []float64
	PsiX []float64 // displacement in units of the box side
	PsiY []float64
	PsiZ []float64
}

// GenerateRealization draws a realization of the model's linear power
// spectrum on an n³ grid (n a power of two) for a comoving box of side
// l [Mpc/h], using the white-noise-filtering method: unit Gaussian noise in
// real space, filtered by sqrt(P(k)) in Fourier space. The same seed and
// size always produce the identical field (deterministic ICs, needed for
// the paper's restart-with-more-levels workflow).
func (p Params) GenerateRealization(n int, l float64, seed int64) (*Realization, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	plan, err := fft.NewPlan3(n, n, n)
	if err != nil {
		return nil, fmt.Errorf("cosmology: %w", err)
	}
	rng := rand.New(rand.NewSource(seed))
	ncell := n * n * n
	w := make([]complex128, ncell)
	for i := range w {
		w[i] = complex(rng.NormFloat64(), 0)
	}
	plan.Forward(w)

	// Filter |W_k| by sqrt(P(k) N^3 / V) so the inverse transform has the
	// target spectrum; V in (Mpc/h)^3.
	table := p.NewPowerTable(1e-4, 1e4, 2048)
	vol := l * l * l
	norm := math.Sqrt(float64(ncell) / vol)
	kfund := 2 * math.Pi / l

	psiX := make([]complex128, ncell)
	psiY := make([]complex128, ncell)
	psiZ := make([]complex128, ncell)

	for kz := 0; kz < n; kz++ {
		mz := wrapMode(kz, n)
		for ky := 0; ky < n; ky++ {
			my := wrapMode(ky, n)
			for kx := 0; kx < n; kx++ {
				mx := wrapMode(kx, n)
				idx := (kz*n+ky)*n + kx
				if mx == 0 && my == 0 && mz == 0 {
					w[idx] = 0
					continue
				}
				fx := kfund * float64(mx)
				fy := kfund * float64(my)
				fz := kfund * float64(mz)
				k2 := fx*fx + fy*fy + fz*fz
				kmag := math.Sqrt(k2)
				amp := math.Sqrt(table.At(kmag)) * norm
				d := w[idx] * complex(amp, 0)
				w[idx] = d
				// ψ_k = i k / k² δ_k  (displacement in Mpc/h; convert
				// to box units by dividing by L).
				c := d * complex(0, 1/k2/l)
				psiX[idx] = c * complex(fx, 0)
				psiY[idx] = c * complex(fy, 0)
				psiZ[idx] = c * complex(fz, 0)
			}
		}
	}
	plan.Inverse(w)
	plan.Inverse(psiX)
	plan.Inverse(psiY)
	plan.Inverse(psiZ)

	r := &Realization{
		N: n, L: l,
		Dlt:  make([]float64, ncell),
		PsiX: make([]float64, ncell),
		PsiY: make([]float64, ncell),
		PsiZ: make([]float64, ncell),
	}
	for i := 0; i < ncell; i++ {
		r.Dlt[i] = real(w[i])
		r.PsiX[i] = real(psiX[i])
		r.PsiY[i] = real(psiY[i])
		r.PsiZ[i] = real(psiZ[i])
	}
	return r, nil
}

// wrapMode maps an FFT bin index to a signed mode number in [-n/2, n/2).
func wrapMode(k, n int) int {
	if k > n/2 {
		return k - n
	}
	return k
}

// RMS returns the rms of the overdensity field.
func (r *Realization) RMS() float64 {
	var s float64
	for _, v := range r.Dlt {
		s += v * v
	}
	return math.Sqrt(s / float64(len(r.Dlt)))
}

// Degrade returns a new realization block-averaged by the integer factor f
// (which must divide N): the paper's low-resolution first pass that locates
// where the first star forms before the zoom-in restart.
func (r *Realization) Degrade(f int) (*Realization, error) {
	if f < 1 || r.N%f != 0 {
		return nil, fmt.Errorf("cosmology: degrade factor %d does not divide N=%d", f, r.N)
	}
	m := r.N / f
	out := &Realization{
		N: m, L: r.L,
		Dlt:  blockAverage(r.Dlt, r.N, f),
		PsiX: blockAverage(r.PsiX, r.N, f),
		PsiY: blockAverage(r.PsiY, r.N, f),
		PsiZ: blockAverage(r.PsiZ, r.N, f),
	}
	return out, nil
}

func blockAverage(src []float64, n, f int) []float64 {
	m := n / f
	dst := make([]float64, m*m*m)
	inv := 1.0 / float64(f*f*f)
	for cz := 0; cz < m; cz++ {
		for cy := 0; cy < m; cy++ {
			for cx := 0; cx < m; cx++ {
				var s float64
				for dz := 0; dz < f; dz++ {
					for dy := 0; dy < f; dy++ {
						for dx := 0; dx < f; dx++ {
							s += src[((cz*f+dz)*n+cy*f+dy)*n+cx*f+dx]
						}
					}
				}
				dst[(cz*m+cy)*m+cx] = s * inv
			}
		}
	}
	return dst
}

// ZoomIC is the paper's nested static-subgrid initial condition: one
// realization generated at the *finest* effective resolution, then
// block-averaged to each coarser static level. Levels[0] is the root grid
// (full box at rootN³); Levels[l] has resolution rootN·2^l and still spans
// the full box (the AMR setup cuts out the static refined region).
type ZoomIC struct {
	RootN     int
	Factor    int // refinement factor between static levels (always 2 here)
	Levels    []*Realization
	FineLevel int // index of the finest level
}

// GenerateZoomIC builds a ZoomIC with the given number of static levels
// above the root (levels=3 reproduces the paper's 64³→512³ setup at
// whatever scale rootN allows).
func (p Params) GenerateZoomIC(rootN, levels int, l float64, seed int64) (*ZoomIC, error) {
	if levels < 0 {
		return nil, fmt.Errorf("cosmology: negative static level count %d", levels)
	}
	fineN := rootN << levels
	fine, err := p.GenerateRealization(fineN, l, seed)
	if err != nil {
		return nil, err
	}
	z := &ZoomIC{RootN: rootN, Factor: 2, Levels: make([]*Realization, levels+1), FineLevel: levels}
	z.Levels[levels] = fine
	for lv := levels - 1; lv >= 0; lv-- {
		z.Levels[lv], err = z.Levels[lv+1].Degrade(2)
		if err != nil {
			return nil, err
		}
	}
	return z, nil
}

// DensestCell returns the grid indices of the maximum overdensity cell at
// the given level — the "where will the first star form" search of the
// paper's low-resolution pass.
func (z *ZoomIC) DensestCell(level int) (i, j, k int) {
	r := z.Levels[level]
	best := math.Inf(-1)
	for kz := 0; kz < r.N; kz++ {
		for jy := 0; jy < r.N; jy++ {
			for ix := 0; ix < r.N; ix++ {
				if v := r.Dlt[(kz*r.N+jy)*r.N+ix]; v > best {
					best = v
					i, j, k = ix, jy, kz
				}
			}
		}
	}
	return
}
