// Package cosmology implements the expanding-background substrate of the
// simulation: the Friedmann equation for the expansion factor a(t), the
// linear growth factor, the standard CDM power spectrum, and Zel'dovich
// initial conditions including the paper's nested static-subgrid zoom-in
// technique (§4: 64³ root + 3 static refinement levels ≙ 512³ effective
// initial conditions).
package cosmology

import (
	"fmt"
	"math"
)

// Params specifies a Friedmann "world" model plus the power-spectrum
// amplitude, in the convention of the "standard CDM" model the paper
// simulates (Ostriker 1993 normalization).
type Params struct {
	OmegaM      float64 // total matter density parameter today
	OmegaB      float64 // baryon density parameter today
	OmegaLambda float64 // cosmological constant today
	H0          float64 // Hubble parameter today [1/s]
	Sigma8      float64 // rms fluctuation in 8 Mpc/h spheres (amplitude)
	NSpec       float64 // primordial spectral index (1 for standard CDM)
}

// StandardCDM returns the "standard CDM" model of the paper:
// Omega_M = 1, Omega_B = 0.06, h = 0.5, sigma_8 = 0.7, n = 1.
func StandardCDM() Params {
	return Params{
		OmegaM:      1.0,
		OmegaB:      0.06,
		OmegaLambda: 0.0,
		H0:          0.5 * 3.2407792896664e-18,
		Sigma8:      0.7,
		NSpec:       1.0,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.OmegaM <= 0 {
		return fmt.Errorf("cosmology: OmegaM must be positive, got %g", p.OmegaM)
	}
	if p.OmegaB < 0 || p.OmegaB > p.OmegaM {
		return fmt.Errorf("cosmology: OmegaB=%g out of range (0, OmegaM=%g)", p.OmegaB, p.OmegaM)
	}
	if p.H0 <= 0 {
		return fmt.Errorf("cosmology: H0 must be positive")
	}
	return nil
}

// Hubble returns H(a) = da/dt / a in [1/s].
func (p Params) Hubble(a float64) float64 {
	omegaK := 1 - p.OmegaM - p.OmegaLambda
	return p.H0 * math.Sqrt(p.OmegaM/(a*a*a)+omegaK/(a*a)+p.OmegaLambda)
}

// AofZ converts a redshift to an expansion factor.
func AofZ(z float64) float64 { return 1 / (1 + z) }

// ZofA converts an expansion factor to a redshift.
func ZofA(a float64) float64 { return 1/a - 1 }

// AgeOfUniverse integrates t(a) = ∫ da / (a H(a)) from a=~0 with Simpson's
// rule in log a. For Omega_M = 1 (Einstein-de Sitter) this reproduces the
// analytic t = (2/3) a^{3/2} / H0.
func (p Params) AgeOfUniverse(a float64) float64 {
	const steps = 2048
	la0, la1 := math.Log(1e-8), math.Log(a)
	h := (la1 - la0) / steps
	f := func(la float64) float64 {
		aa := math.Exp(la)
		return 1 / p.Hubble(aa) // dt/dln a = 1/H
	}
	s := f(la0) + f(la1)
	for i := 1; i < steps; i++ {
		if i%2 == 1 {
			s += 4 * f(la0+float64(i)*h)
		} else {
			s += 2 * f(la0+float64(i)*h)
		}
	}
	return s * h / 3
}

// ExpansionFactorAt inverts AgeOfUniverse by bisection, returning a(t) for
// a cosmic time t [s]. Valid for t in the age range of a in
// [1e-6, 100].
func (p Params) ExpansionFactorAt(t float64) float64 {
	lo, hi := 1e-6, 100.0
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if p.AgeOfUniverse(mid) < t {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}

// Background tracks the expansion factor during a simulation. It advances
// a(t) with fourth-order Runge-Kutta steps of the Friedmann equation and
// exposes the comoving-coordinate source terms the hydro and N-body solvers
// need.
type Background struct {
	Params Params
	A      float64 // current expansion factor
	T      float64 // current cosmic time [s]
}

// NewBackground initializes the background at expansion factor a0.
func NewBackground(p Params, a0 float64) *Background {
	return &Background{Params: p, A: a0, T: p.AgeOfUniverse(a0)}
}

// Adot returns da/dt at a.
func (b *Background) Adot(a float64) float64 { return a * b.Params.Hubble(a) }

// Advance steps the expansion factor forward by dt [s] with RK4.
func (b *Background) Advance(dt float64) {
	a := b.A
	k1 := b.Adot(a)
	k2 := b.Adot(a + 0.5*dt*k1)
	k3 := b.Adot(a + 0.5*dt*k2)
	k4 := b.Adot(a + dt*k3)
	b.A = a + dt*(k1+2*k2+2*k3+k4)/6
	b.T += dt
}

// GrowthFactor returns the linear growth factor D(a), normalized to
// D(1) = 1, using the standard integral solution
// D ∝ H(a) ∫ da' / (a' H(a'))^3.
func (p Params) GrowthFactor(a float64) float64 {
	g := func(a float64) float64 {
		const steps = 512
		if a <= 0 {
			return 0
		}
		h := a / steps
		var s float64
		for i := 0; i < steps; i++ {
			aa := (float64(i) + 0.5) * h
			e := p.Hubble(aa) / p.H0
			s += h / math.Pow(aa*e, 3)
		}
		return p.Hubble(a) / p.H0 * s
	}
	return g(a) / g(1)
}

// GrowthRate returns f = dlnD/dlna at a, via numerical differentiation.
func (p Params) GrowthRate(a float64) float64 {
	const eps = 1e-4
	d1 := p.GrowthFactor(a * (1 + eps))
	d0 := p.GrowthFactor(a * (1 - eps))
	return (math.Log(d1) - math.Log(d0)) / (2 * eps)
}
