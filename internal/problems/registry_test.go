package problems

import (
	"math"
	"testing"

	"repro/internal/amr"
)

func TestRegistryNamesAndLookup(t *testing.T) {
	names := Names()
	for _, want := range []string{"sedov", "pancake", "collapse", "zoom", "khi", "coolsphere", "sod"} {
		if _, ok := Get(want); !ok {
			t.Errorf("problem %q not registered (have %v)", want, names)
		}
	}
	if _, err := Build("nosuch", Opts{}); err == nil {
		t.Error("unknown problem must error")
	}
	if _, err := Build("sod", Opts{RootN: 8, Solver: "weno"}); err == nil {
		t.Error("unknown solver must error")
	}
}

func TestUnknownKnobRejected(t *testing.T) {
	// A misspelled -p key must fail loudly instead of silently running
	// the default physics.
	if _, err := Build("sedov", Opts{RootN: 8, MaxLevel: 1, Extra: map[string]float64{"eo": 50}}); err == nil {
		t.Error("misspelled knob must error")
	}
	if _, err := Build("khi", Opts{RootN: 8, MaxLevel: 1, Extra: map[string]float64{"delta": 40}}); err == nil {
		t.Error("knob of a different problem must error")
	}
	if _, err := Build("sedov", Opts{RootN: 8, MaxLevel: 1, Extra: map[string]float64{"e0": 50}}); err != nil {
		t.Errorf("documented knob rejected: %v", err)
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	Register(Spec{Name: "sedov", Build: func(Opts) (*amr.Hierarchy, error) { return nil, nil }})
}

// smokeOpts shrinks a spec's defaults to a 2-step smoke size.
func smokeOpts(spec Spec) Opts {
	o := spec.Defaults
	o.RootN = 8
	if o.MaxLevel > 2 {
		o.MaxLevel = 2
	}
	return o
}

// TestRegistrySmoke runs every registered problem for two root steps and
// checks the cross-problem invariants: the hierarchy is non-empty, every
// field of every grid stays finite, and gas mass is conserved.
func TestRegistrySmoke(t *testing.T) {
	for _, name := range Names() {
		spec, _ := Get(name)
		t.Run(name, func(t *testing.T) {
			h, err := Build(name, smokeOpts(spec))
			if err != nil {
				t.Fatal(err)
			}
			if h.NumGrids() < 1 || len(h.Levels[0]) != 1 {
				t.Fatalf("empty hierarchy: %d grids", h.NumGrids())
			}
			mass0 := h.TotalGasMass()
			if mass0 <= 0 {
				t.Fatalf("no gas: mass %v", mass0)
			}
			for s := 0; s < 2; s++ {
				if dt := h.Step(); dt <= 0 || math.IsNaN(dt) {
					t.Fatalf("bad dt %v at step %d", dt, s)
				}
			}
			for l, lv := range h.Levels {
				for gi, g := range lv {
					for fi, f := range g.State.Fields() {
						for _, v := range f.Data {
							if math.IsNaN(v) || math.IsInf(v, 0) {
								t.Fatalf("non-finite value in field %d of L%d grid %d", fi, l, gi)
							}
						}
					}
				}
			}
			mass1 := h.TotalGasMass()
			if rel := math.Abs(mass1-mass0) / mass0; rel > 1e-3 {
				t.Errorf("gas mass drifted %.2e (%v -> %v)", rel, mass0, mass1)
			}
		})
	}
}

// hierFingerprint captures the complete evolving state of a hierarchy for
// bitwise comparison: every field of every grid plus the particle sets.
func hierEqual(t *testing.T, label string, a, b *amr.Hierarchy) {
	t.Helper()
	if a.Time != b.Time || a.NumGrids() != b.NumGrids() || a.MaxLevel() != b.MaxLevel() {
		t.Fatalf("%s: structure mismatch: t=%v/%v grids=%d/%d", label,
			a.Time, b.Time, a.NumGrids(), b.NumGrids())
	}
	for l := range a.Levels {
		for gi := range a.Levels[l] {
			ga, gb := a.Levels[l][gi], b.Levels[l][gi]
			if ga.Lo != gb.Lo || ga.Nx != gb.Nx || ga.Ny != gb.Ny || ga.Nz != gb.Nz {
				t.Fatalf("%s: L%d grid %d geometry mismatch", label, l, gi)
			}
			fa, fb := ga.State.Fields(), gb.State.Fields()
			for fi := range fa {
				for di := range fa[fi].Data {
					if fa[fi].Data[di] != fb[fi].Data[di] {
						t.Fatalf("%s: L%d grid %d field %d differs at %d: %v vs %v",
							label, l, gi, fi, di, fa[fi].Data[di], fb[fi].Data[di])
					}
				}
			}
			if ga.Parts.Len() != gb.Parts.Len() {
				t.Fatalf("%s: L%d grid %d particle count %d vs %d",
					label, l, gi, ga.Parts.Len(), gb.Parts.Len())
			}
			for pi := 0; pi < ga.Parts.Len(); pi++ {
				if !ga.Parts.X[pi].Eq(gb.Parts.X[pi]) || ga.Parts.Vx[pi] != gb.Parts.Vx[pi] ||
					ga.Parts.Mass[pi] != gb.Parts.Mass[pi] {
					t.Fatalf("%s: L%d grid %d particle %d differs", label, l, gi, pi)
				}
			}
		}
	}
}

// TestRegistryGoldenSeedConstructors proves the registry is a pure
// re-plumbing: hierarchies built through it are bitwise identical to the
// seed problem constructors, both at t=0 and after two evolved root steps.
func TestRegistryGoldenSeedConstructors(t *testing.T) {
	cases := []struct {
		name   string
		opts   Opts
		direct func() (*amr.Hierarchy, error)
	}{
		{
			name: "sedov",
			opts: Opts{RootN: 16, MaxLevel: 2, Extra: map[string]float64{"e0": 10}},
			direct: func() (*amr.Hierarchy, error) {
				return Sedov(16, 2, 10)
			},
		},
		{
			name: "pancake",
			opts: Opts{RootN: 16, MaxLevel: 2},
			direct: func() (*amr.Hierarchy, error) {
				return Pancake(PancakeOpts{RootN: 16})
			},
		},
		{
			name: "collapse",
			opts: Opts{RootN: 8, MaxLevel: 2, Chemistry: true},
			direct: func() (*amr.Hierarchy, error) {
				d := DefaultCollapseOpts()
				d.RootN = 8
				d.MaxLevel = 2
				return PrimordialCollapse(d)
			},
		},
		{
			name: "zoom",
			opts: Opts{RootN: 8, MaxLevel: 3, Seed: 7},
			direct: func() (*amr.Hierarchy, error) {
				h, _, err := CosmologicalZoom(ZoomOpts{
					RootN: 8, StaticLevels: 2, MaxLevel: 3, Seed: 7,
				})
				return h, err
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg, err := Build(tc.name, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := tc.direct()
			if err != nil {
				t.Fatal(err)
			}
			hierEqual(t, "initial", reg, ref)
			for s := 0; s < 2; s++ {
				reg.Step()
				ref.Step()
			}
			hierEqual(t, "after 2 steps", reg, ref)
		})
	}
}

func TestExtraOr(t *testing.T) {
	o := Opts{Extra: map[string]float64{"delta": 7}}
	if o.ExtraOr("delta", 1) != 7 || o.ExtraOr("missing", 3) != 3 {
		t.Fatal("ExtraOr lookup broken")
	}
}
