package problems

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/amr"
	"repro/internal/hydro"
)

// Opts are the common knobs every registered problem understands; a
// problem's Spec carries its own defaults, and builders ignore knobs that
// do not apply to them. Fields map one-to-one onto the enzogo CLI flags.
type Opts struct {
	RootN     int    // root grid cells per side (power of two)
	MaxLevel  int    // deepest refinement level
	Chemistry bool   // enable the 12-species network where supported
	Workers   int    // par worker budget (0 = NumCPU)
	Seed      int64  // IC random seed (zoom)
	Solver    string // "" = problem default, "ppm" or "fd"
	// Extra holds problem-specific numeric knobs (CLI: repeated
	// -p key=value flags); builders read them via ExtraOr.
	Extra map[string]float64
}

// ExtraOr returns the Extra knob key, or def when unset.
func (o Opts) ExtraOr(key string, def float64) float64 {
	if v, ok := o.Extra[key]; ok {
		return v
	}
	return def
}

// Spec declares one runnable problem: a short description for the
// catalog, the defaults its builder expects, and the builder itself.
type Spec struct {
	Name string
	// Summary is the one-line catalog description (`enzogo -list`).
	Summary string
	// Exercises names the subsystems the problem stresses (README
	// catalog column).
	Exercises string
	// Example is a representative command line.
	Example string
	// Defaults fills an Opts with this problem's canonical
	// configuration; CLI flags override individual fields.
	Defaults Opts
	// Knobs documents the problem-specific Extra keys the builder
	// reads (key -> one-line description). Build rejects Extra keys
	// not listed here, so a misspelled -p knob fails instead of
	// silently running the default physics.
	Knobs map[string]string
	// Build constructs the initialized hierarchy.
	Build func(Opts) (*amr.Hierarchy, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Spec{}
)

// Register adds a problem to the registry. It panics on a duplicate or
// anonymous spec — registration is a program-initialization act, not a
// runtime one.
func Register(s Spec) {
	if s.Name == "" || s.Build == nil {
		panic("problems: Register needs a name and a builder")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("problems: duplicate registration of %q", s.Name))
	}
	registry[s.Name] = s
}

// Get returns the spec registered under name.
func Get(name string) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns the registered problem names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Specs returns the registered specs sorted by name — the one iteration
// order shared by `enzogo -list`, the CI problems matrix it drives, the
// golden regression table and any other registry walk, so their rows line
// up run after run.
func Specs() []Spec {
	names := Names()
	out := make([]Spec, 0, len(names))
	for _, n := range names {
		s, _ := Get(n)
		out = append(out, s)
	}
	return out
}

// Build constructs the named problem with the given options. The options
// are used verbatim — they are not merged with the spec's Defaults, so a
// zero field means zero (e.g. MaxLevel 0 disables refinement). Callers
// wanting the canonical configuration start from Get(name).Defaults and
// override fields, which is what core.New does.
func Build(name string, o Opts) (*amr.Hierarchy, error) {
	spec, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("problems: unknown problem %q (have %v)", name, Names())
	}
	return BuildSpec(spec, o)
}

// BuildSpec runs a spec's builder, then applies the cross-cutting knobs
// (worker budget, solver choice) that every hierarchy honors. Opts are
// used verbatim; see Build.
func BuildSpec(spec Spec, o Opts) (*amr.Hierarchy, error) {
	for k := range o.Extra {
		if _, known := spec.Knobs[k]; !known {
			return nil, fmt.Errorf("problems: %q has no knob %q (available: %v)",
				spec.Name, k, knobNames(spec))
		}
	}
	h, err := spec.Build(o)
	if err != nil {
		return nil, err
	}
	if o.Workers != 0 {
		h.Cfg.Workers = o.Workers
	}
	if o.Solver != "" {
		s, err := ParseSolver(o.Solver)
		if err != nil {
			return nil, err
		}
		h.Cfg.Solver = s
	}
	return h, nil
}

// knobNames returns a spec's documented Extra keys, sorted.
func knobNames(spec Spec) []string {
	out := make([]string, 0, len(spec.Knobs))
	for k := range spec.Knobs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ParseSolver maps the CLI solver names onto hydro.Solver.
func ParseSolver(name string) (hydro.Solver, error) {
	switch name {
	case "ppm":
		return hydro.SolverPPM, nil
	case "fd":
		return hydro.SolverFD, nil
	default:
		return 0, fmt.Errorf("problems: unknown solver %q (want ppm or fd)", name)
	}
}

func init() {
	Register(Spec{
		Name:      "sedov",
		Summary:   "Sedov-Taylor point explosion in a cold uniform medium",
		Exercises: "hydro solvers, shock-driven dynamic refinement, flux correction",
		Example:   "enzogo -problem sedov -steps 20 -rootn 32 -maxlevel 2",
		Defaults:  Opts{RootN: 16, MaxLevel: 4, Extra: map[string]float64{"e0": 10}},
		Knobs:     map[string]string{"e0": "deposited blast energy (default 10)"},
		Build: func(o Opts) (*amr.Hierarchy, error) {
			return Sedov(o.RootN, o.MaxLevel, o.ExtraOr("e0", 10))
		},
	})
	Register(Spec{
		Name:      "pancake",
		Summary:   "Zel'dovich pancake: one plane wave collapsing in an expanding background",
		Exercises: "cosmology coupling, self-gravity, N-body + hydro, comoving units",
		Example:   "enzogo -problem pancake -steps 30 -rootn 32",
		Defaults:  Opts{RootN: 32, MaxLevel: 2},
		Knobs: map[string]string{
			"astart":    "starting expansion factor (default 0.05)",
			"acollapse": "expansion factor of caustic formation (default 0.2)",
		},
		Build: func(o Opts) (*amr.Hierarchy, error) {
			h, err := Pancake(PancakeOpts{
				RootN:     o.RootN,
				AStart:    o.ExtraOr("astart", 0),
				ACollapse: o.ExtraOr("acollapse", 0),
			})
			if err != nil {
				return nil, err
			}
			h.Cfg.MaxLevel = o.MaxLevel
			return h, nil
		},
	})
	Register(Spec{
		Name:      "collapse",
		Summary:   "primordial star formation: cooling clump collapse with 12-species chemistry",
		Exercises: "the full stack: AMR + gravity + chemistry + N-body at laptop scale",
		Example:   "enzogo -problem collapse -steps 40 -rootn 16 -maxlevel 5",
		Defaults:  Opts{RootN: 16, MaxLevel: 5, Chemistry: true},
		Knobs: map[string]string{
			"delta":    "central clump overdensity (default 40)",
			"tinit":    "initial gas temperature [K] (default 800)",
			"redshift": "epoch of the run (default 19)",
			"boxkpc":   "comoving box side [kpc] (default 160)",
		},
		Build: func(o Opts) (*amr.Hierarchy, error) {
			// Workers and Solver are applied generically by Build.
			d := DefaultCollapseOpts()
			d.RootN = o.RootN
			d.MaxLevel = o.MaxLevel
			d.Chemistry = o.Chemistry
			d.Delta = o.ExtraOr("delta", d.Delta)
			d.TInit = o.ExtraOr("tinit", d.TInit)
			d.Redshift = o.ExtraOr("redshift", d.Redshift)
			d.BoxComovingKpc = o.ExtraOr("boxkpc", d.BoxComovingKpc)
			return PrimordialCollapse(d)
		},
	})
	Register(Spec{
		Name:      "zoom",
		Summary:   "nested zoom-in cosmological ICs from the CDM power spectrum (paper §4)",
		Exercises: "IC generation, static refined levels, restart workflow",
		Example:   "enzogo -problem zoom -steps 10 -rootn 16 -seed 12345",
		Defaults:  Opts{RootN: 16, MaxLevel: 4, Chemistry: true, Seed: 12345},
		Knobs: map[string]string{
			"staticlevels": "nested static refined levels (default 2)",
			"redshift":     "starting redshift (default 99)",
		},
		Build: func(o Opts) (*amr.Hierarchy, error) {
			h, _, err := CosmologicalZoom(ZoomOpts{
				RootN:        o.RootN,
				StaticLevels: int(o.ExtraOr("staticlevels", 2)),
				MaxLevel:     o.MaxLevel,
				Seed:         o.Seed,
				Chemistry:    o.Chemistry,
				Redshift:     o.ExtraOr("redshift", 0),
			})
			return h, err
		},
	})
	Register(Spec{
		Name:      "khi",
		Summary:   "Kelvin-Helmholtz instability: shear layer rolling up in a periodic box",
		Exercises: "contact discontinuities, advection accuracy, refinement on density",
		Example:   "enzogo -problem khi -steps 30 -rootn 32 -maxlevel 1",
		Defaults:  Opts{RootN: 32, MaxLevel: 1},
		Build: func(o Opts) (*amr.Hierarchy, error) {
			return KelvinHelmholtz(o.RootN, o.MaxLevel)
		},
	})
	Register(Spec{
		Name:      "coolsphere",
		Summary:   "isolated cooling-collapse sphere: non-cosmological chemistry-driven infall",
		Exercises: "chemistry & cooling without cosmology, Jeans refinement, gravity",
		Example:   "enzogo -problem coolsphere -steps 20 -rootn 16 -maxlevel 3",
		Defaults:  Opts{RootN: 16, MaxLevel: 3, Chemistry: true},
		Knobs: map[string]string{
			"delta":   "central sphere overdensity (default 20)",
			"tinit":   "initial gas temperature [K] (default 1000)",
			"boxpc":   "box side [pc] (default 10)",
			"rhounit": "code density unit [g/cm^3] (default 1e-22)",
		},
		Build: func(o Opts) (*amr.Hierarchy, error) {
			d := DefaultCoolingSphereOpts()
			d.RootN = o.RootN
			d.MaxLevel = o.MaxLevel
			d.Chemistry = o.Chemistry
			d.Delta = o.ExtraOr("delta", d.Delta)
			d.TInit = o.ExtraOr("tinit", d.TInit)
			d.BoxPc = o.ExtraOr("boxpc", d.BoxPc)
			d.RhoUnit = o.ExtraOr("rhounit", d.RhoUnit)
			return CoolingSphere(d)
		},
	})
	Register(Spec{
		Name:      "sod",
		Summary:   "double Sod shock tube: mirrored Riemann problems in the periodic box",
		Exercises: "solver validation against the exact Riemann solution (ppm vs fd)",
		Example:   "enzogo -problem sod -steps 20 -rootn 64 -maxlevel 1",
		Defaults:  Opts{RootN: 64, MaxLevel: 1, Solver: "ppm"},
		Build: func(o Opts) (*amr.Hierarchy, error) {
			// The -solver choice is applied generically by Build.
			return SodTube(o.RootN, o.MaxLevel, hydro.SolverPPM)
		},
	})
}
