package problems

import (
	"fmt"
	"math"

	"repro/internal/amr"
	"repro/internal/chem"
	"repro/internal/hydro"
	"repro/internal/units"
)

// KelvinHelmholtz sets up the classic shear instability in the unit
// periodic box: a dense central band streaming against a light ambient
// medium with a small sinusoidal transverse seed at both interfaces. The
// billows that roll up exercise contact-discontinuity advection and
// density-triggered refinement without any gravity.
func KelvinHelmholtz(rootN, maxLevel int) (*amr.Hierarchy, error) {
	if rootN == 0 {
		return nil, fmt.Errorf("problems: zero RootN")
	}
	cfg := amr.DefaultConfig(rootN)
	cfg.SelfGravity = false
	cfg.JeansN = 0
	cfg.MaxLevel = maxLevel
	// Refine the dense band (cell mass 2/n³ vs ambient 1/n³).
	cfg.MassThresholdGas = 1.7 / float64(rootN*rootN*rootN)
	h, err := amr.NewHierarchy(cfg)
	if err != nil {
		return nil, err
	}
	root := h.Root()
	n := rootN
	const (
		rhoBand   = 2.0
		rhoAmb    = 1.0
		vShear    = 0.5
		pGas      = 2.5
		seedAmp   = 0.01
		seedSigma = 0.05
	)
	gm1 := cfg.Hydro.Gamma - 1
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			y := (float64(j) + 0.5) / float64(n)
			inBand := math.Abs(y-0.5) < 0.25
			rho, vx := rhoAmb, -vShear
			if inBand {
				rho, vx = rhoBand, vShear
			}
			for i := 0; i < n; i++ {
				x := (float64(i) + 0.5) / float64(n)
				// Transverse seed localized at the two interfaces.
				d1 := (y - 0.25) / seedSigma
				d2 := (y - 0.75) / seedSigma
				vy := seedAmp * math.Sin(4*math.Pi*x) *
					(math.Exp(-0.5*d1*d1) + math.Exp(-0.5*d2*d2))
				eint := pGas / (gm1 * rho)
				root.State.Rho.Set(i, j, k, rho)
				root.State.Vx.Set(i, j, k, vx)
				root.State.Vy.Set(i, j, k, vy)
				root.State.Eint.Set(i, j, k, eint)
				root.State.Etot.Set(i, j, k, eint+0.5*(vx*vx+vy*vy))
			}
		}
	}
	h.RebuildHierarchy(1)
	return h, nil
}

// SodTube sets up two mirrored Sod shock tubes in the periodic box:
// standard left state (rho=1, p=1) between x=0.25 and x=0.75, right state
// (rho=0.125, p=0.1) outside, gamma=1.4. Each discontinuity launches the
// textbook shock/contact/rarefaction fan; until t≈0.14 the fans do not
// interact, so the exact-solution landmarks (contact plateau 0.4263,
// post-shock 0.2656) hold and validate either solver.
func SodTube(rootN, maxLevel int, solver hydro.Solver) (*amr.Hierarchy, error) {
	if rootN == 0 {
		return nil, fmt.Errorf("problems: zero RootN")
	}
	cfg := amr.DefaultConfig(rootN)
	cfg.SelfGravity = false
	cfg.JeansN = 0
	cfg.MaxLevel = maxLevel
	cfg.Solver = solver
	cfg.Hydro.Gamma = 1.4
	// Refine the dense inner region and the shocks running into the
	// light gas (ambient cell mass 0.125/n³).
	cfg.MassThresholdGas = 0.7 / float64(rootN*rootN*rootN)
	h, err := amr.NewHierarchy(cfg)
	if err != nil {
		return nil, err
	}
	root := h.Root()
	n := rootN
	gm1 := cfg.Hydro.Gamma - 1
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				x := (float64(i) + 0.5) / float64(n)
				rho, p := 0.125, 0.1
				if x >= 0.25 && x < 0.75 {
					rho, p = 1.0, 1.0
				}
				eint := p / (gm1 * rho)
				root.State.Rho.Set(i, j, k, rho)
				root.State.Eint.Set(i, j, k, eint)
				root.State.Etot.Set(i, j, k, eint)
			}
		}
	}
	h.RebuildHierarchy(1)
	return h, nil
}

// CoolingSphereOpts configures the isolated cooling-collapse sphere.
type CoolingSphereOpts struct {
	RootN     int
	MaxLevel  int
	Chemistry bool
	// Delta is the central overdensity of the Gaussian sphere.
	Delta float64
	// TInit is the initial gas temperature [K].
	TInit float64
	// BoxPc is the box side [pc].
	BoxPc float64
	// RhoUnit is the code density unit [g/cm^3] (sets the cooling
	// regime; the default puts the sphere at n ≈ 50 cm^-3).
	RhoUnit float64
}

// DefaultCoolingSphereOpts returns a dense-cloud configuration where the
// chemistry actually matters: n ≈ 50 cm^-3, T = 1000 K, trace ionization.
func DefaultCoolingSphereOpts() CoolingSphereOpts {
	return CoolingSphereOpts{
		RootN:     16,
		MaxLevel:  3,
		Chemistry: true,
		Delta:     20,
		TInit:     1000,
		BoxPc:     10,
		RhoUnit:   1e-22,
	}
}

// CoolingSphere sets up a non-cosmological overdense gas sphere that
// cools through the primordial network and collapses under self-gravity —
// the simplest workload where refinement is driven by cooling rather than
// by an expanding background. There is no dark matter and no expansion:
// the registry's proof that operators guard themselves (expansion and
// N-body are registered but inert here).
func CoolingSphere(o CoolingSphereOpts) (*amr.Hierarchy, error) {
	if o.RootN == 0 {
		return nil, fmt.Errorf("problems: zero RootN")
	}
	// Free-fall-normalized units at the chosen density scale.
	u := units.Units{
		Density: o.RhoUnit,
		Length:  o.BoxPc * units.ParsecCM,
	}
	u.Time = 1 / math.Sqrt(4*math.Pi*units.G*u.Density)
	u.Derive()

	cfg := amr.DefaultConfig(o.RootN)
	cfg.SelfGravity = true
	cfg.GravConst = 1
	cfg.JeansN = 4
	cfg.MassThresholdGas = 4.0 / float64(o.RootN*o.RootN*o.RootN)
	cfg.MaxLevel = o.MaxLevel
	cfg.Units = u
	cfg.Hydro.CFL = 0.3
	if o.Chemistry {
		cfg.Chemistry = true
		cfg.NSpecies = chem.NumSpecies
		cfg.ChemParams = chem.DefaultSolverParams()
		cfg.CoolParams = chem.CoolParams{Redshift: 0}
	}
	h, err := amr.NewHierarchy(cfg)
	if err != nil {
		return nil, err
	}
	root := h.Root()
	n := o.RootN
	eint := u.EFromTemp(o.TInit, cfg.Hydro.Gamma, units.MeanMolecularWeightNeutral)
	const sphereR = 0.1 // Gaussian radius in box units
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				r2 := sq((float64(i)+0.5)/float64(n)-0.5) +
					sq((float64(j)+0.5)/float64(n)-0.5) +
					sq((float64(k)+0.5)/float64(n)-0.5)
				rho := 1 + o.Delta*math.Exp(-r2/(2*sphereR*sphereR))
				root.State.Rho.Set(i, j, k, rho)
				root.State.Eint.Set(i, j, k, eint)
				root.State.Etot.Set(i, j, k, eint)
			}
		}
	}
	// The periodic Poisson solve needs a zero-mean source: subtract the
	// actual mean of the background + sphere.
	h.Cfg.MeanRho = root.State.Rho.SumActive() / float64(n*n*n)
	if o.Chemistry {
		setPrimordialSpecies(h, u, 1, 1e-3, 2e-6)
	}
	h.RebuildHierarchy(1)
	return h, nil
}
