// Package problems provides the runnable problem setups of the
// reproduction: the validation workloads (Sedov blast wave, Zel'dovich
// pancake) and the headline primordial star formation problem at laptop
// scale, plus the paper's nested zoom-in cosmological initial conditions
// (§4: low-resolution pass → locate the first collapsing halo → restart
// with static refined meshes).
package problems

import (
	"fmt"
	"math"

	"repro/internal/amr"
	"repro/internal/analysis"
	"repro/internal/chem"
	"repro/internal/cosmology"
	"repro/internal/ep128"
	"repro/internal/hydro"
	"repro/internal/units"
)

// Sedov sets up a point explosion in a cold uniform medium: energy e0
// deposited in the central cells of a unit box with density 1. The blast
// radius grows as (E t²/ρ)^{1/5}, exercising the hydro solvers and dynamic
// refinement on shocks.
func Sedov(rootN, maxLevel int, e0 float64) (*amr.Hierarchy, error) {
	cfg := amr.DefaultConfig(rootN)
	cfg.SelfGravity = false
	cfg.JeansN = 0
	cfg.MaxLevel = maxLevel
	// Refine on the blast: cells above ~2x ambient mass.
	cfg.MassThresholdGas = 1.5 / float64(rootN*rootN*rootN)
	h, err := amr.NewHierarchy(cfg)
	if err != nil {
		return nil, err
	}
	root := h.Root()
	root.State.Rho.Fill(1)
	root.State.Vx.Fill(0)
	root.State.Vy.Fill(0)
	root.State.Vz.Fill(0)
	eAmbient := 1e-6
	root.State.Eint.Fill(eAmbient)
	root.State.Etot.Fill(eAmbient)
	c := rootN / 2
	// Deposit e0 into the central 2^3 cells.
	cellVol := root.CellVolume()
	per := e0 / (8 * cellVol) // energy density per cell -> specific for rho=1
	for k := c - 1; k <= c; k++ {
		for j := c - 1; j <= c; j++ {
			for i := c - 1; i <= c; i++ {
				root.State.Eint.Set(i, j, k, per)
				root.State.Etot.Set(i, j, k, per)
			}
		}
	}
	h.RebuildHierarchy(1)
	return h, nil
}

// ShockRadius estimates the Sedov shock position as the outermost radius
// (from the box center) where density exceeds the ambient by 10%. The
// measurement uses the finest available cells, so once refinement tracks
// the blast the shock front is located at the refined resolution instead
// of the root-grid average (which underreports the position by up to a
// coarse cell).
func ShockRadius(h *amr.Hierarchy) float64 {
	best := 0.0
	analysis.ForEachFinestCell(h, func(g *amr.Grid, i, j, k int, x, y, z float64) {
		if g.State.Rho.At(i, j, k) <= 1.1 {
			return
		}
		r := math.Sqrt(sq(x-0.5) + sq(y-0.5) + sq(z-0.5))
		if r > best {
			best = r
		}
	})
	return best
}

// PancakeOpts configures the Zel'dovich pancake test.
type PancakeOpts struct {
	RootN     int
	ACollapse float64 // expansion factor at caustic formation
	AStart    float64
}

// Pancake builds the classic 1-D Zel'dovich pancake in a 3-D periodic box:
// a single sinusoidal perturbation mode that collapses to a caustic at
// a = ACollapse, with gas and matching dark-matter particles. The standard
// cosmological validation problem of the original code.
func Pancake(o PancakeOpts) (*amr.Hierarchy, error) {
	if o.RootN == 0 {
		o.RootN = 32
	}
	if o.ACollapse == 0 {
		o.ACollapse = 0.2
	}
	if o.AStart == 0 {
		o.AStart = 0.05
	}
	p := cosmology.StandardCDM()
	bg := cosmology.NewBackground(p, o.AStart)
	u := units.Cosmological(units.MpcCM, p.OmegaM, 0.5, o.AStart)

	cfg := amr.DefaultConfig(o.RootN)
	cfg.SelfGravity = true
	cfg.GravConst = 1 // free-fall normalized units
	cfg.MeanRho = 1
	cfg.JeansN = 0
	cfg.MassThresholdGas = 4.0 / float64(o.RootN*o.RootN*o.RootN)
	cfg.MaxLevel = 2
	cfg.Cosmo = bg
	cfg.InitialA = o.AStart
	cfg.Units = u
	cfg.Hydro.CFL = 0.3
	h, err := amr.NewHierarchy(cfg)
	if err != nil {
		return nil, err
	}
	root := h.Root()
	n := o.RootN
	fb := p.OmegaB / p.OmegaM

	// Zel'dovich: x = q + D/D(ac) * sin(2πq)/2π (normalized so the
	// caustic forms when D(a)=D(ac)), with growing-mode velocities.
	dNow := p.GrowthFactor(o.AStart)
	dCol := p.GrowthFactor(o.ACollapse)
	amp := dNow / dCol
	hub := p.Hubble(o.AStart)
	f := p.GrowthRate(o.AStart)
	// Gas: Eulerian density from the Zel'dovich map, velocities from ψ.
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				q := (float64(i) + 0.5) / float64(n)
				den := 1 / (1 + amp*math.Cos(2*math.Pi*q))
				vx := amp * hub * f * math.Sin(2*math.Pi*q) / (2 * math.Pi) * u.Time
				root.State.Rho.Set(i, j, k, fb*den)
				root.State.Vx.Set(i, j, k, vx)
				eint := 1e-8
				root.State.Eint.Set(i, j, k, eint)
				root.State.Etot.Set(i, j, k, eint+0.5*vx*vx)
			}
		}
	}
	// Dark matter: one particle per cell displaced by the same map.
	mDM := (1 - fb) / float64(n*n*n)
	id := int64(0)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				q := (float64(i) + 0.5) / float64(n)
				x := q + amp*math.Sin(2*math.Pi*q)/(2*math.Pi)
				vx := amp * hub * f * math.Sin(2*math.Pi*q) / (2 * math.Pi) * u.Time
				root.Parts.Add(
					ep128.FromFloat64(wrap01(x)),
					ep128.FromFloat64((float64(j)+0.5)/float64(n)),
					ep128.FromFloat64((float64(k)+0.5)/float64(n)),
					vx, 0, 0, mDM, id)
				id++
			}
		}
	}
	h.RebuildHierarchy(1)
	return h, nil
}

// CollapseOpts configures the scaled primordial star formation problem.
type CollapseOpts struct {
	RootN     int
	MaxLevel  int
	Chemistry bool
	Workers   int
	// Overdensity of the central clump relative to the mean.
	Delta float64
	// Initial gas temperature [K].
	TInit float64
	// Redshift of the run (sets CMB floor and unit conversions).
	Redshift float64
	// BoxComovingKpc is the comoving box side [kpc]; the paper used 256.
	BoxComovingKpc float64
	Solver         hydro.Solver
	JeansN         float64
}

// DefaultCollapseOpts returns the laptop-scale configuration used by the
// benchmarks: a 5×10⁵ M⊙-class halo in a small comoving box at z≈19,
// mirroring the state of the paper's Fig. 4 first output time.
func DefaultCollapseOpts() CollapseOpts {
	return CollapseOpts{
		RootN:          16,
		MaxLevel:       5,
		Chemistry:      true,
		Delta:          40,
		TInit:          800,
		Redshift:       19,
		BoxComovingKpc: 160,
		Solver:         hydro.SolverPPM,
		JeansN:         4,
	}
}

// PrimordialCollapse sets up the headline problem: a cool primordial gas
// clump with trace ionization inside a dark-matter overdensity, in
// comoving coordinates with the full 12-species chemistry. The collapse
// drives progressive refinement exactly as in the paper, at reduced
// dynamic range.
func PrimordialCollapse(o CollapseOpts) (*amr.Hierarchy, error) {
	if o.RootN == 0 {
		return nil, fmt.Errorf("problems: zero RootN")
	}
	p := cosmology.StandardCDM()
	a0 := cosmology.AofZ(o.Redshift)
	bg := cosmology.NewBackground(p, a0)
	u := units.Cosmological(o.BoxComovingKpc*units.KpcCM, p.OmegaM, 0.5, a0)

	cfg := amr.DefaultConfig(o.RootN)
	cfg.SelfGravity = true
	cfg.GravConst = 1
	cfg.MeanRho = 1
	cfg.JeansN = o.JeansN
	cfg.MassThresholdGas = 4.0 * (p.OmegaB / p.OmegaM) / float64(o.RootN*o.RootN*o.RootN)
	cfg.MassThresholdDM = 4.0 * (1 - p.OmegaB/p.OmegaM) / float64(o.RootN*o.RootN*o.RootN)
	cfg.MaxLevel = o.MaxLevel
	cfg.Solver = o.Solver
	cfg.Cosmo = bg
	cfg.InitialA = a0
	cfg.Units = u
	cfg.Workers = o.Workers
	cfg.Hydro.CFL = 0.3
	if o.Chemistry {
		cfg.Chemistry = true
		cfg.NSpecies = chem.NumSpecies
		cfg.ChemParams = chem.DefaultSolverParams()
		cfg.CoolParams = chem.CoolParams{Redshift: o.Redshift}
	}
	h, err := amr.NewHierarchy(cfg)
	if err != nil {
		return nil, err
	}
	root := h.Root()
	n := o.RootN
	fb := p.OmegaB / p.OmegaM
	eint := u.EFromTemp(o.TInit, cfg.Hydro.Gamma, units.MeanMolecularWeightNeutral)

	// Gas: mean fb with a central Gaussian clump of amplitude Delta*fb;
	// dark matter carries the matching (1-fb) share via particles.
	const clumpR = 0.12 // Gaussian radius in box units
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				r2 := sq((float64(i)+0.5)/float64(n)-0.5) +
					sq((float64(j)+0.5)/float64(n)-0.5) +
					sq((float64(k)+0.5)/float64(n)-0.5)
				over := 1 + o.Delta*math.Exp(-r2/(2*clumpR*clumpR))
				root.State.Rho.Set(i, j, k, fb*over)
				root.State.Eint.Set(i, j, k, eint)
				root.State.Etot.Set(i, j, k, eint)
			}
		}
	}
	// Particles: one per cell, displaced slightly toward the center to
	// seed the same overdensity in the collisionless component.
	mPart := (1 - fb) / float64(n*n*n)
	id := int64(0)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				x := (float64(i) + 0.5) / float64(n)
				y := (float64(j) + 0.5) / float64(n)
				z := (float64(k) + 0.5) / float64(n)
				dx, dy, dz := x-0.5, y-0.5, z-0.5
				r2 := dx*dx + dy*dy + dz*dz
				// Radial inward displacement mimicking the converging
				// Zel'dovich flow onto the peak.
				disp := -0.25 * o.Delta * clumpR * clumpR * math.Exp(-r2/(2*clumpR*clumpR))
				r := math.Sqrt(r2) + 1e-9
				root.Parts.Add(
					ep128.FromFloat64(wrap01(x+disp*dx/r)),
					ep128.FromFloat64(wrap01(y+disp*dy/r)),
					ep128.FromFloat64(wrap01(z+disp*dz/r)),
					0, 0, 0, mPart, id)
				id++
			}
		}
	}
	if o.Chemistry {
		setPrimordialSpecies(h, u, a0, 3e-4, 2e-6)
	}
	h.RebuildHierarchy(1)
	return h, nil
}

// setPrimordialSpecies initializes the 12 species fields from the gas
// density with ionization fraction xe and H2 fraction fH2 (code mass
// densities; the electron field stores n_e·m_p).
func setPrimordialSpecies(h *amr.Hierarchy, u units.Units, a0, xe, fH2 float64) {
	for _, lv := range h.Levels {
		for _, g := range lv {
			st := g.State
			for idx := range st.Rho.Data {
				rho := st.Rho.Data[idx]
				// Convert a unit gas density to the chem.Primordial
				// proportions: build fractions in mass-density terms.
				hMass := rho * units.HydrogenMassFraction
				heMass := rho * (1 - units.HydrogenMassFraction)
				st.Species[chem.HI].Data[idx] = hMass * (1 - xe - 2*fH2)
				st.Species[chem.HII].Data[idx] = hMass * xe
				st.Species[chem.Elec].Data[idx] = hMass * xe // n_e m_p
				st.Species[chem.H2I].Data[idx] = hMass * 2 * fH2
				st.Species[chem.HeI].Data[idx] = heMass
				st.Species[chem.HeII].Data[idx] = 0
				st.Species[chem.HeIII].Data[idx] = 0
				st.Species[chem.Hm].Data[idx] = 0
				st.Species[chem.H2p].Data[idx] = 0
				st.Species[chem.DI].Data[idx] = hMass * 4e-5 * 2
				st.Species[chem.DII].Data[idx] = 0
				st.Species[chem.HD].Data[idx] = 0
			}
		}
	}
}

// ZoomOpts configures the paper's §4 zoom-in cosmological setup.
type ZoomOpts struct {
	RootN          int
	StaticLevels   int
	MaxLevel       int
	Seed           int64
	Redshift       float64
	BoxComovingKpc float64
	Chemistry      bool
}

// CosmologicalZoom reproduces the paper's initial-conditions workflow:
// generate a realization at the effective fine resolution, locate the
// densest region (the low-resolution first pass), and build a hierarchy
// whose static refined levels cover that region with the fine-grained
// modes — "equivalent to 512³ initial conditions over the entire box" at
// our scale.
func CosmologicalZoom(o ZoomOpts) (*amr.Hierarchy, *cosmology.ZoomIC, error) {
	if o.RootN == 0 {
		o.RootN = 16
	}
	if o.Redshift == 0 {
		o.Redshift = 99
	}
	if o.BoxComovingKpc == 0 {
		o.BoxComovingKpc = 256
	}
	p := cosmology.StandardCDM()
	a0 := cosmology.AofZ(o.Redshift)
	// Box in Mpc/h for the power spectrum sampling.
	hpar := 0.5
	boxMpcH := o.BoxComovingKpc / 1000 * hpar
	zic, err := p.GenerateZoomIC(o.RootN, o.StaticLevels, boxMpcH, o.Seed)
	if err != nil {
		return nil, nil, err
	}
	ci, cj, ck := zic.DensestCell(0)
	center := [3]float64{
		(float64(ci) + 0.5) / float64(o.RootN),
		(float64(cj) + 0.5) / float64(o.RootN),
		(float64(ck) + 0.5) / float64(o.RootN),
	}
	bg := cosmology.NewBackground(p, a0)
	u := units.Cosmological(o.BoxComovingKpc*units.KpcCM, p.OmegaM, hpar, a0)

	cfg := amr.DefaultConfig(o.RootN)
	cfg.SelfGravity = true
	cfg.GravConst = 1
	cfg.MeanRho = 1
	cfg.JeansN = 4
	fb := p.OmegaB / p.OmegaM
	cfg.MassThresholdGas = 4 * fb / float64(o.RootN*o.RootN*o.RootN)
	cfg.MassThresholdDM = 4 * (1 - fb) / float64(o.RootN*o.RootN*o.RootN)
	cfg.MaxLevel = o.MaxLevel
	cfg.StaticLevels = o.StaticLevels
	const half = 0.15
	for d := 0; d < 3; d++ {
		cfg.StaticLo[d] = center[d] - half
		cfg.StaticHi[d] = center[d] + half
	}
	cfg.Cosmo = bg
	cfg.InitialA = a0
	cfg.Units = u
	cfg.Hydro.CFL = 0.3
	if o.Chemistry {
		cfg.Chemistry = true
		cfg.NSpecies = chem.NumSpecies
		cfg.ChemParams = chem.DefaultSolverParams()
		cfg.CoolParams = chem.CoolParams{Redshift: o.Redshift}
	}
	h, err := amr.NewHierarchy(cfg)
	if err != nil {
		return nil, nil, err
	}

	// Root-grid gas from the level-0 realization, scaled to the starting
	// growth factor.
	d0 := p.GrowthFactor(a0)
	hub := p.Hubble(a0)
	fgr := p.GrowthRate(a0)
	root := h.Root()
	n := o.RootN
	r0 := zic.Levels[0]
	tInit := 140 * (a0 / 0.0073) * (a0 / 0.0073) // adiabatic T(z) after decoupling
	eint := u.EFromTemp(tInit, cfg.Hydro.Gamma, units.MeanMolecularWeightNeutral)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				idx := (k*n+j)*n + i
				delta := d0 * r0.Dlt[idx]
				if delta < -0.9 {
					delta = -0.9
				}
				root.State.Rho.Set(i, j, k, fb*(1+delta))
				vfac := d0 * hub * fgr * u.Time
				root.State.Vx.Set(i, j, k, vfac*r0.PsiX[idx])
				root.State.Vy.Set(i, j, k, vfac*r0.PsiY[idx])
				root.State.Vz.Set(i, j, k, vfac*r0.PsiZ[idx])
				root.State.Eint.Set(i, j, k, eint)
				root.State.Etot.Set(i, j, k, eint)
			}
		}
	}
	// Dark matter: fine particles inside the static region (capturing
	// the small-wavelength modes), coarse outside.
	fine := zic.Levels[zic.FineLevel]
	fineN := fine.N
	mFine := (1 - fb) / float64(fineN*fineN*fineN)
	id := int64(0)
	inStatic := func(x, y, z float64) bool {
		return x >= cfg.StaticLo[0] && x < cfg.StaticHi[0] &&
			y >= cfg.StaticLo[1] && y < cfg.StaticHi[1] &&
			z >= cfg.StaticLo[2] && z < cfg.StaticHi[2]
	}
	coarseStride := fineN / o.RootN
	for k := 0; k < fineN; k++ {
		for j := 0; j < fineN; j++ {
			for i := 0; i < fineN; i++ {
				q := [3]float64{
					(float64(i) + 0.5) / float64(fineN),
					(float64(j) + 0.5) / float64(fineN),
					(float64(k) + 0.5) / float64(fineN),
				}
				fineHere := inStatic(q[0], q[1], q[2])
				if !fineHere {
					// Outside the zoom: one particle per coarse cell only.
					if i%coarseStride != 0 || j%coarseStride != 0 || k%coarseStride != 0 {
						continue
					}
				}
				idx := (k*fineN+j)*fineN + i
				mass := mFine
				if !fineHere {
					mass = mFine * float64(coarseStride*coarseStride*coarseStride)
				}
				vfac := d0 * hub * fgr * u.Time
				root.Parts.Add(
					ep128.FromFloat64(wrap01(q[0]+d0*fine.PsiX[idx])),
					ep128.FromFloat64(wrap01(q[1]+d0*fine.PsiY[idx])),
					ep128.FromFloat64(wrap01(q[2]+d0*fine.PsiZ[idx])),
					vfac*fine.PsiX[idx], vfac*fine.PsiY[idx], vfac*fine.PsiZ[idx],
					mass, id)
				id++
			}
		}
	}
	if o.Chemistry {
		setPrimordialSpecies(h, u, a0, 3e-4, 2e-6)
	}
	h.RebuildHierarchy(1)
	return h, zic, nil
}

func sq(x float64) float64 { return x * x }

func wrap01(x float64) float64 {
	x = math.Mod(x, 1)
	if x < 0 {
		x++
	}
	return x
}
