// Knob parsing and canonical serialization. The "-p key=value" CLI
// syntax, the sim service's JSON knob maps and the sweep files of
// enzobatch all funnel into the same Extra map; CanonicalOpts renders a
// resolved Opts as a single deterministic string so that physically
// identical requests hash identically (the sim scheduler's dedupe/cache
// key) no matter which front end produced them.
package problems

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParseKnob parses one "key=value" problem knob as accepted by the
// enzogo -p flag. Keys must be non-empty and free of the characters the
// canonical serialization uses as structure ('=', ';', '{', '}', spaces
// and other control/whitespace); values must be finite floats — NaN and
// infinities are rejected because they cannot round-trip through a
// canonical form (NaN != NaN) and are never meaningful physics knobs.
func ParseKnob(s string) (key string, val float64, err error) {
	key, raw, ok := strings.Cut(s, "=")
	if !ok {
		return "", 0, fmt.Errorf("problems: knob %q: want key=value", s)
	}
	if err := validKnobKey(key); err != nil {
		return "", 0, err
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return "", 0, fmt.Errorf("problems: knob %q: %v", s, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "", 0, fmt.Errorf("problems: knob %q: value must be finite", s)
	}
	return key, v, nil
}

func validKnobKey(key string) error {
	if key == "" {
		return fmt.Errorf("problems: empty knob key")
	}
	for _, r := range key {
		if r <= ' ' || r == '=' || r == ';' || r == '{' || r == '}' || r == 0x7f {
			return fmt.Errorf("problems: knob key %q contains reserved character %q", key, r)
		}
	}
	return nil
}

// CanonicalKnobs renders an Extra map in its canonical form:
// "{k1=v1;k2=v2}" with keys sorted and values formatted to round-trip
// exactly (strconv 'g', shortest). An empty or nil map renders as "{}".
func CanonicalKnobs(extra map[string]float64) string {
	keys := make([]string, 0, len(extra))
	for k := range extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(strconv.FormatFloat(extra[k], 'g', -1, 64))
	}
	sb.WriteByte('}')
	return sb.String()
}

// ParseCanonicalKnobs inverts CanonicalKnobs. It accepts exactly the
// canonical form: "{}" or "{k=v;...}" with valid keys and finite values.
func ParseCanonicalKnobs(s string) (map[string]float64, error) {
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return nil, fmt.Errorf("problems: canonical knobs %q: want {k=v;...}", s)
	}
	body := s[1 : len(s)-1]
	out := map[string]float64{}
	if body == "" {
		return out, nil
	}
	for _, pair := range strings.Split(body, ";") {
		k, v, err := ParseKnob(pair)
		if err != nil {
			return nil, err
		}
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("problems: canonical knobs %q: duplicate key %q", s, k)
		}
		out[k] = v
	}
	return out, nil
}

// Canonical renders a fully resolved Opts as a deterministic string: the
// identity of a run's configuration for hashing and caching. Every field
// participates, including Workers — grid kernels are worker-invariant but
// the CIC deposit's reduction order is not, so two worker budgets are two
// bitwise identities. Callers wanting a workers-agnostic key zero the
// field first.
func (o Opts) Canonical() string {
	return fmt.Sprintf("rootn=%d;maxlevel=%d;chem=%t;workers=%d;seed=%d;solver=%s;knobs=%s",
		o.RootN, o.MaxLevel, o.Chemistry, o.Workers, o.Seed, o.Solver,
		CanonicalKnobs(o.Extra))
}
