package problems

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates testdata/golden.json from the current physics:
//
//	go test ./internal/problems -run TestGoldenRegression -update
//
// Only do this when a PR intentionally changes the numerics; the whole
// point of the file is that unintentional drift fails CI.
var update = flag.Bool("update", false, "rewrite the golden checksum file")

// goldenEntry pins one problem's evolved state. The sizes are recorded so
// a mismatch report shows what configuration the hash belongs to.
type goldenEntry struct {
	Hash     string `json:"hash"`
	RootN    int    `json:"rootn"`
	MaxLevel int    `json:"maxlevel"`
	Steps    int    `json:"steps"`
}

const goldenFile = "testdata/golden.json"
const goldenSteps = 2

// goldenOpts shrinks a spec's defaults to the pinned golden size: 16³
// and at most two refinement levels. The worker budget is deliberately
// left at the spec default (0 = NumCPU): every kernel, including the CIC
// deposit's fixed-chunk reduction, is bitwise invariant under the worker
// count, so the committed hashes must not depend on the host's core
// count — this test is the proof.
func goldenOpts(spec Spec) Opts {
	o := spec.Defaults
	o.RootN = 16
	if o.MaxLevel > 2 {
		o.MaxLevel = 2
	}
	return o
}

// TestGoldenRegression is the drift alarm for the whole physics stack:
// every registered problem evolves two root steps at 16³ and its state
// checksum (amr.Checksum: every field bit of every grid plus particles)
// must equal the committed golden hash. Any PR that changes any answer
// anywhere trips it — intentional changes regenerate with -update.
func TestGoldenRegression(t *testing.T) {
	golden := map[string]goldenEntry{}
	if raw, err := os.ReadFile(goldenFile); err == nil {
		if err := json.Unmarshal(raw, &golden); err != nil {
			t.Fatalf("%s is corrupt: %v", goldenFile, err)
		}
	} else if !*update {
		t.Fatalf("missing %s — run with -update to create it: %v", goldenFile, err)
	}

	got := map[string]goldenEntry{}
	for _, spec := range Specs() { // sorted: table order matches -list
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			o := goldenOpts(spec)
			h, err := BuildSpec(spec, o)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < goldenSteps; s++ {
				h.Step()
			}
			entry := goldenEntry{
				Hash:     h.ChecksumHex(),
				RootN:    o.RootN,
				MaxLevel: o.MaxLevel,
				Steps:    goldenSteps,
			}
			got[spec.Name] = entry
			if *update {
				return
			}
			want, ok := golden[spec.Name]
			if !ok {
				t.Fatalf("problem %q has no golden entry — run with -update after registering a problem", spec.Name)
			}
			if want != entry {
				t.Errorf("golden mismatch for %q:\n  committed: %+v\n  got:       %+v\n"+
					"the physics changed; if intentional, regenerate with -update",
					spec.Name, want, entry)
			}
		})
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), goldenFile)
		return
	}

	// A golden entry whose problem vanished means the registry shrank
	// silently; make that loud too. Checked against the registry, not
	// the subtests that ran, so a filtered -run invocation stays clean.
	for name := range golden {
		if _, ok := Get(name); !ok {
			t.Errorf("golden entry %q has no registered problem — deregistered? run -update if intentional", name)
		}
	}
}
