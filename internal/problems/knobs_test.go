package problems

import (
	"math"
	"sort"
	"strings"
	"testing"
)

func TestParseKnob(t *testing.T) {
	cases := []struct {
		in      string
		key     string
		val     float64
		wantErr bool
	}{
		{"e0=10", "e0", 10, false},
		{"delta=4.5e-3", "delta", 4.5e-3, false},
		{"tinit=-800", "tinit", -800, false},
		{"noequals", "", 0, true},
		{"=5", "", 0, true},
		{"e0=", "", 0, true},
		{"e0=abc", "", 0, true},
		{"e0=NaN", "", 0, true},
		{"e0=+Inf", "", 0, true},
		{"a=b=c", "", 0, true}, // "b=c" is not a float
		{"a b=1", "", 0, true}, // space in key
		{"a;b=1", "", 0, true}, // canonical separator in key
		{"k{=1", "", 0, true},
	}
	for _, tc := range cases {
		k, v, err := ParseKnob(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseKnob(%q) = %q,%v, want error", tc.in, k, v)
			}
			continue
		}
		if err != nil || k != tc.key || v != tc.val {
			t.Errorf("ParseKnob(%q) = %q,%v,%v want %q,%v", tc.in, k, v, err, tc.key, tc.val)
		}
	}
}

func TestCanonicalKnobsRoundTripAndOrder(t *testing.T) {
	m := map[string]float64{"zeta": 1e-300, "alpha": 3.14159265358979, "mid": math.Copysign(0, -1)}
	s := CanonicalKnobs(m)
	if s != "{alpha=3.14159265358979;mid=-0;zeta=1e-300}" {
		t.Fatalf("canonical form %q not sorted/shortest", s)
	}
	back, err := ParseCanonicalKnobs(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(m) {
		t.Fatalf("round trip lost keys: %v", back)
	}
	for k, v := range m {
		if bits(back[k]) != bits(v) {
			t.Fatalf("knob %q: %v -> %v", k, v, back[k])
		}
	}
	if CanonicalKnobs(nil) != "{}" {
		t.Fatal("nil map must canonicalize to {}")
	}
	if _, err := ParseCanonicalKnobs("{a=1;a=2}"); err == nil {
		t.Fatal("duplicate keys must be rejected")
	}
	if _, err := ParseCanonicalKnobs("a=1"); err == nil {
		t.Fatal("missing braces must be rejected")
	}
}

func bits(v float64) uint64 { return math.Float64bits(v) }

// TestOptsCanonicalDiscriminates: every field must participate in the
// canonical identity.
func TestOptsCanonicalDiscriminates(t *testing.T) {
	base := Opts{RootN: 16, MaxLevel: 2, Chemistry: true, Workers: 2, Seed: 7, Solver: "ppm",
		Extra: map[string]float64{"e0": 10}}
	mutations := []func(*Opts){
		func(o *Opts) { o.RootN = 32 },
		func(o *Opts) { o.MaxLevel = 3 },
		func(o *Opts) { o.Chemistry = false },
		func(o *Opts) { o.Workers = 4 },
		func(o *Opts) { o.Seed = 8 },
		func(o *Opts) { o.Solver = "fd" },
		func(o *Opts) { o.Extra = map[string]float64{"e0": 11} },
	}
	ref := base.Canonical()
	for i, mut := range mutations {
		o := base
		o.Extra = map[string]float64{"e0": 10}
		mut(&o)
		if o.Canonical() == ref {
			t.Errorf("mutation %d did not change the canonical form %q", i, ref)
		}
	}
}

// FuzzParseKnobs fuzzes the full -p pipeline: parsing never panics, and
// every accepted knob survives the parse → canonicalize → parse round
// trip bit-for-bit (the property the sim job cache keys depend on).
func FuzzParseKnobs(f *testing.F) {
	for _, seed := range []string{
		"e0=10", "delta=4.5e-3", "a=-0", "k=1e308", "x=0x1p-52",
		"", "=", "a=b=c", "noequals", "key=NaN", "key=Inf",
		"spaced key=1", "semi;colon=2", "{brace=3", "a=9007199254740993",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		key, val, err := ParseKnob(s)
		if err != nil {
			return // malformed input rejected cleanly: that's the contract
		}
		if math.IsNaN(val) || math.IsInf(val, 0) {
			t.Fatalf("ParseKnob(%q) accepted non-finite %v", s, val)
		}
		canon := CanonicalKnobs(map[string]float64{key: val})
		back, err := ParseCanonicalKnobs(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted knob %q does not re-parse: %v", canon, s, err)
		}
		v2, ok := back[key]
		if !ok || bits(v2) != bits(val) {
			t.Fatalf("round trip %q -> %q -> %v lost the value %v", s, canon, back, val)
		}
		// Canonicalization is idempotent.
		if again := CanonicalKnobs(back); again != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, again)
		}
	})
}

// TestSpecsSortedDeterministic pins the registry iteration order shared
// by enzogo -list, the CI problems matrix and the golden table: sorted by
// name, identical across calls.
func TestSpecsSortedDeterministic(t *testing.T) {
	specs := Specs()
	if len(specs) == 0 {
		t.Fatal("no registered problems")
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Specs() not sorted: %v", names)
	}
	if got := strings.Join(Names(), ","); got != strings.Join(names, ",") {
		t.Fatalf("Specs() order %v disagrees with Names() %v", names, Names())
	}
	again := Specs()
	for i := range again {
		if again[i].Name != specs[i].Name {
			t.Fatalf("Specs() order changed between calls at %d", i)
		}
	}
}
