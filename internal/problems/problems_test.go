package problems

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/chem"
)

func TestSedovBlastScaling(t *testing.T) {
	// The Sedov-Taylor blast radius grows as t^{2/5}: run to two times
	// and compare the exponent. The full 32³ run takes ~8 minutes
	// single-core; short mode drops to 16³ over a shorter window, which
	// still resolves the scaling exponent and triggers refinement.
	rootN, tMid, tEnd := 32, 0.05, 0.15
	if testing.Short() {
		rootN, tMid, tEnd = 16, 0.04, 0.12
	}
	h, err := Sedov(rootN, 1, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	var t1, t2, r1, r2 float64
	for h.Time < tMid {
		h.Step()
	}
	t1, r1 = h.Time, ShockRadius(h)
	for h.Time < tEnd {
		h.Step()
	}
	t2, r2 = h.Time, ShockRadius(h)
	if r1 <= 0 || r2 <= r1 {
		t.Fatalf("blast did not expand: r1=%v r2=%v", r1, r2)
	}
	exp := math.Log(r2/r1) / math.Log(t2/t1)
	if exp < 0.2 || exp > 0.65 {
		t.Errorf("blast radius exponent %v, want ~0.4 (Sedov t^{2/5})", exp)
	}
	// The blast must have triggered refinement.
	if h.MaxLevel() < 1 {
		t.Error("blast did not refine")
	}
}

func TestSedovSymmetry(t *testing.T) {
	h, err := Sedov(16, 0, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		h.Step()
	}
	root := h.Root()
	n := 16
	// Density must be mirror-symmetric about the center plane.
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n/2; i++ {
				a := root.State.Rho.At(i, j, k)
				b := root.State.Rho.At(n-1-i, j, k)
				if math.Abs(a-b) > 1e-9*(a+b) {
					t.Fatalf("asymmetry at (%d,%d,%d): %v vs %v", i, j, k, a, b)
				}
			}
		}
	}
}

func TestPancakeCollapses(t *testing.T) {
	h, err := Pancake(PancakeOpts{RootN: 16, AStart: 0.05, ACollapse: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	// The density contrast must grow as the mode approaches its caustic.
	contrast := func() float64 {
		mn, mx := h.Root().State.Rho.MinMaxActive()
		return mx / mn
	}
	c0 := contrast()
	for s := 0; s < 25 && h.Cfg.Cosmo.A < 0.12; s++ {
		h.Step()
	}
	c1 := contrast()
	if c1 <= c0 {
		t.Fatalf("pancake contrast did not grow: %v -> %v", c0, c1)
	}
	if h.Cfg.Cosmo.A <= 0.05 {
		t.Fatal("expansion factor did not advance")
	}
	// Total gas mass conserved.
	// (Comoving density: mean fixed at OmegaB/OmegaM.)
	mean := h.Root().State.Rho.SumActive() / float64(16*16*16)
	if math.Abs(mean-0.06) > 0.01 {
		t.Errorf("mean baryon density %v, want 0.06", mean)
	}
}

func TestPrimordialCollapseRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	o := DefaultCollapseOpts()
	o.RootN = 16
	o.MaxLevel = 3
	h, err := PrimordialCollapse(o)
	if err != nil {
		t.Fatal(err)
	}
	// A few steps: the clump must stay sane, chemistry must be evolving.
	var peak0 float64
	_, peak0 = analysis.DensestPoint(h)
	for s := 0; s < 3; s++ {
		h.Step()
	}
	pos, peak1 := analysis.DensestPoint(h)
	if peak1 <= 0 || math.IsNaN(peak1) {
		t.Fatalf("bad peak density %v", peak1)
	}
	// The collapse should raise the peak (gravity dominates pressure by
	// construction).
	if peak1 < 0.5*peak0 {
		t.Errorf("peak density fell sharply: %v -> %v", peak0, peak1)
	}
	// Peak near the box center.
	for d := 0; d < 3; d++ {
		if math.Abs(pos[d]-0.5) > 0.2 {
			t.Errorf("peak at %v, want near center", pos)
		}
	}
	if h.Stats.ChemCellCalls == 0 {
		t.Error("chemistry never ran")
	}
	// Species stay positive and HI remains dominant early on.
	g := h.FinestGridAt(pos[0], pos[1], pos[2])
	i := int((pos[0] - g.Edge[0].Float64()) / g.Dx)
	j := int((pos[1] - g.Edge[1].Float64()) / g.Dx)
	k := int((pos[2] - g.Edge[2].Float64()) / g.Dx)
	hi := g.State.Species[chem.HI].At(i, j, k)
	h2 := g.State.Species[chem.H2I].At(i, j, k)
	if hi <= 0 || h2 < 0 {
		t.Fatalf("bad species at peak: HI=%v H2=%v", hi, h2)
	}
	if h2 > hi {
		t.Errorf("H2 should not dominate this early")
	}
}

func TestCosmologicalZoomSetup(t *testing.T) {
	h, zic, err := CosmologicalZoom(ZoomOpts{
		RootN: 8, StaticLevels: 2, MaxLevel: 3, Seed: 7, Redshift: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if zic.Levels[2].N != 32 {
		t.Fatalf("fine IC level N=%d", zic.Levels[2].N)
	}
	// Static levels must exist.
	if h.MaxLevel() < 2 {
		t.Fatalf("static zoom levels missing: max level %d", h.MaxLevel())
	}
	// Particle mass budget: total DM mass = 1 - fb.
	var mdm float64
	for _, lv := range h.Levels {
		for _, g := range lv {
			mdm += g.Parts.TotalMass()
		}
	}
	if math.Abs(mdm-0.94) > 0.02 {
		t.Errorf("DM mass %v, want ~0.94", mdm)
	}
	// Gas mean = baryon fraction.
	mean := h.Root().State.Rho.SumActive() / 512
	if math.Abs(mean-0.06) > 0.015 {
		t.Errorf("mean gas density %v, want ~0.06", mean)
	}
	// The static region contains more particles per volume (fine lattice).
	// Count particles inside vs outside static region.
	inside, outside := 0, 0
	for _, lv := range h.Levels {
		for _, g := range lv {
			for i := 0; i < g.Parts.Len(); i++ {
				x := g.Parts.X[i].Float64()
				y := g.Parts.Y[i].Float64()
				z := g.Parts.Z[i].Float64()
				if x >= h.Cfg.StaticLo[0] && x < h.Cfg.StaticHi[0] &&
					y >= h.Cfg.StaticLo[1] && y < h.Cfg.StaticHi[1] &&
					z >= h.Cfg.StaticLo[2] && z < h.Cfg.StaticHi[2] {
					inside++
				} else {
					outside++
				}
			}
		}
	}
	volIn := math.Pow(h.Cfg.StaticHi[0]-h.Cfg.StaticLo[0], 3)
	if float64(inside)/volIn < float64(outside)/(1-volIn) {
		t.Errorf("zoom region not denser in particles: %d in (vol %v), %d out", inside, volIn, outside)
	}
}

func TestCollapseOptsValidation(t *testing.T) {
	if _, err := PrimordialCollapse(CollapseOpts{}); err == nil {
		t.Fatal("zero RootN should fail")
	}
}
