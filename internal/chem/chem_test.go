package chem

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestPrimordialComposition(t *testing.T) {
	s := Primordial(1.0, 1e-4, 1e-6)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.HNuclei()-1.0) > 1e-12 {
		t.Errorf("H nuclei = %v, want 1", s.HNuclei())
	}
	// He/H mass ratio 24/76.
	heMass := s.HeNuclei() * 4
	hMass := s.HNuclei() * 1
	if r := heMass / hMass; math.Abs(r-0.24/0.76) > 1e-12 {
		t.Errorf("He/H mass ratio %v", r)
	}
	if math.Abs(s.Charge()) > 1e-18 {
		t.Errorf("initial charge imbalance %v", s.Charge())
	}
	if s.ElectronFraction() != 1e-4 {
		t.Errorf("xe = %v", s.ElectronFraction())
	}
}

func TestMeanMolecularWeight(t *testing.T) {
	// Neutral primordial gas: mu ~ 1.22; fully ionized: mu ~ 0.59.
	n := Primordial(1, 0, 0)
	mu := n.MeanMolecularWeight()
	if mu < 1.21 || mu > 1.24 {
		t.Errorf("neutral mu = %v", mu)
	}
	var ion State
	ion[HII] = 1
	ion[HeIII] = (0.24 / 4) / 0.76
	ion[Elec] = ion[HII] + 2*ion[HeIII]
	mu = ion.MeanMolecularWeight()
	if mu < 0.57 || mu > 0.62 {
		t.Errorf("ionized mu = %v", mu)
	}
}

func TestRatesPositiveAndFinite(t *testing.T) {
	for _, T := range []float64{2.7, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e8} {
		r := RatesAt(T)
		vals := []float64{r.K1, r.K2, r.K3, r.K4, r.K5, r.K6, r.K7, r.K8, r.K9,
			r.K10, r.K11, r.K12, r.K13, r.K14, r.K15, r.K16, r.K17, r.K18,
			r.K19, r.K21, r.K22, r.KD1, r.KD2, r.KD3, r.KD4, r.KD5, r.KD6}
		for i, v := range vals {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("rate %d at T=%v is %v", i, T, v)
			}
		}
	}
}

func TestRecombinationBeatsIonizationAtLowT(t *testing.T) {
	r := RatesAt(1e3)
	if r.K1 >= r.K2 {
		t.Errorf("at 1e3 K ionization %e should be tiny vs recombination %e", r.K1, r.K2)
	}
	r = RatesAt(2e5)
	if r.K1 <= r.K2 {
		t.Errorf("at 2e5 K ionization %e should beat recombination %e", r.K1, r.K2)
	}
}

func TestThreeBodyRateGrowsAtLowT(t *testing.T) {
	if RatesAt(200).K21 <= RatesAt(2000).K21 {
		t.Error("3-body rate should increase toward low T")
	}
}

func TestH2CoolingShape(t *testing.T) {
	// The low-density H2 cooling function rises steeply from ~100 K to
	// ~1000 K (rotational ladder), enabling cooling to a few hundred K.
	l100 := h2CoolingLowDensity(100)
	l1000 := h2CoolingLowDensity(1000)
	if l100 <= 0 || l1000 <= 0 {
		t.Fatal("H2 cooling non-positive in valid range")
	}
	if l1000 < 100*l100 {
		t.Errorf("H2 cooling rise too shallow: %e -> %e", l100, l1000)
	}
	if h2CoolingLowDensity(5) != 0 {
		t.Error("H2 cooling should vanish below 13 K")
	}
}

func TestH2CoolingDensitySaturation(t *testing.T) {
	// Per-molecule cooling must saturate (LTE) at high density: going
	// from n_H = 1e2 to 1e12 must raise the total rate by far less than
	// the density ratio.
	T := 1000.0
	s1 := Primordial(1e2, 1e-4, 1e-3)
	s2 := Primordial(1e12, 1e-4, 1e-3)
	c1 := H2Cooling(s1, T)
	c2 := H2Cooling(s2, T)
	// Total scales as n^2 in the low-density limit; at LTE it scales as
	// n. The jump across ten decades must be well under n^2 scaling.
	if c2/c1 > 1e18 {
		t.Errorf("no LTE saturation: ratio %e", c2/c1)
	}
	if c2 <= c1 {
		t.Errorf("cooling should still grow with density")
	}
}

func TestComptonSign(t *testing.T) {
	cp := CoolParams{Redshift: 20}
	var s State
	s[Elec] = 1
	if ComptonCooling(s, 1000, cp) <= 0 {
		t.Error("gas hotter than CMB should Compton-cool")
	}
	if ComptonCooling(s, 10, cp) >= 0 {
		t.Error("gas colder than CMB should Compton-heat")
	}
}

func TestChemicalHeatingSign(t *testing.T) {
	r := RatesAt(1000)
	// Pure atomic gas at huge density: 3-body formation dominates ->
	// net heating (negative cooling).
	s := Primordial(1e12, 1e-6, 1e-8)
	if ChemicalHeating(s, r) >= 0 {
		t.Error("3-body formation should heat")
	}
}

func TestEvolveConservesNuclei(t *testing.T) {
	s := Primordial(1e4, 1e-3, 1e-5)
	eint := EintFromT(s, 800, 5.0/3.0)
	cp := CoolParams{Redshift: 19}
	sp := DefaultSolverParams()
	h0, he0, d0 := s.HNuclei(), s.HeNuclei(), s.DNuclei()
	out, _, _ := EvolveCell(s, eint, 1e10, cp, sp)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(out.HNuclei()-h0) / h0; rel > 1e-6 {
		t.Errorf("H nuclei drift %e", rel)
	}
	if rel := math.Abs(out.HeNuclei()-he0) / he0; rel > 1e-6 {
		t.Errorf("He nuclei drift %e", rel)
	}
	if rel := math.Abs(out.DNuclei()-d0) / d0; rel > 1e-4 {
		t.Errorf("D nuclei drift %e", rel)
	}
	if math.Abs(out.Charge()) > 1e-9*out.HNuclei() {
		t.Errorf("charge imbalance %e", out.Charge())
	}
}

func TestH2FormsInCoolDenseGas(t *testing.T) {
	// The H- channel must build molecular fraction ~1e-4..1e-3 in the
	// protogalactic core regime (paper Fig 4C: f_H2 ~ 1e-3).
	s := Primordial(1e3, 3e-4, 1e-8)
	eint := EintFromT(s, 1000, 5.0/3.0)
	cp := CoolParams{Redshift: 19}
	sp := DefaultSolverParams()
	sp.MaxSubcycles = 20000
	// Evolve for ~10 Myr.
	out, _, _ := EvolveCell(s, eint, 10*units.MyrSeconds, cp, sp)
	f := out.H2Fraction()
	if f < 1e-5 || f > 1e-2 {
		t.Errorf("H2 fraction after 10 Myr = %e, want ~1e-4..1e-3", f)
	}
	if f <= s.H2Fraction() {
		t.Error("H2 fraction did not grow")
	}
}

func TestThreeBodyTurnsGasMolecular(t *testing.T) {
	// Above n ~ 1e11 the 3-body reaction must drive f_H2 toward unity
	// (paper: "at central densities ~1e11 атomic and molecular hydrogen
	// exist in similar abundance").
	s := Primordial(1e12, 1e-8, 1e-3)
	eint := EintFromT(s, 800, 5.0/3.0)
	cp := CoolParams{Redshift: 19}
	sp := DefaultSolverParams()
	sp.MaxSubcycles = 50000
	out, _, _ := EvolveCell(s, eint, 1000*units.YearSeconds, cp, sp)
	if out.H2Fraction() < 0.3 {
		t.Errorf("3-body H2 fraction = %e, want > 0.3", out.H2Fraction())
	}
}

func TestCoolingDropsTemperature(t *testing.T) {
	// Gas at 3000 K with an H2 fraction must cool toward a few hundred K.
	s := Primordial(1e4, 1e-4, 5e-4)
	gamma := 5.0 / 3.0
	eint := EintFromT(s, 3000, gamma)
	cp := CoolParams{Redshift: 19}
	sp := DefaultSolverParams()
	sp.MaxSubcycles = 50000
	out, e1, _ := EvolveCell(s, eint, 30*units.MyrSeconds, cp, sp)
	T1 := Temperature(out, e1, gamma)
	if T1 > 1000 {
		t.Errorf("gas failed to cool: T = %v", T1)
	}
	if T1 < cp.TCMB() {
		t.Errorf("cooled below CMB floor: %v < %v", T1, cp.TCMB())
	}
}

func TestHotGasIonizes(t *testing.T) {
	s := Primordial(1, 1e-4, 0)
	gamma := 5.0 / 3.0
	eint := EintFromT(s, 5e4, gamma)
	cp := CoolParams{Redshift: 5}
	sp := DefaultSolverParams()
	sp.TFloorCMB = true
	sp.MaxSubcycles = 20000
	// Hold temperature conceptually: short evolution, check ionization
	// moves upward.
	out, _, _ := EvolveCell(s, eint, 3*units.MyrSeconds, cp, sp)
	if out.ElectronFraction() <= 1e-4 {
		t.Errorf("hot gas did not ionize: xe = %e", out.ElectronFraction())
	}
}

func TestTemperatureRoundTrip(t *testing.T) {
	s := Primordial(100, 1e-4, 1e-4)
	gamma := 5.0 / 3.0
	for _, T := range []float64{10, 200, 1e4} {
		e := EintFromT(s, T, gamma)
		if b := Temperature(s, e, gamma); math.Abs(b-T)/T > 1e-12 {
			t.Errorf("T round trip %v -> %v", T, b)
		}
	}
}

func TestPropEvolvePreservesPositivity(t *testing.T) {
	cp := CoolParams{Redshift: 19}
	sp := DefaultSolverParams()
	f := func(seed uint8, logn uint8, logT uint8) bool {
		nH := math.Pow(10, float64(logn%13)-1) // 0.1 .. 1e11
		T := math.Pow(10, 1+float64(logT%4))   // 10 .. 1e4
		xe := math.Pow(10, -1-float64(seed%6)) // 1e-1 .. 1e-6
		s := Primordial(nH, xe, 1e-6)
		eint := EintFromT(s, T, sp.Gamma)
		out, e1, _ := EvolveCell(s, eint, 0.1*units.MyrSeconds, cp, sp)
		if e1 <= 0 {
			return false
		}
		return out.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEvolveCell(b *testing.B) {
	s := Primordial(1e4, 1e-3, 1e-5)
	eint := EintFromT(s, 1000, 5.0/3.0)
	cp := CoolParams{Redshift: 19}
	sp := DefaultSolverParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvolveCell(s, eint, 1e9, cp, sp)
	}
}

func BenchmarkRatesAt(b *testing.B) {
	var r Rates
	for i := 0; i < b.N; i++ {
		r = RatesAt(500 + float64(i%1000))
	}
	_ = r
}
