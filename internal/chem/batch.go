package chem

// Pencil is an SoA batch of cells for the chemistry solver: one contiguous
// row of number densities per species plus the specific internal energies,
// evolved in a single pass. The grid operator gathers a row of cells into a
// pencil (converting code units to CGS once, with the per-species mass
// factors hoisted out of the cell loop), calls Evolve, and scatters the
// result back — mirroring the hydro sweep's gather→kernel→scatter shape so
// the species fields are walked as flat slices instead of per-cell At/Set
// index arithmetic.
//
// Each cell remains an independent stiff-network integration (the paper's
// sub-cycled backward-Euler scheme), so the batched form is bitwise
// identical to calling EvolveCell per cell — which is exactly what Evolve
// does, from L1-resident buffers. The rate coefficients are deliberately
// NOT tabulated/interpolated across the batch: every cell's temperature
// differs per sub-cycle, and bitwise reproducibility across refactors is
// the acceptance bar for kernel rewrites (see docs/ARCHITECTURE.md).
type Pencil struct {
	// N is the number of cells in the batch.
	N int
	// Species holds one contiguous row of number densities [cm⁻³] per
	// species.
	Species [NumSpecies][]float64
	// Eint holds the specific internal energy [erg/g] per cell.
	Eint []float64
	// Subcycles accumulates the total sub-cycle count of the last Evolve
	// (the per-cell cost metric of the stiff network).
	Subcycles int
}

// NewPencil allocates a pencil for rows of n cells.
func NewPencil(n int) *Pencil {
	p := &Pencil{N: n, Eint: make([]float64, n)}
	for s := 0; s < NumSpecies; s++ {
		p.Species[s] = make([]float64, n)
	}
	return p
}

// Evolve advances every cell of the pencil by dt [s] at fixed density,
// updating the species and energy rows in place.
func (p *Pencil) Evolve(dt float64, cp CoolParams, sp SolverParams) {
	p.Subcycles = 0
	for i := 0; i < p.N; i++ {
		var cs State
		for s := 0; s < NumSpecies; s++ {
			cs[s] = p.Species[s][i]
		}
		out, e1, sub := EvolveCell(cs, p.Eint[i], dt, cp, sp)
		for s := 0; s < NumSpecies; s++ {
			p.Species[s][i] = out[s]
		}
		p.Eint[i] = e1
		p.Subcycles += sub
	}
}
