package chem

import (
	"math"

	"repro/internal/units"
)

// The stiff network integrator of Anninos et al. (1997), as the paper
// describes (§3.3): "Because the equations are stiff, we use a backward
// finite-difference technique for stability, sub-cycling within a fluid
// timestep for additional accuracy."
//
// Each species is updated with the linearized backward-Euler form
//
//	n_new = (n_old + C·dt) / (1 + D·dt)
//
// where C collects creation terms and D·n destruction terms, evaluated
// Gauss–Seidel style (each update sees the freshest neighbours). The two
// fast intermediaries H⁻ and H₂⁺ are set to their local equilibrium values,
// exactly as in the original scheme. The sub-cycle step is limited by the
// electron-density and internal-energy change rates.

// SolverParams configures the sub-cycled integrator.
type SolverParams struct {
	Gamma        float64 // adiabatic index
	MaxSubcycles int     // hard cap on sub-steps per cell per call
	ChangeLimit  float64 // max fractional change of n_e or e per sub-step
	TFloorCMB    bool    // do not cool below the CMB temperature
}

// DefaultSolverParams returns the production configuration.
func DefaultSolverParams() SolverParams {
	return SolverParams{
		Gamma:        5.0 / 3.0,
		MaxSubcycles: 500,
		ChangeLimit:  0.1,
		TFloorCMB:    true,
	}
}

// Temperature computes T [K] from the specific internal energy
// e [erg/g] and the state's mean molecular weight.
func Temperature(s State, eint float64, gamma float64) float64 {
	mu := s.MeanMolecularWeight()
	t := eint * (gamma - 1) * mu * units.MProton / units.KBoltzmann
	if t < 1 {
		t = 1
	}
	return t
}

// EintFromT converts a temperature to specific internal energy [erg/g].
func EintFromT(s State, T, gamma float64) float64 {
	mu := s.MeanMolecularWeight()
	return T * units.KBoltzmann / ((gamma - 1) * mu * units.MProton)
}

// EvolveCell advances one cell's chemical state and specific internal
// energy [erg/g] over dt [s] at fixed density, returning the new state,
// energy, and the number of sub-cycles used.
func EvolveCell(s State, eint, dt float64, cp CoolParams, sp SolverParams) (State, float64, int) {
	rhoCGS := s.MassDensity() * units.MProton // g/cm^3
	// Nuclei totals to conserve (the linearized Gauss-Seidel update is
	// not exactly conservative; the original solver renormalizes each
	// family after the update, and so do we).
	h0 := s[HI] + s[HII] + s[Hm] + 2*s[H2I] + 2*s[H2p]
	he0 := s.HeNuclei()
	d0 := s.DNuclei()
	tLeft := dt
	sub := 0
	for tLeft > 0 && sub < sp.MaxSubcycles {
		T := Temperature(s, eint, sp.Gamma)
		r := RatesAt(T)

		// Equilibrium fast species.
		s[Hm] = equilibriumHm(s, r)
		s[H2p] = equilibriumH2p(s, r)

		// Sub-step limiter: electron and energy change rates.
		dtSub := tLeft
		neDot := electronDot(s, r)
		if ne := s[Elec]; ne > 0 && neDot != 0 {
			if lim := sp.ChangeLimit * ne / math.Abs(neDot); lim < dtSub {
				dtSub = lim
			}
		}
		lam := NetCooling(s, T, r, cp)
		eDotSpecific := -lam / rhoCGS
		if eDotSpecific != 0 {
			if lim := sp.ChangeLimit * eint / math.Abs(eDotSpecific); lim < dtSub {
				dtSub = lim
			}
		}
		if dtSub < 1e-10*dt {
			dtSub = 1e-10 * dt
		}

		s = speciesBackwardEuler(s, r, dtSub)
		s = renormalizeNuclei(s, h0, he0, d0)
		// Charge conservation closes the electron density.
		ne := s[HII] + s[HeII] + 2*s[HeIII] + s[H2p] + s[DII] - s[Hm]
		if ne < 0 {
			ne = 0
		}
		s[Elec] = ne

		// Energy update (explicit within the limited sub-step).
		eint += eDotSpecific * dtSub
		if sp.TFloorCMB {
			if tFloor := cp.TCMB(); Temperature(s, eint, sp.Gamma) < tFloor {
				eint = EintFromT(s, tFloor, sp.Gamma)
			}
		}
		if eint < 0 {
			eint = EintFromT(s, 1, sp.Gamma)
		}

		tLeft -= dtSub
		sub++
	}
	return s, eint, sub
}

// renormalizeNuclei rescales each element family so that nuclei counts are
// exactly conserved. HD is counted in the deuterium family (its hydrogen
// atom is a ~4e-5 perturbation on the H budget, ignored as in the original
// code).
func renormalizeNuclei(s State, h0, he0, d0 float64) State {
	if h := s[HI] + s[HII] + s[Hm] + 2*s[H2I] + 2*s[H2p]; h > 0 && h0 > 0 {
		f := h0 / h
		s[HI] *= f
		s[HII] *= f
		s[Hm] *= f
		s[H2I] *= f
		s[H2p] *= f
	}
	if he := s.HeNuclei(); he > 0 && he0 > 0 {
		f := he0 / he
		s[HeI] *= f
		s[HeII] *= f
		s[HeIII] *= f
	}
	if d := s.DNuclei(); d > 0 && d0 > 0 {
		f := d0 / d
		s[DI] *= f
		s[DII] *= f
		s[HD] *= f
	}
	return s
}

// equilibriumHm returns the equilibrium H⁻ abundance (fast intermediary).
func equilibriumHm(s State, r Rates) float64 {
	num := r.K7 * s[HI] * s[Elec]
	den := r.K8*s[HI] + r.K14*s[Elec] + r.K15*s[HI] +
		(r.K16+r.K17)*s[HII] + r.K19*s[H2p]
	if den <= 0 {
		return 0
	}
	return num / den
}

// equilibriumH2p returns the equilibrium H₂⁺ abundance.
func equilibriumH2p(s State, r Rates) float64 {
	num := r.K9*s[HI]*s[HII] + r.K11*s[H2I]*s[HII] + r.K17*s[Hm]*s[HII]
	den := r.K10*s[HI] + r.K18*s[Elec] + r.K19*s[Hm]
	if den <= 0 {
		return 0
	}
	return num / den
}

// electronDot estimates dn_e/dt for the sub-step limiter.
func electronDot(s State, r Rates) float64 {
	create := r.K1*s[HI]*s[Elec] + r.K3*s[HeI]*s[Elec] + r.K5*s[HeII]*s[Elec] +
		r.K8*s[Hm]*s[HI] + r.K15*s[Hm]*s[HI] + r.K17*s[Hm]*s[HII]
	destroy := r.K2*s[HII]*s[Elec] + r.K4*s[HeII]*s[Elec] + r.K6*s[HeIII]*s[Elec] +
		r.K7*s[HI]*s[Elec] + r.K18*s[H2p]*s[Elec]
	return create - destroy
}

// speciesBackwardEuler applies one linearized BE step to the slow species,
// Gauss–Seidel ordering: H⁺, H, He ladder, H₂, deuterium.
func speciesBackwardEuler(s State, r Rates, dt float64) State {
	ne := s[Elec]

	// --- HII ---
	{
		c := r.K1*s[HI]*ne + r.K10*s[H2p]*s[HI] + r.KD1*s[DII]*s[HI]
		d := r.K2*ne + r.K9*s[HI] + r.K11*s[H2I] + (r.K16+r.K17)*s[Hm] + r.KD2*s[DI] + r.KD4*s[HD]
		s[HII] = be(s[HII], c, d, dt)
	}

	// --- HI ---
	// Reactions with net H production enter C (with current GS values);
	// reactions with net H consumption enter D, scaled by the net number
	// of H consumed per reaction.
	{
		nH := s[HI]
		c := r.K2*s[HII]*ne + 2*r.K12*s[H2I]*ne + 2*r.K13*s[H2I]*nH +
			r.K15*s[Hm]*nH + 2*r.K16*s[Hm]*s[HII] + 2*r.K18*s[H2p]*ne +
			r.K19*s[H2p]*s[Hm] + r.KD2*s[DI]*s[HII]
		d := r.K1*ne + r.K7*ne + r.K8*s[Hm] + r.K9*s[HII] + r.K10*s[H2p] +
			2*r.K21*nH*nH + 2*r.K22*nH*s[H2I] + r.KD1*s[DII]
		s[HI] = be(s[HI], c, d, dt)
	}

	// --- Helium ladder ---
	s[HeI] = be(s[HeI], r.K4*s[HeII]*ne, r.K3*ne, dt)
	s[HeII] = be(s[HeII], r.K3*s[HeI]*ne+r.K6*s[HeIII]*ne, (r.K4+r.K5)*ne, dt)
	s[HeIII] = be(s[HeIII], r.K5*s[HeII]*ne, r.K6*ne, dt)

	// --- H2 ---
	// K22 (2H + H2 -> 2H2) nets +1 H2 per reaction; it enters C with the
	// current H2 value (quasi-linearized production).
	{
		nH := s[HI]
		c := r.K8*s[Hm]*nH + r.K10*s[H2p]*nH + r.K19*s[H2p]*s[Hm] +
			r.K21*nH*nH*nH + r.K22*nH*nH*s[H2I] + r.KD4*s[HD]*s[HII]
		d := r.K11*s[HII] + r.K12*ne + r.K13*nH + r.KD3*s[DII]
		s[H2I] = be(s[H2I], c, d, dt)
	}

	// --- Deuterium ---
	{
		c := r.KD1*s[DII]*s[HI] + r.KD6*s[DII]*ne
		d := r.KD2*s[HII] + r.KD5*ne
		s[DI] = be(s[DI], c, d, dt)
	}
	{
		c := r.KD2*s[DI]*s[HII] + r.KD5*s[DI]*ne + r.KD4*s[HD]*s[HII]
		d := r.KD1*s[HI] + r.KD6*ne + r.KD3*s[H2I]
		s[DII] = be(s[DII], c, d, dt)
	}
	s[HD] = be(s[HD], r.KD3*s[DII]*s[H2I], r.KD4*s[HII], dt)

	for i := range s {
		if s[i] < 0 || math.IsNaN(s[i]) {
			s[i] = 0
		}
	}
	return s
}

// be is the linearized backward-Euler update n' = (n + C dt)/(1 + D dt).
// A negative effective destruction rate (from folded net-production terms)
// is clamped to explicit forward production to preserve positivity.
func be(n, c, d, dt float64) float64 {
	if d < 0 {
		return n + (c-d*n)*dt
	}
	return (n + c*dt) / (1 + d*dt)
}
