package chem

import "math"

// Rates holds the reaction rate coefficients at one temperature.
// Numbering follows Abel et al. (1997) table 3 where applicable.
type Rates struct {
	K1  float64 // H    + e  -> H+   + 2e   (collisional ionization)
	K2  float64 // H+   + e  -> H    + γ    (radiative recombination)
	K3  float64 // He   + e  -> He+  + 2e
	K4  float64 // He+  + e  -> He   + γ    (incl. dielectronic)
	K5  float64 // He+  + e  -> He++ + 2e
	K6  float64 // He++ + e  -> He+  + γ
	K7  float64 // H    + e  -> H-   + γ
	K8  float64 // H-   + H  -> H2   + e
	K9  float64 // H    + H+ -> H2+  + γ
	K10 float64 // H2+  + H  -> H2   + H+
	K11 float64 // H2   + H+ -> H2+  + H
	K12 float64 // H2   + e  -> 2H   + e
	K13 float64 // H2   + H  -> 3H           (collisional dissociation)
	K14 float64 // H-   + e  -> H    + 2e
	K15 float64 // H-   + H  -> 2H   + e
	K16 float64 // H-   + H+ -> 2H
	K17 float64 // H-   + H+ -> H2+  + e
	K18 float64 // H2+  + e  -> 2H
	K19 float64 // H2+  + H- -> H2   + H
	K21 float64 // 3H        -> H2   + H     (three-body, cm^6/s)
	K22 float64 // 2H + H2   -> 2H2          (three-body, cm^6/s)
	// Deuterium network (Galli & Palla 1998).
	KD1 float64 // D+  + H  -> D   + H+  (charge exchange)
	KD2 float64 // D   + H+ -> D+  + H
	KD3 float64 // D+  + H2 -> HD  + H+
	KD4 float64 // HD  + H+ -> H2  + D+
	KD5 float64 // D   + e  -> D+  + 2e
	KD6 float64 // D+  + e  -> D   + γ
}

// RatesAt evaluates all rate coefficients at gas temperature T [K].
func RatesAt(T float64) Rates {
	if T < 1 {
		T = 1
	}
	tev := T / 11604.5 // temperature in eV
	sqT := math.Sqrt(T)
	t5 := math.Sqrt(T / 1e5)
	var r Rates

	// Atomic H/He rates: Cen (1992), as used by Anninos et al. (1997).
	r.K1 = 5.85e-11 * sqT * math.Exp(-157809.1/T) / (1 + t5)
	r.K2 = 8.4e-11 / sqT * math.Pow(T/1e3, -0.2) / (1 + math.Pow(T/1e6, 0.7))
	r.K3 = 2.38e-11 * sqT * math.Exp(-285335.4/T) / (1 + t5)
	r.K4 = 1.5e-10*math.Pow(T, -0.6353) +
		1.9e-3*math.Pow(T, -1.5)*math.Exp(-470000/T)*(1+0.3*math.Exp(-94000/T))
	r.K5 = 5.68e-12 * sqT * math.Exp(-631515.0/T) / (1 + t5)
	r.K6 = 3.36e-10 / sqT * math.Pow(T/1e3, -0.2) / (1 + math.Pow(T/1e6, 0.7))

	// H- channel of H2 formation (Galli & Palla 1998 fits).
	r.K7 = 1.4e-18 * math.Pow(T, 0.928) * math.Exp(-T/16200)
	if T < 300 {
		r.K8 = 1.5e-9
	} else {
		r.K8 = 4.0e-9 * math.Pow(T, -0.17)
	}

	// H2+ channel.
	if T < 6700 {
		r.K9 = 1.85e-23 * math.Pow(T, 1.8)
	} else {
		r.K9 = 5.81e-16 * math.Pow(T/56200, -0.6657*math.Log10(T/56200))
	}
	r.K10 = 6.0e-10

	// H2 destruction.
	r.K11 = 3.0e-10 * math.Exp(-21050/T)
	r.K12 = 4.38e-10 * math.Exp(-102000/T) * math.Pow(T, 0.35)
	// Collisional dissociation by H (low-density limit, Abel et al. 97
	// fit 13).
	if tev > 0.1 {
		r.K13 = 1.067e-10 * math.Pow(tev, 2.012) * math.Exp(-4.463/tev) /
			math.Pow(1+0.2472*tev, 3.512)
	}

	// H- destruction channels. K14 (electron collisional detachment,
	// threshold 0.755 eV) is approximated by a thresholded power law;
	// it is subdominant to K8/K16 everywhere in the collapse.
	r.K14 = 7.0e-12 * math.Sqrt(tev) * math.Exp(-0.755/tev)
	r.K15 = 5.3e-20 * T * T * math.Exp(-8750/T) // mutual neutralization by H
	if T > 1e4 {
		r.K15 = 5.3e-20 * 1e8 * math.Exp(-8750/1e4)
	}
	r.K16 = 7.0e-8 * math.Pow(T/100, -0.5)
	r.K17 = 1.0e-8 * math.Pow(T, -0.4)
	if T > 1e4 {
		r.K17 = 4.0e-4 * math.Pow(T, -1.4) * math.Exp(-15100/T)
	}
	r.K18 = 1.0e-8 // H2+ dissociative recombination (weak T dependence)
	if T > 617 {
		r.K18 = 1.32e-6 * math.Pow(T, -0.76)
	}
	r.K19 = 5.0e-7 * math.Sqrt(100/T)

	// Three-body H2 formation (Palla, Salpeter & Stahler 1983) and its
	// companion with H2 as third body.
	r.K21 = 5.5e-29 / T
	r.K22 = r.K21 / 8

	// Deuterium (Galli & Palla 1998 magnitudes).
	r.KD1 = 2.0e-10 * math.Pow(T, 0.402) * math.Exp(-37.1/T)
	if r.KD1 > 3e-9 {
		r.KD1 = 3e-9
	}
	r.KD2 = r.KD1 * math.Exp(-43.0/T) // endothermic by 43 K
	r.KD3 = 2.1e-9
	r.KD4 = 1.0e-9 * math.Exp(-464/T)
	r.KD5 = r.K1 // same as H ionization to good accuracy
	r.KD6 = r.K2
	return r
}
