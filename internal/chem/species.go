// Package chem implements the paper's 12-species non-equilibrium primordial
// chemistry and radiative cooling (§2.2, §3.3): the time-dependent reaction
// network for H, H⁺, He, He⁺, He⁺⁺, e⁻, H⁻, H₂, H₂⁺, D, D⁺ and HD, solved
// with the backward-differenced, sub-cycled scheme of Anninos, Zhang, Abel
// & Norman (1997), plus the radiative loss terms appropriate for metal-free
// gas: H₂ ro-vibrational line cooling (the dominant coolant below 10⁴ K),
// atomic line excitation, recombination, bremsstrahlung and Compton
// coupling to the CMB. Three-body H₂ formation — the reaction that turns
// the cloud fully molecular above n ≈ 10⁹ cm⁻³ and triggers the final
// collapse — is included.
//
// Rate coefficients follow the standard compilations used by the original
// code (Cen 1992; Abel et al. 1997; Galli & Palla 1998). All rates are CGS:
// number densities in cm⁻³, temperatures in K, two-body rates in cm³ s⁻¹,
// three-body in cm⁶ s⁻¹, cooling in erg cm⁻³ s⁻¹.
package chem

import "fmt"

// Species indices within a chemical state vector.
const (
	HI = iota
	HII
	HeI
	HeII
	HeIII
	Elec
	Hm  // H⁻
	H2I // H₂
	H2p // H₂⁺
	DI
	DII
	HD
	NumSpecies
)

// Names maps species indices to display names.
var Names = [NumSpecies]string{
	"HI", "HII", "HeI", "HeII", "HeIII", "e-", "H-", "H2", "H2+", "DI", "DII", "HD",
}

// AtomicWeight gives the mass of one particle of each species in proton
// masses (electrons counted as ~0 for baryon bookkeeping).
var AtomicWeight = [NumSpecies]float64{
	1, 1, 4, 4, 4, 0, 1, 2, 2, 2, 2, 3,
}

// State is a vector of species number densities [cm⁻³].
type State [NumSpecies]float64

// Primordial returns a neutral primordial composition for a total hydrogen
// nuclei density nH [cm⁻³]: 76%/24% H/He by mass, trace ionization xe, a
// trace H₂ fraction fH2, and the cosmological D/H ratio.
func Primordial(nH, xe, fH2 float64) State {
	var s State
	const dToH = 4e-5 // D/H number ratio (primordial)
	s[HI] = nH * (1 - xe - 2*fH2)
	s[HII] = nH * xe
	s[Elec] = nH * xe
	s[H2I] = nH * fH2
	// n_He = (0.24/4) / (0.76/1) * nH
	s[HeI] = nH * (0.24 / 4) / 0.76
	s[DI] = nH * dToH
	return s
}

// HNuclei returns the total hydrogen nuclei density.
func (s State) HNuclei() float64 {
	return s[HI] + s[HII] + s[Hm] + 2*s[H2I] + 2*s[H2p] + s[HD]
}

// HeNuclei returns the total helium nuclei density.
func (s State) HeNuclei() float64 { return s[HeI] + s[HeII] + s[HeIII] }

// DNuclei returns the total deuterium nuclei density.
func (s State) DNuclei() float64 { return s[DI] + s[DII] + s[HD] }

// Charge returns the net positive charge density minus electrons (should
// be ~0 when consistent).
func (s State) Charge() float64 {
	return s[HII] + s[HeII] + 2*s[HeIII] + s[H2p] + s[DII] - s[Hm] - s[Elec]
}

// TotalNumber returns the total particle number density (for mean
// molecular weight), counting electrons.
func (s State) TotalNumber() float64 {
	var n float64
	for i := 0; i < NumSpecies; i++ {
		n += s[i]
	}
	return n
}

// MassDensity returns the baryon mass density in proton masses per cm³.
func (s State) MassDensity() float64 {
	var m float64
	for i := 0; i < NumSpecies; i++ {
		m += s[i] * AtomicWeight[i]
	}
	return m
}

// MeanMolecularWeight returns mu = mass density / (total number * m_p).
func (s State) MeanMolecularWeight() float64 {
	n := s.TotalNumber()
	if n == 0 {
		return 1
	}
	return s.MassDensity() / n
}

// H2Fraction returns the H₂ mass fraction relative to all hydrogen.
func (s State) H2Fraction() float64 {
	h := s.HNuclei()
	if h == 0 {
		return 0
	}
	return 2 * s[H2I] / h
}

// ElectronFraction returns n_e / n_H.
func (s State) ElectronFraction() float64 {
	h := s.HNuclei()
	if h == 0 {
		return 0
	}
	return s[Elec] / h
}

// Validate reports negative or non-finite abundances.
func (s State) Validate() error {
	for i := 0; i < NumSpecies; i++ {
		if s[i] < 0 || s[i] != s[i] {
			return fmt.Errorf("chem: species %s has bad density %g", Names[i], s[i])
		}
	}
	return nil
}
