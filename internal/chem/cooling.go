package chem

import "math"

// Cooling and heating rates for metal-free primordial gas, all in
// erg cm⁻³ s⁻¹ (positive = energy loss). The inventory follows the paper
// (§2.2): "all known radiative loss terms due to atoms, ions, and molecules
// appropriate for our primordial gas", plus Compton exchange with the CMB.

// CoolParams bundles the radiation-background inputs.
type CoolParams struct {
	Redshift float64 // sets the CMB temperature 2.725(1+z)
}

// TCMB returns the CMB temperature at the configured redshift.
func (cp CoolParams) TCMB() float64 { return 2.725 * (1 + cp.Redshift) }

// h2CoolingLowDensity returns the Galli & Palla (1998) low-density-limit
// H₂ cooling function per H₂ molecule per H atom [erg cm³ s⁻¹],
// valid 13 K < T < 10⁵ K.
func h2CoolingLowDensity(T float64) float64 {
	if T < 13 {
		return 0
	}
	if T > 1e5 {
		T = 1e5
	}
	lt := math.Log10(T)
	logL := -103.0 + 97.59*lt - 48.05*lt*lt + 10.80*lt*lt*lt - 0.9032*lt*lt*lt*lt
	return math.Pow(10, logL)
}

// h2CoolingLTE returns the Hollenbach & McKee (1979) LTE H₂ cooling rate
// per H₂ molecule [erg s⁻¹].
func h2CoolingLTE(T float64) float64 {
	t3 := T / 1000
	if t3 <= 0 {
		return 0
	}
	rotLow := 9.5e-22 * math.Pow(t3, 3.76) / (1 + 0.12*math.Pow(t3, 2.1)) *
		math.Exp(-math.Pow(0.13/t3, 3))
	rotHigh := 3.0e-24 * math.Exp(-0.51/t3)
	vib := 6.7e-19*math.Exp(-5.86/t3) + 1.6e-18*math.Exp(-11.7/t3)
	return rotLow + rotHigh + vib
}

// H2Cooling returns the density-interpolated H₂ cooling rate
// [erg cm⁻³ s⁻¹]: low-density limit ∝ n_H2·n_H at small n, saturating to
// the LTE rate ∝ n_H2 at high n.
func H2Cooling(s State, T float64) float64 {
	nH := s[HI]
	lowPerH2 := h2CoolingLowDensity(T) * nH
	lte := h2CoolingLTE(T)
	if lowPerH2 <= 0 {
		return 0
	}
	perH2 := lte / (1 + lte/lowPerH2)
	return perH2 * s[H2I]
}

// HDCooling returns an approximate HD cooling rate [erg cm⁻³ s⁻¹]
// (Galli & Palla 1998 magnitude; HD matters below ~200 K).
func HDCooling(s State, T float64) float64 {
	if T < 10 {
		return 0
	}
	perPair := 3.5e-27 * (T / 100) * math.Exp(-128/T)
	return perPair * s[HD] * s[HI]
}

// AtomicCooling returns the sum of the atomic processes (Cen 1992 fits):
// collisional excitation (Lyα and He), collisional ionization,
// recombination, and bremsstrahlung.
func AtomicCooling(s State, T float64) float64 {
	if T < 5 {
		return 0
	}
	sqT := math.Sqrt(T)
	t5 := math.Sqrt(T / 1e5)
	ne := s[Elec]
	var lam float64
	// Collisional excitation: H Lyα and He+ (n=2).
	lam += 7.50e-19 * math.Exp(-118348/T) / (1 + t5) * ne * s[HI]
	lam += 5.54e-17 * math.Pow(T, -0.397) * math.Exp(-473638/T) / (1 + t5) * ne * s[HeII]
	// Collisional ionization.
	lam += 1.27e-21 * sqT * math.Exp(-157809.1/T) / (1 + t5) * ne * s[HI]
	lam += 9.38e-22 * sqT * math.Exp(-285335.4/T) / (1 + t5) * ne * s[HeI]
	lam += 4.95e-22 * sqT * math.Exp(-631515.0/T) / (1 + t5) * ne * s[HeIII]
	// Recombination.
	lam += 8.70e-27 * sqT * math.Pow(T/1e3, -0.2) / (1 + math.Pow(T/1e6, 0.7)) * ne * s[HII]
	lam += 1.55e-26 * math.Pow(T, 0.3647) * ne * s[HeII]
	lam += 3.48e-26 * sqT * math.Pow(T/1e3, -0.2) / (1 + math.Pow(T/1e6, 0.7)) * ne * s[HeIII]
	// Bremsstrahlung (Gaunt factor 1.3).
	lam += 1.42e-27 * 1.3 * sqT * (s[HII] + s[HeII] + 4*s[HeIII]) * ne
	return lam
}

// ComptonCooling returns the Compton energy exchange with the CMB
// [erg cm⁻³ s⁻¹]; negative below the CMB temperature (heating), as the
// paper notes ("Compton heating and cooling").
func ComptonCooling(s State, T float64, cp CoolParams) float64 {
	tcmb := cp.TCMB()
	return 1.017e-37 * math.Pow(tcmb, 4) * (T - tcmb) * s[Elec]
}

// ChemicalHeating returns the heat released by three-body H₂ formation
// minus that absorbed by collisional dissociation [erg cm⁻³ s⁻¹ as a
// *negative* cooling contribution]. Each H₂ formed by the three-body
// reaction releases its 4.48 eV binding energy; each collisional
// dissociation absorbs it.
func ChemicalHeating(s State, r Rates) float64 {
	const bindErg = 4.48 * 1.602176634e-12
	nH := s[HI]
	form := r.K21*nH*nH*nH + r.K22*nH*nH*s[H2I]
	diss := r.K13*s[H2I]*nH + r.K12*s[H2I]*s[Elec]
	return bindErg * (diss - form) // positive when dissociating (cooling)
}

// NetCooling returns the total net cooling rate [erg cm⁻³ s⁻¹]: positive
// means the gas loses energy.
func NetCooling(s State, T float64, r Rates, cp CoolParams) float64 {
	return H2Cooling(s, T) + HDCooling(s, T) + AtomicCooling(s, T) +
		ComptonCooling(s, T, cp) + ChemicalHeating(s, r)
}
