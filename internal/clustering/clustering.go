// Package clustering implements the Berger–Rigoutsos (1991) point
// clustering / grid generation algorithm the paper uses to choose
// rectangular subgrid regions covering all flagged cells "while attempting
// to minimize the number of unnecessarily refined points" (§3.2.2).
//
// The algorithm: take the bounding box of the flagged cells; if its filling
// efficiency is acceptable, emit it; otherwise split it at a hole (zero of
// the flag signature) or, failing that, at the strongest inflection of the
// signature's second difference (the "edge detection" step from machine
// vision), and recurse on both halves.
package clustering

import "fmt"

// Box is a rectangular index region, inclusive low corner, exclusive high
// corner, in the coordinate system of the flag field.
type Box struct {
	Lo, Hi [3]int
}

// Volume returns the cell count of the box.
func (b Box) Volume() int {
	v := 1
	for d := 0; d < 3; d++ {
		s := b.Hi[d] - b.Lo[d]
		if s <= 0 {
			return 0
		}
		v *= s
	}
	return v
}

// Contains reports whether cell (i,j,k) lies inside the box.
func (b Box) Contains(i, j, k int) bool {
	return i >= b.Lo[0] && i < b.Hi[0] &&
		j >= b.Lo[1] && j < b.Hi[1] &&
		k >= b.Lo[2] && k < b.Hi[2]
}

// Intersect returns the overlap of two boxes and whether it is non-empty.
func (b Box) Intersect(o Box) (Box, bool) {
	var r Box
	for d := 0; d < 3; d++ {
		r.Lo[d] = maxInt(b.Lo[d], o.Lo[d])
		r.Hi[d] = minInt(b.Hi[d], o.Hi[d])
		if r.Lo[d] >= r.Hi[d] {
			return Box{}, false
		}
	}
	return r, true
}

// String implements fmt.Stringer.
func (b Box) String() string {
	return fmt.Sprintf("[%d:%d,%d:%d,%d:%d]", b.Lo[0], b.Hi[0], b.Lo[1], b.Hi[1], b.Lo[2], b.Hi[2])
}

// Flags is a 3-D boolean field of cells needing refinement.
type Flags struct {
	Nx, Ny, Nz int
	Data       []bool
}

// NewFlags allocates a cleared flag field.
func NewFlags(nx, ny, nz int) *Flags {
	return &Flags{Nx: nx, Ny: ny, Nz: nz, Data: make([]bool, nx*ny*nz)}
}

// At returns the flag at (i,j,k).
func (f *Flags) At(i, j, k int) bool { return f.Data[(k*f.Ny+j)*f.Nx+i] }

// Set sets the flag at (i,j,k).
func (f *Flags) Set(i, j, k int, v bool) { f.Data[(k*f.Ny+j)*f.Nx+i] = v }

// Count returns the number of flagged cells.
func (f *Flags) Count() int {
	n := 0
	for _, v := range f.Data {
		if v {
			n++
		}
	}
	return n
}

// Params tunes the clustering.
type Params struct {
	// MinEfficiency is the minimum acceptable flagged/total fraction of
	// an emitted box (0.6-0.8 typical).
	MinEfficiency float64
	// MaxSize caps box edge length in cells (keeps grids "generally
	// small (~20^3) and numerous", §3.4). Zero disables the cap.
	MaxSize int
	// MinSize stops subdivision below this edge length.
	MinSize int
}

// DefaultParams returns the production configuration.
func DefaultParams() Params {
	return Params{MinEfficiency: 0.7, MaxSize: 32, MinSize: 2}
}

// Cluster returns a set of boxes covering every flagged cell.
func Cluster(f *Flags, p Params) []Box {
	bb, any := boundingBox(f, Box{Lo: [3]int{0, 0, 0}, Hi: [3]int{f.Nx, f.Ny, f.Nz}})
	if !any {
		return nil
	}
	var out []Box
	cluster(f, bb, p, &out)
	return out
}

func cluster(f *Flags, b Box, p Params, out *[]Box) {
	bb, any := boundingBox(f, b)
	if !any {
		return
	}
	b = bb
	eff := efficiency(f, b)
	longest, axis := 0, 0
	for d := 0; d < 3; d++ {
		if s := b.Hi[d] - b.Lo[d]; s > longest {
			longest, axis = s, d
		}
	}
	needSplitForSize := p.MaxSize > 0 && longest > p.MaxSize
	if (eff >= p.MinEfficiency && !needSplitForSize) || longest <= p.MinSize {
		*out = append(*out, b)
		return
	}
	// Try a hole (zero signature plane), then an inflection cut, then a
	// midpoint bisection of the longest axis.
	if cutAxis, cutAt, ok := findHole(f, b); ok {
		splitAndRecurse(f, b, cutAxis, cutAt, p, out)
		return
	}
	if cutAt, ok := findInflection(f, b, axis); ok {
		splitAndRecurse(f, b, axis, cutAt, p, out)
		return
	}
	splitAndRecurse(f, b, axis, b.Lo[axis]+(b.Hi[axis]-b.Lo[axis])/2, p, out)
}

func splitAndRecurse(f *Flags, b Box, axis, at int, p Params, out *[]Box) {
	left, right := b, b
	left.Hi[axis] = at
	right.Lo[axis] = at
	if left.Volume() > 0 {
		cluster(f, left, p, out)
	}
	if right.Volume() > 0 {
		cluster(f, right, p, out)
	}
}

// signature sums flags over the planes perpendicular to axis within b.
func signature(f *Flags, b Box, axis int) []int {
	n := b.Hi[axis] - b.Lo[axis]
	sig := make([]int, n)
	for k := b.Lo[2]; k < b.Hi[2]; k++ {
		for j := b.Lo[1]; j < b.Hi[1]; j++ {
			for i := b.Lo[0]; i < b.Hi[0]; i++ {
				if f.At(i, j, k) {
					switch axis {
					case 0:
						sig[i-b.Lo[0]]++
					case 1:
						sig[j-b.Lo[1]]++
					default:
						sig[k-b.Lo[2]]++
					}
				}
			}
		}
	}
	return sig
}

// findHole looks for a zero plane in any axis signature (preferring the
// one closest to the box center, per Berger–Rigoutsos).
func findHole(f *Flags, b Box) (axis, at int, ok bool) {
	bestDist := 1 << 30
	for d := 0; d < 3; d++ {
		sig := signature(f, b, d)
		mid := len(sig) / 2
		for i := 1; i < len(sig)-1; i++ {
			if sig[i] == 0 {
				dist := abs(i - mid)
				if dist < bestDist {
					bestDist = dist
					axis, at, ok = d, b.Lo[d]+i, true
				}
			}
		}
	}
	return
}

// findInflection finds the strongest zero crossing of the second
// difference of the signature along the given axis (the Laplacian edge
// detector of the machine-vision step).
func findInflection(f *Flags, b Box, axis int) (at int, ok bool) {
	sig := signature(f, b, axis)
	n := len(sig)
	if n < 4 {
		return 0, false
	}
	lap := make([]int, n)
	for i := 1; i < n-1; i++ {
		lap[i] = sig[i-1] - 2*sig[i] + sig[i+1]
	}
	best := 0
	for i := 1; i < n-2; i++ {
		if lap[i]*lap[i+1] < 0 { // sign change between i and i+1
			strength := abs(lap[i] - lap[i+1])
			if strength > best {
				best = strength
				at, ok = b.Lo[axis]+i+1, true
			}
		}
	}
	return
}

func boundingBox(f *Flags, within Box) (Box, bool) {
	lo := [3]int{1 << 30, 1 << 30, 1 << 30}
	hi := [3]int{-(1 << 30), -(1 << 30), -(1 << 30)}
	found := false
	for k := within.Lo[2]; k < within.Hi[2]; k++ {
		for j := within.Lo[1]; j < within.Hi[1]; j++ {
			for i := within.Lo[0]; i < within.Hi[0]; i++ {
				if !f.At(i, j, k) {
					continue
				}
				found = true
				c := [3]int{i, j, k}
				for d := 0; d < 3; d++ {
					if c[d] < lo[d] {
						lo[d] = c[d]
					}
					if c[d]+1 > hi[d] {
						hi[d] = c[d] + 1
					}
				}
			}
		}
	}
	return Box{Lo: lo, Hi: hi}, found
}

func efficiency(f *Flags, b Box) float64 {
	if b.Volume() == 0 {
		return 0
	}
	n := 0
	for k := b.Lo[2]; k < b.Hi[2]; k++ {
		for j := b.Lo[1]; j < b.Hi[1]; j++ {
			for i := b.Lo[0]; i < b.Hi[0]; i++ {
				if f.At(i, j, k) {
					n++
				}
			}
		}
	}
	return float64(n) / float64(b.Volume())
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
