package clustering

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func covered(f *Flags, boxes []Box) bool {
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			for i := 0; i < f.Nx; i++ {
				if !f.At(i, j, k) {
					continue
				}
				in := false
				for _, b := range boxes {
					if b.Contains(i, j, k) {
						in = true
						break
					}
				}
				if !in {
					return false
				}
			}
		}
	}
	return true
}

func TestEmptyFlags(t *testing.T) {
	f := NewFlags(8, 8, 8)
	if boxes := Cluster(f, DefaultParams()); boxes != nil {
		t.Fatalf("empty flags produced %d boxes", len(boxes))
	}
}

func TestSingleCell(t *testing.T) {
	f := NewFlags(8, 8, 8)
	f.Set(3, 4, 5, true)
	boxes := Cluster(f, DefaultParams())
	if len(boxes) != 1 {
		t.Fatalf("%d boxes for single cell", len(boxes))
	}
	if !boxes[0].Contains(3, 4, 5) || boxes[0].Volume() != 1 {
		t.Fatalf("box %v wrong", boxes[0])
	}
}

func TestCompactBlock(t *testing.T) {
	f := NewFlags(16, 16, 16)
	for k := 4; k < 8; k++ {
		for j := 4; j < 8; j++ {
			for i := 4; i < 8; i++ {
				f.Set(i, j, k, true)
			}
		}
	}
	boxes := Cluster(f, DefaultParams())
	if len(boxes) != 1 {
		t.Fatalf("compact block should give one box, got %d", len(boxes))
	}
	if boxes[0].Volume() != 64 {
		t.Fatalf("box volume %d, want 64", boxes[0].Volume())
	}
}

func TestTwoSeparatedClusters(t *testing.T) {
	f := NewFlags(32, 8, 8)
	for i := 2; i < 6; i++ {
		f.Set(i, 3, 3, true)
	}
	for i := 24; i < 28; i++ {
		f.Set(i, 4, 4, true)
	}
	boxes := Cluster(f, DefaultParams())
	if !covered(f, boxes) {
		t.Fatal("not all flags covered")
	}
	if len(boxes) != 2 {
		t.Fatalf("expected 2 boxes via hole cut, got %d: %v", len(boxes), boxes)
	}
	// Efficiency: total box volume should be close to flag count.
	vol := 0
	for _, b := range boxes {
		vol += b.Volume()
	}
	if vol > 2*f.Count() {
		t.Errorf("boxes too loose: volume %d for %d flags", vol, f.Count())
	}
}

func TestLShapeSplits(t *testing.T) {
	// An L-shape has poor bounding-box efficiency and must be split by
	// the inflection cut.
	f := NewFlags(16, 16, 4)
	for i := 0; i < 12; i++ {
		for j := 0; j < 3; j++ {
			f.Set(i, j, 1, true)
		}
	}
	for j := 0; j < 12; j++ {
		for i := 0; i < 3; i++ {
			f.Set(i, j, 1, true)
		}
	}
	p := DefaultParams()
	boxes := Cluster(f, p)
	if !covered(f, boxes) {
		t.Fatal("L-shape not covered")
	}
	if len(boxes) < 2 {
		t.Fatalf("L-shape should split, got %d boxes", len(boxes))
	}
	vol := 0
	for _, b := range boxes {
		vol += b.Volume()
	}
	if float64(f.Count())/float64(vol) < 0.5 {
		t.Errorf("overall efficiency too low: %d flags in %d cells", f.Count(), vol)
	}
}

func TestMaxSizeCap(t *testing.T) {
	f := NewFlags(64, 4, 4)
	for i := 0; i < 64; i++ {
		f.Set(i, 1, 1, true)
	}
	p := DefaultParams()
	p.MaxSize = 16
	boxes := Cluster(f, p)
	if !covered(f, boxes) {
		t.Fatal("not covered")
	}
	for _, b := range boxes {
		for d := 0; d < 3; d++ {
			if b.Hi[d]-b.Lo[d] > 16 {
				t.Fatalf("box %v exceeds MaxSize", b)
			}
		}
	}
	if len(boxes) < 4 {
		t.Fatalf("64-cell line with cap 16 should give >=4 boxes, got %d", len(boxes))
	}
}

func TestBoxIntersect(t *testing.T) {
	a := Box{Lo: [3]int{0, 0, 0}, Hi: [3]int{4, 4, 4}}
	b := Box{Lo: [3]int{2, 2, 2}, Hi: [3]int{6, 6, 6}}
	r, ok := a.Intersect(b)
	if !ok || r.Volume() != 8 {
		t.Fatalf("intersect %v ok=%v", r, ok)
	}
	c := Box{Lo: [3]int{5, 5, 5}, Hi: [3]int{6, 6, 6}}
	if _, ok := a.Intersect(c); ok {
		t.Fatal("disjoint boxes intersected")
	}
}

func TestPropAllFlagsCovered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fl := NewFlags(12, 12, 12)
		// Random blobs.
		for b := 0; b < 3; b++ {
			ci, cj, ck := rng.Intn(12), rng.Intn(12), rng.Intn(12)
			r := 1 + rng.Intn(3)
			for k := 0; k < 12; k++ {
				for j := 0; j < 12; j++ {
					for i := 0; i < 12; i++ {
						d2 := (i-ci)*(i-ci) + (j-cj)*(j-cj) + (k-ck)*(k-ck)
						if d2 <= r*r {
							fl.Set(i, j, k, true)
						}
					}
				}
			}
		}
		boxes := Cluster(fl, DefaultParams())
		return covered(fl, boxes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropEfficiencyReasonable(t *testing.T) {
	// Overall covering efficiency should never collapse to near zero for
	// blob-like flag sets.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fl := NewFlags(16, 16, 16)
		ci, cj, ck := 4+rng.Intn(8), 4+rng.Intn(8), 4+rng.Intn(8)
		for k := 0; k < 16; k++ {
			for j := 0; j < 16; j++ {
				for i := 0; i < 16; i++ {
					d2 := (i-ci)*(i-ci) + (j-cj)*(j-cj) + (k-ck)*(k-ck)
					if d2 <= 9 {
						fl.Set(i, j, k, true)
					}
				}
			}
		}
		boxes := Cluster(fl, DefaultParams())
		if !covered(fl, boxes) {
			return false
		}
		vol := 0
		for _, b := range boxes {
			vol += b.Volume()
		}
		return float64(fl.Count())/float64(vol) > 0.35
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCluster32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	fl := NewFlags(32, 32, 32)
	for n := 0; n < 5; n++ {
		ci, cj, ck := rng.Intn(32), rng.Intn(32), rng.Intn(32)
		for k := 0; k < 32; k++ {
			for j := 0; j < 32; j++ {
				for i := 0; i < 32; i++ {
					d2 := (i-ci)*(i-ci) + (j-cj)*(j-cj) + (k-ck)*(k-ck)
					if d2 <= 16 {
						fl.Set(i, j, k, true)
					}
				}
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(fl, DefaultParams())
	}
}
