// Package mesh provides the uniform Cartesian field container used by every
// grid in the AMR hierarchy, together with the index arithmetic,
// interpolation and restriction operators that move data between levels.
//
// Fields are stored as flat []float64 in x-fastest (Fortran-like) order with
// a layer of ghost zones on every face, so that highly optimized
// "off-the-shelf" uniform-grid kernels can run on each grid exactly as the
// paper describes (§3.1).
package mesh

import "fmt"

// Field3 is a 3-D scalar field on a uniform grid with ghost zones.
// The active region is Nx×Ny×Nz cells; Ng ghost cells pad every face.
type Field3 struct {
	Nx, Ny, Nz int // active cells per dimension
	Ng         int // ghost zones per face
	Data       []float64
	sx, sy     int // strides: index = (i+Ng) + sx*(j+Ng) + sy*(k+Ng)
}

// NewField3 allocates a zeroed field with the given active size and ghost
// depth.
func NewField3(nx, ny, nz, ng int) *Field3 {
	if nx <= 0 || ny <= 0 || nz <= 0 || ng < 0 {
		panic(fmt.Sprintf("mesh: bad field size %dx%dx%d ng=%d", nx, ny, nz, ng))
	}
	tx, ty, tz := nx+2*ng, ny+2*ng, nz+2*ng
	return &Field3{
		Nx: nx, Ny: ny, Nz: nz, Ng: ng,
		Data: make([]float64, tx*ty*tz),
		sx:   tx,
		sy:   tx * ty,
	}
}

// TotalX returns the allocated extent in x including ghosts.
func (f *Field3) TotalX() int { return f.Nx + 2*f.Ng }

// TotalY returns the allocated extent in y including ghosts.
func (f *Field3) TotalY() int { return f.Ny + 2*f.Ng }

// TotalZ returns the allocated extent in z including ghosts.
func (f *Field3) TotalZ() int { return f.Nz + 2*f.Ng }

// Idx returns the flat index of active cell (i,j,k); ghosts are reached with
// negative indices or indices >= N.
func (f *Field3) Idx(i, j, k int) int {
	return (i + f.Ng) + f.sx*(j+f.Ng) + f.sy*(k+f.Ng)
}

// At returns the value at active cell (i,j,k).
func (f *Field3) At(i, j, k int) float64 { return f.Data[f.Idx(i, j, k)] }

// Set stores v at active cell (i,j,k).
func (f *Field3) Set(i, j, k int, v float64) { f.Data[f.Idx(i, j, k)] = v }

// Add adds v to active cell (i,j,k).
func (f *Field3) Add(i, j, k int, v float64) { f.Data[f.Idx(i, j, k)] += v }

// StrideX returns the flat-index stride in x (always 1).
func (f *Field3) StrideX() int { return 1 }

// StrideY returns the flat-index stride in y.
func (f *Field3) StrideY() int { return f.sx }

// StrideZ returns the flat-index stride in z.
func (f *Field3) StrideZ() int { return f.sy }

// Fill sets every element (including ghosts) to v.
func (f *Field3) Fill(v float64) {
	if v == 0 {
		clear(f.Data)
		return
	}
	for i := range f.Data {
		f.Data[i] = v
	}
}

// Zero clears every element (including ghosts) with the clear builtin
// (memclr — measurably faster than an assignment loop on large fields).
func (f *Field3) Zero() { clear(f.Data) }

// CopyFrom copies the full contents (including ghosts) of src, which must
// have identical shape.
func (f *Field3) CopyFrom(src *Field3) {
	if f.Nx != src.Nx || f.Ny != src.Ny || f.Nz != src.Nz || f.Ng != src.Ng {
		panic("mesh: CopyFrom shape mismatch")
	}
	copy(f.Data, src.Data)
}

// Clone returns a deep copy.
func (f *Field3) Clone() *Field3 {
	g := NewField3(f.Nx, f.Ny, f.Nz, f.Ng)
	copy(g.Data, f.Data)
	return g
}

// SumActive returns the sum over the active region (no ghosts).
func (f *Field3) SumActive() float64 {
	var s float64
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			base := f.Idx(0, j, k)
			row := f.Data[base : base+f.Nx]
			for _, v := range row {
				s += v
			}
		}
	}
	return s
}

// MinMaxActive returns the extrema over the active region.
func (f *Field3) MinMaxActive() (min, max float64) {
	min, max = f.At(0, 0, 0), f.At(0, 0, 0)
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			base := f.Idx(0, j, k)
			for _, v := range f.Data[base : base+f.Nx] {
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
		}
	}
	return
}

// ApplyPeriodicBC copies the active faces into the ghost zones assuming the
// field is periodic in all three dimensions (root-grid boundary condition).
//
// When the ghost depth does not exceed any active dimension (every real
// field in the code base), the fill runs as three sweeps of contiguous row
// and plane copies — x ghosts from the same row, then whole rows across y,
// then whole planes across z — instead of a per-cell wrap-and-skip walk.
// Ghost values are copies of the identical active cells either way, so the
// fast path is bitwise-identical to the reference loop (which remains as
// the fallback for pathological ng > N shapes).
func (f *Field3) ApplyPeriodicBC() {
	ng := f.Ng
	if ng == 0 {
		return
	}
	if ng <= f.Nx && ng <= f.Ny && ng <= f.Nz {
		f.applyPeriodicFast()
		return
	}
	wrap := func(v, n int) int {
		v %= n
		if v < 0 {
			v += n
		}
		return v
	}
	tx, ty, tz := f.TotalX(), f.TotalY(), f.TotalZ()
	for kk := 0; kk < tz; kk++ {
		k := kk - ng
		ks := wrap(k, f.Nz)
		for jj := 0; jj < ty; jj++ {
			j := jj - ng
			js := wrap(j, f.Ny)
			for ii := 0; ii < tx; ii++ {
				i := ii - ng
				if i >= 0 && i < f.Nx && j >= 0 && j < f.Ny && k >= 0 && k < f.Nz {
					continue
				}
				f.Set(i, j, k, f.At(wrap(i, f.Nx), js, ks))
			}
		}
	}
}

// applyPeriodicFast fills periodic ghosts with strided row/plane copies.
// Order matters: after the x pass each active row is fully valid including
// its x ghosts, so the y pass can copy whole rows and the z pass whole
// planes, leaving every ghost equal to its wrapped active cell.
func (f *Field3) applyPeriodicFast() {
	ng := f.Ng
	d := f.Data
	// x: within each active row, ghost i<0 maps to i+Nx, i>=Nx to i-Nx.
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			base := f.Idx(0, j, k)
			copy(d[base-ng:base], d[base+f.Nx-ng:base+f.Nx])
			copy(d[base+f.Nx:base+f.Nx+ng], d[base:base+ng])
		}
	}
	// y: whole rows (with x ghosts) wrap across the y faces.
	rowLen := f.TotalX()
	for k := 0; k < f.Nz; k++ {
		for g := 1; g <= ng; g++ {
			lo := f.Idx(-f.Ng, -g, k)
			loSrc := f.Idx(-f.Ng, f.Ny-g, k)
			copy(d[lo:lo+rowLen], d[loSrc:loSrc+rowLen])
			hi := f.Idx(-f.Ng, f.Ny-1+g, k)
			hiSrc := f.Idx(-f.Ng, g-1, k)
			copy(d[hi:hi+rowLen], d[hiSrc:hiSrc+rowLen])
		}
	}
	// z: whole planes (with x and y ghosts) wrap across the z faces.
	planeLen := f.TotalX() * f.TotalY()
	for g := 1; g <= ng; g++ {
		lo := f.Idx(-f.Ng, -f.Ng, -g)
		loSrc := f.Idx(-f.Ng, -f.Ng, f.Nz-g)
		copy(d[lo:lo+planeLen], d[loSrc:loSrc+planeLen])
		hi := f.Idx(-f.Ng, -f.Ng, f.Nz-1+g)
		hiSrc := f.Idx(-f.Ng, -f.Ng, g-1)
		copy(d[hi:hi+planeLen], d[hiSrc:hiSrc+planeLen])
	}
}

// ApplyOutflowBC copies the nearest active cell into each ghost zone
// (zero-gradient / outflow boundaries for isolated problems).
func (f *Field3) ApplyOutflowBC() {
	ng := f.Ng
	if ng == 0 {
		return
	}
	clamp := func(v, n int) int {
		if v < 0 {
			return 0
		}
		if v >= n {
			return n - 1
		}
		return v
	}
	tx, ty, tz := f.TotalX(), f.TotalY(), f.TotalZ()
	for kk := 0; kk < tz; kk++ {
		k := kk - ng
		ks := clamp(k, f.Nz)
		for jj := 0; jj < ty; jj++ {
			j := jj - ng
			js := clamp(j, f.Ny)
			for ii := 0; ii < tx; ii++ {
				i := ii - ng
				if i >= 0 && i < f.Nx && j >= 0 && j < f.Ny && k >= 0 && k < f.Nz {
					continue
				}
				f.Set(i, j, k, f.At(clamp(i, f.Nx), js, ks))
			}
		}
	}
}
