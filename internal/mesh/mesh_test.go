package mesh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIndexRoundTrip(t *testing.T) {
	f := NewField3(4, 5, 6, 2)
	seen := map[int]bool{}
	for k := -2; k < 8; k++ {
		for j := -2; j < 7; j++ {
			for i := -2; i < 6; i++ {
				idx := f.Idx(i, j, k)
				if idx < 0 || idx >= len(f.Data) {
					t.Fatalf("index out of range at (%d,%d,%d): %d", i, j, k, idx)
				}
				if seen[idx] {
					t.Fatalf("duplicate flat index at (%d,%d,%d)", i, j, k)
				}
				seen[idx] = true
			}
		}
	}
	if len(seen) != len(f.Data) {
		t.Fatalf("index map not a bijection: %d vs %d", len(seen), len(f.Data))
	}
}

func TestSetAtAdd(t *testing.T) {
	f := NewField3(3, 3, 3, 1)
	f.Set(1, 2, 0, 5)
	if f.At(1, 2, 0) != 5 {
		t.Fatal("Set/At broken")
	}
	f.Add(1, 2, 0, 2)
	if f.At(1, 2, 0) != 7 {
		t.Fatal("Add broken")
	}
}

func TestSumActiveIgnoresGhosts(t *testing.T) {
	f := NewField3(2, 2, 2, 1)
	f.Fill(100) // ghosts too
	for k := 0; k < 2; k++ {
		for j := 0; j < 2; j++ {
			for i := 0; i < 2; i++ {
				f.Set(i, j, k, 1)
			}
		}
	}
	if s := f.SumActive(); s != 8 {
		t.Fatalf("SumActive = %v, want 8", s)
	}
}

func TestPeriodicBC(t *testing.T) {
	f := NewField3(4, 4, 4, 2)
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < 4; i++ {
				f.Set(i, j, k, float64(i+10*j+100*k))
			}
		}
	}
	f.ApplyPeriodicBC()
	if f.At(-1, 0, 0) != f.At(3, 0, 0) {
		t.Error("periodic x- ghost wrong")
	}
	if f.At(4, 2, 1) != f.At(0, 2, 1) {
		t.Error("periodic x+ ghost wrong")
	}
	if f.At(-2, -1, 5) != f.At(2, 3, 1) {
		t.Error("periodic corner ghost wrong")
	}
}

func TestOutflowBC(t *testing.T) {
	f := NewField3(4, 4, 4, 2)
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < 4; i++ {
				f.Set(i, j, k, float64(i+10*j+100*k))
			}
		}
	}
	f.ApplyOutflowBC()
	if f.At(-1, 1, 1) != f.At(0, 1, 1) {
		t.Error("outflow x- ghost wrong")
	}
	if f.At(5, 1, 1) != f.At(3, 1, 1) {
		t.Error("outflow x+ ghost wrong")
	}
}

func TestRestrictConservation(t *testing.T) {
	// Restriction of a refined patch must preserve the mean exactly.
	r := 2
	child := NewField3(4, 4, 4, 1)
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < 4; i++ {
				child.Set(i, j, k, rng.Float64())
			}
		}
	}
	parent := NewField3(4, 4, 4, 1)
	Restrict(parent, child, 2, 2, 2, r)
	// Coarse cells (1..2)^3 now hold averages; total fine sum/r^3 must
	// equal coarse sum over the covered region.
	var coarse float64
	for k := 1; k <= 2; k++ {
		for j := 1; j <= 2; j++ {
			for i := 1; i <= 2; i++ {
				coarse += parent.At(i, j, k)
			}
		}
	}
	fine := child.SumActive() / float64(r*r*r)
	if math.Abs(coarse-fine) > 1e-13 {
		t.Fatalf("restriction not conservative: %v vs %v", coarse, fine)
	}
}

func TestProlongRestrictIdentity(t *testing.T) {
	// Restrict(Prolong(x)) == x for conservative linear prolongation.
	r := 2
	parent := NewField3(6, 6, 6, 2)
	rng := rand.New(rand.NewSource(3))
	for k := -2; k < 8; k++ {
		for j := -2; j < 8; j++ {
			for i := -2; i < 8; i++ {
				parent.Set(i, j, k, 1+rng.Float64())
			}
		}
	}
	child := NewField3(8, 8, 8, 1)
	off := 2 // child covers parent active cells 1..4 in each dim
	ProlongLinear(parent, child, off, off, off, r, 0)
	check := NewField3(6, 6, 6, 2)
	check.CopyFrom(parent)
	Restrict(check, child, off, off, off, r)
	for k := 1; k <= 4; k++ {
		for j := 1; j <= 4; j++ {
			for i := 1; i <= 4; i++ {
				if d := math.Abs(check.At(i, j, k) - parent.At(i, j, k)); d > 1e-13 {
					t.Fatalf("prolong/restrict not identity at (%d,%d,%d): diff %g", i, j, k, d)
				}
			}
		}
	}
}

func TestProlongConstantPreservesConstant(t *testing.T) {
	parent := NewField3(4, 4, 4, 1)
	parent.Fill(3.5)
	child := NewField3(4, 4, 4, 2)
	ProlongLinear(parent, child, 2, 2, 2, 2, 2)
	for k := -2; k < 6; k++ {
		for j := -2; j < 6; j++ {
			for i := -2; i < 6; i++ {
				if child.At(i, j, k) != 3.5 {
					t.Fatalf("constant not preserved at (%d,%d,%d): %v", i, j, k, child.At(i, j, k))
				}
			}
		}
	}
}

func TestProlongLinearExactForLinearField(t *testing.T) {
	// A globally linear field is reproduced exactly by limited linear
	// prolongation (slopes all agree so the limiter passes them through).
	parent := NewField3(8, 8, 8, 2)
	fn := func(x, y, z float64) float64 { return 2*x + 3*y - z + 0.5 }
	for k := -2; k < 10; k++ {
		for j := -2; j < 10; j++ {
			for i := -2; i < 10; i++ {
				parent.Set(i, j, k, fn(float64(i)+0.5, float64(j)+0.5, float64(k)+0.5))
			}
		}
	}
	r := 2
	child := NewField3(8, 8, 8, 1)
	off := 4
	ProlongLinear(parent, child, off, off, off, r, 1)
	for k := -1; k < 9; k++ {
		for j := -1; j < 9; j++ {
			for i := -1; i < 9; i++ {
				// Fine cell center in parent cell coordinates.
				x := (float64(off+i) + 0.5) / float64(r)
				y := (float64(off+j) + 0.5) / float64(r)
				z := (float64(off+k) + 0.5) / float64(r)
				want := fn(x, y, z)
				if d := math.Abs(child.At(i, j, k) - want); d > 1e-12 {
					t.Fatalf("linear field not exact at (%d,%d,%d): got %v want %v", i, j, k, child.At(i, j, k), want)
				}
			}
		}
	}
}

func TestCopyOverlap(t *testing.T) {
	src := NewField3(4, 4, 4, 0)
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < 4; i++ {
				src.Set(i, j, k, float64(1000+i+10*j+100*k))
			}
		}
	}
	dst := NewField3(4, 4, 4, 1)
	dst.Fill(-1)
	// src origin sits at dst active (3,0,0): only a 1-cell-thick slab
	// (plus the ghost layer at i=4) overlaps.
	CopyOverlap(dst, src, 3, 0, 0, 1)
	if dst.At(3, 0, 0) != 1000 {
		t.Errorf("overlap copy wrong at (3,0,0): %v", dst.At(3, 0, 0))
	}
	if dst.At(4, 1, 2) != src.At(1, 1, 2) {
		t.Errorf("ghost fill wrong at (4,1,2): %v", dst.At(4, 1, 2))
	}
	if dst.At(2, 0, 0) != -1 {
		t.Errorf("non-overlapping cell touched: %v", dst.At(2, 0, 0))
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{5, 2, 2}, {-5, 2, -3}, {4, 2, 2}, {-4, 2, -2}, {0, 3, 0}, {-1, 4, -1},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPropRestrictConservesSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 2 + rng.Intn(2)*2 // 2 or 4
		n := 4 * r
		child := NewField3(n, n, n, 0)
		for i := range child.Data {
			child.Data[i] = rng.Float64()
		}
		parent := NewField3(8, 8, 8, 0)
		Restrict(parent, child, 0, 0, 0, r)
		var coarse float64
		for k := 0; k < n/r; k++ {
			for j := 0; j < n/r; j++ {
				for i := 0; i < n/r; i++ {
					coarse += parent.At(i, j, k)
				}
			}
		}
		fine := child.SumActive() / float64(r*r*r)
		return math.Abs(coarse-fine) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropProlongBoundedByParentRange(t *testing.T) {
	// Limited prolongation never creates new extrema beyond the parent
	// stencil range (monotonicity of the minmod limiter).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parent := NewField3(4, 4, 4, 2)
		for i := range parent.Data {
			parent.Data[i] = rng.Float64()
		}
		pmin, pmax := math.Inf(1), math.Inf(-1)
		for _, v := range parent.Data {
			pmin = math.Min(pmin, v)
			pmax = math.Max(pmax, v)
		}
		child := NewField3(8, 8, 8, 0)
		ProlongLinear(parent, child, 0, 0, 0, 2, 0)
		for _, v := range child.Data {
			if v < pmin-1e-12 || v > pmax+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPeriodicBCFastMatchesReference drives the row/plane-copy fast path
// against a per-cell wrap reference over assorted (including non-cubic and
// minimum-size) shapes: every ghost must carry the bits of its wrapped
// active cell.
func TestPeriodicBCFastMatchesReference(t *testing.T) {
	wrap := func(v, n int) int {
		v %= n
		if v < 0 {
			v += n
		}
		return v
	}
	shapes := [][4]int{{4, 4, 4, 2}, {8, 4, 2, 2}, {2, 2, 2, 1}, {5, 3, 7, 3}, {6, 1, 1, 1}}
	for _, s := range shapes {
		nx, ny, nz, ng := s[0], s[1], s[2], s[3]
		f := NewField3(nx, ny, nz, ng)
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					f.Set(i, j, k, 1e-300*float64(1+i)+float64(i+17*j+291*k)*1.37)
				}
			}
		}
		f.ApplyPeriodicBC()
		for k := -ng; k < nz+ng; k++ {
			for j := -ng; j < ny+ng; j++ {
				for i := -ng; i < nx+ng; i++ {
					want := f.At(wrap(i, nx), wrap(j, ny), wrap(k, nz))
					if got := f.At(i, j, k); got != want {
						t.Fatalf("shape %v ghost (%d,%d,%d) = %v, want %v", s, i, j, k, got, want)
					}
				}
			}
		}
	}
}
