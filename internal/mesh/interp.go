package mesh

// This file implements the inter-level transfer operators of SAMR:
//
//   - Prolong*: parent -> child interpolation, used when new subgrids are
//     created and when subgrid ghost zones are filled from the parent
//     (paper §3.2.1 step 1).
//   - Restrict: child -> parent "projection" of the fine solution onto the
//     coarse cells it covers (paper §3.2.1, the Projection step).
//
// All operators assume an integer refinement factor r and cell-centered
// data, so fine cell (i,j,k) lies inside coarse cell (i/r, j/r, k/r).

// minmod returns the minmod-limited slope of (l, c, r) spaced by 1.
func minmod(l, c, r float64) float64 {
	dl := c - l
	dr := r - c
	if dl*dr <= 0 {
		return 0
	}
	if dl > 0 {
		if dl < dr {
			return dl
		}
		return dr
	}
	if dl > dr {
		return dl
	}
	return dr
}

// ProlongPiecewiseConstant fills a child region by direct injection of the
// parent value. offI/offJ/offK locate the child's (0,0,0) active cell in
// *fine* cells relative to the parent's (0,0,0) active cell; r is the
// refinement factor. Fills the child's active region plus nb ghost layers.
func ProlongPiecewiseConstant(parent, child *Field3, offI, offJ, offK, r, nb int) {
	for k := -nb; k < child.Nz+nb; k++ {
		pk := floorDiv(offK+k, r)
		for j := -nb; j < child.Ny+nb; j++ {
			pj := floorDiv(offJ+j, r)
			for i := -nb; i < child.Nx+nb; i++ {
				pi := floorDiv(offI+i, r)
				child.Set(i, j, k, parent.At(pi, pj, pk))
			}
		}
	}
}

// ProlongLinear fills a child region with conservative (minmod-limited)
// linear interpolation from the parent. Conservative means the average of
// the r^3 fine values inside a coarse cell equals the coarse value, which
// the symmetric slope reconstruction guarantees. offI/offJ/offK and r as in
// ProlongPiecewiseConstant; nb is the number of child ghost layers to fill.
// The parent must have at least one valid ghost layer around the touched
// region.
func ProlongLinear(parent, child *Field3, offI, offJ, offK, r, nb int) {
	rf := float64(r)
	for k := -nb; k < child.Nz+nb; k++ {
		fk := offK + k
		pk := floorDiv(fk, r)
		// Fractional offset of the fine cell center from the coarse
		// cell center, in coarse cell widths: in (-1/2, 1/2).
		zk := (float64(fk-pk*r) + 0.5) / rf
		dzk := zk - 0.5
		for j := -nb; j < child.Ny+nb; j++ {
			fj := offJ + j
			pj := floorDiv(fj, r)
			zj := (float64(fj-pj*r) + 0.5) / rf
			dzj := zj - 0.5
			for i := -nb; i < child.Nx+nb; i++ {
				fi := offI + i
				pi := floorDiv(fi, r)
				zi := (float64(fi-pi*r) + 0.5) / rf
				dzi := zi - 0.5

				c := parent.At(pi, pj, pk)
				sx := minmod(parent.At(pi-1, pj, pk), c, parent.At(pi+1, pj, pk))
				sy := minmod(parent.At(pi, pj-1, pk), c, parent.At(pi, pj+1, pk))
				sz := minmod(parent.At(pi, pj, pk-1), c, parent.At(pi, pj, pk+1))
				child.Set(i, j, k, c+sx*dzi+sy*dzj+sz*dzk)
			}
		}
	}
}

// Restrict projects the child's active region onto the parent by averaging
// each block of r^3 fine cells into the coarse cell that contains it.
// The child's active size must be a multiple of r in every dimension.
func Restrict(parent, child *Field3, offI, offJ, offK, r int) {
	if r == 2 {
		restrict2(parent, child, offI, offJ, offK)
		return
	}
	inv := 1.0 / float64(r*r*r)
	for pk := 0; pk < child.Nz/r; pk++ {
		for pj := 0; pj < child.Ny/r; pj++ {
			for pi := 0; pi < child.Nx/r; pi++ {
				var s float64
				for dk := 0; dk < r; dk++ {
					for dj := 0; dj < r; dj++ {
						for di := 0; di < r; di++ {
							s += child.At(pi*r+di, pj*r+dj, pk*r+dk)
						}
					}
				}
				parent.Set(offI/r+pi, offJ/r+pj, offK/r+pk, s*inv)
			}
		}
	}
}

// restrict2 is the refinement-factor-2 fast path of Restrict: each coarse
// cell averages a 2×2×2 fine block, walked with flat strides. The eight
// summands are added in the same (dk, dj, di) order as the generic loop,
// so the result is bitwise identical.
func restrict2(parent, child *Field3, offI, offJ, offK int) {
	const inv = 1.0 / 8
	cd, pd := child.Data, parent.Data
	sy, sz := child.StrideY(), child.StrideZ()
	for pk := 0; pk < child.Nz/2; pk++ {
		for pj := 0; pj < child.Ny/2; pj++ {
			cIdx := child.Idx(0, 2*pj, 2*pk)
			pIdx := parent.Idx(offI/2, offJ/2+pj, offK/2+pk)
			for pi := 0; pi < child.Nx/2; pi++ {
				b := cIdx + 2*pi
				s := cd[b] + cd[b+1] +
					cd[b+sy] + cd[b+1+sy] +
					cd[b+sz] + cd[b+1+sz] +
					cd[b+sy+sz] + cd[b+1+sy+sz]
				pd[pIdx+pi] = s * inv
			}
		}
	}
}

// CopyOverlap copies values from src to dst where their active regions
// overlap. Both grids share a mesh spacing; (di,dj,dk) is the position of
// src's (0,0,0) active cell in dst's active index space. Ghost layers of
// dst within nb of its active region are also filled where src has data.
// Used for sibling boundary exchange (paper §3.2.1 step 2).
func CopyOverlap(dst, src *Field3, di, dj, dk, nb int) {
	// Range of dst indices (including nb ghosts) covered by src actives.
	i0 := maxInt(-nb, di)
	i1 := minInt(dst.Nx+nb, di+src.Nx)
	j0 := maxInt(-nb, dj)
	j1 := minInt(dst.Ny+nb, dj+src.Ny)
	k0 := maxInt(-nb, dk)
	k1 := minInt(dst.Nz+nb, dk+src.Nz)
	for k := k0; k < k1; k++ {
		for j := j0; j < j1; j++ {
			for i := i0; i < i1; i++ {
				dst.Set(i, j, k, src.At(i-di, j-dj, k-dk))
			}
		}
	}
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
