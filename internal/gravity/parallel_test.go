package gravity

import (
	"math"
	"testing"

	"repro/internal/mesh"
)

func waveRhs(n int) *mesh.Field3 {
	rhs := mesh.NewField3(n, n, n, 1)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				x := float64(i) / float64(n)
				y := float64(j) / float64(n)
				z := float64(k) / float64(n)
				rhs.Set(i, j, k, math.Sin(2*math.Pi*x)*math.Cos(4*math.Pi*y)+0.3*math.Sin(6*math.Pi*z))
			}
		}
	}
	return rhs
}

// TestMultigridParallelBitwise: red-black smoothing touches only the
// opposite color per pass, so the parallel V-cycle must match the serial
// one bit for bit.
func TestMultigridParallelBitwise(t *testing.T) {
	const n = 32
	dx := 1.0 / n
	rhs := waveRhs(n)

	run := func(workers int) *mesh.Field3 {
		phi := mesh.NewField3(n, n, n, 1)
		p := DefaultMGParams()
		p.Workers = workers
		p.MaxVCycles = 6
		SolveMultigrid(phi, rhs, dx, p)
		return phi
	}
	serial := run(1)
	parallel := run(8)
	for idx, v := range serial.Data {
		if parallel.Data[idx] != v {
			t.Fatalf("multigrid differs at %d: serial %v parallel %v", idx, v, parallel.Data[idx])
		}
	}
}

// TestSolvePeriodicParallelBitwise: every FFT line transform is an
// independent in-place 1-D transform, so the worker count must not change
// the potential at all.
func TestSolvePeriodicParallelBitwise(t *testing.T) {
	const n = 32
	dx := 1.0 / n
	rho := waveRhs(n)
	serial, err := SolvePeriodicWorkers(rho, dx, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SolvePeriodicWorkers(rho, dx, 1.0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for idx, v := range serial.Data {
		if parallel.Data[idx] != v {
			t.Fatalf("FFT potential differs at %d: serial %v parallel %v", idx, v, parallel.Data[idx])
		}
	}
}
