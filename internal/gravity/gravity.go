// Package gravity implements the Poisson solvers of the paper (§3.3): an
// FFT solve on the periodic root grid, and a multigrid relaxation solver
// for subgrids whose Dirichlet boundary potentials are interpolated from
// the parent (with an iterative sibling exchange handled by the AMR
// layer).
//
// The equation solved is the comoving Poisson equation
//
//	∇²φ = C (ρ - ρ̄)
//
// where C = 4πG/a in code units and ρ̄ subtracts the mean density (the
// cosmological background does not gravitate; only fluctuations do).
package gravity

import (
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/mesh"
	"repro/internal/par"
)

// SolvePeriodic solves ∇²φ = coeff·(ρ - mean(ρ)) on a periodic grid with
// the FFT, using the eigenvalues of the discrete 7-point Laplacian so the
// returned potential satisfies the difference equation to round-off. rho's
// active size must be a power of two in each dimension; dx is the cell
// width. The result has the same ghost depth as rho with periodic ghosts
// filled.
func SolvePeriodic(rho *mesh.Field3, dx, coeff float64) (*mesh.Field3, error) {
	return SolvePeriodicWorkers(rho, dx, coeff, 0)
}

// SolvePeriodicWorkers is SolvePeriodic with an explicit worker bound for
// the FFT line batches and the mode-division pass (par conventions:
// 0 = NumCPU, 1 = serial). The result is bitwise identical at any setting.
func SolvePeriodicWorkers(rho *mesh.Field3, dx, coeff float64, workers int) (*mesh.Field3, error) {
	nx, ny, nz := rho.Nx, rho.Ny, rho.Nz
	plan, err := fft.NewPlan3(nx, ny, nz)
	if err != nil {
		return nil, fmt.Errorf("gravity: root grid: %w", err)
	}
	plan.Workers = workers
	n := nx * ny * nz
	work := make([]complex128, n)
	mean := rho.SumActive() / float64(n)
	par.For(workers, nz, 0, func(_, klo, khi int) {
		for k := klo; k < khi; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					work[(k*ny+j)*nx+i] = complex(coeff*(rho.At(i, j, k)-mean), 0)
				}
			}
		}
	})
	plan.Forward(work)
	// Discrete Laplacian eigenvalue for mode m along a dimension of
	// size N: (2 cos(2π m/N) - 2) / dx².
	lx := lapEigen(nx, dx)
	ly := lapEigen(ny, dx)
	lz := lapEigen(nz, dx)
	par.For(workers, nz, 0, func(_, klo, khi int) {
		for k := klo; k < khi; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					idx := (k*ny+j)*nx + i
					den := lx[i] + ly[j] + lz[k]
					if den == 0 {
						work[idx] = 0 // zero mode: potential defined up to a constant
						continue
					}
					work[idx] /= complex(den, 0)
				}
			}
		}
	})
	plan.Inverse(work)
	phi := mesh.NewField3(nx, ny, nz, rho.Ng)
	par.For(workers, nz, 0, func(_, klo, khi int) {
		for k := klo; k < khi; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					phi.Set(i, j, k, real(work[(k*ny+j)*nx+i]))
				}
			}
		}
	})
	phi.ApplyPeriodicBC()
	return phi, nil
}

func lapEigen(n int, dx float64) []float64 {
	v := make([]float64, n)
	for m := 0; m < n; m++ {
		v[m] = (2*math.Cos(2*math.Pi*float64(m)/float64(n)) - 2) / (dx * dx)
	}
	return v
}

// Accelerations differentiates the potential with central differences,
// returning g = -∇φ. The potential's ghost zones must be valid.
func Accelerations(phi *mesh.Field3, dx float64) (gx, gy, gz *mesh.Field3) {
	gx = mesh.NewField3(phi.Nx, phi.Ny, phi.Nz, phi.Ng)
	gy = mesh.NewField3(phi.Nx, phi.Ny, phi.Nz, phi.Ng)
	gz = mesh.NewField3(phi.Nx, phi.Ny, phi.Nz, phi.Ng)
	inv2dx := 1 / (2 * dx)
	for k := 0; k < phi.Nz; k++ {
		for j := 0; j < phi.Ny; j++ {
			for i := 0; i < phi.Nx; i++ {
				gx.Set(i, j, k, -(phi.At(i+1, j, k)-phi.At(i-1, j, k))*inv2dx)
				gy.Set(i, j, k, -(phi.At(i, j+1, k)-phi.At(i, j-1, k))*inv2dx)
				gz.Set(i, j, k, -(phi.At(i, j, k+1)-phi.At(i, j, k-1))*inv2dx)
			}
		}
	}
	return
}

// Residual computes r = rhs - ∇²φ over the active region (7-point
// Laplacian; φ's ghosts must hold the boundary values).
func Residual(phi, rhs *mesh.Field3, dx float64) *mesh.Field3 {
	return residualWorkers(phi, rhs, dx, 1)
}

func residualWorkers(phi, rhs *mesh.Field3, dx float64, workers int) *mesh.Field3 {
	r := mesh.NewField3(phi.Nx, phi.Ny, phi.Nz, phi.Ng)
	residualInto(r, phi, rhs, dx, workers)
	return r
}

// residualInto computes the residual into a caller-supplied field,
// letting iterative callers reuse one allocation across cycles. The rows
// walk the flat arrays with precomputed strides instead of per-cell At()
// index arithmetic (seven neighbor loads per cell in the hot loop).
func residualInto(r, phi, rhs *mesh.Field3, dx float64, workers int) {
	inv := 1 / (dx * dx)
	pd, rd, dst := phi.Data, rhs.Data, r.Data
	sy, sz := phi.StrideY(), phi.StrideZ()
	par.For(workers, phi.Nz, 0, func(_, klo, khi int) {
		for k := klo; k < khi; k++ {
			for j := 0; j < phi.Ny; j++ {
				idx := phi.Idx(0, j, k)
				ridx := rhs.Idx(0, j, k)
				didx := r.Idx(0, j, k)
				for i := 0; i < phi.Nx; i++ {
					lap := (pd[idx+1] + pd[idx-1] +
						pd[idx+sy] + pd[idx-sy] +
						pd[idx+sz] + pd[idx-sz] -
						6*pd[idx]) * inv
					dst[didx] = rd[ridx] - lap
					idx++
					ridx++
					didx++
				}
			}
		}
	})
}

// ResidualNorm returns the rms residual.
func ResidualNorm(phi, rhs *mesh.Field3, dx float64) float64 {
	r := Residual(phi, rhs, dx)
	var s float64
	for k := 0; k < r.Nz; k++ {
		for j := 0; j < r.Ny; j++ {
			for i := 0; i < r.Nx; i++ {
				v := r.At(i, j, k)
				s += v * v
			}
		}
	}
	return math.Sqrt(s / float64(r.Nx*r.Ny*r.Nz))
}
