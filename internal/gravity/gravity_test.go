package gravity

import (
	"math"
	"testing"

	"repro/internal/mesh"
)

func TestPeriodicSolveSatisfiesDifferenceEquation(t *testing.T) {
	// The FFT solve must satisfy the discrete 7-point Poisson equation to
	// round-off for the mean-subtracted source.
	n := 16
	rho := mesh.NewField3(n, n, n, 1)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				rho.Set(i, j, k, math.Sin(2*math.Pi*float64(i)/float64(n))*
					math.Cos(4*math.Pi*float64(j)/float64(n))+1.5)
			}
		}
	}
	dx := 1.0 / float64(n)
	coeff := 4 * math.Pi
	phi, err := SolvePeriodic(rho, dx, coeff)
	if err != nil {
		t.Fatal(err)
	}
	mean := rho.SumActive() / float64(n*n*n)
	rhs := mesh.NewField3(n, n, n, 1)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				rhs.Set(i, j, k, coeff*(rho.At(i, j, k)-mean))
			}
		}
	}
	if r := ResidualNorm(phi, rhs, dx); r > 1e-9 {
		t.Fatalf("FFT Poisson residual %e", r)
	}
}

func TestPeriodicSolveSingleMode(t *testing.T) {
	// For rho - mean = A sin(2π i/n), the discrete solution is
	// phi = A sin(2π i/n) / lambda with lambda the discrete eigenvalue.
	n := 32
	rho := mesh.NewField3(n, n, n, 1)
	amp := 2.0
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				rho.Set(i, j, k, amp*math.Sin(2*math.Pi*float64(i)/float64(n)))
			}
		}
	}
	dx := 1.0 / float64(n)
	phi, err := SolvePeriodic(rho, dx, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	lambda := (2*math.Cos(2*math.Pi/float64(n)) - 2) / (dx * dx)
	for i := 0; i < n; i++ {
		want := amp * math.Sin(2*math.Pi*float64(i)/float64(n)) / lambda
		if d := math.Abs(phi.At(i, 3, 5) - want); d > 1e-10*math.Abs(want)+1e-12 {
			t.Fatalf("phi(%d) = %v, want %v", i, phi.At(i, 3, 5), want)
		}
	}
}

func TestPeriodicRejectsBadSize(t *testing.T) {
	rho := mesh.NewField3(12, 12, 12, 1)
	if _, err := SolvePeriodic(rho, 1.0/12, 1.0); err == nil {
		t.Fatal("non-power-of-two size should fail")
	}
}

func TestAccelerationsPointTowardMass(t *testing.T) {
	// A central overdensity must produce inward accelerations.
	n := 16
	rho := mesh.NewField3(n, n, n, 1)
	rho.Fill(1)
	rho.Set(n/2, n/2, n/2, 100)
	dx := 1.0 / float64(n)
	phi, err := SolvePeriodic(rho, dx, 4*math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	gx, gy, gz := Accelerations(phi, dx)
	// Cell to the +x side of center must accelerate in -x.
	if gx.At(n/2+2, n/2, n/2) >= 0 {
		t.Errorf("gx on +x side = %v, want negative", gx.At(n/2+2, n/2, n/2))
	}
	if gx.At(n/2-2, n/2, n/2) <= 0 {
		t.Errorf("gx on -x side = %v, want positive", gx.At(n/2-2, n/2, n/2))
	}
	if gy.At(n/2, n/2+2, n/2) >= 0 || gz.At(n/2, n/2, n/2+2) >= 0 {
		t.Error("transverse accelerations do not point inward")
	}
	// Symmetry: |g| equal on opposite sides.
	a := math.Abs(gx.At(n/2+2, n/2, n/2))
	b := math.Abs(gx.At(n/2-2, n/2, n/2))
	if math.Abs(a-b)/a > 1e-10 {
		t.Errorf("acceleration asymmetry: %v vs %v", a, b)
	}
}

func TestMultigridManufacturedSolution(t *testing.T) {
	// Solve with a manufactured solution phi = x(1-x) y(1-y) z(1-z) on
	// the unit cube with exact Dirichlet boundary ghosts.
	n := 32
	dx := 1.0 / float64(n)
	sol := func(x, y, z float64) float64 { return x * (1 - x) * y * (1 - y) * z * (1 - z) }
	lap := func(x, y, z float64) float64 {
		return -2*y*(1-y)*z*(1-z) - 2*x*(1-x)*z*(1-z) - 2*x*(1-x)*y*(1-y)
	}
	phi := mesh.NewField3(n, n, n, 1)
	rhs := mesh.NewField3(n, n, n, 1)
	for k := -1; k <= n; k++ {
		for j := -1; j <= n; j++ {
			for i := -1; i <= n; i++ {
				x := (float64(i) + 0.5) * dx
				y := (float64(j) + 0.5) * dx
				z := (float64(k) + 0.5) * dx
				inside := i >= 0 && i < n && j >= 0 && j < n && k >= 0 && k < n
				if !inside {
					phi.Set(i, j, k, sol(x, y, z)) // Dirichlet ghosts
				}
				if inside {
					rhs.Set(i, j, k, lap(x, y, z))
				}
			}
		}
	}
	rel, cycles := SolveMultigrid(phi, rhs, dx, DefaultMGParams())
	if rel > 1e-8 {
		t.Fatalf("multigrid did not converge: rel=%e after %d cycles", rel, cycles)
	}
	// Compare against the analytic solution (second-order accuracy).
	var maxErr float64
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				x := (float64(i) + 0.5) * dx
				y := (float64(j) + 0.5) * dx
				z := (float64(k) + 0.5) * dx
				if d := math.Abs(phi.At(i, j, k) - sol(x, y, z)); d > maxErr {
					maxErr = d
				}
			}
		}
	}
	if maxErr > 5e-4 {
		t.Fatalf("multigrid solution error %e too large", maxErr)
	}
}

func TestMultigridConvergenceRate(t *testing.T) {
	// V-cycles must reduce the residual by a large factor per cycle.
	n := 16
	dx := 1.0 / float64(n)
	phi := mesh.NewField3(n, n, n, 1)
	rhs := mesh.NewField3(n, n, n, 1)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				rhs.Set(i, j, k, math.Sin(float64(i*j+k)))
			}
		}
	}
	p := DefaultMGParams()
	p.MaxVCycles = 1
	p.Tol = 0
	r0 := ResidualNorm(phi, rhs, dx)
	vcycle(phi, rhs, dx, p, &mgScratch{}, 0)
	r1 := ResidualNorm(phi, rhs, dx)
	if r1 > 0.2*r0 {
		t.Fatalf("V-cycle convergence too slow: %e -> %e", r0, r1)
	}
}

func TestMultigridOddSizeFallsBack(t *testing.T) {
	// Odd-sized grids must still converge via the smoothing bottom solver.
	n := 10 // coarsens 10 -> 5 (odd) -> bottom
	dx := 1.0 / float64(n)
	phi := mesh.NewField3(n, n, n, 1)
	rhs := mesh.NewField3(n, n, n, 1)
	rhs.Set(n/2, n/2, n/2, 1)
	p := DefaultMGParams()
	p.MaxVCycles = 60
	rel, _ := SolveMultigrid(phi, rhs, dx, p)
	if rel > 1e-6 {
		t.Fatalf("odd-size multigrid residual %e", rel)
	}
}

func BenchmarkPeriodicSolve32(b *testing.B) {
	n := 32
	rho := mesh.NewField3(n, n, n, 1)
	for i := range rho.Data {
		rho.Data[i] = float64(i % 13)
	}
	dx := 1.0 / float64(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolvePeriodic(rho, dx, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultigrid16(b *testing.B) {
	n := 16
	dx := 1.0 / float64(n)
	rhs := mesh.NewField3(n, n, n, 1)
	rhs.Set(n/2, n/2, n/2, 1)
	p := DefaultMGParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi := mesh.NewField3(n, n, n, 1)
		SolveMultigrid(phi, rhs, dx, p)
	}
}
