package gravity

import (
	"math"

	"repro/internal/mesh"
	"repro/internal/par"
)

// Multigrid relaxation solver for subgrid gravity ("a traditional
// multi-grid relaxation technique", paper §3.3). Solves ∇²φ = rhs with
// Dirichlet boundary conditions supplied in φ's ghost layer (interpolated
// from the parent potential by the AMR layer). Grids of any even size are
// coarsened until a dimension becomes odd or reaches the minimum, where a
// fixed number of smoothing sweeps serves as the bottom solver.

// MGParams configures the multigrid solver.
type MGParams struct {
	PreSmooth   int     // Gauss-Seidel sweeps before coarsening
	PostSmooth  int     // sweeps after prolongation
	BottomIters int     // sweeps at the coarsest level
	MaxVCycles  int     // V-cycle cap
	Tol         float64 // rms residual tolerance (relative to rhs rms)

	// Workers bounds the goroutines used by the smoothing, residual and
	// prolongation passes (par conventions: 0 = NumCPU, 1 = serial).
	// Red-black ordering makes same-color updates independent, so the
	// parallel solve is bitwise identical to the serial one.
	Workers int
}

// DefaultMGParams returns robust production defaults.
func DefaultMGParams() MGParams {
	return MGParams{PreSmooth: 3, PostSmooth: 3, BottomIters: 60, MaxVCycles: 30, Tol: 1e-8}
}

// parGateCells is the grid size below which the multigrid passes stay
// serial: coarse V-cycle levels are too small to amortize goroutine
// hand-off.
const parGateCells = 16 * 16 * 16

// levelWorkers resolves the worker count for one multigrid level.
func levelWorkers(f *mesh.Field3, workers int) int {
	if f.Nx*f.Ny*f.Nz < parGateCells {
		return 1
	}
	return workers
}

// mgScratch holds the per-level work fields of one SolveMultigrid call, so
// the V-cycle recursion stops allocating a residual field and two coarse
// fields per level per cycle (a 30-cycle solve on a 64³ grid used to churn
// ~180 short-lived fields through the allocator; now each level's trio is
// allocated once and reused for every subsequent cycle).
type mgScratch struct {
	levels []mgLevelBufs
}

// mgLevelBufs is one V-cycle level's reusable buffers: the fine residual
// and the coarse (half-resolution) right-hand side and error fields.
type mgLevelBufs struct {
	res, crhs, cerr *mesh.Field3
}

// at returns the buffers for recursion depth d, allocating them to the
// given fine shape on first visit. Shapes per depth are invariant across
// the cycles of one solve, so reuse is safe.
func (sc *mgScratch) at(d int, fine *mesh.Field3) mgLevelBufs {
	for len(sc.levels) <= d {
		sc.levels = append(sc.levels, mgLevelBufs{})
	}
	if sc.levels[d].res == nil {
		sc.levels[d] = mgLevelBufs{
			res:  mesh.NewField3(fine.Nx, fine.Ny, fine.Nz, fine.Ng),
			crhs: mesh.NewField3(fine.Nx/2, fine.Ny/2, fine.Nz/2, 1),
			cerr: mesh.NewField3(fine.Nx/2, fine.Ny/2, fine.Nz/2, 1),
		}
	}
	return sc.levels[d]
}

// SolveMultigrid runs V-cycles until the residual drops below
// tol*rms(rhs) or MaxVCycles is reached. phi holds the initial guess in
// its active region and the Dirichlet boundary values in its first ghost
// layer; it is updated in place. Returns the final relative residual and
// the number of V-cycles used.
func SolveMultigrid(phi, rhs *mesh.Field3, dx float64, p MGParams) (float64, int) {
	rhsNorm := rmsActive(rhs)
	if rhsNorm == 0 {
		rhsNorm = 1
	}
	// Reuse one residual field across cycles and compute it with the
	// level's worker share, so the convergence check doesn't serialize
	// (or reallocate) once per V-cycle.
	w := levelWorkers(phi, p.Workers)
	res := mesh.NewField3(phi.Nx, phi.Ny, phi.Nz, phi.Ng)
	var sc mgScratch
	var rel float64
	for cyc := 0; cyc < p.MaxVCycles; cyc++ {
		vcycle(phi, rhs, dx, p, &sc, 0)
		residualInto(res, phi, rhs, dx, w)
		rel = rmsActive(res) / rhsNorm
		if rel < p.Tol {
			return rel, cyc + 1
		}
	}
	return rel, p.MaxVCycles
}

func vcycle(phi, rhs *mesh.Field3, dx float64, p MGParams, sc *mgScratch, depth int) {
	nx, ny, nz := phi.Nx, phi.Ny, phi.Nz
	if nx%2 != 0 || ny%2 != 0 || nz%2 != 0 || nx <= 2 || ny <= 2 || nz <= 2 {
		// Bottom: smooth hard.
		for it := 0; it < p.BottomIters; it++ {
			smoothRB(phi, rhs, dx, 1)
		}
		return
	}
	w := levelWorkers(phi, p.Workers)
	for it := 0; it < p.PreSmooth; it++ {
		smoothRB(phi, rhs, dx, w)
	}
	// Coarse-grid correction: residual restricted to the half grid;
	// the error equation has homogeneous Dirichlet BCs (zero ghosts).
	bufs := sc.at(depth, phi)
	residualInto(bufs.res, phi, rhs, dx, w)
	mesh.Restrict(bufs.crhs, bufs.res, 0, 0, 0, 2)
	// The coarse error starts from a zero guess with zero (homogeneous
	// Dirichlet) ghosts each cycle, exactly as a fresh allocation would.
	bufs.cerr.Zero()
	vcycle(bufs.cerr, bufs.crhs, 2*dx, p, sc, depth+1)
	// Prolong the correction (piecewise constant is sufficient for the
	// error; higher order gains little) and add, walking rows flat: each
	// coarse value covers two consecutive fine cells.
	cerr := bufs.cerr
	pd, cd := phi.Data, cerr.Data
	par.For(w, nz, 0, func(_, klo, khi int) {
		for k := klo; k < khi; k++ {
			for j := 0; j < ny; j++ {
				idx := phi.Idx(0, j, k)
				cIdx := cerr.Idx(0, j/2, k/2)
				for i := 0; i < nx; i += 2 {
					c := cd[cIdx+i/2]
					pd[idx+i] += c
					pd[idx+i+1] += c
				}
			}
		}
	})
	for it := 0; it < p.PostSmooth; it++ {
		smoothRB(phi, rhs, dx, w)
	}
}

// smoothRB performs one red-black Gauss-Seidel sweep of the 7-point
// Laplacian. Cells of one color only read the other color, so the k-planes
// of a color pass can run concurrently with bitwise-identical results. The
// inner loop walks the flat arrays with precomputed strides — the At/Set
// form recomputed the three-term index per neighbor access.
func smoothRB(phi, rhs *mesh.Field3, dx float64, workers int) {
	h2 := dx * dx
	pd, rd := phi.Data, rhs.Data
	sy, sz := phi.StrideY(), phi.StrideZ()
	for color := 0; color < 2; color++ {
		par.For(workers, phi.Nz, 0, func(_, klo, khi int) {
			for k := klo; k < khi; k++ {
				for j := 0; j < phi.Ny; j++ {
					start := (k + j + color) % 2
					idx := phi.Idx(start, j, k)
					ridx := rhs.Idx(start, j, k)
					for i := start; i < phi.Nx; i += 2 {
						s := pd[idx+1] + pd[idx-1] +
							pd[idx+sy] + pd[idx-sy] +
							pd[idx+sz] + pd[idx-sz]
						pd[idx] = (s - h2*rd[ridx]) / 6
						idx += 2
						ridx += 2
					}
				}
			}
		})
	}
}

func rmsActive(f *mesh.Field3) float64 {
	var s float64
	n := 0
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			base := f.Idx(0, j, k)
			row := f.Data[base : base+f.Nx]
			for _, v := range row {
				s += v * v
			}
			n += f.Nx
		}
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(s / float64(n))
}
