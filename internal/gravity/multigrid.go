package gravity

import (
	"math"

	"repro/internal/mesh"
)

// Multigrid relaxation solver for subgrid gravity ("a traditional
// multi-grid relaxation technique", paper §3.3). Solves ∇²φ = rhs with
// Dirichlet boundary conditions supplied in φ's ghost layer (interpolated
// from the parent potential by the AMR layer). Grids of any even size are
// coarsened until a dimension becomes odd or reaches the minimum, where a
// fixed number of smoothing sweeps serves as the bottom solver.

// MGParams configures the multigrid solver.
type MGParams struct {
	PreSmooth   int     // Gauss-Seidel sweeps before coarsening
	PostSmooth  int     // sweeps after prolongation
	BottomIters int     // sweeps at the coarsest level
	MaxVCycles  int     // V-cycle cap
	Tol         float64 // rms residual tolerance (relative to rhs rms)
}

// DefaultMGParams returns robust production defaults.
func DefaultMGParams() MGParams {
	return MGParams{PreSmooth: 3, PostSmooth: 3, BottomIters: 60, MaxVCycles: 30, Tol: 1e-8}
}

// SolveMultigrid runs V-cycles until the residual drops below
// tol*rms(rhs) or MaxVCycles is reached. phi holds the initial guess in
// its active region and the Dirichlet boundary values in its first ghost
// layer; it is updated in place. Returns the final relative residual and
// the number of V-cycles used.
func SolveMultigrid(phi, rhs *mesh.Field3, dx float64, p MGParams) (float64, int) {
	rhsNorm := rmsActive(rhs)
	if rhsNorm == 0 {
		rhsNorm = 1
	}
	var rel float64
	for cyc := 0; cyc < p.MaxVCycles; cyc++ {
		vcycle(phi, rhs, dx, p)
		rel = ResidualNorm(phi, rhs, dx) / rhsNorm
		if rel < p.Tol {
			return rel, cyc + 1
		}
	}
	return rel, p.MaxVCycles
}

func vcycle(phi, rhs *mesh.Field3, dx float64, p MGParams) {
	nx, ny, nz := phi.Nx, phi.Ny, phi.Nz
	if nx%2 != 0 || ny%2 != 0 || nz%2 != 0 || nx <= 2 || ny <= 2 || nz <= 2 {
		// Bottom: smooth hard.
		for it := 0; it < p.BottomIters; it++ {
			smoothRB(phi, rhs, dx)
		}
		return
	}
	for it := 0; it < p.PreSmooth; it++ {
		smoothRB(phi, rhs, dx)
	}
	// Coarse-grid correction: residual restricted to the half grid;
	// the error equation has homogeneous Dirichlet BCs (zero ghosts).
	res := Residual(phi, rhs, dx)
	crhs := mesh.NewField3(nx/2, ny/2, nz/2, 1)
	mesh.Restrict(crhs, res, 0, 0, 0, 2)
	cerr := mesh.NewField3(nx/2, ny/2, nz/2, 1)
	vcycle(cerr, crhs, 2*dx, p)
	// Prolong the correction (piecewise constant is sufficient for the
	// error; higher order gains little) and add.
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				phi.Add(i, j, k, cerr.At(i/2, j/2, k/2))
			}
		}
	}
	for it := 0; it < p.PostSmooth; it++ {
		smoothRB(phi, rhs, dx)
	}
}

// smoothRB performs one red-black Gauss-Seidel sweep of the 7-point
// Laplacian.
func smoothRB(phi, rhs *mesh.Field3, dx float64) {
	h2 := dx * dx
	for color := 0; color < 2; color++ {
		for k := 0; k < phi.Nz; k++ {
			for j := 0; j < phi.Ny; j++ {
				start := (k + j + color) % 2
				for i := start; i < phi.Nx; i += 2 {
					s := phi.At(i+1, j, k) + phi.At(i-1, j, k) +
						phi.At(i, j+1, k) + phi.At(i, j-1, k) +
						phi.At(i, j, k+1) + phi.At(i, j, k-1)
					phi.Set(i, j, k, (s-h2*rhs.At(i, j, k))/6)
				}
			}
		}
	}
}

func rmsActive(f *mesh.Field3) float64 {
	var s float64
	n := 0
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			for i := 0; i < f.Nx; i++ {
				v := f.At(i, j, k)
				s += v * v
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(s / float64(n))
}
