package mp

// Transport abstracts how Messages move between ranks, so the same
// Runtime (and the same statistics) can run over in-process channels —
// the paper-model configuration — or over real TCP connections between
// peer processes. The interface is deliberately the minimal mailbox
// surface the Runtime needs: validated addressed sends and a blocking
// per-rank receive.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Transport delivers Messages between ranks. Implementations must be safe
// for concurrent Send and Recv from multiple goroutines.
type Transport interface {
	// NRanks returns the number of ranks the transport connects.
	NRanks() int
	// Send delivers m to rank m.To (buffered/asynchronous where the
	// medium allows). It fails on an out-of-range destination or a
	// closed transport.
	Send(m Message) error
	// Recv blocks until a message addressed to rank arrives, or the
	// transport is closed. Process-wide transports (channels) serve any
	// rank; peer transports (TCP) serve only their local rank.
	Recv(rank int) (Message, error)
	// Close releases the transport; blocked Recv calls return ErrClosed.
	Close() error
}

// ErrClosed is returned by Send and Recv after a transport is closed.
var ErrClosed = errors.New("mp: transport closed")

// ChanTransport is the in-process Transport: one buffered channel per
// rank, exactly the mailbox semantics the virtual-time model has always
// used.
type ChanTransport struct {
	queues []chan Message
	done   chan struct{}
	once   sync.Once
}

// NewChanTransport creates an in-process transport with n ranks and
// buffered mailboxes.
func NewChanTransport(n int) (*ChanTransport, error) {
	if n < 1 {
		return nil, fmt.Errorf("mp: need at least 1 rank, got %d", n)
	}
	t := &ChanTransport{queues: make([]chan Message, n), done: make(chan struct{})}
	for i := range t.queues {
		t.queues[i] = make(chan Message, 1024)
	}
	return t, nil
}

// NRanks returns the rank count.
func (t *ChanTransport) NRanks() int { return len(t.queues) }

// Send delivers m to rank m.To's mailbox.
func (t *ChanTransport) Send(m Message) error {
	if m.To < 0 || m.To >= len(t.queues) {
		return fmt.Errorf("mp: bad destination rank %d", m.To)
	}
	select {
	case t.queues[m.To] <- m:
		return nil
	case <-t.done:
		return ErrClosed
	}
}

// Recv blocks until a message arrives for the rank. Messages already
// buffered when the transport closes are still drained before ErrClosed.
func (t *ChanTransport) Recv(rank int) (Message, error) {
	if rank < 0 || rank >= len(t.queues) {
		return Message{}, fmt.Errorf("mp: bad rank %d", rank)
	}
	select {
	case m := <-t.queues[rank]:
		return m, nil
	default:
	}
	select {
	case m := <-t.queues[rank]:
		return m, nil
	case <-t.done:
		return Message{}, ErrClosed
	}
}

// Close unblocks all pending and future Recv calls.
func (t *ChanTransport) Close() error {
	t.once.Do(func() { close(t.done) })
	return nil
}

// RegisterWireType registers a concrete Message.Data payload type with
// the TCP wire codec (gob requires concrete types behind the `any` field
// to be registered on both ends). The common scalar, slice and GridMeta
// payloads are pre-registered.
func RegisterWireType(v any) { gob.Register(v) }

func init() {
	for _, v := range []any{int(0), int64(0), float64(0), "", []byte(nil),
		[]int(nil), []float64(nil), GridMeta{}, []GridMeta(nil)} {
		gob.Register(v)
	}
}

// dialTimeout bounds how long a TCP send waits for a peer that is still
// starting up before reporting the connection as failed.
const dialTimeout = 10 * time.Second

// TCPTransport is the peer Transport: rank i of an N-peer group listens
// on addrs[i] and lazily dials the other peers on first send. Each
// message is one length-prefixed frame — a 4-byte big-endian payload
// length followed by the gob-encoded Message — so frames survive
// arbitrary TCP segmentation and a reader can resynchronize only at
// frame boundaries (a torn frame fails the connection, never delivers a
// partial message).
//
// Unlike ChanTransport, a TCPTransport instance serves exactly one rank:
// Recv is only valid for the local rank, and Send to the local rank
// short-circuits through the inbox without touching the network.
type TCPTransport struct {
	self  int
	addrs []string
	ln    net.Listener
	inbox chan Message
	done  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup

	mu      sync.Mutex
	conns   map[int]*peerConn
	inbound map[net.Conn]struct{}
}

// peerConn is one outbound connection with its send lock (frames from
// concurrent senders must not interleave).
type peerConn struct {
	mu sync.Mutex
	c  net.Conn
}

// NewTCPTransport creates the peer transport for rank self of the group
// addrs, listening on addrs[self].
func NewTCPTransport(self int, addrs []string) (*TCPTransport, error) {
	if self < 0 || self >= len(addrs) {
		return nil, fmt.Errorf("mp: self rank %d outside %d peers", self, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, fmt.Errorf("mp: listen %s: %w", addrs[self], err)
	}
	return NewTCPTransportOn(self, addrs, ln), nil
}

// NewTCPTransportOn is NewTCPTransport over a pre-bound listener, for
// callers (and tests) that bind port 0 first to learn their address.
func NewTCPTransportOn(self int, addrs []string, ln net.Listener) *TCPTransport {
	t := &TCPTransport{
		self:    self,
		addrs:   append([]string(nil), addrs...),
		ln:      ln,
		inbox:   make(chan Message, 1024),
		done:    make(chan struct{}),
		conns:   make(map[int]*peerConn),
		inbound: make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t
}

// NRanks returns the peer-group size.
func (t *TCPTransport) NRanks() int { return len(t.addrs) }

// Addr returns the local listen address (useful when bound to port 0).
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// acceptLoop accepts inbound peer connections and spawns a frame reader
// per connection.
func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.inbound[c] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

// readLoop decodes frames from one inbound connection into the inbox
// until the connection or the transport dies.
func (t *TCPTransport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer func() {
		c.Close()
		t.mu.Lock()
		delete(t.inbound, c)
		t.mu.Unlock()
	}()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		const maxFrame = 64 << 20
		if n > maxFrame {
			return // corrupt stream; drop the connection
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
		var m Message
		if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&m); err != nil {
			return
		}
		select {
		case t.inbox <- m:
		case <-t.done:
			return
		}
	}
}

// Send frames and ships m to peer m.To, dialing (with startup retry) on
// first use. Sends to the local rank bypass the network.
func (t *TCPTransport) Send(m Message) error {
	if m.To < 0 || m.To >= len(t.addrs) {
		return fmt.Errorf("mp: bad destination rank %d", m.To)
	}
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	if m.To == t.self {
		select {
		case t.inbox <- m:
			return nil
		case <-t.done:
			return ErrClosed
		}
	}
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // frame header placeholder
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("mp: encode message for rank %d: %w", m.To, err)
	}
	frame := buf.Bytes()
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))

	pc, err := t.conn(m.To)
	if err != nil {
		return err
	}
	pc.mu.Lock()
	_, werr := pc.c.Write(frame)
	pc.mu.Unlock()
	if werr != nil {
		// Drop the broken connection so the next send re-dials.
		t.mu.Lock()
		if t.conns[m.To] == pc {
			delete(t.conns, m.To)
		}
		t.mu.Unlock()
		pc.c.Close()
		return fmt.Errorf("mp: send to rank %d: %w", m.To, werr)
	}
	return nil
}

// conn returns the cached outbound connection to a peer, dialing it if
// needed. Peers of a group start concurrently, so the dial retries with
// backoff until the peer's listener is up or dialTimeout expires.
func (t *TCPTransport) conn(to int) (*peerConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if pc, ok := t.conns[to]; ok {
		return pc, nil
	}
	deadline := time.Now().Add(dialTimeout)
	backoff := 5 * time.Millisecond
	for {
		c, err := net.DialTimeout("tcp", t.addrs[to], time.Until(deadline))
		if err == nil {
			pc := &peerConn{c: c}
			t.conns[to] = pc
			return pc, nil
		}
		select {
		case <-t.done:
			return nil, ErrClosed
		default:
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("mp: dial rank %d at %s: %w", to, t.addrs[to], err)
		}
		time.Sleep(backoff)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// Recv blocks until a message for the local rank arrives. Asking for any
// other rank's mail is a programming error on a peer transport.
func (t *TCPTransport) Recv(rank int) (Message, error) {
	if rank != t.self {
		return Message{}, fmt.Errorf("mp: TCP transport serves rank %d, not %d", t.self, rank)
	}
	select {
	case m := <-t.inbox:
		return m, nil
	default:
	}
	select {
	case m := <-t.inbox:
		return m, nil
	case <-t.done:
		return Message{}, ErrClosed
	}
}

// Close shuts the listener and all connections; pending Recv calls
// return ErrClosed.
func (t *TCPTransport) Close() error {
	t.once.Do(func() {
		close(t.done)
		t.ln.Close()
		t.mu.Lock()
		for to, pc := range t.conns {
			pc.c.Close()
			delete(t.conns, to)
		}
		for c := range t.inbound {
			c.Close()
		}
		t.mu.Unlock()
	})
	t.wg.Wait()
	return nil
}
