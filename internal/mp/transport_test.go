package mp

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// newTCPGroup builds n connected TCPTransports on loopback port-0
// listeners, returning them with cleanup registered.
func newTCPGroup(t *testing.T, n int) []*TCPTransport {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	trs := make([]*TCPTransport, n)
	for i := range trs {
		tr := NewTCPTransportOn(i, addrs, lns[i])
		trs[i] = tr
		t.Cleanup(func() { tr.Close() })
	}
	return trs
}

func TestChanTransportDrainsBufferedAfterClose(t *testing.T) {
	tr, err := NewChanTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(Message{From: 0, To: 1, Tag: "x", Data: 7}); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	m, err := tr.Recv(1)
	if err != nil || m.Data.(int) != 7 {
		t.Fatalf("buffered message lost on close: %v %v", m, err)
	}
	if _, err := tr.Recv(1); err != ErrClosed {
		t.Fatalf("drained closed transport: want ErrClosed, got %v", err)
	}
	if err := tr.Send(Message{To: 5}); err == nil {
		t.Fatal("send to out-of-range rank succeeded")
	}
}

// TestTCPTransportRingExchange: every rank sends a struct payload to its
// right neighbour over real sockets; everyone receives the expected
// message with the payload type intact.
func TestTCPTransportRingExchange(t *testing.T) {
	const n = 3
	trs := newTCPGroup(t, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr := trs[rank]
			meta := GridMeta{ID: rank, Level: 1, N: [3]int{8, 8, 8}, Owner: rank}
			if err := tr.Send(Message{From: rank, To: (rank + 1) % n, Tag: "ring", Bytes: 64, Data: meta}); err != nil {
				errs[rank] = err
				return
			}
			m, err := tr.Recv(rank)
			if err != nil {
				errs[rank] = err
				return
			}
			want := (rank + n - 1) % n
			got, ok := m.Data.(GridMeta)
			if m.From != want || m.Tag != "ring" || !ok || got.ID != want {
				errs[rank] = fmt.Errorf("rank %d got %+v", rank, m)
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestTCPTransportSelfSendAndBadRank(t *testing.T) {
	trs := newTCPGroup(t, 2)
	if err := trs[0].Send(Message{From: 0, To: 0, Tag: "self", Data: "hi"}); err != nil {
		t.Fatal(err)
	}
	m, err := trs[0].Recv(0)
	if err != nil || m.Data.(string) != "hi" {
		t.Fatalf("self-send lost: %v %v", m, err)
	}
	if err := trs[0].Send(Message{To: 9}); err == nil {
		t.Fatal("send to out-of-range rank succeeded")
	}
	if _, err := trs[0].Recv(1); err == nil {
		t.Fatal("recv for a non-local rank succeeded on a peer transport")
	}
}

// TestRuntimeOverTCP: the same Runtime API (send/recv/statistics) works
// with a TCP transport per rank — one runtime per peer, message counts
// observed on the sender side.
func TestRuntimeOverTCP(t *testing.T) {
	const n = 3
	trs := newTCPGroup(t, n)
	rts := make([]*Runtime, n)
	for i := range rts {
		rts[i] = NewRuntimeOver(trs[i])
	}
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			rt := rts[rank]
			if err := rt.Send(Message{From: rank, To: (rank + 1) % n, Tag: "tick", Bytes: 100, Data: rank}); err != nil {
				t.Errorf("rank %d send: %v", rank, err)
				return
			}
			m := rt.Recv(rank)
			if m.Data.(int) != (rank+n-1)%n {
				t.Errorf("rank %d got %+v", rank, m)
			}
		}(rank)
	}
	wg.Wait()
	for rank, rt := range rts {
		sends, bytes, _ := rt.Stats()
		if sends != 1 || bytes != 100 {
			t.Fatalf("rank %d stats: %d sends, %d bytes", rank, sends, bytes)
		}
	}
}

// TestTCPTransportCloseUnblocksRecv: Close must wake a blocked reader
// promptly (the failure-detection path in a peer group).
func TestTCPTransportCloseUnblocksRecv(t *testing.T) {
	trs := newTCPGroup(t, 2)
	done := make(chan error, 1)
	go func() {
		_, err := trs[0].Recv(0)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	trs[0].Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked after Close")
	}
}
