package mp

import "sort"

// Virtual-time model of the pipelined-communication optimization (§3.4):
// a boundary-exchange phase consists of many sends between ranks. The
// original code split each phase into a send stage and a receive stage,
// ordering the sends so "the data that are required first are sent first";
// messages then propagate across the network while later sends are being
// posted, and receivers rarely wait.
//
// The model: each message m has a size; the network delivers it at
// post_time + Latency + Bytes/Bandwidth. A rank processes its receives in
// need-order; its wait time accumulates whenever the next needed message
// has not yet arrived. Deterministic virtual time, no wall clocks.

// Xfer is one message of an exchange phase.
type Xfer struct {
	From, To int
	Bytes    int
	// NeedOrder ranks when the receiver needs this data (lower = sooner).
	NeedOrder int
}

// NetParams models the interconnect.
type NetParams struct {
	Latency   float64 // seconds per message
	Bandwidth float64 // bytes per second
	SendCost  float64 // sender CPU cost per message (serialization)
}

// DefaultNetParams roughly matches a 2001-era SP2 switch.
func DefaultNetParams() NetParams {
	return NetParams{Latency: 20e-6, Bandwidth: 300e6, SendCost: 5e-6}
}

// ExchangeResult summarizes a simulated phase.
type ExchangeResult struct {
	TotalWait  float64 // summed receiver wait time over all ranks
	PhaseTime  float64 // virtual time until every rank finished receiving
	NumSends   int
	TotalBytes int
}

// SimulateExchange runs one phase. If pipelined, every rank posts all its
// sends (in need-order) before receiving anything; otherwise each rank
// alternates send/receive per message (the naive interleaved pattern).
func SimulateExchange(xfers []Xfer, nRanks int, p NetParams, pipelined bool) ExchangeResult {
	res := ExchangeResult{NumSends: len(xfers)}
	// Group sends by sender, receives by receiver.
	bySender := make([][]Xfer, nRanks)
	byReceiver := make([][]Xfer, nRanks)
	for _, x := range xfers {
		bySender[x.From] = append(bySender[x.From], x)
		byReceiver[x.To] = append(byReceiver[x.To], x)
		res.TotalBytes += x.Bytes
	}
	for r := 0; r < nRanks; r++ {
		sort.SliceStable(bySender[r], func(i, j int) bool {
			return bySender[r][i].NeedOrder < bySender[r][j].NeedOrder
		})
		sort.SliceStable(byReceiver[r], func(i, j int) bool {
			return byReceiver[r][i].NeedOrder < byReceiver[r][j].NeedOrder
		})
	}

	arrival := make(map[Xfer]float64)
	clock := make([]float64, nRanks)

	if pipelined {
		// Stage 1: all ranks post all sends.
		for r := 0; r < nRanks; r++ {
			for _, x := range bySender[r] {
				clock[r] += p.SendCost
				arrival[x] = clock[r] + p.Latency + float64(x.Bytes)/p.Bandwidth
			}
		}
		// Stage 2: receive in need-order.
		for r := 0; r < nRanks; r++ {
			for _, x := range byReceiver[r] {
				if t := arrival[x]; t > clock[r] {
					res.TotalWait += t - clock[r]
					clock[r] = t
				}
			}
		}
	} else {
		// Interleaved: each rank alternates its i-th send with its i-th
		// blocking receive, so later sends are delayed by earlier waits.
		// Send post times and receive completions are mutually dependent
		// across ranks; solve by fixed-point iteration (converges in a
		// few passes because dependencies only lengthen waits).
		for _, x := range xfers {
			arrival[x] = p.Latency + float64(x.Bytes)/p.Bandwidth
		}
		for pass := 0; pass < 10; pass++ {
			for r := 0; r < nRanks; r++ {
				clock[r] = 0
			}
			wait := 0.0
			for r := 0; r < nRanks; r++ {
				n := len(bySender[r])
				if len(byReceiver[r]) > n {
					n = len(byReceiver[r])
				}
				for i := 0; i < n; i++ {
					if i < len(bySender[r]) {
						clock[r] += p.SendCost
						x := bySender[r][i]
						arrival[x] = clock[r] + p.Latency + float64(x.Bytes)/p.Bandwidth
					}
					if i < len(byReceiver[r]) {
						if t := arrival[byReceiver[r][i]]; t > clock[r] {
							wait += t - clock[r]
							clock[r] = t
						}
					}
				}
			}
			res.TotalWait = wait
		}
	}
	for r := 0; r < nRanks; r++ {
		if clock[r] > res.PhaseTime {
			res.PhaseTime = clock[r]
		}
	}
	return res
}
