package mp

import "sort"

// Load balancing for distributed objects: grids are placed whole onto
// ranks. The paper notes load balancing "becomes a serious headache since
// small regions of the original grid eventually dominate the computational
// requirements" — deep grids carry weight proportional to cells times the
// number of sub-steps their level takes.

// Assignment maps grid IDs to ranks.
type Assignment map[int]int

// BalanceLPT assigns grids to nRanks with the longest-processing-time
// greedy heuristic on the given work weights. Returns the assignment and
// the resulting imbalance = maxLoad/meanLoad - 1.
func BalanceLPT(metas []GridMeta, weight func(GridMeta) float64, nRanks int) (Assignment, float64) {
	if nRanks < 1 {
		nRanks = 1
	}
	type item struct {
		id int
		w  float64
	}
	items := make([]item, 0, len(metas))
	for _, m := range metas {
		items = append(items, item{m.ID, weight(m)})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].w > items[j].w })
	loads := make([]float64, nRanks)
	asg := make(Assignment, len(items))
	for _, it := range items {
		best := 0
		for r := 1; r < nRanks; r++ {
			if loads[r] < loads[best] {
				best = r
			}
		}
		asg[it.id] = best
		loads[best] += it.w
	}
	var total, max float64
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return asg, 0
	}
	mean := total / float64(nRanks)
	return asg, max/mean - 1
}

// WorkWeight returns the standard AMR work estimate for a grid: cells
// times r^level sub-steps per root step.
func WorkWeight(refine int) func(GridMeta) float64 {
	return func(m GridMeta) float64 {
		w := float64(m.Cells())
		for l := 0; l < m.Level; l++ {
			w *= float64(refine)
		}
		return w
	}
}
