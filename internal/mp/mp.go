// Package mp reproduces the parallelization strategy of the paper (§3.4)
// as an in-process message-passing runtime: ranks are goroutines, messages
// are typed channel sends with byte accounting, and the three key
// optimizations of the original MPI implementation are modeled so their
// effect can be measured:
//
//   - Distributed objects: whole grids are placed on processors (no
//     intra-grid decomposition), assigned by a load balancer.
//   - Sterile objects: every rank holds metadata-only replicas of every
//     grid, so neighbour lookup is a local operation and "almost all
//     messages are direct data sends; very few probes are required".
//   - Pipelined communication: each exchange phase posts all sends before
//     any receive, ordered so the data needed first is sent first; the
//     virtual-time model quantifies the resulting drop in wait time.
//
// The runtime substitutes for MPI on the paper's IBM SP2: it exercises the
// same code paths (ownership, probing, send ordering) and produces the
// same qualitative statistics, which is what the §3.4 discussion reports.
package mp

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Message is one typed payload between ranks.
type Message struct {
	From, To int
	Tag      string
	Bytes    int
	Data     any
}

// Runtime carries the rank transport and global statistics. The default
// transport is in-process channels (the virtual-time model); NewRuntimeOver
// runs the same runtime over any Transport, including TCP peers.
type Runtime struct {
	NRanks int
	tr     Transport

	sends  atomic.Int64
	bytes  atomic.Int64
	probes atomic.Int64
}

// NewRuntime creates a runtime with n ranks over in-process buffered
// mailboxes.
func NewRuntime(n int) (*Runtime, error) {
	tr, err := NewChanTransport(n)
	if err != nil {
		return nil, err
	}
	return NewRuntimeOver(tr), nil
}

// NewRuntimeOver creates a runtime over an existing transport. The caller
// keeps ownership of the transport's lifetime (Close).
func NewRuntimeOver(tr Transport) *Runtime {
	return &Runtime{NRanks: tr.NRanks(), tr: tr}
}

// Send delivers a message asynchronously (buffered).
func (r *Runtime) Send(m Message) error {
	if err := r.tr.Send(m); err != nil {
		return err
	}
	r.sends.Add(1)
	r.bytes.Add(int64(m.Bytes))
	return nil
}

// Recv blocks until a message arrives for the rank. A transport failure
// (peer death, closed transport) panics: the modeling runtime has no
// recovery story mid-phase, and callers that need one should use the
// Transport directly.
func (r *Runtime) Recv(rank int) Message {
	m, err := r.tr.Recv(rank)
	if err != nil {
		panic(fmt.Sprintf("mp: recv on rank %d: %v", rank, err))
	}
	return m
}

// Close closes the underlying transport.
func (r *Runtime) Close() error { return r.tr.Close() }

// Probe models the neighbour-discovery query a rank must issue when it
// does not hold sterile metadata: one round-trip per queried rank.
func (r *Runtime) Probe() {
	r.probes.Add(1)
}

// Stats returns (sends, bytes, probes) so far.
func (r *Runtime) Stats() (sends, bytes, probes int64) {
	return r.sends.Load(), r.bytes.Load(), r.probes.Load()
}

// Run spawns fn on every rank and waits for completion.
func (r *Runtime) Run(fn func(rank int)) {
	var wg sync.WaitGroup
	for i := 0; i < r.NRanks; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(rank)
		}(i)
	}
	wg.Wait()
}

// GridMeta is a sterile object: "information about the location and size
// of a grid, but not the actual solution". Small enough that every rank
// holds the entire hierarchy's worth.
type GridMeta struct {
	ID    int
	Level int
	Lo    [3]int
	N     [3]int
	Owner int
}

// Cells returns the grid's cell count (the load-balance weight basis).
func (m GridMeta) Cells() int { return m.N[0] * m.N[1] * m.N[2] }

// Catalog is the sterile-object table; with UseSterile=false it models
// the pre-optimization code that must probe other ranks to find
// neighbours.
type Catalog struct {
	UseSterile bool
	rt         *Runtime
	mu         sync.RWMutex
	metas      map[int]GridMeta
}

// NewCatalog builds a catalog over the runtime.
func NewCatalog(rt *Runtime, useSterile bool) *Catalog {
	return &Catalog{UseSterile: useSterile, rt: rt, metas: make(map[int]GridMeta)}
}

// Register adds or updates a grid's metadata (replicated to all ranks by
// construction — the map is the shared sterile table).
func (c *Catalog) Register(m GridMeta) {
	c.mu.Lock()
	c.metas[m.ID] = m
	c.mu.Unlock()
}

// Remove deletes a grid's metadata (hierarchy rebuild).
func (c *Catalog) Remove(id int) {
	c.mu.Lock()
	delete(c.metas, id)
	c.mu.Unlock()
}

// Len returns the number of registered grids.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.metas)
}

// Owner resolves which rank owns a grid. With sterile objects this is a
// local lookup; without them the caller pays one probe per other rank
// (worst case), which the runtime counts.
func (c *Catalog) Owner(id int) (int, bool) {
	c.mu.RLock()
	m, ok := c.metas[id]
	c.mu.RUnlock()
	if !ok {
		return -1, false
	}
	if !c.UseSterile {
		for r := 0; r < c.rt.NRanks-1; r++ {
			c.rt.Probe()
		}
	}
	return m.Owner, true
}

// Neighbours returns the IDs of grids at the same level that touch or
// overlap the halo of the given grid (metadata-only query — the operation
// sterile objects make cheap).
func (c *Catalog) Neighbours(id, halo int) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	g, ok := c.metas[id]
	if !ok {
		return nil
	}
	if !c.UseSterile {
		for r := 0; r < c.rt.NRanks-1; r++ {
			c.rt.Probe()
		}
	}
	var out []int
	for _, m := range c.metas {
		if m.ID == id || m.Level != g.Level {
			continue
		}
		touch := true
		for d := 0; d < 3; d++ {
			if m.Lo[d] > g.Lo[d]+g.N[d]+halo || m.Lo[d]+m.N[d] < g.Lo[d]-halo {
				touch = false
				break
			}
		}
		if touch {
			out = append(out, m.ID)
		}
	}
	return out
}
