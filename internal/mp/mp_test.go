package mp

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestRuntimeBasics(t *testing.T) {
	if _, err := NewRuntime(0); err == nil {
		t.Fatal("0 ranks should fail")
	}
	rt, err := NewRuntime(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Send(Message{From: 0, To: 9}); err == nil {
		t.Fatal("bad destination should fail")
	}
	if err := rt.Send(Message{From: 0, To: 2, Tag: "bc", Bytes: 128, Data: "hello"}); err != nil {
		t.Fatal(err)
	}
	m := rt.Recv(2)
	if m.Data != "hello" || m.From != 0 {
		t.Fatalf("bad message %+v", m)
	}
	sends, bytes, probes := rt.Stats()
	if sends != 1 || bytes != 128 || probes != 0 {
		t.Fatalf("stats %d %d %d", sends, bytes, probes)
	}
}

func TestRunAllRanks(t *testing.T) {
	rt, _ := NewRuntime(8)
	var mu sync.Mutex
	seen := map[int]bool{}
	rt.Run(func(rank int) {
		mu.Lock()
		seen[rank] = true
		mu.Unlock()
	})
	if len(seen) != 8 {
		t.Fatalf("only %d ranks ran", len(seen))
	}
}

func TestRingExchange(t *testing.T) {
	// Every rank sends to its right neighbour and receives from its left.
	n := 8
	rt, _ := NewRuntime(n)
	rt.Run(func(rank int) {
		_ = rt.Send(Message{From: rank, To: (rank + 1) % n, Bytes: 8, Data: rank})
		m := rt.Recv(rank)
		want := (rank + n - 1) % n
		if m.Data != want {
			t.Errorf("rank %d received from %v, want %d", rank, m.Data, want)
		}
	})
	sends, _, _ := rt.Stats()
	if sends != int64(n) {
		t.Fatalf("sends = %d", sends)
	}
}

func TestSterileObjectsAvoidProbes(t *testing.T) {
	rt, _ := NewRuntime(16)
	sterile := NewCatalog(rt, true)
	for i := 0; i < 100; i++ {
		sterile.Register(GridMeta{ID: i, Level: 1, Lo: [3]int{i * 4, 0, 0}, N: [3]int{4, 4, 4}, Owner: i % 16})
	}
	for i := 0; i < 100; i++ {
		if _, ok := sterile.Owner(i); !ok {
			t.Fatal("owner lookup failed")
		}
		sterile.Neighbours(i, 2)
	}
	_, _, probes := rt.Stats()
	if probes != 0 {
		t.Fatalf("sterile catalog issued %d probes, want 0", probes)
	}

	rt2, _ := NewRuntime(16)
	naive := NewCatalog(rt2, false)
	for i := 0; i < 100; i++ {
		naive.Register(GridMeta{ID: i, Level: 1, Lo: [3]int{i * 4, 0, 0}, N: [3]int{4, 4, 4}, Owner: i % 16})
	}
	for i := 0; i < 100; i++ {
		naive.Owner(i)
	}
	_, _, probes2 := rt2.Stats()
	if probes2 != 100*15 {
		t.Fatalf("naive catalog probes = %d, want %d", probes2, 100*15)
	}
}

func TestCatalogNeighbours(t *testing.T) {
	rt, _ := NewRuntime(2)
	c := NewCatalog(rt, true)
	c.Register(GridMeta{ID: 1, Level: 1, Lo: [3]int{0, 0, 0}, N: [3]int{8, 8, 8}, Owner: 0})
	c.Register(GridMeta{ID: 2, Level: 1, Lo: [3]int{8, 0, 0}, N: [3]int{8, 8, 8}, Owner: 1})  // touching
	c.Register(GridMeta{ID: 3, Level: 1, Lo: [3]int{40, 0, 0}, N: [3]int{8, 8, 8}, Owner: 0}) // far
	c.Register(GridMeta{ID: 4, Level: 2, Lo: [3]int{8, 0, 0}, N: [3]int{8, 8, 8}, Owner: 1})  // other level
	nb := c.Neighbours(1, 2)
	if len(nb) != 1 || nb[0] != 2 {
		t.Fatalf("neighbours = %v, want [2]", nb)
	}
	c.Remove(2)
	if nb := c.Neighbours(1, 2); len(nb) != 0 {
		t.Fatalf("after removal neighbours = %v", nb)
	}
	if c.Len() != 3 {
		t.Fatalf("catalog len %d", c.Len())
	}
}

func TestBalanceLPT(t *testing.T) {
	// Uniform grids balance nearly perfectly.
	var metas []GridMeta
	for i := 0; i < 64; i++ {
		metas = append(metas, GridMeta{ID: i, Level: 0, N: [3]int{16, 16, 16}})
	}
	asg, imb := BalanceLPT(metas, WorkWeight(2), 8)
	if len(asg) != 64 {
		t.Fatal("missing assignments")
	}
	if imb > 1e-9 {
		t.Fatalf("uniform imbalance %v", imb)
	}
	// One huge deep grid dominates: imbalance inevitable, balancer must
	// still spread the rest (max rank count constraint).
	metas[0].Level = 6
	_, imb2 := BalanceLPT(metas, WorkWeight(2), 8)
	if imb2 <= imb {
		t.Fatal("deep grid should raise imbalance")
	}
	counts := map[int]int{}
	asg3, _ := BalanceLPT(metas, WorkWeight(2), 8)
	for _, r := range asg3 {
		counts[r]++
	}
	if len(counts) != 8 {
		t.Fatalf("only %d ranks used", len(counts))
	}
}

func TestPipelinedBeatsInterleaved(t *testing.T) {
	// A realistic boundary-exchange pattern: each rank sends halo data to
	// several partners. Pipelining must cut total wait time sharply (the
	// paper: "a large decrease in wait times").
	rng := rand.New(rand.NewSource(1))
	n := 16
	var xfers []Xfer
	for r := 0; r < n; r++ {
		for p := 0; p < 6; p++ {
			to := rng.Intn(n)
			if to == r {
				to = (to + 1) % n
			}
			xfers = append(xfers, Xfer{From: r, To: to, Bytes: 4096 + rng.Intn(65536), NeedOrder: p})
		}
	}
	net := DefaultNetParams()
	pip := SimulateExchange(xfers, n, net, true)
	ilv := SimulateExchange(xfers, n, net, false)
	if pip.TotalWait >= ilv.TotalWait {
		t.Fatalf("pipelined wait %v not below interleaved %v", pip.TotalWait, ilv.TotalWait)
	}
	if pip.NumSends != len(xfers) || pip.TotalBytes == 0 {
		t.Fatal("exchange accounting broken")
	}
}

func TestNeedOrderMatters(t *testing.T) {
	// Sending the soonest-needed data first reduces wait versus sending
	// it last: reverse the need order of a chain and compare.
	n := 2
	var ordered, reversed []Xfer
	for i := 0; i < 20; i++ {
		ordered = append(ordered, Xfer{From: 0, To: 1, Bytes: 1 << 20, NeedOrder: i})
		reversed = append(reversed, Xfer{From: 0, To: 1, Bytes: 1 << 20, NeedOrder: 19 - i})
	}
	net := DefaultNetParams()
	a := SimulateExchange(ordered, n, net, true)
	b := SimulateExchange(reversed, n, net, true)
	// Both are sorted internally by need order on the send side, so they
	// should be equivalent — the sort IS the optimization. Verify the
	// sort handles both inputs identically.
	if a.TotalWait != b.TotalWait {
		t.Fatalf("need-order sort not canonicalizing: %v vs %v", a.TotalWait, b.TotalWait)
	}
}

func TestPropBalanceCoversAllGrids(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nGrids := 1 + rng.Intn(80)
		nRanks := 1 + rng.Intn(16)
		var metas []GridMeta
		for i := 0; i < nGrids; i++ {
			metas = append(metas, GridMeta{
				ID:    i,
				Level: rng.Intn(5),
				N:     [3]int{4 + rng.Intn(16), 4 + rng.Intn(16), 4 + rng.Intn(16)},
			})
		}
		asg, imb := BalanceLPT(metas, WorkWeight(2), nRanks)
		if len(asg) != nGrids || imb < -1e-12 {
			return false
		}
		for _, r := range asg {
			if r < 0 || r >= nRanks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkExchangePipelined(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var xfers []Xfer
	for r := 0; r < 64; r++ {
		for p := 0; p < 6; p++ {
			xfers = append(xfers, Xfer{From: r, To: (r + p + 1) % 64, Bytes: 32768, NeedOrder: p})
		}
	}
	_ = rng
	net := DefaultNetParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateExchange(xfers, 64, net, true)
	}
}
