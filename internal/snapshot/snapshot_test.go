package snapshot

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/amr"
	"repro/internal/ep128"
)

func buildHierarchy(t *testing.T) (*amr.Hierarchy, amr.Config) {
	t.Helper()
	cfg := amr.DefaultConfig(8)
	cfg.SelfGravity = false
	cfg.JeansN = 0
	cfg.StaticLevels = 1
	cfg.StaticLo = [3]float64{0.25, 0.25, 0.25}
	cfg.StaticHi = [3]float64{0.75, 0.75, 0.75}
	cfg.MaxLevel = 1
	cfg.NSpecies = 2
	h, err := amr.NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := h.Root()
	for idx := range root.State.Rho.Data {
		root.State.Rho.Data[idx] = 1 + 0.01*float64(idx%97)
		root.State.Eint.Data[idx] = 2 + 0.001*float64(idx%13)
		root.State.Etot.Data[idx] = root.State.Eint.Data[idx]
		root.State.Species[0].Data[idx] = 0.76 * root.State.Rho.Data[idx]
		root.State.Species[1].Data[idx] = 0.24 * root.State.Rho.Data[idx]
	}
	root.Parts.Add(ep128.FromFloat64(0.5).AddFloat(1e-19), ep128.FromFloat64(0.3),
		ep128.FromFloat64(0.7), 1, -2, 3, 0.125, 99)
	h.RebuildHierarchy(1)
	h.Time = 0.375
	return h, cfg
}

func TestRoundTrip(t *testing.T) {
	h, cfg := buildHierarchy(t)
	var buf bytes.Buffer
	if err := Write(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := Read(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Time != h.Time {
		t.Errorf("time %v != %v", h2.Time, h.Time)
	}
	if h2.NumGrids() != h.NumGrids() || h2.MaxLevel() != h.MaxLevel() {
		t.Fatalf("structure mismatch: %d/%d grids, %d/%d levels",
			h2.NumGrids(), h.NumGrids(), h2.MaxLevel(), h.MaxLevel())
	}
	// Field data bit-identical on every grid.
	for l := range h.Levels {
		if len(h.Levels[l]) != len(h2.Levels[l]) {
			t.Fatalf("level %d grid count mismatch", l)
		}
		for gi := range h.Levels[l] {
			a, b := h.Levels[l][gi], h2.Levels[l][gi]
			fa, fb := a.State.Fields(), b.State.Fields()
			for fi := range fa {
				for di := range fa[fi].Data {
					if fa[fi].Data[di] != fb[fi].Data[di] {
						t.Fatalf("field %d differs on L%d grid %d", fi, l, gi)
					}
				}
			}
			if a.Lo != b.Lo || a.Time != b.Time {
				t.Fatal("grid metadata differs")
			}
			// EPA edges exact, both components.
			for d := 0; d < 3; d++ {
				if !a.Edge[d].Eq(b.Edge[d]) {
					t.Fatal("EPA edge not exactly restored")
				}
			}
		}
	}
	// Particle with sub-float64 position offset restored exactly.
	var pg *amr.Grid
	for _, lv := range h2.Levels {
		for _, g := range lv {
			if g.Parts.Len() > 0 {
				pg = g
			}
		}
	}
	if pg == nil {
		t.Fatal("particle lost")
	}
	off := pg.Parts.X[0].SubFloat(0.5).Float64()
	if off != 1e-19 {
		t.Fatalf("EPA particle offset %v, want 1e-19", off)
	}
	if pg.Parts.ID[0] != 99 || pg.Parts.Mass[0] != 0.125 {
		t.Fatal("particle payload wrong")
	}
}

func TestRestartContinuesEvolution(t *testing.T) {
	// Stepping after restart must work and agree with uninterrupted
	// evolution (determinism across serialization).
	h, cfg := buildHierarchy(t)
	var buf bytes.Buffer
	if err := Write(&buf, h); err != nil {
		t.Fatal(err)
	}
	h.Step()
	h2, err := Read(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2.Step()
	for idx, v := range h.Root().State.Rho.Data {
		if v != h2.Root().State.Rho.Data[idx] {
			t.Fatalf("restart diverged at %d: %v vs %v", idx, v, h2.Root().State.Rho.Data[idx])
		}
	}
}

func TestGeometryMismatchRejected(t *testing.T) {
	h, _ := buildHierarchy(t)
	var buf bytes.Buffer
	if err := Write(&buf, h); err != nil {
		t.Fatal(err)
	}
	other := amr.DefaultConfig(16)
	if _, err := Read(&buf, other); err == nil {
		t.Fatal("RootN mismatch should be rejected")
	}
}

func TestSpeciesMismatchRejected(t *testing.T) {
	h, cfg := buildHierarchy(t)
	var buf bytes.Buffer
	if err := Write(&buf, h); err != nil {
		t.Fatal(err)
	}
	cfg.NSpecies = 0
	if _, err := Read(&buf, cfg); err == nil {
		t.Fatal("species-count mismatch should be rejected")
	}
}

func TestSaveLoadFile(t *testing.T) {
	h, cfg := buildHierarchy(t)
	path := filepath.Join(t.TempDir(), "snap.gob.gz")
	if err := Save(path, h); err != nil {
		t.Fatal(err)
	}
	h2, err := Load(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h2.TotalGasMass()-h.TotalGasMass()) > 1e-15 {
		t.Fatal("mass changed through file round trip")
	}
}
