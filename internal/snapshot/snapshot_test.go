package snapshot

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/amr"
	"repro/internal/cosmology"
	"repro/internal/ep128"
)

func buildHierarchy(t *testing.T) (*amr.Hierarchy, amr.Config) {
	t.Helper()
	cfg := amr.DefaultConfig(8)
	cfg.SelfGravity = false
	cfg.JeansN = 0
	cfg.StaticLevels = 1
	cfg.StaticLo = [3]float64{0.25, 0.25, 0.25}
	cfg.StaticHi = [3]float64{0.75, 0.75, 0.75}
	cfg.MaxLevel = 1
	cfg.NSpecies = 2
	h, err := amr.NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := h.Root()
	for idx := range root.State.Rho.Data {
		root.State.Rho.Data[idx] = 1 + 0.01*float64(idx%97)
		root.State.Eint.Data[idx] = 2 + 0.001*float64(idx%13)
		root.State.Etot.Data[idx] = root.State.Eint.Data[idx]
		root.State.Species[0].Data[idx] = 0.76 * root.State.Rho.Data[idx]
		root.State.Species[1].Data[idx] = 0.24 * root.State.Rho.Data[idx]
	}
	root.Parts.Add(ep128.FromFloat64(0.5).AddFloat(1e-19), ep128.FromFloat64(0.3),
		ep128.FromFloat64(0.7), 1, -2, 3, 0.125, 99)
	h.RebuildHierarchy(1)
	h.Time = 0.375
	return h, cfg
}

func TestRoundTrip(t *testing.T) {
	h, _ := buildHierarchy(t)
	var buf bytes.Buffer
	if err := Write(&buf, h, "synthetic"); err != nil {
		t.Fatal(err)
	}
	h2, problem, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if problem != "synthetic" {
		t.Errorf("problem name %q, want synthetic", problem)
	}
	if h2.Time != h.Time {
		t.Errorf("time %v != %v", h2.Time, h.Time)
	}
	if h2.NumGrids() != h.NumGrids() || h2.MaxLevel() != h.MaxLevel() {
		t.Fatalf("structure mismatch: %d/%d grids, %d/%d levels",
			h2.NumGrids(), h.NumGrids(), h2.MaxLevel(), h.MaxLevel())
	}
	// Field data bit-identical on every grid.
	for l := range h.Levels {
		if len(h.Levels[l]) != len(h2.Levels[l]) {
			t.Fatalf("level %d grid count mismatch", l)
		}
		for gi := range h.Levels[l] {
			a, b := h.Levels[l][gi], h2.Levels[l][gi]
			fa, fb := a.State.Fields(), b.State.Fields()
			for fi := range fa {
				for di := range fa[fi].Data {
					if fa[fi].Data[di] != fb[fi].Data[di] {
						t.Fatalf("field %d differs on L%d grid %d", fi, l, gi)
					}
				}
			}
			if a.Lo != b.Lo || a.Time != b.Time {
				t.Fatal("grid metadata differs")
			}
			// EPA edges exact, both components.
			for d := 0; d < 3; d++ {
				if !a.Edge[d].Eq(b.Edge[d]) {
					t.Fatal("EPA edge not exactly restored")
				}
			}
		}
	}
	// Particle with sub-float64 position offset restored exactly.
	var pg *amr.Grid
	for _, lv := range h2.Levels {
		for _, g := range lv {
			if g.Parts.Len() > 0 {
				pg = g
			}
		}
	}
	if pg == nil {
		t.Fatal("particle lost")
	}
	off := pg.Parts.X[0].SubFloat(0.5).Float64()
	if off != 1e-19 {
		t.Fatalf("EPA particle offset %v, want 1e-19", off)
	}
	if pg.Parts.ID[0] != 99 || pg.Parts.Mass[0] != 0.125 {
		t.Fatal("particle payload wrong")
	}
}

func TestRestartContinuesEvolution(t *testing.T) {
	// Stepping after restart must work and agree with uninterrupted
	// evolution (determinism across serialization).
	h, _ := buildHierarchy(t)
	var buf bytes.Buffer
	if err := Write(&buf, h, ""); err != nil {
		t.Fatal(err)
	}
	h.Step()
	h2, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h2.Step()
	for idx, v := range h.Root().State.Rho.Data {
		if v != h2.Root().State.Rho.Data[idx] {
			t.Fatalf("restart diverged at %d: %v vs %v", idx, v, h2.Root().State.Rho.Data[idx])
		}
	}
}

func TestSelfDescribingConfig(t *testing.T) {
	// The header embeds the run config: a restart needs nothing from the
	// caller, and every physics switch round-trips.
	h, cfg := buildHierarchy(t)
	var buf bytes.Buffer
	if err := Write(&buf, h, "synthetic"); err != nil {
		t.Fatal(err)
	}
	h2, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := h2.Cfg
	if got.RootN != cfg.RootN || got.Refine != cfg.Refine || got.NSpecies != cfg.NSpecies {
		t.Fatalf("config did not round trip: got RootN=%d Refine=%d NSpecies=%d",
			got.RootN, got.Refine, got.NSpecies)
	}
	if got.StaticLevels != cfg.StaticLevels || got.StaticLo != cfg.StaticLo {
		t.Error("static-region config lost")
	}
	if got.MaxLevel != cfg.MaxLevel || got.SelfGravity != cfg.SelfGravity {
		t.Error("physics switches lost")
	}
}

func TestCosmoBackgroundIsFresh(t *testing.T) {
	// The decoded config owns its own expansion-factor integrator: the
	// old API forced callers to clone the Background by hand before a
	// restart (the Read(r, cfg) footgun).
	h, _ := buildHierarchy(t)
	h.Cfg.Cosmo = cosmology.NewBackground(cosmology.StandardCDM(), 0.05)
	h.Cfg.Cosmo.A = 0.0625
	var buf bytes.Buffer
	if err := Write(&buf, h, ""); err != nil {
		t.Fatal(err)
	}
	h2, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Cfg.Cosmo == nil || h2.Cfg.Cosmo == h.Cfg.Cosmo {
		t.Fatal("restored hierarchy must own a fresh Background")
	}
	if h2.Cfg.Cosmo.A != 0.0625 || h2.Cfg.Cosmo.T != h.Cfg.Cosmo.T {
		t.Fatalf("expansion state lost: a=%v t=%v", h2.Cfg.Cosmo.A, h2.Cfg.Cosmo.T)
	}
}

func TestLegacyV2ReadsTransparently(t *testing.T) {
	// A pre-format-3 stream — default-compression gzip, no header tag,
	// embedded Version 2 — must decode exactly as it always did.
	h, _ := buildHierarchy(t)
	var v3 bytes.Buffer
	if err := Write(&v3, h, "legacy"); err != nil {
		t.Fatal(err)
	}
	var f File
	zr, err := gzip.NewReader(bytes.NewReader(v3.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if zr.Comment != gzipComment {
		t.Fatalf("v3 gzip header tag %q, want %q", zr.Comment, gzipComment)
	}
	if err := gob.NewDecoder(zr).Decode(&f); err != nil {
		t.Fatal(err)
	}
	f.Version = 2
	var legacy bytes.Buffer
	zw := gzip.NewWriter(&legacy) // default level, untagged header
	if err := gob.NewEncoder(zw).Encode(&f); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	h2, problem, err := Read(&legacy)
	if err != nil {
		t.Fatalf("legacy v2 stream rejected: %v", err)
	}
	if problem != "legacy" || h2.NumGrids() != h.NumGrids() {
		t.Fatalf("legacy decode lost content: problem=%q grids=%d/%d", problem, h2.NumGrids(), h.NumGrids())
	}
	for idx, v := range h.Root().State.Rho.Data {
		if h2.Root().State.Rho.Data[idx] != v {
			t.Fatalf("legacy decode differs at %d", idx)
		}
	}
}

func TestEncodeSizedReportsRawBytes(t *testing.T) {
	h, _ := buildHierarchy(t)
	data, raw, err := EncodeSized(h, "sized")
	if err != nil {
		t.Fatal(err)
	}
	if raw <= int64(len(data)) {
		t.Fatalf("uncompressed payload %d should exceed compressed %d on this compressible hierarchy", raw, len(data))
	}
	// The reported raw size is exactly the gob payload: decompressing the
	// stream must yield that many bytes.
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	buf := make([]byte, 32<<10)
	for {
		k, err := zr.Read(buf)
		n += int64(k)
		if err != nil {
			break
		}
	}
	if n != raw {
		t.Fatalf("raw size %d, decompressed %d", raw, n)
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	var raw bytes.Buffer
	zw := gzip.NewWriter(&raw)
	if err := gob.NewEncoder(zw).Encode(&File{Version: FormatVersion + 1}); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	if _, _, err := Read(&raw); err == nil {
		t.Fatal("future version should be rejected")
	}
}

func TestSaveLoadFile(t *testing.T) {
	h, _ := buildHierarchy(t)
	path := filepath.Join(t.TempDir(), "snap.gob.gz")
	if err := Save(path, h, "synthetic"); err != nil {
		t.Fatal(err)
	}
	h2, problem, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if problem != "synthetic" {
		t.Errorf("problem %q", problem)
	}
	if math.Abs(h2.TotalGasMass()-h.TotalGasMass()) > 1e-15 {
		t.Fatal("mass changed through file round trip")
	}
}
