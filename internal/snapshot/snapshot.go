// Package snapshot serializes the full grid hierarchy for checkpointing,
// restart and offline analysis — the workflow the paper depends on (the
// run was restarted with additional static levels after the low-resolution
// pass, and outputs in the 2-4 GB range fed the analysis tools of §6).
//
// The format is gob-encoded: self-describing, stdlib-only, and stable
// within a build. Extended-precision edges are stored exactly (both
// components), so a restart reproduces grid geometry bit-for-bit.
//
// The header embeds the registry problem name and the full amr.Config of
// the run (including the cosmological background state), so Read rebuilds
// the hierarchy without any caller-supplied configuration — a restart
// cannot be fed a mismatched config. The paper's restart-with-more-levels
// workflow mutates the loaded hierarchy's Cfg (MaxLevel, StaticLevels,
// Workers, ...) after Read; the grid geometry and field layout are fixed
// by the file.
package snapshot

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/amr"
	"repro/internal/ep128"
)

// FormatVersion guards against decoding incompatible snapshots. Version 2
// added the self-describing header (problem name + serialized config).
// Version 3 formalizes the compression contract for the durable job
// store's checkpoint cadence: the gob payload is gzip-compressed at
// BestSpeed (checkpoints sit on the evolution hot path, where encode
// stall matters more than a few percent of disk), the gzip header
// carries a format tag, and writers report the uncompressed payload size
// (WriteSized/EncodeSized) so artifact indexes can account for
// compression. Read remains transparent across versions: a version-2
// stream (default-compression gzip, untagged header) decodes exactly as
// before.
const FormatVersion = 3

// gzipComment tags the gzip header of version-3 streams, so a snapshot
// is identifiable without decompressing the gob payload. Version-2
// streams carry no tag; Read accepts both.
const gzipComment = "repro snapshot format 3"

// File is the serialized run state.
type File struct {
	Version int
	// Problem is the registry name of the problem the run was built
	// from ("" when unknown).
	Problem string
	// Config is the complete run configuration, including the
	// cosmological background at its saved state.
	Config amr.Config
	Time   float64
	Parity int // Strang sweep parity
	Grids  []GridRec
}

// GridRec is one serialized grid.
type GridRec struct {
	Level      int
	Lo         [3]int
	Nx, Ny, Nz int
	EdgeHi     [3]float64
	EdgeLo     [3]float64
	Time       float64
	ParentIdx  int // index into Grids, -1 for the root
	Fields     [][]float64
	// Particles.
	PXHi, PXLo []float64
	PYHi, PYLo []float64
	PZHi, PZLo []float64
	PVx, PVy   []float64
	PVz, PMass []float64
	PID        []int64
}

// Write serializes the hierarchy to w (gzip + gob). problem is the
// registry name of the run's problem (may be ""); it is embedded in the
// header so a restart is self-describing.
func Write(w io.Writer, h *amr.Hierarchy, problem string) error {
	_, err := WriteSized(w, h, problem)
	return err
}

// countWriter counts the bytes passed through it — the uncompressed gob
// payload size WriteSized reports.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteSized is Write, additionally reporting the uncompressed gob
// payload size — the compression accounting the sim artifact index
// exposes alongside each snapshot/checkpoint product's on-wire size.
func WriteSized(w io.Writer, h *amr.Hierarchy, problem string) (rawBytes int64, err error) {
	f := File{
		Version: FormatVersion,
		Problem: problem,
		Config:  h.Cfg,
		Time:    h.Time,
	}
	f.Parity = h.Parity()
	index := map[*amr.Grid]int{}
	for _, lv := range h.Levels {
		for _, g := range lv {
			index[g] = len(f.Grids)
			f.Grids = append(f.Grids, encodeGrid(g))
		}
	}
	for gi := range f.Grids {
		f.Grids[gi].ParentIdx = -1
	}
	gi := 0
	for _, lv := range h.Levels {
		for _, g := range lv {
			if g.Parent != nil {
				f.Grids[gi].ParentIdx = index[g.Parent]
			}
			gi++
		}
	}
	zw, err := gzip.NewWriterLevel(w, gzip.BestSpeed)
	if err != nil {
		return 0, fmt.Errorf("snapshot: gzip: %w", err)
	}
	zw.Comment = gzipComment
	cw := &countWriter{w: zw}
	if err := gob.NewEncoder(cw).Encode(&f); err != nil {
		return 0, fmt.Errorf("snapshot: encode: %w", err)
	}
	return cw.n, zw.Close()
}

func encodeGrid(g *amr.Grid) GridRec {
	rec := GridRec{
		Level: g.Level, Lo: g.Lo, Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		Time: g.Time,
	}
	for d := 0; d < 3; d++ {
		rec.EdgeHi[d] = g.Edge[d].Hi
		rec.EdgeLo[d] = g.Edge[d].Lo
	}
	for _, fld := range g.State.Fields() {
		data := make([]float64, len(fld.Data))
		copy(data, fld.Data)
		rec.Fields = append(rec.Fields, data)
	}
	p := g.Parts
	for i := 0; i < p.Len(); i++ {
		rec.PXHi = append(rec.PXHi, p.X[i].Hi)
		rec.PXLo = append(rec.PXLo, p.X[i].Lo)
		rec.PYHi = append(rec.PYHi, p.Y[i].Hi)
		rec.PYLo = append(rec.PYLo, p.Y[i].Lo)
		rec.PZHi = append(rec.PZHi, p.Z[i].Hi)
		rec.PZLo = append(rec.PZLo, p.Z[i].Lo)
	}
	rec.PVx = append(rec.PVx, p.Vx...)
	rec.PVy = append(rec.PVy, p.Vy...)
	rec.PVz = append(rec.PVz, p.Vz...)
	rec.PMass = append(rec.PMass, p.Mass...)
	rec.PID = append(rec.PID, p.ID...)
	return rec
}

// Read restores a hierarchy previously written by Write, rebuilding it
// from the config embedded in the header, and returns it together with
// the registry problem name of the run. The decoded config owns a fresh
// cosmology.Background, so a restarted run never shares expansion-factor
// state with the hierarchy that wrote the snapshot.
func Read(r io.Reader) (*amr.Hierarchy, string, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, "", fmt.Errorf("snapshot: gzip: %w", err)
	}
	var f File
	if err := gob.NewDecoder(zr).Decode(&f); err != nil {
		return nil, "", fmt.Errorf("snapshot: decode: %w", err)
	}
	// Old versions read transparently: the version-2 layout is identical
	// modulo the compression level and the gzip header tag, both of which
	// the decompressor absorbs.
	if f.Version != FormatVersion && f.Version != 2 {
		return nil, "", fmt.Errorf("snapshot: version %d unsupported (this build reads 2..%d)", f.Version, FormatVersion)
	}
	cfg := f.Config
	h, err := amr.NewHierarchy(cfg)
	if err != nil {
		return nil, "", err
	}
	h.Time = f.Time
	h.SetParity(f.Parity)
	grids := make([]*amr.Grid, len(f.Grids))
	for i, rec := range f.Grids {
		var g *amr.Grid
		if rec.Level == 0 {
			g = h.Root()
		} else {
			g = amr.NewGrid(rec.Level, rec.Lo, rec.Nx, rec.Ny, rec.Nz,
				cfg.RootN, cfg.Refine, cfg.NSpecies)
		}
		g.Time = rec.Time
		for d := 0; d < 3; d++ {
			g.Edge[d] = ep128.Dd{Hi: rec.EdgeHi[d], Lo: rec.EdgeLo[d]}
		}
		if err := decodeFields(g, rec); err != nil {
			return nil, "", err
		}
		for pi := range rec.PMass {
			g.Parts.Add(
				ep128.Dd{Hi: rec.PXHi[pi], Lo: rec.PXLo[pi]},
				ep128.Dd{Hi: rec.PYHi[pi], Lo: rec.PYLo[pi]},
				ep128.Dd{Hi: rec.PZHi[pi], Lo: rec.PZLo[pi]},
				rec.PVx[pi], rec.PVy[pi], rec.PVz[pi], rec.PMass[pi], rec.PID[pi])
		}
		grids[i] = g
	}
	// Rebuild the tree and level lists.
	for i, rec := range f.Grids {
		if rec.Level == 0 {
			continue
		}
		if rec.ParentIdx < 0 || rec.ParentIdx >= len(grids) {
			return nil, "", fmt.Errorf("snapshot: grid %d has bad parent %d", i, rec.ParentIdx)
		}
		p := grids[rec.ParentIdx]
		grids[i].Parent = p
		p.Children = append(p.Children, grids[i])
		for len(h.Levels) <= rec.Level {
			h.Levels = append(h.Levels, nil)
		}
		h.Levels[rec.Level] = append(h.Levels[rec.Level], grids[i])
	}
	return h, f.Problem, nil
}

func decodeFields(g *amr.Grid, rec GridRec) error {
	fields := g.State.Fields()
	if len(rec.Fields) != len(fields) {
		return fmt.Errorf("snapshot: grid has %d fields, config expects %d (species mismatch)",
			len(rec.Fields), len(fields))
	}
	for fi, fld := range fields {
		if len(rec.Fields[fi]) != len(fld.Data) {
			return fmt.Errorf("snapshot: field %d size %d != %d", fi, len(rec.Fields[fi]), len(fld.Data))
		}
		copy(fld.Data, rec.Fields[fi])
	}
	return nil
}

// Encode serializes the hierarchy to an in-memory snapshot in the Write
// format — the payload of the sim job service's "snapshot" data product
// and its durability checkpoints, and any other sink that is not a file.
func Encode(h *amr.Hierarchy, problem string) ([]byte, error) {
	data, _, err := EncodeSized(h, problem)
	return data, err
}

// EncodeSized is Encode, additionally reporting the uncompressed gob
// payload size (see WriteSized).
func EncodeSized(h *amr.Hierarchy, problem string) ([]byte, int64, error) {
	var buf bytes.Buffer
	raw, err := WriteSized(&buf, h, problem)
	if err != nil {
		return nil, 0, err
	}
	return buf.Bytes(), raw, nil
}

// Save writes a snapshot to path; problem is the registry name of the
// run's problem (may be "").
func Save(path string, h *amr.Hierarchy, problem string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Write(f, h, problem)
}

// Load reads a snapshot from path, returning the restored hierarchy and
// the registry problem name embedded in it.
func Load(path string) (*amr.Hierarchy, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	return Read(f)
}
