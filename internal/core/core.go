// Package core is the public façade of the reproduction: a Simulation
// wraps the AMR hierarchy, problem setup, analysis shortcuts and the
// structure/performance series the paper's evaluation section plots.
//
// Typical use:
//
//	sim, err := core.NewPrimordialCollapse(core.CollapseOptions{})
//	sim.RunSteps(50)
//	profile, _ := sim.RadialProfileAtPeak(24)
//	fmt.Println(sim.UsageTable())
package core

import (
	"context"
	"fmt"
	"maps"
	"time"

	"repro/internal/amr"
	"repro/internal/analysis"
	"repro/internal/perf"
	"repro/internal/problems"
)

// Simulation bundles a hierarchy with its evolution history.
type Simulation struct {
	H *amr.Hierarchy
	// Problem is the registry name the simulation was built from (""
	// when constructed around a hand-built hierarchy); snapshots embed
	// it so restarts are self-describing.
	Problem string
	// History records hierarchy-structure samples per root step (the
	// Fig. 5 time series).
	History []StructureSample
	started time.Time
	wall    time.Duration
}

// New builds the named registered problem starting from its spec
// defaults, optionally adjusted by mutators:
//
//	sim, err := core.New("sedov", func(o *problems.Opts) { o.RootN = 32 })
func New(name string, mutate ...func(*problems.Opts)) (*Simulation, error) {
	spec, ok := problems.Get(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown problem %q (registered: %v)", name, problems.Names())
	}
	o := spec.Defaults
	// Detach the Extra map so mutators cannot write through into the
	// registry's shared defaults.
	o.Extra = maps.Clone(o.Extra)
	for _, m := range mutate {
		m(&o)
	}
	h, err := problems.BuildSpec(spec, o)
	if err != nil {
		return nil, err
	}
	return &Simulation{H: h, Problem: name}, nil
}

// StructureSample is one Fig.-5 data point.
type StructureSample struct {
	Time      float64 // code units
	MaxLevel  int
	NumGrids  int
	GridsPer  []int
	WorkPer   []float64
	PeakRho   float64
	Expansion float64 // a, when cosmological
}

// CollapseOptions re-exports the primordial-collapse configuration.
type CollapseOptions = problems.CollapseOpts

// NewPrimordialCollapse builds the headline simulation with the full
// problem-specific option set. Zero-valued options are filled with the
// defaults of DefaultCollapseOpts. Prefer New("collapse", ...) when the
// registry knobs suffice.
func NewPrimordialCollapse(o CollapseOptions) (*Simulation, error) {
	def := problems.DefaultCollapseOpts()
	if o.RootN == 0 {
		o = def
	}
	h, err := problems.PrimordialCollapse(o)
	if err != nil {
		return nil, err
	}
	return &Simulation{H: h, Problem: "collapse"}, nil
}

// NewSedov builds the Sedov blast validation problem.
func NewSedov(rootN, maxLevel int, e0 float64) (*Simulation, error) {
	return New("sedov", func(o *problems.Opts) {
		o.RootN, o.MaxLevel = rootN, maxLevel
		o.Extra["e0"] = e0
	})
}

// NewPancake builds the Zel'dovich pancake validation problem with the
// full problem-specific option set; prefer New("pancake", ...) when the
// registry knobs suffice.
func NewPancake(o problems.PancakeOpts) (*Simulation, error) {
	h, err := problems.Pancake(o)
	if err != nil {
		return nil, err
	}
	return &Simulation{H: h, Problem: "pancake"}, nil
}

// NewZoom builds the nested zoom-in cosmological run of §4 with the full
// problem-specific option set; prefer New("zoom", ...) when the registry
// knobs suffice.
func NewZoom(o problems.ZoomOpts) (*Simulation, error) {
	h, _, err := problems.CosmologicalZoom(o)
	if err != nil {
		return nil, err
	}
	return &Simulation{H: h, Problem: "zoom"}, nil
}

// Step advances one root timestep and records a structure sample.
func (s *Simulation) Step() float64 {
	t0 := time.Now()
	dt := s.H.Step()
	s.wall += time.Since(t0)
	s.record()
	return dt
}

// RunSteps advances n root steps.
func (s *Simulation) RunSteps(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// RunUntil advances until code time t (or maxSteps).
func (s *Simulation) RunUntil(t float64, maxSteps int) int {
	steps := 0
	for s.H.Time < t && steps < maxSteps {
		s.Step()
		steps++
	}
	return steps
}

// StepInfo is the per-root-step progress record RunContext hands to its
// observer (and the sim job service streams to watchers).
type StepInfo struct {
	Step     int     // 0-based index of the step just completed
	Time     float64 // code time after the step
	Dt       float64 // timestep taken
	MaxLevel int
	NumGrids int
}

// RunContext advances up to maxSteps root steps, stopping early when the
// simulation time reaches maxTime (0 = no time bound) or ctx is
// cancelled; cancellation is observed between root steps, so the
// hierarchy is always left in a consistent post-step state. observe, when
// non-nil, is called after every completed step. Returns the number of
// steps taken and ctx.Err() when cancellation cut the run short. It is
// Run without the resume/checkpoint machinery.
func (s *Simulation) RunContext(ctx context.Context, maxSteps int, maxTime float64, observe func(StepInfo)) (int, error) {
	return s.Run(ctx, RunOpts{MaxSteps: maxSteps, MaxTime: maxTime, Observe: observe})
}

// RunOpts configures Run: the run bounds plus the two hooks the durable
// job service threads through the stack — a per-step observer and a
// checkpoint hook, with a StartStep offset so a run resumed from a
// checkpoint keeps the interrupted run's global step numbering (cadence
// plans and artifact names depend on it).
type RunOpts struct {
	// MaxSteps bounds the root steps taken by this call (for a resumed
	// run: the steps remaining, not the job's total budget).
	MaxSteps int
	// MaxTime stops the run once code time reaches it (0 = no bound).
	MaxTime float64
	// StartStep is the global index of the first step this call takes —
	// 0 for a fresh run, checkpointStep+1 when resuming. StepInfo.Step is
	// numbered from it.
	StartStep int
	// Observe, when non-nil, is called after every completed root step.
	Observe func(StepInfo)
	// Checkpoint, when non-nil, is called after every completed root step
	// (after Observe); the callee decides whether a checkpoint is due —
	// typically an analysis.OutputPlan carrying a "checkpoint" output
	// request — and persists the encoded hierarchy. A checkpoint error
	// stops the run: a job that cannot persist its progress must fail
	// loudly, not run on with stale durability.
	Checkpoint func(StepInfo) error
}

// Run advances up to o.MaxSteps root steps under the given bounds and
// hooks (see RunOpts). Cancellation and checkpointing are observed only
// at root-step boundaries, so the hierarchy is always left in a
// consistent post-step state. Returns the number of steps taken by this
// call, and ctx.Err() when cancellation cut the run short or the first
// checkpoint-hook error.
func (s *Simulation) Run(ctx context.Context, o RunOpts) (int, error) {
	for n := 0; n < o.MaxSteps; n++ {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		if o.MaxTime > 0 && s.H.Time >= o.MaxTime {
			return n, nil
		}
		dt := s.Step()
		info := StepInfo{
			Step:     o.StartStep + n,
			Time:     s.H.Time,
			Dt:       dt,
			MaxLevel: s.H.MaxLevel(),
			NumGrids: s.H.NumGrids(),
		}
		if o.Observe != nil {
			o.Observe(info)
		}
		if o.Checkpoint != nil {
			if err := o.Checkpoint(info); err != nil {
				return n + 1, err
			}
		}
	}
	return o.MaxSteps, nil
}

// Resume wraps a hierarchy restored from a snapshot/checkpoint
// (snapshot.Read) as a runnable Simulation — the restart path of the
// durable job service and the enzogo -restart flow. The caller is
// responsible for fixing runtime knobs that do not carry across hosts
// (h.Cfg.Workers) before stepping.
func Resume(h *amr.Hierarchy, problem string) *Simulation {
	return &Simulation{H: h, Problem: problem}
}

// Wall returns the accumulated evolution wall-clock time.
func (s *Simulation) Wall() time.Duration { return s.wall }

func (s *Simulation) record() {
	_, peak := analysis.DensestPoint(s.H)
	a := 0.0
	if s.H.Cfg.Cosmo != nil {
		a = s.H.Cfg.Cosmo.A
	}
	s.History = append(s.History, StructureSample{
		Time:      s.H.Time,
		MaxLevel:  s.H.MaxLevel(),
		NumGrids:  s.H.NumGrids(),
		GridsPer:  s.H.GridsPerLevel(),
		WorkPer:   s.H.WorkPerLevel(),
		PeakRho:   peak,
		Expansion: a,
	})
}

// RadialProfileAtPeak computes a Fig.-4 style profile about the current
// densest point.
func (s *Simulation) RadialProfileAtPeak(nbins int) (*analysis.Profile, error) {
	pos, _ := analysis.DensestPoint(s.H)
	rmin := s.H.FinestDx() * 0.5
	return analysis.RadialProfile(s.H, pos, analysis.ProfileParams{
		RMin:    rmin,
		RMax:    0.5,
		NBins:   nbins,
		Gamma:   s.H.Cfg.Hydro.Gamma,
		Units:   s.H.Cfg.Units,
		Workers: s.H.Cfg.Workers,
	})
}

// UsageTable renders the §5 component-usage table for the run so far.
func (s *Simulation) UsageTable() string {
	return perf.FormatUsageTable(perf.UsageTable(s.H.Timing))
}

// FlopReport summarizes the performance accounting (§5): estimated
// operations, sustained rate, and the virtual-rate comparison against a
// uniform grid at the current spatial dynamic range.
func (s *Simulation) FlopReport() string {
	flops := perf.EstimateFlops(s.H.Stats)
	rate := perf.SustainedRate(flops, s.wall.Seconds())
	sdr := s.H.SpatialDynamicRange()
	speedup := perf.SpeedupVsUniform(s.H.Stats, sdr, float64(s.H.Stats.StepsTaken))
	return fmt.Sprintf(
		"estimated flops:     %.3g\nwall time:           %.2fs\nsustained rate:      %.3g flop/s\nSDR:                 %.0f\nspeedup vs uniform:  %.3g×\n",
		flops, s.wall.Seconds(), rate, sdr, speedup)
}

// ZoomFrames renders n Fig.-3 style density slices, each zoomed by the
// given factor about the densest point, at res×res pixels.
func (s *Simulation) ZoomFrames(n int, factor float64, res int) [][][]float64 {
	pos, _ := analysis.DensestPoint(s.H)
	frames := make([][][]float64, n)
	half := 0.5
	for f := 0; f < n; f++ {
		frames[f] = analysis.DensitySlice(s.H, 2, pos[2],
			pos[0]-half, pos[0]+half, pos[1]-half, pos[1]+half, res, s.H.Cfg.Workers)
		half /= factor
	}
	return frames
}
