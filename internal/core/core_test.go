package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/problems"
)

func TestRunContext(t *testing.T) {
	mini := func(o *problems.Opts) { o.RootN = 8; o.MaxLevel = 0; o.Workers = 1 }

	// Full run: takes exactly maxSteps and reports each one in order.
	sim, err := New("sedov", mini)
	if err != nil {
		t.Fatal(err)
	}
	var seen []StepInfo
	n, err := sim.RunContext(context.Background(), 3, 0, func(i StepInfo) { seen = append(seen, i) })
	if err != nil || n != 3 {
		t.Fatalf("RunContext = %d,%v want 3,nil", n, err)
	}
	for i, info := range seen {
		if info.Step != i || info.Dt <= 0 || info.NumGrids < 1 {
			t.Fatalf("bad StepInfo %d: %+v", i, info)
		}
	}
	if seen[2].Time != sim.H.Time {
		t.Fatalf("last observed time %v != hierarchy time %v", seen[2].Time, sim.H.Time)
	}

	// A time bound stops the run once reached, before the step budget.
	sim2, err := New("sedov", mini)
	if err != nil {
		t.Fatal(err)
	}
	n, err = sim2.RunContext(context.Background(), 1000, seen[0].Time, nil)
	if err != nil || n >= 1000 || sim2.H.Time < seen[0].Time {
		t.Fatalf("maxTime bound: steps=%d err=%v t=%v", n, err, sim2.H.Time)
	}

	// Cancellation between steps surfaces ctx.Err with a partial count,
	// leaving the hierarchy in a consistent post-step state.
	sim3, err := New("sedov", mini)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n, err = sim3.RunContext(ctx, 1000, 0, func(i StepInfo) {
		if i.Step == 1 {
			cancel()
		}
	})
	if err != context.Canceled || n != 2 {
		t.Fatalf("cancelled run = %d,%v want 2,context.Canceled", n, err)
	}
	if sim3.H.Stats.StepsTaken != 2 {
		t.Fatalf("hierarchy took %d steps after cancel at 2", sim3.H.Stats.StepsTaken)
	}
}

func TestNewByName(t *testing.T) {
	sim, err := New("sedov", func(o *problems.Opts) { o.RootN = 8; o.MaxLevel = 1 })
	if err != nil {
		t.Fatal(err)
	}
	if sim.Problem != "sedov" {
		t.Errorf("Problem = %q", sim.Problem)
	}
	if sim.H.Cfg.RootN != 8 {
		t.Errorf("mutator not applied: RootN %d", sim.H.Cfg.RootN)
	}
	sim.RunSteps(1)
	if len(sim.History) != 1 {
		t.Error("no history recorded")
	}
	if _, err := New("no-such-problem"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestNewUsesSpecDefaults(t *testing.T) {
	sim, err := New("khi")
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := problems.Get("khi")
	if sim.H.Cfg.RootN != spec.Defaults.RootN {
		t.Errorf("RootN %d, want spec default %d", sim.H.Cfg.RootN, spec.Defaults.RootN)
	}
}

func TestSedovSimulation(t *testing.T) {
	sim, err := NewSedov(16, 1, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunSteps(3)
	if len(sim.History) != 3 {
		t.Fatalf("history %d entries", len(sim.History))
	}
	last := sim.History[len(sim.History)-1]
	if last.Time <= 0 || last.NumGrids < 1 {
		t.Fatalf("bad sample %+v", last)
	}
	if last.PeakRho <= 0 {
		t.Error("no peak density recorded")
	}
	table := sim.UsageTable()
	if !strings.Contains(table, "hydrodynamics") {
		t.Errorf("usage table:\n%s", table)
	}
	report := sim.FlopReport()
	if !strings.Contains(report, "flop/s") {
		t.Errorf("flop report:\n%s", report)
	}
}

func TestRunUntil(t *testing.T) {
	sim, err := NewSedov(16, 0, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	steps := sim.RunUntil(0.01, 100)
	if steps == 0 || sim.H.Time < 0.01 {
		t.Fatalf("RunUntil did not advance: %d steps, t=%v", steps, sim.H.Time)
	}
	if s2 := sim.RunUntil(0.01, 100); s2 != 0 {
		t.Error("RunUntil past target should take no steps")
	}
}

func TestRadialProfileAtPeak(t *testing.T) {
	sim, err := NewSedov(16, 1, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunSteps(4)
	pr, err := sim.RadialProfileAtPeak(10)
	if err != nil {
		t.Fatal(err)
	}
	if pr.CellsUsed == 0 {
		t.Fatal("empty profile")
	}
}

func TestZoomFrames(t *testing.T) {
	sim, err := NewSedov(16, 1, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunSteps(2)
	frames := sim.ZoomFrames(3, 10, 16)
	if len(frames) != 3 {
		t.Fatal("frame count")
	}
	for _, f := range frames {
		if len(f) != 16 || len(f[0]) != 16 {
			t.Fatal("frame shape")
		}
		for _, row := range f {
			for _, v := range row {
				if math.IsNaN(v) {
					t.Fatal("NaN pixel")
				}
			}
		}
	}
}

func TestCollapseOptionsDefaulting(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full chemistry problem")
	}
	sim, err := NewPrimordialCollapse(CollapseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.H.Cfg.RootN != 16 || !sim.H.Cfg.Chemistry {
		t.Fatalf("defaults not applied: %+v", sim.H.Cfg.RootN)
	}
}
