package hydro

import (
	"math"
	"testing"
)

func TestExactRiemannSodPlateaus(t *testing.T) {
	// Known values for the standard Sod problem (gamma = 1.4):
	// p* = 0.30313, u* = 0.92745, rho*L = 0.42632, rho*R = 0.26557.
	l := RiemannState{Rho: 1, U: 0, P: 1}
	r := RiemannState{Rho: 0.125, U: 0, P: 0.1}
	p, u := starRegion(l, r, 1.4)
	if math.Abs(p-0.30313) > 2e-4 {
		t.Errorf("p* = %v, want 0.30313", p)
	}
	if math.Abs(u-0.92745) > 2e-4 {
		t.Errorf("u* = %v, want 0.92745", u)
	}
	// Sample inside the two star regions at t=0.2.
	left := SodExact(0.60, 0.2, 1.4)
	if math.Abs(left.Rho-0.42632) > 3e-4 {
		t.Errorf("rho*L = %v, want 0.42632", left.Rho)
	}
	right := SodExact(0.78, 0.2, 1.4)
	if math.Abs(right.Rho-0.26557) > 3e-4 {
		t.Errorf("rho*R = %v, want 0.26557", right.Rho)
	}
	// Undisturbed states beyond the waves.
	if v := SodExact(0.05, 0.2, 1.4); v.Rho != 1 {
		t.Errorf("left end disturbed: %v", v.Rho)
	}
	if v := SodExact(0.95, 0.2, 1.4); v.Rho != 0.125 {
		t.Errorf("right end disturbed: %v", v.Rho)
	}
}

func TestExactRiemannSymmetricProblem(t *testing.T) {
	// Two identical streams colliding: u* must be 0, both sides shocked.
	l := RiemannState{Rho: 1, U: 1, P: 1}
	r := RiemannState{Rho: 1, U: -1, P: 1}
	p, u := starRegion(l, r, 1.4)
	if math.Abs(u) > 1e-10 {
		t.Errorf("u* = %v, want 0", u)
	}
	if p <= 1 {
		t.Errorf("p* = %v, want > 1 (compression)", p)
	}
	// Solution symmetric about s=0.
	a := ExactRiemann(l, r, 1.4, -0.5)
	b := ExactRiemann(l, r, 1.4, 0.5)
	if math.Abs(a.Rho-b.Rho) > 1e-10 || math.Abs(a.U+b.U) > 1e-10 {
		t.Errorf("asymmetric solution: %+v vs %+v", a, b)
	}
}

func TestExactRiemannVacuumExpansion(t *testing.T) {
	// Strong double rarefaction: star pressure far below both sides.
	l := RiemannState{Rho: 1, U: -2, P: 0.4}
	r := RiemannState{Rho: 1, U: 2, P: 0.4}
	p, _ := starRegion(l, r, 1.4)
	if p >= 0.4 || p <= 0 {
		t.Errorf("p* = %v, want small positive", p)
	}
	mid := ExactRiemann(l, r, 1.4, 0)
	if mid.Rho >= 1 || mid.Rho < 0 {
		t.Errorf("central density %v out of range", mid.Rho)
	}
}

func TestPPMConvergesToExactSod(t *testing.T) {
	// The production solver's profile must approach the exact solution:
	// L1 density error below a few percent at n=128.
	p := DefaultParams()
	p.Gamma = 1.4
	n := 128
	s := NewState(n, 4, 4, 0)
	sodInit(s, p.Gamma)
	dx := 1.0 / float64(n)
	tNow, step := 0.0, 0
	for tNow < 0.2 {
		dt := Timestep(s, dx, p)
		if tNow+dt > 0.2 {
			dt = 0.2 - tNow
		}
		Step3D(s, dx, dt, p, SolverPPM, step, outflowBC, nil, nil)
		tNow += dt
		step++
	}
	var l1 float64
	for i := 0; i < n; i++ {
		x := (float64(i) + 0.5) * dx
		exact := SodExact(x, 0.2, p.Gamma)
		l1 += math.Abs(s.Rho.At(i, 2, 2) - exact.Rho)
	}
	l1 /= float64(n)
	if l1 > 0.015 {
		t.Errorf("PPM L1 density error vs exact = %v, want < 0.015", l1)
	}
}
