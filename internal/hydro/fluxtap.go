package hydro

// FluxTap captures time-integrated conserved fluxes through one interior
// face plane of a grid during Step3D. The AMR layer installs taps at the
// locations of child-grid boundaries so the coarse fluxes there can later
// be compared against the accumulated fine fluxes (flux correction,
// paper §3.2.1: "correct the coarse fluxes at subgrid boundaries to
// reflect the improved flux estimates from the subgrid").
type FluxTap struct {
	Dir     int // sweep direction of the tapped plane (0=x, 1=y, 2=z)
	FaceIdx int // interface index in active coordinates (0..N inclusive)
	// Transverse ranges in active coordinates: c1 in [Lo1,Hi1),
	// c2 in [Lo2,Hi2). For Dir=0, (c1,c2)=(j,k); Dir=1, (i,k); Dir=2, (i,j).
	Lo1, Hi1, Lo2, Hi2 int
	// Data[field][(c1-Lo1) + (Hi1-Lo1)*(c2-Lo2)] accumulates dt*flux.
	Data [][]float64
}

// NewFluxTap allocates a zeroed tap for nspecies advected species.
func NewFluxTap(dir, faceIdx, lo1, hi1, lo2, hi2, nspecies int) *FluxTap {
	t := &FluxTap{Dir: dir, FaceIdx: faceIdx, Lo1: lo1, Hi1: hi1, Lo2: lo2, Hi2: hi2}
	n := (hi1 - lo1) * (hi2 - lo2)
	t.Data = make([][]float64, FluxNumBase+nspecies)
	for q := range t.Data {
		t.Data[q] = make([]float64, n)
	}
	return t
}

// Zero clears the accumulated fluxes.
func (t *FluxTap) Zero() {
	for q := range t.Data {
		clear(t.Data[q])
	}
}

// At returns the accumulated flux of the given conserved field at
// transverse coordinates (c1, c2).
func (t *FluxTap) At(field, c1, c2 int) float64 {
	return t.Data[field][(c1-t.Lo1)+(t.Hi1-t.Lo1)*(c2-t.Lo2)]
}

// accumulateTaps adds dt-weighted fluxes from one pencil into any taps on
// this sweep direction whose transverse range covers the pencil.
func accumulateTaps(taps []*FluxTap, dir, c1, c2 int, pc *pencil, dt float64) {
	for _, t := range taps {
		if t.Dir != dir || c1 < t.Lo1 || c1 >= t.Hi1 || c2 < t.Lo2 || c2 >= t.Hi2 {
			continue
		}
		f := t.FaceIdx + pc.ng
		idx := (c1 - t.Lo1) + (t.Hi1-t.Lo1)*(c2-t.Lo2)
		t.Data[FluxMass][idx] += dt * pc.fMass[f]
		var mx, my, mz float64
		switch dir {
		case 0:
			mx, my, mz = pc.fMomU[f], pc.fMomV[f], pc.fMomW[f]
		case 1:
			my, mz, mx = pc.fMomU[f], pc.fMomV[f], pc.fMomW[f]
		case 2:
			mz, mx, my = pc.fMomU[f], pc.fMomV[f], pc.fMomW[f]
		}
		t.Data[FluxMomX][idx] += dt * mx
		t.Data[FluxMomY][idx] += dt * my
		t.Data[FluxMomZ][idx] += dt * mz
		t.Data[FluxEnergy][idx] += dt * pc.fE[f]
		for sp := range pc.fSpecies {
			t.Data[FluxNumBase+sp][idx] += dt * pc.fSpecies[sp][f]
		}
	}
}
