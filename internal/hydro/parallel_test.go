package hydro

import (
	"math"
	"testing"
)

// randomishState fills an n³ state (with nsp species) with a smooth but
// asymmetric pattern so every pencil sees distinct data.
func randomishState(n, nsp int) *State {
	s := NewState(n, n, n, nsp)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				x := float64(i) / float64(n)
				y := float64(j) / float64(n)
				z := float64(k) / float64(n)
				rho := 1 + 0.4*math.Sin(2*math.Pi*x)*math.Cos(2*math.Pi*(y+2*z))
				s.Rho.Set(i, j, k, rho)
				s.Vx.Set(i, j, k, 0.3*math.Sin(2*math.Pi*(x+y)))
				s.Vy.Set(i, j, k, -0.2*math.Cos(2*math.Pi*(y+z)))
				s.Vz.Set(i, j, k, 0.1*math.Sin(2*math.Pi*(z+x)))
				ei := 1.5 + 0.5*math.Cos(2*math.Pi*(x-y))
				s.Eint.Set(i, j, k, ei)
				vx, vy, vz := s.Vx.At(i, j, k), s.Vy.At(i, j, k), s.Vz.At(i, j, k)
				s.Etot.Set(i, j, k, ei+0.5*(vx*vx+vy*vy+vz*vz))
				for sp := 0; sp < nsp; sp++ {
					s.Species[sp].Set(i, j, k, rho*(0.1+0.05*float64(sp)))
				}
			}
		}
	}
	return s
}

// TestStep3DParallelBitwise verifies the tentpole invariant: the parallel
// pencil sweep is bitwise identical to the serial one — pencils are
// independent lines, so worker count must not change a single bit of the
// state, the flux registers, or the flux taps.
func TestStep3DParallelBitwise(t *testing.T) {
	const n = 16
	const nsp = 2
	for _, solver := range []Solver{SolverPPM, SolverFD} {
		serial := randomishState(n, nsp)
		parallel := serial.Clone()

		p := DefaultParams()
		dt := 0.2 * Timestep(serial, 1.0/n, p)
		bc := func(s *State) {
			for _, f := range s.Fields() {
				f.ApplyPeriodicBC()
			}
		}
		regS := NewFluxRegister(n, n, n, nsp)
		regP := NewFluxRegister(n, n, n, nsp)
		tapS := []*FluxTap{NewFluxTap(0, 4, 2, 10, 3, 12, nsp), NewFluxTap(2, 8, 0, n, 0, n, nsp)}
		tapP := []*FluxTap{NewFluxTap(0, 4, 2, 10, 3, 12, nsp), NewFluxTap(2, 8, 0, n, 0, n, nsp)}

		for step := 0; step < 2; step++ {
			pSer := p
			pSer.Workers = 1
			Step3D(serial, 1.0/n, dt, pSer, solver, step, bc, regS, tapS)
			pPar := p
			pPar.Workers = 8
			Step3D(parallel, 1.0/n, dt, pPar, solver, step, bc, regP, tapP)
		}

		fs, fp := serial.Fields(), parallel.Fields()
		for fi := range fs {
			for idx, v := range fs[fi].Data {
				if pv := fp[fi].Data[idx]; pv != v {
					t.Fatalf("%v: field %d differs at %d: serial %v parallel %v", solver, fi, idx, v, pv)
				}
			}
		}
		for f := 0; f < 6; f++ {
			for q := range regS.Face[f] {
				for i, v := range regS.Face[f][q] {
					if regP.Face[f][q][i] != v {
						t.Fatalf("%v: flux register face %d field %d idx %d differs", solver, f, q, i)
					}
				}
			}
		}
		for ti := range tapS {
			for q := range tapS[ti].Data {
				for i, v := range tapS[ti].Data[q] {
					if tapP[ti].Data[q][i] != v {
						t.Fatalf("%v: tap %d field %d idx %d differs", solver, ti, q, i)
					}
				}
			}
		}
	}
}
