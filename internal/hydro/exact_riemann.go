package hydro

import "math"

// Exact Riemann solver for the 1-D Euler equations (Toro's two-shock /
// two-rarefaction iteration). Not used in production sweeps — HLLC is the
// production solver, as in modern PPM codes — but provides the exact
// reference solution for the validation suite and the shock-tube example
// (density plateaus, wave positions).

// RiemannState is one side of the initial discontinuity.
type RiemannState struct {
	Rho, U, P float64
}

// ExactRiemann solves the Riemann problem (left, right) for adiabatic
// index gamma and returns the self-similar solution sampled at x/t = s.
func ExactRiemann(left, right RiemannState, gamma, s float64) RiemannState {
	pStar, uStar := starRegion(left, right, gamma)
	if s <= uStar {
		return sampleSide(left, pStar, uStar, gamma, s, true)
	}
	return sampleSide(right, pStar, uStar, gamma, s, false)
}

// starRegion iterates Newton's method for the star-region pressure and
// velocity (Toro §4.3).
func starRegion(l, r RiemannState, gamma float64) (pStar, uStar float64) {
	cl := math.Sqrt(gamma * l.P / l.Rho)
	cr := math.Sqrt(gamma * r.P / r.Rho)
	// Initial guess: two-rarefaction approximation.
	g1 := (gamma - 1) / (2 * gamma)
	p := math.Pow((cl+cr-0.5*(gamma-1)*(r.U-l.U))/(cl/math.Pow(l.P, g1)+cr/math.Pow(r.P, g1)), 1/g1)
	if p < 1e-12 {
		p = 1e-12
	}
	for it := 0; it < 60; it++ {
		fl, dfl := pressureFunc(p, l, cl, gamma)
		fr, dfr := pressureFunc(p, r, cr, gamma)
		f := fl + fr + (r.U - l.U)
		df := dfl + dfr
		dp := f / df
		pNew := p - dp
		if pNew < 1e-14 {
			pNew = 1e-14
		}
		if math.Abs(pNew-p) < 1e-14*(p+pNew) {
			p = pNew
			break
		}
		p = pNew
	}
	fl, _ := pressureFunc(p, l, cl, gamma)
	fr, _ := pressureFunc(p, r, cr, gamma)
	return p, 0.5*(l.U+r.U) + 0.5*(fr-fl)
}

// pressureFunc is Toro's f_K(p) and its derivative: the velocity jump
// across the left or right wave as a function of star pressure.
func pressureFunc(p float64, k RiemannState, c, gamma float64) (f, df float64) {
	if p > k.P {
		// Shock.
		a := 2 / ((gamma + 1) * k.Rho)
		b := (gamma - 1) / (gamma + 1) * k.P
		q := math.Sqrt(a / (p + b))
		f = (p - k.P) * q
		df = q * (1 - 0.5*(p-k.P)/(p+b))
	} else {
		// Rarefaction.
		f = 2 * c / (gamma - 1) * (math.Pow(p/k.P, (gamma-1)/(2*gamma)) - 1)
		df = 1 / (k.Rho * c) * math.Pow(p/k.P, -(gamma+1)/(2*gamma))
	}
	return
}

// sampleSide evaluates the solution at speed s on the given side of the
// contact (Toro §4.5).
func sampleSide(k RiemannState, pStar, uStar, gamma, s float64, isLeft bool) RiemannState {
	sign := 1.0
	if !isLeft {
		sign = -1.0
	}
	c := math.Sqrt(gamma * k.P / k.Rho)
	if pStar > k.P {
		// Shock on this side.
		ms := k.U - sign*c*math.Sqrt((gamma+1)/(2*gamma)*pStar/k.P+(gamma-1)/(2*gamma))
		if sign*(s-ms) < 0 {
			return k
		}
		rhoStar := k.Rho * ((pStar/k.P + (gamma-1)/(gamma+1)) /
			((gamma-1)/(gamma+1)*pStar/k.P + 1))
		return RiemannState{Rho: rhoStar, U: uStar, P: pStar}
	}
	// Rarefaction on this side.
	cStar := c * math.Pow(pStar/k.P, (gamma-1)/(2*gamma))
	headSpeed := k.U - sign*c
	tailSpeed := uStar - sign*cStar
	if sign*(s-headSpeed) < 0 {
		return k
	}
	if sign*(s-tailSpeed) > 0 {
		rhoStar := k.Rho * math.Pow(pStar/k.P, 1/gamma)
		return RiemannState{Rho: rhoStar, U: uStar, P: pStar}
	}
	// Inside the fan.
	u := (2 / (gamma + 1)) * (sign*c + (gamma-1)/2*k.U + s)
	cFan := sign * (2 / (gamma + 1)) * (sign*c + (gamma-1)/2*(k.U-s))
	rho := k.Rho * math.Pow(cFan/c, 2/(gamma-1))
	p := k.P * math.Pow(cFan/c, 2*gamma/(gamma-1))
	return RiemannState{Rho: rho, U: u, P: p}
}

// SodExact returns the exact Sod-problem solution at position x in [0,1]
// (diaphragm at 0.5) at time t, for gamma.
func SodExact(x, t, gamma float64) RiemannState {
	l := RiemannState{Rho: 1, U: 0, P: 1}
	r := RiemannState{Rho: 0.125, U: 0, P: 0.1}
	if t <= 0 {
		if x < 0.5 {
			return l
		}
		return r
	}
	return ExactRiemann(l, r, gamma, (x-0.5)/t)
}
