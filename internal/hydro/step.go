package hydro

import (
	"math"

	"repro/internal/mesh"
	"repro/internal/par"
)

// Step3D advances the state by dt on a grid with cell width dx using
// dimensional Strang splitting. The sweep order alternates (xyz / zyx) with
// the parity argument to cancel splitting errors over step pairs, as in the
// original implementation. bc is called before each sweep to refresh ghost
// zones (the AMR layer supplies parent/sibling interpolation; uniform-grid
// callers pass periodic or outflow fills). If reg is non-nil, the
// time-integrated conserved fluxes through the grid's outer faces are
// accumulated into it for later flux correction; taps capture interior
// fluxes at child-boundary planes.
func Step3D(s *State, dx, dt float64, p Params, solver Solver, parity int, bc func(*State), reg *FluxRegister, taps []*FluxTap) {
	dirs := [3]int{0, 1, 2}
	if parity%2 == 1 {
		dirs = [3]int{2, 1, 0}
	}
	for _, d := range dirs {
		if bc != nil {
			bc(s)
		}
		sweep(s, d, dx, dt, p, solver, reg, taps)
	}
	SyncDualEnergy(s, p)
}

// sweep performs one directional pass over the whole grid. Pencils are
// independent 1-D problems over disjoint lines (gather, fluxes, update and
// scatter all stay within one transverse coordinate, and register/tap
// accumulation targets per-line entries), so the parallel pass is bitwise
// identical to the serial one at any worker count.
func sweep(s *State, dir int, dx, dt float64, prm Params, solver Solver, reg *FluxRegister, taps []*FluxTap) {
	var n, n1, n2 int
	switch dir {
	case 0:
		n, n1, n2 = s.Rho.Nx, s.Rho.Ny, s.Rho.Nz
	case 1:
		n, n1, n2 = s.Rho.Ny, s.Rho.Nx, s.Rho.Nz
	case 2:
		n, n1, n2 = s.Rho.Nz, s.Rho.Nx, s.Rho.Ny
	}
	ng := s.Rho.Ng
	nsp := len(s.Species)
	dtdx := dt / dx

	// One chunk per transverse plane keeps scatter writes cache-friendly.
	par.For(prm.Workers, n1*n2, n1, func(_, lo, hi int) {
		pc := getPencil(n, ng, nsp)
		defer putPencil(pc)
		for line := lo; line < hi; line++ {
			c1 := line % n1
			c2 := line / n1
			gatherPencil(s, dir, c1, c2, pc, prm)
			computeFluxes(pc, prm, solver, dtdx)
			updatePencil(pc, prm, dtdx)
			scatterPencil(s, dir, c1, c2, pc)
			if reg != nil {
				accumulateRegister(reg, dir, c1, c2, pc, dt)
			}
			if len(taps) > 0 {
				accumulateTaps(taps, dir, c1, c2, pc, dt)
			}
		}
	})
}

// lineBase returns the flat index of pencil cell a=-ng and the flat stride
// along the sweep direction for a line at transverse coordinates (c1,c2).
// All fields of a State share one shape, so the pair applies to each.
func lineBase(f *mesh.Field3, dir, c1, c2, ng int) (base, stride int) {
	switch dir {
	case 0:
		return f.Idx(-ng, c1, c2), f.StrideX()
	case 1:
		return f.Idx(c1, -ng, c2), f.StrideY()
	default:
		return f.Idx(c1, c2, -ng), f.StrideZ()
	}
}

// gatherPencil extracts a line (with ghosts) along dir at transverse
// coordinates (c1,c2). Velocity components are permuted so that u is the
// sweep-normal component. The flat base+stride walk replaces per-cell
// At() index arithmetic in this innermost hot loop.
func gatherPencil(s *State, dir, c1, c2 int, pc *pencil, par Params) {
	tot := pc.n + 2*pc.ng
	gm1 := par.Gamma - 1
	base, stride := lineBase(s.Rho, dir, c1, c2, pc.ng)
	// Permute velocity fields so vu is the sweep-normal component.
	var vu, vv, vw []float64
	switch dir {
	case 0:
		vu, vv, vw = s.Vx.Data, s.Vy.Data, s.Vz.Data
	case 1:
		vu, vv, vw = s.Vy.Data, s.Vz.Data, s.Vx.Data
	case 2:
		vu, vv, vw = s.Vz.Data, s.Vx.Data, s.Vy.Data
	}
	rhoD, eintD, etotD := s.Rho.Data, s.Eint.Data, s.Etot.Data
	dRho, dEint, dEt, dP := pc.rho, pc.eint, pc.et, pc.p
	dU, dV, dW := pc.u, pc.v, pc.w
	for x, idx := 0, base; x < tot; x, idx = x+1, idx+stride {
		rho := max(rhoD[idx], par.FloorRho)
		ei := max(eintD[idx], par.FloorEint)
		dRho[x] = rho
		dEint[x] = ei
		dEt[x] = etotD[idx]
		dP[x] = gm1 * rho * ei
		dU[x] = vu[idx]
		dV[x] = vv[idx]
		dW[x] = vw[idx]
	}
	for sp := range s.Species {
		spD := s.Species[sp].Data
		dst := pc.species[sp]
		for x, idx := 0, base; x < tot; x, idx = x+1, idx+stride {
			dst[x] = spD[idx]
		}
	}
}

// computeFluxes reconstructs interface states for every variable and runs
// the Riemann solver at each interior interface.
func computeFluxes(pc *pencil, par Params, solver Solver, dtdx float64) {
	tot := pc.n + 2*pc.ng
	if solver == SolverFD {
		vars := [][]float64{pc.rho, pc.u, pc.v, pc.w, pc.p, pc.eint}
		vars = append(vars, pc.species...)
		for vi, q := range vars {
			pc.reconPLM(q)
			copy(pc.stL[vi], pc.ql)
			copy(pc.stR[vi], pc.qr)
		}
	} else {
		reconPPM(pc, par.Gamma, dtdx)
	}
	// Update the active interfaces plus enough margin that the active
	// cells all receive valid fluxes: interfaces ng-1 .. ng+n+1.
	lo, hi := pc.ng-1, pc.ng+pc.n+1
	if lo < 3 {
		lo = 3
	}
	if hi > tot-3 {
		hi = tot - 3
	}
	floorP := (par.Gamma - 1) * par.FloorRho * par.FloorEint
	// Hoist the state rows out of the per-interface loop: pc.stL[v][f]
	// costs two dependent loads per access in this innermost loop.
	stL0, stL1, stL2, stL3, stL4, stL5 := pc.stL[0], pc.stL[1], pc.stL[2], pc.stL[3], pc.stL[4], pc.stL[5]
	stR0, stR1, stR2, stR3, stR4, stR5 := pc.stR[0], pc.stR[1], pc.stR[2], pc.stR[3], pc.stR[4], pc.stR[5]
	fMass, fMomU, fMomV, fMomW := pc.fMass, pc.fMomU, pc.fMomV, pc.fMomW
	fE, fEint, uStar := pc.fE, pc.fEint, pc.uStar
	for f := lo; f <= hi; f++ {
		st := iface{
			rhoL: max(stL0[f], par.FloorRho),
			uL:   stL1[f], vL: stL2[f], wL: stL3[f],
			pL:   max(stL4[f], floorP),
			rhoR: max(stR0[f], par.FloorRho),
			uR:   stR1[f], vR: stR2[f], wR: stR3[f],
			pR: max(stR4[f], floorP),
		}
		var fl ifaceFlux
		if solver == SolverPPM {
			fl = hllc(st, par.Gamma)
		} else {
			fl = rusanov(st, par.Gamma)
		}
		fMass[f] = fl.mass
		fMomU[f] = fl.momU
		fMomV[f] = fl.momV
		fMomW[f] = fl.momW
		fE[f] = fl.energy
		uStar[f] = fl.uStar
		// Passive scalars ride the mass flux, upwinded at the contact.
		eintUp := stL5[f]
		if fl.upwind < 0 {
			eintUp = stR5[f]
		}
		fEint[f] = fl.mass * eintUp
		for sp := range pc.fSpecies {
			// Species are advected as mass fractions q = rho_s/rho.
			qL := pc.stL[6+sp][f] / max(stL0[f], par.FloorRho)
			qR := pc.stR[6+sp][f] / max(stR0[f], par.FloorRho)
			q := qL
			if fl.upwind < 0 {
				q = qR
			}
			pc.fSpecies[sp][f] = fl.mass * q
		}
	}
}

// reconPPM computes PPM interface states with full characteristic tracing
// (CW84 §3): the acoustic variables (rho, u, p) are traced along the three
// wave families using the primitive-variable eigenvectors, while the
// transverse velocities, internal energy and species ride the contact and
// are averaged over the u-characteristic's domain of dependence. This is
// what gives PPM its sharp contacts relative to the FD solver.
func reconPPM(pc *pencil, gamma, dtdx float64) {
	tot := pc.n + 2*pc.ng
	pc.reconParabola(pc.rho, pc.paRhoL, pc.paRhoR)
	parabolaMoments(pc.rho, pc.paRhoL, pc.paRhoR, pc.paRhoDq, pc.paRhoQ6, tot)
	pc.reconParabola(pc.u, pc.paUL, pc.paUR)
	parabolaMoments(pc.u, pc.paUL, pc.paUR, pc.paUDq, pc.paUQ6, tot)
	pc.reconParabola(pc.p, pc.paPL, pc.paPR)
	parabolaMoments(pc.p, pc.paPL, pc.paPR, pc.paPDq, pc.paPQ6, tot)

	// Upwind domains of dependence at each interface, shared by every
	// contact-riding variable (the per-variable loop below used to
	// recompute both clamps for each of its 3+nspecies passes).
	uD, sigR, sigL := pc.u, pc.sigR, pc.sigL
	for f := 3; f <= tot-3; f++ {
		sigR[f] = clamp01(uD[f-1] * dtdx)
		sigL[f] = clamp01(-uD[f] * dtdx)
	}

	// Passive (contact-riding) variables: rows 2 (v), 3 (w), 5 (eint),
	// 6.. (species).
	pc.passiveRecon(pc.v, 2, tot)
	pc.passiveRecon(pc.w, 3, tot)
	pc.passiveRecon(pc.eint, 5, tot)
	for sp := range pc.species {
		pc.passiveRecon(pc.species[sp], 6+sp, tot)
	}

	// Acoustic variables with characteristic projection.
	rhoD, pD := pc.rho, pc.p
	rcl, rcr, rdq, rq6 := pc.paRhoL, pc.paRhoR, pc.paRhoDq, pc.paRhoQ6
	ucl, ucr, udq, uq6 := pc.paUL, pc.paUR, pc.paUDq, pc.paUQ6
	pcl, pcr, pdq, pq6 := pc.paPL, pc.paPR, pc.paPDq, pc.paPQ6
	stL0, stL1, stL4 := pc.stL[0], pc.stL[1], pc.stL[4]
	stR0, stR1, stR4 := pc.stR[0], pc.stR[1], pc.stR[4]
	for f := 3; f <= tot-3; f++ {
		// ---- Left state: right-moving waves out of cell f-1.
		i := f - 1
		rhoI, uI, pI := rhoD[i], uD[i], pD[i]
		cI := math.Sqrt(gamma * pI / rhoI)
		lamP, lamZ, lamM := uI+cI, uI, uI-cI
		sRef := clamp01(lamP * dtdx)
		refRho := avgRight(rcr, rdq, rq6, i, sRef)
		refU := avgRight(ucr, udq, uq6, i, sRef)
		refP := avgRight(pcr, pdq, pq6, i, sRef)
		rhoL, uL, pL := refRho, refU, refP
		// The + family coincides with the reference state (beta+ = 0).
		if lamZ > 0 {
			s := clamp01(lamZ * dtdx)
			r0 := avgRight(rcr, rdq, rq6, i, s)
			p0 := avgRight(pcr, pdq, pq6, i, s)
			beta0 := (refRho - r0) - (refP-p0)/(cI*cI)
			rhoL -= beta0
		}
		if lamM > 0 {
			s := clamp01(lamM * dtdx)
			uM := avgRight(ucr, udq, uq6, i, s)
			pM := avgRight(pcr, pdq, pq6, i, s)
			betaM := -rhoI/(2*cI)*(refU-uM) + (refP-pM)/(2*cI*cI)
			rhoL -= betaM
			uL += betaM * cI / rhoI
			pL -= betaM * cI * cI
		}
		stL0[f] = rhoL
		stL1[f] = uL
		stL4[f] = pL

		// ---- Right state: left-moving waves out of cell f.
		i = f
		rhoI, uI, pI = rhoD[i], uD[i], pD[i]
		cI = math.Sqrt(gamma * pI / rhoI)
		lamP, lamZ, lamM = uI+cI, uI, uI-cI
		sRef = clamp01(-lamM * dtdx)
		refRho = avgLeft(rcl, rdq, rq6, i, sRef)
		refU = avgLeft(ucl, udq, uq6, i, sRef)
		refP = avgLeft(pcl, pdq, pq6, i, sRef)
		rhoR, uR, pR := refRho, refU, refP
		// The - family coincides with the reference state (beta- = 0).
		if lamZ < 0 {
			s := clamp01(-lamZ * dtdx)
			r0 := avgLeft(rcl, rdq, rq6, i, s)
			p0 := avgLeft(pcl, pdq, pq6, i, s)
			beta0 := (refRho - r0) - (refP-p0)/(cI*cI)
			rhoR -= beta0
		}
		if lamP < 0 {
			s := clamp01(-lamP * dtdx)
			uP := avgLeft(ucl, udq, uq6, i, s)
			pP := avgLeft(pcl, pdq, pq6, i, s)
			betaP := rhoI/(2*cI)*(refU-uP) + (refP-pP)/(2*cI*cI)
			rhoR -= betaP
			uR -= betaP * cI / rhoI
			pR -= betaP * cI * cI
		}
		stR0[f] = rhoR
		stR1[f] = uR
		stR4[f] = pR
	}
}

// passiveRecon reconstructs one contact-riding variable into state row
// `row`: the monotonized parabola is built once, its moments hoisted, and
// the per-interface averages use the shared sigR/sigL upwind domains.
func (pc *pencil) passiveRecon(q []float64, row, tot int) {
	pc.reconParabola(q, pc.cellL, pc.cellR)
	parabolaMoments(q, pc.cellL, pc.cellR, pc.cellDq, pc.cellQ6, tot)
	cl, cr, dq, q6 := pc.cellL, pc.cellR, pc.cellDq, pc.cellQ6
	sigR, sigL := pc.sigR, pc.sigL
	dstL, dstR := pc.stL[row], pc.stR[row]
	for f := 3; f <= tot-3; f++ {
		dstL[f] = avgRight(cr, dq, q6, f-1, sigR[f])
		dstR[f] = avgLeft(cl, dq, q6, f, sigL[f])
	}
}

// updatePencil applies the conservative update to the active cells of the
// pencil (plus one ghost layer margin so subsequent sweeps have partially
// updated data near boundaries — the standard split-scheme practice is to
// update as wide a band as valid fluxes allow).
func updatePencil(pc *pencil, par Params, dtdx float64) {
	lo := pc.ng - 1
	hi := pc.ng + pc.n // inclusive of one ghost on each side
	if lo < 3 {
		lo = 3
	}
	tot := pc.n + 2*pc.ng
	if hi > tot-4 {
		hi = tot - 4
	}
	rhoA, uA, vA, wA := pc.rho, pc.u, pc.v, pc.w
	etA, eintA, pA := pc.et, pc.eint, pc.p
	fMass, fMomU, fMomV, fMomW := pc.fMass, pc.fMomU, pc.fMomV, pc.fMomW
	fE, fEint, uStar := pc.fE, pc.fEint, pc.uStar
	// Species are write-disjoint from the base update; walking each
	// species array in its own contiguous pass beats interleaving the
	// accesses inside the base cell loop.
	for sp := range pc.species {
		qs, fs := pc.species[sp], pc.fSpecies[sp]
		for i := lo; i <= hi; i++ {
			rs := qs[i] - dtdx*(fs[i+1]-fs[i])
			if rs < 0 {
				rs = 0
			}
			qs[i] = rs
		}
	}
	for i := lo; i <= hi; i++ {
		rho := rhoA[i]
		// Conserved quantities.
		mU := rho * uA[i]
		mV := rho * vA[i]
		mW := rho * wA[i]
		e := rho * etA[i]
		rhoEint := rho * eintA[i]

		nrho := max(rho-dtdx*(fMass[i+1]-fMass[i]), par.FloorRho)
		mU -= dtdx * (fMomU[i+1] - fMomU[i])
		mV -= dtdx * (fMomV[i+1] - fMomV[i])
		mW -= dtdx * (fMomW[i+1] - fMomW[i])
		e -= dtdx * (fE[i+1] - fE[i])
		// Dual internal energy: conservative advection + pdV work with
		// interface velocities.
		rhoEint -= dtdx * (fEint[i+1] - fEint[i])
		rhoEint -= dtdx * pA[i] * (uStar[i+1] - uStar[i])

		rhoA[i] = nrho
		uA[i] = mU / nrho
		vA[i] = mV / nrho
		wA[i] = mW / nrho
		// eint carries the dual internal energy; SyncDualEnergy
		// reconciles it with the conserved total energy after the
		// full 3-D step.
		eintA[i] = max(rhoEint/nrho, par.FloorEint)
		etA[i] = e / nrho
	}
}

// scatterPencil writes the updated pencil back to the grid (active cells
// plus one ghost layer on each side, which holds partially updated data
// for the subsequent sweeps of the split scheme).
func scatterPencil(s *State, dir, c1, c2 int, pc *pencil) {
	base, stride := lineBase(s.Rho, dir, c1, c2, pc.ng)
	var vu, vv, vw []float64
	switch dir {
	case 0:
		vu, vv, vw = s.Vx.Data, s.Vy.Data, s.Vz.Data
	case 1:
		vu, vv, vw = s.Vy.Data, s.Vz.Data, s.Vx.Data
	case 2:
		vu, vv, vw = s.Vz.Data, s.Vx.Data, s.Vy.Data
	}
	rhoD, eintD, etotD := s.Rho.Data, s.Eint.Data, s.Etot.Data
	// Pencil index x = a+ng covers a in [-1, n]; flat index follows.
	x0 := pc.ng - 1
	for x, idx := x0, base+x0*stride; x <= pc.ng+pc.n; x, idx = x+1, idx+stride {
		rhoD[idx] = pc.rho[x]
		vu[idx] = pc.u[x]
		vv[idx] = pc.v[x]
		vw[idx] = pc.w[x]
		etotD[idx] = pc.et[x]
		eintD[idx] = pc.eint[x]
	}
	for sp := range s.Species {
		spD := s.Species[sp].Data
		src := pc.species[sp]
		for x, idx := x0, base+x0*stride; x <= pc.ng+pc.n; x, idx = x+1, idx+stride {
			spD[idx] = src[x]
		}
	}
}

// accumulateRegister adds dt-weighted boundary fluxes from this pencil into
// the register. Momentum fluxes are rotated back to global orientation.
func accumulateRegister(reg *FluxRegister, dir, c1, c2 int, pc *pencil, dt float64) {
	fLow := pc.ng // interface at the low active face
	fHigh := pc.ng + pc.n
	var faceLow, faceHigh, tIdx int
	switch dir {
	case 0:
		faceLow, faceHigh = 0, 1
		tIdx = c1 + reg.Ny*c2
	case 1:
		faceLow, faceHigh = 2, 3
		tIdx = c1 + reg.Nx*c2
	case 2:
		faceLow, faceHigh = 4, 5
		tIdx = c1 + reg.Nx*c2
	}
	add := func(face, f int) {
		reg.Face[face][FluxMass][tIdx] += dt * pc.fMass[f]
		var mx, my, mz float64
		switch dir {
		case 0:
			mx, my, mz = pc.fMomU[f], pc.fMomV[f], pc.fMomW[f]
		case 1:
			my, mz, mx = pc.fMomU[f], pc.fMomV[f], pc.fMomW[f]
		case 2:
			mz, mx, my = pc.fMomU[f], pc.fMomV[f], pc.fMomW[f]
		}
		reg.Face[face][FluxMomX][tIdx] += dt * mx
		reg.Face[face][FluxMomY][tIdx] += dt * my
		reg.Face[face][FluxMomZ][tIdx] += dt * mz
		reg.Face[face][FluxEnergy][tIdx] += dt * pc.fE[f]
		for sp := range pc.fSpecies {
			reg.Face[face][FluxNumBase+sp][tIdx] += dt * pc.fSpecies[sp][f]
		}
	}
	add(faceLow, fLow)
	add(faceHigh, fHigh)
}
