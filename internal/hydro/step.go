package hydro

import (
	"math"

	"repro/internal/mesh"
	"repro/internal/par"
)

// Step3D advances the state by dt on a grid with cell width dx using
// dimensional Strang splitting. The sweep order alternates (xyz / zyx) with
// the parity argument to cancel splitting errors over step pairs, as in the
// original implementation. bc is called before each sweep to refresh ghost
// zones (the AMR layer supplies parent/sibling interpolation; uniform-grid
// callers pass periodic or outflow fills). If reg is non-nil, the
// time-integrated conserved fluxes through the grid's outer faces are
// accumulated into it for later flux correction; taps capture interior
// fluxes at child-boundary planes.
func Step3D(s *State, dx, dt float64, p Params, solver Solver, parity int, bc func(*State), reg *FluxRegister, taps []*FluxTap) {
	dirs := [3]int{0, 1, 2}
	if parity%2 == 1 {
		dirs = [3]int{2, 1, 0}
	}
	for _, d := range dirs {
		if bc != nil {
			bc(s)
		}
		sweep(s, d, dx, dt, p, solver, reg, taps)
	}
	SyncDualEnergy(s, p)
}

// sweep performs one directional pass over the whole grid. Pencils are
// independent 1-D problems over disjoint lines (gather, fluxes, update and
// scatter all stay within one transverse coordinate, and register/tap
// accumulation targets per-line entries), so the parallel pass is bitwise
// identical to the serial one at any worker count.
func sweep(s *State, dir int, dx, dt float64, prm Params, solver Solver, reg *FluxRegister, taps []*FluxTap) {
	var n, n1, n2 int
	switch dir {
	case 0:
		n, n1, n2 = s.Rho.Nx, s.Rho.Ny, s.Rho.Nz
	case 1:
		n, n1, n2 = s.Rho.Ny, s.Rho.Nx, s.Rho.Nz
	case 2:
		n, n1, n2 = s.Rho.Nz, s.Rho.Nx, s.Rho.Ny
	}
	ng := s.Rho.Ng
	nsp := len(s.Species)
	dtdx := dt / dx

	// One chunk per transverse plane keeps scatter writes cache-friendly.
	par.For(prm.Workers, n1*n2, n1, func(_, lo, hi int) {
		pc := getPencil(n, ng, nsp)
		defer putPencil(pc)
		for line := lo; line < hi; line++ {
			c1 := line % n1
			c2 := line / n1
			gatherPencil(s, dir, c1, c2, pc, prm)
			computeFluxes(pc, prm, solver, dtdx)
			updatePencil(pc, prm, dtdx)
			scatterPencil(s, dir, c1, c2, pc)
			if reg != nil {
				accumulateRegister(reg, dir, c1, c2, pc, dt)
			}
			if len(taps) > 0 {
				accumulateTaps(taps, dir, c1, c2, pc, dt)
			}
		}
	})
}

// lineBase returns the flat index of pencil cell a=-ng and the flat stride
// along the sweep direction for a line at transverse coordinates (c1,c2).
// All fields of a State share one shape, so the pair applies to each.
func lineBase(f *mesh.Field3, dir, c1, c2, ng int) (base, stride int) {
	switch dir {
	case 0:
		return f.Idx(-ng, c1, c2), f.StrideX()
	case 1:
		return f.Idx(c1, -ng, c2), f.StrideY()
	default:
		return f.Idx(c1, c2, -ng), f.StrideZ()
	}
}

// gatherPencil extracts a line (with ghosts) along dir at transverse
// coordinates (c1,c2). Velocity components are permuted so that u is the
// sweep-normal component. The flat base+stride walk replaces per-cell
// At() index arithmetic in this innermost hot loop.
func gatherPencil(s *State, dir, c1, c2 int, pc *pencil, par Params) {
	tot := pc.n + 2*pc.ng
	gm1 := par.Gamma - 1
	base, stride := lineBase(s.Rho, dir, c1, c2, pc.ng)
	// Permute velocity fields so vu is the sweep-normal component.
	var vu, vv, vw []float64
	switch dir {
	case 0:
		vu, vv, vw = s.Vx.Data, s.Vy.Data, s.Vz.Data
	case 1:
		vu, vv, vw = s.Vy.Data, s.Vz.Data, s.Vx.Data
	case 2:
		vu, vv, vw = s.Vz.Data, s.Vx.Data, s.Vy.Data
	}
	rhoD, eintD, etotD := s.Rho.Data, s.Eint.Data, s.Etot.Data
	for x, idx := 0, base; x < tot; x, idx = x+1, idx+stride {
		rho := rhoD[idx]
		if rho < par.FloorRho {
			rho = par.FloorRho
		}
		ei := eintD[idx]
		if ei < par.FloorEint {
			ei = par.FloorEint
		}
		pc.rho[x] = rho
		pc.eint[x] = ei
		pc.et[x] = etotD[idx]
		pc.p[x] = gm1 * rho * ei
		pc.u[x] = vu[idx]
		pc.v[x] = vv[idx]
		pc.w[x] = vw[idx]
	}
	for sp := range s.Species {
		spD := s.Species[sp].Data
		dst := pc.species[sp]
		for x, idx := 0, base; x < tot; x, idx = x+1, idx+stride {
			dst[x] = spD[idx]
		}
	}
}

// computeFluxes reconstructs interface states for every variable and runs
// the Riemann solver at each interior interface.
func computeFluxes(pc *pencil, par Params, solver Solver, dtdx float64) {
	tot := pc.n + 2*pc.ng
	if solver == SolverFD {
		vars := [][]float64{pc.rho, pc.u, pc.v, pc.w, pc.p, pc.eint}
		vars = append(vars, pc.species...)
		for vi, q := range vars {
			pc.reconPLM(q)
			copy(pc.stL[vi], pc.ql)
			copy(pc.stR[vi], pc.qr)
		}
	} else {
		reconPPM(pc, par.Gamma, dtdx)
	}
	// Update the active interfaces plus enough margin that the active
	// cells all receive valid fluxes: interfaces ng-1 .. ng+n+1.
	lo, hi := pc.ng-1, pc.ng+pc.n+1
	if lo < 3 {
		lo = 3
	}
	if hi > tot-3 {
		hi = tot - 3
	}
	floorP := (par.Gamma - 1) * par.FloorRho * par.FloorEint
	for f := lo; f <= hi; f++ {
		st := iface{
			rhoL: math.Max(pc.stL[0][f], par.FloorRho),
			uL:   pc.stL[1][f], vL: pc.stL[2][f], wL: pc.stL[3][f],
			pL:   math.Max(pc.stL[4][f], floorP),
			rhoR: math.Max(pc.stR[0][f], par.FloorRho),
			uR:   pc.stR[1][f], vR: pc.stR[2][f], wR: pc.stR[3][f],
			pR: math.Max(pc.stR[4][f], floorP),
		}
		var fl ifaceFlux
		if solver == SolverPPM {
			fl = hllc(st, par.Gamma)
		} else {
			fl = rusanov(st, par.Gamma)
		}
		pc.fMass[f] = fl.mass
		pc.fMomU[f] = fl.momU
		pc.fMomV[f] = fl.momV
		pc.fMomW[f] = fl.momW
		pc.fE[f] = fl.energy
		pc.uStar[f] = fl.uStar
		// Passive scalars ride the mass flux, upwinded at the contact.
		eintUp := pc.stL[5][f]
		if fl.upwind < 0 {
			eintUp = pc.stR[5][f]
		}
		pc.fEint[f] = fl.mass * eintUp
		for sp := range pc.fSpecies {
			// Species are advected as mass fractions q = rho_s/rho.
			qL := pc.stL[6+sp][f] / math.Max(pc.stL[0][f], par.FloorRho)
			qR := pc.stR[6+sp][f] / math.Max(pc.stR[0][f], par.FloorRho)
			q := qL
			if fl.upwind < 0 {
				q = qR
			}
			pc.fSpecies[sp][f] = fl.mass * q
		}
	}
}

// reconPPM computes PPM interface states with full characteristic tracing
// (CW84 §3): the acoustic variables (rho, u, p) are traced along the three
// wave families using the primitive-variable eigenvectors, while the
// transverse velocities, internal energy and species ride the contact and
// are averaged over the u-characteristic's domain of dependence. This is
// what gives PPM its sharp contacts relative to the FD solver.
func reconPPM(pc *pencil, gamma, dtdx float64) {
	tot := pc.n + 2*pc.ng
	pc.reconParabola(pc.rho, pc.paRhoL, pc.paRhoR)
	pc.reconParabola(pc.u, pc.paUL, pc.paUR)
	pc.reconParabola(pc.p, pc.paPL, pc.paPR)

	// Passive (contact-riding) variables: rows 2 (v), 3 (w), 5 (eint),
	// 6.. (species).
	passives := [][]float64{pc.v, pc.w, pc.eint}
	rows := []int{2, 3, 5}
	for sp := range pc.species {
		passives = append(passives, pc.species[sp])
		rows = append(rows, 6+sp)
	}
	for vi, q := range passives {
		pc.reconParabola(q, pc.cellL, pc.cellR)
		row := rows[vi]
		for f := 3; f <= tot-3; f++ {
			il, ir := f-1, f
			pc.stL[row][f] = avgRight(q, pc.cellL, pc.cellR, il, clamp01(pc.u[il]*dtdx))
			pc.stR[row][f] = avgLeft(q, pc.cellL, pc.cellR, ir, clamp01(-pc.u[ir]*dtdx))
		}
	}

	// Acoustic variables with characteristic projection.
	for f := 3; f <= tot-3; f++ {
		// ---- Left state: right-moving waves out of cell f-1.
		i := f - 1
		rhoI, uI, pI := pc.rho[i], pc.u[i], pc.p[i]
		cI := math.Sqrt(gamma * pI / rhoI)
		lamP, lamZ, lamM := uI+cI, uI, uI-cI
		sRef := clamp01(lamP * dtdx)
		refRho := avgRight(pc.rho, pc.paRhoL, pc.paRhoR, i, sRef)
		refU := avgRight(pc.u, pc.paUL, pc.paUR, i, sRef)
		refP := avgRight(pc.p, pc.paPL, pc.paPR, i, sRef)
		rhoL, uL, pL := refRho, refU, refP
		// The + family coincides with the reference state (beta+ = 0).
		if lamZ > 0 {
			s := clamp01(lamZ * dtdx)
			r0 := avgRight(pc.rho, pc.paRhoL, pc.paRhoR, i, s)
			p0 := avgRight(pc.p, pc.paPL, pc.paPR, i, s)
			beta0 := (refRho - r0) - (refP-p0)/(cI*cI)
			rhoL -= beta0
		}
		if lamM > 0 {
			s := clamp01(lamM * dtdx)
			uM := avgRight(pc.u, pc.paUL, pc.paUR, i, s)
			pM := avgRight(pc.p, pc.paPL, pc.paPR, i, s)
			betaM := -rhoI/(2*cI)*(refU-uM) + (refP-pM)/(2*cI*cI)
			rhoL -= betaM
			uL += betaM * cI / rhoI
			pL -= betaM * cI * cI
		}
		pc.stL[0][f] = rhoL
		pc.stL[1][f] = uL
		pc.stL[4][f] = pL

		// ---- Right state: left-moving waves out of cell f.
		i = f
		rhoI, uI, pI = pc.rho[i], pc.u[i], pc.p[i]
		cI = math.Sqrt(gamma * pI / rhoI)
		lamP, lamZ, lamM = uI+cI, uI, uI-cI
		sRef = clamp01(-lamM * dtdx)
		refRho = avgLeft(pc.rho, pc.paRhoL, pc.paRhoR, i, sRef)
		refU = avgLeft(pc.u, pc.paUL, pc.paUR, i, sRef)
		refP = avgLeft(pc.p, pc.paPL, pc.paPR, i, sRef)
		rhoR, uR, pR := refRho, refU, refP
		// The - family coincides with the reference state (beta- = 0).
		if lamZ < 0 {
			s := clamp01(-lamZ * dtdx)
			r0 := avgLeft(pc.rho, pc.paRhoL, pc.paRhoR, i, s)
			p0 := avgLeft(pc.p, pc.paPL, pc.paPR, i, s)
			beta0 := (refRho - r0) - (refP-p0)/(cI*cI)
			rhoR -= beta0
		}
		if lamP < 0 {
			s := clamp01(-lamP * dtdx)
			uP := avgLeft(pc.u, pc.paUL, pc.paUR, i, s)
			pP := avgLeft(pc.p, pc.paPL, pc.paPR, i, s)
			betaP := rhoI/(2*cI)*(refU-uP) + (refP-pP)/(2*cI*cI)
			rhoR -= betaP
			uR -= betaP * cI / rhoI
			pR -= betaP * cI * cI
		}
		pc.stR[0][f] = rhoR
		pc.stR[1][f] = uR
		pc.stR[4][f] = pR
	}
}

// updatePencil applies the conservative update to the active cells of the
// pencil (plus one ghost layer margin so subsequent sweeps have partially
// updated data near boundaries — the standard split-scheme practice is to
// update as wide a band as valid fluxes allow).
func updatePencil(pc *pencil, par Params, dtdx float64) {
	lo := pc.ng - 1
	hi := pc.ng + pc.n // inclusive of one ghost on each side
	if lo < 3 {
		lo = 3
	}
	tot := pc.n + 2*pc.ng
	if hi > tot-4 {
		hi = tot - 4
	}
	for i := lo; i <= hi; i++ {
		rho := pc.rho[i]
		// Conserved quantities.
		mU := rho * pc.u[i]
		mV := rho * pc.v[i]
		mW := rho * pc.w[i]
		e := rho * pc.et[i]
		rhoEint := rho * pc.eint[i]

		nrho := rho - dtdx*(pc.fMass[i+1]-pc.fMass[i])
		if nrho < par.FloorRho {
			nrho = par.FloorRho
		}
		mU -= dtdx * (pc.fMomU[i+1] - pc.fMomU[i])
		mV -= dtdx * (pc.fMomV[i+1] - pc.fMomV[i])
		mW -= dtdx * (pc.fMomW[i+1] - pc.fMomW[i])
		e -= dtdx * (pc.fE[i+1] - pc.fE[i])
		// Dual internal energy: conservative advection + pdV work with
		// interface velocities.
		rhoEint -= dtdx * (pc.fEint[i+1] - pc.fEint[i])
		rhoEint -= dtdx * pc.p[i] * (pc.uStar[i+1] - pc.uStar[i])

		for sp := range pc.species {
			rs := pc.species[sp][i] - dtdx*(pc.fSpecies[sp][i+1]-pc.fSpecies[sp][i])
			if rs < 0 {
				rs = 0
			}
			pc.species[sp][i] = rs
		}

		pc.rho[i] = nrho
		pc.u[i] = mU / nrho
		pc.v[i] = mV / nrho
		pc.w[i] = mW / nrho
		eintAdv := rhoEint / nrho
		if eintAdv < par.FloorEint {
			eintAdv = par.FloorEint
		}
		// eint carries the dual internal energy; SyncDualEnergy
		// reconciles it with the conserved total energy after the
		// full 3-D step.
		pc.eint[i] = eintAdv
		pc.et[i] = e / nrho
	}
}

// scatterPencil writes the updated pencil back to the grid (active cells
// plus one ghost layer on each side, which holds partially updated data
// for the subsequent sweeps of the split scheme).
func scatterPencil(s *State, dir, c1, c2 int, pc *pencil) {
	base, stride := lineBase(s.Rho, dir, c1, c2, pc.ng)
	var vu, vv, vw []float64
	switch dir {
	case 0:
		vu, vv, vw = s.Vx.Data, s.Vy.Data, s.Vz.Data
	case 1:
		vu, vv, vw = s.Vy.Data, s.Vz.Data, s.Vx.Data
	case 2:
		vu, vv, vw = s.Vz.Data, s.Vx.Data, s.Vy.Data
	}
	rhoD, eintD, etotD := s.Rho.Data, s.Eint.Data, s.Etot.Data
	// Pencil index x = a+ng covers a in [-1, n]; flat index follows.
	x0 := pc.ng - 1
	for x, idx := x0, base+x0*stride; x <= pc.ng+pc.n; x, idx = x+1, idx+stride {
		rhoD[idx] = pc.rho[x]
		vu[idx] = pc.u[x]
		vv[idx] = pc.v[x]
		vw[idx] = pc.w[x]
		etotD[idx] = pc.et[x]
		eintD[idx] = pc.eint[x]
	}
	for sp := range s.Species {
		spD := s.Species[sp].Data
		src := pc.species[sp]
		for x, idx := x0, base+x0*stride; x <= pc.ng+pc.n; x, idx = x+1, idx+stride {
			spD[idx] = src[x]
		}
	}
}

// accumulateRegister adds dt-weighted boundary fluxes from this pencil into
// the register. Momentum fluxes are rotated back to global orientation.
func accumulateRegister(reg *FluxRegister, dir, c1, c2 int, pc *pencil, dt float64) {
	fLow := pc.ng // interface at the low active face
	fHigh := pc.ng + pc.n
	var faceLow, faceHigh, tIdx int
	switch dir {
	case 0:
		faceLow, faceHigh = 0, 1
		tIdx = c1 + reg.Ny*c2
	case 1:
		faceLow, faceHigh = 2, 3
		tIdx = c1 + reg.Nx*c2
	case 2:
		faceLow, faceHigh = 4, 5
		tIdx = c1 + reg.Nx*c2
	}
	add := func(face, f int) {
		reg.Face[face][FluxMass][tIdx] += dt * pc.fMass[f]
		var mx, my, mz float64
		switch dir {
		case 0:
			mx, my, mz = pc.fMomU[f], pc.fMomV[f], pc.fMomW[f]
		case 1:
			my, mz, mx = pc.fMomU[f], pc.fMomV[f], pc.fMomW[f]
		case 2:
			mz, mx, my = pc.fMomU[f], pc.fMomV[f], pc.fMomW[f]
		}
		reg.Face[face][FluxMomX][tIdx] += dt * mx
		reg.Face[face][FluxMomY][tIdx] += dt * my
		reg.Face[face][FluxMomZ][tIdx] += dt * mz
		reg.Face[face][FluxEnergy][tIdx] += dt * pc.fE[f]
		for sp := range pc.fSpecies {
			reg.Face[face][FluxNumBase+sp][tIdx] += dt * pc.fSpecies[sp][f]
		}
	}
	add(faceLow, fLow)
	add(faceHigh, fHigh)
}
