package hydro

import (
	"math"
	"sync"
)

// This file contains the pencil-based dimensionally-split update shared by
// both solvers: gather a 1-D line of cells (with ghosts), reconstruct
// left/right interface states, solve the Riemann problem at every
// interface, apply the conservative update, and scatter back. Fluxes
// crossing the grid's outer faces are accumulated (x dt) into a
// FluxRegister for the AMR flux-correction step.

// Conserved flux component indices within a FluxRegister.
const (
	FluxMass = iota
	FluxMomX
	FluxMomY
	FluxMomZ
	FluxEnergy
	FluxNumBase // species fluxes follow
)

// FluxRegister accumulates time-integrated conserved fluxes through the six
// outer faces of a grid. Face order: x-, x+, y-, y+, z-, z+. Each entry is
// indexed [field][transverseCell]; the transverse index is j+Ny*k for x
// faces, i+Nx*k for y faces, i+Nx*j for z faces.
type FluxRegister struct {
	Nx, Ny, Nz int
	NFields    int
	Face       [6][][]float64
}

// NewFluxRegister allocates a zeroed register for a grid of the given
// active size with nspecies advected species.
func NewFluxRegister(nx, ny, nz, nspecies int) *FluxRegister {
	r := &FluxRegister{Nx: nx, Ny: ny, Nz: nz, NFields: FluxNumBase + nspecies}
	sizes := [6]int{ny * nz, ny * nz, nx * nz, nx * nz, nx * ny, nx * ny}
	for f := 0; f < 6; f++ {
		r.Face[f] = make([][]float64, r.NFields)
		for q := range r.Face[f] {
			r.Face[f][q] = make([]float64, sizes[f])
		}
	}
	return r
}

// Zero clears all accumulated fluxes.
func (r *FluxRegister) Zero() {
	for f := 0; f < 6; f++ {
		for q := range r.Face[f] {
			clear(r.Face[f][q])
		}
	}
}

// Solver selects the reconstruction/Riemann combination.
type Solver int

const (
	// SolverPPM is the piecewise parabolic method with an HLLC Riemann
	// solver — the primary solver of the paper.
	SolverPPM Solver = iota
	// SolverFD is the robust finite-difference alternative (ZEUS role):
	// piecewise-linear van Leer reconstruction with the very dissipative
	// Rusanov flux.
	SolverFD
)

// String implements fmt.Stringer.
func (s Solver) String() string {
	switch s {
	case SolverPPM:
		return "ppm"
	case SolverFD:
		return "fd"
	}
	return "unknown"
}

// pencil holds one line of primitives (with ghosts) during a sweep.
// Pencil index p corresponds to active cell p-ng; interface index f lies
// between pencil cells f-1 and f.
type pencil struct {
	n, ng           int
	rho, u, v, w, p []float64
	eint            []float64
	et              []float64 // specific total energy (conserved carrier)
	species         [][]float64
	// interface flux arrays, length tot+1
	fMass, fMomU, fMomV, fMomW, fE []float64
	fEint                          []float64
	fSpecies                       [][]float64
	uStar                          []float64
	// reconstruction scratch
	ql, qr []float64 // per-interface left/right states
	faceV  []float64 // 4th-order face values
	slope  []float64 // per-cell monotonized central slope (shared by all faces)
	cellL  []float64 // monotonized parabola left edge per cell
	cellR  []float64 // monotonized parabola right edge per cell
	// parabola moments for the shared (per-passive-variable) scratch:
	// dq = cr-cl and q6 = 6(q - (cl+cr)/2), hoisted so the repeated
	// avgLeft/avgRight evaluations stop recomputing them per call
	cellDq, cellQ6 []float64
	// upwind domains of dependence sigma = clamp01(±u dtdx) per interface,
	// shared by every contact-riding variable
	sigR, sigL []float64
	// PPM parabolae for the acoustic variables (rho, u, p), with moments
	paRhoL, paRhoR, paRhoDq, paRhoQ6 []float64
	paUL, paUR, paUDq, paUQ6         []float64
	paPL, paPR, paPDq, paPQ6         []float64
	// per-interface reconstructed states for all variables:
	// rows 0=rho 1=u 2=v 3=w 4=p 5=eint 6..=species
	stL, stR [][]float64
}

func newPencil(n, ng, nspecies int) *pencil {
	tot := n + 2*ng
	p := &pencil{
		n: n, ng: ng,
		rho: make([]float64, tot), u: make([]float64, tot),
		v: make([]float64, tot), w: make([]float64, tot),
		p: make([]float64, tot), eint: make([]float64, tot),
		et:    make([]float64, tot),
		fMass: make([]float64, tot+1), fMomU: make([]float64, tot+1),
		fMomV: make([]float64, tot+1), fMomW: make([]float64, tot+1),
		fE: make([]float64, tot+1), fEint: make([]float64, tot+1),
		uStar: make([]float64, tot+1),
		ql:    make([]float64, tot+1), qr: make([]float64, tot+1),
		faceV: make([]float64, tot+1), slope: make([]float64, tot),
		cellL: make([]float64, tot), cellR: make([]float64, tot),
		cellDq: make([]float64, tot), cellQ6: make([]float64, tot),
		sigR: make([]float64, tot+1), sigL: make([]float64, tot+1),
		paRhoL: make([]float64, tot), paRhoR: make([]float64, tot),
		paRhoDq: make([]float64, tot), paRhoQ6: make([]float64, tot),
		paUL: make([]float64, tot), paUR: make([]float64, tot),
		paUDq: make([]float64, tot), paUQ6: make([]float64, tot),
		paPL: make([]float64, tot), paPR: make([]float64, tot),
		paPDq: make([]float64, tot), paPQ6: make([]float64, tot),
	}
	for s := 0; s < nspecies; s++ {
		p.species = append(p.species, make([]float64, tot))
		p.fSpecies = append(p.fSpecies, make([]float64, tot+1))
	}
	nvar := 6 + nspecies
	p.stL = make([][]float64, nvar)
	p.stR = make([][]float64, nvar)
	for v := 0; v < nvar; v++ {
		p.stL[v] = make([]float64, tot+1)
		p.stR[v] = make([]float64, tot+1)
	}
	return p
}

// pencilPools recycles pencils across sweep calls, one sync.Pool per
// pencil shape (an AMR run sweeps many non-cubic subgrids, so the three
// sweep directions alternate shapes; a single untyped pool would thrash).
// One sweep over an N³ grid used to allocate ~30 slices per call, now
// amortized to zero in steady state.
var pencilPools sync.Map // pencilKey -> *sync.Pool

type pencilKey struct{ n, ng, nspecies int }

func getPencil(n, ng, nspecies int) *pencil {
	key := pencilKey{n, ng, nspecies}
	if p, ok := pencilPools.Load(key); ok {
		if v := p.(*sync.Pool).Get(); v != nil {
			return v.(*pencil)
		}
	}
	return newPencil(n, ng, nspecies)
}

func putPencil(pc *pencil) {
	key := pencilKey{pc.n, pc.ng, len(pc.species)}
	p, ok := pencilPools.Load(key)
	if !ok {
		p, _ = pencilPools.LoadOrStore(key, &sync.Pool{})
	}
	p.(*sync.Pool).Put(pc)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// reconPLM fills pc.ql/pc.qr with piecewise-linear van Leer states (the FD
// solver's reconstruction).
func (pc *pencil) reconPLM(q []float64) {
	tot := pc.n + 2*pc.ng
	for f := 2; f <= tot-2; f++ {
		i := f - 1
		pc.ql[f] = q[i] + 0.5*vanLeerSlope(q[i-1], q[i], q[i+1])
		pc.qr[f] = q[f] - 0.5*vanLeerSlope(q[f-1], q[f], q[f+1])
	}
}

// reconParabola computes the monotonized PPM parabola (left edge, right
// edge) for every cell of q, storing into cl/cr (CW84 steps 1-2). The
// monotonized central slope of each cell is computed once into pc.slope and
// shared by the two faces that reference it — the fused per-face form
// (ppmInterface in earlier revisions) evaluated every slope twice.
func (pc *pencil) reconParabola(q, cl, cr []float64) {
	tot := pc.n + 2*pc.ng
	sl := pc.slope
	for i := 1; i <= tot-2; i++ {
		sl[i] = mcSlope(q[i-1], q[i], q[i+1])
	}
	// 4th-order interface value at face f between cells f-1 and f
	// (CW84 eq. 1.6).
	fv := pc.faceV
	for f := 2; f <= tot-2; f++ {
		fv[f] = q[f-1] + 0.5*(q[f]-q[f-1]) - (sl[f]-sl[f-1])/6
	}
	for i := 2; i <= tot-3; i++ {
		cl[i], cr[i] = ppmMonotonize(q[i], fv[i], fv[i+1])
	}
}

// parabolaMoments hoists the two per-cell parabola moments used by every
// avgLeft/avgRight evaluation: dq = cr-cl and q6 = 6(q - (cl+cr)/2)
// (the operands of CW84 eq. 1.12). The acoustic tracing evaluates the same
// cell's average up to six times per interface; precomputing the moments
// keeps those evaluations to a handful of flops each.
func parabolaMoments(q, cl, cr, dq, q6 []float64, tot int) {
	for i := 2; i <= tot-3; i++ {
		dq[i] = cr[i] - cl[i]
		q6[i] = 6 * (q[i] - 0.5*(cl[i]+cr[i]))
	}
}

// avgRight returns the parabola average over [1-sigma, 1] of cell i (the
// domain of dependence of a right-moving wave reaching the cell's right
// face), CW84 eq. 1.12, from precomputed moments.
func avgRight(cr, dq, q6 []float64, i int, sigma float64) float64 {
	return cr[i] - 0.5*sigma*(dq[i]-(1-2.0/3.0*sigma)*q6[i])
}

// avgLeft returns the parabola average over [0, sigma] of cell i (domain of
// dependence of a left-moving wave reaching the cell's left face).
func avgLeft(cl, dq, q6 []float64, i int, sigma float64) float64 {
	return cl[i] + 0.5*sigma*(dq[i]+(1-2.0/3.0*sigma)*q6[i])
}

func vanLeerSlope(l, c, r float64) float64 {
	dl := c - l
	dr := r - c
	if dl*dr <= 0 {
		return 0
	}
	return 2 * dl * dr / (dl + dr)
}

// mcSlope is the monotonized central-difference slope (CW84 eq. 1.8). The
// magnitude selection is the branch-free builtin min over intrinsic Abs
// (math.Min compiled to a function call on amd64; the builtin does not).
// The final sign test stays a branch: copysign(m, d) would flip the sign
// when d underflows to -0, where this form must return +m to stay
// bit-identical with the historical limiter (see TestLimiterBitwise*).
func mcSlope(l, c, r float64) float64 {
	d := 0.5 * (r - l)
	dl := 2 * (c - l)
	dr := 2 * (r - c)
	if dl*dr <= 0 {
		return 0
	}
	m := min(math.Abs(d), math.Abs(dl), math.Abs(dr))
	if d < 0 {
		return -m
	}
	return m
}

// ppmMonotonize applies the PPM parabola limiter (CW84 eq. 1.10).
func ppmMonotonize(q, lft, rgt float64) (float64, float64) {
	if (rgt-q)*(q-lft) <= 0 {
		return q, q
	}
	dq := rgt - lft
	t := dq * (q - 0.5*(lft+rgt))
	lim := dq * dq / 6
	if t > lim {
		lft = 3*q - 2*rgt
	} else if -lim > t {
		rgt = 3*q - 2*lft
	}
	return lft, rgt
}
