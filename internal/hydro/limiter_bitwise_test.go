package hydro

import (
	"math"
	"math/rand"
	"testing"
)

// These property tests pin the vectorization-friendly limiter rewrites to
// the original branchy forms bit for bit. The reference implementations
// below are verbatim copies of the seed revision's helpers (pre-rewrite);
// every rewrite in sweep.go must agree with them on every float64 input we
// can throw at it — including signed zeros, subnormals and huge magnitudes
// (NaN-free: a NaN in a primitive is already a solver failure upstream).

// refMcSlope is the seed's mcSlope: math.Min/math.Abs call chain.
func refMcSlope(l, c, r float64) float64 {
	d := 0.5 * (r - l)
	dl := 2 * (c - l)
	dr := 2 * (r - c)
	if dl*dr <= 0 {
		return 0
	}
	m := math.Min(math.Abs(d), math.Min(math.Abs(dl), math.Abs(dr)))
	if d < 0 {
		return -m
	}
	return m
}

// refPpmMonotonize is the seed's ppmMonotonize with dq*dq/6 recomputed per
// comparison.
func refPpmMonotonize(q, lft, rgt float64) (float64, float64) {
	if (rgt-q)*(q-lft) <= 0 {
		return q, q
	}
	dq := rgt - lft
	t := dq * (q - 0.5*(lft+rgt))
	if t > dq*dq/6 {
		lft = 3*q - 2*rgt
	} else if -dq*dq/6 > t {
		rgt = 3*q - 2*lft
	}
	return lft, rgt
}

// refPpmInterface is the seed's fused 4th-order face value, which computed
// both neighbouring slopes per face instead of sharing them.
func refPpmInterface(qm2, qm1, qp1, qp2 float64) float64 {
	d1 := refMcSlope(qm2, qm1, qp1)
	d2 := refMcSlope(qm1, qp1, qp2)
	return qm1 + 0.5*(qp1-qm1) - (d2-d1)/6
}

// refAvgRight/refAvgLeft are the seed's parabola averages with the moments
// dq and q6 recomputed inline on every call.
func refAvgRight(q, cl, cr []float64, i int, sigma float64) float64 {
	dq := cr[i] - cl[i]
	q6 := 6 * (q[i] - 0.5*(cl[i]+cr[i]))
	return cr[i] - 0.5*sigma*(dq-(1-2.0/3.0*sigma)*q6)
}

func refAvgLeft(q, cl, cr []float64, i int, sigma float64) float64 {
	dq := cr[i] - cl[i]
	q6 := 6 * (q[i] - 0.5*(cl[i]+cr[i]))
	return cl[i] + 0.5*sigma*(dq+(1-2.0/3.0*sigma)*q6)
}

// sameBits reports float64 identity including the sign of zero.
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// awkwardFloats is the deterministic pool of edge-case values mixed into
// every randomized draw.
var awkwardFloats = []float64{
	0, math.Copysign(0, -1), // ±0
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64, // subnormal edge
	1e-310, -1e-310, // mid-subnormal
	math.MaxFloat64 / 4, -math.MaxFloat64 / 4, // huge but overflow-safe under *2
	1e-20, -1e-20, 1, -1, 0.5, -0.5, 3, -3,
}

// randAwkward draws from the edge pool ~25% of the time, otherwise a
// random sign/exponent/mantissa float spanning subnormal to ~1e30.
func randAwkward(rng *rand.Rand) float64 {
	if rng.Intn(4) == 0 {
		return awkwardFloats[rng.Intn(len(awkwardFloats))]
	}
	m := rng.Float64()*2 - 1
	exp := rng.Intn(100) - 60 // 1e-60 .. 1e+39, forced subnormal sometimes below
	v := m * math.Pow(10, float64(exp))
	if rng.Intn(16) == 0 {
		v *= 1e-300 // push into the subnormal range
	}
	return v
}

func TestLimiterBitwiseMcSlope(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for it := 0; it < 200000; it++ {
		l, c, r := randAwkward(rng), randAwkward(rng), randAwkward(rng)
		got, want := mcSlope(l, c, r), refMcSlope(l, c, r)
		if !sameBits(got, want) {
			t.Fatalf("mcSlope(%x, %x, %x) = %x, seed form gives %x", l, c, r, got, want)
		}
	}
	// The documented copysign hazard: d underflowing to -0 must yield +m.
	// (-0 reproduces d = 0.5*(r-l) = -0 with monotone dl, dr > 0.)
	sub := math.SmallestNonzeroFloat64
	if got := mcSlope(sub, sub, sub); !sameBits(got, refMcSlope(sub, sub, sub)) {
		t.Fatal("mcSlope diverges on the subnormal fixed point")
	}
}

func TestLimiterBitwisePpmMonotonize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for it := 0; it < 200000; it++ {
		q, lft, rgt := randAwkward(rng), randAwkward(rng), randAwkward(rng)
		gl, gr := ppmMonotonize(q, lft, rgt)
		wl, wr := refPpmMonotonize(q, lft, rgt)
		if !sameBits(gl, wl) || !sameBits(gr, wr) {
			t.Fatalf("ppmMonotonize(%x, %x, %x) = (%x, %x), seed form gives (%x, %x)",
				q, lft, rgt, gl, gr, wl, wr)
		}
	}
}

func TestLimiterBitwiseParabolaAverages(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 8
	q := make([]float64, n)
	cl := make([]float64, n)
	cr := make([]float64, n)
	dq := make([]float64, n)
	q6 := make([]float64, n)
	for it := 0; it < 20000; it++ {
		for i := range q {
			q[i], cl[i], cr[i] = randAwkward(rng), randAwkward(rng), randAwkward(rng)
		}
		parabolaMoments(q, cl, cr, dq, q6, n)
		for i := 2; i <= n-3; i++ {
			sigma := clamp01(randAwkward(rng))
			if gr, wr := avgRight(cr, dq, q6, i, sigma), refAvgRight(q, cl, cr, i, sigma); !sameBits(gr, wr) {
				t.Fatalf("avgRight i=%d sigma=%v: %x vs seed %x", i, sigma, gr, wr)
			}
			if gl, wl := avgLeft(cl, dq, q6, i, sigma), refAvgLeft(q, cl, cr, i, sigma); !sameBits(gl, wl) {
				t.Fatalf("avgLeft i=%d sigma=%v: %x vs seed %x", i, sigma, gl, wl)
			}
		}
	}
}

// TestLimiterBitwiseReconParabola drives the fused slope-sharing
// reconstruction against the seed pipeline (per-face ppmInterface, then
// monotonize) over whole random pencils.
func TestLimiterBitwiseReconParabola(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, ng = 12, NGhost
	pc := newPencil(n, ng, 0)
	tot := n + 2*ng
	q := make([]float64, tot)
	cl := make([]float64, tot)
	cr := make([]float64, tot)
	for it := 0; it < 5000; it++ {
		for i := range q {
			q[i] = randAwkward(rng)
		}
		pc.reconParabola(q, cl, cr)
		for i := 2; i <= tot-3; i++ {
			fl := refPpmInterface(q[i-2], q[i-1], q[i], q[i+1])
			fr := refPpmInterface(q[i-1], q[i], q[i+1], q[i+2])
			wl, wr := refPpmMonotonize(q[i], fl, fr)
			if !sameBits(cl[i], wl) || !sameBits(cr[i], wr) {
				t.Fatalf("reconParabola cell %d: (%x, %x) vs seed (%x, %x)", i, cl[i], cr[i], wl, wr)
			}
		}
	}
}

// TestFloorBitwiseBuiltinMax pins the floor rewrites (max(x, floor) for
// `if x < floor { x = floor }`) for the strictly positive floors the
// solver uses (DefaultParams: 1e-20). With floor > 0 the two forms agree
// on every input including -0 and subnormals; a zero floor would NOT be
// safe (max(-0, +0) = +0 while the branch keeps -0), which is why
// Params floors must stay positive.
func TestFloorBitwiseBuiltinMax(t *testing.T) {
	branchy := func(x, floor float64) float64 {
		if x < floor {
			return floor
		}
		return x
	}
	rng := rand.New(rand.NewSource(5))
	floors := []float64{1e-20, DefaultParams().FloorRho, DefaultParams().FloorEint, 1e-300, 1.5}
	for it := 0; it < 200000; it++ {
		x := randAwkward(rng)
		floor := floors[rng.Intn(len(floors))]
		if got, want := max(x, floor), branchy(x, floor); !sameBits(got, want) {
			t.Fatalf("max(%x, %x) = %x, branchy floor gives %x", x, floor, got, want)
		}
	}
}

// TestMinMaxBitwiseBuiltin pins the Riemann-solver rewrites of
// math.Min/math.Max to the builtins over awkward values (the builtins
// share the stdlib semantics exactly — including min(-0, +0) = -0 — but
// compile to branch-free instructions).
func TestMinMaxBitwiseBuiltin(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for it := 0; it < 200000; it++ {
		a, b := randAwkward(rng), randAwkward(rng)
		if got, want := min(a, b), math.Min(a, b); !sameBits(got, want) {
			t.Fatalf("min(%x, %x) = %x, math.Min gives %x", a, b, got, want)
		}
		if got, want := max(a, b), math.Max(a, b); !sameBits(got, want) {
			t.Fatalf("max(%x, %x) = %x, math.Max gives %x", a, b, got, want)
		}
	}
}
