package hydro

import "math"

// Riemann solvers. Interface states are primitive: (rho, u, v, w, p) with
// passive scalars (eint and species mass fractions). Fluxes are returned
// for the conserved set (rho, rho*u, rho*v, rho*w, E) plus the passives as
// rho*q advected with the mass flux.

// iface bundles the reconstructed primitive states at one interface.
type iface struct {
	rhoL, uL, vL, wL, pL float64
	rhoR, uR, vR, wR, pR float64
}

// ifaceFlux is the conserved flux through one interface, plus the
// advection velocity used for upwinding passives and the pdV term.
type ifaceFlux struct {
	mass, momU, momV, momW, energy float64
	uStar                          float64
	// passive upwind sign: >0 means take left state, <0 right
	upwind float64
}

// hllc solves the Riemann problem with the HLLC approximate solver
// (Toro 1994), which restores the contact wave missing from HLL and is the
// standard pairing for PPM-class schemes.
func hllc(s iface, gamma float64) ifaceFlux {
	cL := math.Sqrt(gamma * s.pL / s.rhoL)
	cR := math.Sqrt(gamma * s.pR / s.rhoR)
	sL := min(s.uL-cL, s.uR-cR)
	sR := max(s.uL+cL, s.uR+cR)

	eL := s.pL/(gamma-1) + 0.5*s.rhoL*(s.uL*s.uL+s.vL*s.vL+s.wL*s.wL)
	eR := s.pR/(gamma-1) + 0.5*s.rhoR*(s.uR*s.uR+s.vR*s.vR+s.wR*s.wR)

	fL := eulerFlux(s.rhoL, s.uL, s.vL, s.wL, s.pL, eL)
	fR := eulerFlux(s.rhoR, s.uR, s.vR, s.wR, s.pR, eR)

	if sL >= 0 {
		fL.uStar = s.uL
		fL.upwind = 1
		return fL
	}
	if sR <= 0 {
		fR.uStar = s.uR
		fR.upwind = -1
		return fR
	}

	num := s.pR - s.pL + s.rhoL*s.uL*(sL-s.uL) - s.rhoR*s.uR*(sR-s.uR)
	den := s.rhoL*(sL-s.uL) - s.rhoR*(sR-s.uR)
	var sStar float64
	if den != 0 {
		sStar = num / den
	}

	if sStar >= 0 {
		// Left star region.
		rhoS := s.rhoL * (sL - s.uL) / (sL - sStar)
		f := ifaceFlux{
			mass: fL.mass + sL*(rhoS-s.rhoL),
			momU: fL.momU + sL*(rhoS*sStar-s.rhoL*s.uL),
			momV: fL.momV + sL*(rhoS*s.vL-s.rhoL*s.vL),
			momW: fL.momW + sL*(rhoS*s.wL-s.rhoL*s.wL),
		}
		eS := rhoS * (eL/s.rhoL + (sStar-s.uL)*(sStar+s.pL/(s.rhoL*(sL-s.uL))))
		f.energy = fL.energy + sL*(eS-eL)
		f.uStar = sStar
		f.upwind = 1
		return f
	}
	// Right star region.
	rhoS := s.rhoR * (sR - s.uR) / (sR - sStar)
	f := ifaceFlux{
		mass: fR.mass + sR*(rhoS-s.rhoR),
		momU: fR.momU + sR*(rhoS*sStar-s.rhoR*s.uR),
		momV: fR.momV + sR*(rhoS*s.vR-s.rhoR*s.vR),
		momW: fR.momW + sR*(rhoS*s.wR-s.rhoR*s.wR),
	}
	eS := rhoS * (eR/s.rhoR + (sStar-s.uR)*(sStar+s.pR/(s.rhoR*(sR-s.uR))))
	f.energy = fR.energy + sR*(eS-eR)
	f.uStar = sStar
	f.upwind = -1
	return f
}

// rusanov is the local Lax-Friedrichs flux: maximally dissipative but
// positivity-preserving — the "robust" half of the paper's solver pair.
func rusanov(s iface, gamma float64) ifaceFlux {
	cL := math.Sqrt(gamma * s.pL / s.rhoL)
	cR := math.Sqrt(gamma * s.pR / s.rhoR)
	smax := max(math.Abs(s.uL)+cL, math.Abs(s.uR)+cR)

	eL := s.pL/(gamma-1) + 0.5*s.rhoL*(s.uL*s.uL+s.vL*s.vL+s.wL*s.wL)
	eR := s.pR/(gamma-1) + 0.5*s.rhoR*(s.uR*s.uR+s.vR*s.vR+s.wR*s.wR)
	fL := eulerFlux(s.rhoL, s.uL, s.vL, s.wL, s.pL, eL)
	fR := eulerFlux(s.rhoR, s.uR, s.vR, s.wR, s.pR, eR)

	f := ifaceFlux{
		mass:   0.5*(fL.mass+fR.mass) - 0.5*smax*(s.rhoR-s.rhoL),
		momU:   0.5*(fL.momU+fR.momU) - 0.5*smax*(s.rhoR*s.uR-s.rhoL*s.uL),
		momV:   0.5*(fL.momV+fR.momV) - 0.5*smax*(s.rhoR*s.vR-s.rhoL*s.vL),
		momW:   0.5*(fL.momW+fR.momW) - 0.5*smax*(s.rhoR*s.wR-s.rhoL*s.wL),
		energy: 0.5*(fL.energy+fR.energy) - 0.5*smax*(eR-eL),
	}
	f.uStar = 0.5 * (s.uL + s.uR)
	f.upwind = f.mass
	return f
}

func eulerFlux(rho, u, v, w, p, e float64) ifaceFlux {
	return ifaceFlux{
		mass:   rho * u,
		momU:   rho*u*u + p,
		momV:   rho * u * v,
		momW:   rho * u * w,
		energy: u * (e + p),
	}
}
