package hydro

import (
	"math"
	"testing"
)

// fillUniform sets a constant state everywhere (including ghosts).
func fillUniform(s *State, rho, vx, vy, vz, eint float64) {
	s.Rho.Fill(rho)
	s.Vx.Fill(vx)
	s.Vy.Fill(vy)
	s.Vz.Fill(vz)
	s.Eint.Fill(eint)
	for i := range s.Etot.Data {
		s.Etot.Data[i] = eint + 0.5*(vx*vx+vy*vy+vz*vz)
	}
}

func periodicBC(s *State) {
	for _, f := range s.Fields() {
		f.ApplyPeriodicBC()
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.Gamma = 0.9
	if err := bad.Validate(); err == nil {
		t.Error("gamma<1 should fail")
	}
	bad = DefaultParams()
	bad.CFL = 0
	if err := bad.Validate(); err == nil {
		t.Error("CFL=0 should fail")
	}
}

func TestUniformStateIsSteady(t *testing.T) {
	for _, solver := range []Solver{SolverPPM, SolverFD} {
		p := DefaultParams()
		s := NewState(8, 8, 8, 1)
		fillUniform(s, 1.0, 0.3, -0.2, 0.1, 2.0)
		s.Species[0].Fill(0.25)
		dt := Timestep(s, 1.0/8, p)
		for step := 0; step < 3; step++ {
			Step3D(s, 1.0/8, dt, p, solver, step, periodicBC, nil, nil)
		}
		for k := 0; k < 8; k++ {
			for j := 0; j < 8; j++ {
				for i := 0; i < 8; i++ {
					if math.Abs(s.Rho.At(i, j, k)-1) > 1e-12 {
						t.Fatalf("%v: uniform density perturbed at (%d,%d,%d): %v", solver, i, j, k, s.Rho.At(i, j, k))
					}
					if math.Abs(s.Vx.At(i, j, k)-0.3) > 1e-12 {
						t.Fatalf("%v: uniform vx perturbed: %v", solver, s.Vx.At(i, j, k))
					}
					if math.Abs(s.Species[0].At(i, j, k)-0.25) > 1e-12 {
						t.Fatalf("%v: uniform species perturbed", solver)
					}
				}
			}
		}
	}
}

func TestMassConservationPeriodic(t *testing.T) {
	for _, solver := range []Solver{SolverPPM, SolverFD} {
		p := DefaultParams()
		n := 16
		s := NewState(n, n, n, 0)
		fillUniform(s, 1.0, 0, 0, 0, 1.0)
		// Gaussian density + pressure pulse.
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					dx := float64(i-n/2) / float64(n)
					dy := float64(j-n/2) / float64(n)
					dz := float64(k-n/2) / float64(n)
					r2 := dx*dx + dy*dy + dz*dz
					s.Rho.Set(i, j, k, 1+2*math.Exp(-r2*50))
					s.Eint.Set(i, j, k, 1+3*math.Exp(-r2*50))
					s.Etot.Set(i, j, k, s.Eint.At(i, j, k))
				}
			}
		}
		periodicBC(s)
		dxCell := 1.0 / float64(n)
		m0 := s.TotalMass(dxCell)
		e0 := s.TotalEnergy(dxCell)
		for step := 0; step < 8; step++ {
			dt := Timestep(s, dxCell, p)
			Step3D(s, dxCell, dt, p, solver, step, periodicBC, nil, nil)
		}
		m1 := s.TotalMass(dxCell)
		e1 := s.TotalEnergy(dxCell)
		if rel := math.Abs(m1-m0) / m0; rel > 1e-12 {
			t.Errorf("%v: mass drift %e", solver, rel)
		}
		if rel := math.Abs(e1-e0) / e0; rel > 1e-10 {
			t.Errorf("%v: energy drift %e", solver, rel)
		}
	}
}

// sodInit sets the classic Sod (1978) shock tube along x.
func sodInit(s *State, gamma float64) {
	n := s.Rho.Nx
	for k := 0; k < s.Rho.Nz; k++ {
		for j := 0; j < s.Rho.Ny; j++ {
			for i := -NGhost; i < n+NGhost; i++ {
				rho, p := 1.0, 1.0
				if i >= n/2 {
					rho, p = 0.125, 0.1
				}
				e := p / ((gamma - 1) * rho)
				s.Rho.Set(i, j, k, rho)
				s.Eint.Set(i, j, k, e)
				s.Etot.Set(i, j, k, e)
			}
		}
	}
}

func outflowBC(s *State) {
	for _, f := range s.Fields() {
		f.ApplyOutflowBC()
	}
}

func TestSodShockTube(t *testing.T) {
	// Run to t=0.2 on a 128-cell tube and compare with the exact Riemann
	// solution at selected points: post-shock density ~0.2656, contact
	// density ~0.4263 for the standard Sod setup (gamma=1.4).
	for _, solver := range []Solver{SolverPPM, SolverFD} {
		p := DefaultParams()
		p.Gamma = 1.4
		n := 128
		s := NewState(n, 4, 4, 0)
		s.Vx.Fill(0)
		s.Vy.Fill(0)
		s.Vz.Fill(0)
		sodInit(s, p.Gamma)
		dxCell := 1.0 / float64(n)
		tEnd := 0.2
		tNow := 0.0
		step := 0
		for tNow < tEnd {
			dt := Timestep(s, dxCell, p)
			if tNow+dt > tEnd {
				dt = tEnd - tNow
			}
			Step3D(s, dxCell, dt, p, solver, step, outflowBC, nil, nil)
			tNow += dt
			step++
		}
		// Sample the mid-plane profile.
		at := func(i int) float64 { return s.Rho.At(i, 2, 2) }
		// Exact solution landmarks at t=0.2 (x0=0.5):
		// rarefaction tail x~0.485, contact x~0.685, shock x~0.850.
		// Post-shock plateau (x in [0.7,0.84]) density = 0.2656.
		postShock := at(int(0.78 * float64(n)))
		if math.Abs(postShock-0.2656) > 0.03 {
			t.Errorf("%v: post-shock density %v, want ~0.2656", solver, postShock)
		}
		// Between contact and shock lies the denser plateau 0.4263
		// on the left of the contact? (left of contact: 0.4263)
		contactLeft := at(int(0.60 * float64(n)))
		if math.Abs(contactLeft-0.4263) > 0.04 {
			t.Errorf("%v: contact-left density %v, want ~0.4263", solver, contactLeft)
		}
		// Undisturbed ends.
		if math.Abs(at(2)-1.0) > 1e-6 {
			t.Errorf("%v: left end disturbed: %v", solver, at(2))
		}
		if math.Abs(at(n-3)-0.125) > 1e-6 {
			t.Errorf("%v: right end disturbed: %v", solver, at(n-3))
		}
		// Monotonic shock: no negative densities anywhere.
		for i := 0; i < n; i++ {
			if at(i) <= 0 {
				t.Fatalf("%v: non-positive density at %d", solver, i)
			}
		}
	}
}

func TestSodSymmetryAcrossDirections(t *testing.T) {
	// The same 1-D problem run along x, y, z must give identical profiles
	// (dimensional splitting must not break axis symmetry for 1-D data).
	p := DefaultParams()
	p.Gamma = 1.4
	n := 64
	run := func(dir int) []float64 {
		var s *State
		switch dir {
		case 0:
			s = NewState(n, 4, 4, 0)
		case 1:
			s = NewState(4, n, 4, 0)
		case 2:
			s = NewState(4, 4, n, 0)
		}
		for k := -NGhost; k < s.Rho.Nz+NGhost; k++ {
			for j := -NGhost; j < s.Rho.Ny+NGhost; j++ {
				for i := -NGhost; i < s.Rho.Nx+NGhost; i++ {
					a := i
					if dir == 1 {
						a = j
					} else if dir == 2 {
						a = k
					}
					rho, pr := 1.0, 1.0
					if a >= n/2 {
						rho, pr = 0.125, 0.1
					}
					e := pr / ((p.Gamma - 1) * rho)
					s.Rho.Set(i, j, k, rho)
					s.Eint.Set(i, j, k, e)
					s.Etot.Set(i, j, k, e)
				}
			}
		}
		dxCell := 1.0 / float64(n)
		tNow := 0.0
		step := 0
		for tNow < 0.1 {
			dt := Timestep(s, dxCell, p)
			if tNow+dt > 0.1 {
				dt = 0.1 - tNow
			}
			Step3D(s, dxCell, dt, p, SolverPPM, step, outflowBC, nil, nil)
			tNow += dt
			step++
		}
		out := make([]float64, n)
		for a := 0; a < n; a++ {
			switch dir {
			case 0:
				out[a] = s.Rho.At(a, 2, 2)
			case 1:
				out[a] = s.Rho.At(2, a, 2)
			case 2:
				out[a] = s.Rho.At(2, 2, a)
			}
		}
		return out
	}
	px := run(0)
	py := run(1)
	pz := run(2)
	for i := 0; i < n; i++ {
		if math.Abs(px[i]-py[i]) > 1e-11 || math.Abs(px[i]-pz[i]) > 1e-11 {
			t.Fatalf("direction asymmetry at %d: x=%v y=%v z=%v", i, px[i], py[i], pz[i])
		}
	}
}

func TestPPMSharperThanFD(t *testing.T) {
	// PPM must resolve the Sod contact discontinuity more sharply than
	// the diffusive FD solver: count cells spanning the contact jump.
	p := DefaultParams()
	p.Gamma = 1.4
	n := 128
	width := func(solver Solver) float64 {
		s := NewState(n, 4, 4, 0)
		sodInit(s, p.Gamma)
		dxCell := 1.0 / float64(n)
		tNow := 0.0
		step := 0
		for tNow < 0.2 {
			dt := Timestep(s, dxCell, p)
			if tNow+dt > 0.2 {
				dt = 0.2 - tNow
			}
			Step3D(s, dxCell, dt, p, solver, step, outflowBC, nil, nil)
			tNow += dt
			step++
		}
		// Contact: density drops 0.4263 -> 0.2656 around x~0.685. A
		// sharper scheme has a steeper maximum gradient in that window.
		steep := 0.0
		for i := n / 2; i < int(0.8*float64(n))-1; i++ {
			if g := math.Abs(s.Rho.At(i+1, 2, 2) - s.Rho.At(i, 2, 2)); g > steep {
				steep = g
			}
		}
		return steep
	}
	wPPM := width(SolverPPM)
	wFD := width(SolverFD)
	if wPPM <= wFD {
		t.Errorf("PPM contact steepness %v not sharper than FD %v", wPPM, wFD)
	}
}

func TestSpeciesAdvection(t *testing.T) {
	// A passive species advected by uniform flow moves with the flow and
	// conserves total species mass.
	p := DefaultParams()
	n := 32
	s := NewState(n, 4, 4, 1)
	fillUniform(s, 1.0, 1.0, 0, 0, 100.0) // very subsonic flow (smooth advection)
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < n; i++ {
				x := (float64(i) + 0.5) / float64(n)
				s.Species[0].Set(i, j, k, 0.5+0.4*math.Sin(2*math.Pi*x))
			}
		}
	}
	periodicBC(s)
	dxCell := 1.0 / float64(n)
	total0 := s.Species[0].SumActive()
	// Advect for one full crossing time (t=1).
	tNow := 0.0
	step := 0
	for tNow < 1.0 {
		dt := Timestep(s, dxCell, p)
		if tNow+dt > 1.0 {
			dt = 1.0 - tNow
		}
		Step3D(s, dxCell, dt, p, SolverPPM, step, periodicBC, nil, nil)
		tNow += dt
		step++
	}
	total1 := s.Species[0].SumActive()
	if math.Abs(total1-total0)/total0 > 1e-10 {
		t.Errorf("species mass drift: %v -> %v", total0, total1)
	}
	// After one period the profile should be close to the initial one.
	var errSum float64
	for i := 0; i < n; i++ {
		x := (float64(i) + 0.5) / float64(n)
		want := 0.5 + 0.4*math.Sin(2*math.Pi*x)
		errSum += math.Abs(s.Species[0].At(i, 2, 2) - want)
	}
	if errSum/float64(n) > 0.1 {
		t.Errorf("species advection error too large: %v", errSum/float64(n))
	}
}

func TestExpansionCooling(t *testing.T) {
	// ApplyExpansion must decay velocities as exp(-H dt) and internal
	// energy as exp(-2 H dt).
	s := NewState(4, 4, 4, 0)
	fillUniform(s, 1, 1.0, 0, 0, 2.0)
	ApplyExpansion(s, 0.5, 1.0)
	wantV := math.Exp(-0.5)
	wantE := 2 * math.Exp(-1.0)
	if math.Abs(s.Vx.At(1, 1, 1)-wantV) > 1e-14 {
		t.Errorf("velocity decay %v, want %v", s.Vx.At(1, 1, 1), wantV)
	}
	if math.Abs(s.Eint.At(1, 1, 1)-wantE) > 1e-14 {
		t.Errorf("energy decay %v, want %v", s.Eint.At(1, 1, 1), wantE)
	}
	// Etot rebuilt consistently.
	wantTot := 0.5*wantV*wantV + wantE
	if math.Abs(s.Etot.At(2, 2, 2)-wantTot) > 1e-14 {
		t.Errorf("etot %v, want %v", s.Etot.At(2, 2, 2), wantTot)
	}
}

func TestKickGravity(t *testing.T) {
	s := NewState(4, 4, 4, 0)
	fillUniform(s, 1, 0.5, 0, 0, 1.0)
	gx := s.Rho.Clone()
	gx.Fill(2.0)
	gy := s.Rho.Clone()
	gy.Fill(0)
	gz := gy.Clone()
	KickGravity(s, gx, gy, gz, 0.25)
	if math.Abs(s.Vx.At(0, 0, 0)-1.0) > 1e-14 {
		t.Errorf("vx after kick %v, want 1.0", s.Vx.At(0, 0, 0))
	}
	// Total energy consistent: etot = eint + v^2/2.
	want := 1.0 + 0.5
	if math.Abs(s.Etot.At(1, 1, 1)-want) > 1e-14 {
		t.Errorf("etot after kick %v, want %v", s.Etot.At(1, 1, 1), want)
	}
}

func TestTimestepScaling(t *testing.T) {
	p := DefaultParams()
	s := NewState(8, 8, 8, 0)
	fillUniform(s, 1, 0, 0, 0, 1.0)
	dt1 := Timestep(s, 1.0/8, p)
	dt2 := Timestep(s, 1.0/16, p)
	if math.Abs(dt1/dt2-2) > 1e-12 {
		t.Errorf("timestep not proportional to dx: %v vs %v", dt1, dt2)
	}
	// Faster gas -> smaller timestep.
	fillUniform(s, 1, 10, 0, 0, 1.0)
	dt3 := Timestep(s, 1.0/8, p)
	if dt3 >= dt1 {
		t.Errorf("timestep did not shrink with velocity")
	}
}

func TestFluxRegisterAccumulation(t *testing.T) {
	// Uniform rightward flow: the x faces must record mass flux rho*u*dt,
	// and opposite faces must match (what enters leaves).
	p := DefaultParams()
	n := 8
	s := NewState(n, n, n, 0)
	fillUniform(s, 2.0, 0.5, 0, 0, 10.0)
	reg := NewFluxRegister(n, n, n, 0)
	dt := 0.001
	Step3D(s, 1.0/float64(n), dt, p, SolverPPM, 0, periodicBC, reg, nil)
	want := 2.0 * 0.5 * dt
	for idx := 0; idx < n*n; idx++ {
		got := reg.Face[0][FluxMass][idx]
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("x- face mass flux %v, want %v", got, want)
		}
		if math.Abs(reg.Face[1][FluxMass][idx]-want) > 1e-12 {
			t.Fatalf("x+ face mass flux mismatch")
		}
		// No flow in y/z.
		if math.Abs(reg.Face[2][FluxMass][idx]) > 1e-12 {
			t.Fatalf("spurious y-face mass flux")
		}
	}
	reg.Zero()
	for f := 0; f < 6; f++ {
		for q := range reg.Face[f] {
			for _, v := range reg.Face[f][q] {
				if v != 0 {
					t.Fatal("Zero() left residue")
				}
			}
		}
	}
}

func TestSolverString(t *testing.T) {
	if SolverPPM.String() != "ppm" || SolverFD.String() != "fd" {
		t.Error("Solver.String broken")
	}
	if Solver(99).String() != "unknown" {
		t.Error("unknown solver string")
	}
}

func BenchmarkStep3DPPM32(b *testing.B) {
	p := DefaultParams()
	s := NewState(32, 32, 32, 0)
	fillUniform(s, 1, 0.1, 0, 0, 1.0)
	periodicBC(s)
	dt := Timestep(s, 1.0/32, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Step3D(s, 1.0/32, dt, p, SolverPPM, i, periodicBC, nil, nil)
	}
}

func BenchmarkStep3DFD32(b *testing.B) {
	p := DefaultParams()
	s := NewState(32, 32, 32, 0)
	fillUniform(s, 1, 0.1, 0, 0, 1.0)
	periodicBC(s)
	dt := Timestep(s, 1.0/32, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Step3D(s, 1.0/32, dt, p, SolverFD, i, periodicBC, nil, nil)
	}
}
