// Package hydro implements the two Euler solvers of the paper (§3.2.1): the
// piecewise parabolic method (PPM) modified for cosmology (Bryan et al.
// 1995) and a robust finite-difference scheme in the spirit of ZEUS (Stone
// & Norman 1992), here realized as a MUSCL/Rusanov scheme — deliberately
// more diffusive and unconditionally robust, providing the paper's
// "double check on any result".
//
// Both solvers are dimensionally split and operate on uniform Cartesian
// grids ("off-the-shelf solvers" running unchanged on every AMR grid). Gas
// is evolved in comoving coordinates: the comoving density has no explicit
// expansion term, while peculiar velocity and internal energy feel the
// expansion drag applied by ApplyExpansion.
//
// The dual-energy formalism tracks the internal energy separately from the
// total energy so that temperatures stay accurate in hypersonic flows
// (kinetic-energy dominated regions), as in the original code.
package hydro

import (
	"fmt"
	"math"

	"repro/internal/mesh"
)

// NGhost is the ghost-zone depth required by the PPM stencil.
const NGhost = 4

// Params carries the solver configuration.
type Params struct {
	Gamma     float64 // adiabatic index (5/3 for primordial gas)
	CFL       float64 // Courant number (0.4-0.5 typical)
	DualEta   float64 // dual-energy selector threshold (0.008 Enzo default)
	FloorRho  float64 // density floor
	FloorEint float64 // specific internal energy floor

	// Workers bounds the goroutines used to sweep pencils concurrently
	// (par conventions: 0 = NumCPU, 1 = serial). Pencils are independent
	// 1-D problems, so results are bitwise identical at any setting.
	// Under the AMR driver leave this 0: the hierarchy plumbs its own
	// Workers budget in (and caps an explicit value by that budget when
	// several grids step concurrently).
	Workers int
}

// DefaultParams returns production defaults matching the original code.
func DefaultParams() Params {
	return Params{
		Gamma:     5.0 / 3.0,
		CFL:       0.4,
		DualEta:   0.008,
		FloorRho:  1e-20,
		FloorEint: 1e-20,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.Gamma <= 1 {
		return fmt.Errorf("hydro: gamma must exceed 1, got %g", p.Gamma)
	}
	if p.CFL <= 0 || p.CFL > 1 {
		return fmt.Errorf("hydro: CFL must be in (0,1], got %g", p.CFL)
	}
	return nil
}

// State is the fluid state on one grid: comoving density, peculiar
// velocities, total and internal specific energies, plus any number of
// advected species densities (the chemistry fields).
type State struct {
	Rho     *mesh.Field3
	Vx      *mesh.Field3
	Vy      *mesh.Field3
	Vz      *mesh.Field3
	Etot    *mesh.Field3 // specific total energy
	Eint    *mesh.Field3 // specific internal energy (dual energy)
	Species []*mesh.Field3
}

// NewState allocates a state with the given active dimensions and NGhost
// ghost zones, plus nspecies advected species fields.
func NewState(nx, ny, nz, nspecies int) *State {
	s := &State{
		Rho:  mesh.NewField3(nx, ny, nz, NGhost),
		Vx:   mesh.NewField3(nx, ny, nz, NGhost),
		Vy:   mesh.NewField3(nx, ny, nz, NGhost),
		Vz:   mesh.NewField3(nx, ny, nz, NGhost),
		Etot: mesh.NewField3(nx, ny, nz, NGhost),
		Eint: mesh.NewField3(nx, ny, nz, NGhost),
	}
	for i := 0; i < nspecies; i++ {
		s.Species = append(s.Species, mesh.NewField3(nx, ny, nz, NGhost))
	}
	return s
}

// Fields returns all fields in canonical order (Rho, Vx, Vy, Vz, Etot,
// Eint, species...), used by the AMR layer for interpolation and boundary
// exchange.
func (s *State) Fields() []*mesh.Field3 {
	f := []*mesh.Field3{s.Rho, s.Vx, s.Vy, s.Vz, s.Etot, s.Eint}
	return append(f, s.Species...)
}

// NumFields returns len(Fields()).
func (s *State) NumFields() int { return 6 + len(s.Species) }

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{
		Rho:  s.Rho.Clone(),
		Vx:   s.Vx.Clone(),
		Vy:   s.Vy.Clone(),
		Vz:   s.Vz.Clone(),
		Etot: s.Etot.Clone(),
		Eint: s.Eint.Clone(),
	}
	for _, sp := range s.Species {
		c.Species = append(c.Species, sp.Clone())
	}
	return c
}

// Pressure returns the pressure at active cell (i,j,k) using the
// dual-energy internal energy.
func (s *State) Pressure(i, j, k int, gamma float64) float64 {
	return (gamma - 1) * s.Rho.At(i, j, k) * s.Eint.At(i, j, k)
}

// SoundSpeed returns the adiabatic sound speed at active cell (i,j,k).
func (s *State) SoundSpeed(i, j, k int, gamma float64) float64 {
	return math.Sqrt(gamma * (gamma - 1) * s.Eint.At(i, j, k))
}

// Timestep returns the CFL-limited hydrodynamic timestep for cell width dx.
func Timestep(s *State, dx float64, p Params) float64 {
	dtInv := 0.0
	for k := 0; k < s.Rho.Nz; k++ {
		for j := 0; j < s.Rho.Ny; j++ {
			for i := 0; i < s.Rho.Nx; i++ {
				c := s.SoundSpeed(i, j, k, p.Gamma)
				v := math.Abs(s.Vx.At(i, j, k)) + math.Abs(s.Vy.At(i, j, k)) + math.Abs(s.Vz.At(i, j, k))
				if r := (v + 3*c) / dx; r > dtInv {
					dtInv = r
				}
			}
		}
	}
	if dtInv == 0 {
		return math.Inf(1)
	}
	return p.CFL * 3 / dtInv
}

// TotalMass returns the total comoving mass on the active region for cell
// volume dx^3.
func (s *State) TotalMass(dx float64) float64 {
	return s.Rho.SumActive() * dx * dx * dx
}

// TotalEnergy returns the total (kinetic+thermal) energy on the active
// region for cell volume dx^3 (using Etot).
func (s *State) TotalEnergy(dx float64) float64 {
	var e float64
	for k := 0; k < s.Rho.Nz; k++ {
		for j := 0; j < s.Rho.Ny; j++ {
			for i := 0; i < s.Rho.Nx; i++ {
				e += s.Rho.At(i, j, k) * s.Etot.At(i, j, k)
			}
		}
	}
	return e * dx * dx * dx
}

// SyncDualEnergy applies the dual-energy selection (Enzo's eta switch): in
// cells where thermal energy is a fraction > eta of total, trust the
// conservative Etot; elsewhere trust the separately advected Eint and
// rebuild Etot from it.
func SyncDualEnergy(s *State, p Params) {
	for k := 0; k < s.Rho.Nz; k++ {
		for j := 0; j < s.Rho.Ny; j++ {
			for i := 0; i < s.Rho.Nx; i++ {
				vx, vy, vz := s.Vx.At(i, j, k), s.Vy.At(i, j, k), s.Vz.At(i, j, k)
				ke := 0.5 * (vx*vx + vy*vy + vz*vz)
				et := s.Etot.At(i, j, k)
				th := et - ke
				if th > p.DualEta*et && th > p.FloorEint {
					s.Eint.Set(i, j, k, th)
				} else {
					ei := s.Eint.At(i, j, k)
					if ei < p.FloorEint {
						ei = p.FloorEint
						s.Eint.Set(i, j, k, ei)
					}
					s.Etot.Set(i, j, k, ke+ei)
				}
			}
		}
	}
}

// ApplyExpansion applies the comoving-coordinate expansion drag over dt:
// dv/dt = -(ȧ/a) v and de/dt = -2(ȧ/a) e (for γ=5/3 the adiabatic
// expansion of a thermal gas), integrated exactly as exponentials.
// adot and a are the expansion rate and factor at the step midpoint.
func ApplyExpansion(s *State, adotOverA, dt float64) {
	fv := math.Exp(-adotOverA * dt)
	fe := math.Exp(-2 * adotOverA * dt)
	n := len(s.Rho.Data)
	for idx := 0; idx < n; idx++ {
		s.Vx.Data[idx] *= fv
		s.Vy.Data[idx] *= fv
		s.Vz.Data[idx] *= fv
	}
	for idx := 0; idx < n; idx++ {
		s.Eint.Data[idx] *= fe
	}
	// Rebuild total energy consistently.
	for idx := 0; idx < n; idx++ {
		vx, vy, vz := s.Vx.Data[idx], s.Vy.Data[idx], s.Vz.Data[idx]
		s.Etot.Data[idx] = 0.5*(vx*vx+vy*vy+vz*vz) + s.Eint.Data[idx]
	}
}

// KickGravity applies a gravitational velocity kick g*dt and the matching
// total-energy update. gx/gy/gz are cell-centered accelerations.
func KickGravity(s *State, gx, gy, gz *mesh.Field3, dt float64) {
	for k := 0; k < s.Rho.Nz; k++ {
		for j := 0; j < s.Rho.Ny; j++ {
			for i := 0; i < s.Rho.Nx; i++ {
				ax, ay, az := gx.At(i, j, k), gy.At(i, j, k), gz.At(i, j, k)
				vx := s.Vx.At(i, j, k)
				vy := s.Vy.At(i, j, k)
				vz := s.Vz.At(i, j, k)
				nvx, nvy, nvz := vx+ax*dt, vy+ay*dt, vz+az*dt
				s.Vx.Set(i, j, k, nvx)
				s.Vy.Set(i, j, k, nvy)
				s.Vz.Set(i, j, k, nvz)
				// Kinetic energy change at fixed Eint.
				dke := 0.5 * (nvx*nvx + nvy*nvy + nvz*nvz - vx*vx - vy*vy - vz*vz)
				s.Etot.Add(i, j, k, dke)
			}
		}
	}
}
