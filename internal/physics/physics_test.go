package physics

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cosmology"
	"repro/internal/ep128"
	"repro/internal/hydro"
	"repro/internal/nbody"
	"repro/internal/units"
)

func ep(x float64) ep128.Dd { return ep128.FromFloat64(x) }

func TestDefaultOperatorsOrder(t *testing.T) {
	ops := DefaultOperators()
	want := []string{"gravity.kick", "hydro", "gravity.kick", "nbody", "expansion", "chemistry"}
	got := NewPipeline(ops...).Names()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("operator order %v, want %v", got, want)
	}
	// The two half-kicks are the same instance (one kick of dt/2 each).
	if ops[0] != ops[2] {
		t.Error("gravity half-kicks should share one operator instance")
	}
}

func TestPipelineMaxNGhost(t *testing.T) {
	p := NewPipeline(DefaultOperators()...)
	if p.MaxNGhost() != hydro.NGhost {
		t.Fatalf("MaxNGhost %d, want %d (the PPM stencil)", p.MaxNGhost(), hydro.NGhost)
	}
}

type nopOp struct{ name string }

func (o nopOp) Name() string                   { return o.name }
func (nopOp) Component() Component             { return CompOther }
func (nopOp) NGhost() int                      { return 0 }
func (nopOp) Apply(*Context, *Grid, float64)   {}
func (nopOp) Timestep(*Context, *Grid) float64 { return math.Inf(1) }

func TestPipelineEditing(t *testing.T) {
	p := NewPipeline(DefaultOperators()...)
	if err := p.InsertBefore("chemistry", nopOp{name: "custom"}); err != nil {
		t.Fatal(err)
	}
	names := p.Names()
	if names[len(names)-2] != "custom" {
		t.Fatalf("InsertBefore misplaced: %v", names)
	}
	p.Append(nopOp{name: "tail"})
	if _, ok := p.Lookup("tail"); !ok {
		t.Fatal("appended operator not found")
	}
	if err := p.InsertBefore("nosuch", nopOp{name: "x"}); err == nil {
		t.Fatal("InsertBefore on a missing name must error")
	}
}

// newTestGrid builds a small uniform fluid state with a velocity gradient.
func newTestGrid(n int) *Grid {
	s := hydro.NewState(n, n, n, 0)
	for k := -hydro.NGhost; k < n+hydro.NGhost; k++ {
		for j := -hydro.NGhost; j < n+hydro.NGhost; j++ {
			for i := -hydro.NGhost; i < n+hydro.NGhost; i++ {
				s.Rho.Set(i, j, k, 1+0.1*float64((i+j+k+3*n)%5))
				s.Vx.Set(i, j, k, 0.05*float64(i%3))
				s.Eint.Set(i, j, k, 1)
				s.Etot.Set(i, j, k, 1+0.5*s.Vx.At(i, j, k)*s.Vx.At(i, j, k))
			}
		}
	}
	var st OpStats
	return &Grid{
		State: s, Dx: 1.0 / float64(n), Nx: n, Ny: n, Nz: n,
		Root: true, Parts: nbody.New(0), Stats: &st,
	}
}

func TestHydroOpMatchesDirectCall(t *testing.T) {
	// The operator is a pure relocation of the driver's inline call:
	// results must be bitwise identical to driving hydro.Step3D directly.
	ctx := &Context{Hydro: hydro.DefaultParams(), Solver: hydro.SolverPPM, Workers: 1}
	g := newTestGrid(8)
	ref := g.State.Clone()

	const dt = 1e-3
	NewHydro().Apply(ctx, g, dt)

	bc := func(s *hydro.State) {
		for _, f := range s.Fields() {
			f.ApplyPeriodicBC()
		}
	}
	hp := ctx.Hydro
	hp.Workers = 1
	hydro.Step3D(ref, g.Dx, dt, hp, hydro.SolverPPM, 0, bc, nil, nil)

	for idx := range ref.Rho.Data {
		if ref.Rho.Data[idx] != g.State.Rho.Data[idx] {
			t.Fatalf("hydro operator diverged from direct call at %d", idx)
		}
	}
	if g.Stats.CellUpdates != int64(8*8*8) {
		t.Errorf("CellUpdates %d", g.Stats.CellUpdates)
	}
}

func TestTimestepHooks(t *testing.T) {
	ctx := &Context{Hydro: hydro.DefaultParams()}
	g := newTestGrid(8)

	if got, want := NewHydro().Timestep(ctx, g), hydro.Timestep(g.State, g.Dx, ctx.Hydro); got != want {
		t.Errorf("hydro timestep %v, want %v", got, want)
	}
	if !math.IsInf(NewChemistry().Timestep(ctx, g), 1) {
		t.Error("chemistry must not constrain dt")
	}
	if !math.IsInf(NewExpansion().Timestep(ctx, g), 1) {
		t.Error("expansion without cosmology must not constrain dt")
	}

	// Particle-crossing limit: 0.4 dx / |v|_1.
	g.Parts.Add(ep(0.5), ep(0.5), ep(0.5), 0.3, 0.4, 0, 1, 0)
	if got, want := NewNBody().Timestep(ctx, g), 0.4*g.Dx/0.7; got != want {
		t.Errorf("nbody timestep %v, want %v", got, want)
	}

	// Expansion limit: 2% of the e-folding time.
	bg := cosmology.NewBackground(cosmology.StandardCDM(), 0.1)
	u := units.Cosmological(units.MpcCM, 1, 0.5, 0.1)
	ctx.Cosmo, ctx.Units = bg, u
	want := 0.02 / (bg.Params.Hubble(bg.A) * u.Time)
	if got := NewExpansion().Timestep(ctx, g); got != want {
		t.Errorf("expansion timestep %v, want %v", got, want)
	}
}

func TestGuardedOperatorsNoOp(t *testing.T) {
	// Every operator must be inert when its physics is off, so a single
	// pipeline can serve all registered problems.
	ctx := &Context{Hydro: hydro.DefaultParams(), Workers: 1}
	g := newTestGrid(6)
	before := append([]float64(nil), g.State.Rho.Data...)
	beforeVx := append([]float64(nil), g.State.Vx.Data...)

	NewGravityKick().Apply(ctx, g, 0.1) // no gravity: GAcc nil
	NewExpansion().Apply(ctx, g, 0.1)   // no cosmology
	NewChemistry().Apply(ctx, g, 0.1)   // chemistry off
	NewNBody().Apply(ctx, g, 0.1)       // no particles

	for idx := range before {
		if g.State.Rho.Data[idx] != before[idx] || g.State.Vx.Data[idx] != beforeVx[idx] {
			t.Fatal("guarded operator mutated state")
		}
	}
	if g.Stats.ChemCellCalls != 0 || g.Stats.ParticleKicks != 0 {
		t.Error("inert operators must not report work")
	}
}
