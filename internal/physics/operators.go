package physics

import (
	"math"

	"repro/internal/chem"
	"repro/internal/hydro"
	"repro/internal/nbody"
	"repro/internal/par"
	"repro/internal/units"
)

// DefaultOperators returns the standard operator-split sequence of one
// grid step, the order the paper's driver hard-wired: gravity half-kick,
// hydro sweep set, gravity half-kick (KDK for the fluid), particle
// kick-drift-kick, comoving expansion drag, chemistry & cooling. The same
// GravityKick instance appears twice — each Apply performs one half-kick.
// The level-wide Poisson solve is the driver's LevelOperator and is
// prepended by the hierarchy itself.
func DefaultOperators() []Operator {
	kick := NewGravityKick()
	return []Operator{
		kick,
		NewHydro(),
		kick,
		NewNBody(),
		NewExpansion(),
		NewChemistry(),
	}
}

// HydroOp advances the fluid with one dimensionally-split sweep set of the
// configured solver (PPM or the robust finite-difference scheme).
type HydroOp struct{}

// NewHydro returns the hydrodynamics operator.
func NewHydro() *HydroOp { return &HydroOp{} }

// Name identifies the operator in the per-op timing table.
func (*HydroOp) Name() string { return "hydro" }

// Component bills the operator's wall-clock to the hydro row.
func (*HydroOp) Component() Component { return CompHydro }

// NGhost is the solver's ghost-zone depth.
func (*HydroOp) NGhost() int { return hydro.NGhost }

// Apply runs the sweep set. The worker count inherits the grid's budget
// (which the driver has already divided between concurrently stepping
// grids); an explicitly set Hydro.Workers is still capped by that budget
// so concurrent grids cannot oversubscribe the machine.
func (*HydroOp) Apply(ctx *Context, g *Grid, dt float64) {
	var bc func(*hydro.State)
	if g.Root {
		bc = func(s *hydro.State) {
			for _, f := range s.Fields() {
				f.ApplyPeriodicBC()
			}
		}
	}
	hp := ctx.Hydro
	if budget := par.Workers(ctx.Workers); hp.Workers == 0 || par.Workers(hp.Workers) > budget {
		hp.Workers = budget
	}
	hydro.Step3D(g.State, g.Dx, dt, hp, ctx.Solver, g.Parity, bc, g.Reg, g.Taps)
	g.Stats.CellUpdates += int64(g.NumCells())
}

// Timestep returns the CFL limit.
func (*HydroOp) Timestep(ctx *Context, g *Grid) float64 {
	return hydro.Timestep(g.State, g.Dx, ctx.Hydro)
}

// GravityKickOp applies half of the gravitational velocity kick to the
// fluid; registered twice around the hydro operator it realizes the
// kick-drift-kick splitting.
type GravityKickOp struct{}

// NewGravityKick returns the fluid gravity half-kick operator.
func NewGravityKick() *GravityKickOp { return &GravityKickOp{} }

// Name identifies the operator in the per-op timing table.
func (*GravityKickOp) Name() string { return "gravity.kick" }

// Component bills the operator's wall-clock to the gravity row.
func (*GravityKickOp) Component() Component { return CompGravity }

// NGhost is zero: the kick is cell-local.
func (*GravityKickOp) NGhost() int { return 0 }

// Apply kicks the fluid by dt/2 with the level's acceleration field.
func (*GravityKickOp) Apply(ctx *Context, g *Grid, dt float64) {
	if !ctx.SelfGravity || g.GAcc[0] == nil {
		return
	}
	hydro.KickGravity(g.State, g.GAcc[0], g.GAcc[1], g.GAcc[2], dt/2)
}

// Timestep is unconstrained: the kick follows the hydro CFL.
func (*GravityKickOp) Timestep(*Context, *Grid) float64 { return math.Inf(1) }

// NBodyOp advances the grid's particles with a kick-drift-kick step using
// the level's acceleration field.
type NBodyOp struct{}

// NewNBody returns the particle push operator.
func NewNBody() *NBodyOp { return &NBodyOp{} }

// Name identifies the operator in the per-op timing table.
func (*NBodyOp) Name() string { return "nbody" }

// Component bills the operator's wall-clock to the N-body row.
func (*NBodyOp) Component() Component { return CompNBody }

// NGhost is one: CIC interpolation reads the neighbor cell.
func (*NBodyOp) NGhost() int { return 1 }

// Apply runs the KDK push.
func (*NBodyOp) Apply(ctx *Context, g *Grid, dt float64) {
	if g.Parts.Len() == 0 {
		return
	}
	kick := ctx.SelfGravity && g.GAcc[0] != nil
	if kick {
		nbody.Kick(g.Parts, g.GAcc[0], g.GAcc[1], g.GAcc[2], g.Geom, dt/2)
	}
	g.Parts.Drift(dt)
	if kick {
		nbody.Kick(g.Parts, g.GAcc[0], g.GAcc[1], g.GAcc[2], g.Geom, dt/2)
	}
	g.Stats.ParticleKicks += int64(g.Parts.Len())
}

// Timestep limits particles to 0.4 cells of travel per step.
func (*NBodyOp) Timestep(ctx *Context, g *Grid) float64 {
	dt := math.Inf(1)
	for i := 0; i < g.Parts.Len(); i++ {
		v := math.Abs(g.Parts.Vx[i]) + math.Abs(g.Parts.Vy[i]) + math.Abs(g.Parts.Vz[i])
		if v > 0 {
			if d := 0.4 * g.Dx / v; d < dt {
				dt = d
			}
		}
	}
	return dt
}

// ExpansionOp applies the comoving expansion drag to gas and particles
// (the only explicit cosmology term in comoving coordinates).
type ExpansionOp struct{}

// NewExpansion returns the expansion-drag operator.
func NewExpansion() *ExpansionOp { return &ExpansionOp{} }

// Name identifies the operator in the per-op timing table.
func (*ExpansionOp) Name() string { return "expansion" }

// Component bills the operator's wall-clock to the overhead row.
func (*ExpansionOp) Component() Component { return CompOther }

// NGhost is zero: the drag is cell-local.
func (*ExpansionOp) NGhost() int { return 0 }

// Apply drags peculiar velocities and internal energy by the current aH.
func (*ExpansionOp) Apply(ctx *Context, g *Grid, dt float64) {
	if ctx.Cosmo == nil {
		return
	}
	aH := ctx.Cosmo.Params.Hubble(ctx.Cosmo.A) * ctx.Units.Time
	hydro.ApplyExpansion(g.State, aH, dt)
	g.Parts.ApplyExpansion(aH, dt)
}

// Timestep limits the expansion-factor change to 2% per step.
func (*ExpansionOp) Timestep(ctx *Context, g *Grid) float64 {
	if ctx.Cosmo == nil {
		return math.Inf(1)
	}
	aH := ctx.Cosmo.Params.Hubble(ctx.Cosmo.A) * ctx.Units.Time
	return 0.02 / aH
}

// ChemistryOp advances the 12-species primordial network and radiative
// cooling in every active cell, sub-cycled inside the hydro step.
type ChemistryOp struct{}

// NewChemistry returns the chemistry & cooling operator.
func NewChemistry() *ChemistryOp { return &ChemistryOp{} }

// Name identifies the operator in the per-op timing table.
func (*ChemistryOp) Name() string { return "chemistry" }

// Component bills the operator's wall-clock to the chemistry row.
func (*ChemistryOp) Component() Component { return CompChemistry }

// NGhost is zero: every cell's network is independent.
func (*ChemistryOp) NGhost() int { return 0 }

// Apply solves the per-cell stiff ODE network. Every cell is independent
// (the dominant per-cell cost of a chemistry run), so the loop
// parallelizes over z-planes with bitwise-identical results at any worker
// count.
//
// Cells are batched one x-row at a time through a chem.Pencil: the gather
// and scatter passes walk each species field as a contiguous slice (one
// species at a time, SoA) with the per-species mass factors and the
// code-unit conversions hoisted out of the cell loop. The hoisted factors
// are the exact subexpressions the per-cell form computed — never a
// reassociated product — so the conversion arithmetic is bitwise identical
// to the old At/Set loop.
func (*ChemistryOp) Apply(ctx *Context, g *Grid, dt float64) {
	if !ctx.Chemistry {
		return
	}
	u := ctx.Units
	dtSec := dt * u.Time
	aFac := 1.0
	cp := ctx.CoolParams
	if ctx.Cosmo != nil && ctx.InitialA > 0 {
		r := ctx.InitialA / ctx.Cosmo.A
		aFac = r * r * r
		cp.Redshift = 1/ctx.Cosmo.A - 1
	}
	st := g.State
	// Per-species weights (electrons stored as n_e * m_p) and their CGS
	// mass factors, plus the code-unit denominators, hoisted once per call.
	var wgt, wm [chem.NumSpecies]float64
	for sp := 0; sp < chem.NumSpecies; sp++ {
		w := chem.AtomicWeight[sp]
		if w == 0 {
			w = 1
		}
		wgt[sp] = w
		wm[sp] = w * units.MProton
	}
	den := u.Density * aFac
	vel2 := u.Velocity * u.Velocity
	nx := g.Nx
	par.For(ctx.Workers, g.Nz, 0, func(_, klo, khi int) {
		pen := chem.NewPencil(nx)
		for k := klo; k < khi; k++ {
			for j := 0; j < g.Ny; j++ {
				// Gather: code-unit species densities -> number
				// densities [cm^-3], one contiguous row per species.
				for sp := 0; sp < chem.NumSpecies; sp++ {
					src := st.Species[sp].Data
					base := st.Species[sp].Idx(0, j, k)
					dst := pen.Species[sp]
					m := wm[sp]
					for i := 0; i < nx; i++ {
						dst[i] = src[base+i] * u.Density * aFac / m
					}
				}
				eintD := st.Eint.Data
				eBase := st.Eint.Idx(0, j, k)
				for i := 0; i < nx; i++ {
					pen.Eint[i] = eintD[eBase+i] * u.Velocity * u.Velocity
				}

				pen.Evolve(dtSec, cp, ctx.ChemParams)

				// Scatter back to code units, again species-at-a-time.
				for sp := 0; sp < chem.NumSpecies; sp++ {
					dst := st.Species[sp].Data
					base := st.Species[sp].Idx(0, j, k)
					src := pen.Species[sp]
					w := wgt[sp]
					for i := 0; i < nx; i++ {
						dst[base+i] = src[i] * w * units.MProton / den
					}
				}
				etotD := st.Etot.Data
				tBase := st.Etot.Idx(0, j, k)
				for i := 0; i < nx; i++ {
					newEint := pen.Eint[i] / vel2
					etotD[tBase+i] += newEint - eintD[eBase+i]
					eintD[eBase+i] = newEint
				}
			}
		}
	})
	g.Stats.ChemCellCalls += int64(g.NumCells())
}

// Timestep is unconstrained: the stiff network sub-cycles internally.
func (*ChemistryOp) Timestep(*Context, *Grid) float64 { return math.Inf(1) }
