// Package physics decouples the science solvers from the AMR driver: each
// physics component (hydrodynamics, gravity kicks, the N-body push, the
// comoving expansion drag, the 12-species chemistry network) is an
// operator-split Operator that runs unchanged on any grid of the
// hierarchy — the paper's architecture thesis that AMR becomes a
// general-purpose engine when "off-the-shelf" solvers see only one
// uniform patch at a time.
//
// The driver (internal/amr) executes a Pipeline of operators per grid per
// level-step instead of hard-wiring solver calls. An Operator declares its
// name, the Timing component it bills to, its ghost-zone (stencil) needs,
// a per-grid Apply, and a timestep-constraint hook; operators whose work
// is intrinsically level-wide (the Poisson solve, which couples every
// grid of a level through boundary exchange) additionally implement
// LevelOperator and are invoked once before the per-grid sweep.
//
// New physics plugs in without touching the driver: implement Operator and
// append it to the hierarchy's pipeline (see the package example in the
// repository root doc.go).
package physics

import (
	"fmt"
	"math"

	"repro/internal/chem"
	"repro/internal/cosmology"
	"repro/internal/hydro"
	"repro/internal/mesh"
	"repro/internal/nbody"
	"repro/internal/units"
)

// Component names the row of the amr.Timing table an operator bills its
// wall-clock time to.
type Component int

// The usage-table rows of §5: hydrodynamics, Poisson solver, chemistry &
// cooling, N-body, and everything else.
const (
	CompHydro Component = iota
	CompGravity
	CompChemistry
	CompNBody
	CompOther
)

// String returns the component's usage-table label.
func (c Component) String() string {
	switch c {
	case CompHydro:
		return "hydro"
	case CompGravity:
		return "gravity"
	case CompChemistry:
		return "chemistry"
	case CompNBody:
		return "nbody"
	default:
		return "other"
	}
}

// Context is the run-wide environment an operator sees: the physics
// configuration of the run plus the worker budget the driver has assigned
// to the grid being stepped. It is rebuilt (cheaply, by value) for every
// grid step, so operators must not retain it.
type Context struct {
	Hydro  hydro.Params
	Solver hydro.Solver

	SelfGravity bool

	Chemistry  bool
	ChemParams chem.SolverParams
	CoolParams chem.CoolParams

	Units    units.Units
	Cosmo    *cosmology.Background
	InitialA float64

	// Workers is the goroutine budget for this grid's kernels (par
	// conventions: 0 = NumCPU, 1 = serial). When several grids of a
	// level step concurrently the driver has already divided the global
	// budget between them.
	Workers int
}

// Grid is the per-grid view an operator acts on: the fluid state, the
// particles owned by the grid, the gravitational acceleration fields of
// the enclosing level solve, and the flux bookkeeping hooks of the AMR
// coupling. Operators see only this view, never the hierarchy.
type Grid struct {
	State      *hydro.State
	Dx         float64
	Nx, Ny, Nz int
	Level      int
	Root       bool // the periodic root grid (boundary handling differs)

	GAcc  [3]*mesh.Field3 // gravitational acceleration (nil until a solve)
	Parts *nbody.Particles
	Geom  nbody.GridGeom

	Reg  *hydro.FluxRegister // fluxes at this grid's own boundary
	Taps []*hydro.FluxTap    // interior fluxes at this grid's children's faces

	Parity int // Strang sweep parity of the driver

	// Stats receives the operator work counters for this grid step.
	Stats *OpStats
}

// NumCells returns the active cell count of the view.
func (g *Grid) NumCells() int { return g.Nx * g.Ny * g.Nz }

// OpStats accumulates the per-grid work counters operators report, merged
// by the driver into amr.Stats.
type OpStats struct {
	CellUpdates   int64
	ChemCellCalls int64
	ParticleKicks int64
}

// Operator is one operator-split physics component. Apply advances the
// grid view by dt; it must guard itself against configurations where it
// does not apply (e.g. the expansion drag when the run is not
// cosmological) so that a single pipeline serves every problem.
//
// Concurrency: the driver steps the grids of a level in parallel, calling
// Apply on the SAME operator instance from multiple goroutines (one per
// grid). Operators must therefore be stateless with respect to Apply —
// keep per-call state on the stack and report work through Grid.Stats
// (which is private to the grid step); an operator that accumulates into
// its own fields must synchronize them itself.
type Operator interface {
	// Name identifies the operator (unique within a pipeline except for
	// deliberately repeated entries such as the two gravity half-kicks).
	Name() string
	// Component is the Timing-table row the operator bills to.
	Component() Component
	// NGhost is the ghost-zone depth the operator's stencil requires.
	NGhost() int
	// Apply advances the grid by dt.
	Apply(ctx *Context, g *Grid, dt float64)
	// Timestep returns the operator's stability limit on the grid, or
	// +Inf when it imposes none.
	Timestep(ctx *Context, g *Grid) float64
}

// LevelOperator marks an Operator whose work happens once per level step
// (before the per-grid Apply sweep) rather than independently per grid;
// the driver skips its Apply during the per-grid sweep. The canonical
// example is the self-gravity Poisson solve, which couples all grids of
// a level through sibling boundary exchange; the driver implements it
// and registers it through this interface.
type LevelOperator interface {
	Operator
	// ApplyLevel runs the level-wide stage. The driver calls it with its
	// own level index before stepping the level's grids.
	ApplyLevel(level int, dt float64)
}

// Pipeline is an ordered set of operators executed per grid per
// level-step. The zero Pipeline is not usable; construct with NewPipeline.
type Pipeline struct {
	ops []Operator
}

// NewPipeline builds a pipeline executing the given operators in order.
func NewPipeline(ops ...Operator) *Pipeline {
	return &Pipeline{ops: ops}
}

// Ops returns the operators in execution order. The returned slice is the
// pipeline's own; do not mutate it, use Append/InsertBefore.
func (p *Pipeline) Ops() []Operator { return p.ops }

// Names returns the operator names in execution order.
func (p *Pipeline) Names() []string {
	out := make([]string, len(p.ops))
	for i, op := range p.ops {
		out[i] = op.Name()
	}
	return out
}

// Lookup returns the first operator with the given name.
func (p *Pipeline) Lookup(name string) (Operator, bool) {
	for _, op := range p.ops {
		if op.Name() == name {
			return op, true
		}
	}
	return nil, false
}

// Append adds an operator at the end of the pipeline.
func (p *Pipeline) Append(ops ...Operator) { p.ops = append(p.ops, ops...) }

// InsertBefore inserts op immediately before the first operator named
// name, or returns an error when no such operator exists.
func (p *Pipeline) InsertBefore(name string, op Operator) error {
	for i, existing := range p.ops {
		if existing.Name() == name {
			p.ops = append(p.ops[:i], append([]Operator{op}, p.ops[i:]...)...)
			return nil
		}
	}
	return fmt.Errorf("physics: no operator %q in pipeline", name)
}

// MaxNGhost returns the widest ghost-zone requirement of the pipeline,
// which the driver's grid allocation must satisfy.
func (p *Pipeline) MaxNGhost() int {
	ng := 0
	for _, op := range p.ops {
		if g := op.NGhost(); g > ng {
			ng = g
		}
	}
	return ng
}

// Timestep returns the most restrictive operator stability limit on the
// grid (+Inf when no operator constrains it).
func (p *Pipeline) Timestep(ctx *Context, g *Grid) float64 {
	dt := math.Inf(1)
	for _, op := range p.ops {
		if d := op.Timestep(ctx, g); d < dt {
			dt = d
		}
	}
	return dt
}
