package ep128

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicArithmetic(t *testing.T) {
	a := FromFloat64(1.5)
	b := FromFloat64(2.25)
	if got := a.Add(b).Float64(); got != 3.75 {
		t.Errorf("1.5+2.25 = %v, want 3.75", got)
	}
	if got := a.Sub(b).Float64(); got != -0.75 {
		t.Errorf("1.5-2.25 = %v, want -0.75", got)
	}
	if got := a.Mul(b).Float64(); got != 3.375 {
		t.Errorf("1.5*2.25 = %v, want 3.375", got)
	}
	if got := b.Div(a).Float64(); got != 1.5 {
		t.Errorf("2.25/1.5 = %v, want 1.5", got)
	}
}

func TestPrecisionBeyondFloat64(t *testing.T) {
	// (1 + 2^-60) - 1 == 2^-60 exactly in dd, but 0 in float64.
	tiny := math.Ldexp(1, -60)
	x := One.AddFloat(tiny)
	d := x.Sub(One)
	if d.Float64() != tiny {
		t.Fatalf("(1+2^-60)-1 = %v, want %v", d.Float64(), tiny)
	}
	if 1.0+tiny-1.0 == tiny {
		t.Fatalf("test premise broken: float64 resolved 2^-60")
	}
}

func TestCellPositionResolution(t *testing.T) {
	// The paper's requirement: distinguish x and x+dx at dx/x ~ 1e-14
	// (SDR 1e12 with a 100x guard). At dd precision the ratio can be
	// far smaller; verify at 1e-20.
	x := FromFloat64(0.7312)
	dx := x.MulFloat(1e-20)
	if x.Add(dx).Eq(x) {
		t.Fatal("x+dx not distinguishable from x at dx/x = 1e-20")
	}
	if !x.Add(dx).Sub(dx).Sub(x).Abs().Less(x.MulFloat(1e-30)) {
		t.Fatal("round trip x+dx-dx lost precision")
	}
}

func TestSqrt(t *testing.T) {
	for _, v := range []float64{2, 3, 0.5, 1e10, 1e-10, 7.25} {
		s := FromFloat64(v).Sqrt()
		back := s.Sqr().SubFloat(v).Abs().Float64()
		if back > v*1e-30 {
			t.Errorf("sqrt(%v)^2 error %v too large", v, back)
		}
	}
	if !FromFloat64(0).Sqrt().IsZero() {
		t.Error("sqrt(0) != 0")
	}
	if !math.IsNaN(FromFloat64(-1).Sqrt().Hi) {
		t.Error("sqrt(-1) should be NaN")
	}
}

func TestFromInt(t *testing.T) {
	n := int64(1)<<62 + 12345
	d := FromInt(n)
	// Value must round-trip through the two components exactly.
	if int64(d.Hi)+int64(d.Lo) != n {
		t.Fatalf("FromInt(%d) lost precision: hi=%v lo=%v", n, d.Hi, d.Lo)
	}
}

func TestCmpAndSign(t *testing.T) {
	a := FromFloat64(1)
	b := a.AddFloat(1e-25)
	if !a.Less(b) {
		t.Error("1 < 1+1e-25 should hold in dd")
	}
	if a.Cmp(a) != 0 {
		t.Error("Cmp(a,a) != 0")
	}
	if Zero.Sign() != 0 || One.Sign() != 1 || One.Neg().Sign() != -1 {
		t.Error("Sign broken")
	}
	if b.Cmp(a) != 1 {
		t.Error("Cmp order broken")
	}
}

func TestFloor(t *testing.T) {
	cases := []struct {
		in   Dd
		want float64
	}{
		{FromFloat64(3.7), 3},
		{FromFloat64(-3.7), -4},
		{FromFloat64(5), 5},
		{FromFloat64(5).AddFloat(1e-25), 5},
		{FromFloat64(5).SubFloat(1e-25), 4},
	}
	for _, c := range cases {
		if got := c.in.Floor().Float64(); got != c.want {
			t.Errorf("Floor(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMulPow2(t *testing.T) {
	a := FromFloat64(3).AddFloat(1e-20)
	b := a.MulPow2(10)
	if !b.Eq(a.MulFloat(1024)) {
		t.Error("MulPow2(10) != *1024")
	}
	if !b.MulPow2(-10).Eq(a) {
		t.Error("MulPow2 round trip failed")
	}
}

func TestParseAndFormat(t *testing.T) {
	cases := []string{
		"1.5", "-2.25", "3e10", "0.125", "-0.0009765625", "1234567890123456789012345",
	}
	for _, s := range cases {
		v, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		back, err := Parse(v.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", v.String(), err)
		}
		diff := v.Sub(back).Abs()
		tol := v.Abs().MulFloat(1e-30).AddFloat(1e-300)
		if !diff.LessEq(tol) {
			t.Errorf("Parse/String round trip for %q drifted: %v vs %v", s, v, back)
		}
	}
	for _, bad := range []string{"", "abc", "1.2.3", "--5", "1e", "."} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParsePrecision(t *testing.T) {
	// 25 significant digits must survive (float64 keeps only ~16).
	v, err := Parse("1.000000000000000000000001")
	if err != nil {
		t.Fatal(err)
	}
	d := v.Sub(One)
	want := 1e-24
	if math.Abs(d.Float64()-want) > want*1e-6 {
		t.Fatalf("parsed residual = %g, want %g", d.Float64(), want)
	}
}

// ddFrom builds a dd from two random float64s with the renormalization
// invariant re-established, for property tests.
func ddFrom(hi, lo float64) Dd {
	if math.IsNaN(hi) || math.IsInf(hi, 0) {
		hi = 1.0
	}
	if math.IsNaN(lo) || math.IsInf(lo, 0) {
		lo = 0.0
	}
	// Keep magnitudes sane to avoid overflow in products.
	hi = math.Mod(hi, 1e100)
	lo = math.Mod(lo, 1e80)
	return FromFloat64(hi).AddFloat(lo * 1e-20)
}

func TestPropAddCommutative(t *testing.T) {
	f := func(a1, a2, b1, b2 float64) bool {
		a, b := ddFrom(a1, a2), ddFrom(b1, b2)
		return a.Add(b).Eq(b.Add(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMulCommutative(t *testing.T) {
	f := func(a1, a2, b1, b2 float64) bool {
		a, b := ddFrom(a1, a2), ddFrom(b1, b2)
		return a.Mul(b).Eq(b.Mul(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddNegIsZero(t *testing.T) {
	f := func(a1, a2 float64) bool {
		a := ddFrom(a1, a2)
		return a.Add(a.Neg()).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSubSelfIsZero(t *testing.T) {
	f := func(a1, a2 float64) bool {
		a := ddFrom(a1, a2)
		return a.Sub(a).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropDivMulRoundTrip(t *testing.T) {
	f := func(a1 float64, b1 float64) bool {
		a := ddFrom(a1, 0)
		b := ddFrom(b1, 0)
		if b.Abs().Float64() < 1e-100 || a.Abs().Float64() > 1e90 {
			return true // skip degenerate magnitudes
		}
		q := a.Div(b)
		r := q.Mul(b)
		diff := r.Sub(a).Abs().Float64()
		tol := math.Abs(a.Float64())*1e-28 + 1e-280
		return diff <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropNonOverlapInvariant(t *testing.T) {
	// After any operation, |Lo| <= ulp(Hi): quickTwoSum invariant.
	f := func(a1, b1 float64) bool {
		a, b := ddFrom(a1, 0), ddFrom(b1, 0)
		for _, v := range []Dd{a.Add(b), a.Mul(b), a.Sub(b)} {
			if v.Hi == 0 {
				continue
			}
			if math.IsInf(v.Hi, 0) || math.IsNaN(v.Hi) {
				continue
			}
			if math.Abs(v.Lo) > math.Abs(v.Hi)*math.Ldexp(1, -52) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAssociativityResidualTiny(t *testing.T) {
	// dd addition is not exactly associative, but the residual must be
	// at the 2^-104 relative level, not float64's 2^-52.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		a := FromFloat64(rng.NormFloat64())
		b := FromFloat64(rng.NormFloat64() * 1e-10)
		c := FromFloat64(rng.NormFloat64() * 1e10)
		l := a.Add(b).Add(c)
		r := a.Add(b.Add(c))
		diff := l.Sub(r).Abs().Float64()
		scale := math.Abs(c.Float64()) + math.Abs(a.Float64())
		if diff > scale*1e-28 {
			t.Fatalf("associativity residual too large: %g (scale %g)", diff, scale)
		}
	}
}

func BenchmarkDdAdd(b *testing.B) {
	x := FromFloat64(1.2345678901234567)
	y := FromFloat64(7.6543210987654321e-8)
	var r Dd
	for i := 0; i < b.N; i++ {
		r = x.Add(y)
	}
	_ = r
}

func BenchmarkDdMul(b *testing.B) {
	x := FromFloat64(1.2345678901234567)
	y := FromFloat64(1.0000000001)
	var r Dd
	for i := 0; i < b.N; i++ {
		r = x.Mul(y)
	}
	_ = r
}

func BenchmarkDdDiv(b *testing.B) {
	x := FromFloat64(1.2345678901234567)
	y := FromFloat64(3.0000000001)
	var r Dd
	for i := 0; i < b.N; i++ {
		r = x.Div(y)
	}
	_ = r
}

func BenchmarkFloat64AddBaseline(b *testing.B) {
	x, y := 1.2345678901234567, 7.6543210987654321e-8
	var r float64
	for i := 0; i < b.N; i++ {
		r = x + y
	}
	_ = r
}
