// Package ep128 implements 128-bit extended precision arithmetic (EPA) using
// the double-double technique: a value is represented as an unevaluated sum
// of two float64 components, giving roughly 106 bits of significand
// (about 32 decimal digits).
//
// The SC2001 Enzo paper (§3.5) requires extended precision only for
// *absolute* positions and times, where a relative precision of
// Δx/x ~ 1e-14 or better is needed to distinguish neighbouring cells at 34
// levels of refinement. Native 128-bit floating point was patchily supported
// and up to 30x slower on the machines of the day; the paper cites Bailey's
// software multiprecision approach as the portable alternative. This package
// is that alternative: branch-free error-free transformations (TwoSum,
// TwoProd with FMA) composed into a small arithmetic kernel.
//
// The zero value of Dd is 0.
package ep128

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Dd is a double-double extended precision value: the represented number is
// Hi + Lo, with |Lo| <= ulp(Hi)/2. Hi carries the leading 53 bits of
// significand and Lo the trailing bits.
type Dd struct {
	Hi float64
	Lo float64
}

// Zero is the additive identity.
var Zero = Dd{}

// One is the multiplicative identity.
var One = Dd{Hi: 1}

// Eps is the effective machine epsilon of the double-double format,
// 2^-104 ≈ 4.93e-32.
var Eps = math.Ldexp(1, -104)

// FromFloat64 converts a float64 exactly.
func FromFloat64(x float64) Dd { return Dd{Hi: x} }

// FromInt converts an integer exactly (int64 values are exactly
// representable because the two components provide 106 bits).
func FromInt(n int64) Dd {
	hi := float64(n)
	lo := float64(n - int64(hi))
	return Dd{Hi: hi, Lo: lo}
}

// twoSum returns s, e such that s = fl(a+b) and s+e = a+b exactly.
func twoSum(a, b float64) (s, e float64) {
	s = a + b
	bb := s - a
	e = (a - (s - bb)) + (b - bb)
	return
}

// quickTwoSum is twoSum under the precondition |a| >= |b|.
func quickTwoSum(a, b float64) (s, e float64) {
	s = a + b
	e = b - (s - a)
	return
}

// twoProd returns p, e such that p = fl(a*b) and p+e = a*b exactly.
// math.FMA compiles to a hardware fused multiply-add where available.
func twoProd(a, b float64) (p, e float64) {
	p = a * b
	e = math.FMA(a, b, -p)
	return
}

// renorm re-establishes the non-overlapping invariant.
func renorm(hi, lo float64) Dd {
	s, e := quickTwoSum(hi, lo)
	return Dd{Hi: s, Lo: e}
}

// Add returns a + b.
func (a Dd) Add(b Dd) Dd {
	s, e := twoSum(a.Hi, b.Hi)
	e += a.Lo + b.Lo
	return renorm(s, e)
}

// AddFloat returns a + x for a float64 x.
func (a Dd) AddFloat(x float64) Dd {
	s, e := twoSum(a.Hi, x)
	e += a.Lo
	return renorm(s, e)
}

// Sub returns a - b.
func (a Dd) Sub(b Dd) Dd { return a.Add(b.Neg()) }

// SubFloat returns a - x for a float64 x.
func (a Dd) SubFloat(x float64) Dd { return a.AddFloat(-x) }

// Neg returns -a.
func (a Dd) Neg() Dd { return Dd{Hi: -a.Hi, Lo: -a.Lo} }

// Mul returns a * b.
func (a Dd) Mul(b Dd) Dd {
	p, e := twoProd(a.Hi, b.Hi)
	e += a.Hi*b.Lo + a.Lo*b.Hi
	return renorm(p, e)
}

// MulFloat returns a * x for a float64 x.
func (a Dd) MulFloat(x float64) Dd {
	p, e := twoProd(a.Hi, x)
	e += a.Lo * x
	return renorm(p, e)
}

// Div returns a / b. Division by zero yields ±Inf components like float64.
func (a Dd) Div(b Dd) Dd {
	q1 := a.Hi / b.Hi
	r := a.Sub(b.MulFloat(q1))
	q2 := r.Hi / b.Hi
	r = r.Sub(b.MulFloat(q2))
	q3 := r.Hi / b.Hi
	s, e := quickTwoSum(q1, q2)
	return renorm(s, e+q3)
}

// DivFloat returns a / x for a float64 x.
func (a Dd) DivFloat(x float64) Dd { return a.Div(FromFloat64(x)) }

// Sqr returns a*a, slightly cheaper than Mul(a, a).
func (a Dd) Sqr() Dd {
	p, e := twoProd(a.Hi, a.Hi)
	e += 2 * a.Hi * a.Lo
	return renorm(p, e)
}

// Sqrt returns the square root of a, computed with one Newton step
// refining the float64 estimate (sufficient for full dd accuracy).
// Sqrt of a negative value returns NaN components.
func (a Dd) Sqrt() Dd {
	if a.Hi == 0 && a.Lo == 0 {
		return Zero
	}
	if a.Hi < 0 {
		return Dd{Hi: math.NaN(), Lo: math.NaN()}
	}
	x := 1 / math.Sqrt(a.Hi)
	ax := a.MulFloat(x)
	// Newton: sqrt(a) ≈ ax + (a - ax²)·x/2
	diff := a.Sub(ax.Sqr())
	return ax.Add(diff.MulFloat(x * 0.5))
}

// Abs returns |a|.
func (a Dd) Abs() Dd {
	if a.Hi < 0 || (a.Hi == 0 && a.Lo < 0) {
		return a.Neg()
	}
	return a
}

// Float64 rounds to the nearest float64.
func (a Dd) Float64() float64 { return a.Hi + a.Lo }

// Cmp compares a and b, returning -1, 0 or +1.
func (a Dd) Cmp(b Dd) int {
	switch {
	case a.Hi < b.Hi:
		return -1
	case a.Hi > b.Hi:
		return 1
	case a.Lo < b.Lo:
		return -1
	case a.Lo > b.Lo:
		return 1
	}
	return 0
}

// Less reports a < b.
func (a Dd) Less(b Dd) bool { return a.Cmp(b) < 0 }

// LessEq reports a <= b.
func (a Dd) LessEq(b Dd) bool { return a.Cmp(b) <= 0 }

// Eq reports exact equality of representation.
func (a Dd) Eq(b Dd) bool { return a.Hi == b.Hi && a.Lo == b.Lo }

// IsZero reports whether a represents exactly zero.
func (a Dd) IsZero() bool { return a.Hi == 0 && a.Lo == 0 }

// Sign returns -1, 0 or +1.
func (a Dd) Sign() int {
	switch {
	case a.Hi > 0 || (a.Hi == 0 && a.Lo > 0):
		return 1
	case a.Hi < 0 || (a.Hi == 0 && a.Lo < 0):
		return -1
	}
	return 0
}

// Floor returns the largest integral dd value <= a.
func (a Dd) Floor() Dd {
	fh := math.Floor(a.Hi)
	if fh != a.Hi {
		return Dd{Hi: fh}
	}
	// Hi already integral; floor the low part.
	return renorm(fh, math.Floor(a.Lo))
}

// MulPow2 returns a * 2^n exactly.
func (a Dd) MulPow2(n int) Dd {
	return Dd{Hi: math.Ldexp(a.Hi, n), Lo: math.Ldexp(a.Lo, n)}
}

// String formats with ~32 significant digits.
func (a Dd) String() string {
	return a.Text(32)
}

// Text formats a with the given number of significant decimal digits
// (capped at 34).
func (a Dd) Text(digits int) string {
	if digits <= 0 {
		digits = 1
	}
	if digits > 34 {
		digits = 34
	}
	if math.IsNaN(a.Hi) {
		return "NaN"
	}
	if math.IsInf(a.Hi, 0) {
		if a.Hi > 0 {
			return "+Inf"
		}
		return "-Inf"
	}
	if a.IsZero() {
		return "0"
	}
	neg := a.Sign() < 0
	v := a.Abs()
	// Decimal exponent of leading digit.
	exp := int(math.Floor(math.Log10(v.Hi)))
	// Scale v into [1, 10).
	v = v.Mul(pow10dd(-exp))
	// Guard against log10 rounding.
	for v.Hi >= 10 {
		v = v.DivFloat(10)
		exp++
	}
	for v.Hi < 1 {
		v = v.MulFloat(10)
		exp--
	}
	var sb strings.Builder
	if neg {
		sb.WriteByte('-')
	}
	for i := 0; i < digits; i++ {
		d := int(math.Floor(v.Hi))
		if d < 0 {
			d = 0
		}
		if d > 9 {
			d = 9
		}
		sb.WriteByte(byte('0' + d))
		if i == 0 && digits > 1 {
			sb.WriteByte('.')
		}
		v = v.SubFloat(float64(d)).MulFloat(10)
	}
	sb.WriteString("e")
	sb.WriteString(strconv.Itoa(exp))
	return sb.String()
}

// pow10dd returns 10^n as a Dd for moderate |n|.
func pow10dd(n int) Dd {
	r := One
	ten := FromFloat64(10)
	tenth := One.Div(ten)
	if n >= 0 {
		for i := 0; i < n; i++ {
			r = r.Mul(ten)
		}
	} else {
		for i := 0; i < -n; i++ {
			r = r.Mul(tenth)
		}
	}
	return r
}

// Parse parses a decimal string (optionally with exponent) into a Dd,
// accumulating digits in extended precision so that up to ~32 significant
// digits survive.
func Parse(s string) (Dd, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Zero, fmt.Errorf("ep128: empty string")
	}
	neg := false
	i := 0
	if s[i] == '+' || s[i] == '-' {
		neg = s[i] == '-'
		i++
	}
	v := Zero
	seenDigit := false
	frac := 0
	inFrac := false
	for ; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v.MulFloat(10).AddFloat(float64(c - '0'))
			if inFrac {
				frac++
			}
			seenDigit = true
		case c == '.':
			if inFrac {
				return Zero, fmt.Errorf("ep128: bad number %q", s)
			}
			inFrac = true
		case c == 'e' || c == 'E':
			if !seenDigit {
				return Zero, fmt.Errorf("ep128: bad number %q", s)
			}
			e, err := strconv.Atoi(s[i+1:])
			if err != nil {
				return Zero, fmt.Errorf("ep128: bad exponent in %q", s)
			}
			v = v.Mul(pow10dd(e - frac))
			if neg {
				v = v.Neg()
			}
			return v, nil
		default:
			return Zero, fmt.Errorf("ep128: bad character %q in %q", c, s)
		}
	}
	if !seenDigit {
		return Zero, fmt.Errorf("ep128: bad number %q", s)
	}
	v = v.Mul(pow10dd(-frac))
	if neg {
		v = v.Neg()
	}
	return v, nil
}
