package amr

import (
	"math"
	"testing"

	"repro/internal/ep128"
)

// Integration-level checks of the full machinery beyond single features:
// deep hierarchies, refinement-factor 4, EPA grid edges, and failure
// injection (pathological states must not take the hierarchy down).

func TestRefinementFactor4(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.Refine = 4
	cfg.SelfGravity = false
	cfg.JeansN = 0
	cfg.StaticLevels = 1
	cfg.StaticLo = [3]float64{0.25, 0.25, 0.25}
	cfg.StaticHi = [3]float64{0.75, 0.75, 0.75}
	cfg.MaxLevel = 1
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillState(h.Root().State, 1, 0, 0, 0, 1)
	h.RebuildHierarchy(1)
	if h.MaxLevel() != 1 {
		t.Fatal("r=4 static refinement failed")
	}
	if sdr := h.SpatialDynamicRange(); sdr != 64 {
		t.Fatalf("SDR %v, want 64 (16*4)", sdr)
	}
	m0 := h.TotalGasMass()
	for s := 0; s < 2; s++ {
		h.Step()
	}
	if rel := math.Abs(h.TotalGasMass()-m0) / m0; rel > 1e-9 {
		t.Fatalf("r=4 mass drift %e", rel)
	}
	// A subgrid at r=4 takes 4 sub-steps per root step and ends
	// synchronized.
	for _, g := range h.Levels[1] {
		if math.Abs(g.Time-h.Time) > 1e-12 {
			t.Fatalf("r=4 subgrid time %v != %v", g.Time, h.Time)
		}
	}
}

func TestGridEdgeExtendedPrecision(t *testing.T) {
	// At deep levels the grid edge must resolve positions that float64
	// cannot: level 30 at RootN 16 has dx = 1/(16*2^30) ~ 5.8e-11, and
	// edges are exact dyadic rationals in ep128.
	g := NewGrid(30, [3]int{1<<34 + 1, 0, 0}, 4, 4, 4, 16, 2, 0)
	cells := 16.0 * math.Pow(2, 30)
	wantDx := 1.0 / cells
	if math.Abs(g.Dx-wantDx)/wantDx > 1e-14 {
		t.Fatalf("dx %v, want %v", g.Dx, wantDx)
	}
	// Edge - (Lo-1)*dx must equal exactly dx even though the absolute
	// positions differ at the 1e-11 level.
	edgePrev := ep128.FromInt(int64(1 << 34)).DivFloat(cells)
	diff := g.Edge[0].Sub(edgePrev)
	if rel := math.Abs(diff.Float64()-wantDx) / wantDx; rel > 1e-14 {
		t.Fatalf("adjacent edge separation %v, want dx=%v", diff.Float64(), wantDx)
	}
}

func TestFailureInjectionExtremeState(t *testing.T) {
	// A near-vacuum cell next to a hot dense cell must not produce NaNs
	// or crash the AMR step (floors + robust Riemann).
	cfg := DefaultConfig(16)
	cfg.SelfGravity = false
	cfg.JeansN = 0
	cfg.MassThresholdGas = 3.0 / (16. * 16 * 16)
	cfg.MaxLevel = 2
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillState(h.Root().State, 1, 0, 0, 0, 1)
	h.Root().State.Rho.Set(8, 8, 8, 1e-18) // near vacuum
	h.Root().State.Rho.Set(9, 8, 8, 1e6)   // huge spike
	h.Root().State.Eint.Set(9, 8, 8, 1e6)
	h.Root().State.Etot.Set(9, 8, 8, 1e6)
	h.RebuildHierarchy(1)
	for s := 0; s < 3; s++ {
		h.Step()
	}
	for _, lv := range h.Levels {
		for _, g := range lv {
			for _, v := range g.State.Rho.Data {
				if math.IsNaN(v) || v < 0 {
					t.Fatalf("bad density %v after extreme state", v)
				}
			}
			for _, v := range g.State.Eint.Data {
				if math.IsNaN(v) {
					t.Fatal("NaN energy after extreme state")
				}
			}
		}
	}
}

func TestParallelWorkersMatchSerial(t *testing.T) {
	// The worker pool must produce bit-identical physics to the serial
	// path (grids are independent within a level).
	run := func(workers int) *Hierarchy {
		cfg := DefaultConfig(16)
		cfg.SelfGravity = false
		cfg.JeansN = 0
		cfg.StaticLevels = 1
		cfg.StaticLo = [3]float64{0.2, 0.2, 0.2}
		cfg.StaticHi = [3]float64{0.8, 0.8, 0.8}
		cfg.MaxLevel = 1
		cfg.MaxGridSize = 8 // force several subgrids
		cfg.Workers = workers
		h, err := NewHierarchy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		root := h.Root()
		fillState(root.State, 1, 0, 0, 0, 1)
		for k := 0; k < 16; k++ {
			for j := 0; j < 16; j++ {
				for i := 0; i < 16; i++ {
					root.State.Rho.Set(i, j, k, 1+0.5*math.Sin(float64(i+2*j+3*k)))
				}
			}
		}
		h.RebuildHierarchy(1)
		for s := 0; s < 2; s++ {
			h.Step()
		}
		return h
	}
	hs := run(1)
	hp := run(4)
	if len(hs.Levels[1]) != len(hp.Levels[1]) {
		t.Fatalf("grid structure diverged: %d vs %d", len(hs.Levels[1]), len(hp.Levels[1]))
	}
	for k := 0; k < 16; k++ {
		for j := 0; j < 16; j++ {
			for i := 0; i < 16; i++ {
				a := hs.Root().State.Rho.At(i, j, k)
				b := hp.Root().State.Rho.At(i, j, k)
				if a != b {
					t.Fatalf("parallel/serial mismatch at (%d,%d,%d): %v vs %v", i, j, k, a, b)
				}
			}
		}
	}
}

func TestDeepHierarchyCascade(t *testing.T) {
	// Force a 4-level cascade with nested static regions and verify
	// nesting, dx halving and EPA edge consistency at every level.
	cfg := DefaultConfig(16)
	cfg.SelfGravity = false
	cfg.JeansN = 0
	cfg.StaticLevels = 4
	cfg.StaticLo = [3]float64{0.375, 0.375, 0.375}
	cfg.StaticHi = [3]float64{0.625, 0.625, 0.625}
	cfg.MaxLevel = 4
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillState(h.Root().State, 1, 0, 0, 0, 1)
	h.RebuildHierarchy(1)
	if h.MaxLevel() != 4 {
		t.Fatalf("cascade depth %d, want 4", h.MaxLevel())
	}
	if sdr := h.SpatialDynamicRange(); sdr != 256 {
		t.Fatalf("SDR %v, want 256", sdr)
	}
	for l := 1; l <= 4; l++ {
		for _, g := range h.Levels[l] {
			if math.Abs(g.Dx*float64(int(1)<<l)*16-1) > 1e-12 {
				t.Fatalf("level %d dx wrong: %v", l, g.Dx)
			}
			// EPA edge equals Lo*dx to double-double accuracy.
			want := ep128.FromInt(int64(g.Lo[0])).DivFloat(16 * math.Pow(2, float64(l)))
			if !g.Edge[0].Sub(want).Abs().Less(ep128.FromFloat64(1e-25)) {
				t.Fatalf("level %d EPA edge mismatch", l)
			}
		}
	}
	// One step through the full cascade must conserve mass.
	m0 := h.TotalGasMass()
	h.Step()
	if rel := math.Abs(h.TotalGasMass()-m0) / m0; rel > 1e-9 {
		t.Fatalf("deep cascade mass drift %e", rel)
	}
}

func TestSpeciesThroughHierarchy(t *testing.T) {
	// Advected species must survive prolongation, projection and flux
	// correction with conserved totals.
	cfg := DefaultConfig(16)
	cfg.SelfGravity = false
	cfg.JeansN = 0
	cfg.StaticLevels = 1
	cfg.StaticLo = [3]float64{0.25, 0.25, 0.25}
	cfg.StaticHi = [3]float64{0.75, 0.75, 0.75}
	cfg.MaxLevel = 1
	cfg.NSpecies = 2
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := h.Root()
	fillState(root.State, 1, 0.2, 0, 0, 1)
	root.State.Species[0].Fill(0.76)
	root.State.Species[1].Fill(0.24)
	h.RebuildHierarchy(1)
	vol := root.CellVolume()
	s0 := root.State.Species[0].SumActive() * vol
	for s := 0; s < 3; s++ {
		h.Step()
	}
	s1 := root.State.Species[0].SumActive() * vol
	if rel := math.Abs(s1-s0) / s0; rel > 1e-9 {
		t.Fatalf("species mass drift %e through hierarchy", rel)
	}
	// Fractions preserved everywhere (uniform fractions stay uniform).
	for _, g := range h.Levels[1] {
		for k := 0; k < g.Nz; k++ {
			for j := 0; j < g.Ny; j++ {
				for i := 0; i < g.Nx; i++ {
					f := g.State.Species[0].At(i, j, k) / g.State.Rho.At(i, j, k)
					if math.Abs(f-0.76) > 1e-9 {
						t.Fatalf("species fraction drifted: %v", f)
					}
				}
			}
		}
	}
}
