package amr

import (
	"math"
	"testing"

	"repro/internal/cosmology"
	"repro/internal/physics"
	"repro/internal/units"
)

func TestCoolParamsRedshiftTracksExpansion(t *testing.T) {
	// Offline consumers (analysis.CoolingTime) read h.Cfg.CoolParams;
	// it must follow the expansion factor as the run evolves.
	h := uniformTestHierarchy(t)
	h.Cfg.Cosmo = cosmology.NewBackground(cosmology.StandardCDM(), 0.05)
	h.Cfg.InitialA = 0.05
	h.Cfg.Units = units.Cosmological(units.MpcCM, 1, 0.5, 0.05)
	h.Cfg.CoolParams.Redshift = 19
	h.Step()
	if want := 1/h.Cfg.Cosmo.A - 1; h.Cfg.CoolParams.Redshift != want {
		t.Fatalf("CoolParams.Redshift = %v, want %v (a=%v)",
			h.Cfg.CoolParams.Redshift, want, h.Cfg.Cosmo.A)
	}
}

// probeOp is a custom per-grid operator verifying the pipeline extension
// point: it counts applies and can impose a timestep constraint.
type probeOp struct {
	applies int
	lastDt  float64
	dtLimit float64
}

func (*probeOp) Name() string                 { return "probe" }
func (*probeOp) Component() physics.Component { return physics.CompOther }
func (*probeOp) NGhost() int                  { return 0 }
func (o *probeOp) Apply(_ *physics.Context, _ *physics.Grid, dt float64) {
	o.applies++
	o.lastDt = dt
}
func (o *probeOp) Timestep(*physics.Context, *physics.Grid) float64 {
	if o.dtLimit > 0 {
		return o.dtLimit
	}
	return math.Inf(1)
}

// levelProbeOp additionally implements physics.LevelOperator: its work
// runs once per level step, and its per-grid Apply must be skipped.
type levelProbeOp struct {
	probeOp
	levelCalls int
}

func (*levelProbeOp) Name() string                       { return "levelprobe" }
func (o *levelProbeOp) ApplyLevel(level int, dt float64) { o.levelCalls++ }

func uniformTestHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	cfg := DefaultConfig(8)
	cfg.JeansN = 0
	cfg.MaxLevel = 0
	cfg.DisableRebuild = true
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := h.Root()
	for idx := range root.State.Rho.Data {
		root.State.Rho.Data[idx] = 1
		root.State.Eint.Data[idx] = 1
		root.State.Etot.Data[idx] = 1
	}
	return h
}

func TestCustomOperatorRunsInPipeline(t *testing.T) {
	h := uniformTestHierarchy(t)
	probe := &probeOp{}
	lprobe := &levelProbeOp{}
	h.Physics.Append(probe, lprobe)

	h.Step()
	h.Step()

	// One grid, one step per root step: the grid probe ran per
	// grid-step, the level probe once per level-step — and only in its
	// level stage (LevelOperators are skipped in the per-grid sweep).
	if probe.applies != 2 {
		t.Errorf("custom operator applied %d times, want 2", probe.applies)
	}
	if lprobe.levelCalls != 2 {
		t.Errorf("custom level stage ran %d times, want 2", lprobe.levelCalls)
	}
	if lprobe.applies != 0 {
		t.Errorf("LevelOperator's per-grid Apply ran %d times, want 0", lprobe.applies)
	}
	if probe.lastDt <= 0 {
		t.Error("operator saw no timestep")
	}
	// Per-operator timing reached the Timing table, billed to Other.
	if _, ok := h.Timing.PerOp["probe"]; !ok {
		t.Errorf("probe missing from PerOp table: %v", h.Timing.PerOp)
	}
	if h.Timing.PerOp["hydro"] == 0 {
		t.Error("hydro operator time not accounted")
	}
	if h.Timing.Other == 0 {
		t.Error("CompOther time not billed to Timing.Other")
	}
}

func TestCustomTimestepConstraint(t *testing.T) {
	h := uniformTestHierarchy(t)
	probe := &probeOp{dtLimit: 1e-4}
	h.Physics.Append(probe)
	if dt := h.ComputeTimestep(0); dt != 1e-4 {
		t.Fatalf("custom constraint ignored: dt=%v", dt)
	}
}

func TestPipelineDefaultOrder(t *testing.T) {
	h := uniformTestHierarchy(t)
	want := []string{"gravity.solve", "gravity.kick", "hydro", "gravity.kick", "nbody", "expansion", "chemistry"}
	got := h.Physics.Names()
	if len(got) != len(want) {
		t.Fatalf("pipeline %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pipeline %v, want %v", got, want)
		}
	}
}

func TestOversizedStencilRejected(t *testing.T) {
	h := uniformTestHierarchy(t)
	h.Physics.Append(&wideOp{})
	defer func() {
		if recover() == nil {
			t.Fatal("stencil wider than the allocated ghosts must be rejected")
		}
	}()
	h.Step()
}

type wideOp struct{ probeOp }

func (*wideOp) Name() string { return "wide" }
func (*wideOp) NGhost() int  { return 99 }
