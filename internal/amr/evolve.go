package amr

import (
	"fmt"
	"math"
	"time"

	"repro/internal/gravity"
	"repro/internal/hydro"
	"repro/internal/mesh"
	"repro/internal/nbody"
	"repro/internal/par"
	"repro/internal/physics"
)

// Timing accumulates wall-clock time per science component, reproducing
// the paper's §5 component-usage table.
type Timing struct {
	Hydro     time.Duration
	Gravity   time.Duration
	Chemistry time.Duration
	NBody     time.Duration
	Rebuild   time.Duration
	Boundary  time.Duration
	Other     time.Duration

	// PerOp breaks the component rows down by pipeline operator name (a
	// finer-grained view of the same wall-clock time, not additive on
	// top of it).
	PerOp map[string]time.Duration
}

// Total returns the summed component time.
func (t Timing) Total() time.Duration {
	return t.Hydro + t.Gravity + t.Chemistry + t.NBody + t.Rebuild + t.Boundary + t.Other
}

// addOp bills d to the operator's component row and its per-op entry.
func (t *Timing) addOp(name string, comp physics.Component, d time.Duration) {
	switch comp {
	case physics.CompHydro:
		t.Hydro += d
	case physics.CompGravity:
		t.Gravity += d
	case physics.CompChemistry:
		t.Chemistry += d
	case physics.CompNBody:
		t.NBody += d
	default:
		t.Other += d
	}
	if t.PerOp == nil {
		t.PerOp = map[string]time.Duration{}
	}
	t.PerOp[name] += d
}

// mergeGridStep folds the per-grid-step timing of a concurrently stepped
// grid (accumulated on a shadow hierarchy) into t.
func (t *Timing) mergeGridStep(o Timing) {
	t.Hydro += o.Hydro
	t.Gravity += o.Gravity
	t.Chemistry += o.Chemistry
	t.NBody += o.NBody
	t.Other += o.Other
	for name, d := range o.PerOp {
		if t.PerOp == nil {
			t.PerOp = map[string]time.Duration{}
		}
		t.PerOp[name] += d
	}
}

// gravitySolveOp is the driver's LevelOperator realizing self-gravity:
// the Poisson solve couples all grids of a level through sibling boundary
// exchange, so it runs once per level step before the per-grid sweep. The
// per-grid velocity kicks are the separate physics.GravityKickOp entries.
type gravitySolveOp struct{ h *Hierarchy }

func (*gravitySolveOp) Name() string                                   { return "gravity.solve" }
func (*gravitySolveOp) Component() physics.Component                   { return physics.CompGravity }
func (*gravitySolveOp) NGhost() int                                    { return 1 }
func (*gravitySolveOp) Apply(*physics.Context, *physics.Grid, float64) {}
func (*gravitySolveOp) Timestep(*physics.Context, *physics.Grid) float64 {
	return math.Inf(1)
}

// ApplyLevel solves the Poisson equation on every grid of the level.
func (o *gravitySolveOp) ApplyLevel(level int, dt float64) {
	if o.h.Cfg.SelfGravity {
		o.h.solveGravityLevel(level)
	}
}

// pipeline returns the hierarchy's operator pipeline, installing the
// default when none was set (e.g. a zero-literal Hierarchy in tests), and
// rejects operators whose stencil exceeds the allocated ghost depth.
func (h *Hierarchy) pipeline() *physics.Pipeline {
	if h.Physics == nil {
		h.Physics = DefaultPipeline(h)
	}
	if ng := h.Physics.MaxNGhost(); ng > hydro.NGhost {
		panic(fmt.Sprintf("amr: pipeline needs %d ghost zones, grids allocate %d", ng, hydro.NGhost))
	}
	return h.Physics
}

// physicsContext assembles the operator environment from the run config.
func (h *Hierarchy) physicsContext() physics.Context {
	c := &h.Cfg
	return physics.Context{
		Hydro:       c.Hydro,
		Solver:      c.Solver,
		SelfGravity: c.SelfGravity,
		Chemistry:   c.Chemistry,
		ChemParams:  c.ChemParams,
		CoolParams:  c.CoolParams,
		Units:       c.Units,
		Cosmo:       c.Cosmo,
		InitialA:    c.InitialA,
		Workers:     c.Workers,
	}
}

// gridView builds the per-grid operator view.
func (h *Hierarchy) gridView(g *Grid, st *physics.OpStats) physics.Grid {
	return physics.Grid{
		State: g.State, Dx: g.Dx, Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		Level: g.Level, Root: g.Level == 0,
		GAcc: g.GAcc, Parts: g.Parts, Geom: g.Geom(),
		Reg: g.Reg, Taps: g.Taps,
		Parity: h.parity, Stats: st,
	}
}

// Step advances the whole hierarchy by one root-grid timestep, running the
// full W-cycle over all refined levels, and returns the dt taken.
func (h *Hierarchy) Step() float64 {
	dt := h.ComputeTimestep(0)
	target := h.levelTime(0) + dt
	h.EvolveLevel(0, target)
	h.Time = target
	if h.Cfg.Cosmo != nil {
		h.Cfg.Cosmo.Advance(dt * h.Cfg.Units.Time)
		// Keep the diagnostic cooling parameters tracking the expansion
		// (the chemistry operator computes its own in-step redshift from
		// a; this copy serves offline consumers like analysis.CoolingTime).
		h.Cfg.CoolParams.Redshift = 1/h.Cfg.Cosmo.A - 1
	}
	h.Stats.StepsTaken++
	return dt
}

// levelTime returns the current time of the given level (all grids on a
// level advance together).
func (h *Hierarchy) levelTime(level int) float64 {
	if level >= len(h.Levels) || len(h.Levels[level]) == 0 {
		return h.Time
	}
	return h.Levels[level][0].Time
}

// EvolveLevel is the recursive heart of the method (paper §3.2): advance
// the grids on one level to ParentTime with as many of their own (smaller)
// timesteps as needed, recursively advancing all finer levels after each,
// then restoring coarse/fine consistency.
func (h *Hierarchy) EvolveLevel(level int, parentTime float64) {
	if level >= len(h.Levels) || len(h.Levels[level]) == 0 {
		return
	}
	h.setBoundaries(level)
	for {
		now := h.levelTime(level)
		if now >= parentTime-1e-14*math.Max(1, math.Abs(parentTime)) {
			break
		}
		dt := h.ComputeTimestep(level)
		if now+dt > parentTime {
			dt = parentTime - now
		}
		for _, op := range h.pipeline().Ops() {
			if lop, ok := op.(physics.LevelOperator); ok {
				t0 := time.Now()
				lop.ApplyLevel(level, dt)
				h.Timing.addOp(op.Name(), op.Component(), time.Since(t0))
			}
		}
		h.installTaps(level)
		h.stepLevelGrids(level, dt)
		t0 := time.Now()
		h.setBoundaries(level)
		h.Timing.Boundary += time.Since(t0)

		h.EvolveLevel(level+1, h.levelTime(level))

		t0 = time.Now()
		h.reconcileSiblingFluxes(level + 1)
		h.fluxCorrect(level)
		h.project(level)
		h.Timing.Other += time.Since(t0)

		t0 = time.Now()
		h.RebuildHierarchy(level + 1)
		h.Timing.Rebuild += time.Since(t0)
		h.parity++
	}
}

// stepLevelGrids advances every grid on a level by dt on the shared par
// engine (grids are independent once boundaries and taps are set; the
// particle-lift pass mutates ancestors and runs serially afterwards).
func (h *Hierarchy) stepLevelGrids(level int, dt float64) {
	grids := h.Levels[level]
	workers := par.Workers(h.Cfg.Workers)
	if workers <= 1 || len(grids) == 1 {
		for _, g := range grids {
			h.stepGrid(g, dt)
			h.liftEscapedParticles(g)
		}
		return
	}
	pipe := h.pipeline()
	timings := make([]Timing, len(grids))
	stats := make([]Stats, len(grids))
	// Split the worker budget between grid-level and in-grid parallelism:
	// many small grids → one worker each; few grids → each gets a share
	// of the pool for its pencil/chemistry loops. The share rounds up so
	// a remainder (e.g. 8 workers, 9 grids) doesn't strand cores on the
	// level's tail; the slight overcommit is absorbed by chunk stealing.
	inner := (workers + len(grids) - 1) / len(grids)
	par.For(workers, len(grids), 1, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			// Each grid accumulates into a private shadow view (Cfg is
			// copied by value); deltas merge in grid order afterwards.
			sub := &Hierarchy{Cfg: h.Cfg, Levels: h.Levels, Time: h.Time, parity: h.parity, Physics: pipe}
			sub.Cfg.Workers = inner
			sub.stepGrid(grids[i], dt)
			timings[i] = sub.Timing
			stats[i] = sub.Stats
		}
	})
	for i, g := range grids {
		h.Timing.mergeGridStep(timings[i])
		h.Stats.CellUpdates += stats[i].CellUpdates
		h.Stats.ChemCellCalls += stats[i].ChemCellCalls
		h.Stats.ParticleKicks += stats[i].ParticleKicks
		h.liftEscapedParticles(g)
	}
}

// stepGrid advances one grid by dt by running the operator pipeline in
// order (default: gravity half-kick, hydro sweep set, half-kick, particle
// KDK, expansion drag, chemistry), billing each operator's wall-clock time
// to its Timing component.
func (h *Hierarchy) stepGrid(g *Grid, dt float64) {
	ctx := h.physicsContext()
	var st physics.OpStats
	view := h.gridView(g, &st)
	for _, op := range h.pipeline().Ops() {
		if _, level := op.(physics.LevelOperator); level {
			// Level-wide work already ran (and was billed) in
			// EvolveLevel's per-level stage.
			continue
		}
		t0 := time.Now()
		op.Apply(&ctx, &view, dt)
		h.Timing.addOp(op.Name(), op.Component(), time.Since(t0))
	}
	h.Stats.CellUpdates += st.CellUpdates
	h.Stats.ChemCellCalls += st.ChemCellCalls
	h.Stats.ParticleKicks += st.ParticleKicks
	g.Time += dt
}

// ComputeTimestep returns the stable dt for a level: the minimum operator
// stability limit over its grids (hydro CFL, particle-crossing, the 2%
// expansion-factor limit — each owned by its operator's Timestep hook),
// falling back to 1e-3 when nothing constrains.
func (h *Hierarchy) ComputeTimestep(level int) float64 {
	dt := math.Inf(1)
	ctx := h.physicsContext()
	pipe := h.pipeline()
	if level < len(h.Levels) {
		for _, g := range h.Levels[level] {
			var st physics.OpStats
			view := h.gridView(g, &st)
			if d := pipe.Timestep(&ctx, &view); d < dt {
				dt = d
			}
		}
	}
	if math.IsInf(dt, 1) {
		dt = 1e-3
	}
	return dt
}

// setBoundaries fills the ghost zones of every grid on a level: periodic
// for the root, parent interpolation then sibling exchange for subgrids
// (paper §3.2.1, the two-step procedure).
func (h *Hierarchy) setBoundaries(level int) {
	if level >= len(h.Levels) {
		return
	}
	for _, g := range h.Levels[level] {
		h.Stats.BoundaryFills++
		if g.Level == 0 {
			for _, f := range g.totalFields() {
				f.ApplyPeriodicBC()
			}
			continue
		}
		fillGhostsFromParent(g, h.Cfg.Refine)
	}
	// Sibling pass: overwrite ghost values where a same-level grid has
	// the higher-resolution answer. Periodic images are included (a grid
	// spanning the box is its own periodic sibling), so fine data wins
	// over coarse parent interpolation across the box boundary too.
	B := h.levelBoxCells(level)
	for _, g := range h.Levels[level] {
		if g.Level == 0 {
			continue
		}
		for _, s := range h.Levels[level] {
			for _, sh := range periodicShifts(B) {
				if s == g && sh == [3]int{} {
					continue
				}
				di := s.Lo[0] + sh[0] - g.Lo[0]
				dj := s.Lo[1] + sh[1] - g.Lo[1]
				dk := s.Lo[2] + sh[2] - g.Lo[2]
				// Quick reject: no overlap within ghost halo.
				if di > g.Nx+hydro.NGhost || di+s.Nx < -hydro.NGhost ||
					dj > g.Ny+hydro.NGhost || dj+s.Ny < -hydro.NGhost ||
					dk > g.Nz+hydro.NGhost || dk+s.Nz < -hydro.NGhost {
					continue
				}
				gf := g.totalFields()
				sf := s.totalFields()
				for fi := range gf {
					mesh.CopyOverlap(gf[fi], sf[fi], di, dj, dk, hydro.NGhost)
				}
			}
		}
	}
}

// levelBoxCells returns the number of cells spanning the periodic box at
// the given level.
func (h *Hierarchy) levelBoxCells(level int) int {
	n := h.Cfg.RootN
	for l := 0; l < level; l++ {
		n *= h.Cfg.Refine
	}
	return n
}

// periodicShifts enumerates the 27 periodic image offsets for box size B.
func periodicShifts(B int) [][3]int {
	out := make([][3]int, 0, 27)
	for _, sx := range [3]int{0, -B, B} {
		for _, sy := range [3]int{0, -B, B} {
			for _, sz := range [3]int{0, -B, B} {
				out = append(out, [3]int{sx, sy, sz})
			}
		}
	}
	return out
}

// fillGhostsFromParent interpolates every ghost cell of the child from its
// parent with limited linear reconstruction (all boundary values "first
// interpolated from the grid's parent").
func fillGhostsFromParent(g *Grid, refine int) {
	p := g.Parent
	if p == nil {
		return
	}
	oi, oj, ok := offsetWithin(p, g, refine)
	pf := p.totalFields()
	cf := g.totalFields()
	ng := hydro.NGhost
	rf := float64(refine)
	for fi := range cf {
		pField := pf[fi]
		cField := cf[fi]
		for k := -ng; k < g.Nz+ng; k++ {
			kGhost := k < 0 || k >= g.Nz
			for j := -ng; j < g.Ny+ng; j++ {
				jGhost := j < 0 || j >= g.Ny
				for i := -ng; i < g.Nx+ng; i++ {
					if !(kGhost || jGhost || i < 0 || i >= g.Nx) {
						i = g.Nx - 1 // skip interior span
						continue
					}
					fi3 := oi + i
					fj3 := oj + j
					fk3 := ok + k
					pi := floorDiv(fi3, refine)
					pj := floorDiv(fj3, refine)
					pk := floorDiv(fk3, refine)
					zi := (float64(fi3-pi*refine)+0.5)/rf - 0.5
					zj := (float64(fj3-pj*refine)+0.5)/rf - 0.5
					zk := (float64(fk3-pk*refine)+0.5)/rf - 0.5
					c := pField.At(pi, pj, pk)
					sx := minmod3(pField.At(pi-1, pj, pk), c, pField.At(pi+1, pj, pk))
					sy := minmod3(pField.At(pi, pj-1, pk), c, pField.At(pi, pj+1, pk))
					sz := minmod3(pField.At(pi, pj, pk-1), c, pField.At(pi, pj, pk+1))
					cField.Set(i, j, k, c+sx*zi+sy*zj+sz*zk)
				}
			}
		}
	}
}

func minmod3(l, c, r float64) float64 {
	dl := c - l
	dr := r - c
	if dl*dr <= 0 {
		return 0
	}
	if math.Abs(dl) < math.Abs(dr) {
		return dl
	}
	return dr
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// installTaps prepares each grid's interior flux taps at the boundary
// planes of its children, and zeroes the children's registers, readying
// one coarse step of flux bookkeeping.
func (h *Hierarchy) installTaps(level int) {
	r := h.Cfg.Refine
	for _, g := range h.Levels[level] {
		g.Taps = g.Taps[:0]
		for _, c := range g.Children {
			c.Reg.Zero()
			lo := [3]int{
				c.Lo[0]/r - g.Lo[0],
				c.Lo[1]/r - g.Lo[1],
				c.Lo[2]/r - g.Lo[2],
			}
			hi := [3]int{lo[0] + c.Nx/r, lo[1] + c.Ny/r, lo[2] + c.Nz/r}
			nsp := len(g.State.Species)
			// x faces: transverse (j,k); y faces: (i,k); z faces: (i,j).
			g.Taps = append(g.Taps,
				hydro.NewFluxTap(0, lo[0], lo[1], hi[1], lo[2], hi[2], nsp),
				hydro.NewFluxTap(0, hi[0], lo[1], hi[1], lo[2], hi[2], nsp),
				hydro.NewFluxTap(1, lo[1], lo[0], hi[0], lo[2], hi[2], nsp),
				hydro.NewFluxTap(1, hi[1], lo[0], hi[0], lo[2], hi[2], nsp),
				hydro.NewFluxTap(2, lo[2], lo[0], hi[0], lo[1], hi[1], nsp),
				hydro.NewFluxTap(2, hi[2], lo[0], hi[0], lo[1], hi[1], nsp),
			)
		}
	}
}

// solveGravityLevel solves the Poisson equation on every grid of a level:
// FFT on the periodic root, multigrid with parent-interpolated Dirichlet
// boundaries plus an iterative sibling exchange on subgrids (§3.3).
func (h *Hierarchy) solveGravityLevel(level int) {
	gc := h.gravConstNow()
	grids := h.Levels[level]
	for _, g := range grids {
		h.depositDM(g)
	}
	const siblingIters = 2
	for pass := 0; pass < siblingIters; pass++ {
		for _, g := range grids {
			h.Stats.GravitySolves++
			rhs := mesh.NewField3(g.Nx, g.Ny, g.Nz, 1)
			for k := 0; k < g.Nz; k++ {
				for j := 0; j < g.Ny; j++ {
					for i := 0; i < g.Nx; i++ {
						rhs.Set(i, j, k, gc*(g.State.Rho.At(i, j, k)+g.DMRho.At(i, j, k)-h.Cfg.MeanRho))
					}
				}
			}
			if g.Level == 0 {
				total := mesh.NewField3(g.Nx, g.Ny, g.Nz, 1)
				copy(total.Data, rhs.Data)
				phi, err := gravity.SolvePeriodicWorkers(total, g.Dx, 1.0, h.Cfg.Workers)
				if err == nil {
					// Copy into the grid's wider-ghost field.
					for k := 0; k < g.Nz; k++ {
						for j := 0; j < g.Ny; j++ {
							for i := 0; i < g.Nx; i++ {
								g.Phi.Set(i, j, k, phi.At(i, j, k))
							}
						}
					}
					g.Phi.ApplyPeriodicBC()
				}
				continue
			}
			// Subgrid: Dirichlet ghosts from the parent potential, then
			// overwrite with any sibling's fresher values.
			fillPhiGhosts(g, h.Cfg.Refine)
			for _, s := range grids {
				if s == g {
					continue
				}
				mesh.CopyOverlap(g.Phi, s.Phi, s.Lo[0]-g.Lo[0], s.Lo[1]-g.Lo[1], s.Lo[2]-g.Lo[2], 1)
			}
			mg := gravity.DefaultMGParams()
			mg.Workers = h.Cfg.Workers
			gravity.SolveMultigrid(g.Phi, rhs, g.Dx, mg)
			g.Phi.ApplyOutflowBC()
		}
	}
	for _, g := range grids {
		gx, gy, gz := gravity.Accelerations(g.Phi, g.Dx)
		if g.Level == 0 {
			gx.ApplyPeriodicBC()
			gy.ApplyPeriodicBC()
			gz.ApplyPeriodicBC()
		} else {
			gx.ApplyOutflowBC()
			gy.ApplyOutflowBC()
			gz.ApplyOutflowBC()
		}
		g.GAcc = [3]*mesh.Field3{gx, gy, gz}
	}
}

// fillPhiGhosts interpolates the parent's potential into the child's first
// ghost layer (the multigrid Dirichlet boundary).
func fillPhiGhosts(g *Grid, refine int) {
	p := g.Parent
	if p == nil {
		return
	}
	oi, oj, ok := offsetWithin(p, g, refine)
	rf := float64(refine)
	for k := -1; k <= g.Nz; k++ {
		kGhost := k < 0 || k >= g.Nz
		for j := -1; j <= g.Ny; j++ {
			jGhost := j < 0 || j >= g.Ny
			for i := -1; i <= g.Nx; i++ {
				if !(kGhost || jGhost || i < 0 || i >= g.Nx) {
					i = g.Nx - 1
					continue
				}
				fi3, fj3, fk3 := oi+i, oj+j, ok+k
				pi := floorDiv(fi3, refine)
				pj := floorDiv(fj3, refine)
				pk := floorDiv(fk3, refine)
				zi := (float64(fi3-pi*refine)+0.5)/rf - 0.5
				zj := (float64(fj3-pj*refine)+0.5)/rf - 0.5
				zk := (float64(fk3-pk*refine)+0.5)/rf - 0.5
				c := p.Phi.At(pi, pj, pk)
				sx := 0.5 * (p.Phi.At(pi+1, pj, pk) - p.Phi.At(pi-1, pj, pk))
				sy := 0.5 * (p.Phi.At(pi, pj+1, pk) - p.Phi.At(pi, pj-1, pk))
				sz := 0.5 * (p.Phi.At(pi, pj, pk+1) - p.Phi.At(pi, pj, pk-1))
				g.Phi.Set(i, j, k, c+sx*zi+sy*zj+sz*zk)
			}
		}
	}
}

// depositDM deposits every particle in the hierarchy onto g's DM density
// field (particles outside the grid's halo are skipped by the CIC kernel).
func (h *Hierarchy) depositDM(g *Grid) {
	g.DMRho.Zero()
	geom := g.Geom()
	for _, lv := range h.Levels {
		for _, o := range lv {
			if o.Parts.Len() > 0 {
				nbody.DepositCICWorkers(o.Parts, g.DMRho, geom, h.Cfg.Workers)
			}
		}
	}
	if g.Level == 0 {
		nbody.FoldGhostsPeriodic(g.DMRho)
	}
}

// liftEscapedParticles moves particles that drifted out of the grid's
// active region up to the first ancestor that contains them (or wraps them
// periodically at the root).
func (h *Hierarchy) liftEscapedParticles(g *Grid) {
	if g.Parent == nil {
		g.Parts.WrapPeriodic()
		return
	}
	kept := nbody.New(g.Parts.Len())
	for i := 0; i < g.Parts.Len(); i++ {
		if g.ContainsPos(g.Parts.X[i], g.Parts.Y[i], g.Parts.Z[i]) {
			kept.Add(g.Parts.X[i], g.Parts.Y[i], g.Parts.Z[i],
				g.Parts.Vx[i], g.Parts.Vy[i], g.Parts.Vz[i], g.Parts.Mass[i], g.Parts.ID[i])
			continue
		}
		anc := g.Parent
		for anc.Parent != nil && !anc.ContainsPos(g.Parts.X[i], g.Parts.Y[i], g.Parts.Z[i]) {
			anc = anc.Parent
		}
		anc.Parts.Add(g.Parts.X[i], g.Parts.Y[i], g.Parts.Z[i],
			g.Parts.Vx[i], g.Parts.Vy[i], g.Parts.Vz[i], g.Parts.Mass[i], g.Parts.ID[i])
	}
	g.Parts = kept
}

// fluxCorrect replaces the coarse flux through each child-boundary face
// with the time-accumulated fine flux, correcting the adjacent uncovered
// coarse cells (paper §3.2.1: mass, momentum and energy conservation as
// material flows into and out of refined regions).
func (h *Hierarchy) fluxCorrect(level int) {
	if level >= len(h.Levels) {
		return
	}
	r := h.Cfg.Refine
	r2 := float64(r * r)
	for _, g := range h.Levels[level] {
		for ci, c := range g.Children {
			taps := g.Taps[6*ci : 6*ci+6]
			lo := [3]int{c.Lo[0]/r - g.Lo[0], c.Lo[1]/r - g.Lo[1], c.Lo[2]/r - g.Lo[2]}
			hi := [3]int{lo[0] + c.Nx/r, lo[1] + c.Ny/r, lo[2] + c.Nz/r}
			for face := 0; face < 6; face++ {
				dir := face / 2
				high := face%2 == 1
				// Coarse cell just outside the face.
				var ci0 int
				if high {
					ci0 = hi[dir]
				} else {
					ci0 = lo[dir] - 1
				}
				n := [3]int{g.Nx, g.Ny, g.Nz}
				if ci0 < 0 || ci0 >= n[dir] {
					if g.Level == 0 {
						// The root is periodic: wrap to the image cell.
						ci0 = ((ci0 % n[dir]) + n[dir]) % n[dir]
					} else {
						continue // neighbour cell belongs to a sibling/parent
					}
				}
				t1lo, t1hi, t2lo, t2hi := tapTransverse(lo, hi, dir)
				for c2 := t2lo; c2 < t2hi; c2++ {
					for c1 := t1lo; c1 < t1hi; c1++ {
						i, j, k := cellFromFace(dir, ci0, c1, c2)
						if h.coveredByChild(g, i, j, k) {
							continue
						}
						// Fine flux: average child register over r^2
						// fine faces (dt-integrated).
						h.applyCorrection(g, c, taps[face], face, dir, high, i, j, k, c1, c2, r, r2)
					}
				}
			}
		}
	}
}

func tapTransverse(lo, hi [3]int, dir int) (int, int, int, int) {
	switch dir {
	case 0:
		return lo[1], hi[1], lo[2], hi[2]
	case 1:
		return lo[0], hi[0], lo[2], hi[2]
	default:
		return lo[0], hi[0], lo[1], hi[1]
	}
}

func cellFromFace(dir, ci0, c1, c2 int) (int, int, int) {
	switch dir {
	case 0:
		return ci0, c1, c2
	case 1:
		return c1, ci0, c2
	default:
		return c1, c2, ci0
	}
}

// applyCorrection adjusts one coarse cell for one face's flux mismatch.
func (h *Hierarchy) applyCorrection(g, c *Grid, tap *hydro.FluxTap, face, dir int, high bool, i, j, k, c1, c2, r int, r2 float64) {
	// Child register face index layout matches hydro.FluxRegister.
	reg := c.Reg
	nf := reg.NFields
	fine := make([]float64, nf)
	// Child-local transverse ranges of the r^2 fine faces for this
	// coarse face cell. c1/c2 are in g's active coords; child-local
	// coarse offsets:
	lo := [3]int{c.Lo[0]/r - g.Lo[0], c.Lo[1]/r - g.Lo[1], c.Lo[2]/r - g.Lo[2]}
	var f1, f2 int // fine transverse start indices in child coords
	switch dir {
	case 0:
		f1 = (c1 - lo[1]) * r
		f2 = (c2 - lo[2]) * r
	case 1:
		f1 = (c1 - lo[0]) * r
		f2 = (c2 - lo[2]) * r
	default:
		f1 = (c1 - lo[0]) * r
		f2 = (c2 - lo[1]) * r
	}
	for q := 0; q < nf; q++ {
		var s float64
		for b := 0; b < r; b++ {
			for a := 0; a < r; a++ {
				s += regFaceAt(reg, face, q, f1+a, f2+b)
			}
		}
		fine[q] = s / r2
	}
	h.Stats.FluxCorrCells++

	st := g.State
	rho := st.Rho.At(i, j, k)
	mom := [3]float64{
		rho * st.Vx.At(i, j, k),
		rho * st.Vy.At(i, j, k),
		rho * st.Vz.At(i, j, k),
	}
	etot := rho * st.Etot.At(i, j, k)

	sign := 1.0 // low face: cell to the left, face is its right face
	if high {
		sign = -1.0
	}
	inv := sign / g.Dx
	coarse := func(q int) float64 { return tap.At(q, c1, c2) }

	nrho := rho + inv*(coarse(hydro.FluxMass)-fine[hydro.FluxMass])
	if nrho <= h.Cfg.Hydro.FloorRho {
		return // refuse corrections that would evacuate the cell
	}
	mom[0] += inv * (coarse(hydro.FluxMomX) - fine[hydro.FluxMomX])
	mom[1] += inv * (coarse(hydro.FluxMomY) - fine[hydro.FluxMomY])
	mom[2] += inv * (coarse(hydro.FluxMomZ) - fine[hydro.FluxMomZ])
	etot += inv * (coarse(hydro.FluxEnergy) - fine[hydro.FluxEnergy])

	st.Rho.Set(i, j, k, nrho)
	st.Vx.Set(i, j, k, mom[0]/nrho)
	st.Vy.Set(i, j, k, mom[1]/nrho)
	st.Vz.Set(i, j, k, mom[2]/nrho)
	if e := etot / nrho; e > 0 {
		st.Etot.Set(i, j, k, e)
	}
	for sp := range st.Species {
		v := st.Species[sp].At(i, j, k) + inv*(coarse(hydro.FluxNumBase+sp)-fine[hydro.FluxNumBase+sp])
		if v < 0 {
			v = 0
		}
		st.Species[sp].Set(i, j, k, v)
	}
}

// regFaceAt reads a child's register face with the FluxRegister layout.
func regFaceAt(reg *hydro.FluxRegister, face, field, c1, c2 int) float64 {
	var stride int
	switch face / 2 {
	case 0:
		stride = reg.Ny
	default:
		stride = reg.Nx
	}
	return reg.Face[face][field][c1+stride*c2]
}

// coveredByChild reports whether coarse cell (i,j,k) of g lies under any
// of g's children.
func (h *Hierarchy) coveredByChild(g *Grid, i, j, k int) bool {
	r := h.Cfg.Refine
	gi, gj, gk := (g.Lo[0]+i)*r, (g.Lo[1]+j)*r, (g.Lo[2]+k)*r
	for _, c := range g.Children {
		if c.ContainsGlobal(gi, gj, gk) {
			return true
		}
	}
	return false
}

// project replaces every covered coarse cell with the conservative average
// of the fine solution (paper §3.2.1, the Projection step).
func (h *Hierarchy) project(level int) {
	if level+1 >= len(h.Levels) {
		return
	}
	r := h.Cfg.Refine
	r3 := float64(r * r * r)
	for _, g := range h.Levels[level] {
		for _, c := range g.Children {
			lo := [3]int{c.Lo[0]/r - g.Lo[0], c.Lo[1]/r - g.Lo[1], c.Lo[2]/r - g.Lo[2]}
			cs := c.State
			gs := g.State
			for pk := 0; pk < c.Nz/r; pk++ {
				for pj := 0; pj < c.Ny/r; pj++ {
					for pi := 0; pi < c.Nx/r; pi++ {
						var mRho, mMx, mMy, mMz, mE, mEi float64
						nsp := len(gs.Species)
						spSum := make([]float64, nsp)
						for dk := 0; dk < r; dk++ {
							for dj := 0; dj < r; dj++ {
								for di := 0; di < r; di++ {
									fi := pi*r + di
									fj := pj*r + dj
									fk := pk*r + dk
									rho := cs.Rho.At(fi, fj, fk)
									mRho += rho
									mMx += rho * cs.Vx.At(fi, fj, fk)
									mMy += rho * cs.Vy.At(fi, fj, fk)
									mMz += rho * cs.Vz.At(fi, fj, fk)
									mE += rho * cs.Etot.At(fi, fj, fk)
									mEi += rho * cs.Eint.At(fi, fj, fk)
									for sp := 0; sp < nsp; sp++ {
										spSum[sp] += cs.Species[sp].At(fi, fj, fk)
									}
								}
							}
						}
						i, j, k := lo[0]+pi, lo[1]+pj, lo[2]+pk
						if i < 0 || i >= g.Nx || j < 0 || j >= g.Ny || k < 0 || k >= g.Nz {
							continue
						}
						h.Stats.ProjectedCells++
						rho := mRho / r3
						gs.Rho.Set(i, j, k, rho)
						gs.Vx.Set(i, j, k, mMx/mRho)
						gs.Vy.Set(i, j, k, mMy/mRho)
						gs.Vz.Set(i, j, k, mMz/mRho)
						gs.Etot.Set(i, j, k, mE/mRho)
						gs.Eint.Set(i, j, k, mEi/mRho)
						for sp := 0; sp < nsp; sp++ {
							gs.Species[sp].Set(i, j, k, spSum[sp]/r3)
						}
					}
				}
			}
		}
	}
}
