package amr

import "repro/internal/hydro"

// reconcileSiblingFluxes restores exact conservation across faces shared
// by two same-level grids. During the directionally split step each grid
// computes its own flux at a shared face; after the first sweep the two
// estimates can differ slightly (the neighbour's intermediate state is not
// visible mid-step), so one grid's loss is not exactly the other's gain.
// This pass replaces both with their average using the dt-integrated
// fluxes already accumulated in the grids' boundary registers — the flux
// side of the same bookkeeping the coarse/fine correction uses.
func (h *Hierarchy) reconcileSiblingFluxes(level int) {
	if level <= 0 || level >= len(h.Levels) {
		return
	}
	grids := h.Levels[level]
	B := h.levelBoxCells(level)
	// Ordered enumeration: every physical shared face has exactly one
	// (left grid, right grid, shift) triple with a.Hi == b.Lo + shift.
	for _, a := range grids {
		for _, b := range grids {
			for _, sh := range periodicShifts(B) {
				if a == b && sh == [3]int{} {
					continue
				}
				for dir := 0; dir < 3; dir++ {
					if a.Hi()[dir] == b.Lo[dir]+sh[dir] {
						reconcilePair(a, b, dir, sh, h)
					}
				}
			}
		}
	}
}

// reconcilePair handles grid a's high face touching grid b's low face
// along dir, with b displaced by the periodic shift sh. Transverse overlap
// is computed in a's face coordinates.
func reconcilePair(a, b *Grid, dir int, sh [3]int, h *Hierarchy) {
	// Transverse dims (t1, t2) and sizes for the two grids.
	var an1, an2, bn1, bn2 int
	var aOff1, aOff2 int // b's (shifted) origin minus a's origin, transverse
	switch dir {
	case 0:
		an1, an2, bn1, bn2 = a.Ny, a.Nz, b.Ny, b.Nz
		aOff1, aOff2 = b.Lo[1]+sh[1]-a.Lo[1], b.Lo[2]+sh[2]-a.Lo[2]
	case 1:
		an1, an2, bn1, bn2 = a.Nx, a.Nz, b.Nx, b.Nz
		aOff1, aOff2 = b.Lo[0]+sh[0]-a.Lo[0], b.Lo[2]+sh[2]-a.Lo[2]
	default:
		an1, an2, bn1, bn2 = a.Nx, a.Ny, b.Nx, b.Ny
		aOff1, aOff2 = b.Lo[0]+sh[0]-a.Lo[0], b.Lo[1]+sh[1]-a.Lo[1]
	}
	lo1 := maxI(0, aOff1)
	hi1 := minI(an1, aOff1+bn1)
	lo2 := maxI(0, aOff2)
	hi2 := minI(an2, aOff2+bn2)
	if lo1 >= hi1 || lo2 >= hi2 {
		return
	}
	faceA := 2*dir + 1 // a's high face
	faceB := 2 * dir   // b's low face
	// a's last interior cell index along dir and b's first.
	aCell := [3]int{a.Nx - 1, a.Ny - 1, a.Nz - 1}[dir]
	nf := a.Reg.NFields
	for c2 := lo2; c2 < hi2; c2++ {
		for c1 := lo1; c1 < hi1; c1++ {
			// Register transverse strides per face orientation.
			ta := regAt(a.Reg, faceA, c1, c2)
			tb := regAt(b.Reg, faceB, c1-aOff1, c2-aOff2)
			for q := 0; q < nf; q++ {
				avg := 0.5 * (ta[q] + tb[q])
				dA := (ta[q] - avg) / a.Dx
				dB := (avg - tb[q]) / b.Dx
				applyFaceDelta(a, dir, aCell, c1, c2, q, dA, h)
				applyFaceDelta(b, dir, 0, c1-aOff1, c2-aOff2, q, dB, h)
			}
		}
	}
}

// regAt returns the per-field dt-integrated fluxes of one face cell.
func regAt(reg *hydro.FluxRegister, face, c1, c2 int) []float64 {
	var stride int
	if face/2 == 0 {
		stride = reg.Ny
	} else {
		stride = reg.Nx
	}
	out := make([]float64, reg.NFields)
	idx := c1 + stride*c2
	for q := 0; q < reg.NFields; q++ {
		out[q] = reg.Face[face][q][idx]
	}
	return out
}

// applyFaceDelta adds a conserved-variable increment to the cell adjacent
// to a face. cAlong is the cell index along dir; (c1,c2) are transverse.
func applyFaceDelta(g *Grid, dir, cAlong, c1, c2, field int, delta float64, h *Hierarchy) {
	if delta == 0 {
		return
	}
	var i, j, k int
	switch dir {
	case 0:
		i, j, k = cAlong, c1, c2
	case 1:
		i, j, k = c1, cAlong, c2
	default:
		i, j, k = c1, c2, cAlong
	}
	st := g.State
	rho := st.Rho.At(i, j, k)
	switch field {
	case hydro.FluxMass:
		nrho := rho + delta
		if nrho <= h.Cfg.Hydro.FloorRho {
			return
		}
		// Keep velocity and specific energies fixed under a pure mass
		// change of the conserved set: momenta and E are corrected by
		// their own field updates below; here adjust rho and rescale.
		st.Vx.Set(i, j, k, st.Vx.At(i, j, k)*rho/nrho)
		st.Vy.Set(i, j, k, st.Vy.At(i, j, k)*rho/nrho)
		st.Vz.Set(i, j, k, st.Vz.At(i, j, k)*rho/nrho)
		st.Etot.Set(i, j, k, st.Etot.At(i, j, k)*rho/nrho)
		st.Eint.Set(i, j, k, st.Eint.At(i, j, k)*rho/nrho)
		st.Rho.Set(i, j, k, nrho)
	case hydro.FluxMomX:
		st.Vx.Add(i, j, k, delta/rho)
	case hydro.FluxMomY:
		st.Vy.Add(i, j, k, delta/rho)
	case hydro.FluxMomZ:
		st.Vz.Add(i, j, k, delta/rho)
	case hydro.FluxEnergy:
		st.Etot.Add(i, j, k, delta/rho)
	default:
		sp := field - hydro.FluxNumBase
		v := st.Species[sp].At(i, j, k) + delta
		if v < 0 {
			v = 0
		}
		st.Species[sp].Set(i, j, k, v)
	}
}
