package amr

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Checksum returns a 64-bit FNV-1a digest of the hierarchy's complete
// evolving state: the root time, every grid's placement and geometry, the
// raw bits of every field (ghost zones included — boundary fills are
// deterministic), and the particle sets with their extended-precision
// positions. Two hierarchies that evolved through identical arithmetic
// hash identically, so the digest is the equality test behind the golden
// regression suite and the sim job cache: a changed bit anywhere in the
// solution changes the checksum.
//
// Grid kernels are bitwise identical at any worker count; only the CIC
// deposit's reduction order depends (deterministically) on it. Callers
// wanting machine-portable digests for particle problems must therefore
// pin Cfg.Workers.
func (h *Hierarchy) Checksum() uint64 {
	d := fnv.New64a()
	var buf [8]byte
	wf := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		d.Write(buf[:])
	}
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		d.Write(buf[:])
	}
	wf(h.Time)
	wi(int64(len(h.Levels)))
	for _, lv := range h.Levels {
		wi(int64(len(lv)))
		for _, g := range lv {
			wi(int64(g.Level))
			wi(int64(g.Lo[0]))
			wi(int64(g.Lo[1]))
			wi(int64(g.Lo[2]))
			wi(int64(g.Nx))
			wi(int64(g.Ny))
			wi(int64(g.Nz))
			for dim := 0; dim < 3; dim++ {
				wf(g.Edge[dim].Hi)
				wf(g.Edge[dim].Lo)
			}
			wf(g.Time)
			for _, f := range g.State.Fields() {
				for _, v := range f.Data {
					wf(v)
				}
			}
			if g.Parts != nil {
				wi(int64(g.Parts.Len()))
				for i := 0; i < g.Parts.Len(); i++ {
					wf(g.Parts.X[i].Hi)
					wf(g.Parts.X[i].Lo)
					wf(g.Parts.Y[i].Hi)
					wf(g.Parts.Y[i].Lo)
					wf(g.Parts.Z[i].Hi)
					wf(g.Parts.Z[i].Lo)
					wf(g.Parts.Vx[i])
					wf(g.Parts.Vy[i])
					wf(g.Parts.Vz[i])
					wf(g.Parts.Mass[i])
					wi(g.Parts.ID[i])
				}
			}
		}
	}
	return d.Sum64()
}

// ChecksumHex renders Checksum as the fixed-width hex string committed in
// golden files and returned by the sim job API.
func (h *Hierarchy) ChecksumHex() string {
	return fmt.Sprintf("%016x", h.Checksum())
}
