package amr

import (
	"math"
	"testing"

	"repro/internal/ep128"
	"repro/internal/hydro"
)

// uniformHierarchy builds a hierarchy with a uniform gas state and a
// static refined region in the center.
func uniformHierarchy(t *testing.T, rootN, staticLevels int) *Hierarchy {
	t.Helper()
	cfg := DefaultConfig(rootN)
	cfg.SelfGravity = false
	cfg.JeansN = 0
	cfg.StaticLevels = staticLevels
	cfg.StaticLo = [3]float64{0.25, 0.25, 0.25}
	cfg.StaticHi = [3]float64{0.75, 0.75, 0.75}
	cfg.MaxLevel = staticLevels
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := h.Root()
	fillState(root.State, 1.0, 0, 0, 0, 1.0)
	h.RebuildHierarchy(1)
	return h
}

func fillState(s *hydro.State, rho, vx, vy, vz, eint float64) {
	s.Rho.Fill(rho)
	s.Vx.Fill(vx)
	s.Vy.Fill(vy)
	s.Vz.Fill(vz)
	s.Eint.Fill(eint)
	for i := range s.Etot.Data {
		s.Etot.Data[i] = eint + 0.5*(vx*vx+vy*vy+vz*vz)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig(12) // not a power of two
	if err := bad.Validate(); err == nil {
		t.Error("RootN=12 should fail")
	}
	bad = DefaultConfig(16)
	bad.Refine = 1
	if err := bad.Validate(); err == nil {
		t.Error("Refine=1 should fail")
	}
	if err := DefaultConfig(16).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestStaticRefinementCreatesGrids(t *testing.T) {
	h := uniformHierarchy(t, 16, 2)
	if h.MaxLevel() != 2 {
		t.Fatalf("max level %d, want 2", h.MaxLevel())
	}
	if h.NumGrids() < 3 {
		t.Fatalf("expected at least 3 grids, got %d", h.NumGrids())
	}
	// The static region center must be covered at level 2.
	g := h.FinestGridAt(0.5, 0.5, 0.5)
	if g.Level != 2 {
		t.Fatalf("center covered at level %d, want 2", g.Level)
	}
	// Outside the static region: root only.
	g = h.FinestGridAt(0.05, 0.05, 0.05)
	if g.Level != 0 {
		t.Fatalf("corner covered at level %d, want 0", g.Level)
	}
	// Children contained within parents.
	for l := 1; l < len(h.Levels); l++ {
		for _, g := range h.Levels[l] {
			p := g.Parent
			if p == nil {
				t.Fatal("subgrid without parent")
			}
			r := h.Cfg.Refine
			for d := 0; d < 3; d++ {
				if g.Lo[d] < p.Lo[d]*r || g.Hi()[d] > p.Hi()[d]*r {
					t.Fatalf("grid %v not contained in parent %v", g, p)
				}
			}
		}
	}
}

func TestSDRAndGridStats(t *testing.T) {
	h := uniformHierarchy(t, 16, 2)
	if sdr := h.SpatialDynamicRange(); sdr != 64 {
		t.Errorf("SDR = %v, want 64 (16*2^2)", sdr)
	}
	gpl := h.GridsPerLevel()
	if gpl[0] != 1 {
		t.Errorf("root level grid count %d", gpl[0])
	}
	wpl := h.WorkPerLevel()
	if len(wpl) != len(gpl) {
		t.Error("work per level length mismatch")
	}
	// Work per cell grows with level (more steps).
	if wpl[1] <= 0 {
		t.Error("no work at level 1")
	}
}

func TestUniformStateStaysUniform(t *testing.T) {
	// The acid test of AMR plumbing: a uniform state must remain exactly
	// uniform through boundary interpolation, stepping on all levels,
	// flux correction and projection.
	h := uniformHierarchy(t, 16, 2)
	for s := 0; s < 2; s++ {
		h.Step()
	}
	root := h.Root()
	for k := 0; k < 16; k++ {
		for j := 0; j < 16; j++ {
			for i := 0; i < 16; i++ {
				if d := math.Abs(root.State.Rho.At(i, j, k) - 1); d > 1e-10 {
					t.Fatalf("root density perturbed at (%d,%d,%d) by %e", i, j, k, d)
				}
			}
		}
	}
	for _, g := range h.Levels[h.MaxLevel()] {
		mn, mx := g.State.Rho.MinMaxActive()
		if mx-mn > 1e-10 {
			t.Fatalf("fine grid density spread %e", mx-mn)
		}
	}
}

func TestWCycleTimestepOrder(t *testing.T) {
	// Subgrids must take multiple smaller steps per parent step and end
	// exactly at the parent time (Fig 2).
	h := uniformHierarchy(t, 16, 1)
	h.Step()
	rootTime := h.Root().Time
	for _, g := range h.Levels[1] {
		if math.Abs(g.Time-rootTime) > 1e-12 {
			t.Fatalf("subgrid time %v != root time %v", g.Time, rootTime)
		}
	}
	if h.Time != rootTime {
		t.Fatalf("hierarchy time %v != root time %v", h.Time, rootTime)
	}
}

func TestMassConservationWithRefinement(t *testing.T) {
	// A dense blob inside the refined region; total root-grid mass after
	// projection must be conserved through steps.
	h := uniformHierarchy(t, 16, 1)
	root := h.Root()
	for k := 6; k < 10; k++ {
		for j := 6; j < 10; j++ {
			for i := 6; i < 10; i++ {
				root.State.Rho.Set(i, j, k, 3.0)
				root.State.Eint.Set(i, j, k, 2.0)
				root.State.Etot.Set(i, j, k, 2.0)
			}
		}
	}
	// Force a from-scratch rebuild so the blob (set on the root after the
	// helper's rebuild) is prolonged into the fine grids rather than
	// overwritten by the pre-blob fine data.
	h.Levels = h.Levels[:1]
	root.Children = nil
	h.RebuildHierarchy(1)
	m0 := h.TotalGasMass()
	for s := 0; s < 3; s++ {
		h.Step()
	}
	m1 := h.TotalGasMass()
	if rel := math.Abs(m1-m0) / m0; rel > 1e-10 {
		t.Fatalf("mass drift %e across AMR steps", rel)
	}
}

func TestDynamicRefinementOnOverdensity(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.SelfGravity = false
	cfg.JeansN = 0
	cfg.MassThresholdGas = 2.0 / (16.0 * 16 * 16) // cells above rho~2 refine
	cfg.MaxLevel = 2
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillState(h.Root().State, 1, 0, 0, 0, 1)
	// Overdense clump.
	for k := 7; k < 9; k++ {
		for j := 7; j < 9; j++ {
			for i := 7; i < 9; i++ {
				h.Root().State.Rho.Set(i, j, k, 10)
			}
		}
	}
	h.RebuildHierarchy(1)
	if h.MaxLevel() < 1 {
		t.Fatal("overdensity did not trigger refinement")
	}
	g := h.FinestGridAt(0.5, 0.5, 0.5)
	if g.Level < 1 {
		t.Fatal("clump not covered by fine grid")
	}
	// The fine grid inherited the overdensity via prolongation.
	mn, mx := g.State.Rho.MinMaxActive()
	if mx < 5 {
		t.Errorf("fine grid max density %v; prolongation lost the clump", mx)
	}
	if mn <= 0 {
		t.Errorf("negative density after prolongation")
	}
}

func TestJeansRefinement(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.SelfGravity = true
	cfg.GravConst = 100.0 // strong gravity: short Jeans lengths
	cfg.JeansN = 4
	cfg.MaxLevel = 1
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillState(h.Root().State, 1, 0, 0, 0, 1)
	// Cold dense cell -> tiny Jeans length -> refinement.
	h.Root().State.Rho.Set(8, 8, 8, 50)
	h.Root().State.Eint.Set(8, 8, 8, 1e-4)
	h.RebuildHierarchy(1)
	if h.MaxLevel() != 1 {
		t.Fatal("Jeans criterion did not refine")
	}
}

func TestParticleAssignmentAndLifting(t *testing.T) {
	h := uniformHierarchy(t, 16, 1)
	root := h.Root()
	// A particle inside the static region must belong to the fine grid
	// after rebuild.
	root.Parts.Add(ep128.FromFloat64(0.5), ep128.FromFloat64(0.5), ep128.FromFloat64(0.5),
		0, 0, 0, 1e-3, 42)
	// One outside stays on the root.
	root.Parts.Add(ep128.FromFloat64(0.05), ep128.FromFloat64(0.05), ep128.FromFloat64(0.05),
		0, 0, 0, 1e-3, 43)
	h.RebuildHierarchy(1)
	if root.Parts.Len() != 1 || root.Parts.ID[0] != 43 {
		t.Fatalf("root should keep only particle 43, has %d", root.Parts.Len())
	}
	var fine *Grid
	for _, g := range h.Levels[1] {
		if g.Parts.Len() > 0 {
			fine = g
		}
	}
	if fine == nil || fine.Parts.ID[0] != 42 {
		t.Fatal("particle 42 not moved to fine grid")
	}
	// Teleport the fine particle outside its grid and lift.
	fine.Parts.X[0] = ep128.FromFloat64(0.02)
	h.liftEscapedParticles(fine)
	if fine.Parts.Len() != 0 {
		t.Fatal("escaped particle not lifted")
	}
	if root.Parts.Len() != 2 {
		t.Fatalf("root should now hold 2 particles, has %d", root.Parts.Len())
	}
}

func TestShockCrossingRefinedRegion(t *testing.T) {
	// Drive a planar shock through a statically refined slab; the shock
	// must emerge without blowing up, and total mass must be conserved.
	cfg := DefaultConfig(16)
	cfg.SelfGravity = false
	cfg.JeansN = 0
	cfg.StaticLevels = 1
	cfg.StaticLo = [3]float64{0.375, 0, 0}
	cfg.StaticHi = [3]float64{0.625, 1, 1}
	cfg.MaxLevel = 1
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := h.Root()
	fillState(root.State, 1, 0, 0, 0, 1)
	// High-pressure region on the left (periodic box: two shocks, but
	// the left-driven one crosses the refined slab first).
	for k := 0; k < 16; k++ {
		for j := 0; j < 16; j++ {
			for i := 0; i < 4; i++ {
				root.State.Rho.Set(i, j, k, 4)
				root.State.Eint.Set(i, j, k, 10)
				root.State.Etot.Set(i, j, k, 10)
			}
		}
	}
	h.RebuildHierarchy(1)
	m0 := h.TotalGasMass()
	for s := 0; s < 6; s++ {
		h.Step()
	}
	m1 := h.TotalGasMass()
	if rel := math.Abs(m1-m0) / m0; rel > 1e-9 {
		t.Fatalf("mass drift %e through refined shock", rel)
	}
	// Sanity: no NaNs or negative densities anywhere.
	for _, lv := range h.Levels {
		for _, g := range lv {
			mn, _ := g.State.Rho.MinMaxActive()
			if mn <= 0 || math.IsNaN(mn) {
				t.Fatalf("bad density %v on %v", mn, g)
			}
		}
	}
}

func TestSelfGravityCollapseDeepensHierarchy(t *testing.T) {
	// A cold massive clump under self-gravity must trigger progressively
	// deeper refinement — the paper's central phenomenon (Fig 5: levels
	// appear as collapse proceeds).
	cfg := DefaultConfig(16)
	cfg.SelfGravity = true
	cfg.GravConst = 30.0
	cfg.MeanRho = 1.0
	cfg.JeansN = 4
	cfg.MaxLevel = 3
	cfg.Hydro.CFL = 0.3
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := h.Root()
	fillState(root.State, 1, 0, 0, 0, 0.05)
	// Spherical overdensity in the center.
	for k := 0; k < 16; k++ {
		for j := 0; j < 16; j++ {
			for i := 0; i < 16; i++ {
				dx := (float64(i) + 0.5 - 8) / 16
				dy := (float64(j) + 0.5 - 8) / 16
				dz := (float64(k) + 0.5 - 8) / 16
				r2 := dx*dx + dy*dy + dz*dz
				root.State.Rho.Set(i, j, k, 1+8*math.Exp(-r2*200))
			}
		}
	}
	h.RebuildHierarchy(1)
	lvl0 := h.MaxLevel()
	for s := 0; s < 12; s++ {
		h.Step()
		if h.MaxLevel() >= 2 {
			break
		}
	}
	if h.MaxLevel() <= lvl0 && h.MaxLevel() < 2 {
		t.Fatalf("collapse did not deepen hierarchy: level stuck at %d", h.MaxLevel())
	}
	if h.Stats.GridsCreated == 0 {
		t.Error("no grids created during collapse")
	}
}

func TestTimestepHierarchyScaling(t *testing.T) {
	// A level-1 grid's stable dt must be about half the root's for the
	// same state (dx halves).
	h := uniformHierarchy(t, 16, 1)
	dt0 := h.ComputeTimestep(0)
	dt1 := h.ComputeTimestep(1)
	if math.Abs(dt1/dt0-0.5) > 0.05 {
		t.Errorf("dt ratio %v, want ~0.5", dt1/dt0)
	}
}

func BenchmarkAMRStepStatic2Levels(b *testing.B) {
	cfg := DefaultConfig(16)
	cfg.SelfGravity = false
	cfg.JeansN = 0
	cfg.StaticLevels = 2
	cfg.StaticLo = [3]float64{0.25, 0.25, 0.25}
	cfg.StaticHi = [3]float64{0.75, 0.75, 0.75}
	cfg.MaxLevel = 2
	h, err := NewHierarchy(cfg)
	if err != nil {
		b.Fatal(err)
	}
	fillState(h.Root().State, 1, 0.1, 0, 0, 1)
	h.RebuildHierarchy(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Step()
	}
}
