package amr

import (
	"fmt"
	"math"

	"repro/internal/chem"
	"repro/internal/cosmology"
	"repro/internal/hydro"
	"repro/internal/physics"
	"repro/internal/units"
)

// Config assembles the physics and refinement configuration of a run.
type Config struct {
	RootN    int // root grid cells per side (power of two for the FFT)
	Refine   int // refinement factor r (integer, 2 or 4)
	MaxLevel int // deepest level allowed (root = 0)

	Hydro  hydro.Params
	Solver hydro.Solver

	// Gravity.
	SelfGravity bool
	GravConst   float64 // coefficient C in ∇²φ = C (ρ-ρ̄) at the initial epoch
	MeanRho     float64 // background (non-gravitating) total density

	// Refinement criteria (paper §3.2.3).
	MassThresholdGas float64 // refine cell when gas mass exceeds this (0 disables)
	MassThresholdDM  float64 // same for dark matter (0 disables)
	JeansN           float64 // cells per Jeans length (0 disables)
	RefineBuffer     int     // flag-dilation buffer cells
	MinEfficiency    float64 // Berger–Rigoutsos efficiency
	MaxGridSize      int     // cap on subgrid edge (cells)

	// Static refined region (the paper's nested zoom-in ICs): levels
	// 1..StaticLevels always refine the box [StaticLo, StaticHi) given
	// in box units.
	StaticLevels       int
	StaticLo, StaticHi [3]float64

	// Chemistry & cooling.
	Chemistry  bool
	ChemParams chem.SolverParams
	CoolParams chem.CoolParams

	// Cosmology: if set, the expansion factor is advanced alongside the
	// simulation and comoving source terms are applied.
	Cosmo    *cosmology.Background
	InitialA float64
	Units    units.Units

	// DualEnergySpecies is the number of advected chemistry fields
	// (chem.NumSpecies when Chemistry is on, else 0).
	NSpecies int

	// DisableRebuild freezes the current grid structure (used by tests
	// and by static-mesh convergence studies).
	DisableRebuild bool

	// Workers is the single parallelism knob of the run, plumbed into
	// every hot kernel: the per-grid worker pool of stepLevelGrids (the
	// shared-memory realization of the paper's distributed-objects
	// strategy), the hydro pencil sweeps, multigrid smoothing, the
	// root-grid FFT line batches, the per-cell chemistry loop and the
	// CIC particle deposit. par conventions: 0 = runtime.NumCPU() (the
	// default), 1 = serial, n = exactly n workers. Grid-level results
	// are bitwise identical at any setting; only the N-body deposit
	// reduction order depends (deterministically) on the worker count.
	Workers int
}

// DefaultConfig returns a ready-to-run configuration for a small
// non-cosmological test problem.
func DefaultConfig(rootN int) Config {
	return Config{
		RootN:            rootN,
		Refine:           2,
		MaxLevel:         6,
		Hydro:            hydro.DefaultParams(),
		Solver:           hydro.SolverPPM,
		GravConst:        1,
		MeanRho:          0,
		MassThresholdGas: 0,
		JeansN:           4,
		RefineBuffer:     1,
		MinEfficiency:    0.7,
		MaxGridSize:      32,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.RootN < 4 || c.RootN&(c.RootN-1) != 0 {
		return fmt.Errorf("amr: RootN must be a power of two >= 4, got %d", c.RootN)
	}
	if c.Refine < 2 {
		return fmt.Errorf("amr: refinement factor must be >= 2, got %d", c.Refine)
	}
	if c.MaxLevel < 0 || c.MaxLevel > 40 {
		return fmt.Errorf("amr: MaxLevel %d out of range [0,40]", c.MaxLevel)
	}
	if err := c.Hydro.Validate(); err != nil {
		return err
	}
	return nil
}

// Hierarchy is the full adaptive grid tree plus simulation state.
type Hierarchy struct {
	Cfg    Config
	Levels [][]*Grid // Levels[l] lists the grids at level l; Levels[0] = {root}
	Time   float64   // root-grid time in code units
	Stats  Stats     // performance & structure accounting
	Timing Timing    // wall-clock component accounting (§5 table)
	// Physics is the operator pipeline executed per grid per level-step.
	// NewHierarchy installs DefaultPipeline; replace or extend it (see
	// physics.Pipeline) to add custom operators. Operators requiring
	// more than hydro.NGhost ghost zones are rejected at step time.
	Physics *physics.Pipeline
	parity  int
}

// Stats accumulates the structure metrics the paper plots in Fig. 5 and
// the component timings of the §5 table.
type Stats struct {
	StepsTaken     int
	RebuildCount   int
	GridsCreated   int64
	GridsDeleted   int64
	MaxLevelEver   int
	CellUpdates    int64
	ChemCellCalls  int64
	GravitySolves  int64
	ParticleKicks  int64
	BoundaryFills  int64
	FluxCorrCells  int64
	ProjectedCells int64
}

// NewHierarchy creates a hierarchy with an empty root grid.
func NewHierarchy(cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := NewGrid(0, [3]int{0, 0, 0}, cfg.RootN, cfg.RootN, cfg.RootN, cfg.RootN, cfg.Refine, cfg.NSpecies)
	h := &Hierarchy{Cfg: cfg, Levels: [][]*Grid{{root}}}
	h.Physics = DefaultPipeline(h)
	return h, nil
}

// DefaultPipeline returns the standard operator-split pipeline for h: the
// level-wide Poisson solve followed by the per-grid sequence of
// physics.DefaultOperators (gravity half-kick, hydro, half-kick, N-body
// KDK, expansion drag, chemistry). Every operator guards itself against
// configurations where it does not apply, so one pipeline serves all
// problems.
func DefaultPipeline(h *Hierarchy) *physics.Pipeline {
	ops := append([]physics.Operator{&gravitySolveOp{h: h}}, physics.DefaultOperators()...)
	return physics.NewPipeline(ops...)
}

// Root returns the root grid.
func (h *Hierarchy) Root() *Grid { return h.Levels[0][0] }

// Parity returns the Strang-splitting parity counter (persisted by
// checkpoints so a restart reproduces the sweep ordering exactly).
func (h *Hierarchy) Parity() int { return h.parity }

// SetParity restores the parity counter on restart.
func (h *Hierarchy) SetParity(p int) { h.parity = p }

// MaxLevel returns the index of the deepest currently populated level.
func (h *Hierarchy) MaxLevel() int {
	for l := len(h.Levels) - 1; l >= 0; l-- {
		if len(h.Levels[l]) > 0 {
			return l
		}
	}
	return 0
}

// NumGrids returns the total number of grids in the hierarchy.
func (h *Hierarchy) NumGrids() int {
	n := 0
	for _, lv := range h.Levels {
		n += len(lv)
	}
	return n
}

// GridsPerLevel returns the per-level grid counts.
func (h *Hierarchy) GridsPerLevel() []int {
	out := make([]int, len(h.Levels))
	for l, lv := range h.Levels {
		out[l] = len(lv)
	}
	return out
}

// WorkPerLevel estimates the computational work at each level: cells times
// the number of (fine) timesteps that level takes per root step, the
// quantity plotted in Fig. 5's bottom-right panel.
func (h *Hierarchy) WorkPerLevel() []float64 {
	out := make([]float64, len(h.Levels))
	for l, lv := range h.Levels {
		cells := 0
		for _, g := range lv {
			cells += g.NumCells()
		}
		steps := math.Pow(float64(h.Cfg.Refine), float64(l))
		out[l] = float64(cells) * steps
	}
	return out
}

// SpatialDynamicRange returns the resolution n·r^l of the deepest level
// (the paper's SDR definition, §3.1).
func (h *Hierarchy) SpatialDynamicRange() float64 {
	return float64(h.Cfg.RootN) * math.Pow(float64(h.Cfg.Refine), float64(h.MaxLevel()))
}

// TotalGasMass sums gas mass over the root grid (which, after projection,
// reflects the composite solution).
func (h *Hierarchy) TotalGasMass() float64 {
	return h.Root().GasMass()
}

// gravConstNow returns the Poisson coefficient at the current expansion
// factor: in comoving coordinates the coupling weakens as 1/a.
func (h *Hierarchy) gravConstNow() float64 {
	if h.Cfg.Cosmo == nil || h.Cfg.InitialA == 0 {
		return h.Cfg.GravConst
	}
	return h.Cfg.GravConst * h.Cfg.InitialA / h.Cfg.Cosmo.A
}

// FinestDx returns the cell size of the deepest populated level, falling
// back to the root spacing when that level is empty — the natural inner
// scale for radial-profile binning.
func (h *Hierarchy) FinestDx() float64 {
	lv := h.MaxLevel()
	if lv >= len(h.Levels) || len(h.Levels[lv]) == 0 {
		return 1.0 / float64(h.Cfg.RootN)
	}
	return h.Levels[lv][0].Dx
}

// FinestGridAt returns the deepest grid whose active region contains the
// box-unit position (x,y,z), starting the search from the root.
func (h *Hierarchy) FinestGridAt(x, y, z float64) *Grid {
	g := h.Root()
	for {
		found := false
		for _, c := range g.Children {
			lo := [3]float64{}
			hi := [3]float64{}
			n := [3]int{c.Nx, c.Ny, c.Nz}
			for d := 0; d < 3; d++ {
				lo[d] = c.Edge[d].Float64()
				hi[d] = lo[d] + float64(n[d])*c.Dx
			}
			if x >= lo[0] && x < hi[0] && y >= lo[1] && y < hi[1] && z >= lo[2] && z < hi[2] {
				g = c
				found = true
				break
			}
		}
		if !found {
			return g
		}
	}
}
