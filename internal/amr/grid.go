// Package amr implements the structured adaptive mesh refinement engine of
// the paper (§3): the grid hierarchy with integer refinement factor and
// strict parent containment, the recursive EvolveLevel W-cycle, two-way
// coarse/fine coupling (boundary interpolation down, flux correction and
// projection up), refinement criteria (baryon mass, dark-matter mass,
// Jeans length), and hierarchy rebuilding via Berger–Rigoutsos clustering.
//
// Grid corner positions and times are held in 128-bit extended precision
// (§3.5): at deep refinement the corner of a level-30 grid differs from its
// neighbour's by ~1e-11 of the box, beyond float64's resolving power over
// absolute coordinates. All intra-grid arithmetic is relative float64.
package amr

import (
	"fmt"

	"repro/internal/ep128"
	"repro/internal/hydro"
	"repro/internal/mesh"
	"repro/internal/nbody"
)

// Grid is one rectangular patch of the hierarchy: the paper's fundamental
// object ("a grid represents the basic building block of AMR", §3.4).
type Grid struct {
	Level int
	// Lo is the global index of the grid's first active cell in the
	// level's index space (box spans RootN * r^Level cells per side).
	Lo [3]int
	// Nx, Ny, Nz are the active cell counts.
	Nx, Ny, Nz int
	// Edge is the absolute position of the low corner in box units,
	// held in extended precision.
	Edge [3]ep128.Dd
	// Dx is the cell width in box units at this level.
	Dx float64

	State *hydro.State
	Phi   *mesh.Field3 // gravitational potential
	GAcc  [3]*mesh.Field3
	DMRho *mesh.Field3 // dark-matter density deposited for the gravity solve

	Parts *nbody.Particles // particles owned by this grid (finest containing grid)

	Reg  *hydro.FluxRegister // boundary fluxes for the parent's correction
	Taps []*hydro.FluxTap    // interior fluxes at this grid's children's faces

	Parent   *Grid
	Children []*Grid

	Time float64 // current time of this grid's solution

	// OwnerRank is the processor that holds the field data (the
	// distributed-objects strategy of §3.4). Sterile replicas have
	// metadata only.
	OwnerRank int
	Sterile   bool
}

// NewGrid allocates a grid with fields for nspecies advected species.
// rootN is the root grid size and refine the refinement factor, used to
// derive Dx and Edge from Lo and Level.
func NewGrid(level int, lo [3]int, nx, ny, nz, rootN, refine, nspecies int) *Grid {
	g := &Grid{
		Level: level,
		Lo:    lo,
		Nx:    nx, Ny: ny, Nz: nz,
	}
	cells := rootN
	for l := 0; l < level; l++ {
		cells *= refine
	}
	g.Dx = 1.0 / float64(cells)
	for d := 0; d < 3; d++ {
		// Edge = Lo / cells, computed in extended precision.
		g.Edge[d] = ep128.FromInt(int64(lo[d])).DivFloat(float64(cells))
	}
	g.State = hydro.NewState(nx, ny, nz, nspecies)
	g.Phi = mesh.NewField3(nx, ny, nz, hydro.NGhost)
	g.DMRho = mesh.NewField3(nx, ny, nz, hydro.NGhost)
	g.Reg = hydro.NewFluxRegister(nx, ny, nz, nspecies)
	g.Parts = nbody.New(0)
	return g
}

// NumCells returns the active cell count.
func (g *Grid) NumCells() int { return g.Nx * g.Ny * g.Nz }

// Hi returns the exclusive global high index at this grid's level.
func (g *Grid) Hi() [3]int {
	return [3]int{g.Lo[0] + g.Nx, g.Lo[1] + g.Ny, g.Lo[2] + g.Nz}
}

// ContainsGlobal reports whether the global fine-level cell (i,j,k) at this
// grid's level lies within the grid's active region.
func (g *Grid) ContainsGlobal(i, j, k int) bool {
	hi := g.Hi()
	return i >= g.Lo[0] && i < hi[0] && j >= g.Lo[1] && j < hi[1] && k >= g.Lo[2] && k < hi[2]
}

// Geom returns the grid's particle-mesh geometry (extended-precision
// origin + cell width).
func (g *Grid) Geom() nbody.GridGeom {
	return nbody.GridGeom{Origin: g.Edge, Dx: g.Dx}
}

// ContainsPos reports whether an extended-precision position lies inside
// the grid's active region.
func (g *Grid) ContainsPos(x, y, z ep128.Dd) bool {
	pos := [3]ep128.Dd{x, y, z}
	n := [3]int{g.Nx, g.Ny, g.Nz}
	for d := 0; d < 3; d++ {
		rel := pos[d].Sub(g.Edge[d]).Float64()
		if rel < 0 || rel >= float64(n[d])*g.Dx {
			return false
		}
	}
	return true
}

// String describes the grid compactly.
func (g *Grid) String() string {
	return fmt.Sprintf("L%d %dx%dx%d @%v", g.Level, g.Nx, g.Ny, g.Nz, g.Lo)
}

// CellVolume returns dx^3.
func (g *Grid) CellVolume() float64 { return g.Dx * g.Dx * g.Dx }

// GasMass returns the total gas mass on the grid.
func (g *Grid) GasMass() float64 { return g.State.Rho.SumActive() * g.CellVolume() }

// totalFields returns the per-cell fields in canonical order used by
// inter-grid copies: hydro fields then DM density.
func (g *Grid) totalFields() []*mesh.Field3 {
	return append(g.State.Fields(), g.DMRho)
}

// offsetWithin returns the offset (in fine cells at child's level) of
// child's active origin within parent's active region. The parent must be
// exactly one level coarser.
func offsetWithin(parent, child *Grid, refine int) (oi, oj, ok int) {
	oi = child.Lo[0] - parent.Lo[0]*refine
	oj = child.Lo[1] - parent.Lo[1]*refine
	ok = child.Lo[2] - parent.Lo[2]*refine
	return
}
