package amr

import (
	"math"
	"testing"
)

// TestStepParallelBitwiseWithGravity runs the full engine — FFT root
// gravity, multigrid subgrid gravity, parallel pencil sweeps, refinement
// — at Workers=1 and Workers=8 and demands bitwise-identical state on
// every level. Every parallel kernel preserves its serial arithmetic
// (disjoint pencil lines, red-black coloring, independent FFT lines), so
// any diverging bit is a race or a reduction-order bug.
func TestStepParallelBitwiseWithGravity(t *testing.T) {
	run := func(workers int) *Hierarchy {
		cfg := DefaultConfig(16)
		cfg.SelfGravity = true
		cfg.GravConst = 1
		cfg.MeanRho = 1
		cfg.JeansN = 0
		cfg.MassThresholdGas = 1.8 / (16.0 * 16 * 16)
		cfg.MaxLevel = 1
		cfg.MaxGridSize = 8
		cfg.Workers = workers
		h, err := NewHierarchy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		root := h.Root()
		for k := 0; k < 16; k++ {
			for j := 0; j < 16; j++ {
				for i := 0; i < 16; i++ {
					r2 := float64((i-8)*(i-8) + (j-8)*(j-8) + (k-8)*(k-8))
					rho := 1 + 3*math.Exp(-r2/6) + 0.1*math.Sin(float64(i+2*j+3*k))
					root.State.Rho.Set(i, j, k, rho)
					root.State.Eint.Set(i, j, k, 1)
					root.State.Etot.Set(i, j, k, 1)
				}
			}
		}
		h.RebuildHierarchy(1)
		for s := 0; s < 2; s++ {
			h.Step()
		}
		return h
	}
	hs := run(1)
	hp := run(8)
	if hs.NumGrids() != hp.NumGrids() {
		t.Fatalf("grid structure diverged: %d vs %d grids", hs.NumGrids(), hp.NumGrids())
	}
	for lv := range hs.Levels {
		for gi, gs := range hs.Levels[lv] {
			gp := hp.Levels[lv][gi]
			fs, fp := gs.State.Fields(), gp.State.Fields()
			for fi := range fs {
				for idx, v := range fs[fi].Data {
					if fp[fi].Data[idx] != v {
						t.Fatalf("level %d grid %d field %d differs at %d: %v vs %v",
							lv, gi, fi, idx, v, fp[fi].Data[idx])
					}
				}
			}
		}
	}
}
