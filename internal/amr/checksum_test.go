package amr

import (
	"testing"

	"repro/internal/ep128"
)

func addParticle(g *Grid, x float64) {
	p := ep128.FromFloat64(x)
	g.Parts.Add(p, p, p, 0.1, 0.2, 0.3, 1.0, 42)
}

func checksumHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	cfg := DefaultConfig(8)
	cfg.MaxLevel = 1
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := h.Root()
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				r.State.Rho.Set(i, j, k, 1+0.01*float64(i+8*j+64*k))
				r.State.Etot.Set(i, j, k, 1)
				r.State.Eint.Set(i, j, k, 1)
			}
		}
	}
	return h
}

func TestChecksumSensitivity(t *testing.T) {
	a := checksumHierarchy(t)
	b := checksumHierarchy(t)
	if a.Checksum() != b.Checksum() {
		t.Fatal("identical hierarchies hash differently")
	}
	if a.ChecksumHex() != b.ChecksumHex() || len(a.ChecksumHex()) != 16 {
		t.Fatalf("hex form unstable or malformed: %s vs %s", a.ChecksumHex(), b.ChecksumHex())
	}

	// One ULP in one cell must change the digest.
	v := b.Root().State.Rho.At(3, 4, 5)
	b.Root().State.Rho.Set(3, 4, 5, v*(1+2.3e-16))
	if a.Checksum() == b.Checksum() {
		t.Fatal("single-cell perturbation not detected")
	}
	b.Root().State.Rho.Set(3, 4, 5, v)
	if a.Checksum() != b.Checksum() {
		t.Fatal("restoring the cell did not restore the digest")
	}

	// Time participates too: the same fields at a different time are a
	// different answer.
	b.Time += 1e-12
	if a.Checksum() == b.Checksum() {
		t.Fatal("time perturbation not detected")
	}
}

func TestChecksumParticles(t *testing.T) {
	a := checksumHierarchy(t)
	b := checksumHierarchy(t)
	addParticle(a.Root(), 0.5)
	addParticle(b.Root(), 0.5)
	if a.Checksum() != b.Checksum() {
		t.Fatal("identical particles hash differently")
	}
	b.Root().Parts.Vx[0] += 1e-15
	if a.Checksum() == b.Checksum() {
		t.Fatal("particle velocity perturbation not detected")
	}
}
