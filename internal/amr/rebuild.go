package amr

import (
	"math"

	"repro/internal/clustering"
	"repro/internal/mesh"
	"repro/internal/nbody"
)

// RebuildHierarchy regenerates the grids on the given level and all finer
// levels from fresh refinement flags (paper §3.2.2): flag cells on the
// parents, cluster the flags into rectangles with the Berger–Rigoutsos
// algorithm, create the new grids (copying from old same-level grids where
// they overlap, interpolating from parents elsewhere), move the particles,
// and delete the old grids.
func (h *Hierarchy) RebuildHierarchy(level int) {
	if level < 1 {
		level = 1
	}
	if h.Cfg.DisableRebuild {
		return
	}
	h.Stats.RebuildCount++
	for l := level; l <= h.Cfg.MaxLevel; l++ {
		h.rebuildLevel(l)
		if l >= len(h.Levels) || len(h.Levels[l]) == 0 {
			break // nothing refined here; deeper levels impossible
		}
	}
	// Drop empty trailing levels.
	for len(h.Levels) > 1 && len(h.Levels[len(h.Levels)-1]) == 0 {
		h.Levels = h.Levels[:len(h.Levels)-1]
	}
	if m := h.MaxLevel(); m > h.Stats.MaxLevelEver {
		h.Stats.MaxLevelEver = m
	}
}

// rebuildLevel replaces the grids at one level.
func (h *Hierarchy) rebuildLevel(l int) {
	r := h.Cfg.Refine
	var old []*Grid
	if l < len(h.Levels) {
		old = h.Levels[l]
	}
	var fresh []*Grid
	for _, parent := range h.Levels[l-1] {
		flags := h.flagCells(parent)
		if flags.Count() == 0 {
			parent.Children = nil
			continue
		}
		dilate(flags, h.Cfg.RefineBuffer)
		cp := clustering.Params{
			MinEfficiency: h.Cfg.MinEfficiency,
			MaxSize:       maxI(h.Cfg.MaxGridSize/r, 4),
			MinSize:       2,
		}
		boxes := clustering.Cluster(flags, cp)
		parent.Children = parent.Children[:0]
		for _, b := range boxes {
			b = snapToEven(b, [3]int{parent.Nx, parent.Ny, parent.Nz})
			lo := [3]int{
				(parent.Lo[0] + b.Lo[0]) * r,
				(parent.Lo[1] + b.Lo[1]) * r,
				(parent.Lo[2] + b.Lo[2]) * r,
			}
			nx := (b.Hi[0] - b.Lo[0]) * r
			ny := (b.Hi[1] - b.Lo[1]) * r
			nz := (b.Hi[2] - b.Lo[2]) * r
			g := NewGrid(l, lo, nx, ny, nz, h.Cfg.RootN, r, h.Cfg.NSpecies)
			g.Parent = parent
			g.Time = parent.Time
			// Fill: interpolate from parent everywhere, then overwrite
			// with old same-level data where available.
			fillFromParent(g, parent, r)
			for _, o := range old {
				copyFromSibling(g, o)
			}
			parent.Children = append(parent.Children, g)
			fresh = append(fresh, g)
			h.Stats.GridsCreated++
		}
	}
	h.Stats.GridsDeleted += int64(len(old))

	// Re-home particles: old level-l particles and parent particles that
	// now fall inside a new grid. The fallback search must use only live
	// grids (levels below l have already been rebuilt).
	for _, o := range old {
		h.rehomeParticles(o.Parts, fresh, l-1)
		o.Parts = nbody.New(0)
	}
	for _, parent := range h.Levels[l-1] {
		if len(fresh) == 0 {
			break
		}
		kept := nbody.New(parent.Parts.Len())
		for i := 0; i < parent.Parts.Len(); i++ {
			placed := false
			for _, g := range fresh {
				if g.ContainsPos(parent.Parts.X[i], parent.Parts.Y[i], parent.Parts.Z[i]) {
					g.Parts.Add(parent.Parts.X[i], parent.Parts.Y[i], parent.Parts.Z[i],
						parent.Parts.Vx[i], parent.Parts.Vy[i], parent.Parts.Vz[i],
						parent.Parts.Mass[i], parent.Parts.ID[i])
					placed = true
					break
				}
			}
			if !placed {
				kept.Add(parent.Parts.X[i], parent.Parts.Y[i], parent.Parts.Z[i],
					parent.Parts.Vx[i], parent.Parts.Vy[i], parent.Parts.Vz[i],
					parent.Parts.Mass[i], parent.Parts.ID[i])
			}
		}
		parent.Parts = kept
	}

	if l < len(h.Levels) {
		h.Levels[l] = fresh
	} else {
		h.Levels = append(h.Levels, fresh)
	}
}

// rehomeParticles distributes a particle set into whichever of the
// candidate grids contains each particle, otherwise into the finest live
// grid at or below maxFallbackLevel that contains it (root as last
// resort).
func (h *Hierarchy) rehomeParticles(parts *nbody.Particles, candidates []*Grid, maxFallbackLevel int) {
	for i := 0; i < parts.Len(); i++ {
		var dst *Grid
		for _, g := range candidates {
			if g.ContainsPos(parts.X[i], parts.Y[i], parts.Z[i]) {
				dst = g
				break
			}
		}
		if dst == nil {
		search:
			for l := maxFallbackLevel; l >= 1; l-- {
				if l >= len(h.Levels) {
					continue
				}
				for _, g := range h.Levels[l] {
					if g.ContainsPos(parts.X[i], parts.Y[i], parts.Z[i]) {
						dst = g
						break search
					}
				}
			}
		}
		if dst == nil {
			dst = h.Root()
		}
		dst.Parts.Add(parts.X[i], parts.Y[i], parts.Z[i],
			parts.Vx[i], parts.Vy[i], parts.Vz[i], parts.Mass[i], parts.ID[i])
	}
}

// flagCells applies the three refinement criteria of §3.2.3 to a parent
// grid, plus the static zoom-in region.
func (h *Hierarchy) flagCells(parent *Grid) *clustering.Flags {
	cfg := &h.Cfg
	fl := clustering.NewFlags(parent.Nx, parent.Ny, parent.Nz)
	if parent.Level >= cfg.MaxLevel {
		return fl
	}
	vol := parent.CellVolume()
	gamma := cfg.Hydro.Gamma
	gc := h.gravConstNow()
	for k := 0; k < parent.Nz; k++ {
		for j := 0; j < parent.Ny; j++ {
			for i := 0; i < parent.Nx; i++ {
				rho := parent.State.Rho.At(i, j, k)
				// 1. Baryon mass threshold.
				if cfg.MassThresholdGas > 0 && rho*vol > cfg.MassThresholdGas {
					fl.Set(i, j, k, true)
					continue
				}
				// 2. Dark-matter mass threshold.
				if cfg.MassThresholdDM > 0 && parent.DMRho.At(i, j, k)*vol > cfg.MassThresholdDM {
					fl.Set(i, j, k, true)
					continue
				}
				// 3. Jeans length: refine when dx > L_J / N_J.
				if cfg.JeansN > 0 && gc > 0 {
					cs2 := gamma * (gamma - 1) * parent.State.Eint.At(i, j, k)
					total := rho + parent.DMRho.At(i, j, k)
					if total > 0 {
						lj := math.Sqrt(4 * math.Pi * math.Pi * cs2 / (gc * total))
						if parent.Dx > lj/cfg.JeansN {
							fl.Set(i, j, k, true)
							continue
						}
					}
				}
			}
		}
	}
	// Static zoom-in region (the paper's "three additional levels of
	// static meshes" around the forming star).
	if parent.Level < cfg.StaticLevels {
		for k := 0; k < parent.Nz; k++ {
			for j := 0; j < parent.Ny; j++ {
				for i := 0; i < parent.Nx; i++ {
					x := parent.Edge[0].Float64() + (float64(i)+0.5)*parent.Dx
					y := parent.Edge[1].Float64() + (float64(j)+0.5)*parent.Dx
					z := parent.Edge[2].Float64() + (float64(k)+0.5)*parent.Dx
					if x >= cfg.StaticLo[0] && x < cfg.StaticHi[0] &&
						y >= cfg.StaticLo[1] && y < cfg.StaticHi[1] &&
						z >= cfg.StaticLo[2] && z < cfg.StaticHi[2] {
						fl.Set(i, j, k, true)
					}
				}
			}
		}
	}
	return fl
}

// dilate expands flags by n cells in every direction (the refinement
// buffer that keeps features inside their subgrid between rebuilds).
func dilate(fl *clustering.Flags, n int) {
	if n <= 0 {
		return
	}
	src := make([]bool, len(fl.Data))
	copy(src, fl.Data)
	at := func(i, j, k int) bool {
		if i < 0 || i >= fl.Nx || j < 0 || j >= fl.Ny || k < 0 || k >= fl.Nz {
			return false
		}
		return src[(k*fl.Ny+j)*fl.Nx+i]
	}
	for k := 0; k < fl.Nz; k++ {
		for j := 0; j < fl.Ny; j++ {
			for i := 0; i < fl.Nx; i++ {
				if src[(k*fl.Ny+j)*fl.Nx+i] {
					continue
				}
			scan:
				for dk := -n; dk <= n; dk++ {
					for dj := -n; dj <= n; dj++ {
						for di := -n; di <= n; di++ {
							if at(i+di, j+dj, k+dk) {
								fl.Set(i, j, k, true)
								break scan
							}
						}
					}
				}
			}
		}
	}
}

// snapToEven grows a box so its size is even in every dimension (so the
// child size is a multiple of 2·r and projection/multigrid coarsening stay
// aligned), clamped to the parent's extent.
func snapToEven(b clustering.Box, parentN [3]int) clustering.Box {
	for d := 0; d < 3; d++ {
		if (b.Hi[d]-b.Lo[d])%2 != 0 {
			if b.Hi[d] < parentN[d] {
				b.Hi[d]++
			} else if b.Lo[d] > 0 {
				b.Lo[d]--
			} else {
				b.Hi[d]-- // parent dimension exhausted; shrink instead
			}
		}
	}
	return b
}

// fillFromParent seeds a new grid's fields by conservative interpolation
// from its parent, including two ghost layers (the rest are refreshed by
// setBoundaries before the next step).
func fillFromParent(g, parent *Grid, refine int) {
	oi, oj, ok := offsetWithin(parent, g, refine)
	pf := parent.totalFields()
	cf := g.totalFields()
	for fi := range cf {
		mesh.ProlongLinear(pf[fi], cf[fi], oi, oj, ok, refine, 2)
	}
}

// copyFromSibling overwrites g's cells with o's data where their active
// regions overlap (same level).
func copyFromSibling(g, o *Grid) {
	di := o.Lo[0] - g.Lo[0]
	dj := o.Lo[1] - g.Lo[1]
	dk := o.Lo[2] - g.Lo[2]
	if di > g.Nx || di+o.Nx < 0 || dj > g.Ny || dj+o.Ny < 0 || dk > g.Nz || dk+o.Nz < 0 {
		return
	}
	gf := g.totalFields()
	of := o.totalFields()
	for fi := range gf {
		mesh.CopyOverlap(gf[fi], of[fi], di, dj, dk, 0)
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
