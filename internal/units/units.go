// Package units collects the physical constants and unit conversions used
// throughout the simulation. Everything is CGS unless the name says
// otherwise, matching the convention of the original Enzo code base.
//
// Code units: the hydro, gravity and N-body modules work in dimensionless
// "code units" in which the box length, the mean comoving density and the
// Hubble time set the scales. The Units struct carries the conversion
// factors between code units and CGS at a given cosmological expansion
// factor.
package units

import "math"

// Physical constants (CGS).
const (
	G          = 6.67430e-8    // gravitational constant [cm^3 g^-1 s^-2]
	KBoltzmann = 1.380649e-16  // Boltzmann constant [erg/K]
	MProton    = 1.6726219e-24 // proton mass [g]
	MElectron  = 9.1093837e-28 // electron mass [g]
	CLight     = 2.99792458e10 // speed of light [cm/s]
	SigmaT     = 6.6524587e-25 // Thomson cross-section [cm^2]
	ARad       = 7.5657e-15    // radiation constant [erg cm^-3 K^-4]
	EVtoErg    = 1.602176634e-12
)

// Astronomical lengths and masses (CGS).
const (
	ParsecCM    = 3.0856775814913673e18 // 1 pc in cm
	KpcCM       = 1e3 * ParsecCM
	MpcCM       = 1e6 * ParsecCM
	AUcm        = 1.495978707e13 // astronomical unit in cm
	MSolarG     = 1.98892e33     // solar mass in g
	YearSeconds = 3.15576e7      // Julian year in s
	MyrSeconds  = 1e6 * YearSeconds
)

// Cosmological helpers.
const (
	HubbleCGSper100 = 3.2407792896664e-18 // H0 = 100 km/s/Mpc in 1/s
)

// MeanMolecularWeightNeutral is the mean molecular weight of neutral
// primordial gas (76% H, 24% He by mass).
const MeanMolecularWeightNeutral = 1.2195

// HydrogenMassFraction is the primordial hydrogen mass fraction.
const HydrogenMassFraction = 0.76

// Units holds conversions between code units and CGS. The convention
// follows cosmological codes: density unit is the mean comoving baryon+DM
// density, length unit is the comoving box size, time unit is chosen so
// that G * rho_mean * t^2 is order unity (the free-fall normalization).
type Units struct {
	// Density converts code density to proper CGS density [g/cm^3].
	Density float64
	// Length converts code length to proper CGS length [cm].
	Length float64
	// Time converts code time to CGS time [s].
	Time float64
	// Velocity converts code velocity to CGS velocity [cm/s].
	Velocity float64
	// Temperature converts code specific energy to Kelvin for mu=1:
	// T = Temperature * mu * e_code.
	Temperature float64
}

// Derive fills the dependent members from Density, Length, Time.
func (u *Units) Derive() {
	u.Velocity = u.Length / u.Time
	// e = v^2;  T = e * m_p * (gamma-1) * mu / k. Store the mu=1,
	// gamma-free factor; callers multiply by (gamma-1)*mu.
	u.Temperature = u.Velocity * u.Velocity * MProton / KBoltzmann
}

// Cosmological constructs code units for a comoving box of the given size
// [comoving cm], total matter density parameter omegaM, Hubble parameter h
// (H0 = 100h km/s/Mpc), at expansion factor a (a=1 today).
func Cosmological(boxComovingCM, omegaM, h, a float64) Units {
	h0 := h * HubbleCGSper100
	rhoCrit0 := 3 * h0 * h0 / (8 * math.Pi * G)
	u := Units{
		Density: omegaM * rhoCrit0 / (a * a * a),
		Length:  boxComovingCM * a,
	}
	// Free-fall-like normalization: 4πG·rho·t² = 1 in code units at this a.
	u.Time = 1 / math.Sqrt(4*math.Pi*G*u.Density)
	u.Derive()
	return u
}

// NumberDensity converts a code gas density to a total particle number
// density [1/cm^3] assuming mean molecular weight mu.
func (u Units) NumberDensity(codeRho, mu float64) float64 {
	return codeRho * u.Density / (mu * MProton)
}

// TempFromE converts code specific internal energy to temperature [K]
// for adiabatic index gamma and mean molecular weight mu.
func (u Units) TempFromE(eCode, gamma, mu float64) float64 {
	return eCode * u.Temperature * (gamma - 1) * mu
}

// EFromTemp converts a temperature [K] to code specific internal energy.
func (u Units) EFromTemp(tK, gamma, mu float64) float64 {
	return tK / (u.Temperature * (gamma - 1) * mu)
}
