package units

import (
	"math"
	"testing"
)

func TestCosmologicalUnits(t *testing.T) {
	// 256 comoving kpc box (the paper's volume), omegaM=1, h=0.5, a at z=99.
	u := Cosmological(256*KpcCM, 1.0, 0.5, 0.01)
	if u.Density <= 0 || u.Length <= 0 || u.Time <= 0 {
		t.Fatalf("non-positive unit: %+v", u)
	}
	// Density should scale as a^-3.
	u2 := Cosmological(256*KpcCM, 1.0, 0.5, 0.02)
	ratio := u.Density / u2.Density
	if math.Abs(ratio-8) > 1e-10 {
		t.Errorf("density scaling with a wrong: ratio=%v want 8", ratio)
	}
	// Proper length scales as a.
	if math.Abs(u2.Length/u.Length-2) > 1e-12 {
		t.Errorf("length scaling wrong")
	}
}

func TestTimeUnitFreefall(t *testing.T) {
	u := Cosmological(MpcCM, 0.3, 0.7, 1.0)
	// By construction 4*pi*G*rho*t^2 = 1.
	v := 4 * math.Pi * G * u.Density * u.Time * u.Time
	if math.Abs(v-1) > 1e-12 {
		t.Errorf("free-fall normalization broken: %v", v)
	}
}

func TestTemperatureRoundTrip(t *testing.T) {
	u := Cosmological(256*KpcCM, 1.0, 0.5, 0.05)
	gamma, mu := 5.0/3.0, MeanMolecularWeightNeutral
	for _, tK := range []float64{10, 200, 1e4, 1e8} {
		e := u.EFromTemp(tK, gamma, mu)
		back := u.TempFromE(e, gamma, mu)
		if math.Abs(back-tK)/tK > 1e-12 {
			t.Errorf("temperature round trip %v -> %v", tK, back)
		}
	}
}

func TestNumberDensity(t *testing.T) {
	u := Cosmological(256*KpcCM, 1.0, 0.5, 1.0)
	n := u.NumberDensity(1.0, 1.0)
	want := u.Density / MProton
	if math.Abs(n-want)/want > 1e-14 {
		t.Errorf("number density mismatch: %v vs %v", n, want)
	}
}

func TestConstantsSanity(t *testing.T) {
	// Critical density today for h=0.7 should be ~9.2e-30 g/cm^3.
	h0 := 0.7 * HubbleCGSper100
	rhoc := 3 * h0 * h0 / (8 * math.Pi * G)
	if rhoc < 9e-30 || rhoc > 9.5e-30 {
		t.Errorf("critical density out of range: %v", rhoc)
	}
	// One parsec in light years ~ 3.26.
	ly := CLight * YearSeconds
	if v := ParsecCM / ly; v < 3.2 || v > 3.3 {
		t.Errorf("parsec/ly = %v", v)
	}
}
