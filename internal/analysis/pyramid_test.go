package analysis

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
)

func TestPyramidNormalize(t *testing.T) {
	r, err := OutputRequest{Kind: KindPyramid}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 256 || r.NSamp != 256 || r.Field != "rho" || r.Format != "" || r.Coord != 0 {
		t.Fatalf("pyramid defaults wrong: %+v", r)
	}
	bad := []OutputRequest{
		{Kind: KindPyramid, N: 100},                // not a power of two
		{Kind: KindPyramid, N: 32},                 // below the tile size
		{Kind: KindPyramid, Format: FormatPNG},     // tiles are always PGM
		{Kind: KindPyramid, Field: "nonsense"},     // unknown field
		{Kind: KindPyramid, N: 128, NSamp: 100000}, // nsamp out of range
	}
	for _, r := range bad {
		if _, err := r.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) did not fail", r)
		}
	}
}

// gradientMap builds a deterministic non-constant n×n test field.
func gradientMap(n int) [][]float64 {
	data := make([][]float64, n)
	for b := range data {
		data[b] = make([]float64, n)
		for a := range data[b] {
			data[b][a] = float64(a*a+3*b) / float64(n)
		}
	}
	return data
}

// stitchLevel0 reassembles the level-0 tiles into a full-resolution PGM.
func stitchLevel0(t *testing.T, ts *TileSet) []byte {
	t.Helper()
	var out bytes.Buffer
	fmt.Fprintf(&out, "P5\n%d %d\n255\n", ts.N, ts.N)
	per := ts.TilesPerSide(0)
	tileHeader := len(fmt.Sprintf("P5\n%d %d\n255\n", ts.TileSize, ts.TileSize))
	for r := 0; r < ts.N; r++ {
		for x := 0; x < per; x++ {
			tile, ok := ts.Tile(0, x, r/ts.TileSize)
			if !ok {
				t.Fatalf("missing tile (0,%d,%d)", x, r/ts.TileSize)
			}
			rows := tile[tileHeader:]
			rr := r % ts.TileSize
			out.Write(rows[rr*ts.TileSize : (rr+1)*ts.TileSize])
		}
	}
	return out.Bytes()
}

func TestTileSetGeometryAndStitch(t *testing.T) {
	const n = 128
	data := gradientMap(n)
	payload, err := BuildTileSet(data, PyramidTileSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := ParseTileSet(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ts.N != n || ts.TileSize != PyramidTileSize || ts.Levels != 2 {
		t.Fatalf("geometry wrong: %+v", ts)
	}
	if len(ts.Tiles) != 4+1 {
		t.Fatalf("tile count %d, want 5", len(ts.Tiles))
	}
	// Every tile is a standalone PGM of the tile size.
	for _, ref := range ts.Tiles {
		tile, ok := ts.Tile(ref.Z, ref.X, ref.Y)
		if !ok {
			t.Fatalf("tile (%d,%d,%d) not found", ref.Z, ref.X, ref.Y)
		}
		if !bytes.HasPrefix(tile, []byte(fmt.Sprintf("P5\n%d %d\n255\n", PyramidTileSize, PyramidTileSize))) {
			t.Fatalf("tile (%d,%d,%d) is not a %d-pixel PGM", ref.Z, ref.X, ref.Y, PyramidTileSize)
		}
	}
	// Level-0 tiles stitch back into the exact full-resolution PGM.
	var want bytes.Buffer
	if err := WritePGM(&want, data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stitchLevel0(t, ts), want.Bytes()) {
		t.Fatal("stitched level-0 raster differs from WritePGM output")
	}
	// Out-of-bounds coordinates are rejected, in-bounds coarse level is not.
	for _, c := range [][3]int{{0, 2, 0}, {0, 0, -1}, {1, 1, 0}, {2, 0, 0}, {-1, 0, 0}} {
		if _, ok := ts.Tile(c[0], c[1], c[2]); ok {
			t.Errorf("tile %v should be out of bounds", c)
		}
	}
	if _, ok := ts.Tile(1, 0, 0); !ok {
		t.Fatal("coarsest tile missing")
	}
}

func TestParseTileSetRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{
		nil,
		[]byte("P5\n64 64\n255\n"),
		[]byte("tileset1 999999\n{}"),
		[]byte("tileset1 2\n{}"), // missing payload separator
	} {
		if _, err := ParseTileSet(b); err == nil {
			t.Errorf("ParseTileSet(%q...) did not fail", b)
		}
	}
}

// TestPyramidBitwiseAcrossWorkersAndMatchesProjection is the acceptance
// guard: the container is bitwise identical at 1 and NumCPU workers, and
// its level-0 tiles reassemble into the byte-exact PGM of the equivalent
// projection request.
func TestPyramidBitwiseAcrossWorkersAndMatchesProjection(t *testing.T) {
	h := buildTestHierarchy(t)
	req, err := OutputRequest{Kind: KindPyramid, N: 128, NSamp: 8, Axis: 2}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := req.Evaluate(h, "test", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := req.Evaluate(h, "test", 0, runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Data, parallel.Data) {
		t.Fatal("pyramid payload depends on the worker count")
	}
	if serial.ContentType != TileSetContentType || serial.Name != "pyramid_rho_z_step0000.tiles" {
		t.Fatalf("bad artifact meta: %+v", serial)
	}

	proj, err := OutputRequest{Kind: KindProjection, N: 128, NSamp: 8, Axis: 2, Format: FormatPGM}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	full, err := proj.Evaluate(h, "test", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := ParseTileSet(serial.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stitchLevel0(t, ts), full.Data) {
		t.Fatal("stitched level-0 tiles differ from the projection PGM")
	}
}
