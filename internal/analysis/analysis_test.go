package analysis

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/amr"
	"repro/internal/units"
)

// buildTestHierarchy makes a 2-level hierarchy with a central overdensity.
func buildTestHierarchy(t *testing.T) *amr.Hierarchy {
	t.Helper()
	cfg := amr.DefaultConfig(16)
	cfg.SelfGravity = false
	cfg.JeansN = 0
	cfg.StaticLevels = 1
	cfg.StaticLo = [3]float64{0.25, 0.25, 0.25}
	cfg.StaticHi = [3]float64{0.75, 0.75, 0.75}
	cfg.MaxLevel = 1
	h, err := amr.NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := h.Root()
	for k := 0; k < 16; k++ {
		for j := 0; j < 16; j++ {
			for i := 0; i < 16; i++ {
				dx := (float64(i)+0.5)/16 - 0.5
				dy := (float64(j)+0.5)/16 - 0.5
				dz := (float64(k)+0.5)/16 - 0.5
				r2 := dx*dx + dy*dy + dz*dz
				rho := 1 + 20*math.Exp(-r2*100)
				root.State.Rho.Set(i, j, k, rho)
				root.State.Eint.Set(i, j, k, 1.0)
				root.State.Etot.Set(i, j, k, 1.0)
				// Inward radial flow.
				r := math.Sqrt(r2) + 1e-9
				root.State.Vx.Set(i, j, k, -0.3*dx/r)
				root.State.Vy.Set(i, j, k, -0.3*dy/r)
				root.State.Vz.Set(i, j, k, -0.3*dz/r)
			}
		}
	}
	h.RebuildHierarchy(1)
	return h
}

func TestDensestPoint(t *testing.T) {
	h := buildTestHierarchy(t)
	pos, rho := DensestPoint(h)
	for d := 0; d < 3; d++ {
		if math.Abs(pos[d]-0.5) > 0.1 {
			t.Errorf("densest point at %v, want center", pos)
		}
	}
	if rho < 10 {
		t.Errorf("peak density %v too low", rho)
	}
}

func TestForEachFinestCellCoversBoxOnce(t *testing.T) {
	h := buildTestHierarchy(t)
	var vol float64
	ForEachFinestCell(h, func(g *amr.Grid, i, j, k int, x, y, z float64) {
		vol += g.CellVolume()
		if x < 0 || x >= 1 || y < 0 || y >= 1 || z < 0 || z >= 1 {
			t.Fatalf("cell center outside box: %v %v %v", x, y, z)
		}
	})
	if math.Abs(vol-1) > 1e-12 {
		t.Fatalf("composite volume %v, want 1 (each point exactly once)", vol)
	}
}

func TestRadialProfile(t *testing.T) {
	h := buildTestHierarchy(t)
	u := units.Cosmological(256*units.KpcCM, 1, 0.5, 0.05)
	pr, err := RadialProfile(h, [3]float64{0.5, 0.5, 0.5}, ProfileParams{
		RMin: 0.05, RMax: 0.5, NBins: 8, Gamma: 5.0 / 3.0, Units: u,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Density decreases outward for the Gaussian clump.
	if pr.Density[0] <= pr.Density[len(pr.Density)-1] {
		t.Errorf("profile not decreasing: %v .. %v", pr.Density[0], pr.Density[len(pr.Density)-1])
	}
	// Enclosed mass is monotonic and approaches the total.
	for b := 1; b < len(pr.Enclosed); b++ {
		if pr.Enclosed[b] < pr.Enclosed[b-1] {
			t.Fatal("enclosed mass not monotonic")
		}
	}
	total := h.TotalGasMass()
	last := pr.Enclosed[len(pr.Enclosed)-1]
	if last < 0.5*total || last > 1.01*total {
		t.Errorf("enclosed %v vs total %v", last, total)
	}
	// Inward flow: mass-weighted radial velocity negative in inner bins.
	if pr.Vr[1] >= 0 {
		t.Errorf("radial velocity %v, want negative (infall)", pr.Vr[1])
	}
	// Sound speed positive.
	if pr.Cs[0] <= 0 {
		t.Error("sound speed not positive")
	}
	if pr.CellsUsed == 0 {
		t.Error("no cells used")
	}
}

func TestRadialProfileBadParams(t *testing.T) {
	h := buildTestHierarchy(t)
	if _, err := RadialProfile(h, [3]float64{0.5, 0.5, 0.5}, ProfileParams{}); err == nil {
		t.Fatal("zero params should fail")
	}
}

func TestSliceResolvesFineData(t *testing.T) {
	h := buildTestHierarchy(t)
	// Slice through the center: the peak must appear, values finite.
	img := DensitySlice(h, 2, 0.5, 0.3, 0.7, 0.3, 0.7, 32, 1)
	if len(img) != 32 || len(img[0]) != 32 {
		t.Fatal("bad image shape")
	}
	peak := math.Inf(-1)
	for _, row := range img {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("bad pixel value")
			}
			if v > peak {
				peak = v
			}
		}
	}
	if peak < 1 { // log10(~20)
		t.Errorf("slice missed the peak: max log rho %v", peak)
	}
}

// buildMarkerHierarchy makes a 2-level hierarchy whose coarse data is 1
// everywhere while every refined (level-1) cell holds 7 — so any sampler
// that resolves a covered point from the coarse grid is caught
// immediately. The static region is [0.25,0.75)³; the rebuild pads it, so
// tests read the actual refined extent with markerExtent.
func buildMarkerHierarchy(t *testing.T) *amr.Hierarchy {
	t.Helper()
	cfg := amr.DefaultConfig(16)
	cfg.SelfGravity = false
	cfg.JeansN = 0
	cfg.StaticLevels = 1
	cfg.StaticLo = [3]float64{0.25, 0.25, 0.25}
	cfg.StaticHi = [3]float64{0.75, 0.75, 0.75}
	cfg.MaxLevel = 1
	h, err := amr.NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := h.Root()
	for k := 0; k < 16; k++ {
		for j := 0; j < 16; j++ {
			for i := 0; i < 16; i++ {
				root.State.Rho.Set(i, j, k, 1)
				root.State.Eint.Set(i, j, k, 1)
				root.State.Etot.Set(i, j, k, 1)
			}
		}
	}
	h.RebuildHierarchy(1)
	if len(h.Levels) < 2 || len(h.Levels[1]) == 0 {
		t.Fatal("marker hierarchy has no refined grids")
	}
	for _, g := range h.Levels[1] {
		for k := 0; k < g.Nz; k++ {
			for j := 0; j < g.Ny; j++ {
				for i := 0; i < g.Nx; i++ {
					g.State.Rho.Set(i, j, k, 7)
				}
			}
		}
	}
	return h
}

// markerExtent returns the [lo,hi) extent of the single refined region
// of a marker hierarchy, in box units (identical along every axis).
func markerExtent(t *testing.T, h *amr.Hierarchy) (lo, hi float64) {
	t.Helper()
	g := h.Levels[1][0]
	lo = g.Edge[0].Float64()
	hi = lo + float64(g.Nx)*g.Dx
	// The exactness arguments below need the extent to sit on 1/32
	// sample boundaries; the 16³ root with refine 2 guarantees it.
	if lo != 0.1875 || hi != 0.8125 {
		t.Fatalf("unexpected refined extent [%v,%v)", lo, hi)
	}
	return lo, hi
}

// TestSliceRefinedDataWins samples a plane through a refined region and
// checks every pixel comes from the finest covering grid, never the
// stale coarse value underneath it.
func TestSliceRefinedDataWins(t *testing.T) {
	h := buildMarkerHierarchy(t)
	lo, hi := markerExtent(t, h)
	rho := func(g *amr.Grid, i, j, k int) float64 { return g.State.Rho.At(i, j, k) }
	img := Slice(h, 2, 0.5, 0, 1, 0, 1, 32, 1, rho)
	for b, row := range img {
		for a, v := range row {
			x := (float64(a) + 0.5) / 32
			y := (float64(b) + 0.5) / 32
			inside := x > lo && x < hi && y > lo && y < hi
			if inside && v != 7 {
				t.Fatalf("pixel (%d,%d) inside the refined region reads %v, want the fine value 7", a, b, v)
			}
			if !inside && v != 1 {
				t.Fatalf("pixel (%d,%d) outside the refined region reads %v, want the coarse value 1", a, b, v)
			}
		}
	}
}

// TestSurfaceDensityRefinedDataWins integrates columns through the
// marker hierarchy: a line of sight through the refined region must pick
// up the fine value over exactly its depth. The extent sits on dyadic
// sample boundaries, so the expected columns are exact, not approximate:
// inside, depth*(7-1)+1; outside, 1.
func TestSurfaceDensityRefinedDataWins(t *testing.T) {
	h := buildMarkerHierarchy(t)
	lo, hi := markerExtent(t, h)
	depth := hi - lo // 0.625 = 20/32, exactly representable
	wantInside := depth*6 + 1
	sd := SurfaceDensity(h, 2, 0, 1, 0, 1, 32, 32, 1)
	for b, row := range sd {
		for a, v := range row {
			x := (float64(a) + 0.5) / 32
			y := (float64(b) + 0.5) / 32
			inside := x > lo && x < hi && y > lo && y < hi
			if inside && v != wantInside {
				t.Fatalf("column (%d,%d) through the refined region = %v, want exactly %v", a, b, v, wantInside)
			}
			if !inside && v != 1 {
				t.Fatalf("column (%d,%d) outside = %v, want exactly 1", a, b, v)
			}
		}
	}
}

// bitwiseEqual2D compares two images exactly (Float64bits, so -0 vs 0 or
// NaN payload drift also counts as a difference).
func bitwiseEqual2D(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for r := range a {
		if len(a[r]) != len(b[r]) {
			return false
		}
		for c := range a[r] {
			if math.Float64bits(a[r][c]) != math.Float64bits(b[r][c]) {
				return false
			}
		}
	}
	return true
}

// TestAnalysisKernelsBitwiseAcrossWorkers pins the determinism contract
// of the parallel analysis kernels: slices, projections and radial
// profiles are bitwise identical at any worker count.
func TestAnalysisKernelsBitwiseAcrossWorkers(t *testing.T) {
	h := buildTestHierarchy(t)
	u := units.Cosmological(256*units.KpcCM, 1, 0.5, 0.05)
	rho := func(g *amr.Grid, i, j, k int) float64 { return g.State.Rho.At(i, j, k) }

	refSlice := Slice(h, 2, 0.5, 0, 1, 0, 1, 33, 1, rho)
	refProj := SurfaceDensity(h, 1, 0, 1, 0, 1, 33, 19, 1)
	refProf, err := RadialProfile(h, [3]float64{0.5, 0.5, 0.5}, ProfileParams{
		RMin: 0.03, RMax: 0.5, NBins: 11, Gamma: 5.0 / 3.0, Units: u, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 7} {
		if got := Slice(h, 2, 0.5, 0, 1, 0, 1, 33, workers, rho); !bitwiseEqual2D(got, refSlice) {
			t.Fatalf("Slice differs at %d workers", workers)
		}
		if got := SurfaceDensity(h, 1, 0, 1, 0, 1, 33, 19, workers); !bitwiseEqual2D(got, refProj) {
			t.Fatalf("SurfaceDensity differs at %d workers", workers)
		}
		got, err := RadialProfile(h, [3]float64{0.5, 0.5, 0.5}, ProfileParams{
			RMin: 0.03, RMax: 0.5, NBins: 11, Gamma: 5.0 / 3.0, Units: u, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, cols := range [][2][]float64{
			{refProf.Mass, got.Mass}, {refProf.Enclosed, got.Enclosed},
			{refProf.Density, got.Density}, {refProf.Vr, got.Vr},
			{refProf.Cs, got.Cs}, {refProf.Temp, got.Temp},
		} {
			if !bitwiseEqual2D([][]float64{cols[0]}, [][]float64{cols[1]}) {
				t.Fatalf("RadialProfile differs at %d workers", workers)
			}
		}
		if got.CellsUsed != refProf.CellsUsed {
			t.Fatalf("CellsUsed %d at %d workers, want %d", got.CellsUsed, workers, refProf.CellsUsed)
		}
	}
}

func TestMinImage(t *testing.T) {
	cases := [][2]float64{{0.4, 0.4}, {0.6, -0.4}, {-0.6, 0.4}, {-0.5, -0.5}, {1.2, 0.2}}
	for _, c := range cases {
		if got := minImage(c[0]); math.Abs(got-c[1]) > 1e-14 {
			t.Errorf("minImage(%v) = %v, want %v", c[0], got, c[1])
		}
	}
}

func TestWritePGM(t *testing.T) {
	data := [][]float64{{0, 1}, {2, 3}}
	var buf bytes.Buffer
	if err := WritePGM(&buf, data); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if !bytes.HasPrefix(b, []byte("P5\n2 2\n255\n")) {
		t.Fatalf("bad header: %q", b[:12])
	}
	px := b[len(b)-4:]
	// Row order flipped: last row written first. data[1]={2,3} maps to
	// {170, 255}; data[0]={0,1} maps to {0, 85}.
	if px[0] != 170 || px[1] != 255 || px[2] != 0 || px[3] != 85 {
		t.Fatalf("pixels %v", px)
	}
	if err := WritePGM(&buf, nil); err == nil {
		t.Fatal("empty data should fail")
	}
}
