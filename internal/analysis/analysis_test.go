package analysis

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/amr"
	"repro/internal/units"
)

// buildTestHierarchy makes a 2-level hierarchy with a central overdensity.
func buildTestHierarchy(t *testing.T) *amr.Hierarchy {
	t.Helper()
	cfg := amr.DefaultConfig(16)
	cfg.SelfGravity = false
	cfg.JeansN = 0
	cfg.StaticLevels = 1
	cfg.StaticLo = [3]float64{0.25, 0.25, 0.25}
	cfg.StaticHi = [3]float64{0.75, 0.75, 0.75}
	cfg.MaxLevel = 1
	h, err := amr.NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := h.Root()
	for k := 0; k < 16; k++ {
		for j := 0; j < 16; j++ {
			for i := 0; i < 16; i++ {
				dx := (float64(i)+0.5)/16 - 0.5
				dy := (float64(j)+0.5)/16 - 0.5
				dz := (float64(k)+0.5)/16 - 0.5
				r2 := dx*dx + dy*dy + dz*dz
				rho := 1 + 20*math.Exp(-r2*100)
				root.State.Rho.Set(i, j, k, rho)
				root.State.Eint.Set(i, j, k, 1.0)
				root.State.Etot.Set(i, j, k, 1.0)
				// Inward radial flow.
				r := math.Sqrt(r2) + 1e-9
				root.State.Vx.Set(i, j, k, -0.3*dx/r)
				root.State.Vy.Set(i, j, k, -0.3*dy/r)
				root.State.Vz.Set(i, j, k, -0.3*dz/r)
			}
		}
	}
	h.RebuildHierarchy(1)
	return h
}

func TestDensestPoint(t *testing.T) {
	h := buildTestHierarchy(t)
	pos, rho := DensestPoint(h)
	for d := 0; d < 3; d++ {
		if math.Abs(pos[d]-0.5) > 0.1 {
			t.Errorf("densest point at %v, want center", pos)
		}
	}
	if rho < 10 {
		t.Errorf("peak density %v too low", rho)
	}
}

func TestForEachFinestCellCoversBoxOnce(t *testing.T) {
	h := buildTestHierarchy(t)
	var vol float64
	ForEachFinestCell(h, func(g *amr.Grid, i, j, k int, x, y, z float64) {
		vol += g.CellVolume()
		if x < 0 || x >= 1 || y < 0 || y >= 1 || z < 0 || z >= 1 {
			t.Fatalf("cell center outside box: %v %v %v", x, y, z)
		}
	})
	if math.Abs(vol-1) > 1e-12 {
		t.Fatalf("composite volume %v, want 1 (each point exactly once)", vol)
	}
}

func TestRadialProfile(t *testing.T) {
	h := buildTestHierarchy(t)
	u := units.Cosmological(256*units.KpcCM, 1, 0.5, 0.05)
	pr, err := RadialProfile(h, [3]float64{0.5, 0.5, 0.5}, ProfileParams{
		RMin: 0.05, RMax: 0.5, NBins: 8, Gamma: 5.0 / 3.0, Units: u,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Density decreases outward for the Gaussian clump.
	if pr.Density[0] <= pr.Density[len(pr.Density)-1] {
		t.Errorf("profile not decreasing: %v .. %v", pr.Density[0], pr.Density[len(pr.Density)-1])
	}
	// Enclosed mass is monotonic and approaches the total.
	for b := 1; b < len(pr.Enclosed); b++ {
		if pr.Enclosed[b] < pr.Enclosed[b-1] {
			t.Fatal("enclosed mass not monotonic")
		}
	}
	total := h.TotalGasMass()
	last := pr.Enclosed[len(pr.Enclosed)-1]
	if last < 0.5*total || last > 1.01*total {
		t.Errorf("enclosed %v vs total %v", last, total)
	}
	// Inward flow: mass-weighted radial velocity negative in inner bins.
	if pr.Vr[1] >= 0 {
		t.Errorf("radial velocity %v, want negative (infall)", pr.Vr[1])
	}
	// Sound speed positive.
	if pr.Cs[0] <= 0 {
		t.Error("sound speed not positive")
	}
	if pr.CellsUsed == 0 {
		t.Error("no cells used")
	}
}

func TestRadialProfileBadParams(t *testing.T) {
	h := buildTestHierarchy(t)
	if _, err := RadialProfile(h, [3]float64{0.5, 0.5, 0.5}, ProfileParams{}); err == nil {
		t.Fatal("zero params should fail")
	}
}

func TestSliceResolvesFineData(t *testing.T) {
	h := buildTestHierarchy(t)
	// Slice through the center: the peak must appear, values finite.
	img := DensitySlice(h, 2, 0.5, 0.3, 0.7, 0.3, 0.7, 32)
	if len(img) != 32 || len(img[0]) != 32 {
		t.Fatal("bad image shape")
	}
	peak := math.Inf(-1)
	for _, row := range img {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("bad pixel value")
			}
			if v > peak {
				peak = v
			}
		}
	}
	if peak < 1 { // log10(~20)
		t.Errorf("slice missed the peak: max log rho %v", peak)
	}
}

func TestMinImage(t *testing.T) {
	cases := [][2]float64{{0.4, 0.4}, {0.6, -0.4}, {-0.6, 0.4}, {-0.5, -0.5}, {1.2, 0.2}}
	for _, c := range cases {
		if got := minImage(c[0]); math.Abs(got-c[1]) > 1e-14 {
			t.Errorf("minImage(%v) = %v, want %v", c[0], got, c[1])
		}
	}
}

func TestWritePGM(t *testing.T) {
	data := [][]float64{{0, 1}, {2, 3}}
	var buf bytes.Buffer
	if err := WritePGM(&buf, data); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if !bytes.HasPrefix(b, []byte("P5\n2 2\n255\n")) {
		t.Fatalf("bad header: %q", b[:12])
	}
	px := b[len(b)-4:]
	// Row order flipped: last row written first. data[1]={2,3} maps to
	// {170, 255}; data[0]={0,1} maps to {0, 85}.
	if px[0] != 170 || px[1] != 255 || px[2] != 0 || px[3] != 85 {
		t.Fatalf("pixels %v", px)
	}
	if err := WritePGM(&buf, nil); err == nil {
		t.Fatal("empty data should fail")
	}
}
