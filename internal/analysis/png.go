package analysis

import (
	"fmt"
	"image"
	"image/png"
	"io"
)

// WritePNG writes a 2-D field as an 8-bit grayscale PNG with the same
// auto-scaling and orientation as WritePGM ([min,max] → [0,255], +axis1
// points up).
func WritePNG(w io.Writer, data [][]float64) error {
	n1 := len(data)
	if n1 == 0 {
		return fmt.Errorf("analysis: empty slice data")
	}
	n0 := len(data[0])
	img := image.NewGray(image.Rect(0, 0, n0, n1))
	quantizeRows(data, func(row int, pix []byte) {
		copy(img.Pix[row*img.Stride:], pix)
	})
	return png.Encode(w, img)
}

// quantizeRows maps the field to 8-bit gray rows — [min,max] scaled to
// [0,255], constant images widened to a single level, rows emitted
// top-first with the last data row on top (+axis1 up) — the one scaling
// convention both image encoders share.
func quantizeRows(data [][]float64, emit func(row int, pix []byte)) {
	lo, hi := dataRange(data)
	n1 := len(data)
	pix := make([]byte, len(data[0]))
	for row := 0; row < n1; row++ {
		src := data[n1-1-row] // flip so +axis1 points up
		for col, v := range src {
			pix[col] = byte(255 * (v - lo) / (hi - lo))
		}
		emit(row, pix)
	}
}

// dataRange returns the [min,max] of a 2-D field, widened to a non-empty
// interval so constant images map to a single gray level.
func dataRange(data [][]float64) (lo, hi float64) {
	lo, hi = data[0][0], data[0][0]
	for _, row := range data {
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	return lo, hi
}
