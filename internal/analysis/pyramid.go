package analysis

// Deep-zoom projection pyramids: the millions-of-readers data product.
// A pyramid renders the same integrated map as KindProjection and then
// cuts it — plus a chain of 2×2-averaged downsample levels — into fixed
// size PGM tiles, so a viewer fetches kilobytes at the zoom level it
// needs instead of the whole map. The container is one artifact (a
// ".tiles" file); the sim HTTP layer serves individual tiles from it
// under /jobs/{id}/artifacts/{name}/{z}/{x}/{y}.
//
// Determinism contract: like every analysis kernel, the payload is
// bitwise identical at any worker count. The base map is ProjectField
// (row-disjoint par.For, fixed-order accumulation); downsampling and
// quantization are per-element expressions with no cross-worker
// reduction. All levels quantize against the *base* map's data range, so
// gray levels agree across zoom levels — and so a reassembled level-0
// raster is byte-identical to the PGM a KindProjection request with the
// same knobs produces.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/par"
)

// PyramidTileSize is the fixed tile edge in pixels. Power of two, so
// every level of a power-of-two base map tiles exactly.
const PyramidTileSize = 64

// TileSetContentType is the MIME type of the pyramid container artifact.
const TileSetContentType = "application/x-repro-tileset"

// tileSetMagic starts a serialized tile set; the decimal that follows is
// the JSON header length in bytes.
const tileSetMagic = "tileset1 "

// TileRef locates one tile inside a TileSet payload. Z is the zoom
// level (0 = full resolution, each further level halves the map), X/Y
// the tile column/row at that level (Y=0 is the top row of the rendered
// image), and Off/Len the tile's PGM bytes within the payload section.
type TileRef struct {
	Z   int `json:"z"`
	X   int `json:"x"`
	Y   int `json:"y"`
	Off int `json:"off"`
	Len int `json:"len"`
}

// TileSet is a parsed pyramid container: the header describing the
// level geometry and quantization range, plus the concatenated PGM tile
// payloads.
type TileSet struct {
	// N is the base (level 0) map resolution; level z is N>>z pixels on
	// a side.
	N int `json:"n"`
	// TileSize is the tile edge in pixels (PyramidTileSize today).
	TileSize int `json:"tile_size"`
	// Levels is the number of zoom levels; the coarsest one is a single
	// tile.
	Levels int `json:"levels"`
	// Lo and Hi are the data values mapped to gray 0 and 255 — the base
	// map's range, shared by every level.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// Tiles indexes every tile payload, ordered by (z, y, x).
	Tiles []TileRef `json:"tiles"`

	payload []byte // concatenated PGM tiles, offsets per Tiles
}

// PyramidLevels returns how many zoom levels an n-pixel base map yields
// with the given tile size: halvings from n down to one tile.
func PyramidLevels(n, tileSize int) int {
	levels := 0
	for s := n; s >= tileSize; s >>= 1 {
		levels++
	}
	return levels
}

// BuildTileSet renders a 2-D field into a deep-zoom tile container.
// len(data) must be a power-of-two multiple of tileSize (both powers of
// two); workers sizes the par.For pool (0 = NumCPU, 1 = serial). The
// output is bitwise independent of workers.
func BuildTileSet(data [][]float64, tileSize, workers int) ([]byte, error) {
	n := len(data)
	if n == 0 || len(data[0]) != n {
		return nil, fmt.Errorf("analysis: tile set needs a square map, got %dx%d", len(data), n)
	}
	if tileSize <= 0 || tileSize&(tileSize-1) != 0 {
		return nil, fmt.Errorf("analysis: tile size %d is not a power of two", tileSize)
	}
	if n < tileSize || n&(n-1) != 0 {
		return nil, fmt.Errorf("analysis: map size %d is not a power-of-two multiple of the tile size %d", n, tileSize)
	}
	lo, hi := dataRange(data)
	ts := TileSet{
		N:        n,
		TileSize: tileSize,
		Levels:   PyramidLevels(n, tileSize),
		Lo:       lo,
		Hi:       hi,
	}
	var payload bytes.Buffer
	level := data
	for z := 0; z < ts.Levels; z++ {
		if z > 0 {
			level = downsample2x2(level, workers)
		}
		raster := quantizeRaster(level, lo, hi, workers)
		size := n >> z
		per := size / tileSize
		header := fmt.Sprintf("P5\n%d %d\n255\n", tileSize, tileSize)
		for ty := 0; ty < per; ty++ {
			for tx := 0; tx < per; tx++ {
				ref := TileRef{Z: z, X: tx, Y: ty, Off: payload.Len()}
				payload.WriteString(header)
				for r := ty * tileSize; r < (ty+1)*tileSize; r++ {
					payload.Write(raster[r][tx*tileSize : (tx+1)*tileSize])
				}
				ref.Len = payload.Len() - ref.Off
				ts.Tiles = append(ts.Tiles, ref)
			}
		}
	}
	head, err := json.Marshal(ts)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	out.Grow(len(tileSetMagic) + 24 + len(head) + payload.Len())
	fmt.Fprintf(&out, "%s%d\n", tileSetMagic, len(head))
	out.Write(head)
	out.WriteByte('\n')
	out.Write(payload.Bytes())
	return out.Bytes(), nil
}

// downsample2x2 halves a map by averaging disjoint 2×2 blocks — the
// fixed-order four-term sum every worker computes identically.
func downsample2x2(data [][]float64, workers int) [][]float64 {
	n := len(data) / 2
	out := make([][]float64, n)
	for b := range out {
		out[b] = make([]float64, n)
	}
	par.For(workers, n, 0, func(_, blo, bhi int) {
		for b := blo; b < bhi; b++ {
			r0, r1 := data[2*b], data[2*b+1]
			for a := 0; a < n; a++ {
				out[b][a] = (r0[2*a] + r0[2*a+1] + r1[2*a] + r1[2*a+1]) * 0.25
			}
		}
	})
	return out
}

// quantizeRaster maps a field to the 8-bit gray raster the image
// encoders produce — [lo,hi] scaled to [0,255], row 0 on top with +axis1
// up — parallel over rows (each row is a disjoint write).
func quantizeRaster(data [][]float64, lo, hi float64, workers int) [][]byte {
	n1 := len(data)
	out := make([][]byte, n1)
	par.For(workers, n1, 0, func(_, blo, bhi int) {
		for row := blo; row < bhi; row++ {
			src := data[n1-1-row] // flip so +axis1 points up
			pix := make([]byte, len(src))
			for col, v := range src {
				pix[col] = byte(255 * (v - lo) / (hi - lo))
			}
			out[row] = pix
		}
	})
	return out
}

// ParseTileSet decodes a pyramid container produced by BuildTileSet.
// The returned TileSet shares b's memory; treat it as read-only.
func ParseTileSet(b []byte) (*TileSet, error) {
	rest, ok := bytes.CutPrefix(b, []byte(tileSetMagic))
	if !ok {
		return nil, fmt.Errorf("analysis: not a tile set (missing %q magic)", tileSetMagic)
	}
	nl := bytes.IndexByte(rest, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("analysis: truncated tile set header")
	}
	headLen, err := strconv.Atoi(string(rest[:nl]))
	if err != nil || headLen < 0 || nl+1+headLen+1 > len(rest) {
		return nil, fmt.Errorf("analysis: bad tile set header length")
	}
	var ts TileSet
	if err := json.Unmarshal(rest[nl+1:nl+1+headLen], &ts); err != nil {
		return nil, fmt.Errorf("analysis: tile set header: %w", err)
	}
	ts.payload = rest[nl+1+headLen+1:]
	for _, t := range ts.Tiles {
		if t.Off < 0 || t.Len < 0 || t.Off+t.Len > len(ts.payload) {
			return nil, fmt.Errorf("analysis: tile set index out of payload bounds")
		}
	}
	return &ts, nil
}

// TilesPerSide returns the tile count along one edge of level z (0 when
// z is out of range).
func (ts *TileSet) TilesPerSide(z int) int {
	if z < 0 || z >= ts.Levels {
		return 0
	}
	return (ts.N >> z) / ts.TileSize
}

// Tile returns the PGM bytes of tile (z, x, y), or false when the
// coordinates are outside the pyramid.
func (ts *TileSet) Tile(z, x, y int) ([]byte, bool) {
	per := ts.TilesPerSide(z)
	if per == 0 || x < 0 || x >= per || y < 0 || y >= per {
		return nil, false
	}
	// Tiles are ordered by (z, y, x), so the index is arithmetic — O(1)
	// on the serving hot path; the coordinate check guards a header that
	// lies about its ordering.
	idx := 0
	for l := 0; l < z; l++ {
		p := ts.TilesPerSide(l)
		idx += p * p
	}
	idx += y*per + x
	if idx >= len(ts.Tiles) {
		return nil, false
	}
	t := ts.Tiles[idx]
	if t.Z != z || t.X != x || t.Y != y {
		return nil, false
	}
	return ts.payload[t.Off : t.Off+t.Len], true
}
