package analysis

// Derived-quantity routines of §6: "They range from computing direct
// hydrodynamical quantities, such as temperatures and densities, to
// derived quantities like cooling times, two-body relaxation times, X-ray
// luminosities and inertial tensors. To study flattened objects ...
// versatile routines to find such objects and derive projections, surface
// densities and other useful diagnostic quantities."

import (
	"math"
	"sort"

	"repro/internal/amr"
	"repro/internal/chem"
	"repro/internal/par"
	"repro/internal/units"
)

// CoolingTime returns the cooling time [s] of one cell of a chemistry run:
// thermal energy density over the net radiative loss rate. Infinite when
// the cell is heating or not cooling.
func CoolingTime(h *amr.Hierarchy, g *amr.Grid, i, j, k int) float64 {
	u := h.Cfg.Units
	aFac := 1.0
	if h.Cfg.Cosmo != nil && h.Cfg.InitialA > 0 {
		r := h.Cfg.InitialA / h.Cfg.Cosmo.A
		aFac = r * r * r
	}
	var cs chem.State
	for sp := 0; sp < chem.NumSpecies && sp < len(g.State.Species); sp++ {
		w := chem.AtomicWeight[sp]
		if w == 0 {
			w = 1
		}
		cs[sp] = g.State.Species[sp].At(i, j, k) * u.Density * aFac / (w * units.MProton)
	}
	eint := g.State.Eint.At(i, j, k) * u.Velocity * u.Velocity // erg/g
	rhoCGS := cs.MassDensity() * units.MProton
	T := chem.Temperature(cs, eint, h.Cfg.Hydro.Gamma)
	lam := chem.NetCooling(cs, T, chem.RatesAt(T), h.Cfg.CoolParams)
	if lam <= 0 {
		return math.Inf(1)
	}
	return eint * rhoCGS / lam
}

// DynamicalTime returns the local free-fall time [s]:
// sqrt(3π / (32 G ρ_total)), with densities converted to CGS.
func DynamicalTime(h *amr.Hierarchy, g *amr.Grid, i, j, k int) float64 {
	u := h.Cfg.Units
	aFac := 1.0
	if h.Cfg.Cosmo != nil && h.Cfg.InitialA > 0 {
		r := h.Cfg.InitialA / h.Cfg.Cosmo.A
		aFac = r * r * r
	}
	rho := (g.State.Rho.At(i, j, k) + g.DMRho.At(i, j, k)) * u.Density * aFac
	if rho <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(3 * math.Pi / (32 * units.G * rho))
}

// XRayEmissivity returns the thermal bremsstrahlung emissivity
// [erg cm⁻³ s⁻¹] of a chemistry cell (the §6 X-ray luminosity field).
func XRayEmissivity(h *amr.Hierarchy, g *amr.Grid, i, j, k int) float64 {
	u := h.Cfg.Units
	aFac := 1.0
	if h.Cfg.Cosmo != nil && h.Cfg.InitialA > 0 {
		r := h.Cfg.InitialA / h.Cfg.Cosmo.A
		aFac = r * r * r
	}
	var cs chem.State
	for sp := 0; sp < chem.NumSpecies && sp < len(g.State.Species); sp++ {
		w := chem.AtomicWeight[sp]
		if w == 0 {
			w = 1
		}
		cs[sp] = g.State.Species[sp].At(i, j, k) * u.Density * aFac / (w * units.MProton)
	}
	eint := g.State.Eint.At(i, j, k) * u.Velocity * u.Velocity
	T := chem.Temperature(cs, eint, h.Cfg.Hydro.Gamma)
	return 1.42e-27 * 1.3 * math.Sqrt(T) *
		(cs[chem.HII] + cs[chem.HeII] + 4*cs[chem.HeIII]) * cs[chem.Elec]
}

// SurfaceDensity integrates gas density along the given axis over the
// window, returning an n×n column-density map in code units × box length
// (the §6 projection / surface-density diagnostic for flattened objects).
// nsamp sets the number of integration samples along the line of sight.
// It is ProjectField for the gas density.
func SurfaceDensity(h *amr.Hierarchy, axis int, lo0, hi0, lo1, hi1 float64, n, nsamp, workers int) [][]float64 {
	return ProjectField(h, axis, lo0, hi0, lo1, hi1, n, nsamp, workers,
		func(g *amr.Grid, i, j, k int) float64 {
			return g.State.Rho.At(i, j, k)
		})
}

// ProjectField integrates an arbitrary cell quantity along the given axis
// over the window, sampling the finest covering grid at nsamp points per
// line of sight. Pixel rows are distributed over `workers` par goroutines
// (0 = NumCPU, 1 = serial); every pixel accumulates its own line of sight
// serially in sample order, so the projection is bitwise identical at any
// worker count.
func ProjectField(h *amr.Hierarchy, axis int, lo0, hi0, lo1, hi1 float64, n, nsamp, workers int,
	value func(g *amr.Grid, i, j, k int) float64) [][]float64 {
	out := make([][]float64, n)
	for b := range out {
		out[b] = make([]float64, n)
	}
	dlos := 1.0 / float64(nsamp)
	par.For(workers, n, 0, func(_, blo, bhi int) {
		for b := blo; b < bhi; b++ {
			c1 := lo1 + (float64(b)+0.5)*(hi1-lo1)/float64(n)
			for a := 0; a < n; a++ {
				c0 := lo0 + (float64(a)+0.5)*(hi0-lo0)/float64(n)
				var sum float64
				for s := 0; s < nsamp; s++ {
					coord := (float64(s) + 0.5) * dlos
					g, i, j, k := sampleCell(h, axis, coord, c0, c1)
					sum += value(g, i, j, k) * dlos
				}
				out[b][a] = sum
			}
		}
	})
	return out
}

// InertiaTensor returns the mass-weighted inertia tensor (second moments
// about the center) of the gas within radius rmax of center, in box
// units. Eigen-analysis of this tensor identifies flattened (disk-like)
// objects.
func InertiaTensor(h *amr.Hierarchy, center [3]float64, rmax float64) (tensor [3][3]float64, mass float64) {
	ForEachFinestCell(h, func(g *amr.Grid, i, j, k int, x, y, z float64) {
		d := [3]float64{minImage(x - center[0]), minImage(y - center[1]), minImage(z - center[2])}
		r2 := d[0]*d[0] + d[1]*d[1] + d[2]*d[2]
		if r2 > rmax*rmax {
			return
		}
		m := g.State.Rho.At(i, j, k) * g.CellVolume()
		mass += m
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				tensor[a][b] += m * d[a] * d[b]
			}
		}
	})
	return
}

// Flattening returns the ratio of the smallest to largest principal
// moment of an inertia tensor (1 = spherical, → 0 = flattened/filament),
// computed via Jacobi eigenvalue iteration.
func Flattening(t [3][3]float64) float64 {
	ev := eigenvalues3(t)
	if ev[2] <= 0 {
		return 1
	}
	return ev[0] / ev[2]
}

// eigenvalues3 returns the sorted (ascending) eigenvalues of a symmetric
// 3x3 matrix using the Jacobi rotation method.
func eigenvalues3(m [3][3]float64) [3]float64 {
	a := m
	for sweep := 0; sweep < 50; sweep++ {
		// Largest off-diagonal element.
		p, q := 0, 1
		off := math.Abs(a[0][1])
		if math.Abs(a[0][2]) > off {
			p, q, off = 0, 2, math.Abs(a[0][2])
		}
		if math.Abs(a[1][2]) > off {
			p, q, off = 1, 2, math.Abs(a[1][2])
		}
		if off < 1e-18 {
			break
		}
		theta := 0.5 * math.Atan2(2*a[p][q], a[q][q]-a[p][p])
		c, s := math.Cos(theta), math.Sin(theta)
		var r [3][3]float64
		for i := 0; i < 3; i++ {
			r[i][i] = 1
		}
		r[p][p], r[q][q] = c, c
		r[p][q], r[q][p] = s, -s
		// a = r^T a r
		var tmp [3][3]float64
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				for k := 0; k < 3; k++ {
					tmp[i][j] += r[k][i] * a[k][j]
				}
			}
		}
		var next [3][3]float64
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				for k := 0; k < 3; k++ {
					next[i][j] += tmp[i][k] * r[k][j]
				}
			}
		}
		a = next
	}
	ev := []float64{a[0][0], a[1][1], a[2][2]}
	sort.Float64s(ev)
	return [3]float64{ev[0], ev[1], ev[2]}
}

// CollapsedObject is one density peak found by FindCollapsedObjects.
type CollapsedObject struct {
	Center  [3]float64
	PeakRho float64
	Mass    float64 // gas mass within Radius
	Radius  float64
}

// FindCollapsedObjects locates density peaks above threshold separated by
// at least minSep (box units), and measures the gas mass within minSep/2
// of each — the §6 "routines [that] facilitate finding collapsed objects".
func FindCollapsedObjects(h *amr.Hierarchy, threshold, minSep float64) []CollapsedObject {
	type peak struct {
		pos [3]float64
		rho float64
	}
	var peaks []peak
	ForEachFinestCell(h, func(g *amr.Grid, i, j, k int, x, y, z float64) {
		rho := g.State.Rho.At(i, j, k)
		if rho < threshold {
			return
		}
		peaks = append(peaks, peak{[3]float64{x, y, z}, rho})
	})
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].rho > peaks[j].rho })
	var out []CollapsedObject
	for _, p := range peaks {
		dup := false
		for _, o := range out {
			dx := minImage(p.pos[0] - o.Center[0])
			dy := minImage(p.pos[1] - o.Center[1])
			dz := minImage(p.pos[2] - o.Center[2])
			if dx*dx+dy*dy+dz*dz < minSep*minSep {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		obj := CollapsedObject{Center: p.pos, PeakRho: p.rho, Radius: minSep / 2}
		ForEachFinestCell(h, func(g *amr.Grid, i, j, k int, x, y, z float64) {
			dx := minImage(x - p.pos[0])
			dy := minImage(y - p.pos[1])
			dz := minImage(z - p.pos[2])
			if dx*dx+dy*dy+dz*dz <= obj.Radius*obj.Radius {
				obj.Mass += g.State.Rho.At(i, j, k) * g.CellVolume()
			}
		})
		out = append(out, obj)
	}
	return out
}
