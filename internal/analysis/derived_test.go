package analysis

import (
	"math"
	"testing"
)

func TestSurfaceDensityUniform(t *testing.T) {
	h := buildTestHierarchy(t)
	// Column through a uniform region far from the clump integrates to
	// ~rho*1 = 1 (full box length).
	sd := SurfaceDensity(h, 2, 0.0, 0.12, 0.0, 0.12, 4, 32, 1)
	for _, row := range sd {
		for _, v := range row {
			// The line of sight passes near the clump plane once, so
			// expect slightly above 1.
			if v < 0.9 || v > 3 {
				t.Fatalf("surface density %v out of range", v)
			}
		}
	}
	// Column through the clump center exceeds the corner column.
	cen := SurfaceDensity(h, 2, 0.49, 0.51, 0.49, 0.51, 1, 64, 1)
	cor := SurfaceDensity(h, 2, 0.01, 0.03, 0.01, 0.03, 1, 64, 1)
	if cen[0][0] <= cor[0][0] {
		t.Fatalf("central column %v not above corner %v", cen[0][0], cor[0][0])
	}
}

func TestInertiaTensorSphericalClump(t *testing.T) {
	h := buildTestHierarchy(t)
	tensor, mass := InertiaTensor(h, [3]float64{0.5, 0.5, 0.5}, 0.2)
	if mass <= 0 {
		t.Fatal("no mass in sphere")
	}
	// A spherical clump: diagonal entries roughly equal, off-diagonal
	// near zero, flattening near 1.
	d := []float64{tensor[0][0], tensor[1][1], tensor[2][2]}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if a != b && math.Abs(tensor[a][b]) > 0.05*d[0] {
				t.Errorf("large off-diagonal inertia [%d][%d]=%v", a, b, tensor[a][b])
			}
		}
	}
	if f := Flattening(tensor); f < 0.8 {
		t.Errorf("spherical clump flattening %v, want ~1", f)
	}
}

func TestFlatteningDetectsDisk(t *testing.T) {
	// Synthetic disk-like tensor: z moment much smaller.
	tensor := [3][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 0.05}}
	if f := Flattening(tensor); f > 0.1 {
		t.Errorf("disk flattening %v, want ~0.05", f)
	}
	// Rotated version must give the same answer (eigenvalues invariant).
	c, s := math.Cos(0.7), math.Sin(0.7)
	// R_z rotation of the disk tensor mixes x/y (no change); rotate
	// about x to mix y/z instead.
	r := [3][3]float64{{1, 0, 0}, {0, c, -s}, {0, s, c}}
	var tmp, rot [3][3]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				tmp[i][j] += r[i][k] * tensor[k][j]
			}
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				rot[i][j] += tmp[i][k] * r[j][k]
			}
		}
	}
	if f := Flattening(rot); math.Abs(f-0.05) > 1e-6 {
		t.Errorf("rotated disk flattening %v, want 0.05", f)
	}
}

func TestFindCollapsedObjects(t *testing.T) {
	h := buildTestHierarchy(t)
	objs := FindCollapsedObjects(h, 5.0, 0.2)
	if len(objs) != 1 {
		t.Fatalf("found %d objects, want 1", len(objs))
	}
	o := objs[0]
	for d := 0; d < 3; d++ {
		if math.Abs(o.Center[d]-0.5) > 0.1 {
			t.Errorf("object center %v, want box center", o.Center)
		}
	}
	if o.Mass <= 0 || o.PeakRho < 10 {
		t.Errorf("bad object %+v", o)
	}
	// Impossible threshold: nothing found.
	if objs := FindCollapsedObjects(h, 1e9, 0.2); len(objs) != 0 {
		t.Errorf("found %d objects above impossible threshold", len(objs))
	}
}

func TestDynamicalTime(t *testing.T) {
	h := buildTestHierarchy(t)
	// Use cosmological-style units for conversion.
	g := h.FinestGridAt(0.5, 0.5, 0.5)
	// Configure units so conversions are defined.
	cfg := h.Cfg
	cfg.Units.Density = 1e-24
	cfg.Units.Length = 1e21
	cfg.Units.Time = 1e13
	cfg.Units.Derive()
	h.Cfg = cfg
	i := int((0.5 - g.Edge[0].Float64()) / g.Dx)
	tdynDense := DynamicalTime(h, g, i, i, i)
	gc := h.FinestGridAt(0.05, 0.05, 0.05)
	tdynThin := DynamicalTime(h, gc, 0, 0, 0)
	if !(tdynDense < tdynThin) {
		t.Errorf("dynamical time not shorter in dense gas: %v vs %v", tdynDense, tdynThin)
	}
	if tdynDense <= 0 || math.IsNaN(tdynDense) {
		t.Errorf("bad dynamical time %v", tdynDense)
	}
}

func TestEigenvalues3KnownMatrix(t *testing.T) {
	// diag(3,1,2) in a rotated basis... use the plain diagonal case and
	// a known symmetric matrix with analytic eigenvalues.
	m := [3][3]float64{{2, 1, 0}, {1, 2, 0}, {0, 0, 5}}
	ev := eigenvalues3(m)
	want := [3]float64{1, 3, 5}
	for i := 0; i < 3; i++ {
		if math.Abs(ev[i]-want[i]) > 1e-10 {
			t.Fatalf("eigenvalues %v, want %v", ev, want)
		}
	}
}
